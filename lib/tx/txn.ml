module Lsn = Repro_wal.Lsn

type state = Active | Committing | Committed | Aborted

type t = {
  id : int;
  node : int;
  mutable state : state;
  mutable last_lsn : Lsn.t;
  mutable first_lsn : Lsn.t;
  mutable savepoints : (string * Lsn.t) list;
  mutable logged_records : int;
  mutable logged_bytes : int;
  mutable remote_updated : Repro_storage.Page_id.Set.t;
  mutable began : float;
  mutable span : int;
  mutable locks_from : float;
}

let make ~id ~node =
  {
    id;
    node;
    state = Active;
    last_lsn = Lsn.nil;
    first_lsn = Lsn.nil;
    savepoints = [];
    logged_records = 0;
    logged_bytes = 0;
    remote_updated = Repro_storage.Page_id.Set.empty;
    began = 0.;
    span = -1;
    locks_from = -1.;
  }
let is_active t = t.state = Active
let record_logged t lsn =
  t.last_lsn <- lsn;
  if Lsn.is_nil t.first_lsn then t.first_lsn <- lsn
let add_savepoint t name lsn = t.savepoints <- (name, lsn) :: t.savepoints
let savepoint_lsn t name = List.assoc_opt name t.savepoints

let release_savepoints_after t lsn =
  t.savepoints <- List.filter (fun (_, sp) -> Lsn.compare sp lsn <= 0) t.savepoints

let pp_state ppf = function
  | Active -> Format.pp_print_string ppf "active"
  | Committing -> Format.pp_print_string ppf "committing"
  | Committed -> Format.pp_print_string ppf "committed"
  | Aborted -> Format.pp_print_string ppf "aborted"

let pp ppf t =
  Format.fprintf ppf "T%d@@node%d %a last=%a" t.id t.node pp_state t.state Lsn.pp t.last_lsn
