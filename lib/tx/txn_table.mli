(** A node's table of transactions.

    Holds active transactions (volatile — lost on crash; restart
    analysis rebuilds the losers from the log) and remembers terminated
    ones only for the test oracle. *)

type t

val create : unit -> t
val register : t -> Txn.t -> unit
val find : t -> int -> Txn.t option
val find_exn : t -> int -> Txn.t
val active : t -> Txn.t list
val remove : t -> int -> unit

val live : t -> Txn.t list
(** Active plus [Committing] transactions.  A committing transaction
    still pins the log (its undo chain must survive until its commit
    record is durable), so log-space reclamation bounds on [live], not
    [active]. *)

val snapshot_active : t -> Repro_wal.Record.active_txn list
(** For the fuzzy checkpoint's transaction-table image. *)

val clear : t -> unit
(** Node crash. *)

val size : t -> int
