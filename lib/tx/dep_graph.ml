(* Commit-dependency graph for early lock release (controlled lock
   violation).

   When a committing transaction releases its page locks at batch-submit
   time, any transaction that then reads or overwrites those pages has
   observed pre-durable state: it records a *commit dependency* on the
   releaser.  The rules policed here:

   - a dependent may not report [`Durable] while an antecedent is still
     pending — {!durable_blocked} lists the antecedents to wait on;
   - an aborted or lost antecedent drags its whole dependency closure
     down — {!settle_lost} returns the closure so the caller can abort
     every member (PR 3's whole-batch-loss invariant generalised).

   Edges are kept both ways (antecedents per dependent, dependents per
   antecedent) so durability settles edges in O(out-degree) and loss
   walks the forward closure without scanning.  Transaction ids are
   globally unique across the cluster, so one graph serves all nodes. *)

type t = {
  antecedents : (int, int list ref) Hashtbl.t; (* dependent -> pending antecedents *)
  dependents : (int, int list ref) Hashtbl.t; (* antecedent -> dependents *)
  mutable registered : int; (* lifetime count of fresh edges (reporting) *)
}

let create () = { antecedents = Hashtbl.create 64; dependents = Hashtbl.create 64; registered = 0 }

let clear t =
  Hashtbl.reset t.antecedents;
  Hashtbl.reset t.dependents;
  t.registered <- 0

let edge_count t = Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.antecedents 0
let registered_count t = t.registered

let multi_add tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some l -> if not (List.mem v !l) then l := v :: !l
  | None -> Hashtbl.add tbl key (ref [ v ])

let multi_remove tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some l ->
    l := List.filter (fun x -> x <> v) !l;
    if !l = [] then Hashtbl.remove tbl key
  | None -> ()

let add t ~dependent ~antecedent =
  if dependent <> antecedent then begin
    let fresh =
      match Hashtbl.find_opt t.antecedents dependent with
      | Some l -> not (List.mem antecedent !l)
      | None -> true
    in
    multi_add t.antecedents dependent antecedent;
    multi_add t.dependents antecedent dependent;
    if fresh then t.registered <- t.registered + 1;
    fresh
  end
  else false

let antecedents_of t txn =
  match Hashtbl.find_opt t.antecedents txn with Some l -> !l | None -> []

let dependents_of t txn =
  match Hashtbl.find_opt t.dependents txn with Some l -> !l | None -> []

let durable_blocked t txn = antecedents_of t txn

(* The antecedent became durable: its outgoing edges are satisfied and
   disappear.  Its own incoming edges were already gone (a dependent
   cannot settle before its antecedents — the caller gates on
   [durable_blocked]), but scrub them defensively anyway. *)
let settle_durable t txn =
  List.iter (fun d -> multi_remove t.antecedents d txn) (dependents_of t txn);
  Hashtbl.remove t.dependents txn;
  List.iter (fun a -> multi_remove t.dependents a txn) (antecedents_of t txn);
  Hashtbl.remove t.antecedents txn

(* The antecedents died (aborted / lost with their batch): every
   transaction downstream of any of them observed state that never
   became durable, so the whole forward closure must go too.  Returns
   the closure *excluding* the seeds, deterministically ordered (seeds'
   direct dependents first, breadth-first, ties by insertion order),
   with every member's edges removed from the graph. *)
let settle_lost t seeds =
  let doomed = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace doomed s ()) seeds;
  let closure = ref [] in
  let queue = Queue.create () in
  List.iter (fun s -> Queue.add s queue) seeds;
  while not (Queue.is_empty queue) do
    let txn = Queue.pop queue in
    List.iter
      (fun d ->
        if not (Hashtbl.mem doomed d) then begin
          Hashtbl.replace doomed d ();
          closure := d :: !closure;
          Queue.add d queue
        end)
      (List.rev (dependents_of t txn))
  done;
  let scrub txn =
    List.iter (fun d -> multi_remove t.antecedents d txn) (dependents_of t txn);
    Hashtbl.remove t.dependents txn;
    List.iter (fun a -> multi_remove t.dependents a txn) (antecedents_of t txn);
    Hashtbl.remove t.antecedents txn
  in
  List.iter scrub seeds;
  List.iter scrub !closure;
  List.rev !closure

(* A transaction left the system without ever being depended on in a
   way that still matters (e.g. it aborted before anyone read its
   pages, or the driver reset it): drop it from both sides. *)
let forget t txn =
  List.iter (fun d -> multi_remove t.antecedents d txn) (dependents_of t txn);
  Hashtbl.remove t.dependents txn;
  List.iter (fun a -> multi_remove t.dependents a txn) (antecedents_of t txn);
  Hashtbl.remove t.antecedents txn

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Hashtbl.iter
    (fun d l -> Format.fprintf ppf "T%d depends on %s@,"
        d (String.concat "," (List.map (Printf.sprintf "T%d") !l)))
    t.antecedents;
  Format.fprintf ppf "@]"
