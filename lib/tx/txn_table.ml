type t = { table : (int, Txn.t) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }
let register t txn = Hashtbl.replace t.table txn.Txn.id txn
let find t id = Hashtbl.find_opt t.table id

let find_exn t id =
  match find t id with
  | Some txn -> txn
  | None -> invalid_arg (Printf.sprintf "Txn_table: unknown transaction %d" id)

let active t =
  Hashtbl.fold (fun _ txn acc -> if Txn.is_active txn then txn :: acc else acc) t.table []

let live t =
  Hashtbl.fold
    (fun _ (txn : Txn.t) acc ->
      match txn.Txn.state with
      | Txn.Active | Txn.Committing -> txn :: acc
      | Txn.Committed | Txn.Aborted -> acc)
    t.table []

let remove t id = Hashtbl.remove t.table id

let snapshot_active t =
  List.map (fun (txn : Txn.t) -> { Repro_wal.Record.txn = txn.id; last_lsn = txn.last_lsn })
    (active t)

let clear t = Hashtbl.reset t.table
let size t = Hashtbl.length t.table
