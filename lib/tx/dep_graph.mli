(** Commit-dependency graph for early lock release (controlled lock
    violation).

    A transaction that reads or overwrites a page whose lock was
    released early (at batch-submit, before the releaser's commit record
    was forced) records a commit dependency on the releaser.  Two rules
    follow:

    - a dependent may not report durable before its antecedents
      ({!durable_blocked});
    - an aborted or lost antecedent drags its whole forward dependency
      closure down with it ({!settle_lost}) — PR 3's whole-batch-loss
      invariant generalised to closure loss.

    Transaction ids are globally unique, so one graph serves the whole
    cluster. *)

type t

val create : unit -> t

val clear : t -> unit
(** Drop every edge (full-cluster reset). *)

val add : t -> dependent:int -> antecedent:int -> bool
(** Record that [dependent] observed pre-durable state of [antecedent].
    Self-edges are ignored.  Returns [true] iff the edge is new. *)

val antecedents_of : t -> int -> int list
(** Pending antecedents of a transaction (empty when unconstrained). *)

val dependents_of : t -> int -> int list
(** Transactions that recorded a dependency on this one. *)

val durable_blocked : t -> int -> int list
(** The antecedents a transaction must wait on before reporting
    [`Durable]; [[]] means it may settle now. *)

val settle_durable : t -> int -> unit
(** The transaction's commit record is durable: its outgoing edges are
    satisfied and removed. *)

val settle_lost : t -> int list -> int list
(** The seed transactions died (aborted, or lost with their batch):
    returns their forward dependency closure — every transaction that
    must now abort, excluding the seeds themselves — in deterministic
    breadth-first order, and removes all affected edges. *)

val forget : t -> int -> unit
(** Remove a transaction and its edges without propagating (driver
    reset of a transaction that never entered the commit pipeline). *)

val edge_count : t -> int
(** Live edge count (for tests and invariant checks). *)

val registered_count : t -> int
(** Lifetime count of fresh edges ever added — settling does not
    decrement it (reporting: "how often did early release actually
    expose pre-durable state"). *)

val pp : Format.formatter -> t -> unit
