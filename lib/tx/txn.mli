(** Transaction descriptors.

    Transactions execute entirely at the node where they start (§2.1).
    Ids are issued by a cluster-wide counter so that they are unique
    across nodes — the waits-for graph and the recovery messages can
    then name transactions unambiguously.  Lower id = older, which the
    deadlock victim policy relies on. *)

type state = Active | Committing | Committed | Aborted
(** [Committing]: the commit record is appended and the transaction
    sits in the node's group-commit batch awaiting the shared force.
    Not active — it runs no further operations and holds no waits — and
    not durable: a crash before the batch force loses it and recovery
    aborts it. *)

type t = {
  id : int;
  node : int;  (** the node executing the transaction *)
  mutable state : state;
  mutable last_lsn : Repro_wal.Lsn.t;  (** head of the undo chain *)
  mutable first_lsn : Repro_wal.Lsn.t;
      (** the transaction's first record; log space below the oldest
          active transaction's [first_lsn] must not be reclaimed (its
          rollback needs it) *)
  mutable savepoints : (string * Repro_wal.Lsn.t) list;
      (** savepoint name -> LSN of its [Savepoint] record, newest first *)
  mutable logged_records : int;  (** records written so far (baseline accounting) *)
  mutable logged_bytes : int;  (** encoded bytes of those records *)
  mutable remote_updated : Repro_storage.Page_id.Set.t;
      (** distinct remote pages updated — what the PCA baseline must
          ship at commit *)
  mutable began : float;  (** simulated start time; feeds commit-latency histograms *)
  mutable span : int;  (** observability span id, [-1] when tracing is off *)
  mutable locks_from : float;
      (** simulated time of the first successful lock acquire, [-1.]
          while none held; feeds the lock-hold-duration histogram that
          the early-lock-release bench compares on/off *)
}

val make : id:int -> node:int -> t
val is_active : t -> bool

val record_logged : t -> Repro_wal.Lsn.t -> unit
(** Maintain [last_lsn] after appending a record for this transaction. *)

val add_savepoint : t -> string -> Repro_wal.Lsn.t -> unit

val savepoint_lsn : t -> string -> Repro_wal.Lsn.t option
(** Most recent savepoint with that name. *)

val release_savepoints_after : t -> Repro_wal.Lsn.t -> unit
(** Partial rollback to [lsn] invalidates savepoints set after it. *)

val pp : Format.formatter -> t -> unit
val pp_state : Format.formatter -> state -> unit
