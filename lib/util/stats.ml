type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let empty_summary =
  { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p90 = 0.; p95 = 0.; p99 = 0. }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (p *. float_of_int (n - 1)) in
    sorted.(idx)

let summarize samples =
  let n = Array.length samples in
  if n = 0 then empty_summary
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let sum = Array.fold_left ( +. ) 0. sorted in
    let mean = sum /. float_of_int n in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. sorted in
    let stddev = if n > 1 then sqrt (sq /. float_of_int (n - 1)) else 0. in
    {
      count = n;
      mean;
      stddev;
      min = sorted.(0);
      max = sorted.(n - 1);
      p50 = percentile sorted 0.50;
      p90 = percentile sorted 0.90;
      p95 = percentile sorted 0.95;
      p99 = percentile sorted 0.99;
    }
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p95=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p95 s.p99 s.max

type histogram = { lo : float; hi : float; counts : int array; mutable n : int }

let histogram ~lo ~hi ~buckets =
  assert (buckets > 0 && hi > lo);
  { lo; hi; counts = Array.make buckets 0; n = 0 }

let record h x =
  let b = Array.length h.counts in
  let raw = int_of_float (float_of_int b *. (x -. h.lo) /. (h.hi -. h.lo)) in
  let idx = if raw < 0 then 0 else if raw >= b then b - 1 else raw in
  h.counts.(idx) <- h.counts.(idx) + 1;
  h.n <- h.n + 1

let bucket_counts h = Array.copy h.counts
let total h = h.n

let pp_histogram ppf h =
  let b = Array.length h.counts in
  let peak = Array.fold_left max 1 h.counts in
  let width = (h.hi -. h.lo) /. float_of_int b in
  for i = 0 to b - 1 do
    let bar = 40 * h.counts.(i) / peak in
    Format.fprintf ppf "[%8.2f,%8.2f) %6d %s@." (h.lo +. (width *. float_of_int i))
      (h.lo +. (width *. float_of_int (i + 1)))
      h.counts.(i) (String.make bar '#')
  done
