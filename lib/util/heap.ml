(* A growable binary min-heap over plain [int] keys.

   Built for the workload driver's runnable queue: keys pack
   (wake_round, prog_index) into one immediate int, so pushes and pops
   allocate nothing (the backing array doubles amortised).  Kept
   generic-free on purpose — boxing the keys would put an allocation on
   the hottest scheduling path in the simulator. *)

type t = { mutable keys : int array; mutable size : int }

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { keys = Array.make capacity 0; size = 0 }

let length t = t.size
let is_empty t = t.size = 0
let clear t = t.size <- 0

let grow t =
  let keys = Array.make (2 * Array.length t.keys) 0 in
  Array.blit t.keys 0 keys 0 t.size;
  t.keys <- keys

let push t key =
  if t.size = Array.length t.keys then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.keys.(parent) > key then begin
      t.keys.(!i) <- t.keys.(parent);
      i := parent
    end
    else continue := false
  done;
  t.keys.(!i) <- key

let min_key t =
  if t.size = 0 then invalid_arg "Heap.min_key: empty heap";
  t.keys.(0)

let remove_min t =
  if t.size = 0 then invalid_arg "Heap.remove_min: empty heap";
  t.size <- t.size - 1;
  if t.size > 0 then begin
    let key = t.keys.(t.size) in
    (* sift down from the root *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      let r = l + 1 in
      let smallest =
        if l < t.size && t.keys.(l) < key then
          if r < t.size && t.keys.(r) < t.keys.(l) then r else l
        else if r < t.size && t.keys.(r) < key then r
        else !i
      in
      if smallest = !i then continue := false
      else begin
        t.keys.(!i) <- t.keys.(smallest);
        i := smallest
      end
    done;
    t.keys.(!i) <- key
  end

let pop_min t =
  let k = min_key t in
  remove_min t;
  k
