(** A growable binary min-heap over plain [int] keys.

    The workload driver packs (wake round, program index) into a single
    int key, so scheduling pushes and pops allocate nothing.  Duplicate
    keys are allowed; ties pop in ascending key order, which is exactly
    what the packed encoding needs (same round ⇒ ascending index). *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty heap.  [capacity] is the initial backing-array size;
    the heap grows by doubling. *)

val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Drop every element (keeps the backing array). *)

val push : t -> int -> unit
(** Insert a key.  O(log n), allocation-free unless the array grows. *)

val min_key : t -> int
(** Smallest key.  @raise Invalid_argument on an empty heap. *)

val remove_min : t -> unit
(** Remove the smallest key.  @raise Invalid_argument on an empty heap. *)

val pop_min : t -> int
(** [min_key] + [remove_min]. *)
