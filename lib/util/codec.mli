(** Binary encoding and decoding of on-"disk" structures.

    Log records and page headers are serialised through this module.  The
    format is little-endian with fixed-width integers; collections carry a
    32-bit length prefix.  Decoding raises {!Corrupt} on any structural
    violation (truncated buffer, negative length, bad tag), which the log
    manager interprets as "end of valid log". *)

exception Corrupt of string
(** Raised by decoders when the input cannot be parsed. *)

(** {1 Encoding} *)

type encoder
(** An append-only byte sink. *)

val encoder : unit -> encoder
val to_string : encoder -> string
val length : encoder -> int

val with_scratch : (encoder -> unit) -> string
(** Runs the function against a shared, cleared scratch encoder and
    returns the accumulated bytes.  Avoids a buffer allocation per
    encode on the log hot path.  Calls must not nest (the simulator is
    single-threaded, and every caller materialises its result string
    before returning, so the scratch is free again on exit). *)

val u8 : encoder -> int -> unit
(** Writes the low 8 bits. *)

val u16 : encoder -> int -> unit
val u32 : encoder -> int -> unit
(** Writes the low 32 bits; values must be non-negative. *)

val i64 : encoder -> int64 -> unit
val int_as_i64 : encoder -> int -> unit
val bool : encoder -> bool -> unit
val bytes : encoder -> string -> unit
(** Length-prefixed byte string. *)

val opt : (encoder -> 'a -> unit) -> encoder -> 'a option -> unit
val list : (encoder -> 'a -> unit) -> encoder -> 'a list -> unit

(** {1 Decoding} *)

type decoder
(** A cursor over an immutable byte string. *)

val decoder : ?pos:int -> string -> decoder
val pos : decoder -> int
val remaining : decoder -> int

val read_u8 : decoder -> int
val read_u16 : decoder -> int
val read_u32 : decoder -> int
val read_i64 : decoder -> int64
val read_int_as_i64 : decoder -> int
val read_bool : decoder -> bool
val read_bytes : decoder -> string
val read_opt : (decoder -> 'a) -> decoder -> 'a option
val read_list : (decoder -> 'a) -> decoder -> 'a list
