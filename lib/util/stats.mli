(** Descriptive statistics for benchmark reporting.

    The benchmark harness collects per-transaction latencies and
    per-run counters; this module turns them into the summary rows
    printed for each experiment. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Computes all fields in one pass plus a sort.  An empty array yields a
    zeroed summary. *)

val pp_summary : Format.formatter -> summary -> unit

(** {1 Histograms} *)

type histogram
(** Fixed-width bucket histogram over [\[lo, hi)]. *)

val histogram : lo:float -> hi:float -> buckets:int -> histogram
val record : histogram -> float -> unit
(** Out-of-range samples are clamped into the first / last bucket. *)

val bucket_counts : histogram -> int array
val total : histogram -> int
val pp_histogram : Format.formatter -> histogram -> unit
(** Renders a compact ASCII bar chart. *)
