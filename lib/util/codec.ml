exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

type encoder = Buffer.t

let encoder () = Buffer.create 128
let to_string = Buffer.contents
let length = Buffer.length

(* One process-wide scratch encoder, reused by the record/framing hot
   paths instead of allocating a fresh [Buffer.t] per record.  Safe
   because the simulator is single-threaded and callers never nest
   [with_scratch] (each call materialises its string before returning,
   so the buffer is free again). *)
let scratch = Buffer.create 512

let with_scratch f =
  Buffer.clear scratch;
  f scratch;
  Buffer.contents scratch

let u8 e v = Buffer.add_char e (Char.chr (v land 0xFF))

let u16 e v =
  u8 e v;
  u8 e (v lsr 8)

let u32 e v =
  assert (v >= 0);
  u16 e v;
  u16 e (v lsr 16)

let i64 e v =
  for shift = 0 to 7 do
    u8 e (Int64.to_int (Int64.shift_right_logical v (8 * shift)))
  done

let int_as_i64 e v = i64 e (Int64.of_int v)

let bool e b = u8 e (if b then 1 else 0)

let bytes e s =
  u32 e (String.length s);
  Buffer.add_string e s

let opt f e = function
  | None -> bool e false
  | Some v ->
    bool e true;
    f e v

let list f e xs =
  u32 e (List.length xs);
  List.iter (f e) xs

type decoder = { src : string; mutable cur : int }

let decoder ?(pos = 0) src = { src; cur = pos }
let pos d = d.cur
let remaining d = String.length d.src - d.cur

let need d n = if remaining d < n then corrupt "truncated input: need %d bytes, have %d" n (remaining d)

let read_u8 d =
  need d 1;
  let v = Char.code d.src.[d.cur] in
  d.cur <- d.cur + 1;
  v

let read_u16 d =
  let lo = read_u8 d in
  let hi = read_u8 d in
  lo lor (hi lsl 8)

let read_u32 d =
  let lo = read_u16 d in
  let hi = read_u16 d in
  lo lor (hi lsl 16)

let read_i64 d =
  need d 8;
  let v = ref 0L in
  for shift = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code d.src.[d.cur + shift]))
  done;
  d.cur <- d.cur + 8;
  !v

let read_int_as_i64 d = Int64.to_int (read_i64 d)

let read_bool d =
  match read_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "bad bool tag %d" n

let read_bytes d =
  let len = read_u32 d in
  need d len;
  let s = String.sub d.src d.cur len in
  d.cur <- d.cur + len;
  s

let read_opt f d = if read_bool d then Some (f d) else None

let read_list f d =
  let len = read_u32 d in
  if len > remaining d then corrupt "bad list length %d" len;
  List.init len (fun _ -> f d)
