(** The append-only log device of one node.

    Models a circular log file with crash semantics:

    - appended bytes live in a volatile tail until {!force} makes them
      durable; a {!crash} discards the unforced tail;
    - offsets are logical and monotonically increasing — they are the
      LSNs of the paper (§2.1: "a log sequence number that corresponds to
      the address of the log record in the local log file");
    - an optional {!capacity} bounds the live region
      [low_water, end).  Appends beyond it raise {!Log_full}; the §2.5
      log-space-management protocol advances [low_water]
      ({!truncate_to}) to free space.

    The device stores raw bytes; record framing and checksums are the
    {!Repro_wal.Log_manager}'s business. *)

type t

exception Log_full
(** Raised by {!append} when the live region would exceed capacity. *)

val create : ?capacity:int -> unit -> t
(** Unbounded unless [capacity] (in bytes) is given. *)

val append : ?overdraft:bool -> t -> string -> int
(** [append t s] appends [s] to the volatile tail and returns the
    logical offset of its first byte.  [overdraft] (default false)
    bypasses the capacity check — the reserved space that guarantees a
    rollback can always log its compensation records. *)

val force : t -> upto:int -> int
(** [force t ~upto] makes everything below offset [upto] durable and
    returns the number of bytes that actually moved (0 if already
    durable) — the caller charges I/O for exactly that. *)

val read : t -> pos:int -> len:int -> string
(** Reads [len] bytes at logical offset [pos].  Reading the volatile
    tail is allowed (rollback reads records it has not forced);
    reading beyond [end_offset] or below 0 raises [Invalid_argument].
    Reading below [low_water] also raises: those bytes were reclaimed. *)

val end_offset : t -> int
(** Offset one past the last appended byte: the next record's LSN. *)

val durable_offset : t -> int
(** Offset one past the last durable byte. *)

val low_water : t -> int
val truncate_to : t -> int -> unit
(** Advance [low_water]; never moves backwards. *)

val used : t -> int
(** Bytes in the live region, [end_offset - low_water]. *)

val available : t -> int option
(** Remaining capacity, or [None] if unbounded. *)

val crash : ?keep_tail:int -> t -> unit
(** Discards the volatile tail: [end_offset] snaps back to
    [durable_offset].  A torn write is modelled with [keep_tail > 0]:
    that many unforced bytes (clamped to the tail length) survive the
    crash as if the device had partially written them, the old durable
    boundary is remembered as the {!suspect} point, and [durable]
    advances over the surviving bytes (they {e are} on disk — they are
    just not trustworthy). *)

val scribble : t -> pos:int -> unit
(** Flip the bits of the byte at [pos] — models a corrupt sector inside
    a torn write.  Recovery must detect it via checksums. *)

val trim_end : t -> int -> unit
(** [trim_end t off] discards everything at and beyond [off] — the
    recovery seal uses it to cut a torn tail back to the last whole
    record.  [off] must be within [low_water, end_offset]. *)

val suspect : t -> int option
(** The offset from which bytes may be torn (set by
    [crash ~keep_tail]); [None] when the log is trustworthy. *)

val clear_suspect : t -> unit
