type t = {
  buf : Buffer.t; (* logical offset 0 is buffer index 0; history kept in memory *)
  mutable durable : int;
  mutable low_water : int;
  mutable suspect : int option;
  capacity : int option;
}

exception Log_full

let create ?capacity () =
  { buf = Buffer.create 4096; durable = 0; low_water = 0; suspect = None; capacity }

let end_offset t = Buffer.length t.buf
let durable_offset t = t.durable
let low_water t = t.low_water
let used t = end_offset t - t.low_water

let available t =
  match t.capacity with None -> None | Some cap -> Some (max 0 (cap - used t))

let append ?(overdraft = false) t s =
  (match t.capacity with
  | Some cap when (not overdraft) && used t + String.length s > cap -> raise Log_full
  | Some _ | None -> ());
  let off = Buffer.length t.buf in
  Buffer.add_string t.buf s;
  off

let force t ~upto =
  let target = min upto (end_offset t) in
  if target <= t.durable then 0
  else begin
    let moved = target - t.durable in
    t.durable <- target;
    moved
  end

let read t ~pos ~len =
  if pos < t.low_water then
    invalid_arg (Printf.sprintf "Log_device.read: offset %d below low water %d" pos t.low_water);
  if pos < 0 || len < 0 || pos + len > end_offset t then
    invalid_arg (Printf.sprintf "Log_device.read: [%d,%d) beyond end %d" pos (pos + len) (end_offset t));
  Buffer.sub t.buf pos len

let truncate_to t off =
  if off > t.low_water then t.low_water <- min off t.durable

let crash ?(keep_tail = 0) t =
  let tail = end_offset t - t.durable in
  let kept_tail = min (max 0 keep_tail) tail in
  let keep = Buffer.sub t.buf 0 (t.durable + kept_tail) in
  Buffer.clear t.buf;
  Buffer.add_string t.buf keep;
  if kept_tail > 0 then begin
    (* The surviving torn bytes start at the old durable boundary; keep
       the earliest suspect point across repeated crashes. *)
    (match t.suspect with
    | None -> t.suspect <- Some t.durable
    | Some s -> t.suspect <- Some (min s t.durable));
    t.durable <- t.durable + kept_tail
  end

let scribble t ~pos =
  if pos < 0 || pos >= end_offset t then
    invalid_arg (Printf.sprintf "Log_device.scribble: offset %d beyond end %d" pos (end_offset t));
  let b = Buffer.to_bytes t.buf in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
  Buffer.clear t.buf;
  Buffer.add_bytes t.buf b

let trim_end t off =
  if off < t.low_water || off > end_offset t then
    invalid_arg
      (Printf.sprintf "Log_device.trim_end: offset %d outside [%d,%d]" off t.low_water
         (end_offset t));
  let keep = Buffer.sub t.buf 0 off in
  Buffer.clear t.buf;
  Buffer.add_string t.buf keep;
  t.durable <- min t.durable off

let suspect t = t.suspect
let clear_suspect t = t.suspect <- None
