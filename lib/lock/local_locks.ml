open Repro_storage

type entry = {
  mutable cached : Mode.t;
  txns : (int, Mode.t) Hashtbl.t;
  mutable revoke_pending : (Mode.t * int * int) option; (* mode, txn, node *)
}

type t = {
  table : entry Page_id.Tbl.t;
  by_txn : (int, Page_id.t list) Hashtbl.t;
      (* pages each transaction has taken a lock on — lets [release_txn]
         visit just the transaction's own pages instead of walking the
         whole table (the walk was O(cached pages) per commit and
         dominated big-cluster runs).  Entries may be stale after
         [drop_cached]; release treats a missing page as already free. *)
  mutable tracer : string -> Page_id.t -> unit;
}

let no_trace _ _ = ()
let create () = { table = Page_id.Tbl.create 64; by_txn = Hashtbl.create 64; tracer = no_trace }
let set_tracer t f = t.tracer <- f

let entry_opt t pid = Page_id.Tbl.find_opt t.table pid

let entry t pid =
  match entry_opt t pid with
  | Some e -> e
  | None ->
    let e = { cached = Mode.S; txns = Hashtbl.create 4; revoke_pending = None } in
    Page_id.Tbl.replace t.table pid e;
    e

let cached_mode t pid = Option.map (fun e -> e.cached) (entry_opt t pid)

let cache_covers t pid mode =
  match cached_mode t pid with None -> false | Some held -> Mode.covers held mode

let set_cached_mode t pid mode =
  let e = entry t pid in
  e.cached <- (match cached_mode t pid with None -> mode | Some held -> Mode.max held mode)

let drop_cached t pid =
  if Page_id.Tbl.mem t.table pid then t.tracer "release" pid;
  Page_id.Tbl.remove t.table pid

let demote_cached_to_s t pid =
  match entry_opt t pid with
  | None -> ()
  | Some e ->
    if e.cached <> Mode.S then t.tracer "demote" pid;
    e.cached <- Mode.S

let set_revoke_pending t pid ~mode ~txn ~node =
  let e = entry t pid in
  match e.revoke_pending with
  | Some (m, existing, _) when existing <= txn ->
    (* keep the oldest requester; strengthen the mode if needed *)
    if Mode.compare mode m > 0 && existing = txn then e.revoke_pending <- Some (mode, txn, node)
  | Some _ | None -> e.revoke_pending <- Some (mode, txn, node)

let revoke_pending t pid =
  match entry_opt t pid with None -> None | Some e -> e.revoke_pending

let clear_revoke_pending t pid =
  match entry_opt t pid with None -> () | Some e -> e.revoke_pending <- None

let cached_pages t = Page_id.Tbl.fold (fun pid e acc -> (pid, e.cached) :: acc) t.table []

(* One fold with the owner filter applied in place — not a filter over
   [cached_pages], which would materialise the full list first (this
   runs per crashed-node peer during recovery's claim gathering). *)
let cached_pages_owned_by t owner =
  Page_id.Tbl.fold
    (fun pid e acc -> if Page_id.owner pid = owner then (pid, e.cached) :: acc else acc)
    t.table []

type conflict = { holders : int list }

let holders_of t pid =
  match entry_opt t pid with
  | None -> []
  | Some e -> Hashtbl.fold (fun txn mode acc -> (txn, mode) :: acc) e.txns []

let acquire t ~txn ~pid ~mode =
  if not (cache_covers t pid mode) then
    invalid_arg "Local_locks.acquire: node-level lock does not cover the request";
  let e = entry t pid in
  let conflicting =
    Hashtbl.fold
      (fun other held acc ->
        if other <> txn && not (Mode.compatible held mode) then other :: acc else acc)
      e.txns []
  in
  if conflicting <> [] then Error { holders = conflicting }
  else begin
    let new_mode =
      match Hashtbl.find_opt e.txns txn with
      | None ->
        (* first lock by [txn] on this page instance: index it *)
        let prev = Option.value (Hashtbl.find_opt t.by_txn txn) ~default:[] in
        Hashtbl.replace t.by_txn txn (pid :: prev);
        mode
      | Some held -> Mode.max held mode
    in
    Hashtbl.replace e.txns txn new_mode;
    Ok ()
  end

let txn_mode t ~txn ~pid =
  match entry_opt t pid with None -> None | Some e -> Hashtbl.find_opt e.txns txn

let txn_locks t ~txn =
  Page_id.Tbl.fold
    (fun pid e acc ->
      match Hashtbl.find_opt e.txns txn with None -> acc | Some mode -> (pid, mode) :: acc)
    t.table []

let any_txn_holds t pid =
  match entry_opt t pid with None -> false | Some e -> Hashtbl.length e.txns > 0

let release_txn t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some pids ->
    Hashtbl.remove t.by_txn txn;
    List.iter
      (fun pid ->
        match Page_id.Tbl.find_opt t.table pid with
        | Some e -> Hashtbl.remove e.txns txn
        | None -> () (* the cached page was dropped since *))
      pids

(* Early release (controlled lock violation): surrender every txn-level
   lock [txn] holds at batch-submit time, BEFORE its commit record is
   durable — strict 2PL's release-after-terminal discipline weakened to
   release-after-submit.  Returns the released (page, mode) pairs so the
   caller can pair the release with commit-dependency registration;
   without that pairing a later reader of these pages could become
   durable while this commit is still lost to a crash.  The tracer
   fires with action ["early_release"] per page, distinct from the
   terminal ["release"], so the audit layer can tell the two apart. *)
let release_txn_early t ~txn =
  let released =
    match Hashtbl.find_opt t.by_txn txn with
    | None -> []
    | Some pids ->
      List.filter_map
        (fun pid ->
          match Page_id.Tbl.find_opt t.table pid with
          | Some e -> Option.map (fun m -> (pid, m)) (Hashtbl.find_opt e.txns txn)
          | None -> None)
        pids
  in
  List.iter (fun (pid, _) -> t.tracer "early_release" pid) released;
  release_txn t ~txn;
  released

let clear t =
  Page_id.Tbl.reset t.table;
  Hashtbl.reset t.by_txn

let check_invariants t =
  Page_id.Tbl.iter
    (fun pid e ->
      let xs = Hashtbl.fold (fun _ m acc -> if Mode.equal m Mode.X then acc + 1 else acc) e.txns 0 in
      if xs > 1 then invalid_arg (Format.asprintf "two local X holders on %a" Page_id.pp pid);
      Hashtbl.iter
        (fun _ m ->
          if not (Mode.covers e.cached m) then
            invalid_arg
              (Format.asprintf "txn lock %a exceeds cached mode %a on %a" Mode.pp m Mode.pp
                 e.cached Page_id.pp pid))
        e.txns)
    t.table
