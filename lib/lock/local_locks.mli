(** Node-side lock cache and transaction-level lock table.

    Two layers per §2.1:
    - the {b node-level cached mode} — retained across transaction
      boundaries (inter-transaction caching), dropped or demoted only by
      owner callbacks;
    - the {b transaction-level holders} — strict 2PL locks of local
      transactions, released at commit/abort (the cached mode stays).

    A local transaction needing mode [m] on a page can proceed without
    any message iff the cached mode covers [m] ({!cache_covers}) and no
    conflicting local transaction holds the page — the message saving
    the paper and Rdb's lock carry-over both celebrate (E9). *)

open Repro_storage

type t

val create : unit -> t

val set_tracer : t -> (string -> Page_id.t -> unit) -> unit
(** Observability hook, fired on cached-lock state changes with an
    action name (["demote"], ["release"], ["early_release"]).  Default:
    no-op.  The node layer wires this to the typed event recorder. *)

(** {1 Node-level cache} *)

val cached_mode : t -> Page_id.t -> Mode.t option
val cache_covers : t -> Page_id.t -> Mode.t -> bool
val set_cached_mode : t -> Page_id.t -> Mode.t -> unit
(** Keeps the stronger of the existing and the new mode. *)

val drop_cached : t -> Page_id.t -> unit
val demote_cached_to_s : t -> Page_id.t -> unit
val cached_pages : t -> (Page_id.t * Mode.t) list
val cached_pages_owned_by : t -> int -> (Page_id.t * Mode.t) list

(** {1 Pending revocations}

    When an owner callback is refused because a local transaction still
    holds the lock, the cached lock is marked {e revoke-pending}: new
    local acquisitions that would conflict with the callback's mode are
    refused until the revocation completes.  Without this, a steady
    stream of local cache-hit acquisitions starves the remote requester
    forever.  The pending mark remembers the remote requester
    ([txn], [node]) so a stale mark (requester died) can be detected and
    dropped. *)

val set_revoke_pending : t -> Page_id.t -> mode:Mode.t -> txn:int -> node:int -> unit
(** Keeps the mark of the {e oldest} requesting transaction. *)

val revoke_pending : t -> Page_id.t -> (Mode.t * int * int) option
(** [(mode, txn, node)] of the pending revocation, if any. *)

val clear_revoke_pending : t -> Page_id.t -> unit

(** {1 Transaction-level locks} *)

type conflict = { holders : int list (** conflicting local transactions *) }

val acquire : t -> txn:int -> pid:Page_id.t -> mode:Mode.t -> (unit, conflict) result
(** Requires the cached mode to cover [mode] (the caller obtains it from
    the owner first).  Fails with the conflicting local transactions if
    strict 2PL forbids the grant; upgrading own [S] to [X] is allowed
    when no other holder exists. *)

val txn_mode : t -> txn:int -> pid:Page_id.t -> Mode.t option
val txn_locks : t -> txn:int -> (Page_id.t * Mode.t) list
val holders_of : t -> Page_id.t -> (int * Mode.t) list
val any_txn_holds : t -> Page_id.t -> bool
(** True iff some local transaction holds the page — an owner callback
    must wait (be refused for now) in that case (§2.2). *)

val release_txn : t -> txn:int -> unit
(** Strict 2PL release at end of transaction; cached modes persist. *)

val release_txn_early : t -> txn:int -> (Page_id.t * Mode.t) list
(** Controlled lock violation: release [txn]'s locks at batch-submit
    time, before its commit record is durable.  Returns the released
    (page, mode) pairs — the caller MUST pair them with
    commit-dependency registration so later readers/overwriters of
    those pages cannot report durable while this commit can still be
    lost.  Fires the tracer with action ["early_release"] per page. *)

val clear : t -> unit
(** Node crash. *)

val check_invariants : t -> unit
(** Txn-level locks never exceed the cached mode; no two X holders. *)
