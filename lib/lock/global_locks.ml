open Repro_storage

type t = {
  table : (int, Mode.t) Hashtbl.t Page_id.Tbl.t;
  mutable tracer : string -> int -> Page_id.t -> unit;
}

let no_trace _ _ _ = ()
let create () = { table = Page_id.Tbl.create 64; tracer = no_trace }
let set_tracer t f = t.tracer <- f

let holders_tbl t pid =
  match Page_id.Tbl.find_opt t.table pid with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 4 in
    Page_id.Tbl.replace t.table pid h;
    h

type decision = Granted | Needs_callback of { holders : (int * Mode.t) list }

let holders t ~pid =
  match Page_id.Tbl.find_opt t.table pid with
  | None -> []
  | Some h -> Hashtbl.fold (fun node mode acc -> (node, mode) :: acc) h []

let holder_mode t ~node ~pid =
  match Page_id.Tbl.find_opt t.table pid with
  | None -> None
  | Some h -> Hashtbl.find_opt h node

let request t ~node ~pid ~mode =
  match holder_mode t ~node ~pid with
  | Some held when Mode.covers held mode -> Granted
  | _ ->
    let conflicting =
      List.filter
        (fun (n, held) -> n <> node && not (Mode.compatible held mode))
        (holders t ~pid)
    in
    if conflicting = [] then Granted else Needs_callback { holders = conflicting }

let grant t ~node ~pid ~mode =
  let h = holders_tbl t pid in
  let new_mode =
    match Hashtbl.find_opt h node with None -> mode | Some held -> Mode.max held mode
  in
  Hashtbl.replace h node new_mode;
  t.tracer "grant" node pid

let release t ~node ~pid =
  match Page_id.Tbl.find_opt t.table pid with
  | None -> ()
  | Some h ->
    if Hashtbl.mem h node then t.tracer "release" node pid;
    Hashtbl.remove h node;
    if Hashtbl.length h = 0 then Page_id.Tbl.remove t.table pid

let demote_to_s t ~node ~pid =
  match Page_id.Tbl.find_opt t.table pid with
  | None -> ()
  | Some h ->
    if Hashtbl.mem h node then begin
      t.tracer "demote" node pid;
      Hashtbl.replace h node Mode.S
    end

let x_holder t ~pid =
  List.find_map (fun (n, m) -> if Mode.equal m Mode.X then Some n else None) (holders t ~pid)

let fold_node t ~node f init =
  Page_id.Tbl.fold
    (fun pid h acc ->
      match Hashtbl.find_opt h node with None -> acc | Some mode -> f acc pid mode)
    t.table init

let locks_held_by_node t ~node = fold_node t ~node (fun acc pid mode -> (pid, mode) :: acc) []

let release_all_shared_of_node t ~node =
  let shared =
    fold_node t ~node (fun acc pid mode -> if Mode.equal mode Mode.S then pid :: acc else acc) []
  in
  List.iter (fun pid -> release t ~node ~pid) shared;
  shared

let x_pages_of_node t ~node =
  fold_node t ~node (fun acc pid mode -> if Mode.equal mode Mode.X then pid :: acc else acc) []

let pages t = Page_id.Tbl.fold (fun pid _ acc -> pid :: acc) t.table []
let clear t = Page_id.Tbl.reset t.table

let check_invariants t =
  Page_id.Tbl.iter
    (fun pid h ->
      let xs = Hashtbl.fold (fun _ m acc -> if Mode.equal m Mode.X then acc + 1 else acc) h 0 in
      if xs > 1 then
        invalid_arg (Format.asprintf "two X holders on %a" Page_id.pp pid);
      if xs = 1 && Hashtbl.length h > 1 then
        invalid_arg (Format.asprintf "X holder coexists with others on %a" Page_id.pp pid))
    t.table
