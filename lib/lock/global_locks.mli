(** Owner-side lock service.

    Every node runs one of these for the pages it owns (Figure 1: owner
    nodes).  It tracks which {e nodes} hold which mode on each owned
    page — node-level locks, because locks are cached across transaction
    boundaries (inter-transaction caching, §2.1).  Transaction-level
    bookkeeping lives in each node's {!Local_locks}.

    The table only decides; sending callback messages and waiting for
    acknowledgements is the node layer's job (§2.2). *)

open Repro_storage

type t

val create : unit -> t

val set_tracer : t -> (string -> int -> Page_id.t -> unit) -> unit
(** Observability hook, fired with an action name (["grant"],
    ["demote"], ["release"]), the holder node and the page.  Default:
    no-op.  The node layer wires this to the typed event recorder. *)

type decision =
  | Granted
  | Needs_callback of { holders : (int * Mode.t) list }
      (** Conflicting node-level locks that must be called back (or
          demoted) before the request can be granted. *)

val request : t -> node:int -> pid:Page_id.t -> mode:Mode.t -> decision
(** Pure decision; does not mutate.  A node already holding a covering
    mode gets [Granted] immediately. *)

val grant : t -> node:int -> pid:Page_id.t -> mode:Mode.t -> unit
(** Records the grant (upgrade if the node already holds [S]). *)

val release : t -> node:int -> pid:Page_id.t -> unit
val demote_to_s : t -> node:int -> pid:Page_id.t -> unit
(** Callback in shared mode: an [X] holder keeps an [S] lock (§2.1). *)

val holder_mode : t -> node:int -> pid:Page_id.t -> Mode.t option
val holders : t -> pid:Page_id.t -> (int * Mode.t) list
val x_holder : t -> pid:Page_id.t -> int option

val locks_held_by_node : t -> node:int -> (Page_id.t * Mode.t) list
(** Everything a given (possibly crashed) node holds here — sent to it
    during lock reconstruction (§2.3.3). *)

val release_all_shared_of_node : t -> node:int -> Page_id.t list
(** §2.3.3: when a node crashes, operational owners release its shared
    locks but retain its exclusive ones.  Returns the released pages. *)

val x_pages_of_node : t -> node:int -> Page_id.t list

val pages : t -> Page_id.t list
(** All pages with at least one holder. *)

val clear : t -> unit
(** Owner crash: its lock table is volatile and is lost. *)

val check_invariants : t -> unit
(** Test hook: at most one [X] holder per page, and an [X] holder is
    never accompanied by other holders. *)
