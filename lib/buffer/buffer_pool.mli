(** A node's buffer pool (cache) — steal / no-force (§2.1).

    The pool is deliberately policy-free about {e what happens} to an
    evicted dirty page (write locally vs. ship to the owner — that is
    the node's business); it only picks victims and tracks frame state.
    The WAL rule is enforced by the node: it must force the log up to a
    dirty frame's [last_lsn] before the frame leaves the pool.

    Two replacement policies are provided.  LRU matches what BeSS used;
    Clock is the ablation alternative exercised by experiment E9's cache
    sweeps. *)

open Repro_storage

type policy = Lru | Clock

type frame = {
  page : Page.t;
  mutable dirty : bool;
  mutable pin_count : int;
  mutable rec_lsn : Repro_wal.Lsn.t;  (** first LSN that dirtied this caching period *)
  mutable last_lsn : Repro_wal.Lsn.t;  (** latest update record; WAL force bound *)
  mutable last_use : int;
  mutable referenced : bool;  (** Clock's reference bit *)
  mutable slot : int;  (** residence slot in the clock ring; [-1] once removed *)
}

type t

val create : ?policy:policy -> capacity:int -> unit -> t
(** [capacity] in pages; must be positive. *)

val set_tracer : t -> (string -> Page_id.t -> unit) -> unit
(** Observability hook, fired with ["install"] / ["evict"] and the page
    as frames enter and leave the pool.  Default: no-op. *)

val capacity : t -> int
val size : t -> int
val is_full : t -> bool

val find : t -> Page_id.t -> frame option
(** Touches the frame for the replacement policy. *)

val peek : t -> Page_id.t -> frame option
(** No policy side effects. *)

val contains : t -> Page_id.t -> bool

val install : t -> Page.t -> frame
(** Adds a clean, unpinned frame.  @raise Invalid_argument if the pool
    is full (the node must evict first) or the page is already
    cached. *)

val mark_dirty : frame -> lsn:Repro_wal.Lsn.t -> unit
(** Records an update at [lsn]: sets dirty, maintains [rec_lsn] /
    [last_lsn]. *)

val pin : frame -> unit
val unpin : frame -> unit

val choose_victim : t -> frame option
(** An unpinned frame per the policy, or [None] if all are pinned.
    Clock is an amortised-O(1) second-chance hand sweep over the
    residence ring (install order, not [last_use] order); LRU scans for
    the minimal [last_use]. *)

val remove : t -> Page_id.t -> unit
val cached_ids : t -> Page_id.t list
val dirty_frames : t -> frame list
val iter : t -> (frame -> unit) -> unit
val clear : t -> unit
(** Crash: every frame is lost. *)
