open Repro_storage
module Lsn = Repro_wal.Lsn

type policy = Lru | Clock

type frame = {
  page : Page.t;
  mutable dirty : bool;
  mutable pin_count : int;
  mutable rec_lsn : Lsn.t;
  mutable last_lsn : Lsn.t;
  mutable last_use : int;
  mutable referenced : bool;
  mutable slot : int;
}

type t = {
  policy : policy;
  capacity : int;
  frames : frame Page_id.Tbl.t;
  ring : frame option array;
      (* fixed residence slots; the clock hand sweeps this in place of
         sorting the candidate list on every eviction *)
  mutable hand : int;
  mutable free : int list; (* vacant ring slots *)
  mutable tick : int;
  mutable tracer : string -> Page_id.t -> unit;
}

let no_trace _ _ = ()

let create ?(policy = Lru) ~capacity () =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    policy;
    capacity;
    frames = Page_id.Tbl.create capacity;
    ring = Array.make capacity None;
    hand = 0;
    free = List.init capacity Fun.id;
    tick = 0;
    tracer = no_trace;
  }

let set_tracer t f = t.tracer <- f

let capacity t = t.capacity
let size t = Page_id.Tbl.length t.frames
let is_full t = size t >= t.capacity

let touch t frame =
  t.tick <- t.tick + 1;
  frame.last_use <- t.tick;
  frame.referenced <- true

let find t pid =
  match Page_id.Tbl.find_opt t.frames pid with
  | None -> None
  | Some frame ->
    touch t frame;
    Some frame

let peek t pid = Page_id.Tbl.find_opt t.frames pid
let contains t pid = Page_id.Tbl.mem t.frames pid

let install t page =
  let pid = Page.id page in
  if contains t pid then
    invalid_arg (Format.asprintf "Buffer_pool.install: %a already cached" Page_id.pp pid);
  if is_full t then invalid_arg "Buffer_pool.install: pool full, evict first";
  let slot =
    match t.free with
    | s :: rest ->
      t.free <- rest;
      s
    | [] -> assert false (* size < capacity was just checked *)
  in
  let frame =
    {
      page;
      dirty = false;
      pin_count = 0;
      rec_lsn = Lsn.nil;
      last_lsn = Lsn.nil;
      last_use = 0;
      referenced = true;
      slot;
    }
  in
  touch t frame;
  t.ring.(slot) <- Some frame;
  Page_id.Tbl.replace t.frames pid frame;
  t.tracer "install" pid;
  frame

let mark_dirty frame ~lsn =
  if not frame.dirty then begin
    frame.dirty <- true;
    frame.rec_lsn <- lsn
  end;
  frame.last_lsn <- lsn

let pin frame = frame.pin_count <- frame.pin_count + 1

let unpin frame =
  if frame.pin_count <= 0 then invalid_arg "Buffer_pool.unpin: not pinned";
  frame.pin_count <- frame.pin_count - 1

let victims t = Page_id.Tbl.fold (fun _ f acc -> if f.pin_count = 0 then f :: acc else acc) t.frames []

let choose_victim t =
  match t.policy with
  | Lru -> (
    match victims t with
    | [] -> None
    | hd :: _ as candidates ->
      Some
        (List.fold_left
           (fun best f -> if f.last_use < best.last_use then f else best)
           hd candidates))
  | Clock ->
    (* Second-chance hand sweep over the residence ring: skip pinned
       frames, clear reference bits as the hand passes, stop at the
       first unpinned unreferenced frame.  Two laps suffice — the first
       clears every unpinned reference bit, so the second stops at the
       first unpinned frame; if 2n steps find nothing, every resident
       frame is pinned and there is no victim.  Amortised O(1) per
       eviction, versus scanning the whole candidate list. *)
    let n = t.capacity in
    let rec sweep steps =
      if steps >= 2 * n then None
      else begin
        let i = t.hand in
        t.hand <- (t.hand + 1) mod n;
        match t.ring.(i) with
        | None -> sweep (steps + 1)
        | Some f ->
          if f.pin_count > 0 then sweep (steps + 1)
          else if f.referenced then begin
            f.referenced <- false;
            sweep (steps + 1)
          end
          else Some f
      end
    in
    sweep 0

let remove t pid =
  match Page_id.Tbl.find_opt t.frames pid with
  | None -> ()
  | Some f ->
    t.tracer "evict" pid;
    t.ring.(f.slot) <- None;
    t.free <- f.slot :: t.free;
    f.slot <- -1;
    Page_id.Tbl.remove t.frames pid
let cached_ids t = Page_id.Tbl.fold (fun pid _ acc -> pid :: acc) t.frames []
let dirty_frames t = Page_id.Tbl.fold (fun _ f acc -> if f.dirty then f :: acc else acc) t.frames []
let iter t f = Page_id.Tbl.iter (fun _ frame -> f frame) t.frames

let clear t =
  Page_id.Tbl.reset t.frames;
  Array.fill t.ring 0 t.capacity None;
  t.free <- List.init t.capacity Fun.id;
  t.hand <- 0
