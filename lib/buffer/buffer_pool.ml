open Repro_storage
module Lsn = Repro_wal.Lsn

type policy = Lru | Clock

type frame = {
  page : Page.t;
  mutable dirty : bool;
  mutable pin_count : int;
  mutable rec_lsn : Lsn.t;
  mutable last_lsn : Lsn.t;
  mutable last_use : int;
  mutable referenced : bool;
}

type t = {
  policy : policy;
  capacity : int;
  frames : frame Page_id.Tbl.t;
  mutable tick : int;
  mutable tracer : string -> Page_id.t -> unit;
}

let no_trace _ _ = ()

let create ?(policy = Lru) ~capacity () =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  { policy; capacity; frames = Page_id.Tbl.create capacity; tick = 0; tracer = no_trace }

let set_tracer t f = t.tracer <- f

let capacity t = t.capacity
let size t = Page_id.Tbl.length t.frames
let is_full t = size t >= t.capacity

let touch t frame =
  t.tick <- t.tick + 1;
  frame.last_use <- t.tick;
  frame.referenced <- true

let find t pid =
  match Page_id.Tbl.find_opt t.frames pid with
  | None -> None
  | Some frame ->
    touch t frame;
    Some frame

let peek t pid = Page_id.Tbl.find_opt t.frames pid
let contains t pid = Page_id.Tbl.mem t.frames pid

let install t page =
  let pid = Page.id page in
  if contains t pid then
    invalid_arg (Format.asprintf "Buffer_pool.install: %a already cached" Page_id.pp pid);
  if is_full t then invalid_arg "Buffer_pool.install: pool full, evict first";
  let frame =
    {
      page;
      dirty = false;
      pin_count = 0;
      rec_lsn = Lsn.nil;
      last_lsn = Lsn.nil;
      last_use = 0;
      referenced = true;
    }
  in
  touch t frame;
  Page_id.Tbl.replace t.frames pid frame;
  t.tracer "install" pid;
  frame

let mark_dirty frame ~lsn =
  if not frame.dirty then begin
    frame.dirty <- true;
    frame.rec_lsn <- lsn
  end;
  frame.last_lsn <- lsn

let pin frame = frame.pin_count <- frame.pin_count + 1

let unpin frame =
  if frame.pin_count <= 0 then invalid_arg "Buffer_pool.unpin: not pinned";
  frame.pin_count <- frame.pin_count - 1

let victims t = Page_id.Tbl.fold (fun _ f acc -> if f.pin_count = 0 then f :: acc else acc) t.frames []

let choose_victim t =
  let candidates = victims t in
  match (t.policy, candidates) with
  | _, [] -> None
  | Lru, _ ->
    Some
      (List.fold_left
         (fun best f -> if f.last_use < best.last_use then f else best)
         (List.hd candidates) candidates)
  | Clock, _ ->
    (* One sweep: prefer a frame whose reference bit is clear; clear
       bits as the hand passes.  Deterministic order via last_use. *)
    let ordered = List.sort (fun a b -> Int.compare a.last_use b.last_use) candidates in
    let rec sweep = function
      | [] -> None
      | f :: rest ->
        if f.referenced then begin
          f.referenced <- false;
          sweep rest
        end
        else Some f
    in
    (match sweep ordered with
    | Some f -> Some f
    | None -> Some (List.hd ordered) (* all referenced: second lap takes the oldest *))

let remove t pid =
  if Page_id.Tbl.mem t.frames pid then t.tracer "evict" pid;
  Page_id.Tbl.remove t.frames pid
let cached_ids t = Page_id.Tbl.fold (fun pid _ acc -> pid :: acc) t.frames []
let dirty_frames t = Page_id.Tbl.fold (fun _ f acc -> if f.dirty then f :: acc else acc) t.frames []
let iter t f = Page_id.Tbl.iter (fun _ frame -> f frame) t.frames
let clear t = Page_id.Tbl.reset t.frames
