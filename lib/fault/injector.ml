module Rng = Repro_util.Rng

type verdict = { drops : int; delay : float }
type torn = { keep : int; flip : int option }
type point =
  | Commit_force
  | Checkpoint
  | Page_ship
  | Rollback
  | Recovery_analysis
  | Recovery_redo
  | Recovery_pre_undo
  | Recovery_undo
  | Recovery_checkpoint

let point_name = function
  | Commit_force -> "commit-force"
  | Checkpoint -> "checkpoint"
  | Page_ship -> "page-ship"
  | Rollback -> "rollback"
  | Recovery_analysis -> "recovery-analysis"
  | Recovery_redo -> "recovery-redo"
  | Recovery_pre_undo -> "recovery-pre-undo"
  | Recovery_undo -> "recovery-undo"
  | Recovery_checkpoint -> "recovery-checkpoint"

type stats = {
  mutable msgs_dropped : int;
  mutable msgs_duplicated : int;
  mutable msgs_delayed : int;
  mutable partitions_started : int;
  mutable link_blocks : int;
  mutable torn_crashes : int;
  mutable crashes : int;
}

type t = {
  plan : Fault_plan.t;
  rng : Rng.t;  (* the plan's own stream; never the simulation RNG *)
  mutable armed : bool;
  mutable suspended : int;  (* nesting depth; recovery wraps itself in it *)
  partitions : (int * int, int) Hashtbl.t;  (* normalized link -> probes left *)
  mutable crash_budget : int;
  stats : stats;
}

let create plan =
  {
    plan;
    rng = Rng.create plan.Fault_plan.seed;
    armed = true;
    suspended = 0;
    partitions = Hashtbl.create 8;
    crash_budget = plan.Fault_plan.crashpoints.Fault_plan.budget;
    stats =
      {
        msgs_dropped = 0;
        msgs_duplicated = 0;
        msgs_delayed = 0;
        partitions_started = 0;
        link_blocks = 0;
        torn_crashes = 0;
        crashes = 0;
      };
  }

let plan t = t.plan
let stats t = t.stats
let active t = t.armed && t.suspended = 0
let set_armed t armed = t.armed <- armed
let suspend t = t.suspended <- t.suspended + 1
let resume t = t.suspended <- max 0 (t.suspended - 1)
let heal_partitions t = Hashtbl.reset t.partitions
let rto t = t.plan.Fault_plan.net.Fault_plan.rto

(* Per-message faults.  Drops model lost attempts that a bounded-retry
   sender pays for (bytes + RTO each) before the retransmission gets
   through — delivery always eventually happens, so protocol exchanges
   never fail halfway.  Suspended or disarmed, no randomness is
   consumed at all: an unfaulted run's RNG stream is untouched. *)
let on_message t ~src:_ ~dst:_ =
  if not (active t) then { drops = 0; delay = 0. }
  else begin
    let net = t.plan.Fault_plan.net in
    let drops =
      if net.Fault_plan.max_drops > 0 && Rng.chance t.rng net.Fault_plan.drop then begin
        let n = 1 + Rng.int t.rng net.Fault_plan.max_drops in
        t.stats.msgs_dropped <- t.stats.msgs_dropped + n;
        n
      end
      else 0
    in
    let delay =
      if net.Fault_plan.max_delay > 0. && Rng.chance t.rng net.Fault_plan.delay then begin
        t.stats.msgs_delayed <- t.stats.msgs_delayed + 1;
        Rng.float t.rng net.Fault_plan.max_delay
      end
      else 0.
    in
    { drops; delay }
  end

let duplicate t =
  if active t && Rng.chance t.rng t.plan.Fault_plan.net.Fault_plan.dup then begin
    t.stats.msgs_duplicated <- t.stats.msgs_duplicated + 1;
    true
  end
  else false

(* Temporary partitions are decided at exchange *entry* points only (a
   blocked probe raises before any state on either side changes), keyed
   by the normalized pair so both directions agree.  A partition heals
   after absorbing a bounded number of probes — retries drain it, which
   keeps progress independent of simulated time (the stress harness
   runs with an all-zero cost model). *)
let link_key a b = if a < b then (a, b) else (b, a)

let link_up t ~a ~b =
  if not (active t) then true
  else begin
    let key = link_key a b in
    match Hashtbl.find_opt t.partitions key with
    | Some left ->
      t.stats.link_blocks <- t.stats.link_blocks + 1;
      if left <= 1 then Hashtbl.remove t.partitions key
      else Hashtbl.replace t.partitions key (left - 1);
      false
    | None ->
      let net = t.plan.Fault_plan.net in
      if net.Fault_plan.max_partition > 0 && Rng.chance t.rng net.Fault_plan.partition then begin
        Hashtbl.replace t.partitions key (1 + Rng.int t.rng net.Fault_plan.max_partition);
        t.stats.partitions_started <- t.stats.partitions_started + 1;
        t.stats.link_blocks <- t.stats.link_blocks + 1;
        false
      end
      else true
  end

(* Torn-write decision for a crash with [tail_len] unforced bytes.
   [first_framed] is the framed size of the first unforced record when
   it lies entirely within the tail.  Either the tear cuts strictly
   inside that record (short write) or the record survives whole with
   one payload byte flipped (CRC must reject it).  Both shapes
   guarantee no complete, valid record beyond the forced boundary is
   ever exposed — exposing e.g. an unforced Commit record would invent
   durability the node never promised. *)
let on_crash_tail t ~tail_len ~header ~first_framed =
  if (not (active t)) || tail_len <= 0 then None
  else if not (Rng.chance t.rng t.plan.Fault_plan.disk.Fault_plan.torn) then None
  else begin
    t.stats.torn_crashes <- t.stats.torn_crashes + 1;
    match first_framed with
    | Some framed
      when framed > header && Rng.chance t.rng t.plan.Fault_plan.disk.Fault_plan.corrupt ->
      Some { keep = framed; flip = Some (header + Rng.int t.rng (framed - header)) }
    | Some framed -> Some { keep = 1 + Rng.int t.rng (min tail_len (framed - 1)); flip = None }
    | None -> Some { keep = 1 + Rng.int t.rng tail_len; flip = None }
  end

let crashpoint t point =
  if (not (active t)) || t.crash_budget <= 0 then false
  else begin
    let c = t.plan.Fault_plan.crashpoints in
    let p =
      match point with
      | Commit_force -> c.Fault_plan.commit_force
      | Checkpoint -> c.Fault_plan.checkpoint
      | Page_ship -> c.Fault_plan.page_ship
      | Rollback -> c.Fault_plan.rollback
      | Recovery_analysis -> c.Fault_plan.recovery_analysis
      | Recovery_redo -> c.Fault_plan.recovery_redo
      | Recovery_pre_undo -> c.Fault_plan.recovery_pre_undo
      | Recovery_undo -> c.Fault_plan.recovery_undo
      | Recovery_checkpoint -> c.Fault_plan.recovery_checkpoint
    in
    (* Zero-probability points must not consume randomness: recovery
       probes run on plans generated before the recovery class existed,
       and a wasted draw there would shift every later fault decision. *)
    if p <= 0. then false
    else if Rng.chance t.rng p then begin
      t.crash_budget <- t.crash_budget - 1;
      t.stats.crashes <- t.stats.crashes + 1;
      true
    end
    else false
  end
