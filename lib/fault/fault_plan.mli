(** A seed-deterministic fault plan.

    The plan is pure data: per-class probabilities and bounds plus the
    injector's own RNG seed.  A plan replays bit-identically — building
    an {!Injector} from an equal plan and running the identical workload
    yields the identical fault schedule, which is what makes a dumped
    plan ([to_json] / [of_json]) a complete repro artefact. *)

type classes = { net : bool; disk : bool; crashpoints : bool; recovery : bool }

val no_classes : classes
val all_classes : classes

val classes_of_string : string -> (classes, string) result
(** Parses ["net,disk,crashpoints,recovery"], ["all"], ["none"] or [""]. *)

type net = {
  drop : float;
  max_drops : int;
  dup : float;
  delay : float;
  max_delay : float;
  rto : float;
  partition : float;
  max_partition : int;
}

type disk = { torn : float; corrupt : float }

type crashpoints = {
  commit_force : float;
  checkpoint : float;
  page_ship : float;
  rollback : float;
  recovery_analysis : float;
  recovery_redo : float;
  recovery_pre_undo : float;
  recovery_undo : float;
  recovery_checkpoint : float;
  budget : int;
}

type t = { seed : int; net : net; disk : disk; crashpoints : crashpoints }

val none : t
(** All probabilities zero: an injector built from it never fires. *)

val generate : Repro_util.Rng.t -> classes:classes -> t
(** Draw magnitudes for the enabled classes; disabled classes stay
    quiet (zero probabilities). *)

val to_json : t -> Repro_obs.Json.t
val of_json : Repro_obs.Json.t -> t
