(** The deterministic fault injector: one per cluster, driven by a
    {!Fault_plan} and the plan's own RNG stream.

    The injector only *decides*; charging costs, bumping metrics and
    emitting observability events stay with the callers (the injector
    sits below the simulation layer).  When inactive — disarmed, or
    suspended, e.g. for the whole of recovery — every query returns the
    do-nothing answer without consuming randomness, so unfaulted code
    paths stay bit-identical. *)

type t

val create : Fault_plan.t -> t
val plan : t -> Fault_plan.t

(** {1 Arming} *)

val active : t -> bool
val set_armed : t -> bool -> unit

val suspend : t -> unit
(** Nestable; recovery and the oracle run under suspension. *)

val resume : t -> unit
val heal_partitions : t -> unit

(** {1 Network} *)

type verdict = { drops : int; delay : float }
(** [drops] lost attempts precede the delivery (each costs bytes + one
    RTO); [delay] seconds of extra queueing model bounded reordering. *)

val on_message : t -> src:int -> dst:int -> verdict

val duplicate : t -> bool
(** One extra delivery of the message just sent?  Queried only at
    carrier sites whose receive path is idempotent. *)

val link_up : t -> a:int -> b:int -> bool
(** Probe the (normalized) link.  [false] means partitioned: the caller
    must back off *before* mutating state on either side.  Each probe
    drains the partition's bounded budget, so retries always heal it. *)

val rto : t -> float
(** Retransmission timeout the caller charges per lost attempt or
    failed probe. *)

(** {1 Storage} *)

type torn = { keep : int; flip : int option }
(** Keep [keep] bytes of the unforced tail; optionally flip the byte at
    offset [flip] (relative to the old durable boundary). *)

val on_crash_tail : t -> tail_len:int -> header:int -> first_framed:int option -> torn option
(** Decide whether (and how) a crash tears the unforced log tail.
    Guaranteed never to expose a complete valid record beyond the
    durable boundary. *)

(** {1 Crash points} *)

type point =
  | Commit_force
  | Checkpoint
  | Page_ship
  | Rollback
  | Recovery_analysis
  | Recovery_redo
  | Recovery_pre_undo
  | Recovery_undo
  | Recovery_checkpoint

val point_name : point -> string

val crashpoint : t -> point -> bool
(** [true]: crash the node here.  Bounded by the plan's crash budget.
    A point whose plan probability is zero never consumes randomness,
    so probing new points on old plans leaves their streams intact. *)

(** {1 Counters} *)

type stats = {
  mutable msgs_dropped : int;
  mutable msgs_duplicated : int;
  mutable msgs_delayed : int;
  mutable partitions_started : int;
  mutable link_blocks : int;
  mutable torn_crashes : int;
  mutable crashes : int;
}

val stats : t -> stats
