module Rng = Repro_util.Rng
module Json = Repro_obs.Json

type classes = { net : bool; disk : bool; crashpoints : bool; recovery : bool }

let no_classes = { net = false; disk = false; crashpoints = false; recovery = false }
let all_classes = { net = true; disk = true; crashpoints = true; recovery = true }

let classes_of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  if s = "" || s = "none" then Ok no_classes
  else if s = "all" then Ok all_classes
  else
    List.fold_left
      (fun acc part ->
        match acc with
        | Error _ as e -> e
        | Ok c -> (
          match part with
          | "net" -> Ok { c with net = true }
          | "disk" -> Ok { c with disk = true }
          | "crashpoints" | "crash" -> Ok { c with crashpoints = true }
          | "recovery" -> Ok { c with recovery = true }
          | other ->
            Error
              (Printf.sprintf
                 "unknown fault class %S (have: net, disk, crashpoints, recovery, all)" other)))
      (Ok no_classes)
      (List.filter
         (fun p -> p <> "")
         (List.map String.trim (String.split_on_char ',' s)))

type net = {
  drop : float;  (* per-message chance an attempt is lost on the wire *)
  max_drops : int;  (* lost attempts before a retransmission gets through *)
  dup : float;  (* chance a delivered message arrives twice *)
  delay : float;  (* chance a message sits in a queue (bounded reorder) *)
  max_delay : float;  (* bound (seconds) on the extra queueing *)
  rto : float;  (* retransmission timeout charged per lost attempt *)
  partition : float;  (* chance a link probe finds the link partitioned *)
  max_partition : int;  (* probes a partition absorbs before healing *)
}

type disk = {
  torn : float;  (* chance a crash tears the unforced log tail *)
  corrupt : float;  (* given torn: bit-flip a whole record vs short write *)
}

type crashpoints = {
  commit_force : float;  (* commit record appended, force not yet issued *)
  checkpoint : float;  (* checkpoint forced, master record not yet updated *)
  page_ship : float;  (* dirty page copy about to leave the node *)
  rollback : float;  (* between two undo steps of an abort *)
  recovery_analysis : float;  (* restart: analysis done, redo not started *)
  recovery_redo : float;  (* restart: probed every K applied redo records *)
  recovery_pre_undo : float;  (* restart: redo complete, undo not started *)
  recovery_undo : float;  (* restart: between two loser rollbacks *)
  recovery_checkpoint : float;  (* restart: before the end-of-restart checkpoint *)
  budget : int;  (* total injected crashes allowed per run *)
}

type t = { seed : int; net : net; disk : disk; crashpoints : crashpoints }

let quiet_net =
  {
    drop = 0.;
    max_drops = 0;
    dup = 0.;
    delay = 0.;
    max_delay = 0.;
    rto = 0.;
    partition = 0.;
    max_partition = 0;
  }

let quiet_disk = { torn = 0.; corrupt = 0. }

let quiet_crashpoints =
  {
    commit_force = 0.;
    checkpoint = 0.;
    page_ship = 0.;
    rollback = 0.;
    recovery_analysis = 0.;
    recovery_redo = 0.;
    recovery_pre_undo = 0.;
    recovery_undo = 0.;
    recovery_checkpoint = 0.;
    budget = 0;
  }

let none = { seed = 0; net = quiet_net; disk = quiet_disk; crashpoints = quiet_crashpoints }

(* Draw a plan's magnitudes from [rng].  The plan carries its own seed:
   the injector replays bit-identically from the plan alone, whether the
   plan was generated here or loaded from JSON. *)
let generate rng ~classes =
  let ({ net = want_net; disk = want_disk; crashpoints = want_crashpoints; recovery = want_recovery }
        : classes) =
    classes
  in
  let seed = Rng.int rng 0x3FFFFFFF in
  let net =
    if not want_net then quiet_net
    else
      {
        drop = 0.01 +. Rng.float rng 0.10;
        max_drops = 1 + Rng.int rng 3;
        dup = 0.01 +. Rng.float rng 0.08;
        delay = 0.02 +. Rng.float rng 0.10;
        max_delay = 0.001 +. Rng.float rng 0.01;
        rto = 0.002 +. Rng.float rng 0.008;
        partition = 0.002 +. Rng.float rng 0.010;
        max_partition = 4 + Rng.int rng 28;
      }
  in
  let disk =
    if not want_disk then quiet_disk
    else { torn = 0.4 +. Rng.float rng 0.5; corrupt = Rng.float rng 1.0 }
  in
  let crashpoints =
    if not want_crashpoints then quiet_crashpoints
    else
      {
        quiet_crashpoints with
        commit_force = 0.002 +. Rng.float rng 0.008;
        checkpoint = 0.05 +. Rng.float rng 0.20;
        page_ship = 0.001 +. Rng.float rng 0.004;
        rollback = 0.002 +. Rng.float rng 0.010;
        budget = 1 + Rng.int rng 3;
      }
  in
  (* The recovery-class draws come after every legacy draw, so a plan
     generated without the class consumes the exact stream older
     versions consumed — replays of historical seeds stay bit-identical. *)
  let crashpoints =
    if not want_recovery then crashpoints
    else
      let c =
        {
          crashpoints with
          recovery_analysis = 0.10 +. Rng.float rng 0.25;
          recovery_redo = 0.01 +. Rng.float rng 0.04;
          recovery_pre_undo = 0.05 +. Rng.float rng 0.15;
          recovery_undo = 0.05 +. Rng.float rng 0.15;
          recovery_checkpoint = 0.05 +. Rng.float rng 0.15;
        }
      in
      if want_crashpoints then c else { c with budget = 1 + Rng.int rng 3 }
  in
  { seed; net; disk; crashpoints }

(* ---- JSON (dump / replay) ---- *)

let to_json t =
  Json.Obj
    [
      ("seed", Json.Int t.seed);
      ( "net",
        Json.Obj
          [
            ("drop", Json.Float t.net.drop);
            ("max_drops", Json.Int t.net.max_drops);
            ("dup", Json.Float t.net.dup);
            ("delay", Json.Float t.net.delay);
            ("max_delay", Json.Float t.net.max_delay);
            ("rto", Json.Float t.net.rto);
            ("partition", Json.Float t.net.partition);
            ("max_partition", Json.Int t.net.max_partition);
          ] );
      ( "disk",
        Json.Obj [ ("torn", Json.Float t.disk.torn); ("corrupt", Json.Float t.disk.corrupt) ] );
      ( "crashpoints",
        Json.Obj
          [
            ("commit_force", Json.Float t.crashpoints.commit_force);
            ("checkpoint", Json.Float t.crashpoints.checkpoint);
            ("page_ship", Json.Float t.crashpoints.page_ship);
            ("rollback", Json.Float t.crashpoints.rollback);
            ("recovery_analysis", Json.Float t.crashpoints.recovery_analysis);
            ("recovery_redo", Json.Float t.crashpoints.recovery_redo);
            ("recovery_pre_undo", Json.Float t.crashpoints.recovery_pre_undo);
            ("recovery_undo", Json.Float t.crashpoints.recovery_undo);
            ("recovery_checkpoint", Json.Float t.crashpoints.recovery_checkpoint);
            ("budget", Json.Int t.crashpoints.budget);
          ] );
    ]

let fnum j name ~default =
  match Json.member name j with
  | Some v -> (
    match Json.to_float_opt v with
    | Some f -> f
    | None -> ( match Json.to_int_opt v with Some i -> float_of_int i | None -> default))
  | None -> default

let inum j name ~default =
  match Option.bind (Json.member name j) Json.to_int_opt with Some v -> v | None -> default

let of_json j =
  let seed = inum j "seed" ~default:0 in
  let net =
    match Json.member "net" j with
    | None -> quiet_net
    | Some n ->
      {
        drop = fnum n "drop" ~default:0.;
        max_drops = inum n "max_drops" ~default:0;
        dup = fnum n "dup" ~default:0.;
        delay = fnum n "delay" ~default:0.;
        max_delay = fnum n "max_delay" ~default:0.;
        rto = fnum n "rto" ~default:0.;
        partition = fnum n "partition" ~default:0.;
        max_partition = inum n "max_partition" ~default:0;
      }
  in
  let disk =
    match Json.member "disk" j with
    | None -> quiet_disk
    | Some d -> { torn = fnum d "torn" ~default:0.; corrupt = fnum d "corrupt" ~default:0. }
  in
  let crashpoints =
    match Json.member "crashpoints" j with
    | None -> quiet_crashpoints
    | Some c ->
      {
        commit_force = fnum c "commit_force" ~default:0.;
        checkpoint = fnum c "checkpoint" ~default:0.;
        page_ship = fnum c "page_ship" ~default:0.;
        rollback = fnum c "rollback" ~default:0.;
        recovery_analysis = fnum c "recovery_analysis" ~default:0.;
        recovery_redo = fnum c "recovery_redo" ~default:0.;
        recovery_pre_undo = fnum c "recovery_pre_undo" ~default:0.;
        recovery_undo = fnum c "recovery_undo" ~default:0.;
        recovery_checkpoint = fnum c "recovery_checkpoint" ~default:0.;
        budget = inum c "budget" ~default:0;
      }
  in
  { seed; net; disk; crashpoints }
