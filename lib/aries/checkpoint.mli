(** Fuzzy checkpointing (§2.2).

    A checkpoint logs the node's DPT and active-transaction table
    between a [Checkpoint_begin] / [Checkpoint_end] pair, forces the
    pair, and then updates the master record.  Nothing is quiesced and —
    the paper's advantage (4) — {e no other node is contacted}:
    checkpointing is entirely local. *)

val take :
  ?on_before_master:(unit -> unit) ->
  ?gc:Repro_wal.Group_commit.t ->
  Repro_wal.Log_manager.t ->
  Repro_sim.Env.t ->
  Repro_sim.Metrics.t ->
  dpt:Repro_wal.Record.dpt_entry list ->
  active:Repro_wal.Record.active_txn list ->
  master:Master.t ->
  Repro_wal.Lsn.t
(** Returns the LSN of the begin record (the new master value).
    [on_before_master] runs after the checkpoint pair is forced but
    before the master record moves — the fault layer hangs its
    mid-checkpoint crash point there (a crash in that window must
    recover from the {e previous} master).  [gc] is the log's
    group-commit batch: the checkpoint force is swept through
    {!Repro_wal.Group_commit.on_force} {e before} [on_before_master]
    runs, so pending commits the force covered cannot be lost to the
    crash point (force-to-device-end invariant). *)
