module Record = Repro_wal.Record
module Log_manager = Repro_wal.Log_manager
module Group_commit = Repro_wal.Group_commit
module Lsn = Repro_wal.Lsn

let take ?(on_before_master = fun () -> ()) ?gc log env metrics ~dpt ~active ~master =
  let module Env = Repro_sim.Env in
  let module Event = Repro_obs.Event in
  let node = metrics.Repro_sim.Metrics.node in
  if Env.tracing env then
    Env.emit env ~node Event.Ckpt_begin
      [ ("dpt", Event.Int (List.length dpt)); ("active", Event.Int (List.length active)) ];
  let begin_lsn =
    Log_manager.append log
      { Record.txn = Record.system_txn; prev = Lsn.nil; body = Checkpoint_begin { dpt; active } }
  in
  let end_lsn =
    Log_manager.append log
      { Record.txn = Record.system_txn; prev = begin_lsn; body = Checkpoint_end }
  in
  Log_manager.force log ~upto:end_lsn;
  (* Force-to-device-end invariant: this force just made any pending
     group-commit records durable.  Sweep them before [on_before_master]
     — its crash point must not fire while durable commits are still
     marked pending (a retried-but-durable commit would double-apply). *)
  Option.iter Group_commit.on_force gc;
  on_before_master ();
  Master.set master begin_lsn;
  metrics.Repro_sim.Metrics.checkpoints_taken <- metrics.Repro_sim.Metrics.checkpoints_taken + 1;
  let g = Repro_sim.Env.global_metrics env in
  g.Repro_sim.Metrics.checkpoints_taken <- g.Repro_sim.Metrics.checkpoints_taken + 1;
  if Repro_sim.Env.tracing env then
    Repro_sim.Env.emit env ~node
      Repro_obs.Event.Ckpt_end
      [ ("lsn", Repro_obs.Event.Int begin_lsn) ];
  Repro_sim.Env.tracef env "checkpoint taken at %a (dpt=%d active=%d)" Lsn.pp begin_lsn
    (List.length dpt) (List.length active);
  begin_lsn
