module Env = Repro_sim.Env
module Config = Repro_sim.Config
module Event = Repro_obs.Event

type pending = { txn : int; lsn : Lsn.t; submitted_at : float }

type t = {
  env : Env.t;
  node : int;
  log : Log_manager.t;
  window : float; (* seconds *)
  max_batch : int;
  mutable pending : pending list; (* newest first *)
  mutable deadline : float; (* meaningful only while [pending <> []] *)
  mutable before_force : unit -> unit;
  mutable on_durable : txn:int -> submitted_at:float -> unit;
  mutable on_lost : int list -> unit;
}

let create env ~node log =
  let cfg = Env.config env in
  {
    env;
    node;
    log;
    window = cfg.Config.group_commit_window_ms *. 1e-3;
    max_batch = max 1 cfg.Config.group_commit_max_batch;
    pending = [];
    deadline = infinity;
    before_force = (fun () -> ());
    on_durable = (fun ~txn:_ ~submitted_at:_ -> ());
    on_lost = (fun _ -> ());
  }

let set_hooks t ?(on_lost = fun _ -> ()) ~before_force ~on_durable () =
  t.before_force <- before_force;
  t.on_durable <- on_durable;
  t.on_lost <- on_lost

let batching t = t.max_batch > 1
let pending_count t = List.length t.pending
let pending_txns t = List.rev_map (fun p -> p.txn) t.pending
let is_pending t ~txn = List.exists (fun p -> p.txn = txn) t.pending
let deadline t = match t.pending with [] -> None | _ -> Some t.deadline

(* Completion runs oldest-submitted first so observers see commits in
   submission order. *)
let complete t batch =
  List.iter (fun p -> t.on_durable ~txn:p.txn ~submitted_at:p.submitted_at) (List.rev batch)

let flush t =
  match t.pending with
  | [] -> ()
  | _ ->
    (* The crash-point hook fires with the batch still pending: an
       injected crash here loses the *whole* batch — no commit record
       was forced, so recovery must abort every member. *)
    t.before_force ();
    let batch = t.pending in
    t.pending <- [];
    t.deadline <- infinity;
    let n = List.length batch in
    let upto = List.fold_left (fun acc p -> Lsn.max acc p.lsn) Lsn.nil batch in
    Log_manager.force_shared t.log ~upto ~sharers:n;
    Env.observe t.env ~name:"commit_batch_size" ~node:t.node (float_of_int n);
    if Env.tracing t.env then Env.emit t.env ~node:t.node Event.Commit_batch [ ("size", Event.Int n) ];
    complete t batch

let submit t ~txn ~lsn =
  (match t.pending with
  | [] -> t.deadline <- Env.now t.env +. t.window
  | _ -> ());
  t.pending <- { txn; lsn; submitted_at = Env.now t.env } :: t.pending;
  if List.length t.pending >= t.max_batch then flush t

let tick t ~now = if t.pending <> [] && now >= t.deadline then flush t

let on_force t =
  (* Forces on this node are block-grained (they push the durable
     boundary to the device end), so an incidental force — WAL before a
     page ship, a checkpoint — makes every already-appended pending
     commit record durable as a side effect.  Complete those now: the
     alternative (re-forcing later) would be a free no-op force, but
     the transactions would be reported pending even though a crash
     could no longer lose them — and a retry would then double-apply. *)
  match t.pending with
  | [] -> ()
  | _ ->
    let durable = Log_manager.durable_lsn t.log in
    let piggybacked, still = List.partition (fun p -> p.lsn < durable) t.pending in
    if piggybacked <> [] then begin
      t.pending <- still;
      (match still with [] -> t.deadline <- infinity | _ -> ());
      if Env.tracing t.env then
        Env.emit t.env ~node:t.node Event.Commit_batch
          [ ("size", Event.Int (List.length piggybacked)); ("piggyback", Event.Bool true) ];
      complete t piggybacked
    end

(* A crash loses the whole pending batch.  The loss hook fires with the
   dropped txn ids (oldest first) so the dependency layer can drag each
   one's closure down with it; it runs after the batch is cleared so a
   re-entrant flush cannot resurrect members. *)
let crash t =
  let lost = List.rev_map (fun p -> p.txn) t.pending in
  t.pending <- [];
  t.deadline <- infinity;
  if lost <> [] then t.on_lost lost
