(** Per-node group commit: batching commit-time log forces.

    The paper's commit path is exactly one local log force (§1.1, §4
    advantage (2)), which makes the force the dominant per-transaction
    cost.  Group commit amortises it: a transaction whose commit record
    is appended joins the node's pending batch instead of forcing
    immediately; the batch leader's force — triggered by the batch
    filling up ([group_commit_max_batch]) or the window expiring
    ([group_commit_window_ms]) — covers every member, charged once via
    {!Env.charge_log_force_shared}.

    Durability discipline: a pending transaction is NOT durable.  Its
    commit record sits in the volatile log tail; a crash before the
    batch force loses the whole batch and recovery aborts every member.
    Completion (the [on_durable] hook) fires only once the commit
    record is behind the durable boundary — after the batch force, or
    after any *other* force on the node (forces are block-grained and
    push durability to the device end, so WAL-before-ship or checkpoint
    forces complete pending commits as a free piggyback; see
    {!on_force}).

    The module lives in [lib/wal] below the transaction layer, so it
    speaks int transaction ids and callbacks, never [Txn.t]. *)

type t

val create : Repro_sim.Env.t -> node:int -> Log_manager.t -> t
(** Reads the batching knobs from the environment's config.
    [group_commit_max_batch <= 1] disables batching: {!batching} is
    [false] and callers use the classic synchronous force. *)

val set_hooks :
  t ->
  ?on_lost:(int list -> unit) ->
  before_force:(unit -> unit) ->
  on_durable:(txn:int -> submitted_at:float -> unit) ->
  unit ->
  unit
(** [before_force] runs immediately before a batch force with the batch
    still pending — the node installs its commit-force crash point
    here, so an injected crash loses the whole batch.  It may raise;
    the batch then stays pending and dies with the node's volatile
    state.  [on_durable] fires once per transaction, in submission
    order, when its commit record has become durable;
    [submitted_at] is the simulated time the transaction entered the
    batch (for commit-latency accounting).  [on_lost] fires from
    {!crash} with the dropped pending transaction ids (oldest first),
    after the batch is cleared — the early-lock-release dependency
    layer uses it to drag each lost commit's dependency closure down. *)

val batching : t -> bool
(** Whether group commit is on ([max_batch > 1]). *)

val submit : t -> txn:int -> lsn:Lsn.t -> unit
(** Join the pending batch; [lsn] is the transaction's commit-record
    LSN.  Flushes immediately when the batch reaches [max_batch]. *)

val flush : t -> unit
(** Force the pending batch now (no-op when empty). *)

val tick : t -> now:float -> unit
(** Flush iff the window deadline has passed. *)

val deadline : t -> float option
(** Simulated time at which the pending batch must flush; [None] when
    nothing is pending. *)

val on_force : t -> unit
(** Notify that *some* force ran on this node's log.  Completes every
    pending transaction whose commit record the force covered
    (piggyback completion).  Call after every force site. *)

val pending_count : t -> int
val pending_txns : t -> int list
(** Pending transaction ids, oldest first. *)

val is_pending : t -> txn:int -> bool

val crash : t -> unit
(** Drop the pending batch without completing it — the volatile log
    tail just vanished, so none of those commits happened.  Fires the
    [on_lost] hook with the dropped transaction ids. *)
