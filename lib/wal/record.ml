open Repro_storage
module Codec = Repro_util.Codec

type update_op =
  | Physical of { off : int; before : string; after : string }
  | Delta of { off : int; delta : int64 }

let apply_op page = function
  | Physical { off; after; _ } -> Page.write page ~off after
  | Delta { off; delta } -> Page.add_cell page ~off delta

let invert = function
  | Physical { off; before; after } -> Physical { off; before = after; after = before }
  | Delta { off; delta } -> Delta { off; delta = Int64.neg delta }

let pp_op ppf = function
  | Physical { off; before; after } ->
    Format.fprintf ppf "phys@@%d %dB->%dB" off (String.length before) (String.length after)
  | Delta { off; delta } -> Format.fprintf ppf "delta@@%d %+Ld" off delta

type dpt_entry = { pid : Page_id.t; psn_first : int; curr_psn : int; redo_lsn : Lsn.t }
type active_txn = { txn : int; last_lsn : Lsn.t }

let pp_dpt_entry ppf e =
  Format.fprintf ppf "{%a psn=%d curr=%d redo=%a}" Page_id.pp e.pid e.psn_first e.curr_psn Lsn.pp
    e.redo_lsn

type body =
  | Update of { pid : Page_id.t; psn_before : int; op : update_op }
  | Clr of { pid : Page_id.t; psn_before : int; op : update_op; undo_next : Lsn.t }
  | Commit
  | Abort
  | Savepoint of string
  | Checkpoint_begin of { dpt : dpt_entry list; active : active_txn list }
  | Checkpoint_end

type t = { txn : int; prev : Lsn.t; body : body }

let system_txn = -1

let page_of t =
  match t.body with
  | Update { pid; _ } | Clr { pid; _ } -> Some pid
  | Commit | Abort | Savepoint _ | Checkpoint_begin _ | Checkpoint_end -> None

let psn_before_of t =
  match t.body with
  | Update { psn_before; _ } | Clr { psn_before; _ } -> Some psn_before
  | Commit | Abort | Savepoint _ | Checkpoint_begin _ | Checkpoint_end -> None

let pp ppf t =
  let body ppf = function
    | Update { pid; psn_before; op } ->
      Format.fprintf ppf "update %a psn<%d %a" Page_id.pp pid psn_before pp_op op
    | Clr { pid; psn_before; op; undo_next } ->
      Format.fprintf ppf "clr %a psn<%d %a undo_next=%a" Page_id.pp pid psn_before pp_op op
        Lsn.pp undo_next
    | Commit -> Format.pp_print_string ppf "commit"
    | Abort -> Format.pp_print_string ppf "abort"
    | Savepoint name -> Format.fprintf ppf "savepoint %s" name
    | Checkpoint_begin { dpt; active } ->
      Format.fprintf ppf "ckpt_begin dpt=%d active=%d" (List.length dpt) (List.length active)
    | Checkpoint_end -> Format.pp_print_string ppf "ckpt_end"
  in
  Format.fprintf ppf "[txn=%d prev=%a %a]" t.txn Lsn.pp t.prev body t.body

(* Wire format: tag byte per variant; see .mli for semantics. *)

let encode_op e = function
  | Physical { off; before; after } ->
    Codec.u8 e 0;
    Codec.u32 e off;
    Codec.bytes e before;
    Codec.bytes e after
  | Delta { off; delta } ->
    Codec.u8 e 1;
    Codec.u32 e off;
    Codec.i64 e delta

let decode_op d =
  match Codec.read_u8 d with
  | 0 ->
    let off = Codec.read_u32 d in
    let before = Codec.read_bytes d in
    let after = Codec.read_bytes d in
    Physical { off; before; after }
  | 1 ->
    let off = Codec.read_u32 d in
    let delta = Codec.read_i64 d in
    Delta { off; delta }
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad update_op tag %d" n))

let encode_dpt_entry e (en : dpt_entry) =
  Page_id.encode e en.pid;
  Codec.int_as_i64 e en.psn_first;
  Codec.int_as_i64 e en.curr_psn;
  Lsn.encode e en.redo_lsn

let decode_dpt_entry d =
  let pid = Page_id.decode d in
  let psn_first = Codec.read_int_as_i64 d in
  let curr_psn = Codec.read_int_as_i64 d in
  let redo_lsn = Lsn.decode d in
  { pid; psn_first; curr_psn; redo_lsn }

let encode_active e (a : active_txn) =
  Codec.int_as_i64 e a.txn;
  Lsn.encode e a.last_lsn

let decode_active d =
  let txn = Codec.read_int_as_i64 d in
  let last_lsn = Lsn.decode d in
  { txn; last_lsn }

let encode t =
  (* Shared scratch buffer: one record encode = zero buffer allocations
     (the log-append hot path runs once per update). *)
  Codec.with_scratch (fun e ->
      Codec.int_as_i64 e t.txn;
      Lsn.encode e t.prev;
      match t.body with
      | Update { pid; psn_before; op } ->
        Codec.u8 e 1;
        Page_id.encode e pid;
        Codec.int_as_i64 e psn_before;
        encode_op e op
      | Clr { pid; psn_before; op; undo_next } ->
        Codec.u8 e 2;
        Page_id.encode e pid;
        Codec.int_as_i64 e psn_before;
        encode_op e op;
        Lsn.encode e undo_next
      | Commit -> Codec.u8 e 3
      | Abort -> Codec.u8 e 4
      | Savepoint name ->
        Codec.u8 e 5;
        Codec.bytes e name
      | Checkpoint_begin { dpt; active } ->
        Codec.u8 e 6;
        Codec.list encode_dpt_entry e dpt;
        Codec.list encode_active e active
      | Checkpoint_end -> Codec.u8 e 7)

let decode s =
  let d = Codec.decoder s in
  let txn = Codec.read_int_as_i64 d in
  let prev = Lsn.decode d in
  let body =
    match Codec.read_u8 d with
    | 1 ->
      let pid = Page_id.decode d in
      let psn_before = Codec.read_int_as_i64 d in
      let op = decode_op d in
      Update { pid; psn_before; op }
    | 2 ->
      let pid = Page_id.decode d in
      let psn_before = Codec.read_int_as_i64 d in
      let op = decode_op d in
      let undo_next = Lsn.decode d in
      Clr { pid; psn_before; op; undo_next }
    | 3 -> Commit
    | 4 -> Abort
    | 5 -> Savepoint (Codec.read_bytes d)
    | 6 ->
      let dpt = Codec.read_list decode_dpt_entry d in
      let active = Codec.read_list decode_active d in
      Checkpoint_begin { dpt; active }
    | 7 -> Checkpoint_end
    | n -> raise (Codec.Corrupt (Printf.sprintf "bad record tag %d" n))
  in
  { txn; prev; body }
