(** Per-node log manager: framing, checksums, forces and scans on top of
    {!Repro_storage.Log_device}.

    Framing is [u32 payload-length | u32 CRC-32 | payload].  A record's
    LSN is the device offset of its length field, so LSNs order records
    and [lsn + framed_size] is the next record — which gives cheap
    forward scans.  A CRC mismatch or truncated frame during a scan is
    treated as end-of-log (torn tail). *)

type t

val create : Repro_sim.Env.t -> Repro_sim.Metrics.t -> ?capacity:int -> unit -> t
(** [capacity] bounds the live log region in bytes (experiment E6). *)

(** {1 Writing} *)

exception Log_full
(** Re-raised from the device when an append would exceed capacity; the
    §2.5 log-space manager catches it. *)

val append : ?overdraft:bool -> t -> Record.t -> Lsn.t
(** Appends to the volatile tail (WAL buffer), charging CPU.
    [overdraft] bypasses the capacity limit — rollback records must
    always fit (reserved undo space). *)

val force : t -> upto:Lsn.t -> unit
(** Makes all records at LSN <= [upto] durable.  Charges one log force
    if any bytes actually move; a no-op (already durable) charges
    nothing. *)

val force_all : t -> unit

val force_shared : t -> upto:Lsn.t -> sharers:int -> unit
(** Like {!force}, but the single physical force is accounted as shared
    by [sharers] concurrently committing transactions (group commit):
    one seek charge total, plus the [commit_batches]/[batched_commits]
    counters.  A no-op (already durable) charges nothing. *)

(** {1 Reading} *)

val read : t -> Lsn.t -> Record.t
(** Random access by exact LSN — the undo path follows [prev]/[undo_next]
    chains with this.  Charges per-record CPU, not a recovery-scan
    count. *)

val next_lsn : t -> Lsn.t -> Lsn.t
(** LSN immediately after the record at the given LSN. *)

val fold : t -> ?upto:Lsn.t -> from:Lsn.t -> init:'a -> ('a -> Lsn.t -> Record.t -> 'a) -> 'a
(** Forward scan for analysis / redo passes.  [from = Lsn.nil] starts at
    the low-water mark.  Each record charges a recovery-scan cost and
    bumps [recovery_log_records_scanned].  Stops before [upto]
    (exclusive) or at the end of the log. *)

(** {1 Positions and space} *)

val end_lsn : t -> Lsn.t
(** LSN the next append will get. *)

val durable_lsn : t -> Lsn.t
val low_water : t -> Lsn.t
val used_bytes : t -> int
val available_bytes : t -> int option
val truncate_to : t -> Lsn.t -> unit
(** Reclaim space below the given LSN (min RedoLSN of the node's DPT). *)

(** {1 Failure} *)

val crash : ?faults:Repro_fault.Injector.t -> t -> unit
(** Loses the volatile tail.  With a fault injector, the crash may
    instead tear the tail: a prefix of the unforced bytes survives —
    cut strictly inside the first unforced record, or that record kept
    whole with a payload byte corrupted so its CRC fails — and the
    device is marked suspect.  A torn crash never exposes a complete
    valid record beyond the pre-crash durable boundary. *)

val seal : t -> int
(** Recovery's first step after a possibly-torn crash: scan forward
    from the suspect point and trim the log at the first corrupt or
    partial frame, restoring the invariant that every byte below
    [end_lsn] is a whole valid record.  Returns the number of bytes
    discarded (0 when the log was clean). *)
