module Codec = Repro_util.Codec
module Crc32 = Repro_util.Crc32
module Env = Repro_sim.Env
module Log_device = Repro_storage.Log_device

type t = { env : Env.t; metrics : Repro_sim.Metrics.t; device : Log_device.t }

exception Log_full

let header_size = 8

let create env metrics ?capacity () = { env; metrics; device = Log_device.create ?capacity () }

let frame payload =
  let header =
    Codec.with_scratch (fun e ->
        Codec.u32 e (String.length payload);
        Codec.u32 e (Int32.to_int (Int32.logand (Crc32.string payload) 0x7FFFFFFFl)))
  in
  header ^ payload

let append ?overdraft t record =
  let payload = Record.encode record in
  let framed = frame payload in
  let lsn =
    try Log_device.append ?overdraft t.device framed
    with Log_device.Log_full -> raise Log_full
  in
  Env.charge_log_append t.env t.metrics ~bytes:(String.length framed);
  lsn

let end_lsn t = Log_device.end_offset t.device
let durable_lsn t = Log_device.durable_offset t.device
let low_water t = Log_device.low_water t.device

let force t ~upto =
  (* [upto] is a record's LSN; everything through the end of that record
     must become durable.  Forcing to the device end is safe and models a
     block-grained force. *)
  if upto >= durable_lsn t then begin
    let moved = Log_device.force t.device ~upto:(end_lsn t) in
    if moved > 0 then Env.charge_log_force t.env t.metrics ~durable:(durable_lsn t) ~bytes:moved ()
  end

let force_all t = force t ~upto:(end_lsn t - 1)

let force_shared t ~upto ~sharers =
  if upto >= durable_lsn t then begin
    let moved = Log_device.force t.device ~upto:(end_lsn t) in
    if moved > 0 then
      Env.charge_log_force_shared t.env t.metrics ~durable:(durable_lsn t) ~bytes:moved ~sharers ()
  end

let read_frame t lsn =
  if lsn < 0 || lsn + header_size > end_lsn t then
    raise (Codec.Corrupt (Printf.sprintf "frame header out of range at %d" lsn));
  let header = Log_device.read t.device ~pos:lsn ~len:header_size in
  let d = Codec.decoder header in
  let len = Codec.read_u32 d in
  let crc = Codec.read_u32 d in
  if lsn + header_size + len > end_lsn t then
    raise (Codec.Corrupt (Printf.sprintf "truncated frame at %d" lsn));
  let payload = Log_device.read t.device ~pos:(lsn + header_size) ~len in
  if Int32.to_int (Int32.logand (Crc32.string payload) 0x7FFFFFFFl) <> crc then
    raise (Codec.Corrupt (Printf.sprintf "CRC mismatch at %d" lsn));
  (Record.decode payload, header_size + len)

let read t lsn =
  let record, size = read_frame t lsn in
  Env.charge_cpu t.env (Env.config t.env).Repro_sim.Config.cpu_per_log_record;
  ignore size;
  record

let next_lsn t lsn =
  let _, size = read_frame t lsn in
  lsn + size

let fold t ?upto ~from ~init f =
  let stop = match upto with Some u -> u | None -> end_lsn t in
  let start = if Lsn.is_nil from then low_water t else from in
  let rec go acc lsn =
    if lsn >= stop then acc
    else
      match read_frame t lsn with
      | record, size ->
        Env.charge_log_scan_record t.env t.metrics ~bytes:size;
        go (f acc lsn record) (lsn + size)
      | exception Codec.Corrupt _ -> acc (* torn tail: treat as end of log *)
  in
  go init start

let used_bytes t = Log_device.used t.device
let available_bytes t = Log_device.available t.device
let truncate_to t lsn = if not (Lsn.is_nil lsn) then Log_device.truncate_to t.device lsn

let bump t f =
  f t.metrics;
  f (Env.global_metrics t.env)

let crash ?faults t =
  let dur = Log_device.durable_offset t.device in
  let tail = Log_device.end_offset t.device - dur in
  let torn =
    match faults with
    | Some inj when tail > 0 ->
      let first_framed =
        if tail >= header_size then begin
          let hdr = Log_device.read t.device ~pos:dur ~len:header_size in
          let d = Codec.decoder hdr in
          let len = Codec.read_u32 d in
          let framed = header_size + len in
          if framed <= tail then Some framed else None
        end
        else None
      in
      Repro_fault.Injector.on_crash_tail inj ~tail_len:tail ~header:header_size ~first_framed
    | Some _ | None -> None
  in
  match torn with
  | None -> Log_device.crash t.device
  | Some { Repro_fault.Injector.keep; flip } ->
    Log_device.crash ~keep_tail:keep t.device;
    (match flip with
    | Some off -> Log_device.scribble t.device ~pos:(dur + off)
    | None -> ());
    bump t (fun m -> m.Repro_sim.Metrics.torn_crashes <- m.Repro_sim.Metrics.torn_crashes + 1);
    Env.emit t.env ~node:t.metrics.Repro_sim.Metrics.node Repro_obs.Event.Fault_torn
      [ ("kept", Repro_obs.Event.Int keep) ]

let seal t =
  match Log_device.suspect t.device with
  | None -> 0
  | Some from ->
    let start = max from (Log_device.low_water t.device) in
    let stop = Log_device.end_offset t.device in
    let rec scan lsn =
      if lsn >= stop then lsn
      else
        match read_frame t lsn with
        | _, size ->
          Env.charge_log_scan_record t.env t.metrics ~bytes:size;
          scan (lsn + size)
        | exception Codec.Corrupt _ -> lsn
    in
    let good = scan start in
    let discarded = stop - good in
    if discarded > 0 then begin
      Log_device.trim_end t.device good;
      bump t (fun m ->
          m.Repro_sim.Metrics.torn_bytes_discarded <-
            m.Repro_sim.Metrics.torn_bytes_discarded + discarded);
      Env.emit t.env ~node:t.metrics.Repro_sim.Metrics.node Repro_obs.Event.Fault_torn
        [ ("discarded", Repro_obs.Event.Int discarded) ]
    end;
    Log_device.clear_suspect t.device;
    discarded
