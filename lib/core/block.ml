type reason =
  | Lock_conflict of { blockers : int list }
  | Node_down of { node : int }
  | Log_space of { node : int }
  | Page_recovering of Repro_storage.Page_id.t
  | Page_unavailable of { pid : Repro_storage.Page_id.t; blocker : int }
  | Net_unreachable of { src : int; dst : int }

exception Would_block of reason

let block reason = raise (Would_block reason)

let pp_reason ppf = function
  | Lock_conflict { blockers } ->
    Format.fprintf ppf "lock conflict with %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         (fun ppf t -> Format.fprintf ppf "T%d" t))
      blockers
  | Node_down { node } -> Format.fprintf ppf "node %d is down" node
  | Log_space { node } -> Format.fprintf ppf "node %d is out of log space" node
  | Page_recovering pid ->
    Format.fprintf ppf "page %a is being recovered" Repro_storage.Page_id.pp pid
  | Page_unavailable { pid; blocker } ->
    Format.fprintf ppf "page %a has deferred recovery blocked on down node %d"
      Repro_storage.Page_id.pp pid blocker
  | Net_unreachable { src; dst } ->
    Format.fprintf ppf "node %d cannot reach node %d (partition)" src dst
