(** The state record of one node (Figure 1 of the paper) and the
    network choke point.

    Protocol code lives in [Node] and [Recovery]; this module only
    constructs and wires the record.  The fields are deliberately
    exposed — [node.ml]/[cluster.ml]/[recovery.ml] implement the
    protocol phases directly over them (the "shared type definitions"
    exception to the no-open rule) — but everything else a node can do
    goes through the functions below: the tracer wiring is private, and
    all cross-node traffic must pass {!send}/{!send_dup} so the fault
    injector and the message accounting see every exchange. *)

(** Which logging architecture the cluster runs.  [Local_logging] is
    the paper's contribution; the others are the §3 comparators,
    sharing the identical cache / lock / page-transfer substrate so
    that only the logging architecture differs in the measured
    counters.  Crash recovery is implemented for [Local_logging] only;
    the baselines are normal-processing comparators (E1-E3, E10). *)
type scheme =
  | Local_logging
      (** client-based logging: every node logs locally, commit = one
          local log force, zero messages *)
  | Server_logging of { server : int }
      (** ARIES/CSA-flavoured: clients ship all their log records to
          the server at commit; the server holds the only durable log *)
  | Pca_double_logging
      (** Rahm's primary-copy-authority: at commit every updated remote
          page travels to its PCA node together with its log records,
          which are appended to that node's log as well *)
  | Global_log of { log_node : int }
      (** Rdb/VMS-flavoured: one shared log appended to over the
          network; pages are forced to disk before inter-node
          transfer *)

(** Fields are grouped by durability: the disk, the allocation map, the
    log device and the master record survive a crash; everything else
    is volatile and wiped by [Node.crash]. *)
type t = {
  id : int;
  env : Repro_sim.Env.t;
  metrics : Repro_sim.Metrics.t;
  (* durable state *)
  disk : Repro_storage.Disk.t;
  alloc : Repro_storage.Alloc_map.t;
  log : Repro_wal.Log_manager.t;
  master : Repro_aries.Master.t;
  gc : Repro_wal.Group_commit.t;
      (** group-commit batch over [log].  The pending batch itself is
          volatile ([Node.crash] drops it); listed with the durable
          fields only because it wraps the log manager. *)
  (* volatile state *)
  mutable up : bool;
  mutable pool : Repro_buffer.Buffer_pool.t;
  locks : Repro_lock.Local_locks.t;  (** client role: cached + txn-level locks *)
  glocks : Repro_lock.Global_locks.t;  (** owner role: node-level locks on owned pages *)
  dpt : Repro_buffer.Dpt.t;
  txns : Repro_tx.Txn_table.t;
  flush_waiters : int list Repro_storage.Page_id.Tbl.t;
      (** owner role, §2.5: nodes to notify when an owned page is forced *)
  reservations : (int * int) Repro_storage.Page_id.Tbl.t;
      (** owner role, fairness: (txn, node) of the oldest blocked
          requester of a contested page *)
  mutable recovering_pages : Repro_storage.Page_id.Set.t;
      (** owned pages whose recovery is in progress; requests are stopped *)
  deferred_pages : int Repro_storage.Page_id.Tbl.t;
      (** owner role: owned pages whose recovery is parked on a down
          peer (pid -> blocking node); access raises a retryable
          [Page_unavailable] until the blocker recovers *)
  mutable deferred_losers : (int * int) list;
      (** loser transactions whose rollback is parked on a down peer
          ((txn, blocking node)); the Txn stays registered so a later
          analysis re-finds it *)
  elr_pages : int Repro_storage.Page_id.Tbl.t;
      (** early lock release (controlled lock violation): page -> the
          committing transaction that released its lock on it at batch
          submit and is not yet durable; later acquirers record a
          commit dependency via [on_dep].  Newest releaser wins per
          page; entries settle when the releaser becomes durable or its
          batch is lost *)
  elr_by_txn : (int, Repro_storage.Page_id.t list) Hashtbl.t;
      (** reverse index: releaser -> pages it released early, so
          settling a releaser visits only its own pages *)
  (* wiring *)
  mutable resolve : int -> t;
  mutable on_dep : dependent:int -> antecedent:int -> bool;
      (** commit-dependency sink, wired by [Cluster] to the
          cluster-wide dependency graph; returns whether the edge is
          new (fresh edges emit the [commit.dep] trace event).  Default
          for standalone nodes: no graph, nothing fresh *)
  pool_policy : Repro_buffer.Buffer_pool.policy;
  pool_capacity : int;
  scheme : scheme;
  retain_cached_locks : bool;
      (** inter-transaction caching of locks and pages (§2.1);
          disabled only by the E9 ablation *)
}

val scheme_name : scheme -> string

val create :
  Repro_sim.Env.t ->
  id:int ->
  pool_capacity:int ->
  pool_policy:Repro_buffer.Buffer_pool.policy ->
  log_capacity:int option ->
  scheme:scheme ->
  retain_cached_locks:bool ->
  t
(** A fresh node with its observability tracers wired.  [resolve]
    initially maps every id to the node itself; [Cluster.create]
    re-points it at the membership array. *)

val peer : t -> int -> t
(** Resolve a node id through the cluster wiring. *)

val tracef : t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val bump : t -> (Repro_sim.Metrics.t -> unit) -> unit
(** Bump a hand-maintained counter on both the node and the global
    aggregate. *)

val send : t -> dst:int -> ?commit_path:bool -> ?recovery:bool -> bytes:int -> unit -> unit
(** Charge a message from [t] to [dst]; local sends (dst = self) cost
    nothing.  This is the single network choke point: with a fault
    injector installed, lost attempts are retransmitted after an RTO
    and bounded queueing delays model reordering — the message always
    eventually arrives, so exchanges never fail halfway. *)

val send_dup : t -> dst:int -> ?commit_path:bool -> ?recovery:bool -> bytes:int -> unit -> bool
(** Like {!send}, but additionally asks the injector whether the
    network duplicates the message.  [true] on duplication; call ONLY
    where the receive path is idempotent, re-running the delivery to
    prove it. *)

val link_up : t -> dst:int -> bool
(** Probe the (injected-partition-aware) link before a multi-step
    exchange.  [false] means partitioned: back off {e before} mutating
    state on either side.  Each failed probe costs one RTO and drains
    the partition's budget, so retries always heal it. *)

val ensure_link : t -> dst:int -> unit
(** {!link_up} or raise the retryable [Block.Net_unreachable]. *)
