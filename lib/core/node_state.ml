(* The state record of one node (Figure 1 of the paper).

   Fields are grouped by durability: the disk, the allocation map, the
   log device and the master record survive a crash; everything else is
   volatile and wiped by [Node.crash].  Protocol code lives in [Node]
   and [Recovery]; this module only constructs and wires the record
   (exposing the fields library-wide keeps each protocol phase in its
   own module without accessor boilerplate). *)

module Env = Repro_sim.Env
module Metrics = Repro_sim.Metrics
module Page_id = Repro_storage.Page_id
module Event = Repro_obs.Event
module Recorder = Repro_obs.Recorder

(* Which logging architecture the cluster runs.  [Local_logging] is the
   paper's contribution; the others are the §3 comparators, sharing the
   identical cache / lock / page-transfer substrate so that only the
   logging architecture differs in the measured counters.  Crash
   recovery is implemented for [Local_logging] only; the baselines are
   normal-processing comparators (E1-E3, E10). *)
type scheme =
  | Local_logging
      (* client-based logging: every node logs locally, commit = one
         local log force, zero messages *)
  | Server_logging of { server : int }
      (* ARIES/CSA-flavoured: clients ship all their log records to the
         server at commit; the server holds the only durable log *)
  | Pca_double_logging
      (* Rahm's primary-copy-authority: at commit every updated remote
         page travels to its PCA node together with its log records,
         which are appended to that node's log as well (double
         logging) *)
  | Global_log of { log_node : int }
      (* Rdb/VMS-flavoured: one shared log appended to over the
         network; pages are forced to disk before inter-node
         transfer *)

type t = {
  id : int;
  env : Env.t;
  metrics : Metrics.t;
  (* durable state *)
  disk : Repro_storage.Disk.t;
  alloc : Repro_storage.Alloc_map.t;
  log : Repro_wal.Log_manager.t;
  master : Repro_aries.Master.t;
  gc : Repro_wal.Group_commit.t;
      (* group-commit batch over [log].  The pending batch itself is
         volatile ([Node.crash] drops it); listed here with the durable
         fields only because it wraps the log manager. *)
  (* volatile state *)
  mutable up : bool;
  mutable pool : Repro_buffer.Buffer_pool.t;
  locks : Repro_lock.Local_locks.t;  (* client role: cached + txn-level locks *)
  glocks : Repro_lock.Global_locks.t;  (* owner role: node-level locks on owned pages *)
  dpt : Repro_buffer.Dpt.t;
  txns : Repro_tx.Txn_table.t;
  flush_waiters : int list Page_id.Tbl.t;
      (* owner role, §2.5: nodes to notify when an owned page is forced *)
  reservations : (int * int) Page_id.Tbl.t;
      (* owner role, fairness: (txn, node) of the oldest blocked
         requester of a contested page; younger requesters queue behind
         it so the oldest transaction cannot be starved by a stream of
         fresh cache-hit acquisitions *)
  mutable recovering_pages : Page_id.Set.t;
      (* owned pages whose recovery is in progress; requests are stopped *)
  deferred_pages : int Page_id.Tbl.t;
      (* owner role: owned pages whose recovery is parked on a down peer
         (pid -> blocking node).  The regranted locks are retained;
         access raises a retryable [Page_unavailable] until the blocker
         recovers and the parked redo completes. *)
  mutable deferred_losers : (int * int) list;
      (* loser transactions whose rollback is parked on a down peer
         ((txn, blocking node)); the Txn stays registered so a further
         crash's analysis re-finds it, and the rollback resumes when the
         blocker recovers *)
  elr_pages : int Page_id.Tbl.t;
      (* early lock release (controlled lock violation): page -> the
         committing transaction that released its lock on it at
         batch-submit and is not yet durable.  A later acquire on such a
         page records a commit dependency on that transaction via
         [on_dep].  Entries are settled (removed) when the releaser
         becomes durable or its batch is lost; the newest releaser wins
         per page — a chain A -> B -> C stays connected transitively
         because B recorded its dependency on A before overwriting the
         entry. *)
  elr_by_txn : (int, Page_id.t list) Hashtbl.t;
      (* reverse index: releaser -> pages it released early, so settling
         a releaser visits only its own pages *)
  (* wiring *)
  mutable resolve : int -> t;
  mutable on_dep : dependent:int -> antecedent:int -> bool;
      (* commit-dependency sink, wired by [Cluster] to the cluster-wide
         [Dep_graph]; returns whether the edge is new (the node emits
         the trace event only for fresh edges).  Default for standalone
         nodes: no graph, nothing fresh. *)
  pool_policy : Repro_buffer.Buffer_pool.policy;
  pool_capacity : int;
  scheme : scheme;
  retain_cached_locks : bool;
      (* inter-transaction caching of locks and pages (§2.1).  Disabled
         only by the E9 ablation, which releases node-level locks back
         to their owners at end of transaction. *)
}

let scheme_name = function
  | Local_logging -> "local_logging"
  | Server_logging _ -> "server_logging"
  | Pca_double_logging -> "pca_double_logging"
  | Global_log _ -> "global_log"

(* Route the substrate's observability hooks (lock tables, buffer pool)
   into the typed recorder.  The hooks themselves are unconditional
   function calls; the closures bail on one branch when tracing is
   off. *)
let wire_tracers node =
  let obs = Env.obs node.env in
  let emit_page kind action pid =
    if Recorder.enabled obs then
      Recorder.emit obs ~time:(Env.now node.env) ~node:node.id kind
        [ ("action", Event.Str action); ("page", Event.Str (Format.asprintf "%a" Page_id.pp pid)) ]
  in
  Repro_lock.Local_locks.set_tracer node.locks (fun action pid ->
      emit_page
        (match action with
        | "demote" -> Event.Lock_demote
        | "early_release" -> Event.Lock_early_release
        | _ -> Event.Lock_release)
        action pid);
  Repro_lock.Global_locks.set_tracer node.glocks (fun action holder pid ->
      if Recorder.enabled obs then
        Recorder.emit obs ~time:(Env.now node.env) ~node:node.id
          (match action with
          | "grant" -> Event.Lock_grant
          | "demote" -> Event.Lock_demote
          | _ -> Event.Lock_release)
          [
            ("action", Event.Str action);
            ("holder", Event.Int holder);
            ("page", Event.Str (Format.asprintf "%a" Page_id.pp pid));
          ]);
  Repro_buffer.Buffer_pool.set_tracer node.pool (fun action pid ->
      emit_page (if action = "install" then Event.Cache_install else Event.Cache_evict) action pid)

let create env ~id ~pool_capacity ~pool_policy ~log_capacity ~scheme ~retain_cached_locks =
  let metrics = Metrics.create ~node:id () in
  let log = Repro_wal.Log_manager.create env metrics ?capacity:log_capacity () in
  let rec node =
    {
      id;
      env;
      metrics;
      disk = Repro_storage.Disk.create env metrics;
      alloc = Repro_storage.Alloc_map.create ~owner:id;
      log;
      master = Repro_aries.Master.create ();
      gc = Repro_wal.Group_commit.create env ~node:id log;
      up = true;
      pool = Repro_buffer.Buffer_pool.create ~policy:pool_policy ~capacity:pool_capacity ();
      locks = Repro_lock.Local_locks.create ();
      glocks = Repro_lock.Global_locks.create ();
      dpt = Repro_buffer.Dpt.create ();
      txns = Repro_tx.Txn_table.create ();
      flush_waiters = Page_id.Tbl.create 16;
      reservations = Page_id.Tbl.create 16;
      recovering_pages = Page_id.Set.empty;
      deferred_pages = Page_id.Tbl.create 8;
      deferred_losers = [];
      elr_pages = Page_id.Tbl.create 16;
      elr_by_txn = Hashtbl.create 16;
      resolve = (fun _ -> node);
      on_dep = (fun ~dependent:_ ~antecedent:_ -> false);
      pool_policy;
      pool_capacity;
      scheme;
      retain_cached_locks;
    }
  in
  wire_tracers node;
  node

let peer t id = t.resolve id
let tracef t fmt = Env.tracef t.env fmt

(* Bump a hand-maintained counter on both the node and the global
   aggregate (the charged counters do this inside Env). *)
let bump t f =
  f t.metrics;
  f (Env.global_metrics t.env)

(* Charge a message from [t] to [dst]; local "messages" (owner = self)
   cost nothing, matching the paper's message counting.  This is the
   single network choke point: with a fault injector installed, lost
   attempts are retransmitted after an RTO (each paying bytes + timeout)
   and a random queueing delay models bounded reordering — the message
   always eventually arrives, so exchanges never fail halfway. *)
let send t ~dst ?(commit_path = false) ?(recovery = false) ~bytes () =
  if dst <> t.id then begin
    (match Env.faults t.env with
    | Some inj ->
      let v = Repro_fault.Injector.on_message inj ~src:t.id ~dst in
      for _ = 1 to v.Repro_fault.Injector.drops do
        Env.charge_message t.env t.metrics ~commit_path ~recovery ~bytes ();
        Env.charge_cpu t.env (Repro_fault.Injector.rto inj);
        bump t (fun m -> m.Metrics.net_msgs_dropped <- m.Metrics.net_msgs_dropped + 1);
        Env.emit t.env ~node:t.id Event.Fault_drop [ ("dst", Event.Int dst) ]
      done;
      if v.Repro_fault.Injector.delay > 0. then begin
        Env.charge_cpu t.env v.Repro_fault.Injector.delay;
        bump t (fun m -> m.Metrics.net_msgs_delayed <- m.Metrics.net_msgs_delayed + 1);
        Env.emit t.env ~node:t.id Event.Fault_delay [ ("dst", Event.Int dst) ]
      end
    | None -> ());
    Env.charge_message t.env t.metrics ~commit_path ~recovery ~bytes ();
    if Env.tracing t.env then begin
      let attrs =
        [
          ("dst", Event.Int dst);
          ("bytes", Event.Int bytes);
          ("dur", Event.Float (Env.message_cost t.env ~bytes));
        ]
        @ (if commit_path then [ ("commit", Event.Bool true) ] else [])
        @ if recovery then [ ("recovery", Event.Bool true) ] else []
      in
      Env.emit t.env ~node:t.id Event.Msg_send attrs;
      Env.emit t.env ~node:dst Event.Msg_recv [ ("src", Event.Int t.id); ("bytes", Event.Int bytes) ]
    end
  end

(* Like [send], but additionally asks the injector whether the network
   duplicates the message.  Returns [true] on duplication; callers use
   it ONLY where the receive path is idempotent, re-running the delivery
   to prove it. *)
let send_dup t ~dst ?(commit_path = false) ?(recovery = false) ~bytes () =
  send t ~dst ~commit_path ~recovery ~bytes ();
  if dst = t.id then false
  else
    match Env.faults t.env with
    | Some inj when Repro_fault.Injector.duplicate inj ->
      Env.charge_message t.env t.metrics ~commit_path ~recovery ~bytes ();
      bump t (fun m -> m.Metrics.net_msgs_duplicated <- m.Metrics.net_msgs_duplicated + 1);
      Env.emit t.env ~node:t.id Event.Fault_dup [ ("dst", Event.Int dst) ];
      true
    | Some _ | None -> false

(* Probe the link to [dst] before starting a multi-step exchange.  A
   [false] answer is an injected temporary partition: the caller must
   back off before mutating state on either side.  Each failed probe
   costs one RTO and drains the partition's bounded budget, so blocked
   transactions retry their way through it. *)
let link_up t ~dst =
  if dst = t.id then true
  else
    match Env.faults t.env with
    | None -> true
    | Some inj ->
      if Repro_fault.Injector.link_up inj ~a:t.id ~b:dst then true
      else begin
        Env.charge_cpu t.env (Repro_fault.Injector.rto inj);
        bump t (fun m -> m.Metrics.net_link_blocks <- m.Metrics.net_link_blocks + 1);
        Env.emit t.env ~node:t.id Event.Fault_partition [ ("dst", Event.Int dst) ];
        false
      end

let ensure_link t ~dst =
  if not (link_up t ~dst) then Block.block (Block.Net_unreachable { src = t.id; dst })
