(** Node crash recovery — §2.3 (single crash) and §2.4 (multiple).

    [run ~crashed ~operational] restarts the crashed nodes:

    + {b Analysis} (per crashed node, §2.3.1/§2.4): scan the local log
      from the last complete checkpoint, rebuilding a superset of the
      DPT and the loser transactions.
    + {b Lock reconstruction} (§2.3.3): operational owners release the
      crashed nodes' shared locks and report retained exclusive ones;
      each crashed node rebuilds its owner-side table from the locks
      peers cached on its pages.
    + {b Determining pages that may require recovery} (§2.3.1/§2.4):
      each crashed owner gathers, from every other node, the owned pages
      present in peer caches and the peers' DPT entries for its pages;
      pages alive in an operational cache are fetched rather than
      recovered; pages of a crashed node's DPT owned by an operational
      node are recovered by that crashed node (it held the X lock).
    + {b Identifying involved nodes} (§2.3.2): a node participates in a
      page's recovery iff its DPT entry's CurrPSN exceeds the PSN of the
      base (most recent surviving) version; others drop or refresh their
      entries.
    + {b Coordinated redo} (§2.3.4): involved nodes build NodePSNLists
      with one log scan each; the coordinator ships the page from node
      to node in PSN order, each applying its own log records,
      PSN-guarded.  {e No log is ever merged.}
    + {b Undo}: each crashed node rolls back its own losers with CLRs
      from its own log, then resumes normal processing.

    The paper's requirements hold by construction: logs are only read by
    their owning node, checkpoints and clocks of other nodes are never
    consulted, and the whole protocol exchanges pages and small lists,
    never log records.

    {b Restartability.}  Recovery itself may be interrupted: when the
    fault plan gives the [recovery] fault class probability, the
    injector stays armed through {!run} and named crash points fire
    after analysis, mid-redo, before undo, mid-undo and at the
    end-of-restart checkpoint, surfacing as [Would_block (Node_down _)].
    The attempt is abandoned wholesale — no page's claims settle until
    that page's redo completed, so nothing partial is durable — and
    re-entering {!run} with the newly-crashed node added to [crashed]
    resets all volatile recovery state and converges to the same
    durable outcome.  Peer exchanges retry through injected drops and
    partitions with bounded exponential backoff.

    {b Deferred recovery.}  When a page's redo needs log records of a
    node that is down and {e not} in this batch (a PSN gap during
    redo), the page is parked in its owner's deferred set: the
    regranted locks are retained, access raises a retryable
    [Page_unavailable], and the parked redo completes automatically in
    the first {!run} whose [crashed] list contains the blocking node.
    Loser rollbacks blocked the same way park in [deferred_losers] and
    resume then too.  Pages owned by a [deferred] node are left to that
    node's own later recovery. *)

type strategy =
  | Psn_coordinated
      (** the paper's §2.3.4 protocol: NodePSNLists + PSN-ordered page
          rounds; each node reads only its own log, no log ever moves *)
  | Merged_logs
      (** the comparison baseline (the fast/super-fast schemes of
          Mohan–Narang, §3.2): every node scans its whole log from its
          last checkpoint and ships {e all} records to the recovering
          coordinator, which merges them per page by PSN.  Produces the
          same final state at a very different cost — experiment E4. *)

type summary = {
  phases : (string * float) list;
      (** simulated seconds per phase, in execution order: analysis,
          lock_reconstruction, gather, then psn_lists + redo
          (coordinated) or merge_pull + redo (merged), then undo *)
  total_seconds : float;
}

val summary_to_json : summary -> Repro_obs.Json.t

val run :
  ?strategy:strategy ->
  ?deferred:Node_state.t list ->
  crashed:Node_state.t list ->
  operational:Node_state.t list ->
  unit ->
  summary
(** Recovers all [crashed] nodes (they must be down); [operational] are
    the surviving peers (must be up); [deferred] (default empty) names
    down nodes {e intentionally excluded} from this batch — their own
    pages are skipped and any redo that needs their log records parks
    on them instead of erroring.  On return every crashed node is up,
    its committed updates are restored, its losers rolled back (or
    parked on a [deferred] node), and lock tables cluster-wide are
    consistent.  [strategy] defaults to the paper's {!Psn_coordinated}.
    The returned summary reports where simulated recovery time went;
    the same numbers also land in the environment's [recovery.*]
    histograms and, when tracing, as [Recovery_phase] events and
    spans.

    May raise [Would_block (Node_down _)] when a recovery-class crash
    point fires mid-protocol: the attempt is aborted (see
    {e Restartability} above) and the caller re-enters with the grown
    crashed set. *)
