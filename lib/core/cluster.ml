module Env = Repro_sim.Env
module Page_id = Repro_storage.Page_id
module Mode = Repro_lock.Mode
module Local_locks = Repro_lock.Local_locks
module Global_locks = Repro_lock.Global_locks
module Deadlock = Repro_lock.Deadlock
module Txn = Repro_tx.Txn
module Txn_table = Repro_tx.Txn_table
module Dep_graph = Repro_tx.Dep_graph
module Group_commit = Repro_wal.Group_commit
module Event = Repro_obs.Event

type t = {
  env : Env.t;
  members : Node_state.t array;
  mutable next_txn : int;
  mutable txn_home : int array;
      (* home node per transaction, indexed by txn id (ids are handed
         out sequentially from 1); -1 = unknown.  A flat array: txn→node
         resolution fronts every engine operation, and at scale the
         hashing dominated the lookup. *)
  deadlock : Deadlock.t;
  durable_commits : (int, unit) Hashtbl.t;
      (* group-commit outcomes: transactions whose commit record became
         durable, not yet reported to the caller.  Written from the
         [on_durable] hook BEFORE any completion work, so an injected
         crash during completion cannot lose the verdict.  Read-once by
         [commit_outcome]. *)
  deps : Dep_graph.t;
      (* early-lock-release commit dependencies, cluster-wide (txn ids
         are globally unique).  Edges are added from [Node]'s acquire
         path via [on_dep], settled when the antecedent becomes durable,
         and propagated as closure loss when its batch is lost. *)
  lost_commits : (int, unit) Hashtbl.t;
      (* transactions whose submitted commit was lost — their own batch
         died, or a lost antecedent dragged them down ([Dep_graph]
         forward closure).  Read-once by [commit_outcome]: [`Gone]. *)
  dep_blocked_since : (int, float) Hashtbl.t;
      (* first time [commit_outcome] found a durable commit still
         gated on pending antecedents; feeds the dep_wait histogram
         and the [Commit_dep_wait] event when the gate opens *)
}

let create ?(trace = false) ?trace_capacity ?(seed = 42) ?faults ?(pool_capacity = 64)
    ?pool_policy ?log_capacity ?scheme ?retain_cached_locks ~nodes config =
  if nodes <= 0 then invalid_arg "Cluster.create: need at least one node";
  let env = Env.create ~trace ?trace_capacity ~seed ?faults config in
  let members =
    Array.init nodes (fun id ->
        Node.create env ~id ~pool_capacity ?pool_policy ?log_capacity ?scheme
          ?retain_cached_locks ())
  in
  let resolve id =
    if id < 0 || id >= nodes then invalid_arg (Printf.sprintf "Cluster: no node %d" id);
    members.(id)
  in
  Array.iter (fun n -> n.Node_state.resolve <- resolve) members;
  let durable_commits = Hashtbl.create 64 in
  let deps = Dep_graph.create () in
  let lost_commits = Hashtbl.create 16 in
  let dep_blocked_since = Hashtbl.create 16 in
  Array.iter
    (fun n ->
      n.Node_state.on_dep <- (fun ~dependent ~antecedent -> Dep_graph.add deps ~dependent ~antecedent);
      Node.wire_group_commit n
        ~on_lost:(fun lost ->
          (* The pending batch died with its node.  Every member is
             gone, and so is the forward dependency closure: anyone who
             observed a lost member's early-released pages saw state
             recovery is about to undo. *)
          List.iter (fun txn -> Hashtbl.replace lost_commits txn ()) lost;
          List.iter
            (fun txn ->
              Hashtbl.replace lost_commits txn ();
              Hashtbl.remove durable_commits txn;
              Hashtbl.remove dep_blocked_since txn)
            (Dep_graph.settle_lost deps lost))
        ~on_durable:(fun ~txn ~submitted_at:_ ->
          Hashtbl.replace durable_commits txn ();
          (* Durable antecedent: its dependents stop waiting.  Same-node
             LSN order guarantees this hook runs for the antecedent no
             later than for any dependent, so the gate below opens in
             submission order. *)
          Dep_graph.settle_durable deps txn)
        ())
    members;
  { env; members; next_txn = 0; txn_home = Array.make 64 (-1); deadlock = Deadlock.create ();
    durable_commits; deps; lost_commits; dep_blocked_since }

let env t = t.env
let node_count t = Array.length t.members

let node t id =
  if id < 0 || id >= node_count t then invalid_arg (Printf.sprintf "Cluster: no node %d" id);
  t.members.(id)

let nodes t = Array.to_list t.members
let now t = Env.now t.env

let allocate_pages t ~owner ~count =
  let n = node t owner in
  List.init count (fun _ -> Node.allocate_page n)

let begin_txn t ~node:node_id =
  let n = node t node_id in
  t.next_txn <- t.next_txn + 1;
  let id = t.next_txn in
  let _txn = Node.begin_txn n ~id in
  if id >= Array.length t.txn_home then begin
    let grown = Array.make (2 * max id (Array.length t.txn_home)) (-1) in
    Array.blit t.txn_home 0 grown 0 (Array.length t.txn_home);
    t.txn_home <- grown
  end;
  t.txn_home.(id) <- node_id;
  id

let txn_node t txn =
  if txn >= 0 && txn < Array.length t.txn_home && t.txn_home.(txn) >= 0 then t.txn_home.(txn)
  else invalid_arg (Printf.sprintf "Cluster: unknown transaction %d" txn)

let home t txn = node t (txn_node t txn)

let read t ~txn ~pid ~off ~len = Node.read (home t txn) ~txn ~pid ~off ~len
let read_cell t ~txn ~pid ~off = Node.read_cell (home t txn) ~txn ~pid ~off
let update_bytes t ~txn ~pid ~off s = Node.update_bytes (home t txn) ~txn ~pid ~off s
let update_delta t ~txn ~pid ~off d = Node.update_delta (home t txn) ~txn ~pid ~off d

let commit t ~txn =
  let n = home t txn in
  Node.commit n ~txn;
  (* A committing transaction runs no further operations and holds no
     waits, so it leaves the deadlock graph at submission. *)
  Deadlock.remove_txn t.deadlock txn;
  (* Synchronous completion (no batching, or the batch filled and
     flushed inside [Node.commit]): the hook path already registered
     batched completions; register the classic path here so
     [commit_outcome] answers uniformly. *)
  if not (Group_commit.is_pending n.Node_state.gc ~txn) then
    Hashtbl.replace t.durable_commits txn ()

let commit_outcome t ~txn =
  let n = home t txn in
  if Hashtbl.mem t.lost_commits txn then begin
    Hashtbl.remove t.lost_commits txn;
    `Gone
  end
  else if Node.is_up n && Group_commit.is_pending n.Node_state.gc ~txn then `Pending
  else if Hashtbl.mem t.durable_commits txn then begin
    match Dep_graph.durable_blocked t.deps txn with
    | [] ->
      Hashtbl.remove t.durable_commits txn;
      (match Hashtbl.find_opt t.dep_blocked_since txn with
      | Some since ->
        (* The commit record was durable but the verdict was withheld
           until every antecedent settled: attribute the wait. *)
        Hashtbl.remove t.dep_blocked_since txn;
        let waited = now t -. since in
        Env.observe t.env ~name:"dep_wait" ~node:(txn_node t txn) waited;
        if Env.tracing t.env then
          Env.emit t.env ~node:(txn_node t txn) Event.Commit_dep_wait
            [ ("txn", Event.Int txn); ("dur", Event.Float waited) ]
      | None -> ());
      `Durable
    | _ :: _ ->
      (* Durable but gated: an antecedent's commit record is not yet
         forced, so reporting [`Durable] now could survive a crash the
         antecedent does not.  (Same-node LSN order makes this
         unreachable today — the gate is the enforced form of that
         argument, and the auditor re-proves it per trace.) *)
      if not (Hashtbl.mem t.dep_blocked_since txn) then
        Hashtbl.replace t.dep_blocked_since txn (now t);
      `Pending
  end
  else `Gone

let pump_group_commit t ~idle =
  let progressed = ref false in
  let tick_one (n : Node_state.t) =
    if Node.is_up n && Group_commit.pending_count n.Node_state.gc > 0 then begin
      let before = Group_commit.pending_count n.Node_state.gc in
      (match Group_commit.tick n.Node_state.gc ~now:(Env.now t.env) with
      | () -> ()
      | exception Block.Would_block _ ->
        (* the batch force hit an injected crash point and felled the
           node; its batch is lost — that IS progress for the caller *)
        ());
      if Group_commit.pending_count n.Node_state.gc <> before then progressed := true
    end
  in
  Array.iter tick_one t.members;
  if idle && not !progressed then begin
    (* Every client is blocked on a pending commit and no batch is due:
       advance the clock to the earliest deadline (the simulation's
       version of the group-commit timer firing). *)
    let earliest =
      Array.fold_left
        (fun acc n ->
          if Node.is_up n then
            match Group_commit.deadline n.Node_state.gc with Some d -> min acc d | None -> acc
          else acc)
        infinity t.members
    in
    if earliest < infinity then begin
      let now = Env.now t.env in
      if earliest > now then Env.charge_cpu t.env (earliest -. now);
      Array.iter tick_one t.members;
      progressed := true
    end
  end;
  !progressed

let abort t ~txn =
  Node.abort (home t txn) ~txn;
  Deadlock.remove_txn t.deadlock txn

let savepoint t ~txn name = Node.savepoint (home t txn) ~txn name
let rollback_to t ~txn name = Node.rollback_to (home t txn) ~txn name

let active_txns t ~node:node_id =
  List.map (fun (txn : Txn.t) -> txn.Txn.id) (Txn_table.active (node t node_id).Node_state.txns)

let checkpoint t ~node:node_id = Node.checkpoint (node t node_id)

let crash t ~node:node_id =
  let n = node t node_id in
  let in_flight = Txn_table.active n.Node_state.txns in
  Node.crash n;
  List.iter (fun (txn : Txn.t) -> Deadlock.remove_txn t.deadlock txn.Txn.id) in_flight

let operational_nodes t =
  List.filter_map
    (fun n -> if Node.is_up n then Some (Node.id n) else None)
    (nodes t)

let recover_timed ?strategy ?(defer = []) t ~nodes:ids =
  let crashed = List.map (node t) ids in
  let crashed_ids = List.map Node.id crashed in
  (match List.filter (fun id -> List.mem id crashed_ids) defer with
  | [] -> ()
  | both ->
    invalid_arg
      (Printf.sprintf "Cluster.recover: node(s) %s listed both to recover and to defer"
         (String.concat ", " (List.map string_of_int both))));
  List.iter
    (fun id ->
      if Node.is_up (node t id) then
        invalid_arg
          (Printf.sprintf "Cluster.recover: node %d is up, there is nothing to defer" id))
    defer;
  (* Recovery treats every node outside the crashed set as a live
     source of page bases, DPT claims and log records.  A node that is
     down but neither being recovered nor explicitly deferred would
     silently contribute a stale disk base and none of its log records
     — a redo gap waiting to happen.  Distinguish the caller who
     {e forgot} a down node (error, naming the culprits) from one who
     {e intentionally} deferred it ([defer], legal: its pages are
     skipped and redo parks on it instead). *)
  (match
     List.filter
       (fun n ->
         (not (Node.is_up n))
         && (not (List.mem (Node.id n) crashed_ids))
         && not (List.mem (Node.id n) defer))
       (nodes t)
   with
  | [] -> ()
  | forgotten ->
    invalid_arg
      (Printf.sprintf
         "Cluster.recover: node(s) %s are down but in neither the crashed nor the defer list; \
          recover all down nodes together or defer them explicitly"
         (String.concat ", " (List.map (fun n -> string_of_int (Node.id n)) forgotten))));
  let deferred = List.map (node t) defer in
  let operational =
    List.filter
      (fun n ->
        Node.is_up n
        && (not (List.mem (Node.id n) crashed_ids))
        && not (List.mem (Node.id n) defer))
      (nodes t)
  in
  Recovery.run ?strategy ~deferred ~crashed ~operational ()

let recover ?strategy ?defer t ~nodes = ignore (recover_timed ?strategy ?defer t ~nodes)

let deadlock t = t.deadlock
let commit_antecedents t ~txn = Dep_graph.antecedents_of t.deps txn
let dep_edge_count t = Dep_graph.edge_count t.deps
let dep_edges_registered t = Dep_graph.registered_count t.deps
let global_metrics t = Env.global_metrics t.env
let node_metrics t id = (node t id).Node_state.metrics

let check_invariants t =
  Array.iter (fun n -> if Node.is_up n then Node.check_invariants n) t.members;
  (* Cross-node: every cached node-level lock has a covering entry in
     the owner's table, and every owner-side entry is cached at the
     holder. *)
  Array.iter
    (fun n ->
      if Node.is_up n then
        List.iter
          (fun (pid, mode) ->
            let owner = t.members.(Page_id.owner pid) in
            if Node.is_up owner then
              match Global_locks.holder_mode owner.Node_state.glocks ~node:n.Node_state.id ~pid with
              | Some held when Mode.covers held mode -> ()
              | Some held ->
                invalid_arg
                  (Format.asprintf "node %d caches %a on %a but owner records %a"
                     n.Node_state.id Mode.pp mode Page_id.pp pid Mode.pp held)
              | None ->
                invalid_arg
                  (Format.asprintf "node %d caches %a on %a unknown to owner" n.Node_state.id
                     Mode.pp mode Page_id.pp pid))
          (Local_locks.cached_pages n.Node_state.locks))
    t.members;
  Array.iter
    (fun owner ->
      if Node.is_up owner then
        List.iter
          (fun pid ->
            List.iter
              (fun (holder_id, mode) ->
                let holder = t.members.(holder_id) in
                if Node.is_up holder && holder_id <> owner.Node_state.id then
                  match Local_locks.cached_mode holder.Node_state.locks pid with
                  | Some held when Mode.covers held mode -> ()
                  | Some _ | None ->
                    invalid_arg
                      (Format.asprintf "owner %d records %a holding %a on %a but holder disagrees"
                         owner.Node_state.id
                         (fun ppf -> Format.fprintf ppf "node %d") holder_id Mode.pp mode
                         Page_id.pp pid))
              (Global_locks.holders owner.Node_state.glocks ~pid))
          (Global_locks.pages owner.Node_state.glocks))
    t.members
