module Env = Repro_sim.Env
module Metrics = Repro_sim.Metrics
module Page = Repro_storage.Page
module Page_id = Repro_storage.Page_id
module Disk = Repro_storage.Disk
module Alloc_map = Repro_storage.Alloc_map
module Lsn = Repro_wal.Lsn
module Record = Repro_wal.Record
module Log_manager = Repro_wal.Log_manager
module Group_commit = Repro_wal.Group_commit
module Buffer_pool = Repro_buffer.Buffer_pool
module Dpt = Repro_buffer.Dpt
module Mode = Repro_lock.Mode
module Local_locks = Repro_lock.Local_locks
module Global_locks = Repro_lock.Global_locks
module Txn = Repro_tx.Txn
module Txn_table = Repro_tx.Txn_table
module Undo = Repro_aries.Undo
module Event = Repro_obs.Event
module Recorder = Repro_obs.Recorder

(* Node_state exports the shared state record; opening it is the
   "shared type definitions" exception to the no-open rule. *)
open Node_state

type t = Node_state.t

let id t = t.id
let is_up t = t.up
let check_up t = if not t.up then Block.block (Block.Node_down { node = t.id })
let page_size t = (Env.config t.env).Repro_sim.Config.page_size

(* The log that holds this node's transaction records: its own, except
   under the shared-log baseline. *)
let txn_log t =
  match t.scheme with
  | Global_log { log_node } -> (peer t log_node).log
  | Local_logging | Server_logging _ | Pca_double_logging -> t.log

(* WAL discipline before a dirty page copy leaves the node.  Under the
   server-logging baseline the client has no durable log — its records
   travel at commit (ARIES/CSA); see DESIGN.md for the simplification. *)
let wal_force t lsn =
  if not (Lsn.is_nil lsn) then
    match t.scheme with
    | Local_logging | Pca_double_logging ->
      Log_manager.force t.log ~upto:lsn;
      (* Any force pushes durability to the device end, so commit
         records sitting in the group-commit batch just became durable:
         complete them now rather than letting them be reported pending
         (a crash can no longer lose them, and a retry would
         double-apply). *)
      Group_commit.on_force t.gc
    | Global_log { log_node } ->
      let ln = peer t log_node in
      Log_manager.force ln.log ~upto:lsn
    | Server_logging _ -> ()

(* ------------------------------------------------------------------ *)
(* Database population (owner role)                                    *)
(* ------------------------------------------------------------------ *)

let allocate_page t =
  check_up t;
  let page = Alloc_map.allocate t.alloc ~page_size:(page_size t) in
  Disk.write t.disk page;
  Page.id page

let owner_latest_copy t pid =
  assert (Page_id.owner pid = t.id);
  match Buffer_pool.peek t.pool pid with
  | Some frame ->
    (* WAL: a copy of a dirty page must never leave this node before
       the log records covering its updates are durable — otherwise a
       crash here leaves another node holding page state whose PSN
       lineage exists in no surviving log. *)
    if frame.dirty then wal_force t frame.last_lsn;
    Page.copy frame.page
  | None ->
    (match Disk.read t.disk pid with
    | Some page -> page
    | None ->
      if Alloc_map.is_allocated t.alloc pid then
        Page.create ~id:pid ~psn:(Alloc_map.psn_seed t.alloc pid) ~size:(page_size t)
      else invalid_arg (Format.asprintf "Node.owner_latest_copy: %a not allocated" Page_id.pp pid))

let deallocate_page t pid =
  check_up t;
  let page = owner_latest_copy t pid in
  Buffer_pool.remove t.pool pid;
  Alloc_map.deallocate t.alloc page

(* ------------------------------------------------------------------ *)
(* Crash and injected crash points                                     *)
(* ------------------------------------------------------------------ *)

let wipe_volatile t =
  Buffer_pool.clear t.pool;
  Local_locks.clear t.locks;
  Global_locks.clear t.glocks;
  Dpt.clear t.dpt;
  Txn_table.clear t.txns;
  Page_id.Tbl.reset t.flush_waiters;
  Page_id.Tbl.reset t.reservations;
  t.recovering_pages <- Page_id.Set.empty;
  Page_id.Tbl.reset t.deferred_pages;
  t.deferred_losers <- [];
  Page_id.Tbl.reset t.elr_pages;
  Hashtbl.reset t.elr_by_txn;
  (* The pending group-commit batch is volatile: none of those commits
     happened — recovery will abort them.  [Group_commit.crash] fires
     the loss hook, which drags each lost commit's early-release
     dependency closure down with it. *)
  Group_commit.crash t.gc

let crash t =
  t.up <- false;
  wipe_volatile t;
  Log_manager.crash ?faults:(Env.faults t.env) t.log;
  if Env.tracing t.env then Env.emit t.env ~node:t.id Event.Crash [];
  tracef t "node %d crashed" t.id

(* Discard whatever volatile state a previous, aborted recovery attempt
   left behind (partially recovered pages, reconstructed lock tables,
   re-registered losers) WITHOUT touching the log: the node is already
   down, its durable state is exactly what the next attempt must start
   from, and re-tearing the tail would manufacture a second crash. *)
let reset_volatile t =
  assert (not t.up);
  wipe_volatile t;
  tracef t "node %d volatile state reset for recovery restart" t.id

(* A named protocol crash point: with a fault injector installed, the
   node may crash *here* — mid-commit-force, mid-checkpoint, mid-ship,
   mid-rollback — the schedules most likely to expose recovery bugs.
   The crash surfaces as [Node_down] so the caller unwinds exactly as
   it would for any other crash. *)
let maybe_crashpoint t point =
  match Env.faults t.env with
  | Some inj when Repro_fault.Injector.crashpoint inj point ->
    bump t (fun m -> m.Metrics.injected_crashes <- m.Metrics.injected_crashes + 1);
    Env.emit t.env ~node:t.id Event.Fault_crash
      [ ("point", Event.Str (Repro_fault.Injector.point_name point)) ];
    crash t;
    Block.block (Block.Node_down { node = t.id })
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Flush acknowledgements (§2.5)                                       *)
(* ------------------------------------------------------------------ *)

let register_flush_waiter t pid ~waiter =
  let cur = Option.value (Page_id.Tbl.find_opt t.flush_waiters pid) ~default:[] in
  if not (List.mem waiter cur) then Page_id.Tbl.replace t.flush_waiters pid (waiter :: cur)

let take_flush_waiters t pid =
  match Page_id.Tbl.find_opt t.flush_waiters pid with
  | None -> []
  | Some waiters ->
    Page_id.Tbl.remove t.flush_waiters pid;
    waiters

(* The owner just made [pid] durable at [flushed_psn]: retire its own
   DPT entry if covered, and acknowledge every registered waiter so the
   waiters can retire or advance theirs (§2.2 / §2.5). *)
let owner_after_flush t pid ~flushed_psn =
  (match Dpt.find t.dpt pid with
  | Some e when e.curr_psn <= flushed_psn -> Dpt.drop t.dpt pid
  | Some _ | None -> ());
  let waiters = take_flush_waiters t pid in
  List.iter
    (fun waiter ->
      let n = peer t waiter in
      if not (link_up t ~dst:waiter) then
        (* The ack cannot cross the partition right now.  Keep the
           waiter registered — losing it silently would strand its DPT
           entry forever; a later flush (or §2.5 request) re-sends. *)
        register_flush_waiter t pid ~waiter
      else begin
        tracef t "ACK node%d -> node%d %a flushed=%d" t.id waiter Page_id.pp pid flushed_psn;
        let dup = send_dup t ~dst:waiter ~bytes:Wire.control () in
        if n.up then begin
          let deliver () =
            Dpt.on_flush_ack n.dpt pid ~flushed_psn;
            (* The durable copy covers the waiter's cached version: that
               copy is no longer dirty — there is nothing left to ship —
               and keeping the flag would leave a dirty frame behind after
               the ack retires the DPT entry. *)
            match Buffer_pool.peek n.pool pid with
            | Some f when f.dirty && Page.psn f.page <= flushed_psn ->
              f.dirty <- false;
              f.rec_lsn <- Lsn.nil
            | Some _ | None -> ()
          in
          deliver ();
          if dup then deliver ()
        end
      end)
    waiters

(* ------------------------------------------------------------------ *)
(* Eviction and page shipping (§2.1/§2.2: steal, no-force)             *)
(* ------------------------------------------------------------------ *)

(* Evicting a dirty frame first forces the local log up to the frame's
   last update record (WAL), then writes in place (own page) or ships
   the copy to the owner (remote page).  The frame leaves the pool
   before any shipping so that a circular eviction chain between full
   pools always finds a free slot. *)
let rec evict_frame t (frame : Buffer_pool.frame) =
  let pid = Page.id frame.page in
  (* A dirty remote eviction needs the owner up to receive the ship.
     Checked before the frame leaves the pool: removing first and
     blocking after would drop the only cached copy of the current
     version, and a later update from the stale disk base would mint a
     second lineage under the same PSNs. *)
  if frame.dirty && Page_id.owner pid <> t.id then begin
    let owner = peer t (Page_id.owner pid) in
    if not owner.up then Block.block (Block.Node_down { node = owner.id });
    ensure_link t ~dst:owner.id
  end;
  Buffer_pool.remove t.pool pid;
  if frame.dirty then begin
    wal_force t frame.last_lsn;
    if Page_id.owner pid = t.id then begin
      tracef t "FLUSH(evict) node%d %a psn=%d" t.id Page_id.pp pid (Page.psn frame.page);
      Disk.write t.disk frame.page;
      owner_after_flush t pid ~flushed_psn:(Page.psn frame.page)
    end
    else begin
      let owner = peer t (Page_id.owner pid) in
      ship_to_owner t ~owner ~lsn:frame.last_lsn frame.page;
      Dpt.on_replaced t.dpt pid ~end_of_log:(Log_manager.end_lsn t.log)
    end
  end

(* Ship a dirty page copy to its owner: one page-sized message plus the
   owner-side install.  The single place the [pages_shipped] counter and
   the [Page_ship] event are produced. *)
and ship_to_owner t ~owner ?(commit_path = false) ~lsn page =
  maybe_crashpoint t Repro_fault.Injector.Page_ship;
  let dup = send_dup t ~dst:owner.id ~commit_path ~bytes:(Wire.page (Env.config t.env)) () in
  bump t (fun m -> m.Metrics.pages_shipped <- m.Metrics.pages_shipped + 1);
  if Env.tracing t.env then
    (* [lsn] is the page's last update record: the WAL obligation this
       ship is subject to.  The trace auditor checks it against the
       sender's durable boundary. *)
    Env.emit t.env ~node:t.id Event.Page_ship
      [
        ("dst", Event.Int owner.id);
        ("page", Event.Str (Format.asprintf "%a" Page_id.pp (Page.id page)));
        ("psn", Event.Int (Page.psn page));
        ("lsn", Event.Int lsn);
      ];
  owner_receive_replaced owner (Page.copy page) ~from:t.id;
  (* A duplicated ship delivers the same copy twice; the owner-side
     install is a PSN-guarded merge, so the second delivery is a no-op
     beyond re-registering the (deduplicated) flush waiter. *)
  if dup then owner_receive_replaced owner (Page.copy page) ~from:t.id

(* Owner role: a peer replaced a dirty page and shipped it here.  The
   owner caches it dirty (it is now responsible for eventually forcing
   it) and remembers the sender as a flush waiter. *)
and owner_receive_replaced t page ~from =
  let pid = Page.id page in
  tracef t "RECV node%d <- node%d %a psn=%d" t.id from Page_id.pp pid (Page.psn page);
  register_flush_waiter t pid ~waiter:from;
  match install_or_merge t page with
  | (frame : Buffer_pool.frame) -> (
    frame.dirty <- true;
    match t.scheme with
    | Global_log _ ->
      (* Rdb/VMS-style: pages are forced to disk when exchanged between
         nodes; the owner never holds a transferred page dirty. *)
      Disk.write t.disk frame.page;
      frame.dirty <- false;
      owner_after_flush t pid ~flushed_psn:(Page.psn frame.page)
    | Local_logging | Server_logging _ | Pca_double_logging -> ())
  | exception Block.Would_block _ when not t.up ->
    (* The eviction chain hit an injected crash point and felled THIS
       node: nothing here may keep running on the wiped state. *)
    Block.block (Block.Node_down { node = t.id })
  | exception Block.Would_block _ ->
    (* No evictable frame to make room with.  The ship must not fail
       part-way — the sender has already dropped its copy — so force
       the received copy straight to disk instead of caching it.  The
       WAL rule holds: the sender forced its log before shipping. *)
    tracef t "RECV node%d <- node%d %a psn=%d: pool stuck, forcing to disk" t.id from Page_id.pp
      pid (Page.psn page);
    (match Disk.psn_on_disk t.disk pid with
    | Some d when d >= Page.psn page -> ()
    | Some _ | None -> Disk.write t.disk page);
    owner_after_flush t pid ~flushed_psn:(Page.psn page)

and make_room t =
  (* An eviction can block (a dirty remote victim whose owner is down).
     Such victims are parked — pinned so the policy skips them — and
     the next candidate is tried; the block surfaces only when nothing
     in the pool is evictable.  Parked frames are always unpinned on
     the way out. *)
  let parked = ref [] in
  let blocked = ref None in
  Fun.protect
    ~finally:(fun () -> List.iter Buffer_pool.unpin !parked)
    (fun () ->
      while Buffer_pool.is_full t.pool do
        match Buffer_pool.choose_victim t.pool with
        | Some victim -> (
          try evict_frame t victim
          with Block.Would_block _ as e ->
            (* Parking is for victims whose OWNER is unreachable.  If the
               eviction instead crashed this very node (injected crash
               point mid-ship), the wiped state must not keep running:
               surface the crash to the caller. *)
            if not t.up then raise e;
            if !blocked = None then blocked := Some e;
            Buffer_pool.pin victim;
            parked := victim :: !parked)
        | None -> (
          match !blocked with
          | Some e -> raise e
          | None -> invalid_arg "Node.make_room: every frame is pinned")
      done)

(* Put [page] in the pool, keeping the newer version if a copy is
   already (or — via an eviction chain triggered by make_room —
   concurrently) cached. *)
and install_or_merge t page =
  let pid = Page.id page in
  let merge frame =
    if Page.psn page > Page.psn frame.Buffer_pool.page then begin
      Page.write frame.Buffer_pool.page ~off:0 (Page.read page ~off:0 ~len:(Page.size page));
      Page.set_psn frame.Buffer_pool.page (Page.psn page)
    end;
    frame
  in
  match Buffer_pool.peek t.pool pid with
  | Some frame -> merge frame
  | None -> begin
    make_room t;
    match Buffer_pool.peek t.pool pid with
    | Some frame -> merge frame
    | None -> Buffer_pool.install t.pool page
  end

let install_page t page = install_or_merge t page

(* ------------------------------------------------------------------ *)
(* Page fetching (data shipping, §2.2)                                 *)
(* ------------------------------------------------------------------ *)

(* A page parked by deferred recovery must not be served from the
   owner's (stale) base: its latest committed state can only be rebuilt
   once the blocking peer's log is back.  Retryable, like a lock wait. *)
let check_not_deferred owner pid =
  match Page_id.Tbl.find_opt owner.deferred_pages pid with
  | Some blocker -> Block.block (Block.Page_unavailable { pid; blocker })
  | None -> ()

let fetch_page_from_owner t pid =
  let owner_id = Page_id.owner pid in
  if owner_id = t.id then begin
    check_not_deferred t pid;
    install_page t (owner_latest_copy t pid)
  end
  else begin
    let owner = peer t owner_id in
    if not owner.up then Block.block (Block.Node_down { node = owner_id });
    ensure_link t ~dst:owner_id;
    if Page_id.Set.mem pid owner.recovering_pages then Block.block (Block.Page_recovering pid);
    check_not_deferred owner pid;
    send t ~dst:owner_id ~bytes:Wire.control ();
    let page = owner_latest_copy owner pid in
    send owner ~dst:t.id ~bytes:(Wire.page (Env.config t.env)) ();
    install_page t page
  end

let ensure_cached_page t pid =
  check_up t;
  match Buffer_pool.find t.pool pid with
  | Some frame ->
    bump t (fun m -> m.Metrics.cache_hits <- m.Metrics.cache_hits + 1);
    frame
  | None ->
    bump t (fun m -> m.Metrics.cache_misses <- m.Metrics.cache_misses + 1);
    fetch_page_from_owner t pid

(* ------------------------------------------------------------------ *)
(* Callback locking (§2.1/§2.2)                                        *)
(* ------------------------------------------------------------------ *)

(* Is [txn] still an active transaction at [node]?  Used to detect and
   drop stale fairness marks (their requester died). *)
let txn_active_at t ~txn ~node =
  let n = peer t node in
  n.up
  &&
  match Txn_table.find n.txns txn with
  | Some descr -> Txn.is_active descr
  | None -> false

(* Holder side of a callback.  [requested] is the mode the *requester*
   wants: X means release the cached lock (and give up the page), S
   means demote an exclusive lock to shared.  A callback is refused as
   long as a local transaction holds a conflicting lock (§2.2); the
   refusal marks the cached lock revoke-pending so that new local
   acquisitions queue behind the remote requester instead of starving
   it. *)
let handle_callback t ~pid ~requested ~for_txn ~for_node =
  check_up t;
  (* Early lock release keeps the released pages' visibility strictly
     local: dependents are tracked in the same node's tables.  A
     callback means this page is about to become visible beyond the
     node (the owner will hand it onward), where no dependency can be
     recorded — so collapse the violation window instead: flush the
     pending batch, making the early releaser durable before the page
     leaves.  Free when elr is off (the table is empty). *)
  if Page_id.Tbl.mem t.elr_pages pid then Group_commit.flush t.gc;
  let conflicting =
    List.filter_map
      (fun (txn, held) ->
        match requested with
        | Mode.X -> Some txn
        | Mode.S -> if Mode.equal held Mode.X then Some txn else None)
      (Local_locks.holders_of t.locks pid)
  in
  if conflicting <> [] then begin
    Local_locks.set_revoke_pending t.locks pid ~mode:requested ~txn:for_txn ~node:for_node;
    Error conflicting
  end
  else if Page_id.owner pid = t.id then begin
    Local_locks.clear_revoke_pending t.locks pid;
    (* The owner's own client-level lock is being called back.  The
       owner is the cache of last resort for its pages: the (possibly
       dirty) frame stays in its pool as an owner-cached copy and only
       the client-level lock is surrendered. *)
    (match requested with
    | Mode.X -> Local_locks.drop_cached t.locks pid
    | Mode.S -> Local_locks.demote_cached_to_s t.locks pid);
    Ok ()
  end
  else begin
    (* Ship the current copy to the owner if we hold it dirty
       ("sends the copy of the page present in its buffer pool"). *)
    (match Buffer_pool.peek t.pool pid with
    | Some frame when frame.dirty ->
      wal_force t frame.last_lsn;
      let owner = peer t (Page_id.owner pid) in
      ship_to_owner t ~owner ~lsn:frame.last_lsn frame.page;
      Dpt.on_replaced t.dpt pid ~end_of_log:(Log_manager.end_lsn t.log);
      frame.dirty <- false;
      frame.rec_lsn <- Lsn.nil
    | Some _ | None -> ());
    (match requested with
    | Mode.X ->
      Buffer_pool.remove t.pool pid;
      Local_locks.drop_cached t.locks pid
    | Mode.S ->
      Local_locks.demote_cached_to_s t.locks pid;
      Local_locks.clear_revoke_pending t.locks pid);
    Ok ()
  end

(* Owner side: decide, run callbacks, grant.  Returns the page when the
   requester asked for a copy (grant + page travel in one message, as
   in §2.2).

   Fairness: the oldest requester that ever had to wait for this page
   holds a reservation; younger requesters queue behind it.  Together
   with the revoke-pending mark at the holders, this guarantees the
   oldest transaction in the system always makes progress. *)
let owner_grant_lock t ~requester ~txn ~pid ~mode ~need_page =
  check_up t;
  if Page_id.Set.mem pid t.recovering_pages then Block.block (Block.Page_recovering pid);
  check_not_deferred t pid;
  (match Page_id.Tbl.find_opt t.reservations pid with
  | Some (rtxn, rnode) when rtxn <> txn ->
    if txn_active_at t ~txn:rtxn ~node:rnode then begin
      if txn > rtxn then Block.block (Block.Lock_conflict { blockers = [ rtxn ] })
      (* an older requester proceeds and may steal the reservation *)
    end
    else Page_id.Tbl.remove t.reservations pid
  | Some _ | None -> ());
  (match Global_locks.request t.glocks ~node:requester ~pid ~mode with
  | Global_locks.Granted -> ()
  | Global_locks.Needs_callback { holders } ->
    let refusals =
      List.concat_map
        (fun (holder_id, _held) ->
          let holder = peer t holder_id in
          if not holder.up then Block.block (Block.Node_down { node = holder_id });
          ensure_link t ~dst:holder_id;
          bump t (fun m -> m.Metrics.callbacks_sent <- m.Metrics.callbacks_sent + 1);
          if Env.tracing t.env then
            Env.emit t.env ~node:t.id Event.Lock_callback
              [
                ("holder", Event.Int holder_id);
                ("requester", Event.Int requester);
                ("page", Event.Str (Format.asprintf "%a" Page_id.pp pid));
                ("mode", Event.Str (Format.asprintf "%a" Mode.pp mode));
              ];
          send t ~dst:holder_id ~bytes:Wire.control ();
          match handle_callback holder ~pid ~requested:mode ~for_txn:txn ~for_node:requester with
          | Ok () ->
            send holder ~dst:t.id ~bytes:Wire.control ();
            (match mode with
            | Mode.X -> Global_locks.release t.glocks ~node:holder_id ~pid
            | Mode.S -> Global_locks.demote_to_s t.glocks ~node:holder_id ~pid);
            []
          | Error blockers -> blockers)
        holders
    in
    if refusals <> [] then begin
      (match Page_id.Tbl.find_opt t.reservations pid with
      | Some (rtxn, _) when rtxn <= txn -> ()
      | Some _ | None -> Page_id.Tbl.replace t.reservations pid (txn, requester));
      Block.block (Block.Lock_conflict { blockers = refusals })
    end);
  (match Page_id.Tbl.find_opt t.reservations pid with
  | Some (rtxn, _) when rtxn = txn -> Page_id.Tbl.remove t.reservations pid
  | Some _ | None -> ());
  Global_locks.grant t.glocks ~node:requester ~pid ~mode;
  if need_page then Some (owner_latest_copy t pid) else None

(* Client side: obtain the transaction-level lock, going to the owner
   only when the node-level cached lock does not cover the request. *)
let acquire t ~txn ~pid ~mode =
  check_up t;
  Env.charge_lock_op t.env t.metrics;
  (* Local strict-2PL conflict first: no message can help with that. *)
  let local_conflicts =
    List.filter_map
      (fun (other, held) ->
        if other <> txn && not (Mode.compatible held mode) then Some other else None)
      (Local_locks.holders_of t.locks pid)
  in
  if local_conflicts <> [] then Block.block (Block.Lock_conflict { blockers = local_conflicts });
  (* Fairness: a pending revocation of the cached lock stops new local
     acquisitions that would prolong it (existing holders may finish). *)
  (match Local_locks.revoke_pending t.locks pid with
  | Some (pending_mode, rtxn, rnode) when rtxn <> txn ->
    if not (txn_active_at t ~txn:rtxn ~node:rnode) then
      Local_locks.clear_revoke_pending t.locks pid
    else begin
      let already_holds =
        match Local_locks.txn_mode t.locks ~txn ~pid with
        | Some held -> Mode.covers held mode
        | None -> false
      in
      let conflicts_with_pending =
        match pending_mode with Mode.X -> true | Mode.S -> Mode.equal mode Mode.X
      in
      if conflicts_with_pending && not already_holds then
        Block.block (Block.Lock_conflict { blockers = [ rtxn ] })
    end
  | Some _ | None -> ());
  if Local_locks.cache_covers t.locks pid mode then
    bump t (fun m -> m.Metrics.lock_requests_local <- m.Metrics.lock_requests_local + 1)
  else begin
    let owner_id = Page_id.owner pid in
    let need_page = not (Buffer_pool.contains t.pool pid) in
    let wait_from = Env.now t.env in
    if Env.tracing t.env then
      Env.emit t.env ~node:t.id Event.Lock_request
        [
          ("txn", Event.Int txn);
          ("page", Event.Str (Format.asprintf "%a" Page_id.pp pid));
          ("mode", Event.Str (Format.asprintf "%a" Mode.pp mode));
          ("owner", Event.Int owner_id);
        ];
    let page =
      if owner_id = t.id then begin
        bump t (fun m -> m.Metrics.lock_requests_local <- m.Metrics.lock_requests_local + 1);
        owner_grant_lock t ~requester:t.id ~txn ~pid ~mode ~need_page:false
      end
      else begin
        let owner = peer t owner_id in
        if not owner.up then Block.block (Block.Node_down { node = owner_id });
        ensure_link t ~dst:owner_id;
        bump t (fun m -> m.Metrics.lock_requests_remote <- m.Metrics.lock_requests_remote + 1);
        send t ~dst:owner_id ~bytes:Wire.control ();
        let page = owner_grant_lock owner ~requester:t.id ~txn ~pid ~mode ~need_page in
        let reply_bytes =
          match page with Some _ -> Wire.page (Env.config t.env) | None -> Wire.control
        in
        send owner ~dst:t.id ~bytes:reply_bytes ();
        page
      end
    in
    (match page with
    | Some p ->
      bump t (fun m -> m.Metrics.cache_misses <- m.Metrics.cache_misses + 1);
      ignore (install_page t p)
    | None -> ());
    Local_locks.set_cached_mode t.locks pid mode;
    (* Time spent obtaining the lock from the owner — messages, callbacks
       and any page transfer piggybacked on the grant. *)
    let wait = Env.now t.env -. wait_from in
    Env.observe t.env ~name:"lock_wait" ~node:t.id wait;
    if Env.tracing t.env then
      (* Closes the [Lock_request] opened above; the pair bounds the
         acquisition window for commit-latency attribution. *)
      Env.emit t.env ~node:t.id Event.Lock_acquired
        [
          ("txn", Event.Int txn);
          ("page", Event.Str (Format.asprintf "%a" Page_id.pp pid));
          ("mode", Event.Str (Format.asprintf "%a" Mode.pp mode));
          ("wait", Event.Float wait);
        ]
  end;
  match Local_locks.acquire t.locks ~txn ~pid ~mode with
  | Ok () -> (
    (* Controlled lock violation: if this page's lock was surrendered
       early by a committing transaction that is not yet durable, the
       grant just exposed pre-durable state — record the commit
       dependency.  The table is empty when elr is off, so this is a
       free lookup on the historical pipeline. *)
    match Page_id.Tbl.find_opt t.elr_pages pid with
    | Some releaser when releaser <> txn ->
      if t.on_dep ~dependent:txn ~antecedent:releaser && Env.tracing t.env then
        Env.emit t.env ~node:t.id Event.Commit_dep
          [
            ("txn", Event.Int txn);
            ("on", Event.Int releaser);
            ("page", Event.Str (Format.asprintf "%a" Page_id.pp pid));
          ]
    | Some _ | None -> ())
  | Error { Local_locks.holders } -> Block.block (Block.Lock_conflict { blockers = holders })

(* ------------------------------------------------------------------ *)
(* Log space management (§2.5)                                         *)
(* ------------------------------------------------------------------ *)

let owner_flush_page t pid =
  assert (Page_id.owner pid = t.id);
  check_up t;
  (* Flushing a deferred page would ack waiters against a base that is
     missing the parked peer's updates, wrongly retiring their DPT
     entries — the very claims the deferred redo still needs. *)
  check_not_deferred t pid;
  match Buffer_pool.peek t.pool pid with
  | Some frame ->
    if frame.dirty then begin
      wal_force t frame.last_lsn;
      tracef t "FLUSH(req) node%d %a psn=%d" t.id Page_id.pp pid (Page.psn frame.page);
      Disk.write t.disk frame.page;
      frame.dirty <- false;
      frame.rec_lsn <- Lsn.nil
    end;
    owner_after_flush t pid ~flushed_psn:(Page.psn frame.page)
  | None ->
    let flushed_psn =
      match Disk.read t.disk pid with Some page -> Page.psn page | None -> -1
    in
    owner_after_flush t pid ~flushed_psn

let free_log_space t =
  bump t (fun m -> m.Metrics.log_space_stalls <- m.Metrics.log_space_stalls + 1);
  (match Dpt.entry_with_min_redo_lsn t.dpt with
  | None -> ()
  | Some entry ->
    let pid = entry.Dpt.pid in
    (* Get our latest version to the owner so its flush covers our
       updates.  The frame is cleaned in place, never evicted: it may be
       pinned by the very update whose append ran out of log space. *)
    (match Buffer_pool.peek t.pool pid with
    | Some frame when frame.dirty ->
      wal_force t frame.last_lsn;
      if Page_id.owner pid = t.id then begin
        Disk.write t.disk frame.page;
        frame.dirty <- false;
        frame.rec_lsn <- Lsn.nil;
        owner_after_flush t pid ~flushed_psn:(Page.psn frame.page)
      end
      else begin
        let owner = peer t (Page_id.owner pid) in
        if (not owner.up) || not (link_up t ~dst:owner.id) then
          Block.block (Block.Log_space { node = t.id });
        ship_to_owner t ~owner ~lsn:frame.last_lsn frame.page;
        Dpt.on_replaced t.dpt pid ~end_of_log:(Log_manager.end_lsn t.log);
        frame.dirty <- false;
        frame.rec_lsn <- Lsn.nil
      end
    | Some _ | None -> ());
    let owner_id = Page_id.owner pid in
    if owner_id = t.id then owner_flush_page t pid
    else begin
      let owner = peer t owner_id in
      if (not owner.up) || not (link_up t ~dst:owner_id) then
        Block.block (Block.Log_space { node = t.id });
      bump t (fun m -> m.Metrics.flush_requests <- m.Metrics.flush_requests + 1);
      send t ~dst:owner_id ~bytes:Wire.control ();
      (* the request itself (re-)registers us: an earlier flush may have
         consumed the waiter list without covering this entry *)
      register_flush_waiter owner pid ~waiter:t.id;
      owner_flush_page owner pid
      (* the flush acknowledgement already updated our DPT entry *)
    end);
  let low_water =
    let dpt_bound =
      match Dpt.min_redo_lsn t.dpt with
      | None -> Log_manager.end_lsn t.log
      | Some lsn -> lsn
    in
    (* a live transaction's undo chain pins the log from its first
       record onwards — [live], not [active]: a committing transaction
       awaiting its group-commit force still needs its undo chain (a
       crash before the force makes it a loser) *)
    List.fold_left
      (fun acc (txn : Txn.t) ->
        if Lsn.is_nil txn.Txn.first_lsn then acc else Lsn.min acc txn.Txn.first_lsn)
      dpt_bound
      (Txn_table.live t.txns)
  in
  (* Space below the low-water mark is only reclaimable once durable
     (the device clamps truncation at the forced boundary). *)
  if low_water > Log_manager.durable_lsn t.log then begin
    Log_manager.force t.log ~upto:(low_water - 1);
    Group_commit.on_force t.gc
  end;
  Log_manager.truncate_to t.log low_water

let append_record t record =
  (* Rollback records always fit: without reserved undo space a full
     log could neither commit nor abort anything. *)
  let overdraft =
    match record.Record.body with Record.Clr _ | Record.Abort -> true | _ -> false
  in
  (* Freeing space may take several §2.5 rounds before the low-water
     mark actually moves (each round retires one DPT entry); once a
     round changes nothing, the log is pinned by the oldest active
     transaction's undo chain and someone must be rolled back. *)
  let state () =
    (Log_manager.available_bytes t.log, Dpt.min_redo_lsn t.dpt, Dpt.size t.dpt)
  in
  let rec go attempts =
    match Log_manager.append ~overdraft t.log record with
    | lsn -> lsn
    | exception Log_manager.Log_full ->
      let before = state () in
      free_log_space t;
      if state () = before then begin
        (* A committing transaction may be the oldest pinner; flushing
           the pending batch completes it (and unpins its undo chain)
           without blocking anyone. *)
        if Group_commit.pending_count t.gc > 0 then Group_commit.flush t.gc
        else begin
        let pinner =
          List.fold_left
            (fun acc (txn : Txn.t) ->
              if Lsn.is_nil txn.Txn.first_lsn then acc
              else
                match acc with
                | None -> Some txn
                | Some best ->
                  if Lsn.compare txn.Txn.first_lsn best.Txn.first_lsn < 0 then Some txn else acc)
            None (Txn_table.active t.txns)
        in
        match pinner with
        | Some txn -> Block.block (Block.Lock_conflict { blockers = [ txn.Txn.id ] })
        | None ->
          invalid_arg
            (Printf.sprintf
               "Node.append_record: log capacity smaller than the working set (node=%d used=%d)"
               t.id (Log_manager.used_bytes t.log))
        end
      end;
      if attempts > 1024 then invalid_arg "Node.append_record: cannot free log space";
      go (attempts + 1)
  in
  go 0

(* Route a transaction record to the scheme's log.  Under the
   shared-log baseline each append is a network round to the log node —
   precisely the serialisation bottleneck the paper criticises in
   Rdb/VMS (§3.2). *)
let append_txn_record t record =
  match t.scheme with
  | Global_log { log_node } when log_node <> t.id ->
    let target = peer t log_node in
    if not target.up then Block.block (Block.Node_down { node = log_node });
    ensure_link t ~dst:log_node;
    let encoded = String.length (Record.encode record) in
    send t ~dst:log_node ~bytes:(Wire.log_record encoded) ();
    bump t (fun m -> m.Metrics.log_records_shipped <- m.Metrics.log_records_shipped + 1);
    Env.charge_lock_op t.env target.metrics (* the global log-tail latch *);
    Log_manager.append target.log record
  | Global_log _ | Local_logging | Server_logging _ | Pca_double_logging ->
    append_record t record

(* ------------------------------------------------------------------ *)
(* Transaction operations                                              *)
(* ------------------------------------------------------------------ *)

let begin_txn t ~id =
  check_up t;
  let txn = Txn.make ~id ~node:t.id in
  txn.Txn.began <- Env.now t.env;
  if Env.tracing t.env then begin
    let obs = Env.obs t.env in
    txn.Txn.span <-
      Recorder.span_begin obs ~time:txn.Txn.began ~node:t.id (Printf.sprintf "txn.%d" id);
    Env.emit t.env ~node:t.id Event.Txn_begin [ ("txn", Event.Int id) ]
  end;
  Txn_table.register t.txns txn;
  txn

let active_txn t id =
  (* An injected crash can fell the node between a script's steps: the
     table was cleared with it, so the caller must see [Node_down] (a
     retryable block), not an unknown-transaction error. *)
  check_up t;
  let txn = Txn_table.find_exn t.txns id in
  if not (Txn.is_active txn) then
    invalid_arg (Printf.sprintf "Node: transaction %d is not active" id);
  txn

(* Every transaction operation below runs under [Env.with_txn]: all
   events its work emits — including owner-side work on other nodes —
   are stamped as caused by this transaction. *)

let read t ~txn ~pid ~off ~len =
  let descr = active_txn t txn in
  Env.with_txn t.env ~txn ~span:descr.Txn.span @@ fun () ->
  acquire t ~txn ~pid ~mode:Mode.S;
  if descr.Txn.locks_from < 0. then descr.Txn.locks_from <- Env.now t.env;
  let frame = ensure_cached_page t pid in
  Page.read frame.page ~off ~len

let read_cell t ~txn ~pid ~off =
  let descr = active_txn t txn in
  Env.with_txn t.env ~txn ~span:descr.Txn.span @@ fun () ->
  acquire t ~txn ~pid ~mode:Mode.S;
  if descr.Txn.locks_from < 0. then descr.Txn.locks_from <- Env.now t.env;
  let frame = ensure_cached_page t pid in
  Page.get_cell frame.page ~off

let log_update t (txn : Txn.t) pid (frame : Buffer_pool.frame) op =
  (* The append can trigger §2.5 space management, which evicts pages —
     the frame being updated must not be a victim. *)
  Buffer_pool.pin frame;
  Fun.protect ~finally:(fun () -> Buffer_pool.unpin frame) @@ fun () ->
  let psn_before = Page.psn frame.page in
  let record =
    { Record.txn = txn.Txn.id; prev = txn.Txn.last_lsn; body = Update { pid; psn_before; op } }
  in
  let lsn = append_txn_record t record in
  (* §2.2: the DPT entry carries the page's PSN and a conservative
     RedoLSN — the record's own position.  The entry is created after
     the append: the §2.5 space-management rounds a full log triggers
     inside the append could otherwise retire it prematurely. *)
  Dpt.add_if_absent t.dpt pid ~page_psn:psn_before ~end_of_log:lsn;
  txn.Txn.logged_records <- txn.Txn.logged_records + 1;
  txn.Txn.logged_bytes <- txn.Txn.logged_bytes + String.length (Record.encode record);
  if Page_id.owner pid <> t.id then
    txn.Txn.remote_updated <- Page_id.Set.add pid txn.Txn.remote_updated;
  tracef t "UPD node%d T%d %a psn%d->%d lsn=%d %a" t.id txn.Txn.id Page_id.pp pid psn_before
    (psn_before + 1) lsn Record.pp_op op;
  Txn.record_logged txn lsn;
  Record.apply_op frame.page op;
  Page.bump_psn frame.page;
  Buffer_pool.mark_dirty frame ~lsn;
  Dpt.on_update t.dpt pid ~new_psn:(Page.psn frame.page)

let update_bytes t ~txn ~pid ~off s =
  let txn = active_txn t txn in
  Env.with_txn t.env ~txn:txn.Txn.id ~span:txn.Txn.span @@ fun () ->
  acquire t ~txn:txn.Txn.id ~pid ~mode:Mode.X;
  if txn.Txn.locks_from < 0. then txn.Txn.locks_from <- Env.now t.env;
  let frame = ensure_cached_page t pid in
  let before = Page.read frame.page ~off ~len:(String.length s) in
  log_update t txn pid frame (Record.Physical { off; before; after = s })

let update_delta t ~txn ~pid ~off delta =
  let txn = active_txn t txn in
  Env.with_txn t.env ~txn:txn.Txn.id ~span:txn.Txn.span @@ fun () ->
  acquire t ~txn:txn.Txn.id ~pid ~mode:Mode.X;
  if txn.Txn.locks_from < 0. then txn.Txn.locks_from <- Env.now t.env;
  let frame = ensure_cached_page t pid in
  log_update t txn pid frame (Record.Delta { off; delta })

(* Per-scheme durable-commit work.  This is experiment E1's subject:
   what must happen between "commit requested" and "commit durable". *)
let commit_scheme_work t (txn : Txn.t) lsn =
  match t.scheme with
  | Local_logging ->
    (* The paper's entire commit path: one local log force, zero
       messages.  The group-commit batch is always empty here —
       batching commits take the [Committing] branch in [commit]
       instead — and the force-sweeps-batch invariant is checked
       interprocedurally (ipc-force-sweep), so no local sweep. *)
    Log_manager.force t.log ~upto:lsn
  | Server_logging { server } ->
    (* ARIES/CSA: the transaction's log records travel to the server in
       one batch; the server appends them to the only durable log,
       forces it, and acknowledges. *)
    let srv = peer t server in
    if not srv.up then Block.block (Block.Node_down { node = server });
    ensure_link t ~dst:server;
    send t ~dst:server ~commit_path:true ~bytes:(Wire.log_record txn.Txn.logged_bytes) ();
    bump t (fun m ->
        m.Metrics.log_records_shipped <- m.Metrics.log_records_shipped + txn.Txn.logged_records);
    if server <> t.id then begin
      Env.charge_cpu_for t.env srv.metrics
        (float_of_int txn.Txn.logged_records
        *. (Env.config t.env).Repro_sim.Config.cpu_per_log_record);
      bump srv (fun m -> m.Metrics.log_appends <- m.Metrics.log_appends + txn.Txn.logged_records);
      bump srv (fun m -> m.Metrics.log_bytes <- m.Metrics.log_bytes + txn.Txn.logged_bytes);
      Env.charge_log_force t.env srv.metrics ~bytes:txn.Txn.logged_bytes ();
      send srv ~dst:t.id ~commit_path:true ~bytes:Wire.control ()
    end
    else Log_manager.force t.log ~upto:lsn
  | Pca_double_logging ->
    (* Local force, then every updated remote page travels to its PCA
       node at commit, together with its log records, which the PCA
       node appends to its own log too (double logging). *)
    Log_manager.force t.log ~upto:lsn;
    let remote = txn.Txn.remote_updated in
    let n_remote = max 1 (Page_id.Set.cardinal remote) in
    let bytes_per_page = txn.Txn.logged_bytes / n_remote in
    Page_id.Set.iter
      (fun pid ->
        let owner = peer t (Page_id.owner pid) in
        if not owner.up then Block.block (Block.Node_down { node = owner.id });
        ensure_link t ~dst:owner.id;
        (match Buffer_pool.peek t.pool pid with
        | Some frame -> ship_to_owner t ~owner ~commit_path:true ~lsn:frame.last_lsn frame.page
        | None -> () (* already replaced to the owner earlier *));
        send t ~dst:owner.id ~commit_path:true ~bytes:(Wire.log_record bytes_per_page) ();
        bump t (fun m -> m.Metrics.log_records_shipped <- m.Metrics.log_records_shipped + 1);
        bump owner (fun m -> m.Metrics.log_appends <- m.Metrics.log_appends + 1);
        bump owner (fun m -> m.Metrics.log_bytes <- m.Metrics.log_bytes + bytes_per_page);
        Env.charge_log_force t.env owner.metrics ~bytes:bytes_per_page ())
      remote
  | Global_log { log_node } ->
    (* The commit record already travelled to the shared log; force it
       there and wait for the acknowledgement. *)
    let ln = peer t log_node in
    ensure_link t ~dst:log_node;
    Log_manager.force ln.log ~upto:lsn;
    if log_node <> t.id then send ln ~dst:t.id ~commit_path:true ~bytes:Wire.control ()

(* E9 ablation: without inter-transaction caching, the node gives the
   cached locks (and the pages under them — callback-locking invariant)
   back to their owners as soon as no local transaction holds them. *)
let release_unused_cached_locks t =
  let cached = Local_locks.cached_pages t.locks in
  (* Coalesced WAL-before-ship: one force to the max last-LSN over every
     dirty page about to leave this round, instead of one force per
     page.  Conservatively covers a superset (owner-up / link checks
     happen per page below) — forcing a little further is always
     WAL-safe. *)
  let ship_upto =
    List.fold_left
      (fun acc (pid, _mode) ->
        if (not (Local_locks.any_txn_holds t.locks pid)) && Page_id.owner pid <> t.id then
          match Buffer_pool.peek t.pool pid with
          | Some (frame : Buffer_pool.frame) when frame.dirty -> Lsn.max acc frame.last_lsn
          | Some _ | None -> acc
        else acc)
      Lsn.nil cached
  in
  wal_force t ship_upto;
  List.iter
    (fun (pid, _mode) ->
      if
        (not (Local_locks.any_txn_holds t.locks pid))
        && Page_id.owner pid <> t.id
        (* Partitioned from a live owner: keep the cached lock and the
           page — dropping them locally while the owner still records
           the grant would break the cross-node lock invariant.  The
           next end-of-transaction retries the release. *)
        && ((not (peer t (Page_id.owner pid)).up) || link_up t ~dst:(Page_id.owner pid))
      then begin
        (match Buffer_pool.peek t.pool pid with
        | Some frame ->
          if frame.dirty then begin
            (* covered by the round's coalesced force above *)
            let owner = peer t (Page_id.owner pid) in
            if owner.up then begin
              ship_to_owner t ~owner ~lsn:frame.last_lsn frame.page;
              Dpt.on_replaced t.dpt pid ~end_of_log:(Log_manager.end_lsn t.log)
            end
          end;
          Buffer_pool.remove t.pool pid
        | None -> ());
        Local_locks.drop_cached t.locks pid;
        let owner = peer t (Page_id.owner pid) in
        if owner.up then begin
          send t ~dst:owner.id ~bytes:Wire.control ();
          Global_locks.release owner.glocks ~node:t.id ~pid
        end
      end)
    cached

let end_of_txn_lock_release t txn_id =
  Local_locks.release_txn t.locks ~txn:txn_id;
  if not t.retain_cached_locks then release_unused_cached_locks t

(* Lock-hold duration: first successful acquire -> the release that
   actually freed the locks (early or terminal).  The [-1.] reset makes
   the observation idempotent — the terminal release after an early one
   observes nothing. *)
let observe_lock_hold t (txn : Txn.t) =
  if txn.Txn.locks_from >= 0. then begin
    Env.observe t.env ~name:"lock_hold" ~node:t.id (Env.now t.env -. txn.Txn.locks_from);
    txn.Txn.locks_from <- -1.
  end

(* Register the pages a committing transaction released early: later
   acquirers of these pages pick up a commit dependency on [txn] (see
   [acquire]).  Newest releaser wins per page — a chain A -> B -> C
   stays connected because B recorded its dependency on A before
   overwriting A's entry. *)
let elr_record_release t ~txn released =
  List.iter
    (fun (pid, _mode) ->
      Page_id.Tbl.replace t.elr_pages pid txn;
      match Hashtbl.find_opt t.elr_by_txn txn with
      | Some pids -> Hashtbl.replace t.elr_by_txn txn (pid :: pids)
      | None -> Hashtbl.add t.elr_by_txn txn [ pid ])
    released

(* The releaser reached its terminal state (durable commit, or wiped by
   a crash): its pages stop breeding dependencies.  The equality check
   leaves entries alone when a later releaser overwrote them. *)
let elr_settle t txn =
  match Hashtbl.find_opt t.elr_by_txn txn with
  | None -> ()
  | Some pids ->
    Hashtbl.remove t.elr_by_txn txn;
    List.iter
      (fun pid ->
        match Page_id.Tbl.find_opt t.elr_pages pid with
        | Some r when r = txn -> Page_id.Tbl.remove t.elr_pages pid
        | Some _ | None -> ())
      pids

(* Tentpole: controlled lock violation.  A committing transaction
   surrenders its txn-level page locks at batch submit instead of
   holding them across the group-commit window; conflicting local work
   proceeds immediately and records a commit dependency.  The summary
   event carries the transaction id (the per-page trace comes from the
   lock-table tracer). *)
let early_lock_release t (txn : Txn.t) =
  observe_lock_hold t txn;
  let released = Local_locks.release_txn_early t.locks ~txn:txn.Txn.id in
  elr_record_release t ~txn:txn.Txn.id released;
  if Env.tracing t.env && released <> [] then
    Env.emit t.env ~node:t.id Event.Lock_early_release
      [ ("txn", Event.Int txn.Txn.id); ("pages", Event.Int (List.length released)) ]

(* Everything after "the commit record is durable": release locks,
   retire the descriptor, account.  [commit_from] is when the commit was
   requested (= when the transaction joined the batch, under group
   commit), so commit_latency includes the batching wait. *)
let complete_commit t (txn : Txn.t) ~commit_from =
  (* Re-assert the causal context: a batched completion runs inside
     whichever operation forced the batch — another transaction's
     commit, an eviction's WAL force — and this transaction's release
     and commit events must not be attributed to that trigger. *)
  Env.with_txn t.env ~txn:txn.Txn.id ~span:txn.Txn.span @@ fun () ->
  txn.Txn.state <- Txn.Committed;
  let durable_at = Env.now t.env in
  (* commit request -> durable: the paper's E1 subject *)
  Env.observe t.env ~name:"commit_latency" ~node:t.id (durable_at -. commit_from);
  Env.observe t.env ~name:"txn_duration" ~node:t.id (durable_at -. txn.Txn.began);
  observe_lock_hold t txn;
  end_of_txn_lock_release t txn.Txn.id;
  elr_settle t txn.Txn.id;
  Txn_table.remove t.txns txn.Txn.id;
  bump t (fun m -> m.Metrics.txn_committed <- m.Metrics.txn_committed + 1);
  if Env.tracing t.env then begin
    Env.emit t.env ~node:t.id Event.Txn_commit
      [ ("txn", Event.Int txn.Txn.id); ("dur", Event.Float (durable_at -. txn.Txn.began)) ];
    Recorder.span_end (Env.obs t.env) ~time:durable_at txn.Txn.span
  end;
  tracef t "T%d committed at node %d" txn.Txn.id t.id

(* Group-commit completion: the batch force (or a piggybacking force)
   just made [txn]'s commit record durable.  Idempotent — a transaction
   that is no longer [Committing] (crash wiped the table) is left
   alone. *)
let finish_commit t ~txn ~submitted_at =
  match Txn_table.find t.txns txn with
  | Some descr when descr.Txn.state = Txn.Committing ->
    complete_commit t descr ~commit_from:submitted_at
  | Some _ | None -> ()

(* Install the group-commit hooks.  [on_durable] runs BEFORE the node's
   own completion work so a caller-side durable registry is written
   first — completion can hit an injected crash point, and the caller
   must still know the commit survived. *)
let wire_group_commit t ?on_lost ~on_durable () =
  Group_commit.set_hooks t.gc ?on_lost
    ~before_force:(fun () ->
      (* The batch is still pending here: an injected crash loses every
         member — none of their commit records were forced. *)
      maybe_crashpoint t Repro_fault.Injector.Commit_force)
    ~on_durable:(fun ~txn ~submitted_at ->
      on_durable ~txn ~submitted_at;
      finish_commit t ~txn ~submitted_at)
    ()

let create env ~id ~pool_capacity ?(pool_policy = Buffer_pool.Lru) ?log_capacity
    ?(scheme = Local_logging) ?(retain_cached_locks = true) () =
  let t =
    Node_state.create env ~id ~pool_capacity ~pool_policy ~log_capacity ~scheme
      ~retain_cached_locks
  in
  (* Standalone default: complete commits with no external registry.
     [Cluster.create] re-wires with its durable-commit registry. *)
  wire_group_commit t ~on_durable:(fun ~txn:_ ~submitted_at:_ -> ()) ();
  t

let commit t ~txn =
  check_up t;
  let txn = active_txn t txn in
  Env.with_txn t.env ~txn:txn.Txn.id ~span:txn.Txn.span @@ fun () ->
  let commit_from = Env.now t.env in
  let lsn =
    append_txn_record t { Record.txn = txn.Txn.id; prev = txn.Txn.last_lsn; body = Commit }
  in
  Txn.record_logged txn lsn;
  (* The window the tentpole cares about: the Commit record is appended
     but not yet forced — a crash here must abort the transaction at
     recovery (its commit was never acknowledged). *)
  maybe_crashpoint t Repro_fault.Injector.Commit_force;
  (* After the crash point: a transaction felled there never submitted,
     so the auditor's batch-loss check correctly expects no commit. *)
  if Env.tracing t.env then
    Env.emit t.env ~node:t.id Event.Commit_submit
      [ ("txn", Event.Int txn.Txn.id); ("lsn", Event.Int lsn) ];
  match t.scheme with
  | Local_logging when Group_commit.batching t.gc ->
    (* Group commit: join the node's pending batch instead of forcing
       alone.  Not durable yet — the caller must poll the outcome. *)
    txn.Txn.state <- Txn.Committing;
    (* Early release happens before [submit]: if the submit fills the
       batch and flushes immediately, completion settles the entries
       this release just registered. *)
    if Repro_sim.Config.early_release_enabled (Env.config t.env) then early_lock_release t txn;
    Group_commit.submit t.gc ~txn:txn.Txn.id ~lsn
  | Local_logging | Server_logging _ | Pca_double_logging | Global_log _ ->
    commit_scheme_work t txn lsn;
    complete_commit t txn ~commit_from

let undo_ops t (txn : Txn.t) =
  {
    Undo.read_record = (fun lsn -> Log_manager.read (txn_log t) lsn);
    perform_undo =
      (fun ~txn:txn_id ~pid ~op ~undo_next ->
        maybe_crashpoint t Repro_fault.Injector.Rollback;
        (* The page may have been replaced since the update; re-fetch it
           from the owner (§2.2: "the rollback procedure may have to
           fetch some of the affected pages from the owner nodes"). *)
        let frame = ensure_cached_page t pid in
        Buffer_pool.pin frame;
        Fun.protect ~finally:(fun () -> Buffer_pool.unpin frame) @@ fun () ->
        let psn_before = Page.psn frame.page in
        let record =
          {
            Record.txn = txn_id;
            prev = txn.Txn.last_lsn;
            body = Clr { pid; psn_before; op; undo_next };
          }
        in
        let lsn = append_txn_record t record in
        tracef t "CLR node%d T%d %a psn%d->%d lsn=%d %a" t.id txn_id Page_id.pp pid psn_before
          (psn_before + 1) lsn Record.pp_op op;
        Dpt.add_if_absent t.dpt pid ~page_psn:psn_before ~end_of_log:lsn;
        txn.Txn.logged_records <- txn.Txn.logged_records + 1;
        txn.Txn.logged_bytes <- txn.Txn.logged_bytes + String.length (Record.encode record);
        Txn.record_logged txn lsn;
        Record.apply_op frame.page op;
        Page.bump_psn frame.page;
        Buffer_pool.mark_dirty frame ~lsn;
        Dpt.on_update t.dpt pid ~new_psn:(Page.psn frame.page);
        lsn);
  }

let abort t ~txn =
  check_up t;
  let txn = active_txn t txn in
  Env.with_txn t.env ~txn:txn.Txn.id ~span:txn.Txn.span @@ fun () ->
  let _last = Undo.rollback (undo_ops t txn) ~txn:txn.Txn.id ~from:txn.Txn.last_lsn ~upto:Lsn.nil in
  let lsn =
    append_txn_record t { Record.txn = txn.Txn.id; prev = txn.Txn.last_lsn; body = Abort }
  in
  Txn.record_logged txn lsn;
  txn.Txn.state <- Txn.Aborted;
  observe_lock_hold t txn;
  end_of_txn_lock_release t txn.Txn.id;
  Txn_table.remove t.txns txn.Txn.id;
  bump t (fun m -> m.Metrics.txn_aborted <- m.Metrics.txn_aborted + 1);
  if Env.tracing t.env then begin
    Env.emit t.env ~node:t.id Event.Txn_abort [ ("txn", Event.Int txn.Txn.id) ];
    Recorder.span_end (Env.obs t.env) ~time:(Env.now t.env) txn.Txn.span
  end;
  tracef t "T%d aborted at node %d" txn.Txn.id t.id

let savepoint t ~txn name =
  check_up t;
  let txn = active_txn t txn in
  Env.with_txn t.env ~txn:txn.Txn.id ~span:txn.Txn.span @@ fun () ->
  let lsn =
    append_txn_record t { Record.txn = txn.Txn.id; prev = txn.Txn.last_lsn; body = Savepoint name }
  in
  Txn.record_logged txn lsn;
  Txn.add_savepoint txn name lsn

let rollback_to t ~txn name =
  check_up t;
  let txn = active_txn t txn in
  match Txn.savepoint_lsn txn name with
  | None -> invalid_arg (Printf.sprintf "Node.rollback_to: unknown savepoint %S" name)
  | Some sp ->
    Env.with_txn t.env ~txn:txn.Txn.id ~span:txn.Txn.span @@ fun () ->
    let _last = Undo.rollback (undo_ops t txn) ~txn:txn.Txn.id ~from:txn.Txn.last_lsn ~upto:sp in
    Txn.release_savepoints_after txn sp;
    tracef t "T%d rolled back to %S" txn.Txn.id name

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let checkpoint t =
  check_up t;
  (* [snapshot_active] excludes [Committing] transactions, which is
     safe: a committing transaction's commit record precedes the
     checkpoint-begin record in the log, so the checkpoint's force
     below makes the commit durable too — analysis never needs it as a
     loser once this checkpoint is the restart point. *)
  ignore
    (Repro_aries.Checkpoint.take t.log t.env t.metrics ~gc:t.gc ~dpt:(Dpt.snapshot t.dpt)
       ~active:(Txn_table.snapshot_active t.txns) ~master:t.master
       ~on_before_master:(fun () ->
         (* [Checkpoint.take ~gc] has already swept the force it took:
            piggybacked pending commits completed BEFORE this crash
            point can fire — their records are durable now, and
            dropping them as "pending" at the crash would let the
            driver retry a transaction that recovery will also redo. *)
         maybe_crashpoint t Repro_fault.Injector.Checkpoint))

let install_recovered_page t page ~waiters =
  let pid = Page.id page in
  Buffer_pool.remove t.pool pid;
  make_room t;
  let frame = Buffer_pool.install t.pool (Page.copy page) in
  frame.dirty <- true;
  List.iter (fun waiter -> if waiter <> t.id then register_flush_waiter t pid ~waiter) waiters

let check_invariants t =
  Local_locks.check_invariants t.locks;
  Global_locks.check_invariants t.glocks;
  (* Callback-locking invariant: a cached *remote* page implies a cached
     lock.  Own pages are exempt: the owner caches replaced dirty copies
     it is flush-responsible for, and it is itself the lock service. *)
  List.iter
    (fun pid ->
      if Page_id.owner pid <> t.id && Local_locks.cached_mode t.locks pid = None then
        invalid_arg (Format.asprintf "node %d caches %a without a lock" t.id Page_id.pp pid))
    (Buffer_pool.cached_ids t.pool);
  (* A dirty frame always has a DPT entry (it was dirtied locally or
     received as a replaced page we are flush-responsible for). *)
  List.iter
    (fun (frame : Buffer_pool.frame) ->
      let pid = Page.id frame.page in
      if Page_id.owner pid <> t.id && not (Dpt.mem t.dpt pid) then
        invalid_arg
          (Format.asprintf "node %d holds dirty remote page %a without a DPT entry" t.id
             Page_id.pp pid))
    (Buffer_pool.dirty_frames t.pool)
