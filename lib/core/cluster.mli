(** A simulated CBL cluster — the library's main entry point.

    Builds the Figure-1 topology: [n] networked nodes, each with a
    local log; any subset of them owns databases (pages are allocated
    at a chosen owner).  Issues cluster-wide transaction ids, routes
    operations to the executing node, and provides crash / recovery
    entry points and the global waits-for deadlock detector.

    {[
      let cluster = Cluster.create ~nodes:4 (Repro_sim.Config.default) in
      let pages = Cluster.allocate_pages cluster ~owner:0 ~count:16 in
      let t = Cluster.begin_txn cluster ~node:1 in
      Cluster.update_delta cluster ~txn:t ~pid:(List.hd pages) ~off:0 1L;
      Cluster.commit cluster ~txn:t;          (* zero messages! *)
      Cluster.crash cluster ~node:1;
      Cluster.recover cluster ~nodes:[ 1 ]    (* §2.3 protocol *)
    ]} *)

type t

val create :
  ?trace:bool ->
  ?trace_capacity:int ->
  ?seed:int ->
  ?faults:Repro_fault.Injector.t ->
  ?pool_capacity:int ->
  ?pool_policy:Repro_buffer.Buffer_pool.policy ->
  ?log_capacity:int ->
  ?scheme:Node_state.scheme ->
  ?retain_cached_locks:bool ->
  nodes:int ->
  Repro_sim.Config.t ->
  t
(** [pool_capacity] defaults to 64 pages per node; [log_capacity]
    (bytes) defaults to unbounded; [scheme] defaults to the paper's
    {!Node_state.Local_logging} (baselines: see {!Node_state.scheme}). *)

val env : t -> Repro_sim.Env.t
val node_count : t -> int
val node : t -> int -> Node.t
val nodes : t -> Node.t list
val now : t -> float
(** Simulated seconds elapsed. *)

(** {1 Database population} *)

val allocate_pages : t -> owner:int -> count:int -> Repro_storage.Page_id.t list

(** {1 Transactions}

    All operations may raise {!Block.Would_block}; callers either use
    the workload driver (which retries and detects deadlocks) or treat
    it as an error. *)

val begin_txn : t -> node:int -> int
(** Returns the new transaction's cluster-wide id. *)

val read : t -> txn:int -> pid:Repro_storage.Page_id.t -> off:int -> len:int -> string
val read_cell : t -> txn:int -> pid:Repro_storage.Page_id.t -> off:int -> int64
val update_bytes : t -> txn:int -> pid:Repro_storage.Page_id.t -> off:int -> string -> unit
val update_delta : t -> txn:int -> pid:Repro_storage.Page_id.t -> off:int -> int64 -> unit
val commit : t -> txn:int -> unit
(** With group commit enabled, [commit] may return with the transaction
    still [Committing] (in its node's pending batch, not yet durable);
    poll {!commit_outcome} and drive {!pump_group_commit}.  Otherwise
    the commit is durable on return. *)

val commit_outcome : t -> txn:int -> [ `Pending | `Durable | `Gone ]
(** Where a submitted commit stands.  [`Pending]: still in the node's
    batch, not durable — keep pumping; with early lock release on, a
    durable commit is also held at [`Pending] while a commit dependency
    on a not-yet-durable antecedent is open (the wait feeds the
    [dep_wait] histogram).  [`Durable]: the commit record was forced
    and every antecedent settled; read-once (a second call answers
    [`Gone]).  [`Gone]: the batch was lost to a crash before its force
    — or a lost antecedent dragged this transaction down with its
    dependency closure — the transaction never committed and restart
    rolls it back. *)

val commit_antecedents : t -> txn:int -> int list
(** Open early-lock-release commit dependencies of [txn] (empty when
    unconstrained; for tests and invariant checks). *)

val dep_edge_count : t -> int
(** Live commit-dependency edge count. *)

val dep_edges_registered : t -> int
(** Lifetime count of commit-dependency edges ever recorded — how often
    early release actually exposed pre-durable state. *)

val pump_group_commit : t -> idle:bool -> bool
(** Drive the group-commit timers: flush every batch whose window has
    expired.  With [idle:true] (no client made progress this round) and
    no batch due, advances the simulated clock to the earliest batch
    deadline and flushes — the timer firing.  Returns whether any batch
    moved. *)

val abort : t -> txn:int -> unit
val savepoint : t -> txn:int -> string -> unit
val rollback_to : t -> txn:int -> string -> unit

val txn_node : t -> int -> int
(** The node a transaction runs on. *)

val active_txns : t -> node:int -> int list

(** {1 Maintenance, failures, recovery} *)

val checkpoint : t -> node:int -> unit
val crash : t -> node:int -> unit
(** Also drops the node's in-flight transactions from the deadlock
    graph (they are losers; restart will roll them back). *)

val recover : ?strategy:Recovery.strategy -> ?defer:int list -> t -> nodes:int list -> unit
(** §2.3 for a single node, §2.4 for several.  [strategy] defaults to
    the paper's PSN-coordinated protocol; [Merged_logs] is the E4
    baseline.

    Every down node must appear in exactly one of [nodes] (recover it
    now) or [defer] (leave it down {e intentionally}: its own pages are
    skipped, and any redo that needs its log records parks on it —
    deferred recovery — instead of erroring).  A down node in neither
    list is a caller mistake and raises [Invalid_argument] naming the
    offending node(s); so does listing a node in both, or deferring a
    node that is up. *)

val recover_timed :
  ?strategy:Recovery.strategy -> ?defer:int list -> t -> nodes:int list -> Recovery.summary
(** Like {!recover}, additionally returning the per-phase timing
    breakdown (E4/E5/E8 reporting). *)

val operational_nodes : t -> int list

(** {1 Deadlock handling} *)

val deadlock : t -> Repro_lock.Deadlock.t
(** The global waits-for graph, maintained by the workload driver. *)

(** {1 Introspection} *)

val global_metrics : t -> Repro_sim.Metrics.t
val node_metrics : t -> int -> Repro_sim.Metrics.t
val check_invariants : t -> unit
(** Per-node invariants plus cross-node lock-table consistency: every
    node-level lock cached at a client is present in the owner's table
    with a covering mode, and vice versa. *)
