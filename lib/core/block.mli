(** Blocking model.

    The simulator has no threads: an operation that would have to wait
    in a real system raises {!Would_block} with a typed reason, and the
    workload driver re-queues the transaction's step and retries later.
    Lock conflicts carry the blocking transaction ids so the driver can
    maintain the waits-for graph for deadlock detection. *)

type reason =
  | Lock_conflict of { blockers : int list }
      (** conflicting transaction ids (local or remote — ids are
          cluster-wide) *)
  | Node_down of { node : int }  (** the owner of the data is crashed *)
  | Log_space of { node : int }
      (** the node's log is full and freeing space is itself blocked *)
  | Page_recovering of Repro_storage.Page_id.t
      (** access stopped until the owner finishes recovering the page *)
  | Page_unavailable of { pid : Repro_storage.Page_id.t; blocker : int }
      (** the page's recovery is deferred until [blocker] comes back;
          retry after the blocker recovers *)
  | Net_unreachable of { src : int; dst : int }
      (** an injected partition blocks the link; retry heals it *)

exception Would_block of reason

val block : reason -> 'a
val pp_reason : Format.formatter -> reason -> unit
