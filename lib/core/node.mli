(** One CBL node: normal transaction processing (paper §2.2).

    A node plays two roles at once:
    - {b client}: runs transactions against pages it caches, logging
      every update — local or remote — in its {e own} log, and commits
      with a single local log force and {e zero messages};
    - {b owner}: services lock and page requests for the pages of its
      attached database, runs the callback protocol, receives replaced
      dirty pages, and forces pages / acknowledges flushes (§2.5).

    Operations that must wait raise {!Block.Would_block}; the caller
    (the workload driver) retries.  All functions assume the node is up
    unless stated otherwise.

    Crash recovery lives in {!Recovery}; this module only provides
    {!crash} (losing volatile state) and the owner-role servants the
    recovery protocol calls. *)

type t = Node_state.t

val create :
  Repro_sim.Env.t ->
  id:int ->
  pool_capacity:int ->
  ?pool_policy:Repro_buffer.Buffer_pool.policy ->
  ?log_capacity:int ->
  ?scheme:Node_state.scheme ->
  ?retain_cached_locks:bool ->
  unit ->
  t
(** [scheme] defaults to {!Node_state.Local_logging} — the paper's
    client-based logging.  The other schemes are the §3 baselines; see
    {!Node_state.scheme}.  [retain_cached_locks] (default true) is the
    inter-transaction caching of §2.1; disabling it is the E9
    ablation. *)

val id : t -> int
val is_up : t -> bool

(** {1 Database population (owner role)} *)

val allocate_page : t -> Repro_storage.Page_id.t
(** Allocates a page in this node's database (PSN seeded from the
    allocation map) and formats it on disk. *)

val deallocate_page : t -> Repro_storage.Page_id.t -> unit
(** Frees the slot, remembering the PSN seed for reallocation.  The
    caller must ensure no transaction holds the page. *)

(** {1 Transaction operations (client role)} *)

val begin_txn : t -> id:int -> Repro_tx.Txn.t
(** Registers a transaction with a cluster-issued id. *)

val read : t -> txn:int -> pid:Repro_storage.Page_id.t -> off:int -> len:int -> string
(** S-locks (callback protocol if needed), fetches the page if not
    cached, returns the bytes. *)

val read_cell : t -> txn:int -> pid:Repro_storage.Page_id.t -> off:int -> int64

val update_bytes : t -> txn:int -> pid:Repro_storage.Page_id.t -> off:int -> string -> unit
(** X-locks, logs a physical before/after-image record locally, applies
    it, bumps the PSN, maintains the DPT. *)

val update_delta : t -> txn:int -> pid:Repro_storage.Page_id.t -> off:int -> int64 -> unit
(** Same but with a logical increment record. *)

val commit : t -> txn:int -> unit
(** Appends the commit record and forces the local log.  No messages,
    no page forces — the paper's headline commit path.  Locks release
    locally; node-level cached locks are retained.

    With group commit enabled ({!Repro_sim.Config.group_commit_enabled}
    and the local-logging scheme), the transaction instead joins the
    node's pending batch in state [Committing] and this function
    returns {e before} the commit is durable — completion happens when
    the batch forces (full, window expiry via {!Cluster.pump_group_commit},
    or a piggybacking force).  Callers must then poll
    {!Cluster.commit_outcome}. *)

val finish_commit : t -> txn:int -> submitted_at:float -> unit
(** Group-commit completion hook: finish a [Committing] transaction
    whose commit record became durable.  Idempotent; no-op if the
    transaction is unknown (crash wiped the table) or not committing. *)

val wire_group_commit :
  t ->
  ?on_lost:(int list -> unit) ->
  on_durable:(txn:int -> submitted_at:float -> unit) ->
  unit ->
  unit
(** Re-wire the node's group-commit hooks.  [on_durable] runs before
    the node's own completion work for each transaction whose commit
    record became durable — {!Cluster} records durability there, so a
    crash during completion cannot lose the verdict.  [on_lost] fires
    when a crash drops the pending batch, with the lost transactions —
    {!Cluster} drags their early-release dependency closure down with
    them (default: no-op). *)

val abort : t -> txn:int -> unit
(** Total rollback with CLRs (re-fetching replaced pages from their
    owners if needed), then an abort record. *)

val savepoint : t -> txn:int -> string -> unit
val rollback_to : t -> txn:int -> string -> unit
(** Partial rollback to the named savepoint (§2.2). *)

(** {1 Maintenance} *)

val checkpoint : t -> unit
(** Fuzzy checkpoint — purely local, no synchronisation (§2.2, paper
    advantage 4). *)

val crash : t -> unit
(** Loses cache, lock tables, transaction table, DPT, flush waiters and
    the unforced log tail.  Durable state survives. *)

val reset_volatile : t -> unit
(** Wipe the volatile state of a node that is already down, {e without}
    touching the log device.  Recovery calls this on entry so a
    previous, aborted recovery attempt's partial state (recovered
    pages, reconstructed locks, re-registered losers) cannot leak into
    the new attempt. *)

val maybe_crashpoint : t -> Repro_fault.Injector.point -> unit
(** Probe a named protocol crash point; with an armed injector the node
    may crash here, surfacing as [Would_block (Node_down _)].  Exposed
    so recovery can place its own restartability crash points. *)

(** {1 Owner-role services}

    Exposed for the recovery protocol and the test-suite; normal
    processing reaches them through the client-role operations. *)

val owner_flush_page : t -> Repro_storage.Page_id.t -> unit
(** Forces the owned page to disk (WAL first) and acknowledges every
    registered flush waiter (§2.5). *)

val owner_latest_copy : t -> Repro_storage.Page_id.t -> Repro_storage.Page.t
(** The owner's most recent version (cache, else disk, else a fresh
    page at the allocation-map PSN seed). *)

val register_flush_waiter : t -> Repro_storage.Page_id.t -> waiter:int -> unit

(** {1 Internals exposed for recovery and tests} *)

val ensure_cached_page : t -> Repro_storage.Page_id.t -> Repro_buffer.Buffer_pool.frame
(** Page must be reachable (locally or at its owner); installs it in
    the pool, evicting as needed. *)

val install_recovered_page : t -> Repro_storage.Page.t -> waiters:int list -> unit
(** Recovery hand-off: place a just-recovered page in the cache as
    dirty and register its flush waiters. *)

val append_record : t -> Repro_wal.Record.t -> Repro_wal.Lsn.t
(** Appends with automatic §2.5 log-space management on a full log. *)

val undo_ops : t -> Repro_tx.Txn.t -> Repro_aries.Undo.ops
(** The node's CLR-writing undo callbacks, shared between normal
    rollback and restart loser undo. *)

val free_log_space : t -> unit
(** §2.5: flush the min-RedoLSN page (asking its owner if remote) and
    truncate the log.  Raises [Would_block (Log_space _)] if the owner
    of the best victim is down. *)

val check_invariants : t -> unit
