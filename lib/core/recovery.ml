module Env = Repro_sim.Env
module Metrics = Repro_sim.Metrics
module Page = Repro_storage.Page
module Page_id = Repro_storage.Page_id
module Lsn = Repro_wal.Lsn
module Record = Repro_wal.Record
module Log_manager = Repro_wal.Log_manager
module Buffer_pool = Repro_buffer.Buffer_pool
module Dpt = Repro_buffer.Dpt
module Mode = Repro_lock.Mode
module Local_locks = Repro_lock.Local_locks
module Global_locks = Repro_lock.Global_locks
module Txn = Repro_tx.Txn
module Txn_table = Repro_tx.Txn_table
module Analysis = Repro_aries.Analysis
module Redo = Repro_aries.Redo
module Undo = Repro_aries.Undo
module Fault_plan = Repro_fault.Fault_plan
module Injector = Repro_fault.Injector
open Node_state

let bump_transfers n =
  bump n (fun m -> m.Metrics.recovery_page_transfers <- m.Metrics.recovery_page_transfers + 1)

let bump_redone n =
  bump n (fun m -> m.Metrics.recovery_pages_redone <- m.Metrics.recovery_pages_redone + 1)

(* ------------------------------------------------------------------ *)
(* Restartability and peer-fault machinery                             *)
(* ------------------------------------------------------------------ *)

(* Does the plan give recovery's own crash points any probability?  If
   so the injector stays live for the whole of recovery — the new crash
   points fire, messages drop and links partition mid-protocol — and the
   recovery code must retry, restart or defer its way through.  With all
   of them at zero (every legacy plan) the injector suspends as before,
   keeping historical seeds bit-identical. *)
let recovery_faults_on (plan : Fault_plan.t) =
  let c = plan.Fault_plan.crashpoints in
  c.Fault_plan.recovery_analysis > 0.
  || c.Fault_plan.recovery_redo > 0.
  || c.Fault_plan.recovery_pre_undo > 0.
  || c.Fault_plan.recovery_undo > 0.
  || c.Fault_plan.recovery_checkpoint > 0.

(* Probe the Recovery_redo crash point once every [redo_crash_interval]
   applied redo records, not on every record: the interesting schedules
   are "partway through a page's redo", and probing each record would
   burn the crash budget before the later phases see any faults. *)
let redo_crash_interval = 4

(* Bounded retry with exponential backoff around a recovery exchange
   with [dst].  A dropped message is already retransmitted inside
   [send]; what can stall an exchange is an injected partition, so probe
   the link first and back off while it lasts.  Each failed probe drains
   the partition's bounded budget, so the loop heals it in practice; if
   the budget outlasts the attempts, surface the retryable
   [Net_unreachable] — the driver re-enters recovery later.  With the
   injector suspended (legacy plans) the probe short-circuits to [true]
   without consuming randomness, so this wrapper is free there. *)
let max_exchange_attempts = 8

let recovery_exchange src ~dst f =
  if dst = src.id then f ()
  else begin
    let rec go attempt =
      if link_up src ~dst then f ()
      else if attempt >= max_exchange_attempts - 1 then
        Block.block (Block.Net_unreachable { src = src.id; dst })
      else begin
        (* the failed probe already cost one RTO; add the backoff wait,
           doubling per attempt *)
        (match Env.faults src.env with
        | Some inj -> Env.charge_cpu src.env (Injector.rto inj *. float_of_int ((1 lsl attempt) - 1))
        | None -> ());
        bump src (fun m -> m.Metrics.recovery_retries <- m.Metrics.recovery_retries + 1);
        Env.emit src.env ~node:src.id Repro_obs.Event.Recovery_retry
          [ ("dst", Repro_obs.Event.Int dst); ("attempt", Repro_obs.Event.Int (attempt + 1)) ];
        go (attempt + 1)
      end
    in
    go 0
  end

(* Raised by a redo round that meets a record whose PSN is ahead of the
   page: some node's updates between the base and this record are
   missing from the participant set.  With a deferred (down,
   not-yet-recovering) peer to attribute the gap to, the page's recovery
   parks; without one it is a protocol bug and the caller re-raises as
   [Invalid_argument]. *)
exception Redo_gap of { node : int; psn : int; page_psn : int }

(* Attribute a redo gap to a down peer: prefer a deferred node that
   holds a retained lock on the page (its uncompensated updates are the
   missing PSNs), fall back to any deferred node. *)
let pick_blocker ~deferred ~owner ~pid =
  let is_deferred id = List.exists (fun (d : Node_state.t) -> d.id = id) deferred in
  let holders = Global_locks.holders owner.glocks ~pid in
  match List.find_opt (fun (holder, _) -> is_deferred holder) holders with
  | Some (holder, _) -> Some holder
  | None -> ( match deferred with d :: _ -> Some d.id | [] -> None)

let park_deferred ~owner ~pid ~blocker =
  Page_id.Tbl.replace owner.deferred_pages pid blocker;
  bump owner (fun m ->
      m.Metrics.recovery_deferred_pages <- m.Metrics.recovery_deferred_pages + 1);
  Env.emit owner.env ~node:owner.id Repro_obs.Event.Recovery_deferred
    [
      ("action", Repro_obs.Event.Str "parked");
      ("page", Repro_obs.Event.Str (Format.asprintf "%a" Page_id.pp pid));
      ("blocker", Repro_obs.Event.Int blocker);
    ];
  tracef owner "recovery: page %a parked, deferred on down node %d" Page_id.pp pid blocker

let unpark_deferred ~owner ~pid =
  Page_id.Tbl.remove owner.deferred_pages pid;
  bump owner (fun m ->
      m.Metrics.recovery_deferred_completed <- m.Metrics.recovery_deferred_completed + 1);
  Env.emit owner.env ~node:owner.id Repro_obs.Event.Recovery_deferred
    [
      ("action", Repro_obs.Event.Str "completed");
      ("page", Repro_obs.Event.Str (Format.asprintf "%a" Page_id.pp pid));
    ];
  tracef owner "recovery: deferred page %a completed" Page_id.pp pid

(* ------------------------------------------------------------------ *)
(* Phase 1: analysis                                                   *)
(* ------------------------------------------------------------------ *)

let analysis_phase crashed =
  List.map
    (fun n ->
      (* A torn crash can leave garbage bytes beyond the last whole
         record; seal trims the log back to a true record boundary so
         the scans below — and every later append — see a clean tail. *)
      let discarded = Log_manager.seal n.log in
      if discarded > 0 then tracef n "recovery(%d): sealed torn tail, %d bytes gone" n.id discarded;
      let result = Analysis.run n.log ~master:n.master in
      Dpt.load_snapshot n.dpt result.Analysis.dpt;
      tracef n "recovery(%d): analysis found %d dirty pages, %d losers" n.id
        (List.length result.Analysis.dpt)
        (List.length result.Analysis.losers);
      (n, result.Analysis.losers))
    crashed

(* ------------------------------------------------------------------ *)
(* Phase 2: lock reconstruction (§2.3.3)                               *)
(* ------------------------------------------------------------------ *)

(* The pages the undo phase will actually write: each loser's
   uncompensated updates, found by walking the undo chains (rather than
   trusting the analysis scan), which also covers updates older than
   the last checkpoint.  A CLR's page is deliberately NOT collected:
   undo skips past it via [undo_next], so updates that were durably
   compensated before the crash (a finished savepoint rollback or
   abort) leave nothing to lock — and the transaction may have
   legitimately released that lock before the crash, so re-granting X
   here would collide with a surviving peer's grant. *)
let loser_pages n (losers : Record.active_txn list) =
  List.fold_left
    (fun acc (l : Record.active_txn) ->
      let rec go acc lsn =
        if Lsn.is_nil lsn then acc
        else
          let r = Log_manager.read n.log lsn in
          match r.Record.body with
          | Update { pid; _ } -> go (Page_id.Set.add pid acc) r.Record.prev
          | Clr { undo_next; _ } -> go acc undo_next
          | Savepoint _ -> go acc r.Record.prev
          | Commit | Abort | Checkpoint_begin _ | Checkpoint_end -> acc
      in
      go acc l.last_lsn)
    Page_id.Set.empty losers

(* Re-establish the X locks the crashed node's losers held: when the
   owner survived they are already retained there (§2.3.3), but when the
   owner crashed too, both lock tables are gone and the locks must be
   re-granted before undo — otherwise another node could be handed a
   stale copy while the undo works on its own. *)
let regrant_loser_locks losers_by_node =
  List.iter
    (fun (n, losers) ->
      Page_id.Set.iter
        (fun pid ->
          let owner = peer n (Page_id.owner pid) in
          Global_locks.grant owner.glocks ~node:n.id ~pid ~mode:Mode.X;
          Local_locks.set_cached_mode n.locks pid Mode.X)
        (loser_pages n losers))
    losers_by_node

let reconstruct_locks crashed operational =
  List.iter
    (fun n ->
      List.iter
        (fun m ->
          recovery_exchange m ~dst:n.id @@ fun () ->
          (* Operational owners release the crashed node's shared locks
             and retain its exclusive ones. *)
          let released = Global_locks.release_all_shared_of_node m.glocks ~node:n.id in
          List.iter (fun pid -> tracef m "recovery: released S lock of %d on %a" n.id Page_id.pp pid) released;
          let x_pages = Global_locks.x_pages_of_node m.glocks ~node:n.id in
          send m ~dst:n.id ~recovery:true ~bytes:(Wire.listing ~entries:(List.length x_pages)) ();
          List.iter (fun pid -> Local_locks.set_cached_mode n.locks pid Mode.X) x_pages;
          (* Locks the peer had acquired from the crashed node rebuild
             the crashed node's owner-side table. *)
          let held = Local_locks.cached_pages_owned_by m.locks n.id in
          send m ~dst:n.id ~recovery:true ~bytes:(Wire.listing ~entries:(List.length held)) ();
          List.iter (fun (pid, mode) -> Global_locks.grant n.glocks ~node:m.id ~pid ~mode) held)
        operational)
    crashed

(* ------------------------------------------------------------------ *)
(* Phase 3: determining the pages that may require recovery            *)
(* ------------------------------------------------------------------ *)

(* Every node's view of a page under recovery: its DPT entry. *)
type claim = { claimant : Node_state.t; entry : Dpt.entry }

(* For one crashed owner [n]: gather peer cache listings and DPT
   entries for pages owned by [n] (§2.3.1), and [n]'s own entries for
   its own pages.  Returns (claims per page, operational cachers per
   page). *)
let gather_for_owner n ~others ~operational =
  let claims : claim list Page_id.Tbl.t = Page_id.Tbl.create 16 in
  let cachers : Node_state.t list Page_id.Tbl.t = Page_id.Tbl.create 16 in
  let add_claim c =
    let pid = c.entry.Dpt.pid in
    let cur = Option.value (Page_id.Tbl.find_opt claims pid) ~default:[] in
    Page_id.Tbl.replace claims pid (c :: cur)
  in
  List.iter (fun e -> add_claim { claimant = n; entry = e }) (Dpt.entries_owned_by n.dpt n.id);
  List.iter
    (fun m ->
      recovery_exchange m ~dst:n.id @@ fun () ->
      let entries = Dpt.entries_owned_by m.dpt n.id in
      send m ~dst:n.id ~recovery:true ~bytes:(Wire.listing ~entries:(List.length entries)) ();
      List.iter
        (fun e ->
          add_claim { claimant = m; entry = e };
          (* Reconstruct the owner's flush-waiter list: each claimant
             expects an acknowledgement when the page is next forced. *)
          Node.register_flush_waiter n e.Dpt.pid ~waiter:m.id)
        entries)
    others;
  List.iter
    (fun m ->
      recovery_exchange m ~dst:n.id @@ fun () ->
      let cached =
        List.filter (fun pid -> Page_id.owner pid = n.id) (Buffer_pool.cached_ids m.pool)
      in
      send m ~dst:n.id ~recovery:true ~bytes:(Wire.listing ~entries:(List.length cached)) ();
      List.iter
        (fun pid ->
          let cur = Option.value (Page_id.Tbl.find_opt cachers pid) ~default:[] in
          Page_id.Tbl.replace cachers pid (m :: cur))
        cached)
    operational;
  (claims, cachers)

(* ------------------------------------------------------------------ *)
(* Phase 4+5: involved nodes (§2.3.2) and coordinated redo (§2.3.4)    *)
(* ------------------------------------------------------------------ *)

type strategy = Psn_coordinated | Merged_logs

(* One page to recover: its coordinator, base version and claimants. *)
type job = { pid : Page_id.t; coordinator : Node_state.t; base : Page.t; involved : claim list }

(* §2.3.2: nodes whose CurrPSN does not exceed the base version's PSN
   are not involved; they drop their entry, unless they hold a lock on
   the page, in which case the entry survives with a refreshed
   RedoLSN (§2.3.4 last paragraph). *)
let split_involved claims ~base_psn =
  List.partition (fun c -> c.entry.Dpt.curr_psn > base_psn) claims

let dismiss_uninvolved ~owner uninvolved =
  List.iter
    (fun c ->
      let m = c.claimant in
      let pid = c.entry.Dpt.pid in
      if m.id <> owner.id then send owner ~dst:m.id ~recovery:true ~bytes:Wire.control ();
      if Local_locks.cached_mode m.locks pid <> None then
        Dpt.set_redo_lsn m.dpt pid (Log_manager.end_lsn m.log)
      else Dpt.drop m.dpt pid)
    uninvolved

(* Build each involved node's NodePSNLists with a single scan of its
   own log (§2.3.4), batched over all pages that node participates in. *)
let build_psn_lists jobs =
  let per_node : (int, Node_state.t * Page_id.Set.t * Lsn.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun job ->
      List.iter
        (fun c ->
          let m = c.claimant in
          let pages, start =
            match Hashtbl.find_opt per_node m.id with
            | Some (_, pages, start) -> (pages, start)
            | None -> (Page_id.Set.empty, Lsn.nil)
          in
          let start =
            if Lsn.is_nil start then c.entry.Dpt.redo_lsn else Lsn.min start c.entry.Dpt.redo_lsn
          in
          Hashtbl.replace per_node m.id (m, Page_id.Set.add job.pid pages, start))
        job.involved)
    jobs;
  let lists : (int, Node_psn_list.listing Page_id.Map.t) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun node_id (m, pages, start) ->
      let map = Node_psn_list.build m.log ~node:node_id ~pages ~start in
      Hashtbl.replace lists node_id map)
    per_node;
  let empty = { Node_psn_list.runs = []; records = [] } in
  fun node_id pid ->
    match Hashtbl.find_opt lists node_id with
    | None -> empty
    | Some map -> (
      match Page_id.Map.find_opt pid map with None -> empty | Some listing -> listing)

(* One redo round at node [m]: apply [m]'s records for [job.pid] with
   PSNs in [run.psn, bound), reading exactly the locations remembered by
   the NodePSNList scan (§2.3.4: "the location of this log record is
   remembered and it will be used during the recovery"). *)
let redo_round m job page (run : Node_psn_list.run) ~bound ~records ~probe =
  List.iter
    (fun (lsn, psn_before) ->
      let in_round =
        psn_before >= run.Node_psn_list.psn
        && match bound with Some b -> psn_before < b | None -> true
      in
      if in_round then begin
        let record = Log_manager.read m.log lsn in
        bump m (fun c ->
            c.Metrics.recovery_log_records_scanned <- c.Metrics.recovery_log_records_scanned + 1);
        match record.Record.body with
        | Update { pid; psn_before = p; op } | Clr { pid; psn_before = p; op; _ } ->
          assert (Page_id.equal pid job.pid && p = psn_before);
          (match Redo.apply page ~psn_before ~op with
          | Redo.Applied | Redo.Already_applied -> probe m
          | Redo.Not_yet ->
            raise (Redo_gap { node = m.id; psn = psn_before; page_psn = Page.psn page }))
        | Commit | Abort | Savepoint _ | Checkpoint_begin _ | Checkpoint_end ->
          invalid_arg "recovery: remembered location does not hold an update record"
      end)
    records

(* Settle the claims of a successfully recovered page: hand the copy to
   the coordinator's cache; every other involved node's updates now live
   in that copy, so they are treated as having replaced the page (their
   flush ack will retire the entry). *)
let settle_claims job page =
  let owner_id = Page_id.owner job.pid in
  let coordinator = job.coordinator in
  let waiters =
    List.filter_map
      (fun c -> if c.claimant.id = coordinator.id then None else Some c.claimant.id)
      job.involved
  in
  Node.install_recovered_page coordinator page
    ~waiters:(if coordinator.id = owner_id then waiters else []);
  List.iter
    (fun c ->
      let m = c.claimant in
      if m.id <> coordinator.id then begin
        Dpt.on_replaced m.dpt job.pid ~end_of_log:(Log_manager.end_lsn m.log);
        if coordinator.id <> owner_id then
          (* owner survives; register the waiter there *)
          Node.register_flush_waiter (peer coordinator owner_id) job.pid ~waiter:m.id
      end)
    job.involved;
  if coordinator.id <> owner_id then
    Node.register_flush_waiter (peer coordinator owner_id) job.pid ~waiter:coordinator.id

(* A redo gap at [gap] while recovering [job]: park the page on a down
   peer when one exists to attribute the missing PSNs to, otherwise the
   participant set was wrong and recovery must not limp on. *)
let gap_or_defer job ~deferred ~gap_node ~psn ~page_psn =
  let owner = peer job.coordinator (Page_id.owner job.pid) in
  match pick_blocker ~deferred ~owner ~pid:job.pid with
  | Some blocker -> park_deferred ~owner ~pid:job.pid ~blocker
  | None ->
    invalid_arg
      (Format.asprintf "recovery: node %d met record psn=%d ahead of page %a psn=%d" gap_node
         psn Page_id.pp job.pid page_psn)

let recover_page job ~psn_lists ~probe ~deferred =
  let coordinator = job.coordinator in
  let page = Page.copy job.base in
  let runs =
    Node_psn_list.merge
      (List.map (fun c -> (psn_lists c.claimant.id job.pid).Node_psn_list.runs) job.involved)
  in
  tracef coordinator "recovery: page %a base_psn=%d involved=[%s] runs=[%s]" Page_id.pp job.pid
    (Page.psn job.base)
    (String.concat ";"
       (List.map
          (fun c ->
            Format.asprintf "n%d(first=%d curr=%d redo=%a)" c.claimant.id c.entry.Dpt.psn_first
              c.entry.Dpt.curr_psn Lsn.pp c.entry.Dpt.redo_lsn)
          job.involved))
    (String.concat ";" (List.map (Format.asprintf "%a" Node_psn_list.pp_run) runs));
  (* The lists travel to the coordinator. *)
  List.iter
    (fun c ->
      recovery_exchange c.claimant ~dst:coordinator.id (fun () ->
          send c.claimant ~dst:coordinator.id ~recovery:true
            ~bytes:
              (Wire.listing
                 ~entries:
                   (List.length (psn_lists c.claimant.id job.pid).Node_psn_list.runs))
            ()))
    job.involved;
  let rec rounds = function
    | [] -> ()
    | (run : Node_psn_list.run) :: rest ->
      let bound = match rest with [] -> None | next :: _ -> Some next.Node_psn_list.psn in
      let m = peer coordinator run.node in
      let page_bytes = Wire.page (Env.config coordinator.env) in
      recovery_exchange coordinator ~dst:m.id (fun () ->
          send coordinator ~dst:m.id ~recovery:true ~bytes:page_bytes ();
          if m.id <> coordinator.id then bump_transfers coordinator;
          redo_round m job page run ~bound
            ~records:(psn_lists m.id job.pid).Node_psn_list.records ~probe;
          send m ~dst:coordinator.id ~recovery:true ~bytes:page_bytes ());
      rounds rest
  in
  match rounds runs with
  | () ->
    bump_redone coordinator;
    tracef coordinator "recovery: page %a recovered at psn=%d by node %d (%d rounds)" Page_id.pp
      job.pid (Page.psn page) coordinator.id (List.length runs);
    settle_claims job page
  | exception Redo_gap { node = gap_node; psn; page_psn } ->
    (* the partially rebuilt copy is discarded; no claim settles, so a
       later completion run re-derives the full participant set *)
    gap_or_defer job ~deferred ~gap_node ~psn ~page_psn

(* ------------------------------------------------------------------ *)
(* Merged-log redo (baseline, §3.2)                                    *)
(* ------------------------------------------------------------------ *)

(* Every participating node scans its whole retained log and ships
   every update record to the coordinator, which merges them per page
   by PSN.  The scans cannot start at the checkpoints: redo points
   routinely precede them.  This is exactly what the paper's design
   avoids — reading and moving entire logs instead of NodePSNLists and
   page-sized rounds. *)
let pull_merged_records coordinator sources =
  let per_page : (int * Record.update_op) list Page_id.Tbl.t = Page_id.Tbl.create 32 in
  List.iter
    (fun m ->
      if m.id <> coordinator.id then
        send coordinator ~dst:m.id ~recovery:true ~bytes:Wire.control ();
      Log_manager.fold m.log ~from:Lsn.nil ~init:() (fun () _lsn record ->
          match record.Record.body with
          | Update { pid; psn_before; op } | Clr { pid; psn_before; op; _ } ->
            if m.id <> coordinator.id then begin
              let encoded = String.length (Record.encode record) in
              send m ~dst:coordinator.id ~recovery:true ~bytes:(Wire.log_record encoded) ();
              bump m (fun c ->
                  c.Metrics.log_records_shipped <- c.Metrics.log_records_shipped + 1)
            end;
            let cur = Option.value (Page_id.Tbl.find_opt per_page pid) ~default:[] in
            Page_id.Tbl.replace per_page pid ((psn_before, op) :: cur)
          | Commit | Abort | Savepoint _ | Checkpoint_begin _ | Checkpoint_end -> ()))
    sources;
  per_page

let recover_page_merged job ~records ~probe ~deferred =
  let page = Page.copy job.base in
  let applicable =
    List.sort (fun (a, _) (b, _) -> Int.compare a b)
      (Option.value (Page_id.Tbl.find_opt records job.pid) ~default:[])
  in
  match
    List.iter
      (fun (psn_before, op) ->
        match Redo.apply page ~psn_before ~op with
        | Redo.Applied | Redo.Already_applied -> probe job.coordinator
        | Redo.Not_yet ->
          raise
            (Redo_gap { node = job.coordinator.id; psn = psn_before; page_psn = Page.psn page }))
      applicable
  with
  | () ->
    bump_redone job.coordinator;
    settle_claims job page
  | exception Redo_gap { node = gap_node; psn; page_psn } ->
    gap_or_defer job ~deferred ~gap_node ~psn ~page_psn

(* ------------------------------------------------------------------ *)
(* Phase 6: undo of loser transactions                                 *)
(* ------------------------------------------------------------------ *)

(* Roll one (registered) loser back to completion, starting from its
   current [last_lsn] so a parked rollback resumes at its last CLR.  A
   rollback that blocks on a DOWN peer — the page it must compensate is
   deferred, or its owner is dead — is parked: the Txn stays registered
   (its undo chain keeps pinning the log, and a further crash's analysis
   re-finds it) and resumes when the blocker recovers.  Any other block
   propagates: it is either this node's own injected crash (the whole
   run restarts) or a transient fault a later attempt retries through. *)
let rollback_loser n txn =
  match
    let _last =
      Undo.rollback (Node.undo_ops n txn) ~txn:txn.Txn.id ~from:txn.Txn.last_lsn ~upto:Lsn.nil
    in
    let lsn =
      Node.append_record n { Record.txn = txn.Txn.id; prev = txn.Txn.last_lsn; body = Abort }
    in
    Txn.record_logged txn lsn;
    txn.Txn.state <- Txn.Aborted;
    Txn_table.remove n.txns txn.Txn.id;
    bump n (fun m -> m.Metrics.txn_aborted <- m.Metrics.txn_aborted + 1);
    tracef n "recovery(%d): loser T%d rolled back" n.id txn.Txn.id
  with
  | () -> ()
  | exception (Block.Would_block reason as e) ->
    let blocker =
      match reason with
      | Block.Page_unavailable { blocker; _ } when blocker <> n.id -> Some blocker
      | Block.Node_down { node } when node <> n.id -> Some node
      | _ -> None
    in
    (match blocker with
    | Some b ->
      n.deferred_losers <- (txn.Txn.id, b) :: n.deferred_losers;
      Env.emit n.env ~node:n.id Repro_obs.Event.Recovery_deferred
        [
          ("action", Repro_obs.Event.Str "loser-parked");
          ("txn", Repro_obs.Event.Int txn.Txn.id);
          ("blocker", Repro_obs.Event.Int b);
        ];
      tracef n "recovery(%d): loser T%d parked on down node %d" n.id txn.Txn.id b
    | None -> raise e)

let undo_losers n losers =
  List.iter
    (fun (l : Record.active_txn) ->
      Node.maybe_crashpoint n Injector.Recovery_undo;
      let txn = Txn.make ~id:l.txn ~node:n.id in
      txn.Txn.last_lsn <- l.last_lsn;
      Txn_table.register n.txns txn;
      rollback_loser n txn)
    losers

(* Parked loser rollbacks whose blocker is in this recovery batch can
   finally finish. *)
let resume_deferred_losers n ~recovered_ids =
  let resumable, still_parked =
    List.partition (fun (_, b) -> List.mem b recovered_ids) n.deferred_losers
  in
  n.deferred_losers <- still_parked;
  List.iter
    (fun (txn_id, _) ->
      match Txn_table.find n.txns txn_id with
      | None -> () (* this node crashed since; its own analysis re-found the loser *)
      | Some txn ->
        tracef n "recovery(%d): resuming parked loser T%d" n.id txn_id;
        rollback_loser n txn)
    resumable

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

type summary = { phases : (string * float) list; total_seconds : float }

let summary_to_json s =
  let module Json = Repro_obs.Json in
  Json.Obj
    [
      ("phases", Json.Obj (List.map (fun (name, dt) -> (name, Json.Float dt)) s.phases));
      ("total_seconds", Json.Float s.total_seconds);
    ]

let run ?(strategy = Psn_coordinated) ?(deferred = []) ~crashed ~operational () =
  List.iter
    (fun n ->
      match n.scheme with
      | Node_state.Local_logging -> ()
      | Server_logging _ | Pca_double_logging | Global_log _ ->
        invalid_arg
          "Recovery.run: crash recovery is implemented for the paper's local-logging scheme; \
           the baselines are normal-processing comparators")
    (crashed @ operational @ deferred);
  List.iter
    (fun n -> if n.up then invalid_arg "Recovery.run: node in crashed list is up")
    crashed;
  List.iter
    (fun n -> if not n.up then invalid_arg "Recovery.run: node in operational list is down")
    operational;
  List.iter
    (fun n -> if n.up then invalid_arg "Recovery.run: node in deferred list is up")
    deferred;
  (* Restartability: a previous attempt may have died partway through —
     discard whatever partial volatile state it left in the still-down
     nodes (recovered pages, reconstructed locks, re-registered losers)
     and any stale in-progress marks on the survivors, then start over
     from durable state.  Everything the protocol relies on is
     re-derived: analysis re-reads the logs, claims were never settled
     for unfinished pages, and owner-side grants are idempotent. *)
  List.iter Node.reset_volatile crashed;
  List.iter (fun n -> n.recovering_pages <- Page_id.Set.empty) operational;
  let inj =
    match crashed @ operational with n :: _ -> Env.faults n.env | [] -> None
  in
  (* Without recovery-class faults in the plan, fault injection pauses
     for the whole of recovery — the legacy model: the protocol runs
     over a reliable transport, and historical seeds stay bit-identical.
     With them, the injector stays live and recovery itself is under
     fire: its named crash points abort the attempt (the driver
     re-enters), and [recovery_exchange] retries through drops and
     partitions.  Pre-existing partitions are healed either way — they
     were aimed at normal processing, and a partition that outlived the
     crash would starve the first attempt for no extra coverage. *)
  let live = match inj with Some i -> recovery_faults_on (Injector.plan i) | None -> false in
  (match inj with
  | Some i ->
    if not live then Injector.suspend i;
    Injector.heal_partitions i
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      match inj with Some i when not live -> Injector.resume i | Some _ | None -> ())
  @@ fun () ->
  (* Phase timing: every phase runs inside [timed], which records a
     span, a Recovery_phase event and a per-phase histogram sample, and
     accumulates the summary returned to the caller (E4/E5/E8 report
     where recovery time goes, not just totals). *)
  let env = match crashed @ operational with n :: _ -> Some n.env | [] -> None in
  let phase_times = ref [] in
  let timed name f =
    match env with
    | None -> f ()
    | Some env ->
      let t0 = Env.now env in
      let obs = Env.obs env in
      let span = Repro_obs.Recorder.span_begin obs ~time:t0 ~node:(-1) ("recovery." ^ name) in
      let result = f () in
      let t1 = Env.now env in
      let dt = t1 -. t0 in
      Repro_obs.Recorder.span_end obs ~time:t1 span;
      Env.observe env ~name:("recovery." ^ name) ~node:(-1) dt;
      if Env.tracing env then
        Env.emit env ~node:(-1) Repro_obs.Event.Recovery_phase
          [ ("phase", Repro_obs.Event.Str name); ("dur", Repro_obs.Event.Float dt) ];
      phase_times := (name, dt) :: !phase_times;
      result
  in
  let recovery_from = match env with Some env -> Env.now env | None -> 0. in
  let attempt () =
  (match env with
  | Some env when Env.tracing env ->
    Env.emit env ~node:(-1) Repro_obs.Event.Recovery_begin
      [ ("crashed", Repro_obs.Event.Int (List.length crashed)) ]
  | Some _ | None -> ());
  let losers_by_node =
    timed "analysis" (fun () ->
        let result = analysis_phase crashed in
        List.iter (fun (n, _) -> Node.maybe_crashpoint n Injector.Recovery_analysis) result;
        result)
  in
  timed "lock_reconstruction" (fun () ->
      reconstruct_locks crashed operational;
      regrant_loser_locks losers_by_node);
  (* Collect the recovery jobs for pages owned by each crashed node. *)
  let crashed_ids = List.map (fun n -> n.id) crashed in
  let deferred_ids = List.map (fun (n : Node_state.t) -> n.id) deferred in
  let jobs = ref [] in
  (* (owner, pid) of parked pages whose completion job runs in this
     batch; unparked after redo unless the job re-deferred. *)
  let completions = ref [] in
  timed "gather" (fun () ->
  List.iter
    (fun n ->
      let others = List.filter (fun m -> m.id <> n.id) (crashed @ operational) in
      let claims, cachers = gather_for_owner n ~others ~operational in
      Page_id.Tbl.iter
        (fun pid claims_for_page ->
          match Page_id.Tbl.find_opt cachers pid with
          | Some (m :: _) ->
            (* A live cache holds the page: fetch it, no redo needed
               (§2.3.1: pages in the cache of some node contain all the
               updates performed before the owner's crash).  The ship
               follows the WAL rule like any other: the cacher's log is
               forced up to the copy's last update first, and the cacher
               records the replacement so the eventual flush ack settles
               its DPT entry. *)
            recovery_exchange n ~dst:m.id (fun () ->
                send n ~dst:m.id ~recovery:true ~bytes:Wire.control ();
                let frame =
                  match Buffer_pool.peek m.pool pid with
                  | Some f -> f
                  | None -> assert false
                in
                if frame.Buffer_pool.dirty && not (Lsn.is_nil frame.Buffer_pool.last_lsn)
                then begin
                  Log_manager.force m.log ~upto:frame.Buffer_pool.last_lsn;
                  (* the survivor's force may have made its own pending
                     group-commit batch durable *)
                  Repro_wal.Group_commit.on_force m.gc
                end;
                send m ~dst:n.id ~recovery:true ~bytes:(Wire.page (Env.config n.env)) ();
                bump_transfers n;
                (* The cacher keeps its (possibly dirty) copy and therefore
                   also its DPT entry — §2.2 forbids dropping an entry for
                   an updated page still present in the local cache. *)
                Node.install_recovered_page n (Page.copy frame.Buffer_pool.page) ~waiters:[])
          | Some [] | None ->
            let base = Node.owner_latest_copy n pid in
            let involved, uninvolved = split_involved claims_for_page ~base_psn:(Page.psn base) in
            dismiss_uninvolved ~owner:n uninvolved;
            if involved <> [] then begin
              n.recovering_pages <- Page_id.Set.add pid n.recovering_pages;
              jobs := { pid; coordinator = n; base; involved } :: !jobs
            end)
        claims;
      ())
    crashed;
  (* Category (c): pages an earlier recovery parked on a peer that is in
     THIS batch — the blocker's log is finally readable, so the full
     redo can run.  Unlike category (b), the claims span every
     participating node: operational claimants kept their DPT entries
     precisely because the parked page never advanced past their
     updates.  Pushed before category (b) so the per-page dedup keeps
     the completion job (the (b) job would only replay the crashed
     nodes' share). *)
  List.iter
    (fun owner ->
      let parked =
        Page_id.Tbl.fold (fun pid blocker acc -> (pid, blocker) :: acc) owner.deferred_pages []
      in
      List.iter
        (fun (pid, blocker) ->
          if List.mem blocker crashed_ids then begin
            let base = Node.owner_latest_copy owner pid in
            let claims =
              List.filter_map
                (fun m ->
                  match Dpt.find m.dpt pid with
                  | Some entry when entry.Dpt.curr_psn > Page.psn base ->
                    Some { claimant = m; entry }
                  | Some _ | None -> None)
                (crashed @ operational)
            in
            (* An operational claimant's records become part of a page
               copy that will outlive it at another node: WAL discipline
               demands they are durable first, like any pre-ship
               force. *)
            List.iter
              (fun c ->
                let m = c.claimant in
                if m.up then begin
                  Log_manager.force_all m.log;
                  Repro_wal.Group_commit.on_force m.gc
                end)
              claims;
            match claims with
            | [] ->
              (* every claim died with the blocker's torn tail: the base
                 already is the latest surviving state *)
              unpark_deferred ~owner ~pid
            | _ :: _ ->
              (* The owner coordinates and hosts the rebuilt copy: it
                 kept the X grant from the attempt that parked the page,
                 and every record feeding the copy is durable (a crashed
                 node's log is all-durable after its tear; operational
                 claimants were just forced), so the confinement rule
                 for unforced effects is not in play. *)
              owner.recovering_pages <- Page_id.Set.add pid owner.recovering_pages;
              completions := (owner, pid) :: !completions;
              jobs := { pid; coordinator = owner; base; involved = claims } :: !jobs
          end)
        parked)
    operational;
  (* Category (b): pages of an *operational* owner that a crashed node
     had exclusively locked at crash time (§2.3.1 case b). *)
  List.iter
    (fun n ->
      List.iter
        (fun (e : Dpt.entry) ->
          let pid = e.Dpt.pid in
          let owner_id = Page_id.owner pid in
          if List.mem owner_id deferred_ids then
            (* the owner itself is down and not in this batch: its pages
               cannot be rebuilt without its base copy.  The claim (and
               the retained lock) survive untouched; the owner's own
               recovery will collect them as ordinary category-(a)
               work.  Access meanwhile blocks on [Node_down]. *)
            tracef n "recovery: page %a left to deferred owner %d" Page_id.pp pid owner_id
          else if owner_id <> n.id && not (List.mem owner_id crashed_ids) then begin
            (* The base is the owner's most recent surviving copy; the
               crashed node repeats history from its own log on top of
               it whenever its CurrPSN is ahead (this includes the
               uncommitted updates of its losers, rolled back in the
               undo phase — ARIES repeating-history discipline). *)
            let owner = peer n owner_id in
            recovery_exchange n ~dst:owner_id (fun () ->
                send n ~dst:owner_id ~recovery:true ~bytes:Wire.control ();
                let base = Node.owner_latest_copy owner pid in
                send owner ~dst:n.id ~recovery:true ~bytes:(Wire.page (Env.config n.env)) ();
                bump_transfers n;
                if e.Dpt.curr_psn > Page.psn base then begin
                  (* Other crashed nodes may also have claims on this page. *)
                  let claims =
                    List.filter_map
                      (fun m ->
                        match Dpt.find m.dpt pid with
                        | Some entry when entry.Dpt.curr_psn > Page.psn base ->
                          Some { claimant = m; entry }
                        | Some _ | None -> None)
                      crashed
                  in
                  owner.recovering_pages <- Page_id.Set.add pid owner.recovering_pages;
                  jobs := { pid; coordinator = n; base; involved = claims } :: !jobs
                end)
          end)
        (Dpt.entries n.dpt))
    crashed);
  (* Deduplicate: one job per page (a page can be claimed through both
     paths when several nodes crashed). *)
  let seen = ref Page_id.Set.empty in
  let jobs =
    List.filter
      (fun job ->
        if Page_id.Set.mem job.pid !seen then false
        else begin
          seen := Page_id.Set.add job.pid !seen;
          true
        end)
      (List.rev !jobs)
  in
  (* §2.3.3: the crashed node acquires exclusive locks for the pages in
     its DPT that have no lock entry, before processing resumes. *)
  List.iter
    (fun job ->
      let n = job.coordinator in
      let pid = job.pid in
      let owner = peer n (Page_id.owner pid) in
      if Global_locks.holders owner.glocks ~pid = [] then begin
        Global_locks.grant owner.glocks ~node:n.id ~pid ~mode:Mode.X;
        Local_locks.set_cached_mode n.locks pid Mode.X
      end)
    jobs;
  (* One Recovery_redo probe every [redo_crash_interval] applied
     records, shared across all jobs so long recoveries accumulate
     chances even when each page replays only a few records. *)
  let probe =
    let applied = ref 0 in
    fun (m : Node_state.t) ->
      incr applied;
      if !applied mod redo_crash_interval = 0 then Node.maybe_crashpoint m Injector.Recovery_redo
  in
  (match strategy with
  | Psn_coordinated ->
    (* Coordinated, PSN-ordered redo; no log merging anywhere. *)
    let psn_lists = timed "psn_lists" (fun () -> build_psn_lists jobs) in
    timed "redo" (fun () -> List.iter (fun job -> recover_page job ~psn_lists ~probe ~deferred) jobs)
  | Merged_logs ->
    (* One merged pull per coordinator, then local per-page replay. *)
    let pulls =
      timed "merge_pull" (fun () ->
          let coordinators =
            List.sort_uniq Int.compare (List.map (fun job -> job.coordinator.id) jobs)
          in
          List.map
            (fun cid ->
              let coordinator = List.find (fun j -> j.coordinator.id = cid) jobs in
              (cid, pull_merged_records coordinator.coordinator (crashed @ operational)))
            coordinators)
    in
    timed "redo" (fun () ->
        List.iter
          (fun job ->
            recover_page_merged job ~records:(List.assoc job.coordinator.id pulls) ~probe ~deferred)
          jobs));
  List.iter
    (fun job ->
      let owner = peer job.coordinator (Page_id.owner job.pid) in
      owner.recovering_pages <- Page_id.Set.remove job.pid owner.recovering_pages)
    jobs;
  (* Completion jobs that made it through redo retire their parked
     entries; a job that hit a fresh gap already re-parked the page with
     a new (still-down, not-in-this-batch) blocker and must stay. *)
  List.iter
    (fun (owner, pid) ->
      match Page_id.Tbl.find_opt owner.deferred_pages pid with
      | Some b when List.mem b crashed_ids -> unpark_deferred ~owner ~pid
      | Some _ | None -> ())
    !completions;
  List.iter (fun n -> Node.maybe_crashpoint n Injector.Recovery_pre_undo) crashed;
  (* Normal processing can resume; roll back the losers. *)
  List.iter (fun n -> n.up <- true) crashed;
  timed "undo" (fun () ->
      List.iter (fun (n, losers) -> undo_losers n losers) losers_by_node;
      (* survivors whose loser rollback parked on one of the nodes we
         just recovered can finish it now *)
      List.iter (fun n -> resume_deferred_losers n ~recovered_ids:crashed_ids) operational);
  (* End-of-restart fuzzy checkpoint (live-fault mode only): force the
     undo phase's CLRs and abort records — closing the window where a
     second crash tears a CLR but keeps the earlier record it
     compensates — and bound the next analysis so re-recovery does not
     rescan the pre-crash log.  Gated on [live] because it perturbs the
     recovery-time measurements of the historical experiments. *)
  if live then
    timed "checkpoint" (fun () ->
        List.iter
          (fun n ->
            Node.maybe_crashpoint n Injector.Recovery_checkpoint;
            Log_manager.force_all n.log;
            Repro_wal.Group_commit.on_force n.gc;
            Node.checkpoint n)
          crashed);
  List.iter (fun n -> tracef n "recovery(%d): complete" n.id) crashed;
  let total_seconds =
    match env with Some env -> Env.now env -. recovery_from | None -> 0.
  in
  (match env with
  | Some env ->
    (* per-node samples also land in the (-1) cluster aggregate *)
    if crashed = [] then Env.observe env ~name:"recovery_duration" ~node:(-1) total_seconds
    else
      List.iter
        (fun n -> Env.observe env ~name:"recovery_duration" ~node:n.id total_seconds)
        crashed;
    if Env.tracing env then
      Env.emit env ~node:(-1) Repro_obs.Event.Recovery_end
        [ ("total", Repro_obs.Event.Float total_seconds) ]
  | None -> ());
  { phases = List.rev !phase_times; total_seconds }
  in
  (* A crash point firing mid-recovery surfaces as [Node_down]: the
     attempt is abandoned wholesale (no partial claim ever settled — see
     the per-job commit points above) and the driver re-enters with the
     newly-crashed node added to the batch.  Re-entry resets volatile
     state and re-derives everything from durable state, so the nested
     attempt converges to the same durable outcome. *)
  try attempt ()
  with Block.Would_block reason as e ->
    (* The batch's nodes go up before the undo phase (undo fetches pages
       across nodes), so an abort landing between that publication and
       the end of the attempt leaves them up but only PARTIALLY
       recovered — losers not yet rolled back would linger as live
       updates at an "operational" node, and the re-entered recovery
       (which covers only the currently-down set) would never touch
       them.  Withdraw the premature publication: their logs are intact
       (this is not a crash — no tear, no lost durable state), and the
       re-entered attempt takes them through the full batch again,
       repeating history idempotently. *)
    List.iter (fun n -> if n.up then n.up <- false) crashed;
    (match reason with
    | Block.Node_down { node } -> (
      match env with
      | Some env ->
        (match List.find_opt (fun n -> n.id = node) (crashed @ operational) with
        | Some n ->
          bump n (fun m -> m.Metrics.recovery_restarts <- m.Metrics.recovery_restarts + 1)
        | None -> ());
        Env.emit env ~node Repro_obs.Event.Recovery_restart
          [ ("aborted", Repro_obs.Event.Bool true) ]
      | None -> ())
    | _ -> ());
    raise e
