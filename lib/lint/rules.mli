(** The repo-specific rule registry.

    Every rule is grounded in a bug class this repo has actually
    shipped and fixed (see CHANGES.md and DESIGN.md "Static protocol
    checking").  Five of them are interprocedural: they share one
    whole-repo {!Summary}/{!Callgraph}/{!Propagate} analysis, memoized
    per run.

    - [ipc-force-sweep] — a log force outside the force-implementation
      layer must have a [Group_commit.on_force] sweep reachable in its
      call neighborhood (PR 3's force-to-device-end invariant, now
      surviving code motion across function/module boundaries).
    - [swallowed-control-exn] — no catch-all exception handlers in
      [lib/]: they can absorb the [Crash]/[Node_down] control
      exceptions (PR 2's eviction-chain bug).
    - [rng-discipline] — stdlib [Random] only in the designated RNG
      module; no [Random.self_init]/[Unix.gettimeofday]/[Sys.time] in
      [lib/] (seed replay must stay bit-identical).
    - [crashpoint-registry] — the crash points passed to
      [Node.maybe_crashpoint], the [Injector.point] constructors and
      the [Fault_plan.crashpoints] fields must agree (two-pass symbol
      table).
    - [event-codec-exhaustive] — the [Event] codec functions must not
      use a wildcard case, so a new event kind cannot serialize wrong
      silently.
    - [no-poly-compare] — no polymorphic [=]/[compare]/[Hashtbl.hash]
      on identifiers naming mutable protocol state (frames, pages,
      descriptors); use the module's explicit [equal].
    - [mli-coverage] — every [lib/**/*.ml] has a sibling [.mli].
    - [no-unsafe-obj] — no [Obj.*] in [lib/].
    - [ipc-elr-pairing] — an early lock release outside [lib/lock]
      must have an [elr_record_release] reachable in its call
      neighborhood (PR 8's commit-dependency invariant; release and
      recording may live in different functions).
    - [exn-flow] — every raise of a retryable control exception in
      [lib/] must be able to reach a matching [Would_block] handler on
      some call path.
    - [dead-handler] — an explicit [Would_block] handler must be
      feedable by something its guarded body reaches.
    - [rng-reachability] — sim-RNG draws in [lib/] must be reachable
      from a seeded ([Rng.create]/[Rng.split]) root. *)

val all : Lint.rule list
(** In reporting order; ids are unique. *)

val find : string -> Lint.rule option
