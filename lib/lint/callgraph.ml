(* Phase-1b: resolve effect-summary call sites into a whole-repo call
   graph.  Resolution is best-effort over the untyped AST:

   - [M.f] resolves through the per-file [module X = ...] alias table,
     then by capitalized file basename (unique across this repo), then
     to [f] among that file's top-level bindings.  A module that maps
     to no repo file is external and ignored; a repo module without a
     binding [f] lands in the explicit unknown-callee bucket.
   - An unqualified [f] resolves only against the same file's top-level
     bindings (locals and parameters resolve to nothing, silently).
   - [x.f args] and closures stored into record fields / labeled hooks
     meet at a synthetic [field:f] node: wiring sites (a fun literal
     assigned to field [f]) push their calls and raises onto the node,
     call-through-field sites draw an edge to it.  Field names are
     global, so same-named fields of different record types merge —
     conservative for reachability, never used as report roots. *)

type node = {
  id : int;
  name : string;  (** ["rel#fn"] or ["field:f"] *)
  file : string option;
  fn : Summary.fn option;  (** [None] for synthetic field nodes *)
  mutable succ : int list;
  mutable field_raises : (Summary.exn_label * Summary.loc * string) list;
      (** raises wired into a field node: label, loc, defining file *)
}

type t = {
  nodes : node array;
  in_deg : int array;
  unknown : (string * int) list;  (** qualified name → applied-call count *)
}

let is_fn n = n.fn <> None

(* Resolution shared by edge construction and the dead-handler rule. *)
type resolution = Fn_key of (string * string) | External | Unknown of string | Local

let resolve ~module_index ~binding_exists (f : Summary.file) path =
  let path = match path with "Stdlib" :: rest -> rest | p -> p in
  match List.rev path with
  | [] -> Local
  | [ name ] ->
    if binding_exists (f.Summary.rel, name) then Fn_key (f.Summary.rel, name)
    else (
      (* Unqualified but not bound here: it may come from an opened
         repo module (e.g. node.ml's [open Node_state]). *)
      let via_open =
        List.find_map
          (fun m ->
            match Hashtbl.find_opt module_index m with
            | Some (target : Summary.file) when binding_exists (target.Summary.rel, name) ->
              Some (Fn_key (target.Summary.rel, name))
            | _ -> None)
          f.Summary.opens
      in
      match via_open with Some r -> r | None -> Local)
  | name :: m :: _ -> (
    let m = match List.assoc_opt m f.Summary.aliases with Some t -> t | None -> m in
    match Hashtbl.find_opt module_index m with
    | None -> External
    | Some (target : Summary.file) ->
      if binding_exists (target.Summary.rel, name) then Fn_key (target.Summary.rel, name)
      else Unknown (m ^ "." ^ name))

let indexes (files : Summary.file list) =
  let module_index : (string, Summary.file) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace module_index f.Summary.module_name f) files;
  let bindings : (string * string, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun f ->
      List.iter
        (fun (fn : Summary.fn) -> Hashtbl.replace bindings (f.Summary.rel, fn.Summary.fn_name) ())
        f.Summary.fns)
    files;
  (module_index, fun key -> Hashtbl.mem bindings key)

let build (files : Summary.file list) =
  let module_index, binding_exists = indexes files in
  (* All nodes up front: every fn, then every field name referenced by
     a field call or a wiring site. *)
  let count = List.fold_left (fun acc f -> acc + List.length f.Summary.fns) 0 files in
  let field_names =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun f ->
        List.iter
          (fun (fn : Summary.fn) ->
            List.iter
              (fun (s : Summary.site) ->
                (match s.Summary.wired with Some w -> Hashtbl.replace tbl w () | None -> ());
                match s.Summary.kind with
                | Summary.Field_call { field } -> Hashtbl.replace tbl field ()
                | _ -> ())
              fn.Summary.sites)
          f.Summary.fns)
      files;
    Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare
  in
  let total = count + List.length field_names in
  let nodes =
    Array.make total
      { id = 0; name = ""; file = None; fn = None; succ = []; field_raises = [] }
  in
  (* Later bindings shadow earlier ones of the same name, so the last
     (rel, name) registration wins — matching what a caller's reference
     resolves to at the bottom of the file. *)
  let binding_index : (string * string, int) Hashtbl.t = Hashtbl.create 256 in
  let field_index : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let next = ref 0 in
  let fn_triples = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun (fn : Summary.fn) ->
          let id = !next in
          incr next;
          nodes.(id) <-
            {
              id;
              name = f.Summary.rel ^ "#" ^ fn.Summary.fn_name;
              file = Some f.Summary.rel;
              fn = Some fn;
              succ = [];
              field_raises = [];
            };
          Hashtbl.replace binding_index (f.Summary.rel, fn.Summary.fn_name) id;
          fn_triples := (f, fn, id) :: !fn_triples)
        f.Summary.fns)
    files;
  let fn_triples = List.rev !fn_triples in
  List.iter
    (fun fname ->
      let id = !next in
      incr next;
      nodes.(id) <-
        { id; name = "field:" ^ fname; file = None; fn = None; succ = []; field_raises = [] };
      Hashtbl.replace field_index fname id)
    field_names;
  let unknown : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let add_edge src dst =
    if not (List.mem dst nodes.(src).succ) then nodes.(src).succ <- dst :: nodes.(src).succ
  in
  List.iter
    (fun ((f : Summary.file), (fn : Summary.fn), self_id) ->
      List.iter
        (fun (s : Summary.site) ->
          (* The effect runs under the defining function *and*, when the
             enclosing closure is stored into a field, under callers of
             that field. *)
          let holders =
            self_id
            :: (match s.Summary.wired with
               | None -> []
               | Some w -> [ Hashtbl.find field_index w ])
          in
          match s.Summary.kind with
          | Summary.Call { path; applied } -> (
            match resolve ~module_index ~binding_exists f path with
            | Fn_key key ->
              let id = Hashtbl.find binding_index key in
              List.iter (fun h -> if h <> id then add_edge h id) holders
            | Unknown q ->
              if applied then
                Hashtbl.replace unknown q
                  (1 + Option.value ~default:0 (Hashtbl.find_opt unknown q))
            | External | Local -> ())
          | Summary.Field_call { field } ->
            let dst = Hashtbl.find field_index field in
            List.iter (fun h -> if h <> dst then add_edge h dst) holders
          | Summary.Raise { label } -> (
            match s.Summary.wired with
            | None -> ()
            | Some w ->
              let fid = Hashtbl.find field_index w in
              nodes.(fid).field_raises <-
                (label, s.Summary.s_loc, f.Summary.rel) :: nodes.(fid).field_raises)
          | _ -> ())
        fn.Summary.sites)
    fn_triples;
  let in_deg = Array.make total 0 in
  Array.iter (fun node -> List.iter (fun d -> in_deg.(d) <- in_deg.(d) + 1) node.succ) nodes;
  let unknown = Hashtbl.fold (fun k v acc -> (k, v) :: acc) unknown [] |> List.sort compare in
  { nodes; in_deg; unknown }

let find t ~rel ~fn_name =
  let found = ref None in
  Array.iter
    (fun n ->
      match (n.file, n.fn) with
      | Some f, Some fn when f = rel && fn.Summary.fn_name = fn_name -> found := Some n.id
      | _ -> ())
    t.nodes;
  !found

let find_field t fname =
  let found = ref None in
  Array.iter (fun n -> if n.name = "field:" ^ fname then found := Some n.id) t.nodes;
  !found

let node_id t key =
  let found = ref None in
  Array.iter
    (fun n ->
      match (n.file, n.fn) with
      | Some f, Some fn when (f, fn.Summary.fn_name) = key -> found := Some n.id
      | _ -> ())
    t.nodes;
  !found

let to_json t =
  let module J = Repro_obs.Json in
  J.Obj
    [
      ("tool", J.Str "cbl-lint-callgraph");
      ( "nodes",
        J.List
          (Array.to_list
             (Array.map
                (fun n ->
                  J.Obj
                    ([ ("id", J.Int n.id); ("name", J.Str n.name) ]
                    @ (match n.file with None -> [] | Some f -> [ ("file", J.Str f) ])
                    @ [ ("in_degree", J.Int t.in_deg.(n.id)) ]))
                t.nodes)) );
      ( "edges",
        J.List
          (Array.to_list t.nodes
          |> List.concat_map (fun n ->
                 List.rev_map (fun d -> J.List [ J.Int n.id; J.Int d ]) n.succ)) );
      ("unknown_callees", J.Obj (List.map (fun (q, c) -> (q, J.Int c)) t.unknown));
    ]
