open Parsetree

(* Per-function effect summaries over the untyped AST: phase 1 of the
   whole-repo analysis.  Each top-level binding becomes one [fn] whose
   [sites] record every protocol-relevant effect inside it (raises of
   the retryable control exceptions, log forces, group-commit sweeps,
   early lock releases and their recording, RNG seeding and draws,
   crash points) plus the intra-repo calls phase 2 resolves into graph
   edges.  Summaries are plain serializable data so a digest-keyed
   cache can skip re-extraction of unchanged files. *)

(* ------------------------------------------------------------------ *)
(* Longident helpers (shared with the per-file rules)                  *)
(* ------------------------------------------------------------------ *)

let rec components = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> components p @ [ s ]
  | Longident.Lapply (a, b) -> components a @ components b

let last_component lid = match List.rev (components lid) with s :: _ -> s | [] -> ""

let parent_module lid =
  match List.rev (components lid) with _ :: m :: _ -> Some m | _ -> None

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type exn_label = Would_block | Node_down | Page_unavailable | Net_unreachable

let all_labels = [ Would_block; Node_down; Page_unavailable; Net_unreachable ]

let label_name = function
  | Would_block -> "Would_block"
  | Node_down -> "Node_down"
  | Page_unavailable -> "Page_unavailable"
  | Net_unreachable -> "Net_unreachable"

let label_of_name = function
  | "Would_block" -> Some Would_block
  | "Node_down" -> Some Node_down
  | "Page_unavailable" -> Some Page_unavailable
  | "Net_unreachable" -> Some Net_unreachable
  | _ -> None

(* [Would_block] is the generic label (a reason we do not refine, or a
   reason variable): any handler that matches some [Would_block] case
   covers it.  The refined labels need a handler matching that reason
   or a catch-all/[Would_block _] pattern. *)
let covers ~handled label =
  match label with
  | Would_block -> handled <> []
  | l -> List.mem l handled

type loc = { line : int; col : int }

type site_kind =
  | Call of { path : string list; applied : bool }
  | Field_call of { field : string }
  | Raise of { label : exn_label }
  | Force of { name : string }
  | Sweep
  | Elr_release
  | Elr_record
  | Rng_draw of { name : string }
  | Rng_seed of { name : string }
  | Crashpoint of { name : string }

type site = {
  kind : site_kind;
  s_loc : loc;
  wired : string option;
      (** the record field / labeled hook this site's enclosing closure
          is stored under, if any: the call graph re-attaches such sites
          to the synthetic [field:NAME] node because they run when the
          field is invoked, not when the defining function runs *)
}

type handler = {
  h_labels : exn_label list;  (** what the pattern matches *)
  h_loc : loc;
  h_calls : string list list;  (** ident paths mentioned in the guarded body *)
  h_fields : string list;  (** record fields invoked in the guarded body *)
  h_unknown : bool;  (** guarded body applies something unresolvable *)
  h_raises : exn_label list;  (** direct raises inside the guarded body *)
}

type fn = {
  fn_name : string;
  fn_loc : loc;
  handled : exn_label list;
  sites : site list;
  handlers : handler list;
}

type file = {
  rel : string;
  module_name : string;
  digest : string;
  aliases : (string * string) list;  (** [module X = A.B] → [(X, B)] *)
  opens : string list;  (** [open M] / [M.(...)]: unqualified-resolution fallback *)
  fns : fn list;
}

(* ------------------------------------------------------------------ *)
(* Effect-primitive classification                                     *)
(* ------------------------------------------------------------------ *)

let force_names = [ "force"; "force_all"; "force_shared" ]

let is_force_ident lid =
  let name = last_component lid in
  (parent_module lid = Some "Log_manager" && List.mem name force_names)
  || String.starts_with ~prefix:"charge_log_force" name

let rng_draw_names =
  [ "next_int64"; "int"; "int_in_range"; "float"; "bool"; "chance"; "pick"; "shuffle" ]

let rng_seed_names = [ "create"; "split" ]

let loc_of (l : Location.t) =
  let p = l.Location.loc_start in
  { line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol }

(* The label of a raised reason expression: [Block.block (Block.Node_down n)]
   refines to [Node_down]; reason variables and the non-retryable
   constructors stay at the generic [Would_block]. *)
let label_of_reason (e : expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, _) -> (
    match label_of_name (last_component txt) with
    | Some (Node_down | Page_unavailable | Net_unreachable) as l -> Option.get l
    | _ -> Would_block)
  | _ -> Would_block

(* Labels an exception pattern handles; [] when it cannot match any
   [Would_block].  [explicit] is true when the pattern names
   [Would_block] (as opposed to a catch-all), i.e. the handler exists
   *because* of the retryable protocol and is worth dead-checking. *)
let rec handled_labels p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> (all_labels, false)
  | Ppat_alias (inner, _) | Ppat_constraint (inner, _) -> handled_labels inner
  | Ppat_or (a, b) ->
    let la, ea = handled_labels a and lb, eb = handled_labels b in
    (List.sort_uniq compare (la @ lb), ea || eb)
  | Ppat_construct ({ txt; _ }, arg) when last_component txt = "Would_block" ->
    let labels =
      match arg with
      | None -> all_labels
      | Some (_, ap) -> reason_labels ap
    in
    (labels, true)
  | _ -> ([], false)

and reason_labels p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> all_labels
  | Ppat_alias (inner, _) | Ppat_constraint (inner, _) -> reason_labels inner
  | Ppat_or (a, b) -> List.sort_uniq compare (reason_labels a @ reason_labels b)
  | Ppat_construct ({ txt; _ }, _) -> (
    match label_of_name (last_component txt) with
    | Some (Node_down | Page_unavailable | Net_unreachable) as l -> [ Option.get l ]
    | _ -> [ Would_block ])
  | _ -> [ Would_block ]

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

(* What a handler's guarded body can feed it with: mentioned ident
   paths, invoked record fields, direct raises, and whether anything
   unresolvable is applied (then the handler is conservatively live). *)
let handler_feed body =
  let calls = ref [] and fields = ref [] and unknown = ref false and raises = ref [] in
  let it =
    let open Ast_iterator in
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> calls := components txt :: !calls
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            match last_component txt with
            | "block" when parent_module txt = Some "Block" -> (
              match args with
              | (_, reason) :: _ -> raises := label_of_reason reason :: !raises
              | [] -> ())
            | "raise" | "raise_notrace" -> (
              match args with
              | (_, { pexp_desc = Pexp_construct ({ txt = c; _ }, arg); _ }) :: _
                when last_component c = "Would_block" ->
                raises :=
                  (match arg with Some a -> label_of_reason a | None -> Would_block)
                  :: !raises
              | _ -> ())
            | _ -> ())
          | Pexp_apply ({ pexp_desc = Pexp_field (_, { txt; _ }); _ }, _) ->
            fields := last_component txt :: !fields
          | Pexp_apply _ | Pexp_send _ -> unknown := true
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  it.Ast_iterator.expr it body;
  ( List.sort_uniq compare !calls,
    List.sort_uniq compare !fields,
    !unknown,
    List.sort_uniq compare !raises )

(* One function body → sites + handlers.  [wired] tracks the record
   field or labeled hook argument the current subtree is being stored
   under (see {!site.wired}). *)
let extract_body body =
  let sites = ref [] and handlers = ref [] and handled = ref [] in
  let seen_heads : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let wired = ref None in
  let add kind (l : Location.t) = sites := { kind; s_loc = loc_of l; wired = !wired } :: !sites in
  let with_wired w f =
    let old = !wired in
    wired := w;
    f ();
    wired := old
  in
  let key (l : Location.t) =
    let p = l.Location.loc_start in
    (p.Lexing.pos_lnum, p.Lexing.pos_cnum)
  in
  (* Classify one identifier occurrence.  [applied] distinguishes a
     call head from a bare mention (a value being passed/stored).
     Effect primitives ALSO record a [Call] site: the implementation
     function behind e.g. [Group_commit.on_force] must receive graph
     edges, or it would look like an uncalled root. *)
  let classify_ident ~applied ~args txt (loc : Location.t) =
    let name = last_component txt in
    let add_call () = add (Call { path = components txt; applied }) loc in
    if is_force_ident txt then begin
      if applied then add (Force { name }) loc;
      add_call ()
    end
    else if name = "on_force" then begin
      add Sweep loc;
      add_call ()
    end
    else if name = "release_txn_early" then begin
      add Elr_release loc;
      add_call ()
    end
    else if name = "elr_record_release" then begin
      add Elr_record loc;
      add_call ()
    end
    else if parent_module txt = Some "Rng" && List.mem name rng_draw_names then begin
      add (Rng_draw { name }) loc;
      add_call ()
    end
    else if parent_module txt = Some "Rng" && List.mem name rng_seed_names then begin
      add (Rng_seed { name }) loc;
      add_call ()
    end
    else if applied && name = "block" && parent_module txt = Some "Block" then (
      match args with
      | (_, reason) :: _ -> add (Raise { label = label_of_reason reason }) loc
      | [] -> add_call ())
    else if applied && (name = "raise" || name = "raise_notrace") then (
      match args with
      | (_, { pexp_desc = Pexp_construct ({ txt = c; _ }, arg); _ }) :: _
        when last_component c = "Would_block" ->
        add
          (Raise
             { label = (match arg with Some a -> label_of_reason a | None -> Would_block) })
          loc
      | _ -> ())
    else begin
      if name = "maybe_crashpoint" && applied then
        List.iter
          (fun (_, (a : expression)) ->
            match a.pexp_desc with
            | Pexp_construct ({ txt = c; loc = cl }, None) ->
              add (Crashpoint { name = last_component c }) cl
            | _ -> ())
          args;
      add_call ()
    end
  in
  let record_handler ~scrutinee case =
    if case.pc_guard = None then begin
      let labels, explicit =
        match case.pc_lhs.ppat_desc with
        | Ppat_exception inner -> handled_labels inner
        | _ -> handled_labels case.pc_lhs
      in
      if labels <> [] then begin
        handled := List.sort_uniq compare (labels @ !handled);
        if explicit then begin
          let h_calls, h_fields, h_unknown, h_raises = handler_feed scrutinee in
          handlers :=
            {
              h_labels = labels;
              h_loc = loc_of case.pc_lhs.ppat_loc;
              h_calls;
              h_fields;
              h_unknown;
              h_raises;
            }
            :: !handlers
        end
      end
    end
  in
  let it =
    let open Ast_iterator in
    {
      default_iterator with
      expr =
        (fun self e ->
          match e.pexp_desc with
          | Pexp_apply (head, args) ->
            (match head.pexp_desc with
            | Pexp_ident { txt; loc } ->
              Hashtbl.replace seen_heads (key loc) ();
              classify_ident ~applied:true ~args txt loc
            | Pexp_field (_, { txt; loc }) ->
              Hashtbl.replace seen_heads (key loc) ();
              add (Field_call { field = last_component txt }) loc
            | _ -> ());
            self.expr self head;
            List.iter
              (fun ((lbl : Asttypes.arg_label), (arg : expression)) ->
                match (lbl, arg.pexp_desc) with
                | (Asttypes.Labelled l | Asttypes.Optional l), (Pexp_fun _ | Pexp_function _)
                  ->
                  with_wired (Some l) (fun () -> self.expr self arg)
                | _ -> self.expr self arg)
              args
          | Pexp_ident { txt; loc } ->
            if not (Hashtbl.mem seen_heads (key loc)) then
              classify_ident ~applied:false ~args:[] txt loc
          | Pexp_field (_, { txt; loc }) ->
            (* bare field mention: a stored closure being passed on *)
            if not (Hashtbl.mem seen_heads (key loc)) then
              add (Field_call { field = last_component txt }) loc;
            default_iterator.expr self e
          | Pexp_record (fields, base) ->
            Option.iter (self.expr self) base;
            List.iter
              (fun (({ txt; _ } : Longident.t Asttypes.loc), v) ->
                with_wired (Some (last_component txt)) (fun () -> self.expr self v))
              fields
          | Pexp_setfield (obj, { txt; _ }, v) ->
            self.expr self obj;
            with_wired (Some (last_component txt)) (fun () -> self.expr self v)
          | Pexp_try (body, cases) ->
            List.iter (record_handler ~scrutinee:body) cases;
            default_iterator.expr self e
          | Pexp_match (scrutinee, cases) ->
            List.iter
              (fun c ->
                match c.pc_lhs.ppat_desc with
                | Ppat_exception _ -> record_handler ~scrutinee c
                | _ -> ())
              cases;
            default_iterator.expr self e
          | _ -> default_iterator.expr self e);
    }
  in
  it.Ast_iterator.expr it body;
  (List.rev !sites, List.rev !handlers, !handled)

(* Top-level bindings (descending plain sub-modules and functors) plus
   [Pstr_eval] items, which act as anonymous module-initialization
   functions and are the natural call-graph roots of executables. *)
let top_level_fns structure =
  let acc = ref [] in
  let rec item i =
    match i.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let name =
            match vb.pvb_pat.ppat_desc with
            | Ppat_var v -> v.Asttypes.txt
            | _ -> Printf.sprintf "(init:%d)" vb.pvb_loc.Location.loc_start.Lexing.pos_lnum
          in
          acc := (name, vb.pvb_loc, vb.pvb_expr) :: !acc)
        vbs
    | Pstr_eval (e, _) ->
      acc :=
        ( Printf.sprintf "(toplevel:%d)" i.pstr_loc.Location.loc_start.Lexing.pos_lnum,
          i.pstr_loc,
          e )
        :: !acc
    | Pstr_module mb -> module_expr mb.pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.pmb_expr) mbs
    | _ -> ()
  and module_expr me =
    match me.pmod_desc with
    | Pmod_structure s -> List.iter item s
    | Pmod_functor (_, body) -> module_expr body
    | Pmod_constraint (inner, _) -> module_expr inner
    | _ -> ()
  in
  List.iter item structure;
  List.rev !acc

let module_aliases structure =
  List.filter_map
    (fun i ->
      match i.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> Some (name, last_component txt)
        | _ -> None)
      | _ -> None)
    structure

(* Opened modules, both structure-level [open M] and expression-level
   [let open M in] / [M.(...)], flattened to file scope: an unqualified
   name that is not a local binding may come from any of them. *)
let module_opens structure =
  let acc = ref [] in
  let note (me : module_expr) =
    match me.pmod_desc with
    | Pmod_ident { txt; _ } -> acc := last_component txt :: !acc
    | _ -> ()
  in
  let it =
    let open Ast_iterator in
    {
      default_iterator with
      open_declaration =
        (fun self od ->
          note od.popen_expr;
          default_iterator.open_declaration self od);
    }
  in
  it.Ast_iterator.structure it structure;
  List.sort_uniq compare !acc

let module_name_of_rel rel = String.capitalize_ascii Filename.(remove_extension (basename rel))

let of_structure ~rel ~digest structure =
  let fns =
    List.map
      (fun (fn_name, loc, body) ->
        let sites, handlers, handled = extract_body body in
        { fn_name; fn_loc = loc_of loc; handled; sites; handlers })
      (top_level_fns structure)
  in
  {
    rel;
    module_name = module_name_of_rel rel;
    digest;
    aliases = module_aliases structure;
    opens = module_opens structure;
    fns;
  }

(* ------------------------------------------------------------------ *)
(* JSON codec (cache + --dump-summaries)                               *)
(* ------------------------------------------------------------------ *)

module J = Repro_obs.Json

let loc_to_json l = J.Obj [ ("line", J.Int l.line); ("col", J.Int l.col) ]

let loc_of_json j =
  match (J.member "line" j, J.member "col" j) with
  | Some l, Some c -> (
    match (J.to_int_opt l, J.to_int_opt c) with
    | Some line, Some col -> Some { line; col }
    | _ -> None)
  | _ -> None

let kind_to_json = function
  | Call { path; applied } ->
    J.Obj
      [
        ("k", J.Str "call");
        ("path", J.List (List.map (fun s -> J.Str s) path));
        ("applied", J.Bool applied);
      ]
  | Field_call { field } -> J.Obj [ ("k", J.Str "field_call"); ("field", J.Str field) ]
  | Raise { label } -> J.Obj [ ("k", J.Str "raise"); ("label", J.Str (label_name label)) ]
  | Force { name } -> J.Obj [ ("k", J.Str "force"); ("name", J.Str name) ]
  | Sweep -> J.Obj [ ("k", J.Str "sweep") ]
  | Elr_release -> J.Obj [ ("k", J.Str "elr_release") ]
  | Elr_record -> J.Obj [ ("k", J.Str "elr_record") ]
  | Rng_draw { name } -> J.Obj [ ("k", J.Str "rng_draw"); ("name", J.Str name) ]
  | Rng_seed { name } -> J.Obj [ ("k", J.Str "rng_seed"); ("name", J.Str name) ]
  | Crashpoint { name } -> J.Obj [ ("k", J.Str "crashpoint"); ("name", J.Str name) ]

let str_list_of_json j =
  match j with
  | J.List l -> Some (List.filter_map J.to_string_opt l)
  | _ -> None

let kind_of_json j =
  let str k = Option.bind (J.member k j) J.to_string_opt in
  match str "k" with
  | Some "call" -> (
    match (Option.bind (J.member "path" j) str_list_of_json, J.member "applied" j) with
    | Some path, Some (J.Bool applied) -> Some (Call { path; applied })
    | _ -> None)
  | Some "field_call" -> Option.map (fun field -> Field_call { field }) (str "field")
  | Some "raise" ->
    Option.bind (str "label") (fun n ->
        Option.map (fun label -> Raise { label }) (label_of_name n))
  | Some "force" -> Option.map (fun name -> Force { name }) (str "name")
  | Some "sweep" -> Some Sweep
  | Some "elr_release" -> Some Elr_release
  | Some "elr_record" -> Some Elr_record
  | Some "rng_draw" -> Option.map (fun name -> Rng_draw { name }) (str "name")
  | Some "rng_seed" -> Option.map (fun name -> Rng_seed { name }) (str "name")
  | Some "crashpoint" -> Option.map (fun name -> Crashpoint { name }) (str "name")
  | _ -> None

let site_to_json s =
  J.Obj
    ([ ("kind", kind_to_json s.kind); ("loc", loc_to_json s.s_loc) ]
    @ match s.wired with None -> [] | Some w -> [ ("wired", J.Str w) ])

let site_of_json j =
  match (Option.bind (J.member "kind" j) kind_of_json, Option.bind (J.member "loc" j) loc_of_json) with
  | Some kind, Some s_loc ->
    Some { kind; s_loc; wired = Option.bind (J.member "wired" j) J.to_string_opt }
  | _ -> None

let labels_to_json ls = J.List (List.map (fun l -> J.Str (label_name l)) ls)

let labels_of_json j =
  Option.map (List.filter_map label_of_name) (str_list_of_json j)

let handler_to_json h =
  J.Obj
    [
      ("labels", labels_to_json h.h_labels);
      ("loc", loc_to_json h.h_loc);
      ("calls", J.List (List.map (fun p -> J.List (List.map (fun s -> J.Str s) p)) h.h_calls));
      ("fields", J.List (List.map (fun s -> J.Str s) h.h_fields));
      ("unknown", J.Bool h.h_unknown);
      ("raises", labels_to_json h.h_raises);
    ]

let handler_of_json j =
  let ( let* ) = Option.bind in
  let* h_labels = Option.bind (J.member "labels" j) labels_of_json in
  let* h_loc = Option.bind (J.member "loc" j) loc_of_json in
  let* h_calls =
    match J.member "calls" j with
    | Some (J.List l) ->
      let paths = List.filter_map str_list_of_json l in
      if List.length paths = List.length l then Some paths else None
    | _ -> None
  in
  let* h_fields = Option.bind (J.member "fields" j) str_list_of_json in
  let* h_raises = Option.bind (J.member "raises" j) labels_of_json in
  match J.member "unknown" j with
  | Some (J.Bool h_unknown) -> Some { h_labels; h_loc; h_calls; h_fields; h_unknown; h_raises }
  | _ -> None

let fn_to_json f =
  J.Obj
    [
      ("name", J.Str f.fn_name);
      ("loc", loc_to_json f.fn_loc);
      ("handled", labels_to_json f.handled);
      ("sites", J.List (List.map site_to_json f.sites));
      ("handlers", J.List (List.map handler_to_json f.handlers));
    ]

let fn_of_json j =
  let ( let* ) = Option.bind in
  let* fn_name = Option.bind (J.member "name" j) J.to_string_opt in
  let* fn_loc = Option.bind (J.member "loc" j) loc_of_json in
  let* handled = Option.bind (J.member "handled" j) labels_of_json in
  let all l f = if List.length l = List.length f then Some f else None in
  let* sites =
    match J.member "sites" j with
    | Some (J.List l) -> all l (List.filter_map site_of_json l)
    | _ -> None
  in
  let* handlers =
    match J.member "handlers" j with
    | Some (J.List l) -> all l (List.filter_map handler_of_json l)
    | _ -> None
  in
  Some { fn_name; fn_loc; handled; sites; handlers }

let file_to_json f =
  J.Obj
    [
      ("rel", J.Str f.rel);
      ("module", J.Str f.module_name);
      ("digest", J.Str f.digest);
      ( "aliases",
        J.Obj (List.map (fun (a, m) -> (a, J.Str m)) f.aliases) );
      ("opens", J.List (List.map (fun m -> J.Str m) f.opens));
      ("fns", J.List (List.map fn_to_json f.fns));
    ]

let file_of_json j =
  let ( let* ) = Option.bind in
  let* rel = Option.bind (J.member "rel" j) J.to_string_opt in
  let* module_name = Option.bind (J.member "module" j) J.to_string_opt in
  let* digest = Option.bind (J.member "digest" j) J.to_string_opt in
  let* aliases =
    match J.member "aliases" j with
    | Some (J.Obj kvs) ->
      let al = List.filter_map (fun (k, v) -> Option.map (fun m -> (k, m)) (J.to_string_opt v)) kvs in
      if List.length al = List.length kvs then Some al else None
    | _ -> None
  in
  let* opens = Option.bind (J.member "opens" j) str_list_of_json in
  let* fns =
    match J.member "fns" j with
    | Some (J.List l) ->
      let fs = List.filter_map fn_of_json l in
      if List.length fs = List.length l then Some fs else None
    | _ -> None
  in
  Some { rel; module_name; digest; aliases; opens; fns }

let cache_version = 2

let to_json files =
  J.Obj [ ("version", J.Int cache_version); ("files", J.List (List.map file_to_json files)) ]

(* ------------------------------------------------------------------ *)
(* Digest-keyed cache                                                  *)
(* ------------------------------------------------------------------ *)

let load_cache path =
  if not (Sys.file_exists path) then []
  else
    try
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let j = J.of_string text in
      match (J.member "version" j, J.member "files" j) with
      | Some v, Some (J.List files) when J.to_int_opt v = Some cache_version ->
        List.filter_map file_of_json files
      | _ -> []
    with Sys_error _ | End_of_file | J.Parse_error _ -> []

let save_cache path files =
  try
    let oc = open_out_bin path in
    output_string oc (J.to_string (to_json files));
    close_out oc
  with Sys_error _ -> ()

let default_cache_file ~root =
  let build = Filename.concat root "_build" in
  if Sys.file_exists build && Sys.is_directory build then
    Some (Filename.concat build "cbl_lint_summaries.json")
  else None

let of_sources ?cache_file (sources : Lint.source list) =
  let cached =
    match cache_file with
    | None -> []
    | Some p -> List.map (fun f -> ((f.rel, f.digest), f)) (load_cache p)
  in
  let misses = ref false in
  let files =
    List.filter_map
      (fun (s : Lint.source) ->
        match s.Lint.ast with
        | Lint.Intf _ -> None
        | Lint.Impl structure -> (
          match List.assoc_opt (s.Lint.rel, s.Lint.digest) cached with
          | Some f -> Some f
          | None ->
            misses := true;
            Some (of_structure ~rel:s.Lint.rel ~digest:s.Lint.digest structure)))
      sources
  in
  (match cache_file with
  | Some p when !misses || cached = [] -> save_cache p files
  | _ -> ());
  files
