(** Name-resolved intra-repo call graph over {!Summary.file}s — phase
    1b of the whole-repo lint analysis.

    Nodes are top-level functions plus one synthetic [field:NAME] node
    per record field / labeled hook that stores or invokes closures;
    edges are best-effort resolutions of call sites over the untyped
    AST (see the module comment in [callgraph.ml] for the exact
    policy).  Unresolvable applied calls into repo modules land in the
    explicit {!t.unknown} bucket rather than vanishing. *)

type node = {
  id : int;
  name : string;  (** ["rel#fn"] or ["field:f"] *)
  file : string option;
  fn : Summary.fn option;  (** [None] for synthetic field nodes *)
  mutable succ : int list;
  mutable field_raises : (Summary.exn_label * Summary.loc * string) list;
}

type t = {
  nodes : node array;
  in_deg : int array;
  unknown : (string * int) list;  (** qualified name → applied-call count *)
}

val is_fn : node -> bool

type resolution = Fn_key of (string * string) | External | Unknown of string | Local

val resolve :
  module_index:(string, Summary.file) Hashtbl.t ->
  binding_exists:(string * string -> bool) ->
  Summary.file ->
  string list ->
  resolution
(** Resolve an identifier path as seen from [file]. *)

val indexes : Summary.file list -> (string, Summary.file) Hashtbl.t * (string * string -> bool)
(** The [(module_index, binding_exists)] pair {!resolve} needs. *)

val build : Summary.file list -> t

val find : t -> rel:string -> fn_name:string -> int option
val find_field : t -> string -> int option
val node_id : t -> string * string -> int option

val to_json : t -> Repro_obs.Json.t
(** The [--dump-callgraph] object: nodes with in-degrees, edge pairs,
    and the unknown-callee bucket. *)
