open Parsetree

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let in_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"

(* Longident components, left to right (own flatten: the stdlib's
   raises on [Lapply]). *)
let rec components = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> components p @ [ s ]
  | Longident.Lapply (a, b) -> components a @ components b

let last_component lid = match List.rev (components lid) with s :: _ -> s | [] -> ""

(* Visit every expression of a structure, including nested modules. *)
let iter_exprs_in_structure f structure =
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          f e;
          default_iterator.expr self e);
    }
  in
  it.structure it structure

let iter_exprs_in_expr f expr =
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          f e;
          default_iterator.expr self e);
    }
  in
  it.expr it expr

(* The top-level value bindings of a structure, descending into plain
   sub-modules and functors: the granularity at which "paired in the
   same enclosing function" is judged. *)
let top_level_bindings structure =
  let acc = ref [] in
  let rec item i =
    match i.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter (fun vb -> acc := vb :: !acc) vbs
    | Pstr_module mb -> module_expr mb.pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.pmb_expr) mbs
    | _ -> ()
  and module_expr me =
    match me.pmod_desc with
    | Pmod_structure s -> List.iter item s
    | Pmod_functor (_, body) -> module_expr body
    | Pmod_constraint (inner, _) -> module_expr inner
    | _ -> ()
  in
  List.iter item structure;
  List.rev !acc

(* Does [p] match every exception?  Returns the bound name for the
   re-raise exemption ([Some None] for [_], [Some (Some v)] for a
   variable or alias). *)
let rec catch_all p =
  match p.ppat_desc with
  | Ppat_any -> Some None
  | Ppat_var v -> Some (Some v.Asttypes.txt)
  | Ppat_alias (inner, v) -> (
    match catch_all inner with Some _ -> Some (Some v.Asttypes.txt) | None -> None)
  | Ppat_or (a, b) -> ( match catch_all a with Some _ as r -> r | None -> catch_all b)
  | Ppat_constraint (inner, _) -> catch_all inner
  | _ -> None

(* [body] re-raises the caught exception bound to [name]. *)
let reraises name body =
  let found = ref false in
  iter_exprs_in_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = f; _ }; _ },
            (_, { pexp_desc = Pexp_ident { txt = Longident.Lident v; _ }; _ }) :: _ )
        when v = name && List.mem (last_component f) [ "raise"; "raise_notrace"; "reraise" ] ->
        found := true
      | _ -> ())
    body;
  !found

let binding_name vb =
  match vb.pvb_pat.ppat_desc with Ppat_var v -> Some v.Asttypes.txt | _ -> None

let ends_with suffix s = String.ends_with ~suffix s

(* ------------------------------------------------------------------ *)
(* Shared whole-repo analysis (phase 1 + 2), memoized per run          *)
(* ------------------------------------------------------------------ *)

(* The implementation layers each pairing rule exempts: the modules
   that ARE the force (and the cost-charging layer below it) cannot
   pair with the sweep without a dependency cycle — Group_commit wraps
   Log_manager, not the other way round.  Likewise the lock manager is
   the one place allowed a bare early release, the RNG module is where
   draws are implemented, and Block is where the raises are minted. *)
let analysis_config =
  {
    Propagate.force_impl =
      [ "lib/wal/group_commit.ml"; "lib/wal/log_manager.ml"; "lib/sim/env.ml" ];
    elr_impl = [ "lib/lock/local_locks.ml" ];
    rng_impl = [ "lib/util/rng.ml" ];
    raise_impl = [ "lib/core/block.ml" ];
    checked = in_lib;
  }

type analysis = { files : Summary.file list; prop : Propagate.t }

(* The five interprocedural rules share one analysis per [Lint.run]:
   keyed on the physical ctx, which the engine builds fresh each run. *)
let memo : (Lint.ctx * analysis) option ref = ref None

let analysis (ctx : Lint.ctx) =
  match !memo with
  | Some (c, a) when c == ctx -> a
  | _ ->
    let cache_file = Summary.default_cache_file ~root:ctx.Lint.root in
    let files = Summary.of_sources ?cache_file ctx.Lint.sources in
    let graph = Callgraph.build files in
    let prop = Propagate.run analysis_config graph in
    let a = { files; prop } in
    memo := Some (ctx, a);
    a

(* ------------------------------------------------------------------ *)
(* Rule 1: ipc-force-sweep (interprocedural force/sweep pairing)       *)
(* ------------------------------------------------------------------ *)

let report_cov ctx ~rule msg_of =
  List.iter
    (fun (c : Propagate.cov_site) ->
      ctx.Lint.report ~rule ~file:c.Propagate.c_file ~line:c.Propagate.c_loc.Summary.line
        ~col:c.Propagate.c_loc.Summary.col (msg_of c))

let ipc_force_sweep =
  {
    Lint.id = "ipc-force-sweep";
    doc =
      "a log force outside the force-implementation layer must have a Group_commit.on_force \
       sweep reachable in its call neighborhood — in the same function, a callee, or some \
       caller up the graph (force-to-device-end invariant, interprocedural)";
    check =
      (fun ctx ->
        let a = analysis ctx in
        report_cov ctx ~rule:"ipc-force-sweep"
          (fun c ->
            Printf.sprintf
              "%s in %s pairs with no reachable Group_commit.on_force sweep on any call \
               path: pending group-commit records this force made durable would stay \
               pending and be lost/retried"
              c.Propagate.c_what c.Propagate.c_fn)
          (Propagate.violations_force a.prop));
  }

(* ------------------------------------------------------------------ *)
(* Rule 2: swallowed-control-exn                                       *)
(* ------------------------------------------------------------------ *)

let swallowed_control_exn =
  {
    Lint.id = "swallowed-control-exn";
    doc =
      "no catch-all exception handlers in lib/: they absorb the Crash/Node_down control \
       exceptions (match specific exceptions, guard the case, or re-raise)";
    check =
      (fun ctx ->
        let check_case ~what c =
          (* A guarded case falls through for non-matching exceptions,
             so the control exceptions still propagate. *)
          if c.pc_guard = None then
            let pat, flagged =
              match c.pc_lhs.ppat_desc with
              | Ppat_exception inner -> (inner, catch_all inner)
              | _ -> (c.pc_lhs, if what = `Try then catch_all c.pc_lhs else None)
            in
            match flagged with
            | Some bound
              when (match bound with Some v -> not (reraises v c.pc_rhs) | None -> true) ->
              Lint.report_loc ctx ~rule:"swallowed-control-exn" pat.ppat_loc
                "catch-all exception handler can swallow Crash/Node_down control exceptions"
            | Some _ | None -> ()
        in
        List.iter
          (fun { Lint.rel; ast } ->
            match ast with
            | Lint.Intf _ -> ()
            | Lint.Impl structure ->
              if in_lib rel then
                iter_exprs_in_structure
                  (fun e ->
                    match e.pexp_desc with
                    | Pexp_try (_, cases) -> List.iter (check_case ~what:`Try) cases
                    | Pexp_match (_, cases) -> List.iter (check_case ~what:`Match) cases
                    | _ -> ())
                  structure)
          ctx.Lint.sources);
  }

(* ------------------------------------------------------------------ *)
(* Rule 3: rng-discipline                                              *)
(* ------------------------------------------------------------------ *)

(* The one module allowed to touch stdlib Random (today it does not
   even do that: the simulator runs on its own SplitMix64 streams). *)
let rng_modules = [ "lib/util/rng.ml" ]

let rng_discipline =
  {
    Lint.id = "rng-discipline";
    doc =
      "stdlib Random only in the designated RNG module (take a split Rng substream instead); \
       no Random.self_init / Unix.gettimeofday / Sys.time in lib/ (seed replay)";
    check =
      (fun ctx ->
        List.iter
          (fun { Lint.rel; ast } ->
            match ast with
            | Lint.Intf _ -> ()
            | Lint.Impl structure ->
              if in_lib rel then
                iter_exprs_in_structure
                  (fun e ->
                    match e.pexp_desc with
                    | Pexp_ident { txt; loc } -> (
                      let comps = components txt in
                      let comps =
                        match comps with "Stdlib" :: rest -> rest | _ -> comps
                      in
                      match comps with
                      | "Random" :: _ when last_component txt = "self_init" ->
                        Lint.report_loc ctx ~rule:"rng-discipline" loc
                          "Random.self_init breaks seed replay: every stream must derive \
                           from the run's seed"
                      | "Random" :: _ when not (List.mem rel rng_modules) ->
                        Lint.report_loc ctx ~rule:"rng-discipline" loc
                          (Printf.sprintf
                             "stdlib Random outside %s: draw from a split Rng substream so \
                              historical seeds stay bit-identical"
                             (String.concat ", " rng_modules))
                      | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] | [ "Sys"; "time" ] ->
                        Lint.report_loc ctx ~rule:"rng-discipline" loc
                          "wall-clock time in lib/ breaks deterministic replay: use the \
                           simulated clock (Env.now)"
                      | _ -> ())
                    | _ -> ())
                  structure)
          ctx.Lint.sources);
  }

(* ------------------------------------------------------------------ *)
(* Rule 4: crashpoint-registry                                         *)
(* ------------------------------------------------------------------ *)

let injector_files = [ "lib/fault/injector.ml"; "lib/fault/injector.mli" ]
let fault_plan_files = [ "lib/fault/fault_plan.ml"; "lib/fault/fault_plan.mli" ]

let type_decls_of ast =
  let acc = ref [] in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      type_declaration =
        (fun self td ->
          acc := td :: !acc;
          default_iterator.type_declaration self td);
    }
  in
  (match ast with
  | Lint.Impl s -> it.structure it s
  | Lint.Intf s -> it.signature it s);
  !acc

let crashpoint_registry =
  {
    Lint.id = "crashpoint-registry";
    doc =
      "crash points passed to maybe_crashpoint, the Injector.point constructors and the \
       Fault_plan.crashpoints fields must agree (and every declared point must be exercised)";
    check =
      (fun ctx ->
        (* Pass 1: the symbol table. *)
        let declared = ref [] (* (ctor, loc), from Injector.point *)
        and fields = ref [] (* (field, loc), from Fault_plan.crashpoints *)
        and uses = ref [] (* (ctor, loc), maybe_crashpoint call sites *) in
        List.iter
          (fun { Lint.rel; ast } ->
            if List.mem rel injector_files then
              List.iter
                (fun td ->
                  if td.ptype_name.Asttypes.txt = "point" then
                    match td.ptype_kind with
                    | Ptype_variant ctors ->
                      List.iter
                        (fun cd ->
                          let name = cd.pcd_name.Asttypes.txt in
                          if not (List.mem_assoc name !declared) then
                            declared := (name, cd.pcd_loc) :: !declared)
                        ctors
                    | _ -> ())
                (type_decls_of ast);
            if List.mem rel fault_plan_files then
              List.iter
                (fun td ->
                  if td.ptype_name.Asttypes.txt = "crashpoints" then
                    match td.ptype_kind with
                    | Ptype_record labels ->
                      List.iter
                        (fun ld ->
                          let name = ld.pld_name.Asttypes.txt in
                          (* budget bounds the injector, it is not a point *)
                          if name <> "budget" && not (List.mem_assoc name !fields) then
                            fields := (name, ld.pld_loc) :: !fields)
                        labels
                    | _ -> ())
                (type_decls_of ast);
            match ast with
            | Lint.Intf _ -> ()
            | Lint.Impl structure ->
              iter_exprs_in_structure
                (fun e ->
                  match e.pexp_desc with
                  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
                    when last_component txt = "maybe_crashpoint" ->
                    List.iter
                      (fun (_, (arg : expression)) ->
                        match arg.pexp_desc with
                        | Pexp_construct ({ txt = ctor; loc }, None) ->
                          uses := (last_component ctor, loc) :: !uses
                        | _ -> ())
                      args
                  | _ -> ())
                structure)
          ctx.Lint.sources;
        (* Pass 2: consistency.  Skipped entirely when the registry
           modules are outside the linted path set. *)
        if !declared <> [] && !fields <> [] then begin
          let field_of ctor = String.lowercase_ascii ctor in
          List.iter
            (fun (ctor, loc) ->
              if not (List.mem_assoc ctor !declared) then
                Lint.report_loc ctx ~rule:"crashpoint-registry" loc
                  (Printf.sprintf "crash point %s is not declared in Injector.point" ctor))
            (List.rev !uses);
          List.iter
            (fun (ctor, loc) ->
              if not (List.mem_assoc (field_of ctor) !fields) then
                Lint.report_loc ctx ~rule:"crashpoint-registry" loc
                  (Printf.sprintf
                     "crash point %s has no %s probability field in Fault_plan.crashpoints \
                      — plans cannot schedule it"
                     ctor (field_of ctor));
              if !uses <> [] && not (List.mem_assoc ctor !uses) then
                Lint.report_loc ctx ~rule:"crashpoint-registry" loc
                  (Printf.sprintf
                     "crash point %s is declared but never passed to maybe_crashpoint: the \
                      protocol window it names is not exercised"
                     ctor))
            (List.rev !declared);
          List.iter
            (fun (field, loc) ->
              if not (List.exists (fun (ctor, _) -> field_of ctor = field) !declared) then
                Lint.report_loc ctx ~rule:"crashpoint-registry" loc
                  (Printf.sprintf
                     "Fault_plan.crashpoints field %s has no matching Injector.point \
                      constructor"
                     field))
            (List.rev !fields)
        end);
  }

(* ------------------------------------------------------------------ *)
(* Rule 5: event-codec-exhaustive                                      *)
(* ------------------------------------------------------------------ *)

(* Functions that must stay total over Event.kind, per file: the codec
   itself, plus the offline analyses that consume every event — a new
   event kind must fail to compile (or lint) until each of them has
   made a conscious decision about it, including "explicitly ignored". *)
let codec_fn_table =
  [
    ( "lib/obs/event.ml",
      [ "kind_name"; "kind_of_name"; "json_value"; "to_json"; "of_json" ],
      "a new event kind would serialize wrong silently" );
    ( "lib/obs/critical_path.ml",
      [ "classify_kind"; "analyze" ],
      "a new event kind would fall out of commit-latency attribution silently" );
    ( "lib/obs/audit.ml",
      [ "dispatch" ],
      "a new event kind would bypass the protocol auditor silently" );
  ]

let event_codec_exhaustive =
  {
    Lint.id = "event-codec-exhaustive";
    doc =
      "the Event codec and its analysis consumers (Critical_path, Audit) must not use a \
       wildcard case over events: a new event kind must fail to compile until its encoding, \
       attribution and audit handling are written";
    check =
      (fun ctx ->
        List.iter
          (fun { Lint.rel; ast } ->
            match ast with
            | Lint.Intf _ -> ()
            | Lint.Impl structure -> (
              match
                List.find_opt (fun (file, _, _) -> file = rel) codec_fn_table
              with
              | None -> ()
              | Some (_, fns, why) ->
                List.iter
                  (fun vb ->
                    match binding_name vb with
                    | Some name when List.mem name fns ->
                      iter_exprs_in_expr
                        (fun e ->
                          match e.pexp_desc with
                          | Pexp_function cases | Pexp_match (_, cases) ->
                            List.iter
                              (fun c ->
                                match catch_all c.pc_lhs with
                                | Some _ ->
                                  Lint.report_loc ctx ~rule:"event-codec-exhaustive"
                                    c.pc_lhs.ppat_loc
                                    (Printf.sprintf "wildcard case in %s: %s" name why)
                                | None -> ())
                              cases
                          | _ -> ())
                        vb.pvb_expr
                    | Some _ | None -> ())
                  (top_level_bindings structure)))
          ctx.Lint.sources);
  }

(* ------------------------------------------------------------------ *)
(* Rule 6: no-poly-compare                                             *)
(* ------------------------------------------------------------------ *)

(* Identifier names that, in this codebase, denote mutable protocol
   state records (buffer-pool frames, pages, transaction descriptors):
   polymorphic comparison on them compares transient mutable fields. *)
let stateful_names = [ "frame"; "page"; "victim"; "descr"; "pool" ]
let stateful_suffixes = [ "_frame"; "_page"; "_descr"; "_pool" ]

let is_stateful name =
  List.mem name stateful_names || List.exists (fun s -> ends_with s name) stateful_suffixes

let poly_compare_op lid =
  match components lid with
  | [ "=" ] | [ "<>" ] | [ "compare" ] | [ "Stdlib"; "compare" ] -> Some (last_component lid)
  | comps when List.rev comps = [ "hash"; "Hashtbl" ] -> Some "Hashtbl.hash"
  | _ -> None

let no_poly_compare =
  {
    Lint.id = "no-poly-compare";
    doc =
      "no polymorphic =/compare/Hashtbl.hash on identifiers naming mutable protocol state \
       (frames, pages, descriptors): use the module's explicit equal";
    check =
      (fun ctx ->
        List.iter
          (fun { Lint.rel; ast } ->
            match ast with
            | Lint.Intf _ -> ()
            | Lint.Impl structure ->
              if in_lib rel then
                iter_exprs_in_structure
                  (fun e ->
                    match e.pexp_desc with
                    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
                      match poly_compare_op txt with
                      | Some op ->
                        List.iter
                          (fun (_, (arg : expression)) ->
                            match arg.pexp_desc with
                            | Pexp_ident { txt = Longident.Lident name; _ }
                              when is_stateful name ->
                              Lint.report_loc ctx ~rule:"no-poly-compare" loc
                                (Printf.sprintf
                                   "polymorphic %s on `%s` compares transient mutable \
                                    state; use the owning module's equal/compare"
                                   op name)
                            | _ -> ())
                          args
                      | None -> ())
                    | _ -> ())
                  structure)
          ctx.Lint.sources);
  }

(* ------------------------------------------------------------------ *)
(* Rule 7: mli-coverage                                                *)
(* ------------------------------------------------------------------ *)

let mli_coverage =
  {
    Lint.id = "mli-coverage";
    doc = "every lib/**/*.ml has a sibling .mli narrowing what the rest of the tree may touch";
    check =
      (fun ctx ->
        List.iter
          (fun rel ->
            if in_lib rel && Filename.check_suffix rel ".ml"
               && not (List.mem (rel ^ "i") ctx.Lint.files) then
              ctx.Lint.report ~rule:"mli-coverage" ~file:rel ~line:1 ~col:0
                "module has no .mli: its whole namespace is exposed library-wide")
          ctx.Lint.files);
  }

(* ------------------------------------------------------------------ *)
(* Rule 8: no-unsafe-obj                                               *)
(* ------------------------------------------------------------------ *)

let no_unsafe_obj =
  {
    Lint.id = "no-unsafe-obj";
    doc = "no Obj.* in lib/: unsafe casts void every invariant the other rules police";
    check =
      (fun ctx ->
        List.iter
          (fun { Lint.rel; ast } ->
            match ast with
            | Lint.Intf _ -> ()
            | Lint.Impl structure ->
              if in_lib rel then
                iter_exprs_in_structure
                  (fun e ->
                    match e.pexp_desc with
                    | Pexp_ident { txt; loc } when List.mem "Obj" (components txt) ->
                      Lint.report_loc ctx ~rule:"no-unsafe-obj" loc
                        "Obj.* is forbidden in lib/"
                    | _ -> ())
                  structure)
          ctx.Lint.sources);
  }

(* ------------------------------------------------------------------ *)
(* Rule 9: ipc-elr-pairing (interprocedural ELR release/record)        *)
(* ------------------------------------------------------------------ *)

let ipc_elr_pairing =
  {
    Lint.id = "ipc-elr-pairing";
    doc =
      "an early lock release (Local_locks.release_txn_early) outside lib/lock must have an \
       elr_record_release reachable in its call neighborhood — release and recording may \
       live in different functions, but a release no caller or callee ever records would \
       let later acquirers observe pre-durable state with no commit dependency";
    check =
      (fun ctx ->
        let a = analysis ctx in
        report_cov ctx ~rule:"ipc-elr-pairing"
          (fun c ->
            Printf.sprintf
              "%s in %s pairs with no reachable elr_record_release on any call path: \
               acquirers of these pages would observe pre-durable state with no commit \
               dependency recorded"
              c.Propagate.c_what c.Propagate.c_fn)
          (Propagate.violations_elr a.prop));
  }

(* ------------------------------------------------------------------ *)
(* Rule 10: exn-flow                                                   *)
(* ------------------------------------------------------------------ *)

let exn_flow =
  {
    Lint.id = "exn-flow";
    doc =
      "every raise of a retryable control exception (Would_block and its Node_down / \
       Page_unavailable / Net_unreachable refinements) in lib/ must be able to reach a \
       matching handler on some call path — a raise no driver/stress/recovery context can \
       catch would kill the run instead of being retried";
    check =
      (fun ctx ->
        let a = analysis ctx in
        List.iter
          (fun (r : Propagate.raise_site) ->
            ctx.Lint.report ~rule:"exn-flow" ~file:r.Propagate.r_file
              ~line:r.Propagate.r_loc.Summary.line ~col:r.Propagate.r_loc.Summary.col
              (Printf.sprintf
                 "raise of %s in %s can reach no matching Would_block handler on any call \
                  path: the retry protocol never sees it"
                 (Summary.label_name r.Propagate.r_label)
                 r.Propagate.r_fn))
          (Propagate.unhandled_raises a.prop));
  }

(* ------------------------------------------------------------------ *)
(* Rule 11: dead-handler                                               *)
(* ------------------------------------------------------------------ *)

let dead_handler =
  {
    Lint.id = "dead-handler";
    doc =
      "a handler that explicitly matches Would_block must be feedable: something its \
       guarded body reaches (resolved callees, invoked closure fields, direct raises) can \
       raise a label it matches — an unfeedable handler is dead protocol code or a retry \
       boundary that drifted away from the raise it used to cover";
    check =
      (fun ctx ->
        let a = analysis ctx in
        List.iter
          (fun (f : Summary.file) ->
            List.iter
              (fun (fn : Summary.fn) ->
                List.iter
                  (fun (h : Summary.handler) ->
                    if not (Propagate.handler_live a.prop a.files ~rel:f.Summary.rel h) then
                      ctx.Lint.report ~rule:"dead-handler" ~file:f.Summary.rel
                        ~line:h.Summary.h_loc.Summary.line ~col:h.Summary.h_loc.Summary.col
                        (Printf.sprintf
                           "handler for %s in %s: nothing its guarded body reaches can \
                            raise a label it matches"
                           (String.concat "/"
                              (List.map Summary.label_name h.Summary.h_labels))
                           fn.Summary.fn_name))
                  fn.Summary.handlers)
              f.Summary.fns)
          a.files);
  }

(* ------------------------------------------------------------------ *)
(* Rule 12: rng-reachability                                           *)
(* ------------------------------------------------------------------ *)

let rng_reachability =
  {
    Lint.id = "rng-reachability";
    doc =
      "a sim-RNG draw in lib/ must have an Rng.create/Rng.split reachable in its call \
       neighborhood: a draw on a stream no root ever seeds or splits is invisible to seed \
       replay and silently breaks bit-identical reruns";
    check =
      (fun ctx ->
        let a = analysis ctx in
        report_cov ctx ~rule:"rng-reachability"
          (fun c ->
            Printf.sprintf
              "%s in %s is not reachable from any seeded root (no Rng.create/Rng.split in \
               its call neighborhood): this stream escapes seed replay"
              c.Propagate.c_what c.Propagate.c_fn)
          (Propagate.violations_rng a.prop));
  }

(* ------------------------------------------------------------------ *)

let all =
  [
    ipc_force_sweep;
    swallowed_control_exn;
    rng_discipline;
    crashpoint_registry;
    event_codec_exhaustive;
    no_poly_compare;
    mli_coverage;
    no_unsafe_obj;
    ipc_elr_pairing;
    exn_flow;
    dead_handler;
    rng_reachability;
  ]

let find id = List.find_opt (fun r -> r.Lint.id = id) all
