(** Fixpoint propagation of effect summaries over the call graph —
    phase 2 of the whole-repo lint analysis.

    All facts are monotone joins over finite sets, so the fixpoint is
    unique and independent of visit order; [?order] exists so the
    qcheck property can permute the sweep order and assert exactly
    that. *)

type config = {
  force_impl : string list;
  elr_impl : string list;
  rng_impl : string list;
  raise_impl : string list;
  checked : string -> bool;
}

type raise_site = {
  r_label : Summary.exn_label;
  r_file : string;
  r_loc : Summary.loc;
  r_fn : string;
}

type cov_site = { c_file : string; c_loc : Summary.loc; c_fn : string; c_what : string }

module RS : Set.S with type elt = raise_site
module CS : Set.S with type elt = cov_site

type t = {
  graph : Callgraph.t;
  may_sweep : bool array;
  may_elr_record : bool array;
  may_seed : bool array;
  escaping : RS.t array;
  handled : (string * int * int * Summary.exn_label, unit) Hashtbl.t;
  raise_sites : raise_site list;
  uncovered_force : CS.t array;
  uncovered_elr : CS.t array;
  uncovered_rng : CS.t array;
  roots : int list;
  passes : int;
}

val run : ?order:int array -> config -> Callgraph.t -> t

val is_handled : t -> raise_site -> bool
val unhandled_raises : t -> raise_site list

val violations_force : t -> cov_site list
val violations_elr : t -> cov_site list
val violations_rng : t -> cov_site list

val handler_live : t -> Summary.file list -> rel:string -> Summary.handler -> bool
(** Can anything the handler's guarded body reaches feed it a matching
    exception?  Conservatively [true] on anything unresolved that could
    be repo code. *)

val to_json : t -> Repro_obs.Json.t
(** Debug dump: passes, roots, reachability bits, escaping sets. *)
