(** cbl-lint: parse-level static analysis of the repo's own protocol
    rules.

    The engine parses every [.ml]/[.mli] under the requested paths with
    [compiler-libs] ([Parse] over the Parsetree — no type-checking, so
    no build-order coupling) and runs a registry of {!rule}s.  Each rule
    reports {!finding}s with a precise [file:line:col] location.

    Findings can be silenced two ways:
    - inline, with an attribute naming the rule id —
      [(expr [@cbl.lint.allow "rule-id"])] on an expression,
      [[@@cbl.lint.allow "rule-id"]] on a binding, or a floating
      [[@@@cbl.lint.allow "rule-id"]] for the whole file;
    - via an allowlist file of grandfathered violations (one
      [rule-id file[:line]] entry per line, [#] comments), which this
      repo keeps empty. *)

type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  file : string;  (** root-relative path, ['/']-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler prints them *)
  msg : string;
}

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

type source = { rel : string; digest : string; ast : ast }
(** One successfully parsed file.  [rel] is the root-relative path;
    rules key their scoping decisions off it.  [digest] is the MD5 hex
    of the file text, the key of the summary cache. *)

type ctx = {
  root : string;  (** the repo root [run] was pointed at *)
  sources : source list;  (** parsed files, in path order *)
  files : string list;  (** every discovered file, parsed or not *)
  report :
    ?severity:severity -> rule:string -> file:string -> line:int -> col:int -> string -> unit;
}

val report_loc : ctx -> ?severity:severity -> rule:string -> Location.t -> string -> unit
(** Report at the start of a Parsetree location (whose [pos_fname] is
    the root-relative path the engine parsed under). *)

type rule = { id : string; doc : string; check : ctx -> unit }

type result = {
  findings : finding list;  (** unsuppressed, sorted by file/line/col *)
  files_scanned : int;
  suppressed : int;  (** silenced by an inline [@cbl.lint.allow] *)
  allowlisted : int;  (** silenced by the allowlist file *)
  rule_seconds : (string * float) list;
      (** per-rule wall time under [clock], in registry order; all zero
          when no clock is injected *)
}

val parse_tree :
  root:string -> paths:string list -> string list * source list * finding list
(** Phase 1 alone: [(files, sources, parse_findings)].  The bench uses
    it to time parsing separately from summary extraction and rules. *)

val run :
  ?allowlist_file:string ->
  ?clock:(unit -> float) ->
  root:string ->
  paths:string list ->
  rules:rule list ->
  unit ->
  result
(** Lint [paths] (files or directories, relative to [root]; [_build]
    and dot-directories are skipped).  Files that fail to parse yield a
    ["parse-error"] finding rather than aborting the run.  [clock] is
    injected by callers that may read wall time (the library itself must
    stay deterministic under the repo's own rng-discipline rule); it
    feeds the per-rule timing in {!result.rule_seconds}. *)

val ok : result -> bool
(** No findings at all — the gate CI exits on. *)

val render_finding : finding -> string
(** [file:line:col: severity [rule] msg], the human console line. *)

val result_to_json : rules:rule list -> result -> Repro_obs.Json.t
(** The [LINT_REPORT.json] object: tool, rule ids, counts, findings. *)
