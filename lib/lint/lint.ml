type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  msg : string;
}

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

type source = { rel : string; digest : string; ast : ast }

type ctx = {
  root : string;
  sources : source list;
  files : string list;
  report :
    ?severity:severity -> rule:string -> file:string -> line:int -> col:int -> string -> unit;
}

let report_loc ctx ?severity ~rule (loc : Location.t) msg =
  let p = loc.Location.loc_start in
  ctx.report ?severity ~rule ~file:p.Lexing.pos_fname ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
    msg

type rule = { id : string; doc : string; check : ctx -> unit }

type result = {
  findings : finding list;
  files_scanned : int;
  suppressed : int;
  allowlisted : int;
  rule_seconds : (string * float) list;
}

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)
(* ------------------------------------------------------------------ *)

let is_source_file name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

let skip_dir name = name = "_build" || (String.length name > 0 && name.[0] = '.')

(* Root-relative paths of every .ml/.mli under [paths], sorted for a
   deterministic report order. *)
let discover ~root paths =
  let acc = ref [] in
  let rec walk rel =
    let full = Filename.concat root rel in
    if Sys.is_directory full then
      Array.iter
        (fun name ->
          if not (skip_dir name) then
            let child = Filename.concat rel name in
            let child_full = Filename.concat root child in
            if Sys.is_directory child_full then walk child
            else if is_source_file name then acc := child :: !acc)
        (Sys.readdir full)
    else if is_source_file rel then acc := rel :: !acc
  in
  List.iter (fun p -> if Sys.file_exists (Filename.concat root p) then walk p) paths;
  List.sort_uniq compare !acc

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* [None] with a finding on syntax errors: a file the compiler cannot
   parse should fail the lint gate loudly, not vanish from coverage. *)
let parse_source ~root rel =
  let text = read_file (Filename.concat root rel) in
  let digest = Digest.to_hex (Digest.string text) in
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf rel;
  Location.input_name := rel;
  match
    if Filename.check_suffix rel ".mli" then Intf (Parse.interface lexbuf)
    else Impl (Parse.implementation lexbuf)
  with
  | ast -> Ok { rel; digest; ast }
  | exception Syntaxerr.Error _ ->
    let p = lexbuf.Lexing.lex_curr_p in
    Error
      {
        rule = "parse-error";
        severity = Error;
        file = rel;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        msg = "syntax error";
      }
  | exception Lexer.Error (_, loc) ->
    let p = loc.Location.loc_start in
    Error
      {
        rule = "parse-error";
        severity = Error;
        file = rel;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        msg = "lexer error";
      }

(* ------------------------------------------------------------------ *)
(* Inline suppression: [@cbl.lint.allow "rule-id"]                     *)
(* ------------------------------------------------------------------ *)

let attr_name = "cbl.lint.allow"

(* The ids named by any [@cbl.lint.allow "..."] among [attrs]. *)
let allow_ids attrs =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> attr_name then []
      else
        match a.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (id, _, _)); _ }, _);
                _;
              };
            ] ->
          [ id ]
        | _ -> [])
    attrs

(* A suppression covers rule [id] in [file] between [first] and [last]
   lines inclusive (whole-file suppressions use [max_int]). *)
type suppression = { s_rule : string; s_file : string; first : int; last : int }

let span_of (loc : Location.t) =
  (loc.Location.loc_start.Lexing.pos_lnum, loc.Location.loc_end.Lexing.pos_lnum)

let collect_suppressions sources =
  let acc = ref [] in
  let add rel ids (first, last) =
    List.iter (fun id -> acc := { s_rule = id; s_file = rel; first; last } :: !acc) ids
  in
  let collect rel =
    let on_attrs attrs loc = add rel (allow_ids attrs) (span_of loc) in
    let open Ast_iterator in
    {
      default_iterator with
      expr =
        (fun self e ->
          on_attrs e.Parsetree.pexp_attributes e.Parsetree.pexp_loc;
          default_iterator.expr self e);
      value_binding =
        (fun self vb ->
          on_attrs vb.Parsetree.pvb_attributes vb.Parsetree.pvb_loc;
          default_iterator.value_binding self vb);
      module_binding =
        (fun self mb ->
          on_attrs mb.Parsetree.pmb_attributes mb.Parsetree.pmb_loc;
          default_iterator.module_binding self mb);
      type_declaration =
        (fun self td ->
          on_attrs td.Parsetree.ptype_attributes td.Parsetree.ptype_loc;
          default_iterator.type_declaration self td);
      structure_item =
        (fun self item ->
          (match item.Parsetree.pstr_desc with
          | Pstr_attribute a -> add rel (allow_ids [ a ]) (1, max_int)
          | Pstr_eval (_, attrs) -> on_attrs attrs item.Parsetree.pstr_loc
          | _ -> ());
          default_iterator.structure_item self item);
      signature_item =
        (fun self item ->
          (match item.Parsetree.psig_desc with
          | Psig_attribute a -> add rel (allow_ids [ a ]) (1, max_int)
          | _ -> ());
          default_iterator.signature_item self item);
    }
  in
  List.iter
    (fun { rel; ast; _ } ->
      let it = collect rel in
      match ast with
      | Impl s -> it.Ast_iterator.structure it s
      | Intf s -> it.Ast_iterator.signature it s)
    sources;
  !acc

let is_suppressed suppressions ~rule ~file ~line =
  List.exists
    (fun s -> s.s_rule = rule && s.s_file = file && line >= s.first && line <= s.last)
    suppressions

(* ------------------------------------------------------------------ *)
(* Allowlist file                                                      *)
(* ------------------------------------------------------------------ *)

(* Grandfathered violations: one "rule-id file[:line]" per line.  The
   repo's own allowlist must stay empty — the file exists so a future
   emergency has an escape hatch that is visible in review. *)
type allow_entry = { a_rule : string; a_file : string; a_line : int option }

let parse_allowlist_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.index_opt line ' ' with
    | None -> None
    | Some i ->
      let rule = String.sub line 0 i in
      let target = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      (match String.rindex_opt target ':' with
      | Some j when int_of_string_opt (String.sub target (j + 1) (String.length target - j - 1)) <> None ->
        Some
          {
            a_rule = rule;
            a_file = String.sub target 0 j;
            a_line = int_of_string_opt (String.sub target (j + 1) (String.length target - j - 1));
          }
      | _ -> Some { a_rule = rule; a_file = target; a_line = None })

let load_allowlist = function
  | None -> []
  | Some path ->
    if not (Sys.file_exists path) then []
    else
      read_file path |> String.split_on_char '\n' |> List.filter_map parse_allowlist_line

let is_allowlisted allow ~rule ~file ~line =
  List.exists
    (fun a ->
      a.a_rule = rule && a.a_file = file
      && match a.a_line with None -> true | Some l -> l = line)
    allow

(* ------------------------------------------------------------------ *)
(* Driving                                                             *)
(* ------------------------------------------------------------------ *)

let compare_finding a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c else compare a.rule b.rule

(* Phase 1 in isolation: discovery + parsing, no rules.  Exposed so the
   bench can time the parse and summary phases separately. *)
let parse_tree ~root ~paths =
  let files = discover ~root paths in
  let sources = ref [] and parse_findings = ref [] in
  List.iter
    (fun rel ->
      match parse_source ~root rel with
      | Ok src -> sources := src :: !sources
      | Error f -> parse_findings := f :: !parse_findings)
    files;
  (files, List.rev !sources, List.rev !parse_findings)

let run ?allowlist_file ?(clock = fun () -> 0.) ~root ~paths ~rules () =
  let files, sources, parse_findings = parse_tree ~root ~paths in
  let suppressions = collect_suppressions sources in
  let allow = load_allowlist allowlist_file in
  let findings = ref [] and suppressed = ref 0 and allowlisted = ref 0 in
  let report ?(severity = Error) ~rule ~file ~line ~col msg =
    if is_suppressed suppressions ~rule ~file ~line then incr suppressed
    else if is_allowlisted allow ~rule ~file ~line then incr allowlisted
    else findings := { rule; severity; file; line; col; msg } :: !findings
  in
  let ctx = { root; sources; files; report } in
  let rule_seconds =
    List.map
      (fun r ->
        let t0 = clock () in
        r.check ctx;
        (r.id, clock () -. t0))
      rules
  in
  {
    findings = List.sort compare_finding (parse_findings @ !findings);
    files_scanned = List.length files;
    suppressed = !suppressed;
    allowlisted = !allowlisted;
    rule_seconds;
  }

let ok r = r.findings = []

let severity_name = function Error -> "error" | Warning -> "warning"

let render_finding f =
  Printf.sprintf "%s:%d:%d: %s [%s] %s" f.file f.line f.col (severity_name f.severity) f.rule
    f.msg

let result_to_json ~rules r =
  let module J = Repro_obs.Json in
  J.Obj
    [
      ("tool", J.Str "cbl-lint");
      ("rules", J.List (List.map (fun rule -> J.Str rule.id) rules));
      ("files_scanned", J.Int r.files_scanned);
      ("suppressed", J.Int r.suppressed);
      ("allowlisted", J.Int r.allowlisted);
      ("ok", J.Bool (ok r));
      ( "rule_seconds",
        J.Obj (List.map (fun (id, s) -> (id, J.Float s)) r.rule_seconds) );
      ( "findings",
        J.List
          (List.map
             (fun f ->
               J.Obj
                 [
                   ("rule", J.Str f.rule);
                   ("severity", J.Str (severity_name f.severity));
                   ("file", J.Str f.file);
                   ("line", J.Int f.line);
                   ("col", J.Int f.col);
                   ("msg", J.Str f.msg);
                 ])
             r.findings) );
    ]
