(* Phase 2: propagate effect summaries to a fixpoint over the call
   graph.  Everything here is a monotone join over finite sets, so the
   fixpoint exists, is unique, and is independent of visit order (the
   qcheck property in test_lint.ml exercises exactly that by permuting
   [order]).

   Facts per node:
   - [may_cover.*]: a sweep / ELR-record / RNG-seed site is reachable
     from this node (itself included) — the absorbing side of each
     pairing rule.
   - [escaping]: retryable raise sites that can escape this node: its
     own unhandled raises plus callees' escaping raises not covered by
     this node's handler labels.
   - [uncovered.*]: force / early-release / RNG-draw sites with no
     absorber at or below this node, flowing caller-ward until some
     ancestor absorbs them; whatever is still uncovered at the graph
     roots is a violation. *)

type config = {
  force_impl : string list;  (** files that ARE the force layer: exempt sites *)
  elr_impl : string list;
  rng_impl : string list;
  raise_impl : string list;  (** the Block module itself *)
  checked : string -> bool;  (** which files' sites are police-able (lib/) *)
}

type raise_site = {
  r_label : Summary.exn_label;
  r_file : string;
  r_loc : Summary.loc;
  r_fn : string;  (** display name of the function that raises *)
}

type cov_site = {
  c_file : string;
  c_loc : Summary.loc;
  c_fn : string;
  c_what : string;  (** the force/draw/release identifier, for messages *)
}

module RS = Set.Make (struct
  type t = raise_site

  let compare = compare
end)

module CS = Set.Make (struct
  type t = cov_site

  let compare = compare
end)

type t = {
  graph : Callgraph.t;
  may_sweep : bool array;
  may_elr_record : bool array;
  may_seed : bool array;
  escaping : RS.t array;
  handled : (string * int * int * Summary.exn_label, unit) Hashtbl.t;
      (** raise-site keys some caller's handler covers *)
  raise_sites : raise_site list;  (** all police-able raise sites *)
  uncovered_force : CS.t array;
  uncovered_elr : CS.t array;
  uncovered_rng : CS.t array;
  roots : int list;  (** fn nodes with in-degree 0, plus cycle entries *)
  passes : int;  (** fixpoint sweeps until stable, for the bench/debug dump *)
}

let raise_key (r : raise_site) = (r.r_file, r.r_loc.Summary.line, r.r_loc.Summary.col, r.r_label)

(* Direct (non-propagated) facts of one node.  Wired sites still count
   as the defining function's own effects — conservative for coverage,
   and their raise copies additionally live on the field node. *)
let direct config (g : Callgraph.t) id =
  let n = g.Callgraph.nodes.(id) in
  match n.Callgraph.fn with
  | None ->
    (* synthetic field node: only the wired-in raises *)
    let raises =
      List.map
        (fun (label, loc, file) ->
          { r_label = label; r_file = file; r_loc = loc; r_fn = n.Callgraph.name })
        n.Callgraph.field_raises
    in
    (false, false, false, raises, [], [], [])
  | Some fn ->
    let file = Option.value ~default:"" n.Callgraph.file in
    let checked = config.checked file in
    let sweep = ref false and elr = ref false and seed = ref false in
    let raises = ref [] and forces = ref [] and releases = ref [] and draws = ref [] in
    List.iter
      (fun (s : Summary.site) ->
        let cov what =
          { c_file = file; c_loc = s.Summary.s_loc; c_fn = fn.Summary.fn_name; c_what = what }
        in
        match s.Summary.kind with
        | Summary.Sweep -> sweep := true
        | Summary.Elr_record -> elr := true
        | Summary.Rng_seed _ -> seed := true
        | Summary.Raise { label } ->
          if checked && not (List.mem file config.raise_impl) then
            raises :=
              { r_label = label; r_file = file; r_loc = s.Summary.s_loc; r_fn = fn.Summary.fn_name }
              :: !raises
        | Summary.Force { name } ->
          if checked && not (List.mem file config.force_impl) then forces := cov name :: !forces
        | Summary.Elr_release ->
          if checked && not (List.mem file config.elr_impl) then
            releases := cov "release_txn_early" :: !releases
        | Summary.Rng_draw { name } ->
          if checked && not (List.mem file config.rng_impl) then
            draws := cov ("Rng." ^ name) :: !draws
        | Summary.Call _ | Summary.Field_call _ | Summary.Crashpoint _ -> ())
      fn.Summary.sites;
    (!sweep, !elr, !seed, !raises, !forces, !releases, !draws)

let run ?order config (g : Callgraph.t) =
  let n = Array.length g.Callgraph.nodes in
  let order = match order with Some o -> o | None -> Array.init n (fun i -> i) in
  let dir = Array.init n (fun i -> direct config g i) in
  let handled_of i =
    match g.Callgraph.nodes.(i).Callgraph.fn with
    | Some fn -> fn.Summary.handled
    | None -> []
  in
  let may_sweep = Array.init n (fun i -> let s, _, _, _, _, _, _ = dir.(i) in s) in
  let may_elr_record = Array.init n (fun i -> let _, e, _, _, _, _, _ = dir.(i) in e) in
  let may_seed = Array.init n (fun i -> let _, _, s, _, _, _, _ = dir.(i) in s) in
  let escaping =
    Array.init n (fun i ->
        let _, _, _, raises, _, _, _ = dir.(i) in
        RS.of_list
          (List.filter
             (fun r -> not (Summary.covers ~handled:(handled_of i) r.r_label))
             raises))
  in
  (* Reachability bits and escaping sets to a joint fixpoint: all are
     monotone, so sweeping until nothing changes terminates and the
     result is order-independent. *)
  let passes = ref 0 in
  let changed = ref true in
  while !changed do
    incr passes;
    changed := false;
    Array.iter
      (fun i ->
        let handled = handled_of i in
        List.iter
          (fun s ->
            if may_sweep.(s) && not may_sweep.(i) then begin
              may_sweep.(i) <- true;
              changed := true
            end;
            if may_elr_record.(s) && not may_elr_record.(i) then begin
              may_elr_record.(i) <- true;
              changed := true
            end;
            if may_seed.(s) && not may_seed.(i) then begin
              may_seed.(i) <- true;
              changed := true
            end;
            let flow =
              RS.filter (fun r -> not (Summary.covers ~handled r.r_label)) escaping.(s)
            in
            if not (RS.subset flow escaping.(i)) then begin
              escaping.(i) <- RS.union flow escaping.(i);
              changed := true
            end)
          g.Callgraph.nodes.(i).Callgraph.succ)
      order
  done;
  (* A raise site is existentially handled if its own function's
     handlers cover it, or if it escapes to some caller whose handlers
     do.  Whatever no context ever covers is an exn-flow violation. *)
  let handled : (string * int * int * Summary.exn_label, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (_, _, _, raises, _, _, _) ->
      let h = handled_of i in
      List.iter
        (fun r -> if Summary.covers ~handled:h r.r_label then Hashtbl.replace handled (raise_key r) ())
        raises)
    dir;
  Array.iter
    (fun i ->
      let h = handled_of i in
      if h <> [] then
        List.iter
          (fun s ->
            RS.iter
              (fun r ->
                if Summary.covers ~handled:h r.r_label then Hashtbl.replace handled (raise_key r) ())
              escaping.(s))
          g.Callgraph.nodes.(i).Callgraph.succ)
      order;
  let raise_sites =
    Array.to_list dir |> List.concat_map (fun (_, _, _, raises, _, _, _) -> raises)
  in
  (* Uncovered pairing sites flow caller-ward, absorbed wherever the
     matching cover op is reachable. *)
  let cov_fix may direct_of =
    let unc =
      Array.init n (fun i -> if may.(i) then CS.empty else CS.of_list (direct_of i))
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun i ->
          if not may.(i) then
            List.iter
              (fun s ->
                if not (CS.subset unc.(s) unc.(i)) then begin
                  unc.(i) <- CS.union unc.(s) unc.(i);
                  changed := true
                end)
              g.Callgraph.nodes.(i).Callgraph.succ)
        order
    done;
    unc
  in
  let uncovered_force =
    cov_fix may_sweep (fun i -> let _, _, _, _, f, _, _ = dir.(i) in f)
  in
  let uncovered_elr =
    cov_fix may_elr_record (fun i -> let _, _, _, _, _, r, _ = dir.(i) in r)
  in
  let uncovered_rng = cov_fix may_seed (fun i -> let _, _, _, _, _, _, d = dir.(i) in d) in
  (* Report roots: real functions nobody calls.  Nodes unreachable from
     any root (cycles without an entry) become pseudo-roots so their
     uncovered sites still surface. *)
  let roots = ref [] in
  Array.iter
    (fun (node : Callgraph.node) ->
      if Callgraph.is_fn node && g.Callgraph.in_deg.(node.Callgraph.id) = 0 then
        roots := node.Callgraph.id :: !roots)
    g.Callgraph.nodes;
  let reached = Array.make n false in
  let rec mark i =
    if not reached.(i) then begin
      reached.(i) <- true;
      List.iter mark g.Callgraph.nodes.(i).Callgraph.succ
    end
  in
  List.iter mark !roots;
  Array.iter
    (fun (node : Callgraph.node) ->
      if Callgraph.is_fn node && not reached.(node.Callgraph.id) then begin
        roots := node.Callgraph.id :: !roots;
        mark node.Callgraph.id
      end)
    g.Callgraph.nodes;
  {
    graph = g;
    may_sweep;
    may_elr_record;
    may_seed;
    escaping;
    handled;
    raise_sites;
    uncovered_force;
    uncovered_elr;
    uncovered_rng;
    roots = List.sort compare !roots;
    passes = !passes;
  }

let is_handled t r = Hashtbl.mem t.handled (raise_key r)

(* The union of a per-node uncovered map over the report roots, deduped
   by site. *)
let at_roots t unc =
  List.fold_left (fun acc root -> CS.union acc unc.(root)) CS.empty t.roots |> CS.elements

let violations_force t = at_roots t t.uncovered_force
let violations_elr t = at_roots t t.uncovered_elr
let violations_rng t = at_roots t t.uncovered_rng

let unhandled_raises t = List.filter (fun r -> not (is_handled t r)) t.raise_sites

(* Dead-handler verdict: can anything the guarded body reaches feed the
   handler a matching exception?  Conservative on anything unresolved
   that could be repo code (locals, closures, repo modules without the
   binding, record fields) — only provably-unfeedable handlers with
   fully resolved bodies are flagged. *)
let handler_live t (files : Summary.file list) ~rel (h : Summary.handler) =
  let module_index, binding_exists = Callgraph.indexes files in
  let file = List.find_opt (fun f -> f.Summary.rel = rel) files in
  match file with
  | None -> true
  | Some f ->
    let covers_any labels = List.exists (fun l -> Summary.covers ~handled:h.Summary.h_labels l) labels in
    h.Summary.h_unknown
    || covers_any h.Summary.h_raises
    || List.exists
         (fun fname ->
           match Callgraph.find_field t.graph fname with
           | None -> true (* a field we never saw wired: unknown *)
           | Some id ->
             covers_any (List.map (fun r -> r.r_label) (RS.elements t.escaping.(id))))
         h.Summary.h_fields
    || List.exists
         (fun path ->
           match Callgraph.resolve ~module_index ~binding_exists f path with
           | Callgraph.Fn_key key -> (
             match Callgraph.node_id t.graph key with
             | None -> true
             | Some id ->
               covers_any (List.map (fun r -> r.r_label) (RS.elements t.escaping.(id))))
           | Callgraph.Unknown _ -> true
           | Callgraph.External -> false (* external code cannot raise Would_block *)
           | Callgraph.Local -> (
             (* unqualified and not a top-level binding: a local fn,
                parameter or closure we cannot see through — unless it
                is a bare lowercase value name, treat as unknown.  Being
                unable to distinguish, stay conservative. *)
             match path with
             | [ name ] when String.length name > 0 && name.[0] >= 'A' && name.[0] <= 'Z' ->
               false (* a module path alone (e.g. a functor arg): no call *)
             | _ -> true))
         h.Summary.h_calls

let to_json t =
  let module J = Repro_obs.Json in
  let n = Array.length t.graph.Callgraph.nodes in
  let bools name arr =
    ( name,
      J.List
        (List.filter_map
           (fun i -> if arr.(i) then Some (J.Int i) else None)
           (List.init n (fun i -> i))) )
  in
  J.Obj
    [
      ("passes", J.Int t.passes);
      ("roots", J.List (List.map (fun i -> J.Int i) t.roots));
      bools "may_sweep" t.may_sweep;
      bools "may_elr_record" t.may_elr_record;
      bools "may_seed" t.may_seed;
      ( "escaping",
        J.Obj
          (List.filter_map
             (fun i ->
               let s = t.escaping.(i) in
               if RS.is_empty s then None
               else
                 Some
                   ( t.graph.Callgraph.nodes.(i).Callgraph.name,
                     J.List
                       (List.map
                          (fun r ->
                            J.Str
                              (Printf.sprintf "%s@%s:%d" (Summary.label_name r.r_label)
                                 r.r_file r.r_loc.Summary.line))
                          (RS.elements s)) ))
             (List.init n (fun i -> i))) );
    ]
