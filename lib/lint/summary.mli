(** Per-function effect summaries — phase 1 of the whole-repo lint
    analysis.

    Each top-level binding of every parsed [.ml] becomes one {!fn}
    recording the protocol-relevant effects inside it: raises and
    handlers of the retryable control exceptions, log forces and
    group-commit sweeps, early lock releases and their recording, RNG
    seeding and draws, crash points, and the intra-repo calls that
    {!Callgraph} resolves into edges.  Summaries are plain serializable
    data so a digest-keyed cache can skip re-extraction of files whose
    text has not changed. *)

(** {1 Longident helpers (shared with the per-file rules)} *)

val components : Longident.t -> string list
val last_component : Longident.t -> string
val parent_module : Longident.t -> string option
val is_force_ident : Longident.t -> bool

(** {1 The summary lattice} *)

(** [Would_block] is the generic retryable label (an unrefined or
    variable reason); the others refine it. *)
type exn_label = Would_block | Node_down | Page_unavailable | Net_unreachable

val all_labels : exn_label list
val label_name : exn_label -> string

val covers : handled:exn_label list -> exn_label -> bool
(** Does a handler context with [handled] labels cover a raise of
    [label]?  Generic raises are covered by any non-empty context;
    refined raises need their own label present. *)

type loc = { line : int; col : int }

type site_kind =
  | Call of { path : string list; applied : bool }
  | Field_call of { field : string }
  | Raise of { label : exn_label }
  | Force of { name : string }
  | Sweep  (** a [Group_commit.on_force] mention *)
  | Elr_release
  | Elr_record
  | Rng_draw of { name : string }
  | Rng_seed of { name : string }
  | Crashpoint of { name : string }

type site = {
  kind : site_kind;
  s_loc : loc;
  wired : string option;
      (** the record field / labeled hook the enclosing closure is
          stored under, if any — such sites also live on the synthetic
          [field:NAME] call-graph node *)
}

type handler = {
  h_labels : exn_label list;
  h_loc : loc;
  h_calls : string list list;
  h_fields : string list;
  h_unknown : bool;
  h_raises : exn_label list;
}
(** An explicit [Would_block] handler and what its guarded body can
    feed it with — the input of the dead-handler rule. *)

type fn = {
  fn_name : string;
  fn_loc : loc;
  handled : exn_label list;
      (** union over every unguarded exception handler in the body:
          function-granularity handler contexts *)
  sites : site list;
  handlers : handler list;
}

type file = {
  rel : string;
  module_name : string;  (** capitalized basename, the resolution key *)
  digest : string;
  aliases : (string * string) list;  (** [module X = A.B] → [(X, B)] *)
  opens : string list;  (** opened modules: unqualified-resolution fallback *)
  fns : fn list;
}

(** {1 Extraction} *)

val of_structure : rel:string -> digest:string -> Parsetree.structure -> file

val of_sources : ?cache_file:string -> Lint.source list -> file list
(** Summaries for every implementation source, reusing [cache_file]
    entries whose digest still matches and rewriting the cache on any
    miss.  Cache I/O is best-effort: a missing or corrupt cache only
    costs re-extraction. *)

val default_cache_file : root:string -> string option
(** [_build/cbl_lint_summaries.json] under [root], when [_build]
    exists (it does not in test fixture trees). *)

(** {1 JSON (cache format and [--dump-summaries])} *)

val to_json : file list -> Repro_obs.Json.t
val file_of_json : Repro_obs.Json.t -> file option
