(** Critical-path commit-latency attribution.

    Folds a recorded event stream into one timeline per committed
    transaction and decomposes end-to-end latency (txn.begin →
    txn.commit) into protocol phases: lock wait, group-commit batch
    wait, log forces, network, owner service, and an explicit
    un-attributed remainder.  Components sum to the measured total by
    construction — nothing double-counted, nothing dropped.

    Offline: consumes an {!Event.t} list (from a live {!Recorder} or a
    parsed JSONL trace) and touches nothing in the simulator. *)

type component = Lock_wait | Batch_wait | Log_force_time | Network | Owner_service

type marker =
  | M_begin
  | M_lock_request
  | M_lock_acquired
  | M_submit
  | M_commit
  | M_dep_wait
  | M_dropped

type event_class =
  | Charge of component  (** the event's [dur] attr feeds this component *)
  | Marker of marker  (** structural: drives the fold's state machine *)
  | Unattributed  (** contributes to [other] implicitly *)

val classify_kind : Event.kind -> event_class
(** Total over {!Event.kind} with no wildcard, so adding an event kind
    forces a conscious attribution decision (enforced by cbl-lint). *)

type components = {
  mutable lock_wait : float;  (** lock acquisition net of attributed work done while waiting *)
  mutable batch_wait : float;  (** group commit: submit → start of the covering force *)
  mutable log_force : float;  (** log-device forces, incl. the shared batch force *)
  mutable network : float;  (** message transmission *)
  mutable owner_service : float;  (** page-device reads/writes on the txn's behalf *)
  mutable dep_wait : float;
      (** early lock release: verdict withheld after txn.commit until a
          commit dependency's antecedent settled *)
  mutable other : float;  (** remainder (CPU, lock ops); never negative *)
}

type timeline = {
  txn : int;
  node : int;
  began : float;
  committed : float;
  mutable total : float;
      (** [committed -. began] plus any post-commit dep_wait; equals the
          component sum *)
  parts : components;
}

type t = { txns : timeline list; truncated : bool }
(** [truncated]: the stream carried a [trace.dropped] summary — some
    transactions may be missing their prefix and were skipped. *)

val analyze : Event.t list -> t
(** Events must be in emission (time) order, as [Recorder.events] and
    JSONL traces are.  Transactions without both a [txn.begin] and a
    [txn.commit] in the stream are omitted. *)

val component_names : string list
(** ["lock_wait"; "batch_wait"; "log_force"; "network"; "owner_service";
    ["dep_wait"; "other"]] — stable reporting order. *)

val component_value : components -> string -> float
(** Lookup by name from {!component_names}; raises [Invalid_argument]
    on an unknown name. *)

val component_hists : t -> (string * Log_hist.t) list
(** One histogram per component across all timelines, plus a ["total"]
    histogram of end-to-end latencies. *)

val to_json : t -> Json.t
val folded_stacks : t -> string list
(** Flamegraph folded-stack lines ([node;txn;component weight]),
    weights in integer microseconds of simulated time. *)
