type value = Int of int | Float of float | Str of string | Bool of bool

type kind =
  | Msg_send
  | Msg_recv
  | Log_append
  | Log_force
  | Page_read
  | Page_write
  | Page_ship
  | Cache_install
  | Cache_evict
  | Lock_request
  | Lock_grant
  | Lock_callback
  | Lock_demote
  | Lock_release
  | Lock_acquired
  | Ckpt_begin
  | Ckpt_end
  | Txn_begin
  | Txn_commit
  | Txn_abort
  | Commit_submit
  | Commit_batch
  | Commit_dep
  | Commit_dep_wait
  | Lock_early_release
  | Crash
  | Recovery_begin
  | Recovery_end
  | Recovery_phase
  | Recovery_restart
  | Recovery_deferred
  | Recovery_retry
  | Span_begin
  | Span_end
  | Fault_drop
  | Fault_dup
  | Fault_delay
  | Fault_partition
  | Fault_torn
  | Fault_crash
  | Trace_dropped
  | Note

type t = {
  time : float;  (** simulated seconds *)
  node : int;  (** -1 = cluster-wide / coordinator *)
  span : int;  (** enclosing span id, -1 if none *)
  txn : int;  (** causing transaction (trace context), -1 if none *)
  kind : kind;
  attrs : (string * value) list;
}

let kind_name = function
  | Msg_send -> "msg.send"
  | Msg_recv -> "msg.recv"
  | Log_append -> "log.append"
  | Log_force -> "log.force"
  | Page_read -> "page.read"
  | Page_write -> "page.write"
  | Page_ship -> "page.ship"
  | Cache_install -> "cache.install"
  | Cache_evict -> "cache.evict"
  | Lock_request -> "lock.request"
  | Lock_grant -> "lock.grant"
  | Lock_callback -> "lock.callback"
  | Lock_demote -> "lock.demote"
  | Lock_release -> "lock.release"
  | Lock_acquired -> "lock.acquired"
  | Ckpt_begin -> "ckpt.begin"
  | Ckpt_end -> "ckpt.end"
  | Txn_begin -> "txn.begin"
  | Txn_commit -> "txn.commit"
  | Txn_abort -> "txn.abort"
  | Commit_submit -> "commit.submit"
  | Commit_batch -> "commit.batch"
  | Commit_dep -> "commit.dep"
  | Commit_dep_wait -> "commit.dep_wait"
  | Lock_early_release -> "lock.early_release"
  | Crash -> "crash"
  | Recovery_begin -> "recovery.begin"
  | Recovery_end -> "recovery.end"
  | Recovery_phase -> "recovery.phase"
  | Recovery_restart -> "recovery.restart"
  | Recovery_deferred -> "recovery.deferred"
  | Recovery_retry -> "recovery.retry"
  | Span_begin -> "span.begin"
  | Span_end -> "span.end"
  | Fault_drop -> "fault.drop"
  | Fault_dup -> "fault.dup"
  | Fault_delay -> "fault.delay"
  | Fault_partition -> "fault.partition"
  | Fault_torn -> "fault.torn"
  | Fault_crash -> "fault.crash"
  | Trace_dropped -> "trace.dropped"
  | Note -> "note"

let all_kinds =
  [
    Msg_send; Msg_recv; Log_append; Log_force; Page_read; Page_write; Page_ship;
    Cache_install; Cache_evict; Lock_request; Lock_grant; Lock_callback; Lock_demote;
    Lock_release; Lock_acquired; Ckpt_begin; Ckpt_end; Txn_begin; Txn_commit; Txn_abort;
    Commit_submit; Commit_batch; Commit_dep; Commit_dep_wait; Lock_early_release; Crash;
    Recovery_begin; Recovery_end; Recovery_phase; Recovery_restart; Recovery_deferred;
    Recovery_retry; Span_begin; Span_end; Fault_drop;
    Fault_dup; Fault_delay; Fault_partition; Fault_torn; Fault_crash; Trace_dropped; Note;
  ]

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds

let make ~time ~node ?(span = -1) ?(txn = -1) kind attrs = { time; node; span; txn; kind; attrs }

let pp_value ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.pp_print_string ppf s
  | Bool b -> Format.pp_print_bool ppf b

let render e =
  match (e.kind, e.attrs) with
  | Note, [ ("msg", Str m) ] -> m
  | _ ->
    Format.asprintf "t=%.6f n=%d%s %s%a" e.time e.node
      (if e.txn >= 0 then Printf.sprintf " T%d" e.txn else "")
      (kind_name e.kind)
      (fun ppf attrs ->
        List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_value v) attrs)
      e.attrs

let json_value = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let to_json e =
  let base =
    [ ("t", Json.Float e.time); ("node", Json.Int e.node); ("kind", Json.Str (kind_name e.kind)) ]
  in
  let span = if e.span >= 0 then [ ("span", Json.Int e.span) ] else [] in
  (* the trace context is exported as "ctx", never "txn": several kinds
     already carry a domain attr named "txn" and JSON keys must not
     collide *)
  let ctx = if e.txn >= 0 then [ ("ctx", Json.Int e.txn) ] else [] in
  let attrs = List.map (fun (k, v) -> (k, json_value v)) e.attrs in
  Json.Obj (base @ span @ ctx @ attrs)

let value_of_json = function
  | Json.Int i -> Some (Int i)
  | Json.Float f -> Some (Float f)
  | Json.Str s -> Some (Str s)
  | Json.Bool b -> Some (Bool b)
  | Json.Null | Json.List _ | Json.Obj _ -> None

let header_keys = [ "t"; "node"; "kind"; "span"; "ctx" ]

let of_json j =
  match j with
  | Json.Obj fields ->
    let time = Option.bind (List.assoc_opt "t" fields) Json.to_float_opt in
    let node = Option.bind (List.assoc_opt "node" fields) Json.to_int_opt in
    let kind =
      Option.bind (Option.bind (List.assoc_opt "kind" fields) Json.to_string_opt) kind_of_name
    in
    let span =
      Option.value ~default:(-1) (Option.bind (List.assoc_opt "span" fields) Json.to_int_opt)
    in
    let txn =
      Option.value ~default:(-1) (Option.bind (List.assoc_opt "ctx" fields) Json.to_int_opt)
    in
    (match (time, node, kind) with
    | Some time, Some node, Some kind ->
      let attrs =
        List.filter_map
          (fun (k, v) ->
            if List.mem k header_keys then None
            else Option.map (fun v -> (k, v)) (value_of_json v))
          fields
      in
      Some (make ~time ~node ~span ~txn kind attrs)
    | (None, _, _) | (_, None, _) | (_, _, None) -> None)
  | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _ | Json.List _ -> None

(* ---- attr accessors (used by the trace analyses) ---- *)

let attr e key = List.assoc_opt key e.attrs
let attr_int e key = match attr e key with Some (Int i) -> Some i | _ -> None

let attr_float e key =
  match attr e key with Some (Float f) -> Some f | Some (Int i) -> Some (float_of_int i) | _ -> None

let attr_str e key = match attr e key with Some (Str s) -> Some s | _ -> None
let attr_bool e key = match attr e key with Some (Bool b) -> Some b | _ -> None

(* Allocation-free substring scan (replaces the String.sub-per-position
   search that Trace.contains used to do). *)
let substring ~needle hay =
  let n = String.length needle and h = String.length hay in
  if n = 0 then true
  else if n > h then false
  else begin
    let found = ref false in
    let i = ref 0 in
    let limit = h - n in
    while (not !found) && !i <= limit do
      if String.unsafe_get hay !i = String.unsafe_get needle 0 then begin
        let j = ref 1 in
        while !j < n && String.unsafe_get hay (!i + !j) = String.unsafe_get needle !j do
          incr j
        done;
        if !j = n then found := true
      end;
      incr i
    done;
    !found
  end
