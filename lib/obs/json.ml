type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" v in
    let short = Printf.sprintf "%.12g" v in
    if float_of_string short = v then short else s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_repr v)
  | Str s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* Pretty printing with two-space indentation, for human-facing dumps. *)
let rec write_pretty buf indent = function
  | List (_ :: _ as items) ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        write_pretty buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj (_ :: _ as fields) ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        escape buf k;
        Buffer.add_string buf ": ";
        write_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'
  | other -> write buf other

let to_string_pretty t =
  let buf = Buffer.create 256 in
  write_pretty buf 0 t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string_pretty t)

(* ---- parsing ---- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> c.pos <- c.pos + 1
  | Some got -> error c (Printf.sprintf "expected %c, found %c" ch got)
  | None -> error c (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.src then error c "truncated \\u escape";
        let hex = String.sub c.src (c.pos + 1) 4 in
        let code = int_of_string ("0x" ^ hex) in
        (* control characters only; we never emit non-ASCII escapes *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else error c "unsupported \\u escape";
        c.pos <- c.pos + 4
      | Some ch -> error c (Printf.sprintf "bad escape \\%c" ch)
      | None -> error c "unterminated escape");
      c.pos <- c.pos + 1;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  if s = "" then error c "expected number";
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with Some f -> Float f | None -> error c "malformed number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> error c "expected , or ] in array"
      in
      List (items [])
    end
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> error c "expected , or } in object"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

(* ---- accessors ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int_opt = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None

let to_float_opt = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
