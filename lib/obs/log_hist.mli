(** Log-bucketed latency histogram.

    Each power-of-two octave is split into 16 linear sub-buckets, so
    quantiles carry at most ~6% relative error at any magnitude —
    the HDR-histogram trick, implemented on [Float.frexp] so recording
    is a couple of integer ops and never allocates.  Zero and negative
    samples land in a dedicated underflow bucket. *)

type t

val create : unit -> t
val clear : t -> unit
val record : t -> float -> unit

val count : t -> int
val total : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]; bucket-midpoint estimate clamped
    to the observed [min,max] range.  0 when empty. *)

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float

val merge_into : into:t -> t -> unit
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
