(* Critical-path commit-latency attribution.

   Folds a recorded event stream into one timeline per committed
   transaction and decomposes its end-to-end latency (txn.begin →
   txn.commit) into the protocol phases the paper argues about:

     lock_wait      waiting for locks net of the work done while
                    waiting (messages, callbacks, page transfers are
                    attributed to their own components);
     batch_wait     group commit: submit → start of the covering force;
     log_force      synchronous log-device forces, including the shared
                    batch force that made the commit durable;
     network        message transmission charged to this transaction;
     owner_service  page-device reads/writes performed on its behalf
                    (cache-miss reads, owner-side installs and flushes);
     dep_wait       early lock release: the commit record was durable
                    but the verdict was withheld until a commit
                    dependency's antecedent settled (extends the
                    timeline past txn.commit — see the M_dep_wait
                    marker);
     other          the un-attributed remainder (CPU charges, lock-op
                    costs) — never negative.

   Components sum to the measured end-to-end latency by construction,
   which is exactly what makes the decomposition trustworthy: nothing
   is double-counted and nothing is dropped.

   Causality comes from the [txn] context stamped on every event by
   [Env.with_txn] — including events another node emits while serving
   this transaction.  The module is deliberately offline: it consumes
   an [Event.t list] and touches nothing in the simulator. *)

type component = Lock_wait | Batch_wait | Log_force_time | Network | Owner_service

type marker =
  | M_begin
  | M_lock_request
  | M_lock_acquired
  | M_submit
  | M_commit
  | M_dep_wait
  | M_dropped

type event_class =
  | Charge of component  (** the event's [dur] attr feeds this component *)
  | Marker of marker  (** structural: drives the fold's state machine *)
  | Unattributed  (** contributes to [other] implicitly *)

(* One case per Event.kind, no wildcard: adding an event kind must not
   silently fall through attribution (cbl-lint enforces this). *)
let classify_kind : Event.kind -> event_class = function
  | Event.Msg_send -> Charge Network
  | Event.Msg_recv -> Unattributed (* the send already carries the charge *)
  | Event.Log_append -> Unattributed (* CPU cost; lands in [other] *)
  | Event.Log_force -> Charge Log_force_time
  | Event.Page_read -> Charge Owner_service
  | Event.Page_write -> Charge Owner_service
  | Event.Page_ship -> Unattributed (* its message is a separate Msg_send *)
  | Event.Cache_install -> Unattributed
  | Event.Cache_evict -> Unattributed
  | Event.Lock_request -> Marker M_lock_request
  | Event.Lock_grant -> Unattributed
  | Event.Lock_callback -> Unattributed
  | Event.Lock_demote -> Unattributed
  | Event.Lock_release -> Unattributed
  | Event.Lock_acquired -> Marker M_lock_acquired
  | Event.Ckpt_begin -> Unattributed
  | Event.Ckpt_end -> Unattributed
  | Event.Txn_begin -> Marker M_begin
  | Event.Txn_commit -> Marker M_commit
  | Event.Txn_abort -> Unattributed
  | Event.Commit_submit -> Marker M_submit
  | Event.Commit_batch -> Unattributed
  | Event.Commit_dep -> Unattributed (* edge registration costs nothing *)
  | Event.Commit_dep_wait -> Marker M_dep_wait
  | Event.Lock_early_release -> Unattributed
  | Event.Crash -> Unattributed
  | Event.Recovery_begin -> Unattributed
  | Event.Recovery_end -> Unattributed
  | Event.Recovery_phase -> Unattributed
  | Event.Recovery_restart -> Unattributed
  | Event.Recovery_deferred -> Unattributed
  | Event.Recovery_retry -> Unattributed
  | Event.Span_begin -> Unattributed
  | Event.Span_end -> Unattributed
  | Event.Fault_drop -> Unattributed
  | Event.Fault_dup -> Unattributed
  | Event.Fault_delay -> Unattributed
  | Event.Fault_partition -> Unattributed
  | Event.Fault_torn -> Unattributed
  | Event.Fault_crash -> Unattributed
  | Event.Trace_dropped -> Marker M_dropped
  | Event.Note -> Unattributed

type components = {
  mutable lock_wait : float;
  mutable batch_wait : float;
  mutable log_force : float;
  mutable network : float;
  mutable owner_service : float;
  mutable dep_wait : float;
  mutable other : float;
}

type timeline = {
  txn : int;
  node : int;
  began : float;
  committed : float;
  mutable total : float;
  parts : components;
}

type t = { txns : timeline list; truncated : bool }

let component_names =
  [ "lock_wait"; "batch_wait"; "log_force"; "network"; "owner_service"; "dep_wait"; "other" ]

let component_value parts = function
  | "lock_wait" -> parts.lock_wait
  | "batch_wait" -> parts.batch_wait
  | "log_force" -> parts.log_force
  | "network" -> parts.network
  | "owner_service" -> parts.owner_service
  | "dep_wait" -> parts.dep_wait
  | "other" -> parts.other
  | name -> invalid_arg ("Critical_path.component_value: unknown component " ^ name)

let new_components () =
  {
    lock_wait = 0.;
    batch_wait = 0.;
    log_force = 0.;
    network = 0.;
    owner_service = 0.;
    dep_wait = 0.;
    other = 0.;
  }

(* The transaction an event belongs to: the marker's own [txn] attr
   when present (txn.begin is emitted before the context opens), else
   the stamped causal context. *)
let event_txn (e : Event.t) =
  match Event.attr_int e "txn" with Some id -> id | None -> e.Event.txn

let analyze events =
  let began : (int, float * int) Hashtbl.t = Hashtbl.create 64 in
  let parts : (int, components) Hashtbl.t = Hashtbl.create 64 in
  let window : (int, float ref) Hashtbl.t = Hashtbl.create 16 in
  let submit : (int, float) Hashtbl.t = Hashtbl.create 64 in
  (* last log.force per node: (end time, duration, causing txn) *)
  let last_force : (int, float * float * int) Hashtbl.t = Hashtbl.create 8 in
  (* finalized timelines by txn: a commit.dep_wait event arrives AFTER
     the txn.commit that closed the timeline (the verdict was withheld
     until the antecedent settled), so the timeline is re-opened to
     absorb it *)
  let finalized : (int, timeline) Hashtbl.t = Hashtbl.create 64 in
  let truncated = ref false in
  let timelines = ref [] in
  let parts_of txn =
    match Hashtbl.find_opt parts txn with
    | Some p -> p
    | None ->
      let p = new_components () in
      Hashtbl.replace parts txn p;
      p
  in
  let add_charge txn comp dur =
    let p = parts_of txn in
    (match comp with
    | Lock_wait -> p.lock_wait <- p.lock_wait +. dur
    | Batch_wait -> p.batch_wait <- p.batch_wait +. dur
    | Log_force_time -> p.log_force <- p.log_force +. dur
    | Network -> p.network <- p.network +. dur
    | Owner_service -> p.owner_service <- p.owner_service +. dur);
    (* Work done while waiting for a lock is already attributed above;
       remember it so the wait component only gets the remainder. *)
    match Hashtbl.find_opt window txn with
    | Some acc -> acc := !acc +. dur
    | None -> ()
  in
  List.iter
    (fun (e : Event.t) ->
      let dur = Option.value (Event.attr_float e "dur") ~default:0. in
      (match classify_kind e.Event.kind with
      | Charge comp -> if e.Event.txn >= 0 then add_charge e.Event.txn comp dur
      | Marker m -> (
        let txn = event_txn e in
        match m with
        | M_dropped -> truncated := true
        | M_begin -> if txn >= 0 then Hashtbl.replace began txn (e.Event.time, e.Event.node)
        | M_lock_request ->
          if txn >= 0 && not (Hashtbl.mem window txn) then Hashtbl.replace window txn (ref 0.)
        | M_lock_acquired ->
          if txn >= 0 then begin
            let covered =
              match Hashtbl.find_opt window txn with Some acc -> !acc | None -> 0.
            in
            Hashtbl.remove window txn;
            let wait = Option.value (Event.attr_float e "wait") ~default:0. in
            let p = parts_of txn in
            p.lock_wait <- p.lock_wait +. Float.max 0. (wait -. covered)
          end
        | M_submit ->
          (* latest submit wins: a Would_block retry re-submits legally *)
          if txn >= 0 then Hashtbl.replace submit txn e.Event.time
        | M_dep_wait -> (
          (* Early lock release withheld this commit's verdict past its
             txn.commit: extend the finalized timeline so the wait is a
             visible component and components still sum to total. *)
          match Hashtbl.find_opt finalized txn with
          | Some tl ->
            tl.parts.dep_wait <- tl.parts.dep_wait +. dur;
            tl.total <- tl.total +. dur
          | None -> ())
        | M_commit ->
          if txn >= 0 then begin
            (match Hashtbl.find_opt began txn with
            | None -> () (* txn.begin lost to ring overflow: not attributable *)
            | Some (t0, node) ->
              let p = parts_of txn in
              (* The covering force: the last log.force on this node
                 before the commit completed.  A batched commit waited
                 from submit until that force started, and — when the
                 force ran under another transaction's context — its
                 duration is this commit's force time too. *)
              (match Hashtbl.find_opt last_force node with
              | Some (f_end, f_dur, f_txn) ->
                let f_start = f_end -. f_dur in
                (match Hashtbl.find_opt submit txn with
                | Some t_submit -> p.batch_wait <- Float.max 0. (f_start -. t_submit)
                | None -> ());
                if f_txn <> txn then p.log_force <- p.log_force +. f_dur
              | None -> ());
              let total = e.Event.time -. t0 in
              let attributed =
                p.lock_wait +. p.batch_wait +. p.log_force +. p.network +. p.owner_service
                +. p.dep_wait
              in
              p.other <- Float.max 0. (total -. attributed);
              let tl = { txn; node; began = t0; committed = e.Event.time; total; parts = p } in
              Hashtbl.replace finalized txn tl;
              timelines := tl :: !timelines);
            Hashtbl.remove began txn;
            Hashtbl.remove parts txn;
            Hashtbl.remove submit txn
          end)
      | Unattributed -> ());
      (* Covering-force bookkeeping is independent of attribution: the
         force that makes a batch durable usually runs under some OTHER
         transaction's context (or none, on a timer flush). *)
      match e.Event.kind with
      | Event.Log_force -> Hashtbl.replace last_force e.Event.node (e.Event.time, dur, e.Event.txn)
      | Event.Msg_send | Event.Msg_recv | Event.Log_append | Event.Page_read | Event.Page_write
      | Event.Page_ship | Event.Cache_install | Event.Cache_evict | Event.Lock_request
      | Event.Lock_grant | Event.Lock_callback | Event.Lock_demote | Event.Lock_release
      | Event.Lock_acquired | Event.Ckpt_begin | Event.Ckpt_end | Event.Txn_begin
      | Event.Txn_commit | Event.Txn_abort | Event.Commit_submit | Event.Commit_batch
      | Event.Commit_dep | Event.Commit_dep_wait | Event.Lock_early_release
      | Event.Crash | Event.Recovery_begin | Event.Recovery_end | Event.Recovery_phase
      | Event.Recovery_restart | Event.Recovery_deferred | Event.Recovery_retry
      | Event.Span_begin | Event.Span_end | Event.Fault_drop | Event.Fault_dup
      | Event.Fault_delay | Event.Fault_partition | Event.Fault_torn | Event.Fault_crash
      | Event.Trace_dropped | Event.Note -> ())
    events;
  { txns = List.rev !timelines; truncated = !truncated }

let component_hists t =
  let hists = List.map (fun name -> (name, Log_hist.create ())) component_names in
  let total = Log_hist.create () in
  List.iter
    (fun tl ->
      Log_hist.record total tl.total;
      List.iter (fun (name, h) -> Log_hist.record h (component_value tl.parts name)) hists)
    t.txns;
  hists @ [ ("total", total) ]

let components_json parts =
  Json.Obj (List.map (fun name -> (name, Json.Float (component_value parts name))) component_names)

let to_json t =
  Json.Obj
    [
      ("truncated", Json.Bool t.truncated);
      ( "components",
        Json.Obj (List.map (fun (name, h) -> (name, Log_hist.to_json h)) (component_hists t)) );
      ( "txns",
        Json.List
          (List.map
             (fun tl ->
               Json.Obj
                 [
                   ("txn", Json.Int tl.txn);
                   ("node", Json.Int tl.node);
                   ("began", Json.Float tl.began);
                   ("committed", Json.Float tl.committed);
                   ("total", Json.Float tl.total);
                   ("parts", components_json tl.parts);
                 ])
             t.txns) );
    ]

(* Folded-stack output (one line per sample, semicolon-separated frames,
   integer weight) — the input format of every flamegraph renderer.
   Weights are microseconds of simulated time. *)
let folded_stacks t =
  List.concat_map
    (fun tl ->
      List.filter_map
        (fun name ->
          let v = component_value tl.parts name in
          let usec = int_of_float ((v *. 1e6) +. 0.5) in
          if usec > 0 then Some (Printf.sprintf "node%d;txn.%d;%s %d" tl.node tl.txn name usec)
          else None)
        component_names)
    t.txns
