(** Event recorder: a bounded ring of typed events, simulated-clock
    spans, and per-(metric, node) latency histograms.

    Event emission and spans are gated on [enabled] and cost one branch
    when off — callers must still avoid formatting attrs eagerly on hot
    paths (build the attr list inside an [if Recorder.enabled] guard).
    Histograms are {e always} recorded: they read nothing from and
    write nothing to the simulation, so traced and untraced runs
    produce identical metrics — which the test suite asserts. *)

type span = {
  id : int;
  name : string;
  node : int;
  parent : int;
  start : float;
  mutable stop : float;  (** nan until [span_end] *)
}

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [capacity] (default 65536) bounds the event ring; older events are
    overwritten and counted in [dropped]. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val label : t -> string
val set_label : t -> string -> unit
(** Free-form run label (e.g. the logging scheme) carried into exports. *)

val emit : t -> time:float -> node:int -> Event.kind -> (string * Event.value) list -> unit
(** No-op when disabled.  The event is stamped with the causal context
    (txn and span) when one is set; otherwise it inherits the innermost
    open span and no transaction. *)

(** {2 Causal context}

    A (txn, span) pair dynamically scoped around every operation a
    transaction performs, stamped onto each emitted event.  Callers
    save [context], [set_context], run, and restore the saved pair —
    never [clear_context] blindly — so nested attribution (one
    transaction's completion running inside another's batch flush)
    stays exact. *)

val context : t -> int * int
(** Current (txn, span); [(-1, -1)] when unset. *)

val set_context : t -> txn:int -> span:int -> unit
val clear_context : t -> unit

val note : ?time:float -> ?node:int -> t -> string -> unit
(** Legacy free-text event ([Trace.event] compatibility). *)

val events : t -> Event.t list
(** Oldest first.  At most [capacity] events; see [dropped]. *)

val drain : t -> Event.t list
(** [events], plus a synthetic [Trace_dropped] summary event appended
    when the ring overflowed — consumers can tell a suffix from a whole
    run. *)

val dropped : t -> int
val clear : t -> unit
(** Drops events and spans.  Histograms survive; see
    [clear_histograms]. *)

(** {2 Spans} *)

val span_begin : t -> time:float -> node:int -> ?parent:int -> string -> int
(** Opens a span and returns its id ([-1] when disabled — safe to pass
    straight to [span_end]).  [parent] defaults to the innermost open
    span. *)

val span_end : t -> time:float -> int -> unit
val spans : t -> span list
(** In [span_begin] order. *)

val span_duration : span -> float option
val current_span : t -> int

(** {2 Histograms} *)

val observe : t -> name:string -> node:int -> float -> unit
(** Records [v] seconds into the [(name, node)] histogram and, when
    [node >= 0], also into the cluster-wide [(name, -1)] aggregate.
    Always on, independent of [enabled]. *)

val hist : t -> name:string -> node:int -> Log_hist.t
(** Find-or-create. *)

val find_hist : t -> name:string -> node:int -> Log_hist.t option

val histograms : t -> (string * int * Log_hist.t) list
(** Sorted by name then node; node [-1] is the cluster aggregate. *)

val clear_histograms : t -> unit

(** {2 Export} *)

val to_jsonl : t -> string
(** One JSON object per line, oldest event first ([drain]: a
    [trace.dropped] summary line is appended when the ring
    overflowed). *)

val histograms_json : t -> Json.t
(** [{ "<name>": { "cluster": {...}, "node0": {...}, ... }, ... }] with
    count/mean/min/max/p50/p95/p99 per histogram. *)
