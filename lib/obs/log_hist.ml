(* HDR-style histogram: each power-of-two octave is split into SUB
   linear sub-buckets, giving a worst-case relative quantile error of
   1/SUB regardless of magnitude.  Built on frexp so there is no
   float->log call on the record path. *)

let sub = 16
let e_min = -40 (* 2^-40 s ≈ 1 ps: below any simulated latency *)
let e_max = 24 (* 2^24 s ≈ 194 days: above any simulated duration *)
let octaves = e_max - e_min + 1
let buckets = (octaves * sub) + 2 (* + underflow (0/negative) + overflow *)

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let create () = { counts = Array.make buckets 0; n = 0; sum = 0.; min = infinity; max = neg_infinity }

let clear t =
  Array.fill t.counts 0 buckets 0;
  t.n <- 0;
  t.sum <- 0.;
  t.min <- infinity;
  t.max <- neg_infinity

let index_of v =
  if not (v > 0.) then 0 (* zero, negatives, NaN: underflow bucket *)
  else begin
    let m, e = Float.frexp v in
    if e < e_min then 0
    else if e > e_max then buckets - 1
    else begin
      (* m in [0.5, 1): map to sub-bucket 0..sub-1 *)
      let s = int_of_float ((m -. 0.5) *. 2. *. float_of_int sub) in
      let s = if s >= sub then sub - 1 else s in
      1 + ((e - e_min) * sub) + s
    end
  end

(* Representative value for a bucket: the midpoint of its range. *)
let value_of_index i =
  if i = 0 then 0.
  else if i = buckets - 1 then Float.ldexp 1. e_max
  else begin
    let i = i - 1 in
    let e = (i / sub) + e_min in
    let s = i mod sub in
    let mid = 0.5 +. ((float_of_int s +. 0.5) /. (2. *. float_of_int sub)) in
    Float.ldexp mid e
  end

let record t v =
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.n
let total t = t.sum
let min_value t = if t.n = 0 then 0. else t.min
let max_value t = if t.n = 0 then 0. else t.max
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let quantile t q =
  if t.n = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (Float.round (q *. float_of_int (t.n - 1))) in
    let rec walk i seen =
      if i >= buckets then t.max
      else begin
        let seen = seen + t.counts.(i) in
        if seen > rank then
          (* clamp the bucket midpoint into the observed range *)
          Float.max t.min (Float.min t.max (value_of_index i))
        else walk (i + 1) seen
      end
    in
    walk 0 0
  end

let p50 t = quantile t 0.5
let p95 t = quantile t 0.95
let p99 t = quantile t 0.99

let merge_into ~into t =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.n <- into.n + t.n;
  into.sum <- into.sum +. t.sum;
  if t.min < into.min then into.min <- t.min;
  if t.max > into.max then into.max <- t.max

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("mean", Json.Float (mean t));
      ("min", Json.Float (min_value t));
      ("max", Json.Float (max_value t));
      ("p50", Json.Float (p50 t));
      ("p95", Json.Float (p95 t));
      ("p99", Json.Float (p99 t));
    ]

let pp ppf t =
  if t.n = 0 then Format.pp_print_string ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.3gs p50=%.3gs p95=%.3gs p99=%.3gs max=%.3gs" t.n (mean t)
      (p50 t) (p95 t) (p99 t) (max_value t)
