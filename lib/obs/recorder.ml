type span = {
  id : int;
  name : string;
  node : int;
  parent : int;  (** -1 = root *)
  start : float;
  mutable stop : float;  (** nan until ended *)
}

type t = {
  mutable enabled : bool;
  mutable label : string;
  capacity : int;
  ring : Event.t option array;
  mutable head : int;  (** next write slot *)
  mutable stored : int;  (** events currently in the ring *)
  mutable dropped : int;  (** overwritten by ring wrap-around *)
  mutable next_span : int;
  mutable spans_rev : span list;
  mutable open_spans : span list;  (** innermost first; per-recorder stack *)
  mutable ctx_txn : int;  (** causal context: acting transaction, -1 = none *)
  mutable ctx_span : int;  (** causal context: that transaction's span *)
  hists : (string * int, Log_hist.t) Hashtbl.t;
}

let default_capacity = 1 lsl 16

let create ?(enabled = false) ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be positive";
  {
    enabled;
    label = "";
    capacity;
    ring = Array.make capacity None;
    head = 0;
    stored = 0;
    dropped = 0;
    next_span = 0;
    spans_rev = [];
    open_spans = [];
    ctx_txn = -1;
    ctx_span = -1;
    hists = Hashtbl.create 16;
  }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let label t = t.label
let set_label t s = t.label <- s
let dropped t = t.dropped

let push t e =
  if t.ring.(t.head) <> None then t.dropped <- t.dropped + 1
  else t.stored <- t.stored + 1;
  t.ring.(t.head) <- Some e;
  t.head <- (t.head + 1) mod t.capacity

let current_span t = match t.open_spans with [] -> -1 | s :: _ -> s.id

(* ---- causal context ----

   A (txn, span) pair dynamically scoped around every operation a
   transaction performs.  The single [open_spans] stack cannot attribute
   events of interleaved transactions (innermost-open is whichever txn
   began last); the explicit context can.  Callers save [context],
   [set_context], and restore — nesting (a commit completing inside
   another transaction's batch flush) keeps attribution exact. *)

let context t = (t.ctx_txn, t.ctx_span)

let set_context t ~txn ~span =
  t.ctx_txn <- txn;
  t.ctx_span <- span

let clear_context t = set_context t ~txn:(-1) ~span:(-1)

let emit t ~time ~node kind attrs =
  if t.enabled then begin
    let span = if t.ctx_span >= 0 then t.ctx_span else current_span t in
    push t (Event.make ~time ~node ~span ~txn:t.ctx_txn kind attrs)
  end

let note ?(time = 0.) ?(node = -1) t msg =
  if t.enabled then
    push t (Event.make ~time ~node ~span:(current_span t) Event.Note [ ("msg", Event.Str msg) ])

let events t =
  (* oldest first: the ring wraps at [head] *)
  let out = ref [] in
  for i = t.capacity - 1 downto 0 do
    let slot = (t.head + i) mod t.capacity in
    match t.ring.(slot) with None -> () | Some e -> out := e :: !out
  done;
  !out

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.head <- 0;
  t.stored <- 0;
  t.dropped <- 0;
  t.next_span <- 0;
  t.spans_rev <- [];
  t.open_spans <- [];
  t.ctx_txn <- -1;
  t.ctx_span <- -1

(* ---- spans ---- *)

let span_begin t ~time ~node ?parent name =
  if not t.enabled then -1
  else begin
    let parent = match parent with Some p -> p | None -> current_span t in
    let id = t.next_span in
    t.next_span <- id + 1;
    let s = { id; name; node; parent; start = time; stop = Float.nan } in
    t.spans_rev <- s :: t.spans_rev;
    t.open_spans <- s :: t.open_spans;
    push t
      (Event.make ~time ~node ~span:parent Event.Span_begin
         [ ("id", Event.Int id); ("name", Event.Str name) ]);
    id
  end

let span_end t ~time id =
  if t.enabled && id >= 0 then begin
    (match List.find_opt (fun s -> s.id = id) t.open_spans with
    | None -> ()
    | Some s ->
      s.stop <- time;
      t.open_spans <- List.filter (fun o -> o.id <> id) t.open_spans;
      push t
        (Event.make ~time ~node:s.node ~span:s.parent Event.Span_end
           [ ("id", Event.Int id); ("name", Event.Str s.name);
             ("dur", Event.Float (time -. s.start)) ]))
  end

let spans t = List.rev t.spans_rev
let span_duration s = if Float.is_nan s.stop then None else Some (s.stop -. s.start)

(* ---- histograms (always on: they never touch the sim clock or the
   Metrics counters, so traced and untraced runs stay identical) ---- *)

let find_hist t ~name ~node = Hashtbl.find_opt t.hists (name, node)

let hist t ~name ~node =
  match Hashtbl.find_opt t.hists (name, node) with
  | Some h -> h
  | None ->
    let h = Log_hist.create () in
    Hashtbl.add t.hists (name, node) h;
    h

let observe t ~name ~node v =
  Log_hist.record (hist t ~name ~node) v;
  if node >= 0 then Log_hist.record (hist t ~name ~node:(-1)) v

let histograms t =
  Hashtbl.fold (fun (name, node) h acc -> (name, node, h) :: acc) t.hists []
  |> List.sort (fun (n1, d1, _) (n2, d2, _) ->
         match String.compare n1 n2 with 0 -> Int.compare d1 d2 | c -> c)

let clear_histograms t = Hashtbl.reset t.hists

(* ---- export ---- *)

(* Draining appends a [trace.dropped] summary line when the ring
   overflowed, so consumers of an exported trace can tell it is a
   suffix, not the whole run. *)
let drain t =
  let evs = events t in
  if t.dropped = 0 then evs
  else begin
    let last_time = List.fold_left (fun acc (e : Event.t) -> Float.max acc e.Event.time) 0. evs in
    evs
    @ [
        Event.make ~time:last_time ~node:(-1) Event.Trace_dropped
          [ ("count", Event.Int t.dropped); ("capacity", Event.Int t.capacity) ];
      ]
  end

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (Event.to_json e));
      Buffer.add_char buf '\n')
    (drain t);
  Buffer.contents buf

let histograms_json t =
  let per_name = Hashtbl.create 8 in
  List.iter
    (fun (name, node, h) ->
      let entry = try Hashtbl.find per_name name with Not_found -> [] in
      let key = if node < 0 then "cluster" else Printf.sprintf "node%d" node in
      Hashtbl.replace per_name name ((key, Log_hist.to_json h) :: entry))
    (histograms t);
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) per_name [] |> List.sort String.compare
  in
  Json.Obj (List.map (fun name -> (name, Json.Obj (List.rev (Hashtbl.find per_name name)))) names)
