(* Offline protocol auditor: replays a recorded event stream and checks
   the invariants behind the bug classes PRs 1-5 fixed.  A violation
   here means the *protocol* misbehaved, not just that a counter looks
   odd — each check replays enough durable/volatile state from the
   events alone to re-derive what the rule demands.

   The auditor assumes a [Local_logging] trace (the paper's scheme):
   baseline schemes force on other nodes' logs and would trip the WAL
   and batch-closure replays.

   Invariants:

   1. force-before-ship — WAL: a page copy never leaves a node before
      the log records covering its updates are durable there.  Replayed
      from [log.force]'s [durable] attr vs [page.ship]'s [lsn] attr.

   2. batch-loss-closure — group commit: a transaction only reports
      committed after a force covered its submitted commit record, and
      never after the crash of a still-pending batch (whole-batch
      loss).  Replayed from [commit.submit] / [log.force] / [crash].

   3. psn-monotonic — page lineage: shipped PSNs never go backwards for
      a page; a regression means two divergent histories under the same
      PSNs (the double-lineage bug class).

   4. deferred-fence — deferred recovery: a page parked waiting for a
      down peer's log is served by its owner (lock grants, ships) only
      after the deferred redo completed or the owner itself crashed
      (wiping the parked state for the next recovery to rebuild).

   5. release-after-terminal — strict 2PL: once a transaction reached
      its terminal lock release (or its commit/abort event), no further
      lock activity or log append may carry its causal context.

   6. release-after-submit — early lock release (controlled lock
      violation) weakens 5 for committing transactions: a
      [lock.early_release] is legal only between the commit-record
      submit and the covering force, and the releaser may do no further
      lock or log work afterwards.

   7. closure-loss — PR 3's whole-batch loss generalised: a transaction
      that observed an early releaser's pages ([commit.dep]) must not
      report committed — nor already be durable — once that antecedent
      is lost; loss propagates through the forward dependency closure.

   A truncated trace (the ring overflowed and a [trace.dropped] summary
   is present) disables the prefix-dependent checks 1, 2, 5, 6 and 7 —
   replaying them from a suffix would fabricate violations — and the
   report says so. *)

type violation = { invariant : string; time : float; node : int; detail : string }

type report = {
  violations : violation list;
  events_checked : int;
  truncated : bool;
  skipped : string list;  (** invariants disabled by truncation *)
}

let prefix_checks =
  [
    "force-before-ship";
    "batch-loss-closure";
    "release-after-terminal";
    "release-after-submit";
    "closure-loss";
  ]

type state = {
  mutable violations : violation list;  (* newest first *)
  full : bool;  (* complete trace: prefix-dependent checks enabled *)
  durable : (int, int) Hashtbl.t;  (* node -> durable log boundary *)
  pending : (int, int * int) Hashtbl.t;  (* txn -> (node, commit lsn) *)
  completed : (int, unit) Hashtbl.t;  (* txn -> covering force seen *)
  lost : (int, unit) Hashtbl.t;  (* txn -> its batch died in a crash *)
  psn : (string, int) Hashtbl.t;  (* page -> highest shipped PSN *)
  parked : (string, int) Hashtbl.t;  (* page -> owner node it is parked at *)
  home : (int, int) Hashtbl.t;  (* txn -> node it runs on *)
  terminal : (int, unit) Hashtbl.t;  (* txn -> saw terminal release / commit / abort *)
  early_released : (int, unit) Hashtbl.t;
      (* txn -> surrendered its locks at batch submit (controlled lock
         violation); no further lock/log work allowed until terminal *)
  deps_fwd : (int, int list) Hashtbl.t;  (* antecedent -> dependents *)
  deps_rev : (int, int list) Hashtbl.t;  (* dependent -> antecedents *)
  dragged : (int, unit) Hashtbl.t;  (* txn -> a lost antecedent dragged it down *)
}

let flag st ~invariant ~time ~node detail =
  st.violations <- { invariant; time; node; detail } :: st.violations

let attr_int_d e key = Option.value (Event.attr_int e key) ~default:(-1)
let attr_str_d e key = Option.value (Event.attr_str e key) ~default:""

(* A transaction's causal footprint: the stamped context, falling back
   to a [txn] attr for events emitted outside the context window. *)
let event_txn (e : Event.t) =
  if e.Event.txn >= 0 then e.Event.txn
  else match Event.attr_int e "txn" with Some id -> id | None -> -1

(* Invariant 2 helper: a force to durable boundary [d] covers every
   pending commit record that starts below it (forces always run to the
   device end, mirroring [Group_commit.on_force]). *)
let complete_covered st ~node ~durable ~time =
  let done_ =
    Hashtbl.fold
      (fun txn (n, lsn) acc -> if n = node && lsn < durable then txn :: acc else acc)
      st.pending []
  in
  List.iter
    (fun txn ->
      Hashtbl.remove st.pending txn;
      Hashtbl.replace st.completed txn ())
    done_;
  (* 7: a commit may only become durable after (or together with) every
     antecedent it depends on — the whole batch completed above before
     this check, so same-force antecedents pass.  Satisfied edges are
     settled so a later crash cannot drag dependents of a durable
     antecedent. *)
  List.iter
    (fun txn ->
      (match Hashtbl.find_opt st.deps_rev txn with
      | None -> ()
      | Some antecedents ->
        Hashtbl.remove st.deps_rev txn;
        List.iter
          (fun a ->
            if Hashtbl.mem st.pending a || Hashtbl.mem st.lost a || Hashtbl.mem st.dragged a then
              flag st ~invariant:"closure-loss" ~time ~node
                (Printf.sprintf "T%d became durable while its antecedent T%d was %s" txn a
                   (if Hashtbl.mem st.pending a then "still pending" else "lost")))
          antecedents);
      Hashtbl.remove st.deps_fwd txn)
    done_

let on_force st (e : Event.t) =
  match Event.attr_int e "durable" with
  | None -> ()
  | Some d ->
    Hashtbl.replace st.durable e.Event.node d;
    if st.full then complete_covered st ~node:e.Event.node ~durable:d ~time:e.Event.time

let on_ship st (e : Event.t) =
  let page = attr_str_d e "page" in
  let psn = attr_int_d e "psn" in
  let node = e.Event.node in
  (* 3: PSN lineage *)
  (match Hashtbl.find_opt st.psn page with
  | Some prev when psn < prev ->
    flag st ~invariant:"psn-monotonic" ~time:e.Event.time ~node
      (Printf.sprintf "page %s shipped with psn %d after psn %d" page psn prev)
  | Some _ | None -> Hashtbl.replace st.psn page (max psn (attr_int_d e "psn")));
  (* 4: a parked page must not leave its owner *)
  (match Hashtbl.find_opt st.parked page with
  | Some owner when owner = node ->
    flag st ~invariant:"deferred-fence" ~time:e.Event.time ~node
      (Printf.sprintf "owner shipped parked page %s before its deferred redo completed" page)
  | Some _ | None -> ());
  (* 1: WAL *)
  if st.full then
    match Event.attr_int e "lsn" with
    | Some lsn when lsn >= 0 ->
      let durable = Option.value (Hashtbl.find_opt st.durable node) ~default:(-1) in
      if lsn >= durable then
        flag st ~invariant:"force-before-ship" ~time:e.Event.time ~node
          (Printf.sprintf "page %s shipped with last lsn %d but node durable boundary is %d" page
             lsn durable)
    | Some _ | None -> ()

let on_submit st (e : Event.t) =
  if st.full then begin
    let txn = event_txn e in
    if txn >= 0 then begin
      (* latest submit wins: a blocked commit may legally resubmit *)
      Hashtbl.replace st.pending txn (e.Event.node, attr_int_d e "lsn");
      Hashtbl.remove st.lost txn;
      Hashtbl.remove st.completed txn
    end
  end

let on_crash st (e : Event.t) =
  let node = e.Event.node in
  if st.full then begin
    (* whole-batch loss: everything still pending on this node died *)
    let dead =
      Hashtbl.fold (fun txn (n, _) acc -> if n = node then txn :: acc else acc) st.pending []
    in
    List.iter
      (fun txn ->
        Hashtbl.remove st.pending txn;
        Hashtbl.replace st.lost txn ();
        (* recovery legally rolls the loser back; its post-crash log
           activity must not read as work after an early release *)
        Hashtbl.remove st.early_released txn)
      dead;
    (* 7: loss propagates through the forward dependency closure — any
       transaction that observed a dead member's early-released pages
       is dragged down, transitively.  One already durable is the
       violation the gate in [Cluster.commit_outcome] exists to
       prevent. *)
    let queue = ref dead in
    let seen = Hashtbl.create 8 in
    List.iter (fun txn -> Hashtbl.replace seen txn ()) dead;
    while !queue <> [] do
      let txn = List.hd !queue in
      queue := List.tl !queue;
      List.iter
        (fun d ->
          if not (Hashtbl.mem seen d) then begin
            Hashtbl.replace seen d ();
            Hashtbl.replace st.dragged d ();
            if Hashtbl.mem st.completed d then
              flag st ~invariant:"closure-loss" ~time:e.Event.time ~node
                (Printf.sprintf "T%d was already durable when its antecedent T%d was lost" d txn);
            queue := d :: !queue
          end)
        (Option.value (Hashtbl.find_opt st.deps_fwd txn) ~default:[])
    done
  end;
  (* parked state is volatile: the next recovery attempt re-parks *)
  let unparked =
    Hashtbl.fold (fun page owner acc -> if owner = node then page :: acc else acc) st.parked []
  in
  List.iter (Hashtbl.remove st.parked) unparked

let on_commit st (e : Event.t) =
  let txn = event_txn e in
  if txn >= 0 then begin
    if st.full then begin
      if Hashtbl.mem st.lost txn then
        flag st ~invariant:"batch-loss-closure" ~time:e.Event.time ~node:e.Event.node
          (Printf.sprintf "T%d reported committed after its batch was lost to a crash" txn)
      else if Hashtbl.mem st.pending txn then
        flag st ~invariant:"batch-loss-closure" ~time:e.Event.time ~node:e.Event.node
          (Printf.sprintf "T%d reported committed before a force covered its commit record" txn)
      else if not (Hashtbl.mem st.completed txn) then
        flag st ~invariant:"batch-loss-closure" ~time:e.Event.time ~node:e.Event.node
          (Printf.sprintf "T%d reported committed without a submitted commit record" txn);
      if Hashtbl.mem st.dragged txn then
        flag st ~invariant:"closure-loss" ~time:e.Event.time ~node:e.Event.node
          (Printf.sprintf "T%d reported committed after a lost antecedent dragged it down" txn)
    end;
    Hashtbl.remove st.early_released txn;
    Hashtbl.replace st.terminal txn ()
  end

let on_abort st (e : Event.t) =
  let txn = event_txn e in
  if txn >= 0 then begin
    Hashtbl.remove st.early_released txn;
    Hashtbl.replace st.terminal txn ()
  end

let on_begin st (e : Event.t) =
  let txn = event_txn e in
  if txn >= 0 then Hashtbl.replace st.home txn e.Event.node

let on_deferred st (e : Event.t) =
  match attr_str_d e "action" with
  | "parked" -> Hashtbl.replace st.parked (attr_str_d e "page") e.Event.node
  | "completed" -> Hashtbl.remove st.parked (attr_str_d e "page")
  | _ -> () (* "loser-parked" and future actions fence nothing *)

(* Invariant 5, lock-activity side: a transaction past its terminal
   point must not request/acquire locks or append log records. *)
let check_terminal st what (e : Event.t) =
  if st.full then begin
    let txn = e.Event.txn in
    if txn >= 0 then
      if Hashtbl.mem st.terminal txn then
        flag st ~invariant:"release-after-terminal" ~time:e.Event.time ~node:e.Event.node
          (Printf.sprintf "T%d performed %s after its terminal lock release" txn what)
      else if Hashtbl.mem st.early_released txn then
        (* 6: the weakened discipline still forbids work after the
           early release — the transaction sits in its batch, nothing
           more *)
        flag st ~invariant:"release-after-submit" ~time:e.Event.time ~node:e.Event.node
          (Printf.sprintf "T%d performed %s after releasing its locks early" txn what)
  end

(* Invariant 6, release side: the early-release summary event (it
   carries a [txn] attr; the per-page trace from the lock table does
   not) is legal only while the releaser's submitted commit record is
   still awaiting its covering force. *)
let on_early_release st (e : Event.t) =
  if st.full then
    match Event.attr_int e "txn" with
    | None -> ()
    | Some txn ->
      if Hashtbl.mem st.terminal txn then
        flag st ~invariant:"release-after-terminal" ~time:e.Event.time ~node:e.Event.node
          (Printf.sprintf "T%d released locks early after its terminal point" txn)
      else if not (Hashtbl.mem st.pending txn) then
        flag st ~invariant:"release-after-submit" ~time:e.Event.time ~node:e.Event.node
          (Printf.sprintf
             "T%d released its locks early without a submitted, uncovered commit record" txn)
      else Hashtbl.replace st.early_released txn ()

(* Invariant 7, edge side: record who observed whose pre-durable state.
   An edge on an already-covered antecedent constrains nothing. *)
let on_dep st (e : Event.t) =
  if st.full then
    match (Event.attr_int e "txn", Event.attr_int e "on") with
    | Some dependent, Some antecedent when Hashtbl.mem st.pending antecedent ->
      let push tbl k v = Hashtbl.replace tbl k (v :: Option.value (Hashtbl.find_opt tbl k) ~default:[]) in
      push st.deps_fwd antecedent dependent;
      push st.deps_rev dependent antecedent
    | _ -> ()

(* Invariant 5, release side: the terminal release is a node-level
   cached-lock drop (no [holder] attr — owner-table releases carry one)
   at the transaction's own node, emitted by its end-of-transaction
   release sweep.  Callback-path drops run under the *requester's*
   context at the holder's node and never match. *)
let on_release st (e : Event.t) =
  let txn = e.Event.txn in
  if txn >= 0 && Event.attr e "holder" = None then
    match Hashtbl.find_opt st.home txn with
    | Some home when home = e.Event.node -> Hashtbl.replace st.terminal txn ()
    | Some _ | None -> ()

(* One case per Event.kind, no wildcard: a new event kind must make a
   conscious appearance here (cbl-lint enforces it). *)
let dispatch st (e : Event.t) =
  match e.Event.kind with
  | Event.Msg_send -> ()
  | Event.Msg_recv -> ()
  | Event.Log_append -> check_terminal st "a log append" e
  | Event.Log_force -> on_force st e
  | Event.Page_read -> ()
  | Event.Page_write -> ()
  | Event.Page_ship -> on_ship st e
  | Event.Cache_install -> ()
  | Event.Cache_evict -> ()
  | Event.Lock_request -> check_terminal st "a lock request" e
  | Event.Lock_grant -> (
    (* 4: a parked page must not be granted at its owner *)
    let page = attr_str_d e "page" in
    match Hashtbl.find_opt st.parked page with
    | Some owner when owner = e.Event.node ->
      flag st ~invariant:"deferred-fence" ~time:e.Event.time ~node:e.Event.node
        (Printf.sprintf "owner granted a lock on parked page %s before its deferred redo completed"
           page)
    | Some _ | None -> ())
  | Event.Lock_callback -> ()
  | Event.Lock_demote -> ()
  | Event.Lock_release -> on_release st e
  | Event.Lock_acquired -> check_terminal st "a lock acquisition" e
  | Event.Ckpt_begin -> ()
  | Event.Ckpt_end -> ()
  | Event.Txn_begin -> on_begin st e
  | Event.Txn_commit -> on_commit st e
  | Event.Txn_abort -> on_abort st e
  | Event.Commit_submit -> on_submit st e
  | Event.Commit_batch -> ()
  | Event.Commit_dep -> on_dep st e
  | Event.Commit_dep_wait -> ()
  | Event.Lock_early_release -> on_early_release st e
  | Event.Crash -> on_crash st e
  | Event.Recovery_begin -> ()
  | Event.Recovery_end -> ()
  | Event.Recovery_phase -> ()
  | Event.Recovery_restart -> ()
  | Event.Recovery_deferred -> on_deferred st e
  | Event.Recovery_retry -> ()
  | Event.Span_begin -> ()
  | Event.Span_end -> ()
  | Event.Fault_drop -> ()
  | Event.Fault_dup -> ()
  | Event.Fault_delay -> ()
  | Event.Fault_partition -> ()
  | Event.Fault_torn -> ()
  | Event.Fault_crash -> ()
  | Event.Trace_dropped -> ()
  | Event.Note -> ()

let run events =
  let truncated =
    List.exists (fun (e : Event.t) -> e.Event.kind = Event.Trace_dropped) events
  in
  let st =
    {
      violations = [];
      full = not truncated;
      durable = Hashtbl.create 8;
      pending = Hashtbl.create 64;
      completed = Hashtbl.create 256;
      lost = Hashtbl.create 16;
      psn = Hashtbl.create 256;
      parked = Hashtbl.create 16;
      home = Hashtbl.create 256;
      terminal = Hashtbl.create 256;
      early_released = Hashtbl.create 64;
      deps_fwd = Hashtbl.create 64;
      deps_rev = Hashtbl.create 64;
      dragged = Hashtbl.create 16;
    }
  in
  List.iter (dispatch st) events;
  {
    violations = List.rev st.violations;
    events_checked = List.length events;
    truncated;
    skipped = (if truncated then prefix_checks else []);
  }

let ok (r : report) = r.violations = []

let to_json (r : report) =
  Json.Obj
    [
      ("ok", Json.Bool (ok r));
      ("events_checked", Json.Int r.events_checked);
      ("truncated", Json.Bool r.truncated);
      ("skipped", Json.List (List.map (fun s -> Json.Str s) r.skipped));
      ( "violations",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("invariant", Json.Str v.invariant);
                   ("time", Json.Float v.time);
                   ("node", Json.Int v.node);
                   ("detail", Json.Str v.detail);
                 ])
             r.violations) );
    ]

let pp ppf (r : report) =
  if ok r then
    Format.fprintf ppf "audit: OK (%d events%s)@." r.events_checked
      (if r.truncated then ", truncated — prefix checks skipped" else "")
  else begin
    Format.fprintf ppf "audit: %d violation(s) in %d events@." (List.length r.violations)
      r.events_checked;
    List.iter
      (fun v ->
        Format.fprintf ppf "  [%s] t=%.6f node %d: %s@." v.invariant v.time v.node v.detail)
      r.violations
  end
