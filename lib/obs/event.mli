(** Typed trace events.

    An event is a point on the simulated timeline: what happened
    ([kind]), where ([node]), when ([time], simulated seconds), inside
    which span ([span], [-1] when unscoped), plus free-form [attrs].
    Attrs are primitive key/value pairs rather than domain types —
    [repro_obs] sits below the simulation layer, so it cannot reference
    [Page_id] and friends; callers stringify. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type kind =
  | Msg_send
  | Msg_recv
  | Log_append
  | Log_force
  | Page_read
  | Page_write
  | Page_ship
  | Cache_install
  | Cache_evict
  | Lock_request
  | Lock_grant
  | Lock_callback
  | Lock_demote
  | Lock_release
  | Lock_acquired
  | Ckpt_begin
  | Ckpt_end
  | Txn_begin
  | Txn_commit
  | Txn_abort
  | Commit_submit
  | Commit_batch
  | Commit_dep
  | Commit_dep_wait
  | Lock_early_release
  | Crash
  | Recovery_begin
  | Recovery_end
  | Recovery_phase
  | Recovery_restart
  | Recovery_deferred
  | Recovery_retry
  | Span_begin
  | Span_end
  | Fault_drop
  | Fault_dup
  | Fault_delay
  | Fault_partition
  | Fault_torn
  | Fault_crash
  | Trace_dropped
  | Note

type t = {
  time : float;
  node : int;
  span : int;
  txn : int;  (** trace context: id of the causing transaction, -1 if none *)
  kind : kind;
  attrs : (string * value) list;
}

val make : time:float -> node:int -> ?span:int -> ?txn:int -> kind -> (string * value) list -> t

val kind_name : kind -> string
(** Stable dotted name, e.g. [Msg_send] -> ["msg.send"]. *)

val kind_of_name : string -> kind option
val all_kinds : kind list

val render : t -> string
(** One-line human rendering.  A [Note] event with a single [msg]
    attribute renders as the bare message (legacy [Trace] contract). *)

val to_json : t -> Json.t
(** The trace context is exported under the key ["ctx"] (several kinds
    carry a domain attr named ["txn"], which must not collide). *)

val of_json : Json.t -> t option
(** Inverse of [to_json]; [None] when the object is missing a header
    field or names an unknown kind. *)

(** {2 Attr accessors} *)

val attr : t -> string -> value option
val attr_int : t -> string -> int option

val attr_float : t -> string -> float option
(** Also accepts an [Int] attr (JSON round-trips may widen). *)

val attr_str : t -> string -> string option
val attr_bool : t -> string -> bool option

val substring : needle:string -> string -> bool
(** Allocation-free substring test: does [needle] occur in the hay? *)
