(** Minimal JSON values — emitter and parser.

    The toolchain has no JSON library baked in, so this hand-rolled
    module covers exactly what the observability layer needs: object /
    array construction, compact and pretty printing with correct string
    escaping, and a strict parser good enough to round-trip our own
    output (used by [Metrics.of_json] and the tests). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Floats print with enough digits to
    round-trip; NaN becomes [null]. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering for human-facing dumps. *)

val pp : Format.formatter -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Strict parse of a complete JSON document.
    @raise Parse_error on malformed input or trailing bytes. *)

(** Accessors (total; [None] on shape mismatch). *)

val member : string -> t -> t option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
val to_string_opt : t -> string option
