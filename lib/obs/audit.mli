(** Offline protocol auditor.

    Replays a recorded event stream (a live {!Recorder}'s events or a
    parsed JSONL trace) and checks the protocol invariants behind the
    bug classes earlier PRs fixed:

    - [force-before-ship] — WAL: no page copy leaves a node before the
      covering log records are durable there;
    - [batch-loss-closure] — group commit: commits are reported only
      after a covering force, and never out of a crash-lost batch;
    - [psn-monotonic] — shipped PSNs never regress for a page;
    - [deferred-fence] — a parked deferred page is not granted or
      shipped by its owner before the deferred redo completes;
    - [release-after-terminal] — strict 2PL: no lock activity or log
      append carries a transaction's context past its terminal release;
    - [release-after-submit] — early lock release weakens the above for
      committing transactions: locks may be surrendered only between
      the commit-record submit and its covering force, with no further
      lock/log work by the releaser;
    - [closure-loss] — a transaction that observed an early releaser's
      pages must not report committed (nor already be durable) once
      that antecedent is lost; loss propagates through the forward
      dependency closure.

    Traces are assumed to come from the paper's [Local_logging] scheme.
    Truncated traces (ring overflow) disable the prefix-dependent
    checks and the report records which. *)

type violation = { invariant : string; time : float; node : int; detail : string }

type report = {
  violations : violation list;  (** in event order *)
  events_checked : int;
  truncated : bool;
  skipped : string list;  (** invariants disabled by truncation *)
}

val run : Event.t list -> report
(** Events must be in emission (time) order. *)

val ok : report -> bool
val to_json : report -> Json.t
val pp : Format.formatter -> report -> unit
