open Repro_storage
module Cluster = Repro_cbl.Cluster

type t = {
  name : string;
  begin_txn : node:int -> int;
  read_cell : txn:int -> pid:Page_id.t -> off:int -> int64;
  update_delta : txn:int -> pid:Page_id.t -> off:int -> int64 -> unit;
  update_bytes : txn:int -> pid:Page_id.t -> off:int -> string -> unit;
  savepoint : txn:int -> string -> unit;
  rollback_to : txn:int -> string -> unit;
  commit : txn:int -> unit;
  commit_outcome : txn:int -> [ `Pending | `Durable | `Gone ];
      (* group commit: where a submitted commit stands.  [`Durable] is
         read-once; engines without batching answer [`Durable] exactly
         once right after [commit] returns. *)
  pump_commits : idle:bool -> bool;
      (* drive the group-commit window timers; [idle] = no client made
         progress this round, allowing a clock jump to the next batch
         deadline.  Returns whether any batch moved. *)
  abort : txn:int -> unit;
  checkpoint : node:int -> unit;
  crash : node:int -> unit;
  recover : nodes:int list -> unit;
  is_up : node:int -> bool;
  nodes : int list;
  deadlock : Repro_lock.Deadlock.t;
  env : Repro_sim.Env.t;
}

let of_cluster cluster =
  {
    name = "cbl";
    nodes = List.init (Cluster.node_count cluster) Fun.id;
    begin_txn = (fun ~node -> Cluster.begin_txn cluster ~node);
    read_cell = (fun ~txn ~pid ~off -> Cluster.read_cell cluster ~txn ~pid ~off);
    update_delta = (fun ~txn ~pid ~off d -> Cluster.update_delta cluster ~txn ~pid ~off d);
    update_bytes = (fun ~txn ~pid ~off s -> Cluster.update_bytes cluster ~txn ~pid ~off s);
    savepoint = (fun ~txn name -> Cluster.savepoint cluster ~txn name);
    rollback_to = (fun ~txn name -> Cluster.rollback_to cluster ~txn name);
    commit = (fun ~txn -> Cluster.commit cluster ~txn);
    commit_outcome = (fun ~txn -> Cluster.commit_outcome cluster ~txn);
    pump_commits = (fun ~idle -> Cluster.pump_group_commit cluster ~idle);
    abort = (fun ~txn -> Cluster.abort cluster ~txn);
    checkpoint = (fun ~node -> Cluster.checkpoint cluster ~node);
    crash = (fun ~node -> Cluster.crash cluster ~node);
    recover = (fun ~nodes -> Cluster.recover cluster ~nodes);
    is_up = (fun ~node -> Repro_cbl.Node.is_up (Cluster.node cluster node));
    deadlock = Cluster.deadlock cluster;
    env = Cluster.env cluster;
  }
