module Page_id = Repro_storage.Page_id
module Deadlock = Repro_lock.Deadlock
module Block = Repro_cbl.Block
module Env = Repro_sim.Env
module Stats = Repro_util.Stats

type event = Crash of int | Recover of int list | Checkpoint of int

type conflict_policy = Wound_wait | Detect

type outcome = {
  engine : Engine.t;
  committed : int;
  voluntary_aborts : int;
  deadlock_aborts : int;
  stuck : int;
  rounds : int;
  sim_seconds : float;
  latencies : Stats.summary;
  shadow : ((Page_id.t * int) * int64) list;
}

(* Per-transaction effects buffered until commit; savepoint marks let a
   partial rollback discard exactly the suffix. *)
type effect = Delta of (Page_id.t * int) * int64 | Mark of string

type status = Running | Committed | Aborted

type prog = {
  script : Op.script;
  mutable txn : int option;
  mutable step : int;
  mutable effects : effect list; (* newest first *)
  mutable status : status;
  mutable retries : int;
  mutable began_at : float;
  mutable cooldown : int;  (* rounds to sit out after a deadlock abort *)
  mutable last_block : string;
  mutable aborting : bool;
      (* a wound/victim abort blocked part-way (its undo needs a down
         node): the transaction is half rolled back and must not run
         forward again — only the abort is retried until it completes *)
  mutable committing : bool;
      (* the commit was submitted to a group-commit batch and is not yet
         durable: the script runs nothing further and polls
         [commit_outcome] until the batch forces (Durable) or a crash
         loses it (Gone) *)
}

let reset_prog p =
  p.txn <- None;
  p.step <- 0;
  p.effects <- [];
  p.aborting <- false;
  p.committing <- false;
  p.retries <- p.retries + 1;
  (* Backoff breaks the symmetry that would otherwise re-create the
     same deadlock cycle on the very next round. *)
  p.cooldown <- min 32 (3 * p.retries)

let rec drop_to_mark name = function
  | [] -> []
  | Mark m :: rest when m = name -> Mark m :: rest
  | (Delta _ | Mark _) :: rest -> drop_to_mark name rest

let run (engine : Engine.t) ?(events = []) ?(max_rounds = 100_000) ?(policy = Wound_wait)
    ?(mpl = max_int) ?auto_recover scripts =
  let progs =
    List.map
      (fun script ->
        {
          script;
          txn = None;
          step = 0;
          effects = [];
          status = Running;
          retries = 0;
          began_at = 0.;
          cooldown = 0;
          last_block = "";
          aborting = false;
          committing = false;
        })
      scripts
  in
  let actions = List.map (fun (s : Op.script) -> Array.of_list s.Op.actions) scripts in
  let progs = Array.of_list progs in
  let actions = Array.of_list actions in
  let shadow : (Page_id.t * int, int64) Hashtbl.t = Hashtbl.create 64 in
  let committed = ref 0 in
  let voluntary = ref 0 in
  let deadlock_aborts = ref 0 in
  let latencies = ref [] in
  let t0 = Env.now engine.Engine.env in
  let find_prog_by_txn txn =
    let found = ref None in
    Array.iter (fun p -> if p.txn = Some txn then found := Some p) progs;
    !found
  in
  let apply_effects p =
    List.iter
      (function
        | Delta (key, d) ->
          let cur = Option.value (Hashtbl.find_opt shadow key) ~default:0L in
          Hashtbl.replace shadow key (Int64.add cur d)
        | Mark _ -> ())
      (List.rev p.effects)
  in
  (* The commit is durable: credit the script's effects. *)
  let finalize_commit p =
    p.committing <- false;
    apply_effects p;
    p.status <- Committed;
    incr committed;
    latencies := (Env.now engine.Engine.env -. p.began_at) :: !latencies
  in
  let finish_commit p txn =
    engine.Engine.commit ~txn;
    Deadlock.clear_waits engine.Engine.deadlock txn;
    match engine.Engine.commit_outcome ~txn with
    | `Durable -> finalize_commit p
    | `Pending | `Gone ->
      (* Group commit: the transaction joined its node's batch and is
         not durable yet — the script stops here and polls. *)
      p.committing <- true
  in
  (* The script's home node crashed (or is about to): decide what the
     in-flight transaction's fate is.  A submitted commit whose batch
     already forced IS durable — it survives the crash and must never
     be re-run (double apply); anything else died with the node's
     volatile state and restarts from scratch. *)
  let crash_reset p =
    match p.txn with
    | None -> ()
    | Some txn ->
      if p.committing && engine.Engine.commit_outcome ~txn = `Durable then finalize_commit p
      else begin
        Deadlock.remove_txn engine.Engine.deadlock txn;
        reset_prog p
      end
  in
  (* Abort [txn] on behalf of prog [p] (wound, deadlock victim, or a
     retried half-abort).  The rollback itself can block — a CLR may
     need a page whose owner is down — leaving the transaction half
     rolled back.  It must then be quarantined: letting the script run
     forward again would commit a transaction whose early updates were
     already compensated away, i.e. silently lose committed effects.
     The prog sits out with [aborting] set and only the abort is
     retried until the rollback completes. *)
  let abort_prog p txn =
    Deadlock.remove_txn engine.Engine.deadlock txn;
    match engine.Engine.abort ~txn with
    | () ->
      incr deadlock_aborts;
      reset_prog p
    | exception Block.Would_block _ ->
      p.aborting <- true;
      p.cooldown <- 4
  in
  let resolve_deadlocks () =
    let rec loop () =
      match Deadlock.find_cycle engine.Engine.deadlock with
      | None -> ()
      | Some cycle ->
        let victim = Deadlock.victim cycle in
        (match find_prog_by_txn victim with
        | Some p when p.committing ->
          (* cannot be wound once committing; it also holds no waits, so
             dropping it from the graph breaks any stale cycle *)
          Deadlock.remove_txn engine.Engine.deadlock victim
        | Some p -> abort_prog p victim
        | None -> Deadlock.remove_txn engine.Engine.deadlock victim);
        loop ()
    in
    loop ()
  in
  (* One attempt to advance a script by one action.  Returns true if
     the step made progress. *)
  let advance p idx =
    let acts = actions.(idx) in
    match p.txn with
    | None ->
      let txn = engine.Engine.begin_txn ~node:p.script.Op.node in
      p.txn <- Some txn;
      p.began_at <- Env.now engine.Engine.env;
      true
    | Some txn ->
      if p.step >= Array.length acts then begin
        finish_commit p txn;
        true
      end
      else begin
        (match acts.(p.step) with
        | Op.Read { pid; off } -> ignore (engine.Engine.read_cell ~txn ~pid ~off)
        | Op.Update { pid; off; delta } ->
          engine.Engine.update_delta ~txn ~pid ~off delta;
          p.effects <- Delta ((pid, off), delta) :: p.effects
        | Op.Write { pid; off; data } -> engine.Engine.update_bytes ~txn ~pid ~off data
        | Op.Savepoint name ->
          engine.Engine.savepoint ~txn name;
          p.effects <- Mark name :: p.effects
        | Op.Rollback_to name ->
          engine.Engine.rollback_to ~txn name;
          p.effects <- drop_to_mark name p.effects
        | Op.Abort_self ->
          engine.Engine.abort ~txn;
          Deadlock.clear_waits engine.Engine.deadlock txn;
          p.status <- Aborted;
          incr voluntary);
        if p.status = Running then begin
          p.step <- p.step + 1;
          Deadlock.clear_waits engine.Engine.deadlock txn
        end;
        true
      end
  in
  let fire = function
    | Crash node ->
      (* Scripts homed at the node lose their in-flight transaction —
         except a submitted commit whose batch already forced, which is
         durable and survives. *)
      Array.iter
        (fun p ->
          if p.status = Running && p.script.Op.node = node && p.txn <> None then crash_reset p)
        progs;
      engine.Engine.crash ~node
    | Recover nodes -> (
      (* An injected crash may already have been recovered (or never
         happened): recover only what is actually down — Recovery.run
         rejects up nodes in the crashed list.  And recover every down
         node at once, not just the scheduled ones: recovery gathers
         claims, page bases and log records from every node outside the
         crashed set, so recovering a subset while another node is still
         down reads stale disk bases for its pages and misses its log
         records entirely (observed as redo gaps on re-crash). *)
      match List.filter (fun n -> not (engine.Engine.is_up ~node:n)) nodes with
      | [] -> ()
      | _ :: _ ->
        let down =
          List.filter (fun n -> not (engine.Engine.is_up ~node:n)) engine.Engine.nodes
        in
        (* A crash point may have felled the node within this same round
           (a checkpoint event crashing mid-way just before this Recover
           fires): scripts homed there still hold transactions that died
           in the crash and must restart. *)
        Array.iter
          (fun p ->
            if p.status = Running && List.mem p.script.Op.node down && p.txn <> None then
              crash_reset p)
          progs;
        engine.Engine.recover ~nodes:down)
    | Checkpoint node -> if engine.Engine.is_up ~node then engine.Engine.checkpoint ~node
  in
  let round = ref 0 in
  let stalled = ref 0 in
  let unfinished () = Array.exists (fun p -> p.status = Running) progs in
  let events = ref events in
  let known_down = Hashtbl.create 8 in
  while unfinished () && !round < max_rounds && !stalled < 1000 do
    (* With fault injection, nodes crash at protocol crash points — no
       Recover event exists for those.  Detect newly-down nodes, strand
       no scripts on them, and schedule their recovery.  This scan runs
       BEFORE the due events: a pre-scheduled Recover could otherwise
       bring the node back first, leaving scripts holding transactions
       that died in the crash. *)
    (match auto_recover with
    | None -> ()
    | Some delay ->
      List.iter
        (fun node ->
          let up = engine.Engine.is_up ~node in
          if (not up) && not (Hashtbl.mem known_down node) then begin
            Hashtbl.replace known_down node ();
            Array.iter
              (fun p ->
                if p.status = Running && p.script.Op.node = node && p.txn <> None then
                  crash_reset p)
              progs;
            events := (!round + delay, Recover [ node ]) :: !events
          end
          else if up then Hashtbl.remove known_down node)
        engine.Engine.nodes);
    let due, later = List.partition (fun (r, _) -> r <= !round) !events in
    events := later;
    (* A fired event can itself hit an injected crash point (a
       checkpoint crashing mid-way): the crash is the point, the event
       just stops.  A Recover event is special: recovery itself can die
       at a recovery-class crash point (or exhaust its retries against a
       partitioned peer), aborting the whole attempt — re-schedule it,
       so the re-entry picks up the grown down set and restarts from
       durable state.  The crash budget is bounded, so the retry chain
       terminates. *)
    List.iter
      (fun (_, e) ->
        try fire e
        with Block.Would_block _ -> (
          match e with
          | Recover _ -> events := (!round + 2, e) :: !events
          | Crash _ | Checkpoint _ -> ()))
      due;
    let progressed = ref false in
    (* multiprogramming limit: at most [mpl] in-flight transactions per
       node; surplus scripts wait to begin *)
    let active_per_node = Hashtbl.create 8 in
    Array.iter
      (fun p ->
        if p.status = Running && p.txn <> None then
          Hashtbl.replace active_per_node p.script.Op.node
            (1 + Option.value (Hashtbl.find_opt active_per_node p.script.Op.node) ~default:0))
      progs;
    Array.iteri
      (fun idx p ->
        if p.status = Running && p.cooldown > 0 then p.cooldown <- p.cooldown - 1
        else if p.status = Running && p.aborting then (
          match p.txn with
          | Some txn ->
            if not (engine.Engine.is_up ~node:p.script.Op.node) then begin
              (* The home node crashed under the half-aborted
                 transaction: its volatile state is gone and recovery
                 finishes the rollback — retrying the abort after
                 recovery would ask for a transaction that no longer
                 exists.  Restart from scratch. *)
              Deadlock.remove_txn engine.Engine.deadlock txn;
              reset_prog p
            end
            else begin
              abort_prog p txn;
              if not p.aborting then progressed := true
            end
          | None -> p.aborting <- false)
        else if p.status = Running && p.committing then (
          (* Poll a submitted group commit.  This branch sits BEFORE the
             advance branch: a committing transaction is no longer
             Active and must not re-enter [commit]. *)
          match p.txn with
          | Some txn -> (
            match engine.Engine.commit_outcome ~txn with
            | `Durable ->
              finalize_commit p;
              progressed := true
            | `Pending -> () (* the pump below drives the window timer *)
            | `Gone ->
              (* the batch was lost to a crash before its force: the
                 commit never happened — restart the script *)
              Deadlock.remove_txn engine.Engine.deadlock txn;
              reset_prog p)
          | None -> p.committing <- false)
        else if
          p.status = Running
          && (p.txn <> None
             || Option.value (Hashtbl.find_opt active_per_node p.script.Op.node) ~default:0 < mpl
             )
        then begin
          if p.txn = None then
            Hashtbl.replace active_per_node p.script.Op.node
              (1 + Option.value (Hashtbl.find_opt active_per_node p.script.Op.node) ~default:0);
          match advance p idx with
          | made -> if made then progressed := true
          | exception Block.Would_block reason ->
            (* A real system would queue the request; polling every
               round would melt the network, so a blocked script sits
               out a few rounds before retrying. *)
            p.cooldown <- 4;
            p.last_block <- Format.asprintf "%a" Block.pp_reason reason;
            if p.txn <> None && not (engine.Engine.is_up ~node:p.script.Op.node) then
              (* The home node itself crashed mid-operation (an injected
                 crash point): the in-flight transaction died with it.
                 Restart it once the node is back. *)
              crash_reset p
            else
              (match (reason, p.txn) with
              | Block.Lock_conflict { blockers }, Some txn when blockers = [ txn ] ->
                (* self-blocking (e.g. the transaction's own undo chain
                   pins a full log): forced abort and restart *)
                abort_prog p txn
              | Block.Lock_conflict { blockers }, Some txn -> begin
                match policy with
                | Wound_wait ->
                  (* Older transactions wound younger blockers; younger
                     waiters simply wait.  Starvation-free, no cycles. *)
                  List.iter
                    (fun blocker ->
                      if blocker > txn then
                        match find_prog_by_txn blocker with
                        | Some q when q.committing ->
                          (* Already committing: not abortable (its fate
                             is the batch force), and its locks release
                             the moment the batch flushes — waiting is
                             both necessary and short. *)
                          ()
                        | Some q -> abort_prog q blocker
                        | None -> ())
                    blockers
                | Detect ->
                  Deadlock.set_waits engine.Engine.deadlock ~waiter:txn ~blockers;
                  resolve_deadlocks ()
              end
              | ( ( Block.Lock_conflict _ | Block.Node_down _ | Block.Log_space _
                  | Block.Page_recovering _ | Block.Net_unreachable _
                  | Block.Page_unavailable _ ),
                  _ ) ->
                (* Net_unreachable heals by retrying: every probe drains
                   the partition's budget, so sitting out the cooldown
                   and retrying is the bounded-retry loop.
                   Page_unavailable (deferred recovery parked the page on
                   a down peer) heals the same way: the blocker's own
                   recovery completes the parked redo. *)
                ())
        end)
      progs;
    (* Drive the group-commit window timers.  When nothing else moved
       (every client is waiting on a pending batch), the pump may jump
       the clock to the earliest batch deadline — the timer firing is
       the progress. *)
    (if engine.Engine.pump_commits ~idle:(not !progressed) then progressed := true);
    if !progressed then stalled := 0 else incr stalled;
    incr round
  done;
  let stuck = Array.fold_left (fun acc p -> if p.status = Running then acc + 1 else acc) 0 progs in
  if stuck > 0 then
    Array.iteri
      (fun i p ->
        if p.status = Running then
          Env.tracef engine.Engine.env "stuck script %d (txn=%s) at node %d step %d retries %d: %s"
            i
            (match p.txn with Some t -> string_of_int t | None -> "-")
            p.script.Op.node p.step p.retries p.last_block)
      progs;
  {
    engine;
    committed = !committed;
    voluntary_aborts = !voluntary;
    deadlock_aborts = !deadlock_aborts;
    stuck;
    rounds = !round;
    sim_seconds = Env.now engine.Engine.env -. t0;
    latencies = Stats.summarize (Array.of_list !latencies);
    shadow = Hashtbl.fold (fun k v acc -> (k, v) :: acc) shadow [];
  }

let verify outcome =
  let engine = outcome.engine in
  (* The oracle reads must see the cluster as it is: no further faults. *)
  (match Env.faults engine.Engine.env with
  | Some inj -> Repro_fault.Injector.set_armed inj false
  | None -> ());
  let reader_node =
    let rec find i = if engine.Engine.is_up ~node:i then i else find (i + 1) in
    find 0
  in
  let txn = engine.Engine.begin_txn ~node:reader_node in
  let errors =
    List.filter_map
      (fun (((pid : Page_id.t), off), expected) ->
        let rec read attempts =
          if attempts > 10_000 then failwith "Driver.verify: blocked forever"
          else
            match engine.Engine.read_cell ~txn ~pid ~off with
            | v -> v
            | exception Block.Would_block _ -> read (attempts + 1)
        in
        let actual = read 0 in
        if Int64.equal actual expected then None
        else
          Some
            (Format.asprintf "%a@@%d: expected %Ld, found %Ld" Page_id.pp pid off expected actual))
      (List.sort compare outcome.shadow)
  in
  engine.Engine.commit ~txn:txn;
  if errors = [] then Ok () else Error errors

let pp_outcome ppf o =
  Format.fprintf ppf
    "%s: committed=%d voluntary_aborts=%d deadlock_aborts=%d stuck=%d rounds=%d sim=%a@ latency: %a"
    o.engine.Engine.name o.committed o.voluntary_aborts o.deadlock_aborts o.stuck o.rounds
    Repro_util.Pretty.seconds o.sim_seconds Stats.pp_summary o.latencies
