module Page_id = Repro_storage.Page_id
module Deadlock = Repro_lock.Deadlock
module Block = Repro_cbl.Block
module Env = Repro_sim.Env
module Stats = Repro_util.Stats
module Heap = Repro_util.Heap

type event = Crash of int | Recover of int list | Checkpoint of int

type conflict_policy = Wound_wait | Detect

type outcome = {
  engine : Engine.t;
  committed : int;
  voluntary_aborts : int;
  deadlock_aborts : int;
  stuck : int;
  rounds : int;
  sched_events : int;
  sim_seconds : float;
  latencies : Stats.summary;
  shadow : ((Page_id.t * int) * int64) list;
}

(* Per-transaction effects buffered until commit; savepoint marks let a
   partial rollback discard exactly the suffix. *)
type effect = Delta of (Page_id.t * int) * int64 | Mark of string

type status = Running | Committed | Aborted

type prog = {
  idx : int;  (* position in the script list; the round-robin tiebreak *)
  script : Op.script;
  mutable txn : int option;
  mutable step : int;
  mutable effects : effect list; (* newest first *)
  mutable status : status;
  mutable retries : int;
  mutable began_at : float;
  mutable wake : int;
      (* next round this program acts.  The authoritative copy: the run
         queue may hold stale entries for earlier reschedules, dropped
         on pop when they disagree with this field. *)
  mutable last_block : string;
  mutable aborting : bool;
      (* a wound/victim abort blocked part-way (its undo needs a down
         node): the transaction is half rolled back and must not run
         forward again — only the abort is retried until it completes *)
  mutable committing : bool;
      (* the commit was submitted to a group-commit batch and is not yet
         durable: the script runs nothing further and polls
         [commit_outcome] until the batch forces (Durable) or a crash
         loses it (Gone) *)
}

let rec drop_to_mark name = function
  | [] -> []
  | Mark m :: rest when m = name -> Mark m :: rest
  | (Delta _ | Mark _) :: rest -> drop_to_mark name rest

(* Run-queue keys pack (wake round, program index) into one int so heap
   operations never allocate; same round pops in ascending index order,
   which is exactly the legacy Array.iteri scan order. *)
let idx_bits = 22
let idx_mask = (1 lsl idx_bits) - 1

let run (engine : Engine.t) ?(events = []) ?(max_rounds = 100_000) ?(policy = Wound_wait)
    ?(mpl = max_int) ?auto_recover scripts =
  let progs =
    List.mapi
      (fun idx script ->
        {
          idx;
          script;
          txn = None;
          step = 0;
          effects = [];
          status = Running;
          retries = 0;
          began_at = 0.;
          wake = 0;
          last_block = "";
          aborting = false;
          committing = false;
        })
      scripts
  in
  let actions = List.map (fun (s : Op.script) -> Array.of_list s.Op.actions) scripts in
  let progs = Array.of_list progs in
  let actions = Array.of_list actions in
  if Array.length progs > idx_mask then
    invalid_arg (Printf.sprintf "Driver.run: more than %d scripts" idx_mask);
  let shadow : (Page_id.t * int, int64) Hashtbl.t = Hashtbl.create 64 in
  let committed = ref 0 in
  let voluntary = ref 0 in
  let deadlock_aborts = ref 0 in
  let latencies = ref [] in
  let t0 = Env.now engine.Engine.env in
  let round = ref 0 in
  let sched_events = ref 0 in
  (* Scheduling state.  [running] counts Running programs (the loop
     condition); [active] counts Running programs holding a transaction,
     per node — the persistent form of the per-round snapshot the legacy
     scan rebuilt; [admit] is this round's working copy (begins bump it
     so later programs in the same round see the slot taken; finishes
     only surface next round, exactly as the snapshot behaved). *)
  let running = ref (Array.length progs) in
  let max_node = List.fold_left max 0 engine.Engine.nodes in
  let max_node =
    Array.fold_left (fun acc p -> max acc p.script.Op.node) max_node progs
  in
  let active = Array.make (max_node + 1) 0 in
  let admit = Array.make (max_node + 1) 0 in
  let by_txn : (int, prog) Hashtbl.t = Hashtbl.create 256 in
  let runq = Heap.create ~capacity:(max 16 (Array.length progs)) () in
  Array.iter (fun p -> Heap.push runq p.idx (* wake 0 ⇒ key = idx *)) progs;
  (* [scan_idx] is the index currently being processed (-1 outside the
     scan).  A cooldown set at or before the program's own turn this
     round starts counting next round — the legacy per-visit decrement
     translated into an absolute wake round. *)
  let scan_idx = ref (-1) in
  let set_cooldown p c =
    let wake = !round + c + if p.idx <= !scan_idx then 1 else 0 in
    p.wake <- wake;
    Heap.push runq ((wake lsl idx_bits) lor p.idx)
  in
  let reset_prog p =
    (match p.txn with
    | Some txn ->
      Hashtbl.remove by_txn txn;
      if p.status = Running then
        active.(p.script.Op.node) <- active.(p.script.Op.node) - 1
    | None -> ());
    p.txn <- None;
    p.step <- 0;
    p.effects <- [];
    p.aborting <- false;
    p.committing <- false;
    p.retries <- p.retries + 1;
    (* Backoff breaks the symmetry that would otherwise re-create the
       same deadlock cycle on the very next round. *)
    set_cooldown p (min 32 (3 * p.retries))
  in
  let find_prog_by_txn txn = Hashtbl.find_opt by_txn txn in
  let apply_effects p =
    List.iter
      (function
        | Delta (key, d) ->
          let cur = Option.value (Hashtbl.find_opt shadow key) ~default:0L in
          Hashtbl.replace shadow key (Int64.add cur d)
        | Mark _ -> ())
      (List.rev p.effects)
  in
  (* The commit is durable: credit the script's effects. *)
  let finalize_commit p =
    p.committing <- false;
    apply_effects p;
    if p.txn <> None then active.(p.script.Op.node) <- active.(p.script.Op.node) - 1;
    p.status <- Committed;
    running := !running - 1;
    incr committed;
    latencies := (Env.now engine.Engine.env -. p.began_at) :: !latencies
  in
  let finish_commit p txn =
    engine.Engine.commit ~txn;
    Deadlock.clear_waits engine.Engine.deadlock txn;
    match engine.Engine.commit_outcome ~txn with
    | `Durable -> finalize_commit p
    | `Pending | `Gone ->
      (* Group commit: the transaction joined its node's batch and is
         not durable yet — the script stops here and polls. *)
      p.committing <- true
  in
  (* The script's home node crashed (or is about to): decide what the
     in-flight transaction's fate is.  A submitted commit whose batch
     already forced IS durable — it survives the crash and must never
     be re-run (double apply); anything else died with the node's
     volatile state and restarts from scratch. *)
  let crash_reset p =
    match p.txn with
    | None -> ()
    | Some txn ->
      if p.committing && engine.Engine.commit_outcome ~txn = `Durable then finalize_commit p
      else begin
        Deadlock.remove_txn engine.Engine.deadlock txn;
        reset_prog p
      end
  in
  (* Abort [txn] on behalf of prog [p] (wound, deadlock victim, or a
     retried half-abort).  The rollback itself can block — a CLR may
     need a page whose owner is down — leaving the transaction half
     rolled back.  It must then be quarantined: letting the script run
     forward again would commit a transaction whose early updates were
     already compensated away, i.e. silently lose committed effects.
     The prog sits out with [aborting] set and only the abort is
     retried until the rollback completes. *)
  let abort_prog p txn =
    Deadlock.remove_txn engine.Engine.deadlock txn;
    match engine.Engine.abort ~txn with
    | () ->
      incr deadlock_aborts;
      reset_prog p
    | exception Block.Would_block _ ->
      p.aborting <- true;
      set_cooldown p 4
  in
  let resolve_deadlocks () =
    let rec loop () =
      match Deadlock.find_cycle engine.Engine.deadlock with
      | None -> ()
      | Some cycle ->
        let victim = Deadlock.victim cycle in
        (match find_prog_by_txn victim with
        | Some p when p.committing ->
          (* cannot be wound once committing; it also holds no waits, so
             dropping it from the graph breaks any stale cycle *)
          Deadlock.remove_txn engine.Engine.deadlock victim
        | Some p -> abort_prog p victim
        | None -> Deadlock.remove_txn engine.Engine.deadlock victim);
        loop ()
    in
    loop ()
  in
  let progressed = ref false in
  (* One attempt to advance a script by one action.  Returns true if
     the step made progress. *)
  let advance p idx =
    let acts = actions.(idx) in
    match p.txn with
    | None ->
      let txn = engine.Engine.begin_txn ~node:p.script.Op.node in
      p.txn <- Some txn;
      Hashtbl.replace by_txn txn p;
      active.(p.script.Op.node) <- active.(p.script.Op.node) + 1;
      p.began_at <- Env.now engine.Engine.env;
      true
    | Some txn ->
      if p.step >= Array.length acts then begin
        finish_commit p txn;
        true
      end
      else begin
        (match acts.(p.step) with
        | Op.Read { pid; off } -> ignore (engine.Engine.read_cell ~txn ~pid ~off)
        | Op.Update { pid; off; delta } ->
          engine.Engine.update_delta ~txn ~pid ~off delta;
          p.effects <- Delta ((pid, off), delta) :: p.effects
        | Op.Write { pid; off; data } -> engine.Engine.update_bytes ~txn ~pid ~off data
        | Op.Savepoint name ->
          engine.Engine.savepoint ~txn name;
          p.effects <- Mark name :: p.effects
        | Op.Rollback_to name ->
          engine.Engine.rollback_to ~txn name;
          p.effects <- drop_to_mark name p.effects
        | Op.Abort_self ->
          engine.Engine.abort ~txn;
          Deadlock.clear_waits engine.Engine.deadlock txn;
          active.(p.script.Op.node) <- active.(p.script.Op.node) - 1;
          p.status <- Aborted;
          running := !running - 1;
          incr voluntary);
        if p.status = Running then begin
          p.step <- p.step + 1;
          Deadlock.clear_waits engine.Engine.deadlock txn
        end;
        true
      end
  in
  let fire = function
    | Crash node ->
      (* Scripts homed at the node lose their in-flight transaction —
         except a submitted commit whose batch already forced, which is
         durable and survives. *)
      Array.iter
        (fun p ->
          if p.status = Running && p.script.Op.node = node && p.txn <> None then crash_reset p)
        progs;
      engine.Engine.crash ~node
    | Recover nodes -> (
      (* An injected crash may already have been recovered (or never
         happened): recover only what is actually down — Recovery.run
         rejects up nodes in the crashed list.  And recover every down
         node at once, not just the scheduled ones: recovery gathers
         claims, page bases and log records from every node outside the
         crashed set, so recovering a subset while another node is still
         down reads stale disk bases for its pages and misses its log
         records entirely (observed as redo gaps on re-crash). *)
      match List.filter (fun n -> not (engine.Engine.is_up ~node:n)) nodes with
      | [] -> ()
      | _ :: _ ->
        let down =
          List.filter (fun n -> not (engine.Engine.is_up ~node:n)) engine.Engine.nodes
        in
        (* A crash point may have felled the node within this same round
           (a checkpoint event crashing mid-way just before this Recover
           fires): scripts homed there still hold transactions that died
           in the crash and must restart. *)
        Array.iter
          (fun p ->
            if p.status = Running && List.mem p.script.Op.node down && p.txn <> None then
              crash_reset p)
          progs;
        engine.Engine.recover ~nodes:down)
    | Checkpoint node -> if engine.Engine.is_up ~node then engine.Engine.checkpoint ~node
  in
  (* Process one runnable program: the same branch ladder the legacy
     per-round scan evaluated at every visit, minus the cooldown branch
     (a cooling program simply is not scheduled). *)
  let process p =
    let idx = p.idx in
    if p.aborting then (
      match p.txn with
      | Some txn ->
        if not (engine.Engine.is_up ~node:p.script.Op.node) then begin
          (* The home node crashed under the half-aborted
             transaction: its volatile state is gone and recovery
             finishes the rollback — retrying the abort after
             recovery would ask for a transaction that no longer
             exists.  Restart from scratch. *)
          Deadlock.remove_txn engine.Engine.deadlock txn;
          reset_prog p
        end
        else begin
          abort_prog p txn;
          if not p.aborting then progressed := true
        end
      | None -> p.aborting <- false)
    else if p.committing then (
      (* Poll a submitted group commit.  This branch sits BEFORE the
         advance branch: a committing transaction is no longer
         Active and must not re-enter [commit]. *)
      match p.txn with
      | Some txn -> (
        match engine.Engine.commit_outcome ~txn with
        | `Durable ->
          finalize_commit p;
          progressed := true
        | `Pending -> () (* the pump below drives the window timer *)
        | `Gone ->
          (* the batch was lost to a crash before its force: the
             commit never happened — restart the script *)
          Deadlock.remove_txn engine.Engine.deadlock txn;
          reset_prog p)
      | None -> p.committing <- false)
    else if p.txn <> None || admit.(p.script.Op.node) < mpl then begin
      (* multiprogramming limit: at most [mpl] in-flight transactions
         per node; surplus scripts wait to begin *)
      if p.txn = None then admit.(p.script.Op.node) <- admit.(p.script.Op.node) + 1;
      match advance p idx with
      | made -> if made then progressed := true
      | exception Block.Would_block reason ->
        (* A real system would queue the request; polling every
           round would melt the network, so a blocked script sits
           out a few rounds before retrying. *)
        set_cooldown p 4;
        p.last_block <- Format.asprintf "%a" Block.pp_reason reason;
        if p.txn <> None && not (engine.Engine.is_up ~node:p.script.Op.node) then
          (* The home node itself crashed mid-operation (an injected
             crash point): the in-flight transaction died with it.
             Restart it once the node is back. *)
          crash_reset p
        else
          (match (reason, p.txn) with
          | Block.Lock_conflict { blockers }, Some txn when blockers = [ txn ] ->
            (* self-blocking (e.g. the transaction's own undo chain
               pins a full log): forced abort and restart *)
            abort_prog p txn
          | Block.Lock_conflict { blockers }, Some txn -> begin
            match policy with
            | Wound_wait ->
              (* Older transactions wound younger blockers; younger
                 waiters simply wait.  Starvation-free, no cycles. *)
              List.iter
                (fun blocker ->
                  if blocker > txn then
                    match find_prog_by_txn blocker with
                    | Some q when q.committing ->
                      (* Already committing: not abortable (its fate
                         is the batch force), and its locks release
                         the moment the batch flushes — waiting is
                         both necessary and short.  With early lock
                         release on, a committing transaction has
                         already surrendered its locks at submit and
                         never shows up as a blocker here; acquirers
                         proceed under a commit dependency instead. *)
                      ()
                    | Some q -> abort_prog q blocker
                    | None -> ())
                blockers
            | Detect ->
              Deadlock.set_waits engine.Engine.deadlock ~waiter:txn ~blockers;
              resolve_deadlocks ()
          end
          | ( ( Block.Lock_conflict _ | Block.Node_down _ | Block.Log_space _
              | Block.Page_recovering _ | Block.Net_unreachable _
              | Block.Page_unavailable _ ),
              _ ) ->
            (* Net_unreachable heals by retrying: every probe drains
               the partition's budget, so sitting out the cooldown
               and retrying is the bounded-retry loop.
               Page_unavailable (deferred recovery parked the page on
               a down peer) heals the same way: the blocker's own
               recovery completes the parked redo. *)
            ())
    end
  in
  let stalled = ref 0 in
  let events = ref events in
  let known_down = Hashtbl.create 8 in
  while !running > 0 && !round < max_rounds && !stalled < 1000 do
    scan_idx := -1;
    (* With fault injection, nodes crash at protocol crash points — no
       Recover event exists for those.  Detect newly-down nodes, strand
       no scripts on them, and schedule their recovery.  This scan runs
       BEFORE the due events: a pre-scheduled Recover could otherwise
       bring the node back first, leaving scripts holding transactions
       that died in the crash. *)
    (match auto_recover with
    | None -> ()
    | Some delay ->
      List.iter
        (fun node ->
          let up = engine.Engine.is_up ~node in
          if (not up) && not (Hashtbl.mem known_down node) then begin
            Hashtbl.replace known_down node ();
            Array.iter
              (fun p ->
                if p.status = Running && p.script.Op.node = node && p.txn <> None then
                  crash_reset p)
              progs;
            events := (!round + delay, Recover [ node ]) :: !events
          end
          else if up then Hashtbl.remove known_down node)
        engine.Engine.nodes);
    let due, later = List.partition (fun (r, _) -> r <= !round) !events in
    events := later;
    (* A fired event can itself hit an injected crash point (a
       checkpoint crashing mid-way): the crash is the point, the event
       just stops.  A Recover event is special: recovery itself can die
       at a recovery-class crash point (or exhaust its retries against a
       partitioned peer), aborting the whole attempt — re-schedule it,
       so the re-entry picks up the grown down set and restarts from
       durable state.  The crash budget is bounded, so the retry chain
       terminates. *)
    List.iter
      (fun (_, e) ->
        try fire e
        with Block.Would_block _ -> (
          match e with
          | Recover _ -> events := (!round + 2, e) :: !events
          | Crash _ | Checkpoint _ -> ()))
      due;
    progressed := false;
    Array.blit active 0 admit 0 (Array.length active);
    (* Drain this round's runnable programs.  Keys pop in (round, idx)
       order, so same-round programs run in exactly the legacy scan
       order; stale entries (a reschedule moved the program's wake) are
       dropped by the [p.wake = w] check. *)
    let draining = ref true in
    while !draining do
      if Heap.is_empty runq || Heap.min_key runq asr idx_bits > !round then draining := false
      else begin
        let key = Heap.pop_min runq in
        let idx = key land idx_mask in
        let w = key asr idx_bits in
        let p = progs.(idx) in
        if p.status = Running && p.wake = w then begin
          scan_idx := idx;
          incr sched_events;
          process p;
          (* Still running with no cooldown scheduled: acts again next
             round, like every Running program under the legacy scan. *)
          if p.status = Running && p.wake <= !round then begin
            p.wake <- !round + 1;
            Heap.push runq (((!round + 1) lsl idx_bits) lor idx)
          end
        end
      end
    done;
    scan_idx := -1;
    (* Drive the group-commit window timers.  When nothing else moved
       (every client is waiting on a pending batch), the pump may jump
       the clock to the earliest batch deadline — the timer firing is
       the progress. *)
    (if engine.Engine.pump_commits ~idle:(not !progressed) then progressed := true);
    if !progressed then stalled := 0 else incr stalled;
    incr round
  done;
  let stuck = Array.fold_left (fun acc p -> if p.status = Running then acc + 1 else acc) 0 progs in
  if stuck > 0 then
    Array.iteri
      (fun i p ->
        if p.status = Running then
          Env.tracef engine.Engine.env "stuck script %d (txn=%s) at node %d step %d retries %d: %s"
            i
            (match p.txn with Some t -> string_of_int t | None -> "-")
            p.script.Op.node p.step p.retries p.last_block)
      progs;
  {
    engine;
    committed = !committed;
    voluntary_aborts = !voluntary;
    deadlock_aborts = !deadlock_aborts;
    stuck;
    rounds = !round;
    sched_events = !sched_events;
    sim_seconds = Env.now engine.Engine.env -. t0;
    latencies = Stats.summarize (Array.of_list !latencies);
    shadow = Hashtbl.fold (fun k v acc -> (k, v) :: acc) shadow [];
  }

let verify outcome =
  let engine = outcome.engine in
  (* The oracle reads must see the cluster as it is: no further faults. *)
  (match Env.faults engine.Engine.env with
  | Some inj -> Repro_fault.Injector.set_armed inj false
  | None -> ());
  let reader_node =
    let rec find i = if engine.Engine.is_up ~node:i then i else find (i + 1) in
    find 0
  in
  let txn = engine.Engine.begin_txn ~node:reader_node in
  let errors =
    List.filter_map
      (fun (((pid : Page_id.t), off), expected) ->
        let rec read attempts =
          if attempts > 10_000 then failwith "Driver.verify: blocked forever"
          else
            match engine.Engine.read_cell ~txn ~pid ~off with
            | v -> v
            | exception Block.Would_block _ -> read (attempts + 1)
        in
        let actual = read 0 in
        if Int64.equal actual expected then None
        else
          Some
            (Format.asprintf "%a@@%d: expected %Ld, found %Ld" Page_id.pp pid off expected actual))
      (List.sort compare outcome.shadow)
  in
  engine.Engine.commit ~txn:txn;
  if errors = [] then Ok () else Error errors

let pp_outcome ppf o =
  Format.fprintf ppf
    "%s: committed=%d voluntary_aborts=%d deadlock_aborts=%d stuck=%d rounds=%d sim=%a@ latency: %a"
    o.engine.Engine.name o.committed o.voluntary_aborts o.deadlock_aborts o.stuck o.rounds
    Repro_util.Pretty.seconds o.sim_seconds Stats.pp_summary o.latencies
