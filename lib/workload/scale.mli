(** Named, seed-deterministic workload profiles for big-cluster runs.

    {!Generators} hand-shapes small workloads; this layer scales named
    mixes to hundreds of nodes and thousands of clients (E14 and
    [cblsim scale]).  A (profile, seed, shape) triple fully determines
    the generated scripts: all randomness comes from the caller's RNG,
    so hand in a {!Repro_util.Rng.split} substream and historical
    streams are untouched. *)

type txn_size =
  | Fixed of int  (** every transaction runs exactly this many ops *)
  | Uniform of int * int  (** inclusive bounds *)
  | Geometric of { mean : int; cap : int }
      (** long-tailed: trials-to-success at probability [1/mean],
          truncated at [cap] *)

type profile = {
  name : string;
  description : string;
  theta : float;  (** Zipf skew over pages inside a partition *)
  owner_theta : float;
      (** Zipf skew over partitions for remote accesses — [0.] spreads
          remote traffic evenly, higher values concentrate it on a few
          hot owner nodes *)
  update_fraction : float;
  remote_fraction : float;
  txn_size : txn_size;
}

val presets : profile list
(** [uniform], [zipf-hot], [hot-owner], [read-heavy], [write-heavy],
    [mixed-geometric]. *)

val names : unit -> string list
val find : string -> profile option

val pp_txn_size : Format.formatter -> txn_size -> unit

val ops_per_txn : Repro_util.Rng.t -> txn_size -> int
(** Draw one transaction's op count (always at least 1). *)

val scripts :
  Repro_util.Rng.t ->
  profile ->
  pages_by_owner:(int * Repro_storage.Page_id.t list) list ->
  clients:int ->
  txns_per_client:int ->
  Op.script list
(** [clients] scripted clients, each homed at partition
    [client mod partitions] (its scripts run at that partition's owner
    node); remote accesses pick a partition from the [owner_theta] Zipf,
    pages inside a partition from the [theta] Zipf. *)
