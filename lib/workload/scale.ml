module Rng = Repro_util.Rng
module Zipf = Repro_util.Zipf

(* Named workload profiles for big-cluster runs (E14 / `cblsim scale`).

   [Generators] builds small hand-shaped workloads; this layer names a
   handful of reproducible mixes and scales them to hundreds of nodes
   and thousands of clients.  Everything is driven by the caller's RNG
   (hand a [Rng.split] substream in), so a (profile, seed, shape) triple
   is a complete, deterministic description of the workload. *)

type txn_size =
  | Fixed of int
  | Uniform of int * int
  | Geometric of { mean : int; cap : int }

type profile = {
  name : string;
  description : string;
  theta : float;
  owner_theta : float;
  update_fraction : float;
  remote_fraction : float;
  txn_size : txn_size;
}

let presets =
  [
    {
      name = "uniform";
      description = "uniform page access, balanced partitions, fixed 8-op txns";
      theta = 0.;
      owner_theta = 0.;
      update_fraction = 0.5;
      remote_fraction = 0.2;
      txn_size = Fixed 8;
    };
    {
      name = "zipf-hot";
      description = "Zipf(0.9) hot pages inside each partition, balanced partitions";
      theta = 0.9;
      owner_theta = 0.;
      update_fraction = 0.5;
      remote_fraction = 0.2;
      txn_size = Fixed 8;
    };
    {
      name = "hot-owner";
      description = "remote traffic skewed Zipf(0.9) onto a few hot owner nodes";
      theta = 0.6;
      owner_theta = 0.9;
      update_fraction = 0.5;
      remote_fraction = 0.4;
      txn_size = Fixed 8;
    };
    {
      name = "read-heavy";
      description = "90% reads, mild skew, uniform 4-12 op txns";
      theta = 0.6;
      owner_theta = 0.3;
      update_fraction = 0.1;
      remote_fraction = 0.2;
      txn_size = Uniform (4, 12);
    };
    {
      name = "write-heavy";
      description = "90% updates, mild skew, uniform 4-12 op txns";
      theta = 0.6;
      owner_theta = 0.3;
      update_fraction = 0.9;
      remote_fraction = 0.2;
      txn_size = Uniform (4, 12);
    };
    {
      name = "mixed-geometric";
      description = "skewed pages and owners, geometric txn sizes (mean 8, cap 32)";
      theta = 0.8;
      owner_theta = 0.5;
      update_fraction = 0.5;
      remote_fraction = 0.3;
      txn_size = Geometric { mean = 8; cap = 32 };
    };
  ]

let names () = List.map (fun p -> p.name) presets
let find name = List.find_opt (fun p -> p.name = name) presets

let pp_txn_size ppf = function
  | Fixed n -> Format.fprintf ppf "fixed %d" n
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform %d-%d" lo hi
  | Geometric { mean; cap } -> Format.fprintf ppf "geometric mean %d cap %d" mean cap

let ops_per_txn rng = function
  | Fixed n -> max 1 n
  | Uniform (lo, hi) ->
    if hi < lo then invalid_arg "Scale: uniform txn size with hi < lo";
    max 1 (lo + Rng.int rng (hi - lo + 1))
  | Geometric { mean; cap } ->
    (* trials-to-first-success with success probability 1/mean, capped:
       the classic long-tailed transaction-size model *)
    if mean < 1 then invalid_arg "Scale: geometric txn size needs mean >= 1";
    let p = 1. /. float_of_int mean in
    let u = Rng.float rng 1.0 in
    let draw = 1 + int_of_float (Float.log1p (-.u) /. Float.log1p (-.p)) in
    max 1 (min cap draw)

let cell_offset rng = 8 * Rng.int rng 16

(* Scale [clients] scripted clients over the partitions: each client
   homes at partition (client mod partitions) and its transactions mix
   home accesses with remote ones.  Remote partitions are drawn from a
   Zipf over the owner list ([owner_theta]) — the hot-owner imbalance —
   while pages inside a partition are drawn Zipf([theta]).  Op count per
   transaction follows the profile's [txn_size] distribution. *)
let scripts rng profile ~pages_by_owner ~clients ~txns_per_client =
  if pages_by_owner = [] then invalid_arg "Scale.scripts: no partitions";
  if clients <= 0 then invalid_arg "Scale.scripts: need at least one client";
  let owners = Array.of_list pages_by_owner in
  let nparts = Array.length owners in
  let nodes = Array.map fst owners in
  let page_arrays = Array.map (fun (_, pages) -> Array.of_list pages) owners in
  Array.iter
    (fun pages ->
      if Array.length pages = 0 then invalid_arg "Scale.scripts: empty partition")
    page_arrays;
  let zipfs =
    Array.map
      (fun pages -> Zipf.create ~n:(Array.length pages) ~theta:profile.theta)
      page_arrays
  in
  let owner_zipf = Zipf.create ~n:nparts ~theta:profile.owner_theta in
  List.concat
    (List.init clients (fun client ->
         let home = client mod nparts in
         List.init txns_per_client (fun _ ->
             let ops = ops_per_txn rng profile.txn_size in
             let actions =
               List.init ops (fun _ ->
                   let part =
                     if Rng.chance rng profile.remote_fraction then Zipf.sample owner_zipf rng
                     else home
                   in
                   let pages = page_arrays.(part) in
                   let pid = pages.(Zipf.sample zipfs.(part) rng) in
                   let off = cell_offset rng in
                   if Rng.chance rng profile.update_fraction then
                     Op.Update { pid; off; delta = Int64.of_int (1 + Rng.int rng 100) }
                   else Op.Read { pid; off })
             in
             { Op.node = nodes.(home); actions })))
