(** The workload driver: runs scripts against an engine, with retry,
    deadlock resolution and a durability oracle.

    Scripts are interleaved round-robin, one action per round, which
    manufactures realistic lock contention.  A step that raises
    [Would_block] is retried on a later round; lock conflicts feed the
    waits-for graph and cycles abort the youngest member (whose script
    restarts from the top with a fresh transaction).

    Scheduling is a wake-time run queue: each program carries the round
    it next acts in, and rounds drain a binary min-heap keyed on
    (wake round, program index) — O(log n) per scheduling event instead
    of the legacy O(clients) scan per round.  The pop order within a
    round is ascending program index, so schedules (and therefore every
    RNG draw and simulated-clock advance) are bit-identical to the old
    linear scan.

    The driver maintains a {b shadow} of every delta-updated cell,
    applied only at commit.  {!verify} re-reads all shadow cells through
    the engine and reports mismatches — the central correctness oracle:
    after any crash / recovery schedule, committed effects must be
    exactly present and uncommitted effects exactly absent. *)

type event =
  | Crash of int
  | Recover of int list
  | Checkpoint of int

type conflict_policy =
  | Wound_wait
      (** On a conflict, a transaction wounds (aborts) every {e younger}
          blocker and retries; younger waiters wait.  Starvation-free
          and deadlock-free — the default.  Wounded scripts restart. *)
  | Detect
      (** Maintain the waits-for graph and abort the youngest member of
          any cycle.  Subject to starvation under heavy S-lock churn;
          kept for the concurrency-control ablation. *)

type outcome = {
  engine : Engine.t;
  committed : int;
  voluntary_aborts : int;
  deadlock_aborts : int;  (** victim restarts (the scripts still finish) *)
  stuck : int;  (** scripts that could not finish — 0 on a healthy run *)
  rounds : int;
  sched_events : int;
      (** programs dispatched by the run queue — the deterministic unit
          of scheduler work (basis for sim-events/sec in scale runs) *)
  sim_seconds : float;  (** simulated time consumed by the run *)
  latencies : Repro_util.Stats.summary;  (** commit latency, simulated seconds *)
  shadow : ((Repro_storage.Page_id.t * int) * int64) list;  (** expected committed cell values *)
}

val run :
  Engine.t ->
  ?events:(int * event) list ->
  ?max_rounds:int ->
  ?policy:conflict_policy ->
  ?mpl:int ->
  ?auto_recover:int ->
  Op.script list ->
  outcome
(** [events] fire at the start of the given round (0-based).
    [max_rounds] defaults to a generous bound; exceeding it marks the
    remaining scripts stuck rather than looping forever.  [mpl] caps
    the in-flight transactions per node (multiprogramming level);
    surplus scripts queue to begin.  [auto_recover], for fault-injected
    runs, schedules a [Recover] that many rounds after a node is first
    seen down (injected crash points fire without a matching event) and
    restarts the scripts stranded on it. *)

val verify : outcome -> (unit, string list) result
(** Reads every shadow cell back through the engine (at the first
    operational node) and compares. *)

val pp_outcome : Format.formatter -> outcome -> unit
