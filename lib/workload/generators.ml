module Rng = Repro_util.Rng
module Zipf = Repro_util.Zipf

type mix = {
  ops_per_txn : int;
  update_fraction : float;
  remote_fraction : float;
  theta : float;
  savepoint_fraction : float;
  abort_fraction : float;
}

let default_mix =
  {
    ops_per_txn = 8;
    update_fraction = 0.5;
    remote_fraction = 0.3;
    theta = 0.;
    savepoint_fraction = 0.;
    abort_fraction = 0.;
  }

(* Optionally bracket the script's second half in a savepoint that is
   rolled back, and/or end it with a voluntary abort. *)
let decorate rng mix actions =
  let actions =
    if Rng.chance rng mix.savepoint_fraction then begin
      let n = List.length actions in
      let first = List.filteri (fun i _ -> i < n / 2) actions in
      let second = List.filteri (fun i _ -> i >= n / 2) actions in
      first @ (Op.Savepoint "mid" :: second) @ [ Op.Rollback_to "mid" ]
    end
    else actions
  in
  if Rng.chance rng mix.abort_fraction then actions @ [ Op.Abort_self ] else actions

(* Cells live at 8-byte-aligned offsets; using several per page makes
   before-images small while keeping multiple txns per page plausible. *)
let cell_offset rng = 8 * Rng.int rng 16

(* Pages are pre-flattened to an array per partition: a sample is one
   binary search + one array index, not an O(pages) [List.nth] walk.
   The RNG draw sequence is unchanged, so scripts are bit-identical. *)
let pick_zipf rng zipf pages = pages.(Zipf.sample zipf rng)

let action_of rng mix pid =
  let off = cell_offset rng in
  if Rng.chance rng mix.update_fraction then
    Op.Update { pid; off; delta = Int64.of_int (1 + Rng.int rng 100) }
  else Op.Read { pid; off }

let partitioned rng ~pages_by_owner ~clients ~txns_per_client ~mix =
  if pages_by_owner = [] then invalid_arg "Generators.partitioned: no partitions";
  let owners = Array.of_list pages_by_owner in
  let page_arrays = Array.map (fun (_, pages) -> Array.of_list pages) owners in
  let zipfs =
    Array.map (fun pages -> Zipf.create ~n:(Array.length pages) ~theta:mix.theta) page_arrays
  in
  List.concat_map
    (fun client ->
      (* Home partition: clients cycle over the owner list. *)
      let home = client mod Array.length owners in
      List.init txns_per_client (fun _ ->
          let actions =
            List.init mix.ops_per_txn (fun _ ->
                let part =
                  if Rng.chance rng mix.remote_fraction then Rng.int rng (Array.length owners)
                  else home
                in
                action_of rng mix (pick_zipf rng zipfs.(part) page_arrays.(part)))
          in
          { Op.node = client; actions = decorate rng mix actions }))
    clients

let hotspot rng ~pages ~clients ~txns_per_client ~mix =
  if pages = [] then invalid_arg "Generators.hotspot: no pages";
  let page_array = Array.of_list pages in
  let zipf = Zipf.create ~n:(Array.length page_array) ~theta:mix.theta in
  List.concat_map
    (fun client ->
      List.init txns_per_client (fun _ ->
          let actions =
            List.init mix.ops_per_txn (fun _ -> action_of rng mix (pick_zipf rng zipf page_array))
          in
          { Op.node = client; actions = decorate rng mix actions }))
    clients

let checkout rng ~pages ~client ~documents ~revisions =
  if List.length pages < documents then invalid_arg "Generators.checkout: not enough pages";
  let docs = List.filteri (fun i _ -> i < documents) pages in
  List.init revisions (fun _ ->
      let actions =
        List.concat_map
          (fun pid ->
            [
              Op.Read { pid; off = 0 };
              Op.Update { pid; off = cell_offset rng; delta = 1L };
            ])
          docs
      in
      { Op.node = client; actions })

let ping_pong ~pages ~nodes:(a, b) ~rounds =
  List.init (2 * rounds) (fun i ->
      let node = if i mod 2 = 0 then a else b in
      let actions = List.map (fun pid -> Op.Update { pid; off = 0; delta = 1L }) pages in
      { Op.node; actions })
