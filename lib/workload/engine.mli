(** Engine handle: the uniform interface the driver and benches use.

    The CBL cluster and every baseline expose one of these, so a single
    driver runs the same workload over each scheme and the per-scheme
    metric counters become directly comparable rows of the experiment
    tables.  All transactional operations may raise
    {!Repro_cbl.Block.Would_block}. *)

open Repro_storage

type t = {
  name : string;
  begin_txn : node:int -> int;
  read_cell : txn:int -> pid:Page_id.t -> off:int -> int64;
  update_delta : txn:int -> pid:Page_id.t -> off:int -> int64 -> unit;
  update_bytes : txn:int -> pid:Page_id.t -> off:int -> string -> unit;
  savepoint : txn:int -> string -> unit;
  rollback_to : txn:int -> string -> unit;
  commit : txn:int -> unit;
  commit_outcome : txn:int -> [ `Pending | `Durable | `Gone ];
      (** Group commit: where a submitted commit stands.  [`Durable] is
          read-once; without batching every commit answers [`Durable]
          exactly once right after [commit] returns. *)
  pump_commits : idle:bool -> bool;
      (** Drive the group-commit window timers; [idle] means no client
          made progress this round, allowing a clock jump to the next
          batch deadline.  Returns whether any batch moved. *)
  abort : txn:int -> unit;
  checkpoint : node:int -> unit;
  crash : node:int -> unit;
  recover : nodes:int list -> unit;
  is_up : node:int -> bool;
  nodes : int list;  (** all node ids, for health scans (fault injection) *)
  deadlock : Repro_lock.Deadlock.t;
  env : Repro_sim.Env.t;
}

val of_cluster : Repro_cbl.Cluster.t -> t
(** The paper's system. *)
