module Cluster = Repro_cbl.Cluster
module Node_state = Repro_cbl.Node_state
module Engine = Repro_workload.Engine

type built = {
  engine : Engine.t;
  cluster : Cluster.t;
  pages_by_owner : (int * Repro_storage.Page_id.t list) list;
}

let build ?(seed = 42) ?(pool_capacity = 64) ~nodes ~owners ~pages_per_owner ~scheme ~name
    config =
  let cluster = Cluster.create ~seed ~pool_capacity ~scheme ~nodes config in
  Repro_obs.Recorder.set_label
    (Repro_sim.Env.obs (Cluster.env cluster))
    (Node_state.scheme_name scheme);
  let pages_by_owner =
    List.map (fun o -> (o, Cluster.allocate_pages cluster ~owner:o ~count:pages_per_owner)) owners
  in
  let engine = { (Engine.of_cluster cluster) with Engine.name } in
  { engine; cluster; pages_by_owner }

let cbl ?seed ?pool_capacity ~nodes ~owners ~pages_per_owner config =
  build ?seed ?pool_capacity ~nodes ~owners ~pages_per_owner ~scheme:Node_state.Local_logging
    ~name:"cbl" config

let server_logging ?seed ?pool_capacity ~nodes ~pages config =
  build ?seed ?pool_capacity ~nodes ~owners:[ 0 ] ~pages_per_owner:pages
    ~scheme:(Node_state.Server_logging { server = 0 })
    ~name:"server-logging" config

let pca ?seed ?pool_capacity ~nodes ~owners ~pages_per_owner config =
  build ?seed ?pool_capacity ~nodes ~owners ~pages_per_owner ~scheme:Node_state.Pca_double_logging
    ~name:"pca" config

let global_log ?seed ?pool_capacity ~nodes ~owners ~pages_per_owner config =
  build ?seed ?pool_capacity ~nodes ~owners ~pages_per_owner
    ~scheme:(Node_state.Global_log { log_node = 0 })
    ~name:"global-log" config

let all ?seed ?pool_capacity ~nodes ~pages_per_owner config =
  let owners = if nodes > 2 then [ 0; 2 ] else [ 0 ] in
  [
    cbl ?seed ?pool_capacity ~nodes ~owners ~pages_per_owner config;
    server_logging ?seed ?pool_capacity ~nodes
      ~pages:(pages_per_owner * List.length owners)
      config;
    pca ?seed ?pool_capacity ~nodes ~owners ~pages_per_owner config;
    global_log ?seed ?pool_capacity ~nodes ~owners ~pages_per_owner config;
  ]
