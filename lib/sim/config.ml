type t = {
  net_latency : float;
  net_per_byte : float;
  disk_seek : float;
  disk_per_byte : float;
  log_force_seek : float;
  cpu_per_log_record : float;
  cpu_per_lock_op : float;
  page_size : int;
  group_commit_window_ms : float;
  group_commit_max_batch : int;
  early_release : bool;
}

let default =
  {
    net_latency = 1.0e-3;
    net_per_byte = 0.8e-6 (* ~10 Mb/s *);
    disk_seek = 10.0e-3;
    disk_per_byte = 0.05e-6 (* ~20 MB/s transfer *);
    log_force_seek = 2.0e-3;
    cpu_per_log_record = 20.0e-6;
    cpu_per_lock_op = 5.0e-6;
    page_size = 8192;
    group_commit_window_ms = 0.;
    group_commit_max_batch = 1;
    early_release = false;
  }

let instant =
  {
    net_latency = 0.;
    net_per_byte = 0.;
    disk_seek = 0.;
    disk_per_byte = 0.;
    log_force_seek = 0.;
    cpu_per_log_record = 0.;
    cpu_per_lock_op = 0.;
    page_size = 512;
    group_commit_window_ms = 0.;
    group_commit_max_batch = 1;
    early_release = false;
  }

let with_net_latency t v = { t with net_latency = v }
let with_page_size t v = { t with page_size = v }

let with_group_commit t ~window_ms ~max_batch =
  { t with group_commit_window_ms = window_ms; group_commit_max_batch = max_batch }

let group_commit_enabled t = t.group_commit_max_batch > 1
let with_early_release t v = { t with early_release = v }
let early_release_enabled t = t.early_release && group_commit_enabled t

let pp ppf t =
  Format.fprintf ppf
    "net=%.2gs+%.2gs/B disk_seek=%.2gs log_force=%.2gs cpu/rec=%.2gs page=%dB" t.net_latency
    t.net_per_byte t.disk_seek t.log_force_seek t.cpu_per_log_record t.page_size

let to_json t =
  Repro_obs.Json.(
    Obj
      [
        ("net_latency", Float t.net_latency);
        ("net_per_byte", Float t.net_per_byte);
        ("disk_seek", Float t.disk_seek);
        ("disk_per_byte", Float t.disk_per_byte);
        ("log_force_seek", Float t.log_force_seek);
        ("cpu_per_log_record", Float t.cpu_per_log_record);
        ("cpu_per_lock_op", Float t.cpu_per_lock_op);
        ("page_size", Int t.page_size);
        ("group_commit_window_ms", Float t.group_commit_window_ms);
        ("group_commit_max_batch", Int t.group_commit_max_batch);
        ("early_release", Bool t.early_release);
      ])
