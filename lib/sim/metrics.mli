(** Counters that back every experiment.

    Each node carries a [t]; the cluster also aggregates one.  Counters
    are plain mutable ints bumped on the hot paths; a snapshot is a
    copy, and [diff] subtracts snapshots so a bench can measure exactly
    the interval it cares about. *)

type t = {
  mutable node : int;
      (** which node these counters belong to; [-1] = global / unattributed.
          Excluded from arithmetic ([reset]/[diff]/[merge_into] leave it
          alone) — it exists so charge primitives can attribute typed
          trace events without widening their signatures. *)
  mutable messages_sent : int;  (** inter-node protocol messages *)
  mutable message_bytes : int;
  mutable commit_messages : int;  (** messages on the commit path only — the paper's headline count *)
  mutable log_appends : int;
  mutable log_bytes : int;
  mutable log_forces : int;  (** synchronous log-disk forces *)
  mutable log_records_shipped : int;  (** records sent to a remote log (baselines only) *)
  mutable page_disk_reads : int;
  mutable page_disk_writes : int;
  mutable commit_page_writes : int;  (** pages forced at commit (forced-write baselines) *)
  mutable pages_shipped : int;  (** pages moved between node caches *)
  mutable callbacks_sent : int;
  mutable lock_requests_remote : int;  (** lock requests that left the node *)
  mutable lock_requests_local : int;  (** satisfied from the local lock cache *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable txn_committed : int;
  mutable txn_aborted : int;
  mutable commit_batches : int;  (** group-commit batches forced (shared forces) *)
  mutable batched_commits : int;  (** commits whose force was shared via group commit *)
  mutable recovery_log_records_scanned : int;
  mutable recovery_pages_redone : int;
  mutable recovery_messages : int;
  mutable recovery_page_transfers : int;
  mutable recovery_restarts : int;  (** recovery runs aborted by a nested crash and re-entered *)
  mutable recovery_deferred_pages : int;  (** pages parked awaiting a down peer *)
  mutable recovery_deferred_completed : int;  (** parked pages finished after the peer returned *)
  mutable recovery_retries : int;  (** recovery exchanges retried after a drop/partition *)
  mutable checkpoints_taken : int;
  mutable log_space_stalls : int;  (** times a txn waited for log space (E6) *)
  mutable flush_requests : int;  (** §2.5 owner-force requests *)
  mutable net_msgs_dropped : int;  (** injected: message attempts lost then retransmitted *)
  mutable net_msgs_duplicated : int;  (** injected: messages delivered twice *)
  mutable net_msgs_delayed : int;  (** injected: messages held in a queue (reordering) *)
  mutable net_link_blocks : int;  (** injected: sends refused by a temporary partition *)
  mutable torn_crashes : int;  (** injected: crashes that tore the unforced log tail *)
  mutable torn_bytes_discarded : int;  (** torn-tail bytes trimmed by the recovery seal *)
  mutable injected_crashes : int;  (** crashes fired at protocol crash points *)
  mutable trace_events_dropped : int;
      (** recorder ring overwrites (always 0 when tracing is off) *)
  mutable busy_seconds : float;
      (** simulated seconds of work performed {e by this node} — the
          makespan of a run is bounded below by the busiest node's
          [busy_seconds], which is how the throughput experiments (E2)
          expose the server bottleneck without a full parallel DES *)
}

val create : ?node:int -> unit -> t
val reset : t -> unit
val snapshot : t -> t
val diff : after:t -> before:t -> t
(** Field-wise subtraction. *)

val merge_into : dst:t -> t -> unit
(** Field-wise addition, for cluster aggregates. *)

val pp : Format.formatter -> t -> unit
(** One counter per line, zero-valued counters omitted. *)

val pp_with : show_zeros:bool -> Format.formatter -> t -> unit
(** Like [pp], but [~show_zeros:true] prints every counter — use where
    a zero {e is} the claim (e.g. E1's [log_records_shipped = 0]). *)

val to_alist : t -> (string * int) list
(** Stable field order; used by the bench harness to print table rows. *)

val to_json : t -> Repro_obs.Json.t
(** All counters (zeros included) plus [node] and [busy_seconds]. *)

val of_json : Repro_obs.Json.t -> t
(** Inverse of [to_json]; missing fields default to zero. *)
