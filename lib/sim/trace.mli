(** Structured event trace — compatibility face of the typed recorder.

    Historically this was a string list; it is now an alias for
    {!Repro_obs.Recorder.t}, a bounded ring of typed events.  The
    legacy API survives unchanged: [event] records a free-text [Note],
    [events] renders every event to one line, [contains] substring-
    searches the rendering (now with an allocation-free scan instead of
    the old [String.sub]-per-position probe).  Tests assert on the
    presence / order of events; the CLI's [--trace] flag prints them.
    Disabled tracing costs a single branch. *)

type t = Repro_obs.Recorder.t

val create : ?enabled:bool -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val recorder : t -> Repro_obs.Recorder.t
(** The underlying typed recorder (identity — for call-site clarity). *)

val of_recorder : Repro_obs.Recorder.t -> t

val event : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Records a formatted event (no-op when disabled). *)

val events : t -> string list
(** All recorded events rendered to one line each, oldest first. *)

val clear : t -> unit

val contains : t -> string -> bool
(** [contains t needle] — substring search over rendered events; the
    test-suite's main assertion primitive. *)

val dump : Format.formatter -> t -> unit

val to_jsonl : t -> string
(** Typed events as JSON lines (oldest first). *)
