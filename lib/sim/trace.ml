module Recorder = Repro_obs.Recorder
module Event = Repro_obs.Event

type t = Recorder.t

let create ?(enabled = false) () = Recorder.create ~enabled ()
let enabled = Recorder.enabled
let set_enabled = Recorder.set_enabled
let recorder t = t
let of_recorder r = r

let event t fmt =
  if Recorder.enabled t then Format.kasprintf (fun s -> Recorder.note t s) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let events t = List.map Event.render (Recorder.events t)
let clear = Recorder.clear

let contains t needle =
  List.exists (fun e -> Event.substring ~needle (Event.render e)) (Recorder.events t)

let dump ppf t = List.iter (fun e -> Format.fprintf ppf "%s@." e) (events t)
let to_jsonl = Recorder.to_jsonl
