(** The shared simulation environment: one per cluster.

    Bundles the cost model, the simulated clock, the trace and the global
    metrics aggregate, and exposes the charging primitives that all
    substrates use.  Each charge advances the clock by the configured
    cost and bumps the relevant counters both in the caller's (per-node)
    metrics and in the global aggregate. *)

type t

val create :
  ?trace:bool ->
  ?trace_capacity:int ->
  ?seed:int ->
  ?faults:Repro_fault.Injector.t ->
  Config.t ->
  t
(** [faults] installs a deterministic fault injector; every message,
    crash and protocol crash point consults it.  Absent, no fault code
    runs at all.  [trace_capacity] sizes the event ring (default
    65536); audit runs raise it so long faulted traces are not
    truncated. *)

val config : t -> Config.t
val clock : t -> Clock.t
val now : t -> float
val trace : t -> Trace.t
val obs : t -> Repro_obs.Recorder.t
(** Same value as [trace] ([Trace.t] is an alias); named for call sites
    that use the typed API. *)

val rng : t -> Repro_util.Rng.t
val global_metrics : t -> Metrics.t

val faults : t -> Repro_fault.Injector.t option
(** The cluster's fault injector, if one is installed. *)

val tracing : t -> bool
(** Whether event recording is on.  Hot paths must check this before
    building attribute lists. *)

val tracef : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Shorthand for [Trace.event (trace t)]. *)

val emit : t -> node:int -> Repro_obs.Event.kind -> (string * Repro_obs.Event.value) list -> unit
(** Emit a typed event at the current simulated time (no-op when
    tracing is off — but guard attr construction with [tracing]). *)

val with_txn : t -> txn:int -> span:int -> (unit -> 'a) -> 'a
(** Run [f] with the causal trace context set to [(txn, span)]: every
    event emitted while it runs — on any node — is stamped as caused by
    [txn].  Contexts nest (saved and restored around [f], exceptions
    included); one branch and no allocation when tracing is off. *)

val message_cost : t -> bytes:int -> float
(** The clock advance [charge_message] would make for [bytes]. *)

val log_force_cost : t -> bytes:int -> float
(** The clock advance [charge_log_force] would make for [bytes]. *)

val observe : t -> name:string -> node:int -> float -> unit
(** Record a latency sample (seconds) into the named histogram, per
    node and cluster-wide.  Always on; never touches clock/metrics. *)

val hist : t -> name:string -> node:int -> Repro_obs.Log_hist.t

(** {1 Charging primitives}

    Every primitive takes the per-node metrics of the node doing the
    work.  [recovery] marks counters that should land in the recovery
    columns instead of the normal-processing ones. *)

val charge_message : t -> Metrics.t -> ?commit_path:bool -> ?recovery:bool -> bytes:int -> unit -> unit
val charge_page_read : t -> Metrics.t -> unit
val charge_page_write : t -> Metrics.t -> ?commit_path:bool -> unit -> unit
val charge_log_append : t -> Metrics.t -> bytes:int -> unit

val charge_log_force : t -> Metrics.t -> ?durable:int -> bytes:int -> unit -> unit
(** A synchronous force of [bytes] of buffered log.  [durable] is the
    log's durable boundary after the force; when tracing, it rides on
    the [Log_force] event for the trace auditor's WAL check. *)

val charge_log_force_shared : t -> Metrics.t -> ?durable:int -> bytes:int -> sharers:int -> unit -> unit
(** One physical log force whose cost is shared by [sharers]
    concurrently committing transactions (group commit).  Charges the
    same seek+transfer time as {!charge_log_force} — once, not per
    sharer — and additionally bumps the [commit_batches] /
    [batched_commits] counters. *)

val charge_log_scan_record : t -> Metrics.t -> bytes:int -> unit
(** Reading one record during a recovery scan. *)

val charge_lock_op : t -> Metrics.t -> unit
val charge_cpu : t -> float -> unit
(** Raw CPU time, for costs with no dedicated counter. *)

val charge_cpu_for : t -> Metrics.t -> float -> unit
(** Raw CPU time attributed to a node's busy-time accounting. *)
