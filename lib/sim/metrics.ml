type t = {
  mutable node : int;
  mutable messages_sent : int;
  mutable message_bytes : int;
  mutable commit_messages : int;
  mutable log_appends : int;
  mutable log_bytes : int;
  mutable log_forces : int;
  mutable log_records_shipped : int;
  mutable page_disk_reads : int;
  mutable page_disk_writes : int;
  mutable commit_page_writes : int;
  mutable pages_shipped : int;
  mutable callbacks_sent : int;
  mutable lock_requests_remote : int;
  mutable lock_requests_local : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable txn_committed : int;
  mutable txn_aborted : int;
  mutable commit_batches : int;
  mutable batched_commits : int;
  mutable recovery_log_records_scanned : int;
  mutable recovery_pages_redone : int;
  mutable recovery_messages : int;
  mutable recovery_page_transfers : int;
  mutable recovery_restarts : int;
  mutable recovery_deferred_pages : int;
  mutable recovery_deferred_completed : int;
  mutable recovery_retries : int;
  mutable checkpoints_taken : int;
  mutable log_space_stalls : int;
  mutable flush_requests : int;
  mutable net_msgs_dropped : int;
  mutable net_msgs_duplicated : int;
  mutable net_msgs_delayed : int;
  mutable net_link_blocks : int;
  mutable torn_crashes : int;
  mutable torn_bytes_discarded : int;
  mutable injected_crashes : int;
  mutable trace_events_dropped : int;
      (* ring-buffer overwrites in the event recorder; always 0 when
         tracing is off, so untraced metrics stay bit-identical *)
  mutable busy_seconds : float;
}

let create ?(node = -1) () =
  {
    node;
    messages_sent = 0;
    message_bytes = 0;
    commit_messages = 0;
    log_appends = 0;
    log_bytes = 0;
    log_forces = 0;
    log_records_shipped = 0;
    page_disk_reads = 0;
    page_disk_writes = 0;
    commit_page_writes = 0;
    pages_shipped = 0;
    callbacks_sent = 0;
    lock_requests_remote = 0;
    lock_requests_local = 0;
    cache_hits = 0;
    cache_misses = 0;
    txn_committed = 0;
    txn_aborted = 0;
    commit_batches = 0;
    batched_commits = 0;
    recovery_log_records_scanned = 0;
    recovery_pages_redone = 0;
    recovery_messages = 0;
    recovery_page_transfers = 0;
    recovery_restarts = 0;
    recovery_deferred_pages = 0;
    recovery_deferred_completed = 0;
    recovery_retries = 0;
    checkpoints_taken = 0;
    log_space_stalls = 0;
    flush_requests = 0;
    net_msgs_dropped = 0;
    net_msgs_duplicated = 0;
    net_msgs_delayed = 0;
    net_link_blocks = 0;
    torn_crashes = 0;
    torn_bytes_discarded = 0;
    injected_crashes = 0;
    trace_events_dropped = 0;
    busy_seconds = 0.;
  }

let fields =
  [
    ("messages_sent", (fun t -> t.messages_sent), fun t v -> t.messages_sent <- v);
    ("message_bytes", (fun t -> t.message_bytes), fun t v -> t.message_bytes <- v);
    ("commit_messages", (fun t -> t.commit_messages), fun t v -> t.commit_messages <- v);
    ("log_appends", (fun t -> t.log_appends), fun t v -> t.log_appends <- v);
    ("log_bytes", (fun t -> t.log_bytes), fun t v -> t.log_bytes <- v);
    ("log_forces", (fun t -> t.log_forces), fun t v -> t.log_forces <- v);
    ( "log_records_shipped",
      (fun t -> t.log_records_shipped),
      fun t v -> t.log_records_shipped <- v );
    ("page_disk_reads", (fun t -> t.page_disk_reads), fun t v -> t.page_disk_reads <- v);
    ("page_disk_writes", (fun t -> t.page_disk_writes), fun t v -> t.page_disk_writes <- v);
    ("commit_page_writes", (fun t -> t.commit_page_writes), fun t v -> t.commit_page_writes <- v);
    ("pages_shipped", (fun t -> t.pages_shipped), fun t v -> t.pages_shipped <- v);
    ("callbacks_sent", (fun t -> t.callbacks_sent), fun t v -> t.callbacks_sent <- v);
    ( "lock_requests_remote",
      (fun t -> t.lock_requests_remote),
      fun t v -> t.lock_requests_remote <- v );
    ( "lock_requests_local",
      (fun t -> t.lock_requests_local),
      fun t v -> t.lock_requests_local <- v );
    ("cache_hits", (fun t -> t.cache_hits), fun t v -> t.cache_hits <- v);
    ("cache_misses", (fun t -> t.cache_misses), fun t v -> t.cache_misses <- v);
    ("txn_committed", (fun t -> t.txn_committed), fun t v -> t.txn_committed <- v);
    ("txn_aborted", (fun t -> t.txn_aborted), fun t v -> t.txn_aborted <- v);
    ("commit_batches", (fun t -> t.commit_batches), fun t v -> t.commit_batches <- v);
    ("batched_commits", (fun t -> t.batched_commits), fun t v -> t.batched_commits <- v);
    ( "recovery_log_records_scanned",
      (fun t -> t.recovery_log_records_scanned),
      fun t v -> t.recovery_log_records_scanned <- v );
    ( "recovery_pages_redone",
      (fun t -> t.recovery_pages_redone),
      fun t v -> t.recovery_pages_redone <- v );
    ("recovery_messages", (fun t -> t.recovery_messages), fun t v -> t.recovery_messages <- v);
    ( "recovery_page_transfers",
      (fun t -> t.recovery_page_transfers),
      fun t v -> t.recovery_page_transfers <- v );
    ("recovery_restarts", (fun t -> t.recovery_restarts), fun t v -> t.recovery_restarts <- v);
    ( "recovery_deferred_pages",
      (fun t -> t.recovery_deferred_pages),
      fun t v -> t.recovery_deferred_pages <- v );
    ( "recovery_deferred_completed",
      (fun t -> t.recovery_deferred_completed),
      fun t v -> t.recovery_deferred_completed <- v );
    ("recovery_retries", (fun t -> t.recovery_retries), fun t v -> t.recovery_retries <- v);
    ("checkpoints_taken", (fun t -> t.checkpoints_taken), fun t v -> t.checkpoints_taken <- v);
    ("log_space_stalls", (fun t -> t.log_space_stalls), fun t v -> t.log_space_stalls <- v);
    ("flush_requests", (fun t -> t.flush_requests), fun t v -> t.flush_requests <- v);
    ("net_msgs_dropped", (fun t -> t.net_msgs_dropped), fun t v -> t.net_msgs_dropped <- v);
    ( "net_msgs_duplicated",
      (fun t -> t.net_msgs_duplicated),
      fun t v -> t.net_msgs_duplicated <- v );
    ("net_msgs_delayed", (fun t -> t.net_msgs_delayed), fun t v -> t.net_msgs_delayed <- v);
    ("net_link_blocks", (fun t -> t.net_link_blocks), fun t v -> t.net_link_blocks <- v);
    ("torn_crashes", (fun t -> t.torn_crashes), fun t v -> t.torn_crashes <- v);
    ( "torn_bytes_discarded",
      (fun t -> t.torn_bytes_discarded),
      fun t v -> t.torn_bytes_discarded <- v );
    ("injected_crashes", (fun t -> t.injected_crashes), fun t v -> t.injected_crashes <- v);
    ( "trace_events_dropped",
      (fun t -> t.trace_events_dropped),
      fun t v -> t.trace_events_dropped <- v );
  ]

let reset t =
  List.iter (fun (_, _, set) -> set t 0) fields;
  t.busy_seconds <- 0.

let snapshot t =
  let s = create ~node:t.node () in
  List.iter (fun (_, get, set) -> set s (get t)) fields;
  s.busy_seconds <- t.busy_seconds;
  s

let diff ~after ~before =
  let d = create ~node:after.node () in
  List.iter (fun (_, get, set) -> set d (get after - get before)) fields;
  d.busy_seconds <- after.busy_seconds -. before.busy_seconds;
  d

let merge_into ~dst src =
  List.iter (fun (_, get, set) -> set dst (get dst + get src)) fields;
  dst.busy_seconds <- dst.busy_seconds +. src.busy_seconds

let pp_with ~show_zeros ppf t =
  List.iter
    (fun (name, get, _) ->
      if show_zeros || get t <> 0 then Format.fprintf ppf "%-30s %d@." name (get t))
    fields;
  if show_zeros || t.busy_seconds <> 0. then
    Format.fprintf ppf "%-30s %.6f@." "busy_seconds" t.busy_seconds

let pp ppf t = pp_with ~show_zeros:false ppf t
let to_alist t = List.map (fun (name, get, _) -> (name, get t)) fields

module Json = Repro_obs.Json

let to_json t =
  Json.Obj
    (("node", Json.Int t.node)
    :: List.map (fun (name, get, _) -> (name, Json.Int (get t))) fields
    @ [ ("busy_seconds", Json.Float t.busy_seconds) ])

let of_json j =
  let t = create () in
  (match Json.member "node" j with
  | Some v -> ( match Json.to_int_opt v with Some n -> t.node <- n | None -> ())
  | None -> ());
  List.iter
    (fun (name, _, set) ->
      match Option.bind (Json.member name j) Json.to_int_opt with
      | Some v -> set t v
      | None -> ())
    fields;
  (match Option.bind (Json.member "busy_seconds" j) Json.to_float_opt with
  | Some v -> t.busy_seconds <- v
  | None -> ());
  t
