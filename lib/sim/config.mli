(** Cost model for the simulated cluster.

    The paper's claims are about counts — messages on the commit path,
    forced I/Os, log records scanned at recovery — and about how those
    counts translate into latency and throughput on given hardware.  The
    simulator therefore charges every primitive action a configurable cost
    in simulated seconds; sweeping these knobs regenerates the latency /
    throughput experiments (E2, E3, E7).

    Defaults approximate mid-1990s hardware from the paper's era
    (10 Mb/s LAN, ~10 ms disk): the absolute numbers do not matter, only
    the ratios between schemes. *)

type t = {
  net_latency : float;  (** one-way message latency, seconds *)
  net_per_byte : float;  (** transmission cost per payload byte, seconds *)
  disk_seek : float;  (** positioning cost of a random page read/write *)
  disk_per_byte : float;  (** sequential transfer cost per byte *)
  log_force_seek : float;
      (** positioning cost of a log force; lower than [disk_seek]
          because the log head stays put between forces *)
  cpu_per_log_record : float;  (** CPU to build / apply one log record *)
  cpu_per_lock_op : float;  (** CPU of a lock table operation *)
  page_size : int;  (** bytes per database page *)
  group_commit_window_ms : float;
      (** group-commit batching window in *milliseconds* of simulated
          time: a batch leader waits at most this long for followers
          before forcing.  Ignored when [group_commit_max_batch <= 1]. *)
  group_commit_max_batch : int;
      (** maximum commits sharing one log force.  [1] (the default)
          disables group commit entirely — every commit forces alone,
          bit-identical to the pre-group-commit behaviour. *)
  early_release : bool;
      (** controlled lock violation: a committing transaction releases
          its page locks at batch-submit time instead of holding them
          across the group-commit window; readers/overwriters of those
          pages record commit dependencies on it.  [false] (the
          default) keeps the strict-2PL pipeline bit-identical to the
          pre-ELR behaviour.  Only meaningful when group commit is on
          (see {!early_release_enabled}). *)
}

val default : t
(** 1 ms one-way LAN latency, 10 ms disk seek, 2 ms log force, 8 KiB
    pages. *)

val instant : t
(** All costs zero — used by unit tests that only check behaviour, and by
    property tests where simulated time is irrelevant. *)

val with_net_latency : t -> float -> t
val with_page_size : t -> int -> t

val with_group_commit : t -> window_ms:float -> max_batch:int -> t
(** Set the group-commit knobs; [max_batch = 1] turns batching off. *)

val group_commit_enabled : t -> bool
(** [true] iff [group_commit_max_batch > 1]. *)

val with_early_release : t -> bool -> t
(** Toggle early lock release (controlled lock violation). *)

val early_release_enabled : t -> bool
(** [true] iff [early_release] is set AND group commit is on: without a
    batch window there is no lock-hold interval to shorten, and the
    single-force pipeline must stay bit-identical. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Repro_obs.Json.t
