module Recorder = Repro_obs.Recorder
module Event = Repro_obs.Event

type t = {
  config : Config.t;
  clock : Clock.t;
  obs : Recorder.t;
  rng : Repro_util.Rng.t;
  global : Metrics.t;
  faults : Repro_fault.Injector.t option;
}

let create ?(trace = false) ?trace_capacity ?(seed = 42) ?faults config =
  {
    config;
    clock = Clock.create ();
    obs = Recorder.create ~enabled:trace ?capacity:trace_capacity ();
    rng = Repro_util.Rng.create seed;
    global = Metrics.create ();
    faults;
  }

let config t = t.config
let clock t = t.clock
let now t = Clock.now t.clock
let obs t = t.obs
let trace t = t.obs
let rng t = t.rng
let global_metrics t = t.global
let faults t = t.faults
let tracing t = Recorder.enabled t.obs
let tracef t fmt = Trace.event t.obs fmt

let emit t ~node kind attrs =
  if Recorder.enabled t.obs then begin
    Recorder.emit t.obs ~time:(now t) ~node kind attrs;
    (* mirror the ring's overwrite counter so metrics exports carry it;
       stays 0 when tracing is off — untraced metrics are untouched *)
    t.global.Metrics.trace_events_dropped <- Recorder.dropped t.obs
  end

(* Scope the causal trace context (txn, span) around [f]: every event
   emitted while [f] runs — on any node — is stamped as caused by
   [txn].  Contexts nest (save/restore), and the whole mechanism is a
   single branch when tracing is off. *)
let with_txn t ~txn ~span f =
  if not (Recorder.enabled t.obs) then f ()
  else begin
    let saved_txn, saved_span = Recorder.context t.obs in
    Recorder.set_context t.obs ~txn ~span;
    Fun.protect
      ~finally:(fun () -> Recorder.set_context t.obs ~txn:saved_txn ~span:saved_span)
      f
  end

let observe t ~name ~node v = Recorder.observe t.obs ~name ~node v
let hist t ~name ~node = Recorder.hist t.obs ~name ~node

(* Cost formulas, exposed so emit sites outside this module (the
   network choke point) can attach the charged duration to their events
   without re-deriving the model. *)
let message_cost t ~bytes = t.config.net_latency +. (t.config.net_per_byte *. float_of_int bytes)
let log_force_cost t ~bytes = t.config.log_force_seek +. (t.config.disk_per_byte *. float_of_int bytes)

let both t m f =
  f m;
  f t.global

let busy t m dt =
  m.Metrics.busy_seconds <- m.Metrics.busy_seconds +. dt;
  t.global.Metrics.busy_seconds <- t.global.Metrics.busy_seconds +. dt

let charge_message t m ?(commit_path = false) ?(recovery = false) ~bytes () =
  let dt = message_cost t ~bytes in
  Clock.advance t.clock dt;
  busy t m dt;
  both t m (fun c ->
      c.Metrics.messages_sent <- c.Metrics.messages_sent + 1;
      c.Metrics.message_bytes <- c.Metrics.message_bytes + bytes;
      if commit_path then c.Metrics.commit_messages <- c.Metrics.commit_messages + 1;
      if recovery then c.Metrics.recovery_messages <- c.Metrics.recovery_messages + 1)

let charge_page_read t m =
  let dt = t.config.disk_seek +. (t.config.disk_per_byte *. float_of_int t.config.page_size) in
  Clock.advance t.clock dt;
  busy t m dt;
  both t m (fun c -> c.Metrics.page_disk_reads <- c.Metrics.page_disk_reads + 1);
  if Recorder.enabled t.obs then
    Recorder.emit t.obs ~time:(now t) ~node:m.Metrics.node Event.Page_read
      [ ("dur", Event.Float dt) ]

let charge_page_write t m ?(commit_path = false) () =
  let dt = t.config.disk_seek +. (t.config.disk_per_byte *. float_of_int t.config.page_size) in
  Clock.advance t.clock dt;
  busy t m dt;
  both t m (fun c ->
      c.Metrics.page_disk_writes <- c.Metrics.page_disk_writes + 1;
      if commit_path then c.Metrics.commit_page_writes <- c.Metrics.commit_page_writes + 1);
  if Recorder.enabled t.obs then
    Recorder.emit t.obs ~time:(now t) ~node:m.Metrics.node Event.Page_write
      (("dur", Event.Float dt) :: (if commit_path then [ ("commit", Event.Bool true) ] else []))

let charge_log_append t m ~bytes =
  Clock.advance t.clock t.config.cpu_per_log_record;
  busy t m t.config.cpu_per_log_record;
  both t m (fun c ->
      c.Metrics.log_appends <- c.Metrics.log_appends + 1;
      c.Metrics.log_bytes <- c.Metrics.log_bytes + bytes);
  if Recorder.enabled t.obs then
    Recorder.emit t.obs ~time:(now t) ~node:m.Metrics.node Event.Log_append
      [ ("bytes", Event.Int bytes); ("dur", Event.Float t.config.cpu_per_log_record) ]

(* [durable] is the log's durable boundary after this force; the trace
   auditor replays it to check WAL force-before-ship ordering. *)
let charge_log_force t m ?durable ~bytes () =
  let dt = log_force_cost t ~bytes in
  Clock.advance t.clock dt;
  busy t m dt;
  both t m (fun c -> c.Metrics.log_forces <- c.Metrics.log_forces + 1);
  if Recorder.enabled t.obs then
    Recorder.emit t.obs ~time:(now t) ~node:m.Metrics.node Event.Log_force
      ([ ("bytes", Event.Int bytes); ("dur", Event.Float dt) ]
      @ match durable with Some d -> [ ("durable", Event.Int d) ] | None -> [])

let charge_log_force_shared t m ?durable ~bytes ~sharers () =
  let dt = log_force_cost t ~bytes in
  Clock.advance t.clock dt;
  busy t m dt;
  both t m (fun c ->
      c.Metrics.log_forces <- c.Metrics.log_forces + 1;
      c.Metrics.commit_batches <- c.Metrics.commit_batches + 1;
      c.Metrics.batched_commits <- c.Metrics.batched_commits + sharers);
  if Recorder.enabled t.obs then
    Recorder.emit t.obs ~time:(now t) ~node:m.Metrics.node Event.Log_force
      ([ ("bytes", Event.Int bytes); ("dur", Event.Float dt); ("sharers", Event.Int sharers) ]
      @ match durable with Some d -> [ ("durable", Event.Int d) ] | None -> [])

let charge_log_scan_record t m ~bytes =
  let dt = t.config.cpu_per_log_record +. (t.config.disk_per_byte *. float_of_int bytes) in
  Clock.advance t.clock dt;
  busy t m dt;
  both t m (fun c ->
      c.Metrics.recovery_log_records_scanned <- c.Metrics.recovery_log_records_scanned + 1)

let charge_lock_op t m =
  Clock.advance t.clock t.config.cpu_per_lock_op;
  busy t m t.config.cpu_per_lock_op

let charge_cpu t dt = Clock.advance t.clock dt

let charge_cpu_for t m dt =
  Clock.advance t.clock dt;
  busy t m dt
