module Config = Repro_sim.Config
module Env = Repro_sim.Env
module Metrics = Repro_sim.Metrics
module Cluster = Repro_cbl.Cluster
module Recovery = Repro_cbl.Recovery
module Engine = Repro_workload.Engine
module Driver = Repro_workload.Driver
module Generators = Repro_workload.Generators
module Scale = Repro_workload.Scale
module Schemes = Repro_baselines.Schemes
module Rng = Repro_util.Rng
module Recorder = Repro_obs.Recorder
module Critical_path = Repro_obs.Critical_path
module Log_hist = Repro_obs.Log_hist

(* Every experiment ends by checking the durability oracle: the suite
   doubles as an end-to-end integration test. *)
let run_checked engine ?events ?mpl scripts =
  let outcome = Driver.run engine ?events ?mpl scripts in
  if outcome.Driver.stuck > 0 then
    invalid_arg
      (Printf.sprintf "experiment workload wedged: %d stuck scripts (%s)" outcome.Driver.stuck
         engine.Engine.name);
  (match Driver.verify outcome with
  | Ok () -> ()
  | Error errs ->
    invalid_arg
      (Printf.sprintf "durability oracle violated (%s): %s" engine.Engine.name
         (String.concat "; " errs)));
  outcome

let snapshot_global (built : Schemes.built) = Metrics.snapshot (Cluster.global_metrics built.cluster)

let diff_global (built : Schemes.built) before =
  Metrics.diff ~after:(Cluster.global_metrics built.cluster) ~before

(* ------------------------------------------------------------------ *)
(* F1: the Figure 1 architecture                                       *)
(* ------------------------------------------------------------------ *)

let f1 ?(quick = false) () =
  let txns = if quick then 6 else 25 in
  let built =
    Schemes.cbl ~seed:11 ~nodes:4 ~owners:[ 0; 2 ] ~pages_per_owner:24 Config.default
  in
  let rng = Rng.create 11 in
  let scripts =
    Generators.partitioned rng ~pages_by_owner:built.Schemes.pages_by_owner
      ~clients:[ 0; 1; 2; 3 ] ~txns_per_client:txns
      ~mix:{ Generators.default_mix with remote_fraction = 0.4 }
  in
  let _outcome = run_checked built.Schemes.engine scripts in
  let rows =
    List.map
      (fun id ->
        let m = Cluster.node_metrics built.Schemes.cluster id in
        let role = if List.mem id [ 0; 2 ] then "owner (has database)" else "client" in
        [
          Printf.sprintf "node %d" id;
          role;
          string_of_int m.Metrics.txn_committed;
          string_of_int m.Metrics.commit_messages;
          string_of_int m.Metrics.log_appends;
          string_of_int m.Metrics.log_forces;
          string_of_int m.Metrics.pages_shipped;
        ])
      [ 0; 1; 2; 3 ]
  in
  let zero_commit_msgs =
    List.for_all
      (fun id ->
        (Cluster.node_metrics built.Schemes.cluster id).Metrics.commit_messages = 0)
      [ 0; 1; 2; 3 ]
  in
  {
    Report.id = "F1";
    title = "Figure 1 architecture: 4 networked nodes, 2 with databases, all with local logs";
    claim =
      "§1.1: every node logs locally, including updates to remote data; commit involves no \
       other node";
    header = [ "node"; "role"; "committed"; "commit msgs"; "log appends"; "log forces"; "pages shipped" ];
    rows;
    data = [];
    notes =
      [
        (if zero_commit_msgs then "PASS: zero commit-path messages at every node"
         else "FAIL: some node sent messages at commit");
      ];
  }

(* ------------------------------------------------------------------ *)
(* E1: commit path per scheme                                          *)
(* ------------------------------------------------------------------ *)

let e1 ?(quick = false) () =
  let txns = if quick then 8 else 30 in
  let fractions = if quick then [ 0.0; 1.0 ] else [ 0.0; 0.3; 0.6; 1.0 ] in
  let cbl_total = Metrics.create () in
  let rows =
    List.concat_map
      (fun remote ->
        List.map
          (fun (built : Schemes.built) ->
            let rng = Rng.create 7 in
            let clients =
              (* clients sit on the owner nodes so the remote-access
                 fraction is exactly the knob; server-logging clients
                 must not sit on the server (all data is there) *)
              if built.Schemes.engine.Engine.name = "server-logging" then [ 1; 3 ]
              else List.map fst built.Schemes.pages_by_owner
            in
            let scripts =
              Generators.partitioned rng ~pages_by_owner:built.Schemes.pages_by_owner
                ~clients ~txns_per_client:txns
                ~mix:{ Generators.default_mix with remote_fraction = remote }
            in
            let before = snapshot_global built in
            let outcome = run_checked built.Schemes.engine scripts in
            let d = diff_global built before in
            if built.Schemes.engine.Engine.name = "cbl" then Metrics.merge_into ~dst:cbl_total d;
            let n = outcome.Driver.committed in
            [
              built.Schemes.engine.Engine.name;
              Report.f2 remote;
              Report.per d.Metrics.commit_messages n;
              Report.per d.Metrics.log_forces n;
              Report.per d.Metrics.commit_page_writes n;
              Report.per d.Metrics.log_records_shipped n;
              Report.ms (outcome.Driver.sim_seconds /. float_of_int (max 1 n));
            ])
          (Schemes.all ~seed:7 ~nodes:4 ~pages_per_owner:24 Config.default))
      fractions
  in
  {
    Report.id = "E1";
    title = "Commit-path cost per committed transaction, by scheme and remote-access fraction";
    claim =
      "§1.1/§3: CBL sends no log records or pages at commit (0 messages, 1 local force); \
       server logging ships records, PCA ships pages+records, the global log pays per append";
    header =
      [ "scheme"; "remote"; "commit msgs/txn"; "log forces/txn"; "commit pg writes/txn";
        "records shipped/txn"; "sim ms/txn" ];
    rows;
    data = [];
    notes =
      [
        "expected shape: cbl's commit msgs and records shipped are 0 at every remote fraction";
        "cbl's log forces above 1/txn are WAL-before-ship forces (page transfers), not commit \
         work";
        (* zeros shown on purpose: commit_messages = 0 and
           log_records_shipped = 0 ARE the claim, so "not printed" must
           not be mistaken for "not measured" *)
        Format.asprintf "cbl cumulative counters across all fractions (zeros shown):@.%a"
          (Metrics.pp_with ~show_zeros:true) cbl_total;
      ];
  }

(* ------------------------------------------------------------------ *)
(* E2: throughput scaling                                              *)
(* ------------------------------------------------------------------ *)

let e2 ?(quick = false) () =
  let client_counts = if quick then [ 2; 4 ] else [ 2; 4; 8; 16 ] in
  let txns = if quick then 5 else 15 in
  let rows =
    List.concat_map
      (fun clients ->
        let nodes = clients in
        let make = function
          | `Cbl ->
            (* fully distributed: every node owns a partition *)
            Schemes.cbl ~seed:3 ~nodes ~owners:(List.init nodes (fun i -> i))
              ~pages_per_owner:16 Config.default
          | `Server -> Schemes.server_logging ~seed:3 ~nodes ~pages:(16 * nodes) Config.default
        in
        List.map
          (fun kind ->
            let built = make kind in
            let rng = Rng.create 3 in
            let scripts =
              Generators.partitioned rng ~pages_by_owner:built.Schemes.pages_by_owner
                ~clients:(List.init nodes (fun i -> i))
                ~txns_per_client:txns
                ~mix:{ Generators.default_mix with remote_fraction = 0.2 }
            in
            let outcome = run_checked built.Schemes.engine scripts in
            let busiest =
              List.fold_left
                (fun (node, busy) id ->
                  let b = (Cluster.node_metrics built.Schemes.cluster id).Metrics.busy_seconds in
                  if b > busy then (id, b) else (node, busy))
                (-1, 0.)
                (List.init nodes (fun i -> i))
            in
            let makespan = snd busiest in
            let throughput = float_of_int outcome.Driver.committed /. makespan in
            [
              built.Schemes.engine.Engine.name;
              string_of_int clients;
              string_of_int outcome.Driver.committed;
              Report.f2 makespan;
              Report.f2 throughput;
              Printf.sprintf "node %d" (fst busiest);
            ])
          [ `Cbl; `Server ])
      client_counts
  in
  {
    Report.id = "E2";
    title = "Throughput vs number of clients (bottleneck-bounded, committed / busiest node's work)";
    claim =
      "§1.2/§4: client-based logging reduces dependencies on server resources; with server \
       logging, the server's log and lock service saturate as clients are added";
    header = [ "scheme"; "clients"; "committed"; "bottleneck busy s"; "txn/s bound"; "bottleneck" ];
    rows;
    data = [];
    notes =
      [
        "expected shape: cbl's txn/s bound grows with clients; server-logging's flattens and \
         its bottleneck is always the server (node 0)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E3: commit latency vs network latency                               *)
(* ------------------------------------------------------------------ *)

let e3 ?(quick = false) () =
  let latencies = if quick then [ 0.5e-3; 5e-3 ] else [ 0.1e-3; 0.5e-3; 1e-3; 2e-3; 5e-3; 10e-3 ] in
  let commits = if quick then 5 else 20 in
  let rows =
    List.concat_map
      (fun lat ->
        let config = Config.with_net_latency Config.default lat in
        List.map
          (fun (built : Schemes.built) ->
            let engine = built.Schemes.engine in
            let pages =
              match built.Schemes.pages_by_owner with
              | (_, ps) :: _ -> ps
              | [] -> assert false
            in
            (* one warm-up txn, then measure pure commit cost *)
            let measure () =
              let txn = engine.Engine.begin_txn ~node:1 in
              List.iteri
                (fun i pid -> if i < 4 then engine.Engine.update_delta ~txn ~pid ~off:0 1L)
                pages;
              let t0 = Env.now engine.Engine.env in
              engine.Engine.commit ~txn;
              Env.now engine.Engine.env -. t0
            in
            let _warm = measure () in
            let samples = Array.init commits (fun _ -> measure ()) in
            let s = Repro_util.Stats.summarize samples in
            [
              engine.Engine.name;
              Report.ms lat;
              Report.ms s.Repro_util.Stats.mean;
              Report.ms s.Repro_util.Stats.max;
            ])
          (Schemes.all ~seed:5 ~nodes:4 ~pages_per_owner:16 config))
      latencies
  in
  {
    Report.id = "E3";
    title = "Commit latency vs one-way network latency (4 updates per txn, remote owner)";
    claim =
      "§1.1: local logging eliminates the need to send log records at commit, so CBL's commit \
       latency is independent of network latency; shipping schemes grow linearly with it";
    header = [ "scheme"; "net ms"; "commit ms (mean)"; "commit ms (max)" ];
    rows;
    data = [];
    notes = [ "expected shape: cbl column constant across net ms; others increase with it" ];
  }

(* ------------------------------------------------------------------ *)
(* E4: recovery, PSN-coordinated vs merged logs                        *)
(* ------------------------------------------------------------------ *)

let recovery_run ~strategy ~txns =
  (* four private partitions: every node's log is busy with its own
     work, node 1's cache holds the only up-to-date copies of its
     partition at crash time.  The paper's protocol then reads node 1's
     log only; the merge baseline must pull all four. *)
  let built =
    Schemes.cbl ~seed:13 ~nodes:4 ~owners:[ 0; 1; 2; 3 ] ~pages_per_owner:24 Config.default
  in
  let rng = Rng.create 13 in
  let scripts =
    Generators.partitioned rng ~pages_by_owner:built.Schemes.pages_by_owner
      ~clients:[ 0; 1; 2; 3 ] ~txns_per_client:txns
      ~mix:{ Generators.default_mix with remote_fraction = 0.0; update_fraction = 0.8 }
  in
  let events = [ (30, Driver.Checkpoint 1) ] in
  let outcome = run_checked built.Schemes.engine ~events scripts in
  ignore outcome;
  let before = snapshot_global built in
  let t0 = Cluster.now built.Schemes.cluster in
  Cluster.crash built.Schemes.cluster ~node:1;
  let summary = Cluster.recover_timed ~strategy built.Schemes.cluster ~nodes:[ 1 ] in
  let d = diff_global built before in
  let dt = Cluster.now built.Schemes.cluster -. t0 in
  (d, dt, summary)

let e4 ?(quick = false) () =
  let sizes = if quick then [ 15 ] else [ 15; 60; 120 ] in
  let runs =
    List.concat_map
      (fun txns ->
        List.map
          (fun (name, strategy) ->
            let d, dt, summary = recovery_run ~strategy ~txns in
            let row =
              [
                name;
                string_of_int (4 * txns);
                string_of_int d.Metrics.recovery_log_records_scanned;
                string_of_int d.Metrics.log_records_shipped;
                string_of_int d.Metrics.recovery_messages;
                string_of_int d.Metrics.recovery_page_transfers;
                Report.ms dt;
              ]
            in
            let timing =
              Repro_obs.Json.Obj
                [
                  ("strategy", Repro_obs.Json.Str name);
                  ("workload_txns", Repro_obs.Json.Int (4 * txns));
                  ("summary", Recovery.summary_to_json summary);
                ]
            in
            (row, timing))
          [ ("psn-coordinated (paper)", Recovery.Psn_coordinated);
            ("merged-logs (baseline)", Recovery.Merged_logs) ])
      sizes
  in
  let rows = List.map fst runs in
  {
    Report.id = "E4";
    title = "Single node crash recovery: the paper's protocol vs merging the logs";
    claim =
      "§1.1/§3.2: node log files are not merged at any time; the merge baseline ships every \
       record of every log while CBL moves only NodePSNLists and page-sized rounds";
    header =
      [ "strategy"; "workload txns"; "records scanned"; "records shipped"; "recovery msgs";
        "page transfers"; "recovery ms" ];
    rows;
    data = [ ("recovery_timings", Repro_obs.Json.List (List.map snd runs)) ];
    notes =
      [ "expected shape: records shipped is 0 for the paper's protocol and grows with the \
         workload for the merge baseline" ];
  }

(* ------------------------------------------------------------------ *)
(* E5: NodePSNList coordination vs number of involved nodes            *)
(* ------------------------------------------------------------------ *)

let e5 ?(quick = false) () =
  let involved = if quick then [ 1; 3 ] else [ 1; 2; 4; 7 ] in
  let rows =
    List.map
      (fun k ->
        let nodes = 8 in
        let built =
          Schemes.cbl ~seed:17 ~nodes ~owners:[ 0 ] ~pages_per_owner:6
            (Config.with_page_size Config.default 512)
        in
        let engine = built.Schemes.engine in
        let pages = List.assoc 0 built.Schemes.pages_by_owner in
        (* nodes 1..k update every page in turn: k involved logs *)
        for i = 1 to k do
          let txn = engine.Engine.begin_txn ~node:i in
          List.iter (fun pid -> engine.Engine.update_delta ~txn ~pid ~off:0 1L) pages;
          engine.Engine.commit ~txn
        done;
        let before = snapshot_global built in
        let t0 = Cluster.now built.Schemes.cluster in
        (* crash the owner and the last updater: the only up-to-date
           cached copies vanish and every updater's log takes part *)
        Cluster.crash built.Schemes.cluster ~node:0;
        Cluster.crash built.Schemes.cluster ~node:k;
        Cluster.recover built.Schemes.cluster ~nodes:[ 0; k ];
        let d = diff_global built before in
        let dt = Cluster.now built.Schemes.cluster -. t0 in
        (* all pages must carry every increment *)
        let txn = engine.Engine.begin_txn ~node:0 in
        List.iter
          (fun pid ->
            let v = engine.Engine.read_cell ~txn ~pid ~off:0 in
            if v <> Int64.of_int k then
              invalid_arg (Printf.sprintf "E5: lost updates (found %Ld, want %d)" v k))
          pages;
        engine.Engine.commit ~txn;
        [
          string_of_int k;
          string_of_int d.Metrics.recovery_pages_redone;
          string_of_int d.Metrics.recovery_page_transfers;
          string_of_int d.Metrics.recovery_messages;
          string_of_int d.Metrics.recovery_log_records_scanned;
          Report.ms dt;
        ])
      involved
  in
  {
    Report.id = "E5";
    title = "Recovery cost vs number of nodes involved in a page's redo (NodePSNList rounds)";
    claim =
      "§2.3.4: the PSN order reconstructs cross-node update order without clocks; cost grows \
       with the number of involved nodes, not with total log volume";
    header =
      [ "involved nodes"; "pages redone"; "page transfers"; "recovery msgs"; "records scanned";
        "recovery ms" ];
    rows;
    data = [];
    notes = [ "correctness is asserted: every page carries all increments after recovery" ];
  }

(* ------------------------------------------------------------------ *)
(* E6: log space management                                            *)
(* ------------------------------------------------------------------ *)

let e6 ?(quick = false) () =
  let capacities =
    if quick then [ Some 16384; None ] else [ Some 8192; Some 16384; Some 65536; None ]
  in
  let txns = if quick then 20 else 80 in
  let rows =
    List.map
      (fun capacity ->
        let config = Config.with_page_size Config.default 512 in
        let cluster =
          Cluster.create ~seed:23 ~pool_capacity:8 ?log_capacity:capacity ~nodes:2 config
        in
        let pages = Cluster.allocate_pages cluster ~owner:0 ~count:16 in
        let engine = Engine.of_cluster cluster in
        let rng = Rng.create 23 in
        let scripts =
          Generators.hotspot rng ~pages ~clients:[ 1 ] ~txns_per_client:txns
            ~mix:{ Generators.default_mix with update_fraction = 1.0; ops_per_txn = 6 }
        in
        let outcome = run_checked engine ~mpl:4 scripts in
        let m = Cluster.global_metrics cluster in
        [
          (match capacity with
          | Some c -> Format.asprintf "%a" Repro_util.Pretty.bytes c
          | None -> "unbounded");
          string_of_int outcome.Driver.committed;
          string_of_int m.Metrics.log_space_stalls;
          string_of_int m.Metrics.flush_requests;
          string_of_int m.Metrics.page_disk_writes;
          Report.ms outcome.Driver.sim_seconds;
        ])
      capacities
  in
  {
    Report.id = "E6";
    title = "Log space management (§2.5): transactions keep committing on tiny log files";
    claim =
      "§2.5: when a log fills, replacing the min-RedoLSN page and asking its owner to force \
       it frees log space; no transaction is lost, at the price of extra flushes";
    header = [ "log capacity"; "committed"; "space stalls"; "flush requests"; "page writes"; "sim ms" ];
    rows;
    data = [];
    notes = [ "expected shape: same committed count everywhere; stalls and flushes only under \
               small capacities" ];
  }

(* ------------------------------------------------------------------ *)
(* E7: independent fuzzy checkpoints                                   *)
(* ------------------------------------------------------------------ *)

let e7 ?(quick = false) () =
  let intervals = if quick then [ None; Some 20 ] else [ None; Some 60; Some 30; Some 15 ] in
  let txns = if quick then 10 else 30 in
  let rows =
    List.map
      (fun interval ->
        let built =
          Schemes.cbl ~seed:29 ~nodes:4 ~owners:[ 0; 2 ] ~pages_per_owner:24 Config.default
        in
        let rng = Rng.create 29 in
        let scripts =
          Generators.partitioned rng ~pages_by_owner:built.Schemes.pages_by_owner
            ~clients:[ 0; 1; 2; 3 ] ~txns_per_client:txns
            ~mix:{ Generators.default_mix with remote_fraction = 0.3 }
        in
        let events =
          match interval with
          | None -> []
          | Some every ->
            (* enough repetitions to cover any plausible run length *)
            List.concat_map
              (fun round -> List.map (fun node -> (round, Driver.Checkpoint node)) [ 0; 1; 2; 3 ])
              (List.init (2000 / every) (fun i -> (i + 1) * every))
        in
        let before = snapshot_global built in
        let outcome = run_checked built.Schemes.engine ~events scripts in
        let d = diff_global built before in
        (* crash a node afterwards: analysis cost shrinks with frequency *)
        let rec_before = snapshot_global built in
        Cluster.crash built.Schemes.cluster ~node:1;
        Cluster.recover built.Schemes.cluster ~nodes:[ 1 ];
        let rd = diff_global built rec_before in
        [
          (match interval with None -> "never" | Some e -> Printf.sprintf "every %d rounds" e);
          string_of_int d.Metrics.checkpoints_taken;
          string_of_int d.Metrics.messages_sent;
          string_of_int outcome.Driver.committed;
          string_of_int rd.Metrics.recovery_log_records_scanned;
        ])
      intervals
  in
  {
    Report.id = "E7";
    title = "Fuzzy checkpoints are free of synchronisation and bound restart analysis";
    claim =
      "§2.2/§4(4): each node checkpoints independently of the others — no messages, no \
       quiescing — and more frequent checkpoints shorten the restart analysis scan";
    header =
      [ "checkpointing"; "checkpoints"; "messages (workload)"; "committed"; "restart records scanned" ];
    rows;
    data = [];
    notes =
      [ "expected shape: message count identical across rows (checkpoints are purely local); \
         restart scan shrinks as checkpoints become frequent" ];
  }

(* ------------------------------------------------------------------ *)
(* E8: multiple node crashes                                           *)
(* ------------------------------------------------------------------ *)

let e8 ?(quick = false) () =
  let crash_sets = if quick then [ [ 1 ] ] else [ [ 1 ]; [ 0; 1 ]; [ 0; 1; 2 ]; [ 0; 1; 2; 4 ] ] in
  let txns = if quick then 10 else 25 in
  let rows =
    List.map
      (fun victims ->
        let built =
          Schemes.cbl ~seed:31 ~nodes:6 ~owners:[ 0; 2; 4 ] ~pages_per_owner:16 Config.default
        in
        let rng = Rng.create 31 in
        let scripts =
          Generators.partitioned rng ~pages_by_owner:built.Schemes.pages_by_owner
            ~clients:[ 0; 1; 2; 3; 4; 5 ] ~txns_per_client:txns
            ~mix:{ Generators.default_mix with remote_fraction = 0.5 }
        in
        let outcome = Driver.run built.Schemes.engine scripts in
        let before = snapshot_global built in
        let t0 = Cluster.now built.Schemes.cluster in
        List.iter (fun v -> Cluster.crash built.Schemes.cluster ~node:v) victims;
        Cluster.recover built.Schemes.cluster ~nodes:victims;
        let d = diff_global built before in
        let dt = Cluster.now built.Schemes.cluster -. t0 in
        let oracle =
          match Driver.verify outcome with Ok () -> "PASS" | Error e -> "FAIL: " ^ List.hd e
        in
        [
          string_of_int (List.length victims);
          string_of_int d.Metrics.recovery_log_records_scanned;
          string_of_int d.Metrics.recovery_messages;
          string_of_int d.Metrics.recovery_page_transfers;
          string_of_int d.Metrics.recovery_pages_redone;
          Report.ms dt;
          oracle;
        ])
      crash_sets
  in
  {
    Report.id = "E8";
    title = "Recovery from multiple simultaneous node crashes (§2.4)";
    claim =
      "§2.4: crashed nodes rebuild DPT supersets from their own logs, owners merge claims, and \
       the same PSN-ordered protocol recovers every page — still without merging logs";
    header =
      [ "simultaneous crashes"; "records scanned"; "recovery msgs"; "page transfers";
        "pages redone"; "recovery ms"; "oracle" ];
    rows;
    data = [];
    notes = [ "oracle PASS means all committed updates survived and no uncommitted ones did" ];
  }

(* ------------------------------------------------------------------ *)
(* E9: inter-transaction caching ablation                              *)
(* ------------------------------------------------------------------ *)

let e9 ?(quick = false) () =
  let txns = if quick then 10 else 40 in
  let configs =
    [ ("caching on (paper)", true, 0.0); ("caching off", false, 0.0);
      ("caching on (paper)", true, 0.9); ("caching off", false, 0.9) ]
  in
  let rows =
    List.map
      (fun (label, retain, theta) ->
        let cluster =
          Cluster.create ~seed:37 ~retain_cached_locks:retain ~nodes:4 Config.default
        in
        let p0 = Cluster.allocate_pages cluster ~owner:0 ~count:24 in
        let p2 = Cluster.allocate_pages cluster ~owner:2 ~count:24 in
        let engine = Engine.of_cluster cluster in
        let rng = Rng.create 37 in
        let scripts =
          Generators.partitioned rng ~pages_by_owner:[ (0, p0); (2, p2) ]
            ~clients:[ 1; 3 ] ~txns_per_client:txns
            ~mix:{ Generators.default_mix with remote_fraction = 0.1; theta }
        in
        let outcome = run_checked engine scripts in
        let m = Cluster.global_metrics cluster in
        let n = outcome.Driver.committed in
        [
          label;
          Report.f2 theta;
          Report.per m.Metrics.lock_requests_local n;
          Report.per m.Metrics.lock_requests_remote n;
          Report.per m.Metrics.messages_sent n;
          Report.ms (outcome.Driver.sim_seconds /. float_of_int (max 1 n));
        ])
      configs
  in
  {
    Report.id = "E9";
    title = "Inter-transaction caching of locks and pages (§2.1) — ablation";
    claim =
      "§2.1/§2.2 (and Rdb's lock carry-over, §3.2): retaining locks and pages across \
       transaction boundaries turns repeat accesses into local operations";
    header =
      [ "configuration"; "zipf theta"; "local lock reqs/txn"; "remote lock reqs/txn";
        "messages/txn"; "sim ms/txn" ];
    rows;
    data = [];
    notes = [ "expected shape: caching multiplies local/remote request ratio and cuts \
               messages per transaction" ];
  }

(* ------------------------------------------------------------------ *)
(* E10: page ping-pong without disk forces                             *)
(* ------------------------------------------------------------------ *)

let e10 ?(quick = false) () =
  let rounds = if quick then 6 else 25 in
  let rows =
    List.map
      (fun (built : Schemes.built) ->
        let pages =
          match built.Schemes.pages_by_owner with (_, ps) :: _ -> ps | [] -> assert false
        in
        let pages = List.filteri (fun i _ -> i < 4) pages in
        let scripts = Generators.ping_pong ~pages ~nodes:(1, 3) ~rounds in
        let before = snapshot_global built in
        let outcome = run_checked built.Schemes.engine scripts in
        let d = diff_global built before in
        let handovers = 2 * rounds in
        [
          built.Schemes.engine.Engine.name;
          Report.per d.Metrics.pages_shipped handovers;
          Report.per d.Metrics.page_disk_writes handovers;
          Report.per d.Metrics.commit_page_writes handovers;
          Report.ms (outcome.Driver.sim_seconds /. float_of_int handovers);
        ])
      (Schemes.all ~seed:41 ~nodes:4 ~pages_per_owner:8 Config.default)
  in
  {
    Report.id = "E10";
    title = "Two nodes alternately updating the same pages: cost per hand-over";
    claim =
      "§4(1)/§3.2: CBL never forces pages to disk at commit or when they move between nodes, \
       unlike Rdb/VMS (force before transfer) and PCA (pages travel at commit)";
    header = [ "scheme"; "pages shipped/handover"; "disk writes/handover";
               "commit-path writes/handover"; "sim ms/handover" ];
    rows;
    data = [];
    notes = [ "expected shape: cbl ships pages but the disk-write columns stay near zero" ];
  }

(* ------------------------------------------------------------------ *)
(* E11: group commit — txn/s and commit latency vs batching window     *)
(* ------------------------------------------------------------------ *)

(* Round-robin merge: with one script list per client, the [mpl]
   concurrent transactions come from distinct clients (distinct page
   slices), so commits arrive together and batches actually fill. *)
let interleave lists =
  let rec go acc lists =
    let heads = List.filter_map (function x :: _ -> Some x | [] -> None) lists in
    let tails = List.filter_map (function _ :: t -> Some t | [] -> None) lists in
    if heads = [] then List.rev acc else go (List.rev_append heads acc) tails
  in
  go [] lists

(* One group-commit run: the 8-client conflict-free E11 workload at a
   given (max_batch, window_ms) setting.  Shared with E13, which
   re-runs the same workload traced and decomposes the latency. *)
let group_commit_run ?(trace = false) ~quick (max_batch, window_ms) =
  let clients = 8 in
  let pages_per_client = 4 in
  let txns_per_client = if quick then 5 else 30 in
  let config = Config.with_group_commit Config.default ~window_ms ~max_batch in
  (* the ring is sized so a full traced run never overflows: a truncated
     trace would silently weaken E13's attribution *)
  let cluster = Cluster.create ~trace ~trace_capacity:(1 lsl 20) ~seed:41 ~nodes:1 config in
  (* fewer pages than the pool holds: after warm-up there are no
     evictions, so the commit force is the only recurring disk
     operation and the batching win is visible in busy time *)
  let pages = Cluster.allocate_pages cluster ~owner:0 ~count:(clients * pages_per_client) in
  let engine = Engine.of_cluster cluster in
  let rng = Rng.create 41 in
  let scripts =
    interleave
      (List.init clients (fun c ->
           (* disjoint slice per client: no lock conflicts, so all
              eight stay runnable and commit close together *)
           let slice = List.filteri (fun i _ -> i / pages_per_client = c) pages in
           Generators.hotspot rng ~pages:slice ~clients:[ 0 ] ~txns_per_client
             ~mix:
               {
                 Generators.default_mix with
                 update_fraction = 1.0;
                 ops_per_txn = 4;
                 remote_fraction = 0.;
               }))
  in
  let outcome = run_checked engine ~mpl:clients scripts in
  (cluster, outcome)

let e11 ?(quick = false) () =
  let settings =
    if quick then [ (1, 0.); (8, 20.) ]
    else [ (1, 0.); (2, 5.); (4, 10.); (8, 20.); (8, 50.) ]
  in
  let runs =
    List.map
      (fun (max_batch, window_ms) ->
        let cluster, outcome = group_commit_run ~quick (max_batch, window_ms) in
        let m = Cluster.node_metrics cluster 0 in
        (* throughput is bottleneck-bounded like E2: committed work over
           the node's busy time.  Window waits advance the clock without
           charging busy time, so batching shows up purely as fewer
           forces, not as idling. *)
        let throughput = float_of_int outcome.Driver.committed /. m.Metrics.busy_seconds in
        ((max_batch, window_ms), outcome, m, throughput))
      settings
  in
  let base_throughput =
    match runs with (_, _, _, tp) :: _ -> tp | [] -> assert false
  in
  let rows =
    List.map
      (fun ((max_batch, window_ms), outcome, m, throughput) ->
        let avg_batch =
          if m.Metrics.commit_batches = 0 then 1.
          else float_of_int m.Metrics.batched_commits /. float_of_int m.Metrics.commit_batches
        in
        [
          string_of_int max_batch;
          Report.f window_ms;
          string_of_int outcome.Driver.committed;
          Report.f2 m.Metrics.busy_seconds;
          Report.f2 throughput;
          Report.f2 (throughput /. base_throughput);
          Report.f2 avg_batch;
          Report.per m.Metrics.log_forces outcome.Driver.committed;
          Report.ms outcome.Driver.latencies.Repro_util.Stats.mean;
          Report.ms outcome.Driver.latencies.Repro_util.Stats.p95;
        ])
      runs
  in
  let best =
    List.fold_left (fun acc (_, _, _, tp) -> Float.max acc (tp /. base_throughput)) 1. runs
  in
  {
    Report.id = "E11";
    title = "Group commit: throughput and commit latency vs batching window (one node, 8 clients)";
    claim =
      "§1.1/§3: the local log force dominates CBL's commit cost; sharing one force across \
       concurrently committing transactions raises committed txn/s without adding messages";
    header =
      [
        "max batch"; "window ms"; "committed"; "busy s"; "txn/s"; "speedup"; "avg batch";
        "forces/txn"; "lat mean"; "lat p95";
      ];
    rows;
    data = [];
    notes =
      [
        (* the 1.5x target applies to the full run; the quick config is
           too short for batches to amortise and is only a smoke test *)
        (if quick then Printf.sprintf "best throughput %.2fx the unbatched row (quick smoke; the >= 1.5x target is checked on the full run)" best
         else
           Printf.sprintf "%s: best throughput %.2fx the unbatched row (target >= 1.5x)"
             (if best >= 1.5 then "PASS" else "FAIL")
             best);
        "conflict-free clients advance in lockstep, so batches fill without waiting out the \
         window and latency falls with the force count; the window only costs latency when a \
         batch is left partial";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E12: restartable recovery under mid-recovery crashes + deferral     *)
(* ------------------------------------------------------------------ *)

(* The deterministic deferral scenario: nodes 1, 2 and 3 each increment
   every page owned by node 0, then node 0 does too (recalling the page
   invalidates all peer copies, so no live cache survives).  Crash nodes
   0 and 2 and recover node 0 alone with node 2 deferred: redo hits node
   2's PSN range as a gap on every page and parks them all.  Recovering
   node 2 then runs the completion jobs and every parked page drains.
   Each row re-runs the whole scenario with a different mid-recovery
   crash budget; the recovery crash points abort attempts, and the
   caller re-enters until the down set converges to empty. *)
let e12 ?(quick = false) () =
  let budgets = if quick then [ 0; 2 ] else [ 0; 1; 2; 3 ] in
  let page_count = if quick then 4 else 6 in
  let rows =
    List.map
      (fun budget ->
        let plan =
          {
            Repro_fault.Fault_plan.none with
            Repro_fault.Fault_plan.seed = 900 + budget;
            crashpoints =
              {
                Repro_fault.Fault_plan.commit_force = 0.;
                checkpoint = 0.;
                page_ship = 0.;
                rollback = 0.;
                recovery_analysis = 0.15;
                recovery_redo = 0.2;
                recovery_pre_undo = 0.1;
                recovery_undo = 0.15;
                recovery_checkpoint = 0.1;
                budget;
              };
          }
        in
        let faults = Repro_fault.Injector.create plan in
        let cluster =
          Cluster.create ~seed:29 ~faults ~nodes:4 (Config.with_page_size Config.default 512)
        in
        let pages = Cluster.allocate_pages cluster ~owner:0 ~count:page_count in
        let engine = Engine.of_cluster cluster in
        (* updaters last-to-first-crash order: node 0 updates last, so
           its crash leaves no current copy in any live cache *)
        List.iter
          (fun node ->
            let txn = engine.Engine.begin_txn ~node in
            List.iter (fun pid -> engine.Engine.update_delta ~txn ~pid ~off:0 1L) pages;
            engine.Engine.commit ~txn)
          [ 1; 2; 3; 0 ];
        let before = Metrics.snapshot (Cluster.global_metrics cluster) in
        let t0 = Cluster.now cluster in
        Cluster.crash cluster ~node:0;
        Cluster.crash cluster ~node:2;
        (* Re-enter recovery until every non-deferred node is up: an
           attempt aborted by a recovery crash point leaves its nodes
           down (and can fell an operational claimant during a
           completion job), so each round recovers the whole current
           down set.  The crash budget bounds the retries; the cap turns
           a livelock bug into a loud failure. *)
        let rec recover_until_done ~defer attempts =
          if attempts > 50 then invalid_arg "E12: recovery did not converge";
          match
            List.filter
              (fun n ->
                (not (Cluster.node cluster n |> Repro_cbl.Node.is_up))
                && not (List.mem n defer))
              [ 0; 1; 2; 3 ]
          with
          | [] -> ()
          | down ->
            (try Cluster.recover cluster ~defer ~nodes:down
             with Repro_cbl.Block.Would_block _ -> ());
            recover_until_done ~defer (attempts + 1)
        in
        recover_until_done ~defer:[ 2 ] 0;
        let g = Cluster.global_metrics cluster in
        let parked = g.Metrics.recovery_deferred_pages - before.Metrics.recovery_deferred_pages in
        recover_until_done ~defer:[] 0;
        let d = Metrics.diff ~after:(Cluster.global_metrics cluster) ~before in
        let dt = Cluster.now cluster -. t0 in
        (* every page must carry all four increments *)
        let txn = engine.Engine.begin_txn ~node:3 in
        List.iter
          (fun pid ->
            let v = engine.Engine.read_cell ~txn ~pid ~off:0 in
            if v <> 4L then
              invalid_arg (Printf.sprintf "E12: lost updates (found %Ld, want 4)" v))
          pages;
        engine.Engine.commit ~txn;
        Cluster.check_invariants cluster;
        [
          string_of_int budget;
          string_of_int d.Metrics.injected_crashes;
          string_of_int d.Metrics.recovery_restarts;
          string_of_int d.Metrics.recovery_retries;
          string_of_int parked;
          string_of_int d.Metrics.recovery_deferred_completed;
          Report.ms dt;
          "ok";
        ])
      budgets
  in
  {
    Report.id = "E12";
    title = "Restartable recovery: completion and deferred pages vs mid-recovery crashes";
    claim =
      "recovery itself is crash-tolerant: aborted attempts re-enter from durable state and \
       converge, and pages blocked on a still-down peer park (locks retained, retryable \
       Page_unavailable) instead of failing, completing when the peer recovers";
    header =
      [ "crash budget"; "injected crashes"; "restarts"; "retries"; "pages parked";
        "parked completed"; "recovery ms"; "outcome" ];
    rows;
    data = [];
    notes =
      [
        "correctness is asserted: after all recoveries every page carries every committed \
         increment and the parked set is empty";
        "pages parked equals the page count (node 2's PSN range gaps every page); they drain \
         by one of two routes — the completion jobs of node 2's recovery (parked completed > \
         0), or, when a mid-recovery crash fells the owner itself, the self-healing wipe: the \
         parked set dies with the owner's volatile state and the full-batch re-recovery \
         re-derives every page without needing deferral (parked completed = 0)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E13: commit-latency attribution — the critical path of E11's runs   *)
(* ------------------------------------------------------------------ *)

(* Re-runs the E11 group-commit workload with causal tracing on, folds
   the event stream through Critical_path, and reports where each
   commit's latency went: lock wait, batch-window wait, log forces,
   network, owner service, other.  The decomposition is validated
   against an independent measurement — the driver's own end-to-end
   commit latencies — and must agree within 5%. *)
let e13 ?(quick = false) () =
  let settings =
    if quick then [ (1, 0.); (8, 20.) ] else [ (1, 0.); (4, 10.); (8, 20.) ]
  in
  let runs =
    List.map
      (fun setting ->
        let cluster, outcome = group_commit_run ~trace:true ~quick setting in
        let events = Recorder.events (Env.obs (Cluster.env cluster)) in
        let cp = Critical_path.analyze events in
        if cp.Critical_path.truncated then invalid_arg "E13: trace ring overflowed";
        (setting, outcome, cp))
      settings
  in
  let label (max_batch, window_ms) = Printf.sprintf "%d/%g" max_batch window_ms in
  let rows =
    List.concat_map
      (fun (setting, _outcome, cp) ->
        let hists = Critical_path.component_hists cp in
        let total_time = Log_hist.total (List.assoc "total" hists) in
        List.map
          (fun (name, h) ->
            [
              label setting;
              name;
              Report.ms (Log_hist.quantile h 0.5);
              Report.ms (Log_hist.p95 h);
              Report.ms (Log_hist.p99 h);
              Report.ms (Log_hist.mean h);
              (if total_time <= 0. then "-"
               else Printf.sprintf "%.1f%%" (Log_hist.total h /. total_time *. 100.));
            ])
          hists)
      runs
  in
  let checks =
    List.map
      (fun (setting, outcome, cp) ->
        let hists = Critical_path.component_hists cp in
        let cp_mean = Log_hist.mean (List.assoc "total" hists) in
        let drv_mean = outcome.Driver.latencies.Repro_util.Stats.mean in
        let err = Float.abs (cp_mean -. drv_mean) /. drv_mean in
        let committed = List.length cp.Critical_path.txns in
        Printf.sprintf
          "%s batch %s: %d txns, attributed mean %s vs driver-measured %s (err %.1f%%, budget 5%%)"
          (if err <= 0.05 then "PASS" else "FAIL")
          (label setting) committed
          (Report.ms cp_mean) (Report.ms drv_mean) (err *. 100.))
      runs
  in
  {
    Report.id = "E13";
    title = "Commit-latency attribution: critical-path breakdown of the group-commit runs";
    claim =
      "§1.1/§3: the local log force dominates CBL's commit cost; the traced critical path \
       shows latency moving from per-txn forces into the shared batch force (and its window \
       wait) as batching grows, with no hidden component — parts sum to the independently \
       measured end-to-end latency";
    header = [ "batch/window"; "component"; "p50"; "p95"; "p99"; "mean"; "share" ];
    rows;
    data =
      List.map
        (fun (setting, _outcome, cp) ->
          ( "breakdown " ^ label setting,
            Repro_obs.Json.Obj
              (List.map
                 (fun (name, h) -> (name, Log_hist.to_json h))
                 (Critical_path.component_hists cp)) ))
        runs;
    notes =
      checks
      @ [
          "share is each component's fraction of total attributed time across all commits; \
           'other' holds the explicit un-attributed remainder (CPU charges, lock ops), so \
           the decomposition can't silently drop time";
        ];
  }

(* ------------------------------------------------------------------ *)
(* E14: big-cluster scale — named profiles over 100× the usual world    *)
(* ------------------------------------------------------------------ *)

(* One deterministic scale run: an N-node CBL cluster, every node an
   owner, [clients] scripted clients generated from a named
   {!Scale.profile}.  Small pages keep the page images of a 256-node
   world affordable; [mpl] bounds in-flight transactions per node so
   thousands of clients queue for admission instead of thrashing the
   lock space.  The durability oracle runs on every point. *)
let scale_point ?(seed = 2026) ?(mpl = 8) ?(pages_per_node = 16) ?(txns_per_client = 4) ~nodes
    ~clients ~profile () =
  let p =
    match Scale.find profile with
    | Some p -> p
    | None ->
      invalid_arg
        (Printf.sprintf "unknown scale profile %S (have: %s)" profile
           (String.concat ", " (Scale.names ())))
  in
  let config = Config.with_page_size Config.default 1024 in
  let built =
    Schemes.cbl ~seed ~nodes ~owners:(List.init nodes Fun.id) ~pages_per_owner:pages_per_node
      config
  in
  let rng = Rng.create seed in
  let scripts =
    Scale.scripts (Rng.split rng) p ~pages_by_owner:built.Schemes.pages_by_owner ~clients
      ~txns_per_client
  in
  run_checked built.Schemes.engine ~mpl scripts

let scale_abort_rate (o : Driver.outcome) =
  let aborts = o.Driver.deadlock_aborts + o.Driver.voluntary_aborts in
  float_of_int aborts /. float_of_int (max 1 (o.Driver.committed + aborts))

let scale_row ~nodes ~clients ~profile (o : Driver.outcome) =
  [
    string_of_int nodes;
    string_of_int clients;
    profile;
    string_of_int o.Driver.committed;
    Report.f2 (float_of_int o.Driver.committed /. o.Driver.sim_seconds);
    Report.ms o.Driver.latencies.Repro_util.Stats.p95;
    Printf.sprintf "%.3f" (scale_abort_rate o);
    string_of_int o.Driver.sched_events;
    Report.f2 (float_of_int o.Driver.sched_events /. o.Driver.sim_seconds);
  ]

let scale_header =
  [
    "nodes"; "clients"; "profile"; "committed"; "txn/s (sim)"; "p95 commit"; "abort rate";
    "sched events"; "events/sim-s";
  ]

let e14 ?(quick = false) () =
  let points =
    (* uniform sizes check commit-path flatness; the hot-owner point is
       the contrast: imbalance surfaces as aborts and p95, never as
       commit messages *)
    if quick then [ ("uniform", 8, 64) ]
    else [ ("uniform", 16, 128); ("uniform", 32, 256); ("uniform", 64, 512);
           ("hot-owner", 32, 256) ]
  in
  let runs =
    List.map
      (fun (profile, nodes, clients) ->
        ((profile, nodes, clients), scale_point ~nodes ~clients ~profile ()))
      points
  in
  let rows =
    List.map (fun ((profile, nodes, clients), o) -> scale_row ~nodes ~clients ~profile o) runs
  in
  let commit_msgs =
    List.fold_left
      (fun acc (_, (o : Driver.outcome)) ->
        acc + (Env.global_metrics o.Driver.engine.Engine.env).Metrics.commit_messages)
      0 runs
  in
  let uniform_rates =
    List.filter_map
      (fun ((profile, _, _), (o : Driver.outcome)) ->
        if profile = "uniform" then
          Some (float_of_int o.Driver.committed /. o.Driver.sim_seconds)
        else None)
      runs
  in
  let flat =
    match uniform_rates with
    | [] | [ _ ] -> true
    | r :: _ ->
      let lo = List.fold_left min r uniform_rates in
      let hi = List.fold_left max r uniform_rates in
      lo >= 0.9 *. hi
  in
  {
    Report.id = "E14";
    title = "Big-cluster scale: 100x the usual world on named workload profiles";
    claim =
      "§1.1/§4: commit involves no other node, so growing the cluster adds zero commit-path \
       coordination — cluster-wide txn/s on the serialized simulation clock stays flat as \
       nodes quadruple, commit messages stay zero, and a hot-owner skew surfaces as aborts \
       and p95 latency, never as commit traffic";
    header = scale_header;
    rows;
    data = [];
    notes =
      [
        (if commit_msgs = 0 then "PASS: zero commit-path messages across every scale point"
         else Printf.sprintf "FAIL: %d commit messages at scale" commit_msgs);
        (if flat then "PASS: uniform-profile txn/s flat (within 10%) as the cluster grows"
         else "FAIL: uniform-profile txn/s varied by more than 10% across cluster sizes");
        "every node is an owner, clients home round-robin, mpl 8 per node; txn/s and \
         events/sim-s are simulated-time rates (deterministic); wall-clock sim-events/sec \
         is reported by `cblsim scale`";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E15: early lock release under hot-page contention — elr off vs on   *)
(* ------------------------------------------------------------------ *)

(* One contended group-commit run: [clients] clients all hammer the
   same small hot set under Zipf skew, half the operations updates, on
   a single node with a 10 ms batching window.  With elr off a
   committing transaction keeps its X locks across the whole window, so
   every hot page serializes on durability; with elr on the locks drop
   at batch-submit and blocked acquirers proceed under a commit
   dependency instead of waiting out the force. *)
let elr_run ?(quick = false) ~early_release ~clients () =
  let hot_pages = 16 in
  let txns_per_client = if quick then 5 else 20 in
  let config =
    Config.with_early_release
      (Config.with_group_commit Config.default ~window_ms:10. ~max_batch:8)
      early_release
  in
  let cluster = Cluster.create ~seed:57 ~nodes:1 config in
  let pages = Cluster.allocate_pages cluster ~owner:0 ~count:hot_pages in
  let engine = Engine.of_cluster cluster in
  let rng = Rng.create 57 in
  let scripts =
    interleave
      (List.init clients (fun _ ->
           (* every client draws from the same shared hot set: the
              contention is the point, unlike E11's disjoint slices *)
           Generators.hotspot rng ~pages ~clients:[ 0 ] ~txns_per_client
             ~mix:
               {
                 Generators.default_mix with
                 update_fraction = 0.5;
                 ops_per_txn = 3;
                 remote_fraction = 0.;
                 theta = 0.6;
               }))
  in
  let outcome = run_checked engine ~mpl:clients scripts in
  (cluster, outcome)

let e15 ?(quick = false) () =
  let mpls = if quick then [ 8 ] else [ 4; 8; 16 ] in
  let runs =
    List.concat_map
      (fun clients ->
        List.map
          (fun early_release ->
            let cluster, outcome = elr_run ~quick ~early_release ~clients () in
            (clients, early_release, Cluster.dep_edges_registered cluster, outcome))
          [ false; true ])
      mpls
  in
  let rows =
    List.map
      (fun (clients, early_release, deps, (o : Driver.outcome)) ->
        [
          string_of_int clients;
          (if early_release then "on" else "off");
          string_of_int o.Driver.committed;
          Report.f2 (float_of_int o.Driver.committed /. o.Driver.sim_seconds);
          Report.ms o.Driver.latencies.Repro_util.Stats.mean;
          Report.ms o.Driver.latencies.Repro_util.Stats.p95;
          Printf.sprintf "%.3f" (scale_abort_rate o);
          string_of_int deps;
        ])
      runs
  in
  (* the gate is judged at the highest MPL, where lock-hold time across
     the batch window hurts the most *)
  let gate =
    let top = List.fold_left max 0 mpls in
    let find er =
      List.find_map
        (fun (c, e, _, o) -> if c = top && e = er then Some o else None)
        runs
    in
    match (find false, find true) with
    | Some off, Some on ->
      let p95_off = off.Driver.latencies.Repro_util.Stats.p95 in
      let p95_on = on.Driver.latencies.Repro_util.Stats.p95 in
      let tps_off = float_of_int off.Driver.committed /. off.Driver.sim_seconds in
      let tps_on = float_of_int on.Driver.committed /. on.Driver.sim_seconds in
      let cut = 1. -. (p95_on /. p95_off) in
      Some (top, cut, tps_off, tps_on)
    | _ -> None
  in
  let notes =
    (match gate with
    | Some (top, cut, tps_off, tps_on) ->
      let p95_pass = cut >= 0.20 in
      let tps_pass = tps_on > tps_off in
      [
        (if quick then
           Printf.sprintf
             "p95 cut %.0f%% at mpl %d (quick smoke; the >= 20%% target is checked on the full run)"
             (100. *. cut) top
         else
           Printf.sprintf "%s: p95 commit latency cut %.0f%% at mpl %d (target >= 20%%)"
             (if p95_pass then "PASS" else "FAIL")
             (100. *. cut) top);
        (if quick then
           Printf.sprintf "txn/s %.2f -> %.2f at mpl %d (quick smoke)" tps_off tps_on top
         else
           Printf.sprintf "%s: txn/s %.2f -> %.2f at the highest MPL (target: higher with elr on)"
             (if tps_pass then "PASS" else "FAIL")
             tps_off tps_on);
      ]
    | None -> [ "FAIL: missing runs for the gate comparison" ])
    @ [
        "deps counts commit-dependency edges: how often an acquirer actually observed \
         pre-durable state; elr=off rows are the bit-identical baseline (deps = 0 by \
         construction)";
      ]
  in
  {
    Report.id = "E15";
    title = "Early lock release: contended hot pages, locks dropped at batch-submit";
    claim =
      "controlled lock violation: under group commit a committing transaction's locks pin hot \
       pages for the whole batching window; releasing them at submit and tracking commit \
       dependencies cuts p95 commit latency >= 20% and raises txn/s at high MPL, without \
       weakening durability (dependents gate on antecedents; a lost batch drags its closure)";
    header =
      [ "mpl"; "elr"; "committed"; "txn/s (sim)"; "lat mean"; "lat p95"; "abort rate"; "deps" ];
    rows;
    data = [];
    notes;
  }

(* ------------------------------------------------------------------ *)

let registry =
  [
    ("F1", f1); ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12);
    ("E13", e13); ("E14", e14); ("E15", e15);
  ]

let ids = List.map fst registry
let all ?quick () = List.map (fun (_, f) -> f ?quick ()) registry

let by_id id =
  let id = String.uppercase_ascii id in
  List.assoc_opt id registry
