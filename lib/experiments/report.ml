type t = {
  id : string;
  title : string;
  claim : string;
  header : string list;
  rows : string list list;
  notes : string list;
  data : (string * Repro_obs.Json.t) list;
}

let render ppf t =
  Format.fprintf ppf "@.== %s: %s ==@." t.id t.title;
  Format.fprintf ppf "claim: %s@.@." t.claim;
  Repro_util.Pretty.table ~header:t.header ~rows:t.rows ppf ();
  List.iter (fun n -> Format.fprintf ppf "note: %s@." n) t.notes;
  Format.fprintf ppf "@."

let to_json t =
  let module J = Repro_obs.Json in
  let strs l = J.List (List.map (fun s -> J.Str s) l) in
  J.Obj
    ([
       ("id", J.Str t.id);
       ("title", J.Str t.title);
       ("claim", J.Str t.claim);
       ("header", strs t.header);
       ("rows", J.List (List.map strs t.rows));
       ("notes", strs t.notes);
     ]
    @ t.data)

let f v = Format.asprintf "%.3g" v
let f2 v = Format.asprintf "%.2f" v
let per count n = if n = 0 then "-" else Format.asprintf "%.2f" (float_of_int count /. float_of_int n)
let ms v = Format.asprintf "%.2f" (v *. 1e3)
