(** The claim-derived experiment suite (see DESIGN.md §3).

    The ICDE'96 paper contains no result tables or figures (Figure 1 is
    the architecture diagram), so every experiment here regenerates a
    quantitative claim of the text; each function runs its scenario,
    {e verifies the durability oracle}, and returns the table recorded
    in EXPERIMENTS.md.  [quick] shrinks the workloads (used by the
    Bechamel wrappers so wall-time measurement stays reasonable). *)

val f1 : ?quick:bool -> unit -> Report.t
(** Figure 1 topology runs as described: four networked nodes, two with
    databases; commit path of every client is message-free. *)

val e1 : ?quick:bool -> unit -> Report.t
(** Commit path cost per scheme × remote-update fraction (§1.1, §3). *)

val e2 : ?quick:bool -> unit -> Report.t
(** Throughput scaling with client count; server-based logging
    bottlenecks on the server (§1.2, §4). *)

val e3 : ?quick:bool -> unit -> Report.t
(** Commit latency vs network latency: CBL's commit is flat (§1.1). *)

val e4 : ?quick:bool -> unit -> Report.t
(** Recovery without log merging vs the merged-log baseline (§2.3,
    §3.2). *)

val e5 : ?quick:bool -> unit -> Report.t
(** Recovery cost vs number of involved nodes — NodePSNList
    coordination (§2.3.4). *)

val e6 : ?quick:bool -> unit -> Report.t
(** Log space management keeps small logs alive (§2.5). *)

val e7 : ?quick:bool -> unit -> Report.t
(** Independent fuzzy checkpoints: frequency costs no messages and
    bounds restart analysis (§2.2, §4 advantage 4). *)

val e8 : ?quick:bool -> unit -> Report.t
(** Multiple simultaneous node crashes (§2.4). *)

val e9 : ?quick:bool -> unit -> Report.t
(** Inter-transaction caching of locks and pages cuts lock messages
    (§2.1/§2.2). *)

val e10 : ?quick:bool -> unit -> Report.t
(** Pages exchanged between nodes without disk forces (§3.2 vs
    Rdb/VMS and the medium scheme of Mohan–Narang). *)

val e11 : ?quick:bool -> unit -> Report.t
(** Group commit: committed txn/s and commit latency as the batching
    window and batch cap grow; the unbatched row is today's commit
    path. *)

val e12 : ?quick:bool -> unit -> Report.t
(** Restartable recovery: mid-recovery crashes, re-entry, deferral and
    completion of parked pages. *)

val e13 : ?quick:bool -> unit -> Report.t
(** Commit-latency attribution: the E11 workload re-run with causal
    tracing, decomposed by {!Repro_obs.Critical_path} into lock wait /
    batch wait / log force / network / owner service; components must
    agree with the driver's independently measured latency within
    5%. *)

val e14 : ?quick:bool -> unit -> Report.t
(** Big-cluster scale: committed txn/s, p95 commit latency and abort
    rate as the simulated world grows to 64 nodes / 512 clients on a
    named {!Repro_workload.Scale} profile.  [cblsim scale] drives the
    same machinery to 256 nodes / thousands of clients and adds
    wall-clock sim-events/sec. *)

val e15 : ?quick:bool -> unit -> Report.t
(** Early lock release (controlled lock violation): the contended
    hot-page workload at rising MPL, elr off vs on.  With elr on, a
    committing transaction's page locks drop at batch-submit and later
    acquirers run under commit dependencies; the gate demands a >= 20%
    p95 commit-latency cut and higher txn/s at the highest MPL. *)

val scale_point :
  ?seed:int ->
  ?mpl:int ->
  ?pages_per_node:int ->
  ?txns_per_client:int ->
  nodes:int ->
  clients:int ->
  profile:string ->
  unit ->
  Repro_workload.Driver.outcome
(** One deterministic big-cluster run on a named {!Repro_workload.Scale}
    profile: [nodes] owner nodes, [clients] scripted clients homing
    round-robin, durability oracle checked.  Raises on an unknown
    profile name. *)

val scale_header : string list
(** Column names shared by E14 and the [cblsim scale] report. *)

val scale_row :
  nodes:int -> clients:int -> profile:string -> Repro_workload.Driver.outcome -> string list
(** Render one {!scale_point} outcome as a {!scale_header} row. *)

val scale_abort_rate : Repro_workload.Driver.outcome -> float
(** Aborts over (commits + aborts), both kinds of abort counted. *)

val group_commit_run :
  ?trace:bool ->
  quick:bool ->
  int * float ->
  Repro_cbl.Cluster.t * Repro_workload.Driver.outcome
(** The E11/E13 workload: 8 conflict-free clients on one node at a
    given [(max_batch, window_ms)] group-commit setting, durability
    oracle checked.  Exposed for the tracing-overhead bench, which runs
    it with [trace] off and on and compares. *)

val elr_run :
  ?quick:bool ->
  early_release:bool ->
  clients:int ->
  unit ->
  Repro_cbl.Cluster.t * Repro_workload.Driver.outcome
(** The E15 workload: [clients] clients hammering one node's shared
    Zipf hot set under a 10 ms group-commit window, with or without
    early lock release, durability oracle checked.  Exposed for the
    lock-hold bench, which compares the two lock-hold histograms. *)

val all : ?quick:bool -> unit -> Report.t list
(** Every experiment, in order. *)

val by_id : string -> (?quick:bool -> unit -> Report.t) option
(** Lookup by "F1" / "E1" ... (case-insensitive). *)

val ids : string list
