(** Experiment reports: one table per claim-derived experiment, rendered
    exactly as recorded in EXPERIMENTS.md. *)

type t = {
  id : string;  (** "E1", "F1", ... *)
  title : string;
  claim : string;  (** the paper claim being checked, with its section *)
  header : string list;
  rows : string list list;
  notes : string list;  (** observations / pass-fail statements *)
  data : (string * Repro_obs.Json.t) list;
      (** extra machine-readable results (e.g. E4's per-phase recovery
          timings, demo's latency histograms) folded into {!to_json} *)
}

val render : Format.formatter -> t -> unit

val to_json : t -> Repro_obs.Json.t
(** The whole report as one JSON object: id, title, claim, header,
    rows, notes, plus every [data] binding at top level. *)

val f : float -> string
(** "%.3g" *)

val f2 : float -> string
(** "%.2f" *)

val per : int -> int -> string
(** [per count n] — count divided by n, 2 decimals ("-" if n = 0). *)

val ms : float -> string
(** seconds rendered as milliseconds, 2 decimals *)
