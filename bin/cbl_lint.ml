(* cbl-lint: enforce the repo's WAL/fault/determinism protocol rules.

   Usage:  dune exec bin/cbl_lint.exe -- [options] [paths...]

   Paths default to lib bin bench test.  Exit status is non-zero on any
   unsuppressed finding, so ci.sh and the workflow gate on it.

     --json            print the JSON report to stdout instead of the
                       human file:line:col lines
     --out FILE        additionally write the JSON report to FILE
                       (CI uses --out LINT_REPORT.json)
     --allowlist FILE  grandfathered-violation list
                       (default: lint_allowlist.txt under --root)
     --root DIR        repo root the paths are relative to (default .)
     --rules           list the rules and exit *)

module Lint = Repro_lint.Lint
module Rules = Repro_lint.Rules
module Json = Repro_obs.Json

let usage () =
  prerr_endline
    "usage: cbl_lint [--json] [--out FILE] [--allowlist FILE] [--root DIR] [--rules] [paths...]";
  exit 2

let () =
  let json = ref false and out = ref None and allowlist = ref None in
  let root = ref "." and paths = ref [] and list_rules = ref false in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--out" :: file :: rest ->
      out := Some file;
      parse rest
    | "--allowlist" :: file :: rest ->
      allowlist := Some file;
      parse rest
    | "--root" :: dir :: rest ->
      root := dir;
      parse rest
    | "--rules" :: rest ->
      list_rules := true;
      parse rest
    | ("--out" | "--allowlist" | "--root") :: [] -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | path :: rest ->
      paths := path :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_rules then begin
    List.iter (fun r -> Printf.printf "%-24s %s\n" r.Lint.id r.Lint.doc) Rules.all;
    exit 0
  end;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench"; "test" ] | ps -> ps
  in
  let allowlist_file =
    match !allowlist with
    | Some f -> Some f
    | None ->
      let default = Filename.concat !root "lint_allowlist.txt" in
      if Sys.file_exists default then Some default else None
  in
  let result = Lint.run ?allowlist_file ~root:!root ~paths ~rules:Rules.all () in
  let report = Json.to_string_pretty (Lint.result_to_json ~rules:Rules.all result) in
  (match !out with
  | Some file ->
    let oc = open_out file in
    output_string oc report;
    output_char oc '\n';
    close_out oc
  | None -> ());
  if !json then print_endline report
  else begin
    List.iter (fun f -> print_endline (Lint.render_finding f)) result.Lint.findings;
    Printf.printf "cbl-lint: %d files, %d findings (%d suppressed, %d allowlisted)\n"
      result.Lint.files_scanned
      (List.length result.Lint.findings)
      result.Lint.suppressed result.Lint.allowlisted
  end;
  exit (if Lint.ok result then 0 else 1)
