(* cbl-lint: enforce the repo's WAL/fault/determinism protocol rules.

   Usage:  dune exec bin/cbl_lint.exe -- [options] [paths...]

   Paths default to lib bin bench test.  Exit status is non-zero on any
   unsuppressed finding, so ci.sh and the workflow gate on it.

     --json            print the JSON report to stdout instead of the
                       human file:line:col lines (includes per-rule
                       timing)
     --out FILE        additionally write the JSON report to FILE
                       (CI uses --out LINT_REPORT.json)
     --allowlist FILE  grandfathered-violation list
                       (default: lint_allowlist.txt under --root)
     --root DIR        repo root the paths are relative to (default .)
     --rules IDS       run only the comma-separated rule ids; unknown
                       ids are an error (exit 2).  "--rules list"
                       prints the registry and exits
     --dump-summaries  print the phase-1 effect summaries as JSON and
                       exit 0 (debug surface)
     --dump-callgraph  print the resolved call graph as JSON and exit 0
                       (CI uploads this as an artifact) *)

module Lint = Repro_lint.Lint
module Rules = Repro_lint.Rules
module Summary = Repro_lint.Summary
module Callgraph = Repro_lint.Callgraph
module Json = Repro_obs.Json

let usage () =
  prerr_endline
    "usage: cbl_lint [--json] [--out FILE] [--allowlist FILE] [--root DIR] [--rules IDS] \
     [--dump-summaries] [--dump-callgraph] [paths...]";
  exit 2

let () =
  let json = ref false and out = ref None and allowlist = ref None in
  let root = ref "." and paths = ref [] and rule_ids = ref None in
  let dump_summaries = ref false and dump_callgraph = ref false in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--out" :: file :: rest ->
      out := Some file;
      parse rest
    | "--allowlist" :: file :: rest ->
      allowlist := Some file;
      parse rest
    | "--root" :: dir :: rest ->
      root := dir;
      parse rest
    | "--rules" :: ids :: rest ->
      rule_ids := Some ids;
      parse rest
    | "--dump-summaries" :: rest ->
      dump_summaries := true;
      parse rest
    | "--dump-callgraph" :: rest ->
      dump_callgraph := true;
      parse rest
    | ("--out" | "--allowlist" | "--root" | "--rules") :: [] -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | path :: rest ->
      paths := path :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let rules =
    match !rule_ids with
    | None -> Rules.all
    | Some "list" ->
      List.iter (fun r -> Printf.printf "%-24s %s\n" r.Lint.id r.Lint.doc) Rules.all;
      exit 0
    | Some ids ->
      let ids = String.split_on_char ',' ids |> List.map String.trim in
      let unknown = List.filter (fun id -> Rules.find id = None) ids in
      if unknown <> [] then begin
        Printf.eprintf "cbl_lint: unknown rule id%s: %s\nknown rules: %s\n"
          (if List.length unknown > 1 then "s" else "")
          (String.concat ", " unknown)
          (String.concat ", " (List.map (fun r -> r.Lint.id) Rules.all));
        exit 2
      end;
      List.filter_map Rules.find ids
  in
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench"; "test" ] | ps -> ps
  in
  if !dump_summaries || !dump_callgraph then begin
    let _, sources, _ = Lint.parse_tree ~root:!root ~paths in
    let cache_file = Summary.default_cache_file ~root:!root in
    let files = Summary.of_sources ?cache_file sources in
    if !dump_summaries then print_endline (Json.to_string_pretty (Summary.to_json files));
    if !dump_callgraph then
      print_endline (Json.to_string_pretty (Callgraph.to_json (Callgraph.build files)));
    exit 0
  end;
  let allowlist_file =
    match !allowlist with
    | Some f -> Some f
    | None ->
      let default = Filename.concat !root "lint_allowlist.txt" in
      if Sys.file_exists default then Some default else None
  in
  let result =
    Lint.run ?allowlist_file ~clock:Unix.gettimeofday ~root:!root ~paths ~rules ()
  in
  let report = Json.to_string_pretty (Lint.result_to_json ~rules result) in
  (match !out with
  | Some file ->
    let oc = open_out file in
    output_string oc report;
    output_char oc '\n';
    close_out oc
  | None -> ());
  if !json then print_endline report
  else begin
    List.iter (fun f -> print_endline (Lint.render_finding f)) result.Lint.findings;
    Printf.printf "cbl-lint: %d files, %d findings (%d suppressed, %d allowlisted)\n"
      result.Lint.files_scanned
      (List.length result.Lint.findings)
      result.Lint.suppressed result.Lint.allowlisted
  end;
  exit (if Lint.ok result then 0 else 1)
