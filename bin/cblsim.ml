(* cblsim — drive the client-based-logging simulator from the shell.

   Subcommands:
     cblsim experiment [IDS...] [--quick] [--json]   regenerate experiment tables
     cblsim demo [options] [--json]                  run a workload, print metrics
     cblsim trace [options]                          run traced, dump events as JSONL
     cblsim stress [--runs N] [--start S]            randomized crash/verify runs
     cblsim scale [--nodes N,...] [--profile P]      big-cluster scale sweep -> BENCH_SCALE.json
     cblsim audit [FILE | --stress ...]              check protocol invariants on traces *)

module Cluster = Repro_cbl.Cluster
module Node = Repro_cbl.Node
module Recovery = Repro_cbl.Recovery
module Engine = Repro_workload.Engine
module Driver = Repro_workload.Driver
module Generators = Repro_workload.Generators
module Experiments = Repro_experiments.Experiments
module Report = Repro_experiments.Report
module Metrics = Repro_sim.Metrics
module Config = Repro_sim.Config
module Rng = Repro_util.Rng
module Json = Repro_obs.Json
module Event = Repro_obs.Event
module Recorder = Repro_obs.Recorder
open Cmdliner

(* ---- experiment ---- *)

let experiment_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  let quick =
    Arg.(value & flag & info [ "q"; "quick" ] ~doc:"Shrunken workloads for a fast pass.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the reports as a JSON array on stdout.")
  in
  let run quick json ids =
    let reports =
      match ids with
      | [] -> Experiments.all ~quick ()
      | ids ->
        List.map
          (fun id ->
            match Experiments.by_id id with
            | Some f -> f ~quick ()
            | None ->
              Fmt.failwith "unknown experiment %S (have: %s)" id
                (String.concat ", " Experiments.ids))
          ids
    in
    if json then
      print_endline (Json.to_string_pretty (Json.List (List.map Report.to_json reports)))
    else List.iter (Format.printf "%a" Report.render) reports
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate the claim-derived experiment tables (see DESIGN.md)")
    Term.(const run $ quick $ json $ ids)

(* ---- demo ---- *)

let workload_events ~crash_at ~recover_at =
  (match crash_at with
  | Some (node, round) -> [ (round, Driver.Crash node) ]
  | None -> [])
  @
  match (crash_at, recover_at) with
  | Some (node, _), Some round -> [ (round, Driver.Recover [ node ]) ]
  | Some (node, round), None -> [ (round + 20, Driver.Recover [ node ]) ]
  | None, _ -> []

let demo nodes owners pages txns remote theta seed crash_at recover_at trace json =
  let cluster = Cluster.create ~trace ~seed ~nodes Config.default in
  let owners = if owners = [] then [ 0 ] else owners in
  let pages_by_owner =
    List.map (fun o -> (o, Cluster.allocate_pages cluster ~owner:o ~count:pages)) owners
  in
  let engine = Engine.of_cluster cluster in
  let rng = Rng.create seed in
  let scripts =
    Generators.partitioned rng ~pages_by_owner
      ~clients:(List.init nodes (fun i -> i))
      ~txns_per_client:txns
      ~mix:{ Generators.default_mix with remote_fraction = remote; theta }
  in
  let events = workload_events ~crash_at ~recover_at in
  let outcome = Driver.run engine ~events scripts in
  let oracle = Driver.verify outcome in
  if json then begin
    let obs = Repro_sim.Env.obs (Cluster.env cluster) in
    let out =
      Json.Obj
        [
          ("config", Config.to_json Config.default);
          ( "outcome",
            Json.Obj
              [
                ("committed", Json.Int outcome.Driver.committed);
                ("voluntary_aborts", Json.Int outcome.Driver.voluntary_aborts);
                ("deadlock_aborts", Json.Int outcome.Driver.deadlock_aborts);
                ("stuck", Json.Int outcome.Driver.stuck);
                ("rounds", Json.Int outcome.Driver.rounds);
                ("sim_seconds", Json.Float outcome.Driver.sim_seconds);
              ] );
          ("oracle", Json.Str (match oracle with Ok () -> "ok" | Error _ -> "failed"));
          ( "metrics",
            Json.Obj
              [
                ("cluster", Metrics.to_json (Cluster.global_metrics cluster));
                ( "nodes",
                  Json.List
                    (List.init nodes (fun i -> Metrics.to_json (Cluster.node_metrics cluster i)))
                );
              ] );
          (* latency histograms: commit_latency / txn_duration / lock_wait /
             recovery_duration, per node and cluster-wide, with p50/p95/p99 *)
          ("latency", Recorder.histograms_json obs);
        ]
    in
    print_endline (Json.to_string_pretty out);
    if oracle <> Ok () then exit 1
  end
  else begin
    Format.printf "%a@.@." Driver.pp_outcome outcome;
    (match oracle with
    | Ok () -> Format.printf "durability oracle: OK@.@."
    | Error errs ->
      Format.printf "durability oracle: FAILED@.";
      List.iter print_endline errs;
      exit 1);
    (* zeros matter here: cbl's claim is commit_messages = 0 and
       log_records_shipped = 0, so print them rather than eliding *)
    Format.printf "-- global counters --@.%a@."
      (Metrics.pp_with ~show_zeros:true)
      (Cluster.global_metrics cluster);
    (match
       Recorder.find_hist (Repro_sim.Env.obs (Cluster.env cluster)) ~name:"commit_latency"
         ~node:(-1)
     with
    | Some h ->
      Format.printf "@.-- commit latency (cluster) --@.%a@." Repro_obs.Log_hist.pp h
    | None -> ());
    if trace then begin
      Format.printf "@.-- trace --@.";
      Repro_sim.Trace.dump Format.std_formatter (Repro_sim.Env.trace (Cluster.env cluster))
    end
  end

let demo_cmd =
  let nodes = Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Cluster size.") in
  let owners =
    Arg.(value & opt (list int) [ 0; 2 ] & info [ "owners" ] ~doc:"Nodes that own databases.")
  in
  let pages = Arg.(value & opt int 24 & info [ "pages" ] ~doc:"Pages per owner.") in
  let txns = Arg.(value & opt int 25 & info [ "txns" ] ~doc:"Transactions per client node.") in
  let remote =
    Arg.(value & opt float 0.3 & info [ "remote" ] ~doc:"Remote-access fraction (0..1).")
  in
  let theta = Arg.(value & opt float 0.0 & info [ "theta" ] ~doc:"Zipf skew (0 = uniform).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let crash =
    Arg.(
      value
      & opt (some (pair ~sep:'@' int int)) None
      & info [ "crash" ] ~docv:"NODE@ROUND" ~doc:"Crash NODE at ROUND.")
  in
  let recover =
    Arg.(value & opt (some int) None & info [ "recover" ] ~docv:"ROUND" ~doc:"Recovery round.")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the protocol event trace.") in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON object (config, outcome, metrics, latency histograms) instead of \
             the human-readable report.")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run a workload on a CBL cluster and print its metrics")
    Term.(
      const demo $ nodes $ owners $ pages $ txns $ remote $ theta $ seed $ crash $ recover
      $ trace $ json)

(* ---- trace ---- *)

(* The transaction an event belongs to: the stamped causal context,
   falling back to a [txn] attr for marker events emitted outside the
   context window (txn.begin). *)
let event_txn (e : Event.t) =
  if e.Event.txn >= 0 then e.Event.txn
  else match Event.attr_int e "txn" with Some id -> id | None -> -1

let trace_run nodes owners pages txns remote theta seed crash_at recover_at kinds node_filter
    txn_filter since until limit render flame =
  (match List.filter (fun k -> Event.kind_of_name k = None) kinds with
  | [] -> ()
  | bad ->
    Fmt.failwith "unknown event kind(s) %s; have: %s" (String.concat ", " bad)
      (String.concat ", " (List.map Event.kind_name Event.all_kinds)));
  let cluster = Cluster.create ~trace:true ~seed ~nodes Config.default in
  let owners = if owners = [] then [ 0 ] else owners in
  let pages_by_owner =
    List.map (fun o -> (o, Cluster.allocate_pages cluster ~owner:o ~count:pages)) owners
  in
  let engine = Engine.of_cluster cluster in
  let rng = Rng.create seed in
  let scripts =
    Generators.partitioned rng ~pages_by_owner
      ~clients:(List.init nodes (fun i -> i))
      ~txns_per_client:txns
      ~mix:{ Generators.default_mix with remote_fraction = remote; theta }
  in
  let events = workload_events ~crash_at ~recover_at in
  let _outcome = Driver.run engine ~events scripts in
  let obs = Repro_sim.Env.obs (Cluster.env cluster) in
  if flame then
    (* Fold the whole trace into per-txn critical-path components and
       emit folded-stack lines (pipe into any flamegraph renderer). *)
    List.iter print_endline
      (Repro_obs.Critical_path.folded_stacks
         (Repro_obs.Critical_path.analyze (Recorder.events obs)))
  else begin
    let wanted = List.filter_map Event.kind_of_name kinds in
    let selected =
      List.filter
        (fun (e : Event.t) ->
          (wanted = [] || List.mem e.Event.kind wanted)
          && (match node_filter with None -> true | Some n -> e.Event.node = n)
          && (match txn_filter with None -> true | Some id -> event_txn e = id)
          && (match since with None -> true | Some t -> e.Event.time >= t)
          && match until with None -> true | Some t -> e.Event.time <= t)
        (Recorder.events obs)
    in
    let selected =
      if limit <= 0 then selected
      else
        let n = List.length selected in
        if n <= limit then selected else List.filteri (fun i _ -> i >= n - limit) selected
    in
    List.iter
      (fun e ->
        print_endline (if render then Event.render e else Json.to_string (Event.to_json e)))
      selected;
    if Recorder.dropped obs > 0 then
      Format.eprintf "note: ring buffer dropped %d older events@." (Recorder.dropped obs)
  end

let trace_cmd =
  let nodes = Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Cluster size.") in
  let owners =
    Arg.(value & opt (list int) [ 0; 2 ] & info [ "owners" ] ~doc:"Nodes that own databases.")
  in
  let pages = Arg.(value & opt int 24 & info [ "pages" ] ~doc:"Pages per owner.") in
  let txns = Arg.(value & opt int 10 & info [ "txns" ] ~doc:"Transactions per client node.") in
  let remote =
    Arg.(value & opt float 0.3 & info [ "remote" ] ~doc:"Remote-access fraction (0..1).")
  in
  let theta = Arg.(value & opt float 0.0 & info [ "theta" ] ~doc:"Zipf skew (0 = uniform).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let crash =
    Arg.(
      value
      & opt (some (pair ~sep:'@' int int)) None
      & info [ "crash" ] ~docv:"NODE@ROUND" ~doc:"Crash NODE at ROUND.")
  in
  let recover =
    Arg.(value & opt (some int) None & info [ "recover" ] ~docv:"ROUND" ~doc:"Recovery round.")
  in
  let kinds =
    Arg.(
      value & opt (list string) []
      & info [ "kind" ] ~docv:"KINDS"
          ~doc:
            "Only these event kinds (comma-separated dotted names, e.g. \
             $(b,msg.send,lock.callback,recovery.phase)).")
  in
  let node_filter =
    Arg.(value & opt (some int) None & info [ "node" ] ~doc:"Only events at this node.")
  in
  let txn_filter =
    Arg.(
      value
      & opt (some int) None
      & info [ "txn" ] ~docv:"ID"
          ~doc:
            "Only events causally attributed to transaction $(docv) (the stamped trace \
             context, including work other nodes performed on its behalf).")
  in
  let since =
    Arg.(
      value
      & opt (some float) None
      & info [ "since" ] ~docv:"T" ~doc:"Only events at simulated time >= $(docv) seconds.")
  in
  let until =
    Arg.(
      value
      & opt (some float) None
      & info [ "until" ] ~docv:"T" ~doc:"Only events at simulated time <= $(docv) seconds.")
  in
  let limit =
    Arg.(value & opt int 0 & info [ "limit" ] ~doc:"Keep only the last N events (0 = all).")
  in
  let render =
    Arg.(
      value & flag
      & info [ "render" ] ~doc:"Human-readable one-per-line rendering instead of JSONL.")
  in
  let flame =
    Arg.(
      value & flag
      & info [ "flame" ]
          ~doc:
            "Instead of dumping events, fold the trace into per-transaction critical-path \
             components and print flamegraph folded-stack lines \
             ($(b,node;txn;component weight)), weights in microseconds of simulated time.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a traced workload and dump the typed event stream as JSON lines")
    Term.(
      const trace_run $ nodes $ owners $ pages $ txns $ remote $ theta $ seed $ crash
      $ recover $ kinds $ node_filter $ txn_filter $ since $ until $ limit $ render $ flame)

(* ---- stress ---- *)

module Fault_plan = Repro_fault.Fault_plan
module Injector = Repro_fault.Injector

let read_plan file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Fault_plan.of_json (Json.of_string s)

let write_plan file plan =
  let oc = open_out file in
  output_string oc (Json.to_string_pretty (Fault_plan.to_json plan));
  output_char oc '\n';
  close_out oc

(* One randomized stress run, shared between [cblsim stress] (verify
   outcomes) and [cblsim audit --stress] (replay the trace through the
   protocol auditor).  All randomness is drawn from [seed], so the same
   seed reproduces the identical schedule in both; tracing changes no
   metric or clock reading (the test suite asserts it). *)
let stress_one ?(trace = false) ?trace_capacity ~classes ~faults_on ~loaded_plan ~group_commit
    ~elr seed =
  let rng = Rng.create seed in
  (* The plan draws from a split substream so that the legacy draws
     below are untouched; without fault flags nothing here runs and
     historical seeds reproduce bit-identically. *)
  let plan =
    match loaded_plan with
    | Some _ as p -> p
    | None -> if faults_on then Some (Fault_plan.generate (Rng.split rng) ~classes) else None
  in
  let faults = Option.map Injector.create plan in
  let config =
    (* like the plan, group-commit parameters come from their own
       substream; with the flag off no draw happens and historical
       seeds reproduce bit-identically *)
    if group_commit then begin
      let gr = Rng.split rng in
      if Rng.chance gr 0.75 then
        Config.with_group_commit Config.instant
          ~window_ms:(0.5 +. Rng.float gr 20.)
          ~max_batch:(2 + Rng.int gr 7)
      else Config.instant
    end
    else Config.instant
  in
  let config =
    (* early release draws from its own substream too, and only with the
       flag on — historical seeds replay bit-identically without it.
       The bit is inert unless the group-commit draw above produced a
       batching window (elr gates on group commit), so pair [--elr]
       with [--group-commit]. *)
    if elr then begin
      let er = Rng.split rng in
      Config.with_early_release config (Rng.chance er 0.75)
    end
    else config
  in
  let nodes = 2 + Rng.int rng 4 in
  let cluster =
    Cluster.create ~trace ?trace_capacity ~seed ?faults ~nodes
      ~pool_capacity:(8 + Rng.int rng 24) config
  in
  let owners = List.init (1 + Rng.int rng (min 3 nodes)) (fun i -> i) in
  let pages_by_owner =
    List.map
      (fun o -> (o, Cluster.allocate_pages cluster ~owner:o ~count:(8 + Rng.int rng 16)))
      owners
  in
  let engine0 = Engine.of_cluster cluster in
  let engine =
    if seed mod 2 = 1 then
      {
        engine0 with
        Engine.recover =
          (fun ~nodes -> Cluster.recover ~strategy:Recovery.Merged_logs cluster ~nodes);
      }
    else engine0
  in
  let scripts =
    Generators.partitioned rng ~pages_by_owner
      ~clients:(List.init nodes (fun i -> i))
      ~txns_per_client:(4 + Rng.int rng 10)
      ~mix:
        {
          Generators.ops_per_txn = 2 + Rng.int rng 8;
          update_fraction = 0.3 +. Rng.float rng 0.6;
          remote_fraction = Rng.float rng 0.8;
          theta = Rng.float rng 1.0;
          savepoint_fraction = Rng.float rng 0.3;
          abort_fraction = Rng.float rng 0.2;
        }
  in
  let events = ref [] in
  let t = ref 10 in
  let crashed = ref [] in
  for _ = 1 to Rng.int rng 4 do
    let victim = Rng.int rng nodes in
    if not (List.mem victim !crashed) then begin
      events := (!t, Driver.Crash victim) :: !events;
      crashed := victim :: !crashed;
      t := !t + 5 + Rng.int rng 20;
      if Rng.chance rng 0.6 || List.length !crashed >= 2 then begin
        events := (!t, Driver.Recover !crashed) :: !events;
        crashed := [];
        t := !t + 5 + Rng.int rng 15
      end
    end
  done;
  if !crashed <> [] then events := (!t + 5, Driver.Recover !crashed) :: !events;
  (* Fault-injected runs also take checkpoints mid-workload: the
     mid-checkpoint crash point can only fire inside one. *)
  if faults_on then
    for _ = 1 to 2 + Rng.int rng 3 do
      events := (5 + Rng.int rng 60, Driver.Checkpoint (Rng.int rng nodes)) :: !events
    done;
  let outcome =
    Driver.run engine
      ~events:(List.sort compare !events)
      ~max_rounds:30_000
      ?auto_recover:(if faults_on then Some 6 else None)
      scripts
  in
  (* The end-of-run cleanup recovery can itself die at a recovery
     crash point (that is the point of the recovery fault class);
     re-enter with the grown down set.  Both the crash and the
     partition budgets are bounded, so the loop terminates — the cap
     is a backstop turning a livelock bug into a visible failure. *)
  let rec recover_all attempts =
    let down =
      List.filter
        (fun n -> not (Cluster.node cluster n |> Node.is_up))
        (List.init nodes (fun i -> i))
    in
    if down <> [] then
      if attempts > 100 then Fmt.failwith "seed %d: recovery did not converge" seed
      else begin
        (try Cluster.recover cluster ~nodes:down with Repro_cbl.Block.Would_block _ -> ());
        recover_all (attempts + 1)
      end
  in
  recover_all 0;
  Cluster.check_invariants cluster;
  (cluster, outcome, plan)

let stress runs start faults_spec plan_file dump_plan group_commit elr =
  let classes =
    match Fault_plan.classes_of_string faults_spec with
    | Ok c -> c
    | Error msg -> Fmt.failwith "--faults: %s" msg
  in
  let faults_on =
    classes.Fault_plan.net || classes.Fault_plan.disk || classes.Fault_plan.crashpoints
    || classes.Fault_plan.recovery || plan_file <> None
  in
  let loaded_plan = Option.map read_plan plan_file in
  let last_plan = ref None in
  let fault_totals = Metrics.create () in
  (* the same randomized schedule the property test uses, sequentially *)
  let failures = ref 0 in
  for seed = start to start + runs - 1 do
    let cluster, outcome, plan =
      stress_one ~classes ~faults_on ~loaded_plan ~group_commit ~elr seed
    in
    if plan <> None then last_plan := plan;
    (match (outcome.Driver.stuck, Driver.verify outcome) with
    | 0, Ok () -> ()
    | stuck, result ->
      incr failures;
      Format.printf "seed %d: FAILED (stuck=%d%s)@." seed stuck
        (match result with Ok () -> "" | Error e -> "; " ^ List.hd e));
    if faults_on then begin
      let g = Cluster.global_metrics cluster in
      fault_totals.Metrics.net_msgs_dropped <-
        fault_totals.Metrics.net_msgs_dropped + g.Metrics.net_msgs_dropped;
      fault_totals.Metrics.net_msgs_duplicated <-
        fault_totals.Metrics.net_msgs_duplicated + g.Metrics.net_msgs_duplicated;
      fault_totals.Metrics.net_msgs_delayed <-
        fault_totals.Metrics.net_msgs_delayed + g.Metrics.net_msgs_delayed;
      fault_totals.Metrics.net_link_blocks <-
        fault_totals.Metrics.net_link_blocks + g.Metrics.net_link_blocks;
      fault_totals.Metrics.torn_crashes <-
        fault_totals.Metrics.torn_crashes + g.Metrics.torn_crashes;
      fault_totals.Metrics.torn_bytes_discarded <-
        fault_totals.Metrics.torn_bytes_discarded + g.Metrics.torn_bytes_discarded;
      fault_totals.Metrics.injected_crashes <-
        fault_totals.Metrics.injected_crashes + g.Metrics.injected_crashes
    end;
    if (seed - start) mod 50 = 49 then Format.printf "...%d runs ok@." (seed - start + 1)
  done;
  (match (dump_plan, !last_plan) with
  | Some file, Some plan -> write_plan file plan
  | Some file, None -> Fmt.failwith "--dump-plan %s: no fault plan was generated" file
  | None, _ -> ());
  if faults_on then
    Format.printf
      "faults injected: dropped=%d duplicated=%d delayed=%d link_blocks=%d torn=%d \
       torn_bytes=%d crashes=%d@."
      fault_totals.Metrics.net_msgs_dropped fault_totals.Metrics.net_msgs_duplicated
      fault_totals.Metrics.net_msgs_delayed fault_totals.Metrics.net_link_blocks
      fault_totals.Metrics.torn_crashes fault_totals.Metrics.torn_bytes_discarded
      fault_totals.Metrics.injected_crashes;
  if !failures = 0 then Format.printf "stress: %d randomized runs verified@." runs
  else begin
    Format.printf "stress: %d FAILURES@." !failures;
    exit 1
  end

let stress_cmd =
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Number of randomized runs.") in
  let start = Arg.(value & opt int 0 & info [ "start" ] ~doc:"First seed.") in
  let faults =
    Arg.(
      value & opt string ""
      & info [ "faults" ] ~docv:"CLASSES"
          ~doc:
            "Enable deterministic fault injection.  Comma-separated classes from $(b,net) \
             (message drop / duplication / delay / temporary partitions), $(b,disk) (torn log \
             writes on crash), $(b,crashpoints) (crashes at named protocol points) and \
             $(b,recovery) (crashes, drops and partitions during recovery itself: named \
             crash points after analysis, mid-redo, before undo, mid-undo and at the \
             end-of-restart checkpoint — recovery must restart or defer its way through); \
             $(b,all) enables everything.")
  in
  let plan_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan-json" ] ~docv:"FILE"
          ~doc:
            "Replay the fault plan stored in $(docv) (as written by $(b,--dump-plan)) instead \
             of generating one per seed.  The same plan and workload reproduce the identical \
             run, bit for bit.")
  in
  let dump_plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-plan" ] ~docv:"FILE"
          ~doc:"Write the last run's fault plan to $(docv) as JSON.")
  in
  let group_commit =
    Arg.(
      value & flag
      & info [ "group-commit" ]
          ~doc:
            "Randomize group-commit batching per seed (~3/4 of the runs get a window and \
             batch cap drawn from a dedicated substream), so the faulted sweep exercises \
             batched commit paths.")
  in
  let elr =
    Arg.(
      value & flag
      & info [ "elr" ]
          ~doc:
            "Randomize early lock release per seed (~3/4 of the runs set the bit, drawn from \
             a dedicated substream).  Only effective on runs where $(b,--group-commit) drew a \
             batching window — early release gates on group commit — so pair the two flags.")
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Randomized crash-schedule runs with the durability oracle, optionally under \
          deterministic fault injection")
    Term.(const stress $ runs $ start $ faults $ plan_json $ dump_plan $ group_commit $ elr)

(* ---- scale ---- *)

module Scale = Repro_workload.Scale

(* Big-cluster scale runs (the CLI face of E14).  Deterministic columns
   (committed, txn/s over simulated time, p95, abort rate, scheduler
   events) come from the simulation; wall-clock columns (sim-events/sec,
   wall seconds) measure the simulator itself on this machine.  The
   report is written as BENCH_SCALE.json so the bench regression gate
   can hold both kinds of column to a budget. *)
let scale_run nodes_list clients_per_node profile txns seed mpl pages_per_node out json =
  (match Scale.find profile with
  | Some _ -> ()
  | None ->
    Fmt.failwith "unknown profile %S (have: %s)" profile (String.concat ", " (Scale.names ())));
  let points = List.map (fun n -> (n, clients_per_node * n)) nodes_list in
  let runs =
    List.map
      (fun (nodes, clients) ->
        let t0 = Unix.gettimeofday () in
        let o =
          Experiments.scale_point ~seed ~mpl ~pages_per_node ~txns_per_client:txns ~nodes
            ~clients ~profile ()
        in
        let wall = Unix.gettimeofday () -. t0 in
        Format.eprintf "scale: %d nodes / %d clients done in %.1fs wall@." nodes clients wall;
        ((nodes, clients), o, wall))
      points
  in
  let rows =
    List.map
      (fun ((nodes, clients), o, wall) ->
        Experiments.scale_row ~nodes ~clients ~profile o
        @ [
            Report.f2 (float_of_int o.Driver.sched_events /. wall);
            Printf.sprintf "%.2f" wall;
          ])
      runs
  in
  let report =
    {
      Report.id = "SCALE";
      title = Printf.sprintf "Big-cluster scale sweep: profile %s, %d clients/node" profile
          clients_per_node;
      claim =
        "the message-free commit path keeps committed throughput growing with node count; \
         the hot-path scheduler sustains the 100x world (events/s is the simulator's own \
         wall-clock speed and varies per machine)";
      header = Experiments.scale_header @ [ "events/s (wall)"; "wall s" ];
      rows;
      notes =
        [
          Printf.sprintf "seed %d, mpl %d, %d pages/node, %d txns/client; durability oracle \
                          checked on every point" seed mpl pages_per_node txns;
        ];
      data = [];
    }
  in
  (match out with
  | Some file ->
    let oc = open_out file in
    output_string oc (Json.to_string_pretty (Report.to_json report));
    output_char oc '\n';
    close_out oc;
    Format.eprintf "scale: wrote %s@." file
  | None -> ());
  if json then print_endline (Json.to_string_pretty (Report.to_json report))
  else Format.printf "%a" Report.render report

let scale_cmd =
  let nodes =
    Arg.(
      value
      & opt (list int) [ 64; 128; 256 ]
      & info [ "nodes" ] ~docv:"N,N,..." ~doc:"Cluster sizes to sweep.")
  in
  let clients_per_node =
    Arg.(
      value & opt int 8
      & info [ "clients-per-node" ] ~doc:"Scripted clients per node (total = N x this).")
  in
  let profile =
    Arg.(
      value & opt string "hot-owner"
      & info [ "profile" ] ~docv:"NAME"
          ~doc:
            "Workload profile: $(b,uniform), $(b,zipf-hot), $(b,hot-owner), $(b,read-heavy), \
             $(b,write-heavy) or $(b,mixed-geometric).")
  in
  let txns =
    Arg.(value & opt int 4 & info [ "txns" ] ~doc:"Transactions per client.")
  in
  let seed = Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let mpl =
    Arg.(value & opt int 8 & info [ "mpl" ] ~doc:"Max in-flight transactions per node.")
  in
  let pages_per_node =
    Arg.(value & opt int 16 & info [ "pages-per-node" ] ~doc:"Pages owned by each node.")
  in
  let out =
    Arg.(
      value
      & opt (some string) (Some "BENCH_SCALE.json")
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the report as JSON to $(docv) (the bench gate's input).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON instead of a table.")
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Sweep big-cluster workloads (named profiles, hundreds of nodes, thousands of \
          clients) and report throughput, latency, abort rate and simulator speed")
    Term.(
      const scale_run $ nodes $ clients_per_node $ profile $ txns $ seed $ mpl
      $ pages_per_node $ out $ json)

(* ---- audit ---- *)

module Audit = Repro_obs.Audit

let read_jsonl_events file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let bad = ref 0 in
  let events =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" then None
        else
          match Event.of_json (Json.of_string line) with
          | Some e -> Some e
          | None | (exception Json.Parse_error _) ->
            incr bad;
            None)
      (String.split_on_char '\n' s)
  in
  if !bad > 0 then Format.eprintf "note: %s: %d unparsable line(s) skipped@." file !bad;
  events

let audit_run file stress_mode runs start faults_spec group_commit elr out =
  let reports =
    match (file, stress_mode) with
    | Some f, _ ->
      (* offline: audit a recorded JSONL trace (cblsim trace > t.jsonl) *)
      [ (Json.Str f, Audit.run (read_jsonl_events f)) ]
    | None, true ->
      (* replay: re-run stress schedules traced (a large ring keeps the
         prefix-dependent checks armed) and audit each run's stream *)
      let classes =
        match Repro_fault.Fault_plan.classes_of_string faults_spec with
        | Ok c -> c
        | Error msg -> Fmt.failwith "--faults: %s" msg
      in
      let faults_on =
        classes.Fault_plan.net || classes.Fault_plan.disk || classes.Fault_plan.crashpoints
        || classes.Fault_plan.recovery
      in
      List.init runs (fun i ->
          let seed = start + i in
          let cluster, _outcome, _plan =
            stress_one ~trace:true ~trace_capacity:(1 lsl 20) ~classes ~faults_on
              ~loaded_plan:None ~group_commit ~elr seed
          in
          let obs = Repro_sim.Env.obs (Cluster.env cluster) in
          if (i + 1) mod 50 = 0 then Format.eprintf "...%d runs audited@." (i + 1);
          (Json.Int seed, Audit.run (Recorder.drain obs)))
    | None, false -> Fmt.failwith "audit: need a trace FILE or --stress"
  in
  let total_violations =
    List.fold_left (fun acc (_, r) -> acc + List.length r.Audit.violations) 0 reports
  in
  let report_json =
    Json.Obj
      [
        ("runs", Json.Int (List.length reports));
        ("total_violations", Json.Int total_violations);
        ("ok", Json.Bool (total_violations = 0));
        ( "reports",
          Json.List
            (List.map
               (fun (key, r) -> Json.Obj [ ("run", key); ("report", Audit.to_json r) ])
               reports) );
      ]
  in
  (match out with
  | Some f ->
    let oc = open_out f in
    output_string oc (Json.to_string_pretty report_json);
    output_char oc '\n';
    close_out oc
  | None -> ());
  List.iter
    (fun (key, r) ->
      if not (Audit.ok r) then begin
        Format.printf "run %s:@." (Json.to_string key);
        Format.printf "%a" Audit.pp r
      end)
    reports;
  if total_violations = 0 then
    Format.printf "audit: OK — %d run(s), 0 violations@." (List.length reports)
  else begin
    Format.printf "audit: %d violation(s) across %d run(s)@." total_violations
      (List.length reports);
    exit 1
  end

let audit_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace to audit (as dumped by $(b,cblsim trace)).")
  in
  let stress_mode =
    Arg.(
      value & flag
      & info [ "stress" ]
          ~doc:
            "Instead of a trace file, re-run the randomized stress schedules with tracing on \
             and audit each run's event stream.")
  in
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Stress runs to audit.") in
  let start = Arg.(value & opt int 0 & info [ "start" ] ~doc:"First stress seed.") in
  let faults =
    Arg.(
      value & opt string ""
      & info [ "faults" ] ~docv:"CLASSES"
          ~doc:"Fault classes for $(b,--stress) runs; same syntax as $(b,cblsim stress).")
  in
  let group_commit =
    Arg.(
      value & flag
      & info [ "group-commit" ]
          ~doc:"Randomize group-commit batching per seed, as in $(b,cblsim stress).")
  in
  let elr =
    Arg.(
      value & flag
      & info [ "elr" ]
          ~doc:
            "Randomize early lock release per seed, as in $(b,cblsim stress) — the audit then \
             also polices the weakened discipline (release-after-submit, closure-loss).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the full JSON violation report to $(docv).")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Replay recorded event streams through the protocol auditor (WAL ordering, \
          group-commit batch-loss closure, PSN monotonicity, deferred-page fencing, strict \
          2PL release discipline — weakened to release-after-submit plus closure-loss when \
          early lock release is on); non-zero exit on any violation")
    Term.(
      const audit_run $ file $ stress_mode $ runs $ start $ faults $ group_commit $ elr $ out)

let () =
  let doc = "client-based logging for high performance distributed architectures (ICDE'96)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "cblsim" ~doc)
          [ experiment_cmd; demo_cmd; trace_cmd; stress_cmd; scale_cmd; audit_cmd ]))
