(* The benchmark harness.

   Two layers:

   1. The experiment tables (DESIGN.md §3, EXPERIMENTS.md): the paper has
      no result tables of its own, so each claim-derived experiment
      F1/E1..E10 prints the table recorded in EXPERIMENTS.md.  This is
      the "regenerate every table and figure" entry point.

   2. Bechamel wall-clock benchmarks: one Test.make per experiment
      (quick configuration) plus micro-benchmarks of the hot paths
      (record codec, log append+force, PSN-guarded redo, NodePSNList
      merge, the full commit path).

   Every table run also writes one machine-readable BENCH_<id>.json per
   experiment (the Report.to_json object, including E4's per-phase
   recovery timings) into the current directory.

   Run with:  dune exec bench/main.exe             (tables + bechamel)
              dune exec bench/main.exe -- tables   (tables only)
              dune exec bench/main.exe -- micro    (bechamel only)
              dune exec bench/main.exe -- json     (quick tables, JSON files,
                                                    lint + tracing + elr guards)
              dune exec bench/main.exe -- lint     (lint timing guard only)
              dune exec bench/main.exe -- tracing  (tracing-overhead guard)
              dune exec bench/main.exe -- elr      (lock-hold duration, elr off/on) *)

module Experiments = Repro_experiments.Experiments
module Report = Repro_experiments.Report
module Cluster = Repro_cbl.Cluster
module Record = Repro_wal.Record
module Log_manager = Repro_wal.Log_manager
module Lsn = Repro_wal.Lsn
module Page = Repro_storage.Page
module Page_id = Repro_storage.Page_id
module Redo = Repro_aries.Redo
module Node_psn_list = Repro_cbl.Node_psn_list
module Config = Repro_sim.Config
module Buffer_pool = Repro_buffer.Buffer_pool
open Bechamel
open Toolkit

(* ---- layer 1: the experiment tables ---- *)

let write_json_reports reports =
  List.iter
    (fun (r : Report.t) ->
      let file = Printf.sprintf "BENCH_%s.json" r.Report.id in
      let oc = open_out file in
      output_string oc (Repro_obs.Json.to_string_pretty (Report.to_json r));
      output_char oc '\n';
      close_out oc;
      Format.printf "wrote %s@." file)
    reports

let run_tables () =
  Format.printf "#### Experiment tables (see EXPERIMENTS.md for the recorded copies) ####@.";
  let reports = Experiments.all () in
  List.iter (Format.printf "%a" Report.render) reports;
  write_json_reports reports

(* ---- layer 1b: lint timing guard ----

   cbl-lint gates every CI run before the tests, so it must stay cheap
   even now that it builds a whole-repo call graph.  Three phases are
   timed separately — parse (compiler-libs over every file), summaries
   (phase-1 effect extraction, uncached), and the full run (parse +
   summaries + call graph + fixpoint + all rules) — each against its
   own wall budget.  BENCH_LINT.json carries a header/rows table whose
   "headroom x" column (budget / elapsed) check_regression gates at
   1.0 with zero tolerance: any phase over budget fails CI.  Run from
   the repo root; skipped elsewhere (no tree to lint). *)

let lint_budget_seconds = 2.0
let lint_parse_budget_seconds = 1.0
let lint_summaries_budget_seconds = 1.0

let bench_lint () =
  if not (Sys.file_exists "lib" && Sys.file_exists "bin") then
    Format.printf "lint timing: not at the repo root, skipped@."
  else begin
    let paths = [ "lib"; "bin"; "bench"; "test" ] in
    let time f =
      let t0 = Sys.time () in
      let r = f () in
      (r, max 1e-6 (Sys.time () -. t0))
    in
    let (_, sources, _), parse_s =
      time (fun () -> Repro_lint.Lint.parse_tree ~root:"." ~paths)
    in
    (* no cache file: measure true extraction cost, not a cache hit *)
    let summaries, summaries_s = time (fun () -> Repro_lint.Summary.of_sources sources) in
    let result, full_s =
      time (fun () ->
          Repro_lint.Lint.run ~clock:Sys.time ~root:"." ~paths ~rules:Repro_lint.Rules.all ())
    in
    let phases =
      [
        ("parse", parse_s, lint_parse_budget_seconds);
        ("summaries", summaries_s, lint_summaries_budget_seconds);
        ("full", full_s, lint_budget_seconds);
      ]
    in
    let ok = List.for_all (fun (_, s, budget) -> s <= budget) phases in
    let module J = Repro_obs.Json in
    let json =
      J.Obj
        [
          ("id", J.Str "lint_timing");
          ("files_scanned", J.Int result.Repro_lint.Lint.files_scanned);
          ("functions_summarized", J.Int (List.fold_left
               (fun acc (f : Repro_lint.Summary.file) -> acc + List.length f.Repro_lint.Summary.fns)
               0 summaries));
          ("seconds", J.Float full_s);
          ("budget_seconds", J.Float lint_budget_seconds);
          ("ok", J.Bool ok);
          ( "rule_seconds",
            J.Obj
              (List.map (fun (id, s) -> (id, J.Float s)) result.Repro_lint.Lint.rule_seconds) );
          ("header", J.List (List.map (fun h -> J.Str h) [ "phase"; "seconds"; "budget s"; "headroom x" ]));
          ( "rows",
            J.List
              (List.map
                 (fun (phase, s, budget) ->
                   J.List
                     [
                       J.Str phase;
                       J.Str (Printf.sprintf "%.4f" s);
                       J.Str (Printf.sprintf "%.1f" budget);
                       J.Str (Printf.sprintf "%.2f" (budget /. s));
                     ])
                 phases) );
        ]
    in
    let oc = open_out "BENCH_LINT.json" in
    output_string oc (J.to_string_pretty json);
    output_char oc '\n';
    close_out oc;
    List.iter
      (fun (phase, s, budget) ->
        Format.printf "lint timing: %-9s %.3fs (budget %.1fs, headroom %.1fx)@." phase s budget
          (budget /. s))
      phases;
    Format.printf "lint timing: %d files — wrote BENCH_LINT.json@."
      result.Repro_lint.Lint.files_scanned;
    if not ok then begin
      Format.printf "lint timing over budget: the lint gate would slow every CI run@.";
      exit 1
    end
  end

(* ---- layer 1c: tracing overhead ----

   The causal-tracing instrumentation sits on the hottest paths (every
   charge, message, lock and commit goes through the [Env.tracing]
   check; [Env.with_txn] swaps the recorder context around every
   transaction action), so it must be invisible to the simulation.
   Two gates:

   - simulated metrics must be bit-identical traced and untraced —
     tracing never advances the clock or touches a counter.  Checked
     here directly (exit 1 on divergence); the test suite re-checks it
     across fault schedules.
   - the traced run's simulated E11 throughput (committed / busy s,
     the same column E11 reports) is written to BENCH_TRACING.json and
     gated by check_regression against the committed baseline with a
     tight 5% tolerance — a drift means the instrumentation leaked
     charges into the simulation, not measurement noise.

   Wall-clock cost of an *enabled* trace is also measured and reported
   in the notes; it is informational (recording ~20 events per commit
   has a real price, paid only when tracing is requested). *)

let bench_tracing_overhead () =
  let setting = (8, 20.) in
  let reps = 5 in
  let run ~trace =
    let t0 = Sys.time () in
    let committed = ref 0 in
    let busy = ref 0. in
    let metrics = ref [] in
    for _ = 1 to reps do
      let cluster, outcome = Experiments.group_commit_run ~trace ~quick:false setting in
      committed := !committed + outcome.Repro_workload.Driver.committed;
      let m = Cluster.node_metrics cluster 0 in
      busy := !busy +. m.Repro_sim.Metrics.busy_seconds;
      (* the dropped-events counter may legitimately differ (it only
         counts when tracing is on); everything else must match *)
      metrics :=
        (match Repro_sim.Metrics.to_json (Cluster.global_metrics cluster) with
        | Repro_obs.Json.Obj kvs ->
          List.filter (fun (name, _) -> name <> "trace_events_dropped") kvs
        | j -> [ ("metrics", j) ])
    done;
    (Sys.time () -. t0, !committed, !busy, !metrics)
  in
  ignore (run ~trace:false) (* warm-up: page allocation, minor heap *);
  let wall_off, committed_off, busy_off, m_off = run ~trace:false in
  let wall_on, committed_on, busy_on, m_on = run ~trace:true in
  if m_off <> m_on then begin
    Format.printf "tracing overhead: traced metrics diverge from untraced — tracing is not free@.";
    exit 1
  end;
  let sim_tp committed busy = float_of_int committed /. busy in
  let tp_off = sim_tp committed_off busy_off and tp_on = sim_tp committed_on busy_on in
  let wall_overhead = (wall_on -. wall_off) /. wall_off in
  let report =
    {
      Report.id = "TRACING";
      title = "Tracing overhead: the E11 workload untraced vs traced";
      claim =
        "causal tracing is observation, not behaviour: the traced run's simulated metrics \
         are bit-identical to the untraced run's, so its txn/s column cannot drift from \
         E11's except through a real instrumentation leak";
      header = [ "mode"; "committed"; "busy s"; "txn/s"; "wall s" ];
      rows =
        [
          [ "untraced"; string_of_int (committed_off / reps); Report.f2 (busy_off /. float_of_int reps);
            Report.f2 tp_off; Report.f (wall_off /. float_of_int reps) ];
          [ "traced"; string_of_int (committed_on / reps); Report.f2 (busy_on /. float_of_int reps);
            Report.f2 tp_on; Report.f (wall_on /. float_of_int reps) ];
        ];
      data = [];
      notes =
        [
          "simulated metrics bit-identical traced vs untraced (checked, hard failure on \
           divergence)";
          Printf.sprintf
            "enabled-trace wall-clock cost: %+.0f%% per run — paid only when tracing is \
             requested; the disabled path is a dead branch"
            (wall_overhead *. 100.);
        ];
    }
  in
  write_json_reports [ report ];
  Format.printf
    "tracing overhead: sim %.2f txn/s untraced vs %.2f traced (identical metrics); wall %+.0f%% \
     when enabled@."
    tp_off tp_on (wall_overhead *. 100.)

(* ---- layer 1d: early-lock-release lock-hold duration ----

   The whole point of elr is to stop a committing transaction from
   pinning its pages across the group-commit window: the lock-hold
   histogram (begin-of-first-lock to release, simulated seconds) must
   collapse when the release moves from post-force to batch-submit.
   Both runs come off the simulated clock, so the comparison is
   bit-deterministic; the txn/s gate lives in the E15 baseline entry. *)

let bench_elr () =
  let clients = 16 in
  let run ~early_release =
    let cluster, outcome = Experiments.elr_run ~early_release ~clients () in
    let obs = Repro_sim.Env.obs (Cluster.env cluster) in
    let hist =
      match Repro_obs.Recorder.find_hist obs ~name:"lock_hold" ~node:0 with
      | Some h -> h
      | None -> failwith "bench elr: lock_hold histogram missing"
    in
    (outcome, hist)
  in
  let off, h_off = run ~early_release:false in
  let on, h_on = run ~early_release:true in
  let module H = Repro_obs.Log_hist in
  let module D = Repro_workload.Driver in
  let row label (o : D.outcome) h =
    [
      label;
      string_of_int (H.count h);
      Report.ms (H.mean h);
      Report.ms (H.quantile h 0.95);
      Report.ms o.D.latencies.Repro_util.Stats.p95;
      Report.f2 (float_of_int o.D.committed /. o.D.sim_seconds);
    ]
  in
  let cut = 1. -. (H.mean h_on /. H.mean h_off) in
  let report =
    {
      Report.id = "ELR";
      title = "Early lock release: lock-hold duration, elr off vs on (E15 workload, mpl 16)";
      claim =
        "releasing a committing transaction's page locks at batch-submit instead of after \
         the batch force collapses mean lock-hold duration — the batching window leaves \
         the lock footprint";
      header = [ "elr"; "holds"; "hold mean"; "hold p95"; "commit p95"; "txn/s (sim)" ];
      rows = [ row "off" off h_off; row "on" on h_on ];
      data = [];
      notes =
        [
          Printf.sprintf "mean lock-hold cut %.0f%% with early release on" (100. *. cut);
          "hold times and txn/s are simulated-clock readings: deterministic, any drift is a \
           behaviour change";
        ];
    }
  in
  write_json_reports [ report ];
  Format.printf "elr lock-hold: mean %s off vs %s on (%.0f%% cut)@."
    (Report.ms (H.mean h_off)) (Report.ms (H.mean h_on)) (100. *. cut)

(* ---- layer 2: bechamel ---- *)

let sample_update =
  {
    Record.txn = 7;
    prev = 1234;
    body =
      Update
        {
          pid = Page_id.make ~owner:1 ~slot:9;
          psn_before = 41;
          op = Physical { off = 128; before = String.make 32 'a'; after = String.make 32 'b' };
        };
  }

let encoded_update = Record.encode sample_update

let micro_tests =
  [
    Test.make ~name:"record-encode" (Staged.stage (fun () -> Record.encode sample_update));
    Test.make ~name:"record-decode" (Staged.stage (fun () -> Record.decode encoded_update));
    Test.make ~name:"log-append+force"
      (Staged.stage
         (let env = Repro_sim.Env.create Config.instant in
          let log = Log_manager.create env (Repro_sim.Metrics.create ()) () in
          fun () ->
            let lsn = Log_manager.append log sample_update in
            Log_manager.force log ~upto:lsn));
    Test.make ~name:"redo-apply"
      (Staged.stage
         (let page = Page.create ~id:(Page_id.make ~owner:0 ~slot:0) ~psn:0 ~size:8192 in
          let op = Record.Delta { off = 0; delta = 1L } in
          fun () -> ignore (Redo.apply page ~psn_before:(Page.psn page) ~op)));
    Test.make ~name:"psn-list-merge"
      (Staged.stage
         (let runs =
            List.init 4 (fun node ->
                List.init 16 (fun i -> { Node_psn_list.node; psn = (i * 4) + node; lsn = i }))
          in
          fun () -> Node_psn_list.merge runs));
    Test.make ~name:"commit-path (1 node, 2 updates)"
      (Staged.stage
         (let cluster = Cluster.create ~nodes:1 Config.instant in
          let pages = Cluster.allocate_pages cluster ~owner:0 ~count:2 in
          fun () ->
            let t = Cluster.begin_txn cluster ~node:0 in
            List.iter (fun p -> Cluster.update_delta cluster ~txn:t ~pid:p ~off:0 1L) pages;
            Cluster.commit cluster ~txn:t));
    (* unbatched vs batched force: same 8 commits, 8 forces vs 1 *)
    Test.make ~name:"commit-8-txns-unbatched (8 forces)"
      (Staged.stage
         (let cluster = Cluster.create ~nodes:1 Config.instant in
          let pages = Cluster.allocate_pages cluster ~owner:0 ~count:8 in
          fun () ->
            List.iter
              (fun p ->
                let t = Cluster.begin_txn cluster ~node:0 in
                Cluster.update_delta cluster ~txn:t ~pid:p ~off:0 1L;
                Cluster.commit cluster ~txn:t)
              pages));
    Test.make ~name:"commit-8-txns-batched (1 shared force)"
      (Staged.stage
         (let config = Config.with_group_commit Config.instant ~window_ms:10. ~max_batch:8 in
          let cluster = Cluster.create ~nodes:1 config in
          let pages = Cluster.allocate_pages cluster ~owner:0 ~count:8 in
          fun () ->
            let txns =
              List.map
                (fun p ->
                  let t = Cluster.begin_txn cluster ~node:0 in
                  Cluster.update_delta cluster ~txn:t ~pid:p ~off:0 1L;
                  t)
                pages
            in
            (* the 8th submit fills the batch and triggers the one force *)
            List.iter (fun t -> Cluster.commit cluster ~txn:t) txns;
            List.iter (fun t -> ignore (Cluster.commit_outcome cluster ~txn:t)) txns));
    Test.make ~name:"log-8-appends+8-forces"
      (Staged.stage
         (let env = Repro_sim.Env.create Config.instant in
          let log = Log_manager.create env (Repro_sim.Metrics.create ()) () in
          fun () ->
            for _ = 1 to 8 do
              let lsn = Log_manager.append log sample_update in
              Log_manager.force log ~upto:lsn
            done));
    Test.make ~name:"log-8-appends+1-shared-force"
      (Staged.stage
         (let env = Repro_sim.Env.create Config.instant in
          let log = Log_manager.create env (Repro_sim.Metrics.create ()) () in
          fun () ->
            let last = ref Lsn.nil in
            for _ = 1 to 8 do
              last := Log_manager.append log sample_update
            done;
            Log_manager.force_shared log ~upto:!last ~sharers:8));
    (* eviction policies at a large pool: the clock hand is amortised
       O(1) per victim, the LRU scan is O(n) *)
    Test.make ~name:"evict-clock (4096 frames)"
      (Staged.stage
         (let pool = Buffer_pool.create ~policy:Buffer_pool.Clock ~capacity:4096 () in
          for i = 0 to 4095 do
            ignore
              (Buffer_pool.install pool
                 (Page.create ~id:(Page_id.make ~owner:0 ~slot:i) ~psn:0 ~size:64))
          done;
          fun () ->
            match Buffer_pool.choose_victim pool with
            | Some f -> f.Buffer_pool.referenced <- true (* keep the sweep honest *)
            | None -> assert false));
    Test.make ~name:"evict-lru (4096 frames)"
      (Staged.stage
         (let pool = Buffer_pool.create ~policy:Buffer_pool.Lru ~capacity:4096 () in
          for i = 0 to 4095 do
            ignore
              (Buffer_pool.install pool
                 (Page.create ~id:(Page_id.make ~owner:0 ~slot:i) ~psn:0 ~size:64))
          done;
          fun () -> ignore (Buffer_pool.choose_victim pool)));
  ]

(* Allocation of the record codec: the shared scratch buffer means a
   steady-state encode allocates only the result string, not a fresh
   Buffer per call.  The fresh-encoder row replays the same payload
   through [Codec.encoder ()] per call — the pre-scratch code path —
   so the difference is exactly what the shared scratch saves. *)
let measure_codec_alloc () =
  let module Codec = Repro_util.Codec in
  let n = 10_000 in
  let words_per_op f =
    f () (* warm: first call may grow the scratch *);
    let before = Gc.minor_words () in
    for _ = 1 to n do
      f ()
    done;
    (Gc.minor_words () -. before) /. float_of_int n
  in
  let shared = words_per_op (fun () -> ignore (Record.encode sample_update)) in
  let fresh =
    words_per_op (fun () ->
        let e = Codec.encoder () in
        Codec.bytes e encoded_update;
        ignore (Codec.to_string e))
  in
  Format.printf "record-encode (shared scratch): %5.1f minor words/op@." shared;
  Format.printf "same payload, fresh Buffer/op:  %5.1f minor words/op (%.0f%% more allocation)@."
    fresh
    ((fresh -. shared) /. shared *. 100.)

(* One Bechamel test per experiment table (quick configuration). *)
let experiment_tests =
  List.map
    (fun id ->
      let f = Option.get (Experiments.by_id id) in
      Test.make ~name:("experiment-" ^ id) (Staged.stage (fun () -> ignore (f ~quick:true ()))))
    Experiments.ids

let run_bechamel ~quota tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"" ~fmt:"%s%s" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let value, unit_ =
        if ns > 1e9 then (ns /. 1e9, "s") else if ns > 1e6 then (ns /. 1e6, "ms")
        else if ns > 1e3 then (ns /. 1e3, "µs")
        else (ns, "ns")
      in
      Format.printf "%-40s %10.2f %s/run@." name value unit_)
    (List.sort compare !rows)

let run_micro () =
  Format.printf "@.#### Bechamel: hot paths (wall clock) ####@.";
  run_bechamel ~quota:0.5 micro_tests;
  Format.printf "@.#### Allocation: record codec ####@.";
  measure_codec_alloc ();
  Format.printf "@.#### Bechamel: one Test.make per experiment table (quick config) ####@.";
  run_bechamel ~quota:1.0 experiment_tests

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match what with
  | "tables" -> run_tables ()
  | "micro" -> run_micro ()
  | "json" ->
    write_json_reports (Experiments.all ~quick:true ());
    bench_lint ();
    bench_tracing_overhead ();
    bench_elr ()
  | "lint" -> bench_lint ()
  | "tracing" -> bench_tracing_overhead ()
  | "elr" -> bench_elr ()
  | _ ->
    run_tables ();
    run_micro ();
    bench_tracing_overhead ()
