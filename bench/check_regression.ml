(* Bench smoke regression gate.

   Compares the throughput column of freshly generated BENCH_<id>.json
   reports against the committed baseline (bench/bench_baseline.json)
   and fails on a drop past the entry's budget (default 15%; an entry
   can set its own "tolerance").  The reports come from the simulated
   clock, so they are bit-deterministic: any drift is a real behaviour
   change in a hot path, not measurement noise.

   Usage (from a directory containing the BENCH_*.json files, i.e.
   after `dune exec bench/main.exe -- json`):

     dune exec bench/check_regression.exe -- bench/bench_baseline.json

   The comparison table is also written to BENCH_DIFF.txt (or the
   second argument, so a second gate run does not clobber the first)
   and CI uploads it alongside the reports. *)

module Json = Repro_obs.Json

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("bench regression gate: " ^ s);
      exit 1)
    fmt

(* Per-entry budgets: a baseline entry may carry its own "tolerance"
   (e.g. TRACING's tight 5% — its column is simulated and must not
   move); everything else gets the default. *)
let default_tolerance = 0.15

let () =
  let baseline_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "bench/bench_baseline.json"
  in
  let diff_path = if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_DIFF.txt" in
  let baseline =
    match Json.of_string (read_file baseline_path) with
    | Json.Obj kvs -> kvs
    | _ -> die "%s: expected a top-level object" baseline_path
    | exception Sys_error e -> die "%s" e
  in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let failed = ref false in
  line "%-7s %-24s %12s %12s %8s  %s" "exp" "row" "baseline" "measured" "drift" "status";
  List.iter
    (fun (id, spec) ->
      let column =
        match Json.member "column" spec with
        | Some (Json.Str c) -> c
        | _ -> die "baseline %s: missing \"column\"" id
      in
      let tolerance =
        match Json.member "tolerance" spec with
        | None -> default_tolerance
        | Some v -> (
          match Json.to_float_opt v with
          | Some f -> f
          | None -> die "baseline %s: non-numeric \"tolerance\"" id)
      in
      let want =
        match Json.member "values" spec with
        | Some (Json.List vs) ->
          List.map
            (fun v ->
              match Json.to_float_opt v with
              | Some f -> f
              | None -> die "baseline %s: non-numeric value" id)
            vs
        | _ -> die "baseline %s: missing \"values\"" id
      in
      (* several baseline entries may gate different columns of one
         report: an entry can name its file explicitly ("file"),
         otherwise the entry id picks BENCH_<id>.json *)
      let file =
        match Json.member "file" spec with
        | Some (Json.Str f) -> f
        | Some _ -> die "baseline %s: non-string \"file\"" id
        | None -> Printf.sprintf "BENCH_%s.json" id
      in
      let report =
        match Json.of_string (read_file file) with
        | r -> r
        | exception Sys_error e -> die "%s (run `dune exec bench/main.exe -- json` first)" e
      in
      let header =
        match Json.member "header" report with
        | Some (Json.List hs) -> List.filter_map Json.to_string_opt hs
        | _ -> die "%s: missing header" file
      in
      let idx =
        match List.find_index (String.equal column) header with
        | Some i -> i
        | None -> die "%s: no column %S in header" file column
      in
      let rows =
        match Json.member "rows" report with
        | Some (Json.List rs) ->
          List.map
            (fun r ->
              match r with
              | Json.List cells -> List.filter_map Json.to_string_opt cells
              | _ -> die "%s: malformed row" file)
            rs
        | _ -> die "%s: missing rows" file
      in
      if List.length rows <> List.length want then
        die "%s: %d rows but baseline has %d values — regenerate the baseline" file
          (List.length rows) (List.length want);
      List.iteri
        (fun i row ->
          let got =
            match float_of_string_opt (List.nth row idx) with
            | Some f -> f
            | None -> die "%s row %d: %S is not a number" file i (List.nth row idx)
          in
          let base = List.nth want i in
          let drift = (got -. base) /. base in
          let label =
            String.concat "/" (List.filteri (fun j _ -> j < 2 && j < idx) row)
          in
          let regressed = got < base *. (1. -. tolerance) in
          if regressed then failed := true;
          line "%-7s %-24s %12.2f %12.2f %+7.1f%%  %s" id label base got (drift *. 100.)
            (if regressed then Printf.sprintf "FAIL (budget %.0f%%)" (tolerance *. 100.)
             else "ok"))
        rows)
    baseline;
  let table = Buffer.contents buf in
  let oc = open_out diff_path in
  output_string oc table;
  close_out oc;
  print_string table;
  if !failed then die "throughput regressed past its budget"
  else print_endline "bench smoke: all throughput columns within budget of baseline"
