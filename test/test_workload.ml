(* Tests for the operation DSL, generators and the driver. *)

module Cluster = Repro_cbl.Cluster
module Engine = Repro_workload.Engine
module Driver = Repro_workload.Driver
module Generators = Repro_workload.Generators
module Op = Repro_workload.Op
module Config = Repro_sim.Config
module Page_id = Repro_storage.Page_id
module Rng = Repro_util.Rng
module Stats = Repro_util.Stats

let mk () =
  let c = Cluster.create ~pool_capacity:16 ~nodes:3 Config.instant in
  let pages = Cluster.allocate_pages c ~owner:0 ~count:8 in
  (c, Engine.of_cluster c, pages)

(* ---- Op ---- *)

let test_op_introspection () =
  let p = Page_id.make ~owner:0 ~slot:0 and q = Page_id.make ~owner:0 ~slot:1 in
  let s =
    {
      Op.node = 1;
      actions =
        [
          Op.Read { pid = p; off = 0 };
          Op.Update { pid = q; off = 8; delta = 2L };
          Op.Update { pid = q; off = 8; delta = 3L };
          Op.Savepoint "a";
        ];
    }
  in
  Alcotest.(check int) "pages touched" 2 (List.length (Op.pages_touched s));
  Alcotest.(check int) "cells updated deduped" 1 (List.length (Op.cells_updated s))

(* ---- Generators ---- *)

let test_generator_partitioned_shape () =
  let rng = Rng.create 1 in
  let pages = List.init 8 (fun slot -> Page_id.make ~owner:0 ~slot) in
  let scripts =
    Generators.partitioned rng ~pages_by_owner:[ (0, pages) ] ~clients:[ 1; 2 ]
      ~txns_per_client:5 ~mix:Generators.default_mix
  in
  Alcotest.(check int) "count" 10 (List.length scripts);
  List.iter
    (fun (s : Op.script) ->
      Alcotest.(check bool) "valid node" true (s.Op.node = 1 || s.Op.node = 2);
      Alcotest.(check int) "ops per txn" Generators.default_mix.Generators.ops_per_txn
        (List.length s.Op.actions))
    scripts

let test_generator_checkout_revises_documents () =
  let rng = Rng.create 2 in
  let pages = List.init 4 (fun slot -> Page_id.make ~owner:0 ~slot) in
  let scripts = Generators.checkout rng ~pages ~client:1 ~documents:2 ~revisions:3 in
  Alcotest.(check int) "three revisions" 3 (List.length scripts);
  List.iter
    (fun s -> Alcotest.(check int) "touches the documents" 2 (List.length (Op.pages_touched s)))
    scripts

let test_generator_ping_pong_alternates () =
  let pages = [ Page_id.make ~owner:0 ~slot:0 ] in
  let scripts = Generators.ping_pong ~pages ~nodes:(1, 2) ~rounds:2 in
  Alcotest.(check (list int)) "alternation" [ 1; 2; 1; 2 ]
    (List.map (fun (s : Op.script) -> s.Op.node) scripts)

(* ---- Driver ---- *)

let test_driver_runs_and_verifies () =
  let _c, engine, pages = mk () in
  let rng = Rng.create 3 in
  let scripts =
    Generators.hotspot rng ~pages ~clients:[ 1; 2 ] ~txns_per_client:10
      ~mix:{ Generators.default_mix with theta = 0.5 }
  in
  let outcome = Driver.run engine scripts in
  Alcotest.(check int) "all committed" 20 outcome.Driver.committed;
  Alcotest.(check int) "none stuck" 0 outcome.Driver.stuck;
  match Driver.verify outcome with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs)

let test_driver_voluntary_abort_not_in_shadow () =
  let _c, engine, pages = mk () in
  let p = List.hd pages in
  let scripts =
    [
      { Op.node = 1; actions = [ Op.Update { pid = p; off = 0; delta = 5L }; Op.Abort_self ] };
      { Op.node = 1; actions = [ Op.Update { pid = p; off = 0; delta = 7L } ] };
    ]
  in
  let outcome = Driver.run engine scripts in
  Alcotest.(check int) "one commit" 1 outcome.Driver.committed;
  Alcotest.(check int) "one voluntary abort" 1 outcome.Driver.voluntary_aborts;
  Alcotest.(check (list int64)) "shadow holds only committed" [ 7L ]
    (List.map snd outcome.Driver.shadow);
  match Driver.verify outcome with Ok () -> () | Error e -> Alcotest.fail (List.hd e)

let test_driver_savepoint_oracle () =
  let _c, engine, pages = mk () in
  let p = List.hd pages in
  let scripts =
    [
      {
        Op.node = 1;
        actions =
          [
            Op.Update { pid = p; off = 0; delta = 1L };
            Op.Savepoint "s";
            Op.Update { pid = p; off = 0; delta = 2L };
            Op.Rollback_to "s";
            Op.Update { pid = p; off = 0; delta = 4L };
          ];
      };
    ]
  in
  let outcome = Driver.run engine scripts in
  Alcotest.(check (list int64)) "shadow nets savepoint" [ 5L ] (List.map snd outcome.Driver.shadow);
  match Driver.verify outcome with Ok () -> () | Error e -> Alcotest.fail (List.hd e)

let test_driver_detects_corruption () =
  let c, engine, pages = mk () in
  let p = List.hd pages in
  let scripts = [ { Op.node = 1; actions = [ Op.Update { pid = p; off = 0; delta = 5L } ] } ] in
  let outcome = Driver.run engine scripts in
  (* corrupt the durable state behind the oracle's back *)
  let t = Cluster.begin_txn c ~node:2 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 999L;
  Cluster.commit c ~txn:t;
  (match Driver.verify outcome with
  | Ok () -> Alcotest.fail "verify must notice the divergence"
  | Error _ -> ())

let test_driver_crash_event_midway () =
  let _c, engine, pages = mk () in
  let rng = Rng.create 4 in
  let scripts =
    Generators.hotspot rng ~pages ~clients:[ 1; 2 ] ~txns_per_client:8
      ~mix:Generators.default_mix
  in
  let events = [ (6, Driver.Crash 1); (12, Driver.Recover [ 1 ]) ] in
  let outcome = Driver.run engine ~events scripts in
  Alcotest.(check int) "all finish eventually" 16 outcome.Driver.committed;
  match Driver.verify outcome with Ok () -> () | Error e -> Alcotest.fail (List.hd e)

let test_driver_mpl_limits_concurrency () =
  let _c, engine, pages = mk () in
  let rng = Rng.create 5 in
  let scripts =
    Generators.hotspot rng ~pages ~clients:[ 1 ] ~txns_per_client:30
      ~mix:{ Generators.default_mix with update_fraction = 1.0 }
  in
  let outcome = Driver.run engine ~mpl:2 scripts in
  Alcotest.(check int) "all committed" 30 outcome.Driver.committed;
  match Driver.verify outcome with Ok () -> () | Error e -> Alcotest.fail (List.hd e)

let test_driver_deadlock_policy_detect () =
  (* opposite-order scripts under the graph-based detector *)
  let _c, engine, pages = mk () in
  let p = List.hd pages and q = List.nth pages 1 in
  let scripts =
    [
      {
        Op.node = 1;
        actions =
          [ Op.Update { pid = p; off = 0; delta = 1L }; Op.Update { pid = q; off = 0; delta = 1L } ];
      };
      {
        Op.node = 2;
        actions =
          [ Op.Update { pid = q; off = 8; delta = 1L }; Op.Update { pid = p; off = 8; delta = 1L } ];
      };
    ]
  in
  let outcome = Driver.run engine ~policy:Driver.Detect scripts in
  Alcotest.(check int) "both finish" 2 outcome.Driver.committed;
  match Driver.verify outcome with Ok () -> () | Error e -> Alcotest.fail (List.hd e)

(* ---- run-queue bit-identity goldens ---- *)

(* The driver's wake-time run queue (PR 7) must replay the legacy
   round-robin scan order bit for bit: these fingerprints were captured
   on the pre-refactor driver, and any drift here means historical seeds
   changed observable behaviour — commit counts, abort mix, round
   counts, simulated latencies, or the final shadow state. *)

let float_exact = Alcotest.float 0.

let shadow_fingerprint (o : Driver.outcome) =
  let shadow = List.sort compare o.Driver.shadow in
  (List.length shadow, Hashtbl.hash shadow)

let test_golden_hotspot_instant () =
  let c = Cluster.create ~pool_capacity:16 ~nodes:3 Config.instant in
  let pages = Cluster.allocate_pages c ~owner:0 ~count:8 in
  let rng = Rng.create 3 in
  let scripts =
    Generators.hotspot rng ~pages ~clients:[ 1; 2 ] ~txns_per_client:10
      ~mix:{ Generators.default_mix with theta = 0.5 }
  in
  let o = Driver.run (Engine.of_cluster c) scripts in
  Alcotest.(check int) "committed" 20 o.Driver.committed;
  Alcotest.(check int) "voluntary aborts" 0 o.Driver.voluntary_aborts;
  Alcotest.(check int) "deadlock aborts" 110 o.Driver.deadlock_aborts;
  Alcotest.(check int) "stuck" 0 o.Driver.stuck;
  Alcotest.(check int) "rounds" 449 o.Driver.rounds;
  Alcotest.(check (pair int int)) "shadow" (58, 672153263) (shadow_fingerprint o)

let test_golden_partitioned_crash () =
  let c = Cluster.create ~seed:11 ~nodes:4 Config.default in
  let pages_by_owner =
    List.map (fun o -> (o, Cluster.allocate_pages c ~owner:o ~count:24)) [ 0; 2 ]
  in
  let rng = Rng.create 11 in
  let scripts =
    Generators.partitioned rng ~pages_by_owner ~clients:[ 0; 1; 2; 3 ] ~txns_per_client:25
      ~mix:{ Generators.default_mix with remote_fraction = 0.4 }
  in
  let events = [ (6, Driver.Crash 1); (12, Driver.Recover [ 1 ]) ] in
  let o = Driver.run (Engine.of_cluster c) ~events scripts in
  Alcotest.(check int) "committed" 100 o.Driver.committed;
  Alcotest.(check int) "deadlock aborts" 838 o.Driver.deadlock_aborts;
  Alcotest.(check int) "rounds" 977 o.Driver.rounds;
  Alcotest.check float_exact "sim seconds" 23.253263399998655 o.Driver.sim_seconds;
  Alcotest.check float_exact "latency mean" 2.7336152114999011 o.Driver.latencies.Stats.mean;
  Alcotest.check float_exact "latency p95" 7.1481672500001903 o.Driver.latencies.Stats.p95;
  Alcotest.(check (pair int int)) "shadow" (317, 858063208) (shadow_fingerprint o)

let test_golden_detect_mpl_savepoints () =
  let c = Cluster.create ~seed:7 ~nodes:4 ~pool_capacity:16 Config.instant in
  let pages_by_owner =
    List.map (fun o -> (o, Cluster.allocate_pages c ~owner:o ~count:12)) [ 0; 1 ]
  in
  let rng = Rng.create 7 in
  let scripts =
    Generators.partitioned rng ~pages_by_owner ~clients:[ 0; 1; 2; 3 ] ~txns_per_client:8
      ~mix:
        {
          Generators.default_mix with
          remote_fraction = 0.6;
          theta = 0.9;
          savepoint_fraction = 0.2;
          abort_fraction = 0.1;
        }
  in
  let o = Driver.run (Engine.of_cluster c) ~policy:Driver.Detect ~mpl:2 scripts in
  Alcotest.(check int) "committed" 29 o.Driver.committed;
  Alcotest.(check int) "voluntary aborts" 3 o.Driver.voluntary_aborts;
  Alcotest.(check int) "deadlock aborts" 59 o.Driver.deadlock_aborts;
  Alcotest.(check int) "rounds" 521 o.Driver.rounds;
  Alcotest.(check (pair int int)) "shadow" (88, 573119324) (shadow_fingerprint o)

let interleave lists =
  let rec go acc lists =
    let heads = List.filter_map (function x :: _ -> Some x | [] -> None) lists in
    let tails = List.filter_map (function _ :: t -> Some t | [] -> None) lists in
    if heads = [] then List.rev acc else go (List.rev_append heads acc) tails
  in
  go [] lists

let test_golden_group_commit () =
  let config = Config.with_group_commit Config.default ~window_ms:20. ~max_batch:8 in
  let c = Cluster.create ~seed:41 ~nodes:1 config in
  let pages = Cluster.allocate_pages c ~owner:0 ~count:32 in
  let rng = Rng.create 41 in
  let scripts =
    interleave
      (List.init 8 (fun cl ->
           let slice = List.filteri (fun i _ -> i / 4 = cl) pages in
           Generators.hotspot rng ~pages:slice ~clients:[ 0 ] ~txns_per_client:10
             ~mix:
               {
                 Generators.default_mix with
                 update_fraction = 1.0;
                 ops_per_txn = 4;
                 remote_fraction = 0.;
               }))
  in
  let o = Driver.run (Engine.of_cluster c) ~mpl:8 scripts in
  Alcotest.(check int) "committed" 80 o.Driver.committed;
  Alcotest.(check int) "rounds" 70 o.Driver.rounds;
  Alcotest.check float_exact "sim seconds" 0.36367120000001774 o.Driver.sim_seconds;
  Alcotest.check float_exact "latency mean" 0.035436592500001737 o.Driver.latencies.Stats.mean;
  Alcotest.check float_exact "latency p95" 0.22165800000000091 o.Driver.latencies.Stats.p95;
  Alcotest.(check (pair int int)) "shadow" (247, 404002083) (shadow_fingerprint o)

let suite =
  [
    ("op introspection", `Quick, test_op_introspection);
    ("generator: partitioned shape", `Quick, test_generator_partitioned_shape);
    ("generator: checkout", `Quick, test_generator_checkout_revises_documents);
    ("generator: ping-pong alternates", `Quick, test_generator_ping_pong_alternates);
    ("driver runs and verifies", `Quick, test_driver_runs_and_verifies);
    ("driver voluntary abort", `Quick, test_driver_voluntary_abort_not_in_shadow);
    ("driver savepoint oracle", `Quick, test_driver_savepoint_oracle);
    ("driver detects corruption", `Quick, test_driver_detects_corruption);
    ("driver crash event midway", `Quick, test_driver_crash_event_midway);
    ("driver MPL", `Quick, test_driver_mpl_limits_concurrency);
    ("driver detect policy", `Quick, test_driver_deadlock_policy_detect);
    ("golden: hotspot on instant cluster", `Quick, test_golden_hotspot_instant);
    ("golden: partitioned with crash/recover", `Quick, test_golden_partitioned_crash);
    ("golden: detect policy, mpl cap, savepoints", `Quick, test_golden_detect_mpl_savepoints);
    ("golden: group commit", `Quick, test_golden_group_commit);
  ]
