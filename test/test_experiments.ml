(* The experiment suite doubles as an integration test: each experiment
   verifies its own durability oracle; here we additionally assert the
   headline shapes the paper claims. *)

module E = Repro_experiments.Experiments
module Report = Repro_experiments.Report

let cell report ~row ~col = List.nth (List.nth report.Report.rows row) col

let test_f1_zero_commit_messages () =
  let r = E.f1 ~quick:true () in
  Alcotest.(check bool) "pass note" true
    (List.exists (fun n -> String.length n >= 4 && String.sub n 0 4 = "PASS") r.Report.notes)

let test_e1_cbl_commit_path_is_free () =
  let r = E.e1 ~quick:true () in
  (* every cbl row: commit msgs/txn = 0, records shipped = 0 *)
  List.iter
    (fun row ->
      if List.hd row = "cbl" then begin
        Alcotest.(check string) "commit msgs" "0.00" (List.nth row 2);
        Alcotest.(check string) "records shipped" "0.00" (List.nth row 5)
      end)
    r.Report.rows

let test_e4_psn_ships_nothing_merged_ships_plenty () =
  let r = E.e4 ~quick:true () in
  let shipped row = int_of_string (cell r ~row ~col:3) in
  Alcotest.(check int) "paper ships nothing" 0 (shipped 0);
  Alcotest.(check bool) "baseline ships records" true (shipped 1 > 0)

let test_e5_rounds_grow_with_involvement () =
  let r = E.e5 ~quick:true () in
  let transfers row = int_of_string (cell r ~row ~col:2) in
  Alcotest.(check bool) "more involved nodes, more rounds" true (transfers 1 > transfers 0)

let test_e6_log_pressure_never_loses_commits () =
  let r = E.e6 ~quick:true () in
  let committed row = int_of_string (cell r ~row ~col:1) in
  Alcotest.(check int) "bounded = unbounded" (committed 1) (committed 0)

let test_e7_checkpoints_send_no_messages () =
  let r = E.e7 ~quick:true () in
  let messages row = int_of_string (cell r ~row ~col:2) in
  Alcotest.(check int) "same messages with and without checkpoints" (messages 0) (messages 1)

let test_e8_multi_crash_oracle () =
  let r = E.e8 ~quick:true () in
  List.iter
    (fun row -> Alcotest.(check string) "oracle" "PASS" (List.nth row 6))
    r.Report.rows

let test_e10_cbl_ships_without_forcing () =
  let r = E.e10 ~quick:true () in
  let cbl = List.find (fun row -> List.hd row = "cbl") r.Report.rows in
  let glog = List.find (fun row -> List.hd row = "global-log") r.Report.rows in
  Alcotest.(check string) "cbl never writes at handover" "0.00" (List.nth cbl 2);
  Alcotest.(check bool) "global log forces at handover" true
    (float_of_string (List.nth glog 2) > 0.5)

let test_e11_batching_raises_throughput () =
  let r = E.e11 ~quick:true () in
  (* quick mode runs two rows: unbatched, then batch=8/window=20ms *)
  let committed row = int_of_string (cell r ~row ~col:2) in
  Alcotest.(check int) "batching loses no commits" (committed 0) (committed 1);
  Alcotest.(check bool) "batches actually form" true
    (float_of_string (cell r ~row:1 ~col:6) >= 2.);
  Alcotest.(check bool) "fewer forces per txn" true
    (float_of_string (cell r ~row:1 ~col:7) < float_of_string (cell r ~row:0 ~col:7));
  Alcotest.(check bool) "throughput rises" true
    (float_of_string (cell r ~row:1 ~col:4) > float_of_string (cell r ~row:0 ~col:4))

let suite =
  [
    ("F1: zero commit messages", `Slow, test_f1_zero_commit_messages);
    ("E1: cbl commit path is free", `Slow, test_e1_cbl_commit_path_is_free);
    ("E4: no log merging", `Slow, test_e4_psn_ships_nothing_merged_ships_plenty);
    ("E5: rounds grow with involvement", `Slow, test_e5_rounds_grow_with_involvement);
    ("E6: log pressure loses nothing", `Slow, test_e6_log_pressure_never_loses_commits);
    ("E7: checkpoints are message-free", `Slow, test_e7_checkpoints_send_no_messages);
    ("E8: multi-crash oracle", `Slow, test_e8_multi_crash_oracle);
    ("E10: transfers without forces", `Slow, test_e10_cbl_ships_without_forcing);
    ("E11: group commit raises throughput", `Slow, test_e11_batching_raises_throughput);
  ]
