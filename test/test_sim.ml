(* Tests for the simulation substrate: clock, config, metrics, trace,
   and the charging discipline of Env. *)

module Clock = Repro_sim.Clock
module Config = Repro_sim.Config
module Metrics = Repro_sim.Metrics
module Trace = Repro_sim.Trace
module Env = Repro_sim.Env

let feq = Alcotest.(check (float 1e-12))

let test_clock () =
  let c = Clock.create () in
  feq "starts at zero" 0. (Clock.now c);
  Clock.advance c 1.5;
  Clock.advance c 0.25;
  feq "advances" 1.75 (Clock.now c);
  Clock.reset c;
  feq "resets" 0. (Clock.now c)

let test_config_builders () =
  let c = Config.with_net_latency Config.default 0.5 in
  feq "latency set" 0.5 c.Config.net_latency;
  let c = Config.with_page_size Config.default 512 in
  Alcotest.(check int) "page size set" 512 c.Config.page_size;
  feq "instant has no costs" 0. Config.instant.Config.disk_seek

let test_metrics_snapshot_diff_merge () =
  let m = Metrics.create () in
  m.Metrics.messages_sent <- 5;
  m.Metrics.busy_seconds <- 1.5;
  let snap = Metrics.snapshot m in
  m.Metrics.messages_sent <- 9;
  m.Metrics.busy_seconds <- 2.0;
  let d = Metrics.diff ~after:m ~before:snap in
  Alcotest.(check int) "int diff" 4 d.Metrics.messages_sent;
  feq "float diff" 0.5 d.Metrics.busy_seconds;
  let dst = Metrics.create () in
  Metrics.merge_into ~dst d;
  Metrics.merge_into ~dst d;
  Alcotest.(check int) "merged twice" 8 dst.Metrics.messages_sent;
  Metrics.reset dst;
  Alcotest.(check int) "reset" 0 dst.Metrics.messages_sent;
  feq "reset float" 0. dst.Metrics.busy_seconds

let test_metrics_alist_is_stable () =
  let m = Metrics.create () in
  let names = List.map fst (Metrics.to_alist m) in
  Alcotest.(check bool) "commit_messages present" true (List.mem "commit_messages" names);
  Alcotest.(check bool) "no duplicates" true
    (List.length names = List.length (List.sort_uniq compare names))

let test_trace_enabled_and_disabled () =
  let t = Trace.create ~enabled:true () in
  Trace.event t "hello %d" 42;
  Trace.event t "world";
  Alcotest.(check (list string)) "ordered" [ "hello 42"; "world" ] (Trace.events t);
  Alcotest.(check bool) "substring search" true (Trace.contains t "llo 4");
  Alcotest.(check bool) "absent" false (Trace.contains t "nope");
  Trace.clear t;
  Alcotest.(check (list string)) "cleared" [] (Trace.events t);
  let off = Trace.create () in
  Trace.event off "invisible %s" "x";
  Alcotest.(check (list string)) "disabled records nothing" [] (Trace.events off)

let test_env_charges_advance_clock_and_busy () =
  let env = Env.create Config.default in
  let m = Metrics.create () in
  Env.charge_message env m ~bytes:1000 ();
  let expected = Config.default.Config.net_latency +. (1000. *. Config.default.Config.net_per_byte) in
  feq "clock advanced by the message" expected (Env.now env);
  feq "busy time attributed" expected m.Metrics.busy_seconds;
  Alcotest.(check int) "counted" 1 m.Metrics.messages_sent;
  Alcotest.(check int) "bytes" 1000 m.Metrics.message_bytes;
  (* the global aggregate mirrors the node *)
  Alcotest.(check int) "global mirror" 1 (Env.global_metrics env).Metrics.messages_sent

let test_env_commit_path_flag () =
  let env = Env.create Config.instant in
  let m = Metrics.create () in
  Env.charge_message env m ~bytes:10 ();
  Env.charge_message env m ~commit_path:true ~bytes:10 ();
  Env.charge_message env m ~recovery:true ~bytes:10 ();
  Alcotest.(check int) "messages" 3 m.Metrics.messages_sent;
  Alcotest.(check int) "commit path" 1 m.Metrics.commit_messages;
  Alcotest.(check int) "recovery" 1 m.Metrics.recovery_messages

let test_env_disk_and_log_charges () =
  let env = Env.create Config.default in
  let m = Metrics.create () in
  Env.charge_page_read env m;
  Env.charge_page_write env m ~commit_path:true ();
  Env.charge_log_append env m ~bytes:100;
  Env.charge_log_force env m ~bytes:100 ();
  Env.charge_log_scan_record env m ~bytes:100;
  Alcotest.(check int) "read" 1 m.Metrics.page_disk_reads;
  Alcotest.(check int) "write" 1 m.Metrics.page_disk_writes;
  Alcotest.(check int) "commit write" 1 m.Metrics.commit_page_writes;
  Alcotest.(check int) "append" 1 m.Metrics.log_appends;
  Alcotest.(check int) "force" 1 m.Metrics.log_forces;
  Alcotest.(check int) "scan" 1 m.Metrics.recovery_log_records_scanned;
  Alcotest.(check bool) "time moved" true (Env.now env > 0.)

let test_env_determinism () =
  let run () =
    let env = Env.create ~seed:9 Config.default in
    let m = Metrics.create () in
    for i = 1 to 10 do
      Env.charge_message env m ~bytes:i ()
    done;
    Env.now env
  in
  feq "same charges, same clock" (run ()) (run ())

let suite =
  [
    ("clock", `Quick, test_clock);
    ("config builders", `Quick, test_config_builders);
    ("metrics snapshot/diff/merge", `Quick, test_metrics_snapshot_diff_merge);
    ("metrics alist stable", `Quick, test_metrics_alist_is_stable);
    ("trace on/off", `Quick, test_trace_enabled_and_disabled);
    ("env charges clock+busy", `Quick, test_env_charges_advance_clock_and_busy);
    ("env path flags", `Quick, test_env_commit_path_flag);
    ("env disk/log charges", `Quick, test_env_disk_and_log_charges);
    ("env determinism", `Quick, test_env_determinism);
  ]
