(* Recovery under fire: crashes at the five recovery crash points,
   partitions across the recovery exchanges, and deferred-page parking
   when a required peer stays down.  The scenarios mirror E12's shape
   (every node increments every page, the owner last, so its crash
   leaves no live cached copy and real multi-node redo must run) and
   assert convergence against a fault-free control run of the same
   workload. *)

module Rng = Repro_util.Rng
module Fault_plan = Repro_fault.Fault_plan
module Injector = Repro_fault.Injector
module Config = Repro_sim.Config
module Metrics = Repro_sim.Metrics
module Page_id = Repro_storage.Page_id
module Cluster = Repro_cbl.Cluster
module Node = Repro_cbl.Node
module Node_state = Repro_cbl.Node_state
module Block = Repro_cbl.Block
module Recovery = Repro_cbl.Recovery
module Engine = Repro_workload.Engine
module Driver = Repro_workload.Driver
module Generators = Repro_workload.Generators

let recovery_points ?(budget = 0) p =
  {
    Fault_plan.commit_force = 0.;
    checkpoint = 0.;
    page_ship = 0.;
    rollback = 0.;
    recovery_analysis = p;
    recovery_redo = p;
    recovery_pre_undo = p;
    recovery_undo = p;
    recovery_checkpoint = p;
    budget;
  }

(* Every node increments every page once, owner 0 committing last: after
   crashing 0 (and optionally 2) the current copies live nowhere and the
   owner must rebuild them from the peers' NodePSNList claims. *)
let seed_workload cluster pages =
  let engine = Engine.of_cluster cluster in
  List.iter
    (fun node ->
      let txn = engine.Engine.begin_txn ~node in
      List.iter (fun pid -> engine.Engine.update_delta ~txn ~pid ~off:0 1L) pages;
      engine.Engine.commit ~txn)
    [ 1; 2; 3; 0 ]

(* Re-enter recovery until every non-deferred node is up.  An attempt
   aborted by a recovery crash point leaves its nodes down (and can fell
   an operational claimant mid-completion), so each round recovers the
   whole current down set.  The injector's crash budget bounds the
   retries; the cap turns a livelock into a loud failure. *)
let recover_until_done ?(defer = []) cluster =
  let rec go attempts =
    if attempts > 50 then Alcotest.fail "recovery did not converge in 50 attempts";
    match
      List.filter
        (fun n -> (not (Node.is_up (Cluster.node cluster n))) && not (List.mem n defer))
        [ 0; 1; 2; 3 ]
    with
    | [] -> ()
    | down ->
      (try Cluster.recover cluster ~defer ~nodes:down
       with Block.Would_block _ -> ());
      go (attempts + 1)
  in
  go 0

let read_all cluster pages ~node =
  let engine = Engine.of_cluster cluster in
  let txn = engine.Engine.begin_txn ~node in
  let vs = List.map (fun pid -> engine.Engine.read_cell ~txn ~pid ~off:0) pages in
  engine.Engine.commit ~txn;
  vs

(* Run the E12-shaped scenario under [plan]; crash nodes 0 and 2, then
   recover until converged and return the final cell values. *)
let run_crash_scenario plan =
  let faults = Injector.create plan in
  let cluster = Cluster.create ~seed:29 ~faults ~nodes:4 (Config.with_page_size Config.default 512) in
  let pages = Cluster.allocate_pages cluster ~owner:0 ~count:6 in
  seed_workload cluster pages;
  Cluster.crash cluster ~node:0;
  Cluster.crash cluster ~node:2;
  recover_until_done cluster;
  let vs = read_all cluster pages ~node:3 in
  Cluster.check_invariants cluster;
  (cluster, vs)

let test_double_crash_during_recovery () =
  (* A crash budget of 2 with hot recovery crash points: the first
     recovery attempt dies mid-protocol, the re-entered attempt can die
     again, and the third must converge to exactly the state a
     fault-free recovery reaches. *)
  let control = snd (run_crash_scenario Fault_plan.none) in
  let plan =
    { Fault_plan.none with Fault_plan.seed = 903; crashpoints = recovery_points ~budget:2 0.3 }
  in
  let cluster, faulted = run_crash_scenario plan in
  let g = Cluster.global_metrics cluster in
  Alcotest.(check bool) "crashes were injected mid-recovery" true (g.Metrics.injected_crashes >= 1);
  Alcotest.(check bool) "aborted attempts were re-entered" true (g.Metrics.recovery_restarts >= 1);
  Alcotest.(check (list int64)) "converged to the fault-free state" control faulted

let test_redo_retry_bit_identical () =
  (* Partitions and drops armed only for the recovery window: the
     NodePSNList exchanges must retry their way through (bounded
     backoff), and the recovered state must be bit-identical to a
     fault-free recovery of the same workload.  A zero crash budget
     keeps the injector live through recovery without ever felling a
     node, isolating the message-fault path. *)
  let control = snd (run_crash_scenario Fault_plan.none) in
  let plan =
    {
      Fault_plan.none with
      Fault_plan.seed = 907;
      net =
        {
          Fault_plan.drop = 0.3;
          max_drops = 8;
          dup = 0.2;
          delay = 0.;
          max_delay = 0.;
          rto = 0.01;
          (* partitions shorter than the exchange retry budget: every
             exchange backs off through them, none aborts the attempt *)
          partition = 0.15;
          max_partition = 5;
        };
      (* a non-zero recovery probability keeps the injector live during
         recovery (DESIGN.md §13); budget 0 means no crash ever fires *)
      crashpoints = recovery_points ~budget:0 0.5;
    }
  in
  let faults = Injector.create plan in
  (* the workload itself runs fault-free: only recovery sees the faults *)
  Injector.set_armed faults false;
  let cluster = Cluster.create ~seed:29 ~faults ~nodes:4 (Config.with_page_size Config.default 512) in
  let pages = Cluster.allocate_pages cluster ~owner:0 ~count:6 in
  seed_workload cluster pages;
  Cluster.crash cluster ~node:0;
  Cluster.crash cluster ~node:2;
  Injector.set_armed faults true;
  recover_until_done cluster;
  Injector.set_armed faults false;
  let g = Cluster.global_metrics cluster in
  Alcotest.(check int) "no crashes injected (budget 0)" 0 g.Metrics.injected_crashes;
  Alcotest.(check bool) "message faults actually hit recovery" true
    (g.Metrics.recovery_retries > 0 || g.Metrics.net_msgs_dropped > 0);
  let faulted = read_all cluster pages ~node:3 in
  Cluster.check_invariants cluster;
  Alcotest.(check (list int64)) "bit-identical to the fault-free recovery" control faulted

let test_deferred_pages_complete_on_peer_restart () =
  (* No injector: the defer path alone.  Node 2's committed increments
     sit between node 1's and node 0's in every page's PSN order, so
     recovering node 0 without node 2 meets a redo gap on every page and
     must park it (blocker = 2) rather than fail.  Parked pages answer
     with the retryable [Page_unavailable]; recovering node 2 completes
     them and the full values surface. *)
  let cluster = Cluster.create ~seed:31 ~nodes:4 (Config.with_page_size Config.default 512) in
  let pages = Cluster.allocate_pages cluster ~owner:0 ~count:4 in
  seed_workload cluster pages;
  Cluster.crash cluster ~node:0;
  Cluster.crash cluster ~node:2;
  let before = Metrics.snapshot (Cluster.global_metrics cluster) in
  Cluster.recover cluster ~defer:[ 2 ] ~nodes:[ 0 ];
  let owner = Cluster.node cluster 0 in
  let parked = Page_id.Tbl.length owner.Node_state.deferred_pages in
  Alcotest.(check int) "every page parked on the deferred peer" (List.length pages) parked;
  let d = Metrics.diff ~after:(Cluster.global_metrics cluster) ~before in
  Alcotest.(check int) "parked metric counts them" (List.length pages)
    d.Metrics.recovery_deferred_pages;
  (* access to a parked page surfaces the retryable block, naming the
     node whose recovery will clear it *)
  let engine = Engine.of_cluster cluster in
  let txn = engine.Engine.begin_txn ~node:1 in
  (match engine.Engine.read_cell ~txn ~pid:(List.hd pages) ~off:0 with
  | _ -> Alcotest.fail "expected Page_unavailable on a parked page"
  | exception Block.Would_block (Block.Page_unavailable { blocker; _ }) ->
    Alcotest.(check int) "blocked on the deferred peer" 2 blocker);
  Cluster.abort cluster ~txn;
  (* the deferred peer returns: its recovery completes the parked pages *)
  Cluster.recover cluster ~nodes:[ 2 ];
  Alcotest.(check int) "parked set drained" 0 (Page_id.Tbl.length owner.Node_state.deferred_pages);
  let d = Metrics.diff ~after:(Cluster.global_metrics cluster) ~before in
  Alcotest.(check int) "completions counted" (List.length pages)
    d.Metrics.recovery_deferred_completed;
  Alcotest.(check (list int64)) "every increment surfaced"
    (List.map (fun _ -> 4L) pages)
    (read_all cluster pages ~node:1);
  Cluster.check_invariants cluster

(* ---- Regression seeds ---- *)

(* Full randomized stress iterations under the recovery fault class,
   mirroring [cblsim stress --faults recovery]'s construction: random
   topology and workload, scripted crashes, auto-recovery — with the
   injector live through recovery, so the driver's re-entry path (a
   Recover event aborted by a nested crash is rescheduled, not dropped)
   is what converges the run. *)
let stress_iteration seed =
  let rng = Rng.create seed in
  let classes = { Fault_plan.no_classes with Fault_plan.recovery = true } in
  let plan = Fault_plan.generate (Rng.split rng) ~classes in
  let faults = Injector.create plan in
  let nodes = 2 + Rng.int rng 4 in
  let cluster =
    Cluster.create ~seed ~faults ~nodes ~pool_capacity:(8 + Rng.int rng 24) Config.instant
  in
  let owners = List.init (1 + Rng.int rng (min 3 nodes)) (fun i -> i) in
  let pages_by_owner =
    List.map
      (fun o -> (o, Cluster.allocate_pages cluster ~owner:o ~count:(8 + Rng.int rng 16)))
      owners
  in
  let scripts =
    Generators.partitioned rng ~pages_by_owner
      ~clients:(List.init nodes (fun i -> i))
      ~txns_per_client:(4 + Rng.int rng 10)
      ~mix:
        {
          Generators.ops_per_txn = 2 + Rng.int rng 8;
          update_fraction = 0.3 +. Rng.float rng 0.6;
          remote_fraction = Rng.float rng 0.8;
          theta = Rng.float rng 1.0;
          savepoint_fraction = Rng.float rng 0.3;
          abort_fraction = Rng.float rng 0.2;
        }
  in
  let events = ref [] in
  let t = ref 10 in
  let crashed = ref [] in
  for _ = 1 to 1 + Rng.int rng 3 do
    let victim = Rng.int rng nodes in
    if not (List.mem victim !crashed) then begin
      events := (!t, Driver.Crash victim) :: !events;
      crashed := victim :: !crashed;
      t := !t + 5 + Rng.int rng 20;
      if Rng.chance rng 0.6 || List.length !crashed >= 2 then begin
        events := (!t, Driver.Recover !crashed) :: !events;
        crashed := [];
        t := !t + 5 + Rng.int rng 15
      end
    end
  done;
  if !crashed <> [] then events := (!t + 5, Driver.Recover !crashed) :: !events;
  let outcome =
    Driver.run (Engine.of_cluster cluster)
      ~events:(List.sort compare !events)
      ~max_rounds:30_000 ~auto_recover:6 scripts
  in
  (* the end-of-run cleanup can itself die at a recovery crash point;
     re-enter over the (possibly grown) down set like cblsim does *)
  let rec recover_all attempts =
    if attempts > 100 then Alcotest.fail (Printf.sprintf "seed %d: recovery did not converge" seed);
    match
      List.filter (fun n -> not (Node.is_up (Cluster.node cluster n))) (List.init nodes Fun.id)
    with
    | [] -> ()
    | down ->
      (try Cluster.recover cluster ~nodes:down with Block.Would_block _ -> ());
      recover_all (attempts + 1)
  in
  recover_all 0;
  let g = Cluster.global_metrics cluster in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: mid-recovery crashes were injected" seed)
    true
    (g.Metrics.injected_crashes >= 2 && g.Metrics.recovery_restarts >= 2);
  Cluster.check_invariants cluster;
  Alcotest.(check int) (Printf.sprintf "seed %d: no stuck scripts" seed) 0 outcome.Driver.stuck;
  match Driver.verify outcome with
  | Ok () -> ()
  | Error es -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed (String.concat "; " es))

(* Seeds chosen (by scanning) to inject 2–3 crashes at the recovery
   crash points each, so every run exercises the abort/re-enter path
   for real rather than vacuously passing with a quiet schedule. *)
let test_regression_seeds () = List.iter stress_iteration [ 0; 9; 13; 25; 38 ]

let suite =
  [
    ("double crash during recovery converges", `Quick, test_double_crash_during_recovery);
    ("redo retries are bit-identical to fault-free", `Quick, test_redo_retry_bit_identical);
    ( "deferred pages complete on peer restart",
      `Quick,
      test_deferred_pages_complete_on_peer_restart );
    ("regression seeds (recovery fault class)", `Slow, test_regression_seeds);
  ]
