(* Unit and property tests for the repro_util substrate. *)

module Rng = Repro_util.Rng
module Zipf = Repro_util.Zipf
module Heap = Repro_util.Heap
module Crc32 = Repro_util.Crc32
module Codec = Repro_util.Codec
module Stats = Repro_util.Stats

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let c1 = Rng.next_int64 child in
  (* drawing from the parent must not affect the child's future *)
  let parent2 = Rng.create 7 in
  let child2 = Rng.split parent2 in
  check Alcotest.int64 "split reproducible" c1 (Rng.next_int64 child2)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_rng_int_in_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_rng_chance_extremes () =
  let rng = Rng.create 5 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.);
  Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_pick_member () =
  let rng = Rng.create 13 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.pick rng arr) arr)
  done

(* ---- Zipf ---- *)

let test_zipf_bounds () =
  let rng = Rng.create 17 in
  let z = Zipf.create ~n:10 ~theta:0.9 in
  Alcotest.(check int) "n" 10 (Zipf.n z);
  for _ = 1 to 5_000 do
    let v = Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_zipf_skew () =
  let rng = Rng.create 19 in
  let z = Zipf.create ~n:100 ~theta:1.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 much hotter than rank 99" true (counts.(0) > 10 * (counts.(99) + 1))

let test_zipf_uniform_when_theta_zero () =
  let rng = Rng.create 23 in
  let z = Zipf.create ~n:4 ~theta:0. in
  let counts = Array.make 4 0 in
  for _ = 1 to 40_000 do
    let v = Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 8_000 && c < 12_000))
    counts

(* ---- Heap ---- *)

let test_heap_basic () =
  let h = Heap.create () in
  Alcotest.(check bool) "starts empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check int) "min" 1 (Heap.min_key h);
  let drained = List.init 5 (fun _ -> Heap.pop_min h) in
  Alcotest.(check (list int)) "pops ascending with duplicates" [ 1; 1; 3; 4; 5 ] drained;
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_heap_growth_and_clear () =
  (* a tiny initial capacity forces the doubling path *)
  let h = Heap.create ~capacity:2 () in
  for i = 99 downto 0 do
    Heap.push h i
  done;
  Alcotest.(check int) "length after growth" 100 (Heap.length h);
  Alcotest.(check int) "min after growth" 0 (Heap.min_key h);
  Heap.clear h;
  Alcotest.(check bool) "clear empties" true (Heap.is_empty h);
  Heap.push h 7;
  Alcotest.(check int) "usable after clear" 7 (Heap.pop_min h)

let test_heap_empty_raises () =
  let h = Heap.create () in
  Alcotest.(check bool) "min_key raises" true
    (match Heap.min_key h with _ -> false | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "remove_min raises" true
    (match Heap.remove_min h with () -> false | exception Invalid_argument _ -> true)

let prop_heap_drains_sorted =
  QCheck.Test.make ~name:"heap: drains in sorted order" ~count:200
    QCheck.(list int)
    (fun keys ->
      let h = Heap.create ~capacity:1 () in
      List.iter (Heap.push h) keys;
      let drained = List.init (List.length keys) (fun _ -> Heap.pop_min h) in
      Heap.is_empty h && drained = List.sort compare keys)

(* ---- Crc32 ---- *)

let test_crc32_known_vector () =
  (* CRC-32 of "123456789" is 0xCBF43926 *)
  check Alcotest.int32 "check vector" 0xCBF43926l (Crc32.string "123456789")

let test_crc32_empty () = check Alcotest.int32 "empty" 0l (Crc32.string "")

let test_crc32_sensitivity () =
  Alcotest.(check bool) "bit flip changes CRC" false
    (Crc32.string "hello world" = Crc32.string "hello worle")

let test_crc32_slice () =
  let b = Bytes.of_string "xx123456789yy" in
  check Alcotest.int32 "slice" 0xCBF43926l (Crc32.bytes b ~pos:2 ~len:9)

(* ---- Codec ---- *)

let roundtrip encode decode v =
  let e = Codec.encoder () in
  encode e v;
  decode (Codec.decoder (Codec.to_string e))

let test_codec_ints () =
  Alcotest.(check int) "u8" 200 (roundtrip Codec.u8 Codec.read_u8 200);
  Alcotest.(check int) "u16" 65535 (roundtrip Codec.u16 Codec.read_u16 65535);
  Alcotest.(check int) "u32" 0x7FFFFFFF (roundtrip Codec.u32 Codec.read_u32 0x7FFFFFFF);
  check Alcotest.int64 "i64 negative" (-123456789L)
    (roundtrip Codec.i64 Codec.read_i64 (-123456789L));
  Alcotest.(check int) "int_as_i64" min_int
    (roundtrip Codec.int_as_i64 Codec.read_int_as_i64 min_int)

let test_codec_bytes_and_collections () =
  Alcotest.(check string) "bytes" "hello\x00world"
    (roundtrip Codec.bytes Codec.read_bytes "hello\x00world");
  Alcotest.(check (option int)) "opt none" None
    (roundtrip (Codec.opt Codec.u32) (Codec.read_opt Codec.read_u32) None);
  Alcotest.(check (option int)) "opt some" (Some 9)
    (roundtrip (Codec.opt Codec.u32) (Codec.read_opt Codec.read_u32) (Some 9));
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ]
    (roundtrip (Codec.list Codec.u32) (Codec.read_list Codec.read_u32) [ 1; 2; 3 ])

let test_codec_truncation_detected () =
  let e = Codec.encoder () in
  Codec.bytes e "abcdefgh";
  let s = Codec.to_string e in
  let short = String.sub s 0 (String.length s - 2) in
  Alcotest.check_raises "truncated" (Codec.Corrupt "truncated input: need 8 bytes, have 6")
    (fun () -> ignore (Codec.read_bytes (Codec.decoder short)))

let test_codec_bad_bool () =
  let d = Codec.decoder "\x05" in
  Alcotest.check_raises "bad bool" (Codec.Corrupt "bad bool tag 5") (fun () ->
      ignore (Codec.read_bool d))

let prop_codec_string_roundtrip =
  QCheck.Test.make ~name:"codec: bytes roundtrip" ~count:500 QCheck.string (fun s ->
      roundtrip Codec.bytes Codec.read_bytes s = s)

let prop_codec_i64_roundtrip =
  QCheck.Test.make ~name:"codec: i64 roundtrip" ~count:500 QCheck.int64 (fun v ->
      roundtrip Codec.i64 Codec.read_i64 v = v)

let prop_codec_list_roundtrip =
  QCheck.Test.make ~name:"codec: int list roundtrip" ~count:200
    QCheck.(list small_nat)
    (fun l -> roundtrip (Codec.list Codec.u32) (Codec.read_list Codec.read_u32) l = l)

(* ---- Stats ---- *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check int) "count" 5 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.Stats.p50

let test_stats_empty () =
  let s = Stats.summarize [||] in
  Alcotest.(check int) "count" 0 s.Stats.count

let test_histogram () =
  let h = Stats.histogram ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Stats.record h) [ 0.5; 1.5; 1.7; 9.9; -1.0 (* clamped *); 11.0 (* clamped *) ];
  let counts = Stats.bucket_counts h in
  Alcotest.(check int) "total" 6 (Stats.total h);
  Alcotest.(check int) "bucket 0 has 0.5 and clamped -1" 2 counts.(0);
  Alcotest.(check int) "bucket 1" 2 counts.(1);
  Alcotest.(check int) "last bucket has 9.9 and clamped 11" 2 counts.(9)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int_in_range", `Quick, test_rng_int_in_range);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng chance extremes", `Quick, test_rng_chance_extremes);
    ("rng shuffle is a permutation", `Quick, test_rng_shuffle_permutation);
    ("rng pick member", `Quick, test_rng_pick_member);
    ("zipf bounds", `Quick, test_zipf_bounds);
    ("zipf skew", `Quick, test_zipf_skew);
    ("zipf theta=0 uniform", `Quick, test_zipf_uniform_when_theta_zero);
    ("heap basic", `Quick, test_heap_basic);
    ("heap growth and clear", `Quick, test_heap_growth_and_clear);
    ("heap empty raises", `Quick, test_heap_empty_raises);
    qcheck prop_heap_drains_sorted;
    ("crc32 known vector", `Quick, test_crc32_known_vector);
    ("crc32 empty", `Quick, test_crc32_empty);
    ("crc32 sensitivity", `Quick, test_crc32_sensitivity);
    ("crc32 slice", `Quick, test_crc32_slice);
    ("codec ints", `Quick, test_codec_ints);
    ("codec bytes/collections", `Quick, test_codec_bytes_and_collections);
    ("codec truncation detected", `Quick, test_codec_truncation_detected);
    ("codec bad bool", `Quick, test_codec_bad_bool);
    qcheck prop_codec_string_roundtrip;
    qcheck prop_codec_i64_roundtrip;
    qcheck prop_codec_list_roundtrip;
    ("stats summary", `Quick, test_stats_summary);
    ("stats empty", `Quick, test_stats_empty);
    ("histogram", `Quick, test_histogram);
  ]
