let () =
  Alcotest.run "client-based-logging"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("sim", Test_sim.suite);
      ("storage", Test_storage.suite);
      ("wal", Test_wal.suite);
      ("buffer", Test_buffer.suite);
      ("lock", Test_lock.suite);
      ("aries", Test_aries.suite);
      ("node", Test_node.suite);
      ("cluster", Test_cluster.suite);
      ("recovery", Test_recovery.suite);
      ("recovery-edge", Test_recovery_edge.suite);
      ("workload", Test_workload.suite);
      ("scale", Test_scale.suite);
      ("fault", Test_fault.suite);
      ("recovery-faults", Test_recovery_faults.suite);
      ("elr", Test_elr.suite);
      ("properties", Test_props.suite);
      ("experiments", Test_experiments.suite);
      ("lint", Test_lint.suite);
    ]
