(* Tests for the deterministic fault-injection layer: plan JSON
   round-trips, bit-identical replay (including replay from a dumped
   plan), torn-write recovery, duplicate/reordered ship idempotence,
   partition healing and crash-point schedules.  The regression seeds at
   the bottom replay full randomized stress runs that exposed real bugs
   (partial-batch recovery redo gap; self-crash swallowed inside the
   eviction chain). *)

module Rng = Repro_util.Rng
module Json = Repro_obs.Json
module Recorder = Repro_obs.Recorder
module Fault_plan = Repro_fault.Fault_plan
module Injector = Repro_fault.Injector
module Config = Repro_sim.Config
module Env = Repro_sim.Env
module Metrics = Repro_sim.Metrics
module Page_id = Repro_storage.Page_id
module Lsn = Repro_wal.Lsn
module Record = Repro_wal.Record
module Log_manager = Repro_wal.Log_manager
module Cluster = Repro_cbl.Cluster
module Node = Repro_cbl.Node
module Recovery = Repro_cbl.Recovery
module Engine = Repro_workload.Engine
module Driver = Repro_workload.Driver
module Generators = Repro_workload.Generators

(* ---- Fault plans ---- *)

let test_classes_of_string () =
  let ok s = match Fault_plan.classes_of_string s with Ok c -> c | Error e -> Alcotest.fail e in
  Alcotest.(check bool) "all" true (ok "all").Fault_plan.crashpoints;
  Alcotest.(check bool) "none quiet" false (ok "none").Fault_plan.net;
  Alcotest.(check bool) "empty quiet" false (ok "").Fault_plan.disk;
  let c = ok "net,disk" in
  Alcotest.(check bool) "net on" true c.Fault_plan.net;
  Alcotest.(check bool) "disk on" true c.Fault_plan.disk;
  Alcotest.(check bool) "crashpoints off" false c.Fault_plan.crashpoints;
  Alcotest.(check bool) "reject junk" true
    (match Fault_plan.classes_of_string "nonsense" with Error _ -> true | Ok _ -> false)

let test_plan_json_roundtrip () =
  for seed = 0 to 9 do
    let plan = Fault_plan.generate (Rng.create seed) ~classes:Fault_plan.all_classes in
    let dumped = Json.to_string (Fault_plan.to_json plan) in
    let reloaded = Fault_plan.of_json (Json.of_string dumped) in
    Alcotest.(check string)
      "json round-trip is lossless" dumped
      (Json.to_string (Fault_plan.to_json reloaded))
  done

let test_plan_json_recovery_fields () =
  (* The five recovery crash-point probabilities must survive the dump
     (what [--dump-plan] writes) with their exact values — a plan that
     silently loses them would replay without recovery faults. *)
  let plan =
    {
      Fault_plan.none with
      Fault_plan.seed = 77;
      crashpoints =
        {
          Fault_plan.commit_force = 0.;
          checkpoint = 0.;
          page_ship = 0.;
          rollback = 0.;
          recovery_analysis = 0.11;
          recovery_redo = 0.22;
          recovery_pre_undo = 0.33;
          recovery_undo = 0.44;
          recovery_checkpoint = 0.55;
          budget = 3;
        };
    }
  in
  let c = (Fault_plan.of_json (Json.of_string (Json.to_string (Fault_plan.to_json plan)))).Fault_plan.crashpoints in
  Alcotest.(check (float 0.)) "analysis" 0.11 c.Fault_plan.recovery_analysis;
  Alcotest.(check (float 0.)) "redo" 0.22 c.Fault_plan.recovery_redo;
  Alcotest.(check (float 0.)) "pre-undo" 0.33 c.Fault_plan.recovery_pre_undo;
  Alcotest.(check (float 0.)) "undo" 0.44 c.Fault_plan.recovery_undo;
  Alcotest.(check (float 0.)) "checkpoint" 0.55 c.Fault_plan.recovery_checkpoint;
  Alcotest.(check int) "budget" 3 c.Fault_plan.budget;
  (* generating with the recovery class actually arms them *)
  let gen = Fault_plan.generate (Rng.create 7) ~classes:{ Fault_plan.no_classes with Fault_plan.recovery = true } in
  Alcotest.(check bool) "generated recovery probabilities are live" true
    (gen.Fault_plan.crashpoints.Fault_plan.recovery_analysis > 0.
    && gen.Fault_plan.crashpoints.Fault_plan.recovery_redo > 0.)

(* ---- Replay determinism ---- *)

(* A small faulted workload with a fixed shape: the only degrees of
   freedom are the fault plan and the workload RNG seed, so two runs
   with equal inputs must be bit-identical. *)
let run_scenario ?(trace = false) ?(config = Config.instant) ~plan seed =
  let rng = Rng.create seed in
  let faults = Injector.create plan in
  let cluster = Cluster.create ~trace ~seed ~faults ~nodes:3 ~pool_capacity:12 config in
  let pages_by_owner =
    List.map (fun o -> (o, Cluster.allocate_pages cluster ~owner:o ~count:6)) [ 0; 1 ]
  in
  let engine = Engine.of_cluster cluster in
  let scripts =
    Generators.partitioned rng ~pages_by_owner ~clients:[ 0; 1; 2 ] ~txns_per_client:6
      ~mix:
        {
          Generators.ops_per_txn = 5;
          update_fraction = 0.6;
          remote_fraction = 0.5;
          theta = 0.;
          savepoint_fraction = 0.2;
          abort_fraction = 0.1;
        }
  in
  let events = [ (8, Driver.Crash 1); (20, Driver.Recover [ 1 ]); (30, Driver.Checkpoint 0) ] in
  let outcome = Driver.run engine ~events ~max_rounds:20_000 ~auto_recover:6 scripts in
  let down = List.filter (fun n -> not (Node.is_up (Cluster.node cluster n))) [ 0; 1; 2 ] in
  if down <> [] then Cluster.recover cluster ~nodes:down;
  Cluster.check_invariants cluster;
  (match Driver.verify outcome with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es));
  Alcotest.(check int) "no stuck scripts" 0 outcome.Driver.stuck;
  (cluster, outcome)

let trace_of cluster =
  let obs = Env.obs (Cluster.env cluster) in
  Alcotest.(check int) "event ring did not overflow" 0 (Recorder.dropped obs);
  Recorder.to_jsonl obs

let mk_plan seed = Fault_plan.generate (Rng.create seed) ~classes:Fault_plan.all_classes

let test_replay_identical () =
  let plan = mk_plan 11 in
  let c1, _ = run_scenario ~trace:true ~plan 11 in
  let c2, _ = run_scenario ~trace:true ~plan 11 in
  let t1 = trace_of c1 and t2 = trace_of c2 in
  Alcotest.(check bool) "trace is non-trivial" true (String.length t1 > 0);
  Alcotest.(check string) "same plan, same workload: identical trace" t1 t2

let test_replay_from_dumped_plan () =
  let plan = mk_plan 12 in
  (* Dump the plan the way [cblsim stress --dump-plan] does, then replay
     from the parsed dump: the trace must be bit-identical, which is
     what makes the dump a complete repro artefact. *)
  let dumped = Json.to_string_pretty (Fault_plan.to_json plan) in
  let reloaded = Fault_plan.of_json (Json.of_string dumped) in
  let c1, _ = run_scenario ~trace:true ~plan 12 in
  let c2, _ = run_scenario ~trace:true ~plan:reloaded 12 in
  Alcotest.(check string) "replay from dumped plan: identical trace" (trace_of c1) (trace_of c2)

let test_unfaulted_rng_untouched () =
  (* A disarmed injector consumes no randomness: a run with a disarmed
     injector is bit-identical to a run with a quiet plan. *)
  let quiet = { Fault_plan.none with Fault_plan.seed = 99 } in
  let armed_quiet = Injector.create quiet in
  let disarmed = Injector.create (mk_plan 13) in
  Injector.set_armed disarmed false;
  let run faults =
    let rng = Rng.create 13 in
    let cluster = Cluster.create ~trace:true ~seed:13 ~faults ~nodes:3 ~pool_capacity:12 Config.instant in
    let pages_by_owner = [ (0, Cluster.allocate_pages cluster ~owner:0 ~count:6) ] in
    let scripts =
      Generators.partitioned rng ~pages_by_owner ~clients:[ 0; 1; 2 ] ~txns_per_client:5
        ~mix:Generators.default_mix
    in
    let outcome = Driver.run (Engine.of_cluster cluster) ~max_rounds:20_000 scripts in
    (match Driver.verify outcome with
    | Ok () -> ()
    | Error es -> Alcotest.fail (String.concat "; " es));
    trace_of cluster
  in
  Alcotest.(check string) "disarmed injector leaves the run untouched" (run armed_quiet)
    (run disarmed)

(* ---- Torn log writes ---- *)

let test_torn_crash_unit () =
  (* Unit-level: a torn crash never exposes a complete valid record past
     the pre-crash durable boundary, and [seal] restores the all-frames-
     valid invariant. *)
  let torn_plan =
    { Fault_plan.none with Fault_plan.seed = 5; disk = { Fault_plan.torn = 1.0; corrupt = 0.5 } }
  in
  for attempt = 0 to 7 do
    let inj = Injector.create { torn_plan with Fault_plan.seed = attempt } in
    let env = Env.create Config.instant in
    let log = Log_manager.create env (Metrics.create ()) () in
    let append () =
      Log_manager.append log { Record.txn = 1; prev = Lsn.nil; body = Record.Commit }
    in
    for _ = 1 to 4 do
      ignore (append ())
    done;
    Log_manager.force_all log;
    let durable = Log_manager.end_lsn log in
    for _ = 1 to 3 do
      ignore (append ())
    done;
    Log_manager.crash ~faults:inj log;
    let discarded = Log_manager.seal log in
    Alcotest.(check bool) "tore the tail" true ((Injector.stats inj).Injector.torn_crashes = 1);
    Alcotest.(check bool) "sealing trims, never grows" true (discarded >= 0);
    Alcotest.(check bool) "durable prefix survives" true
      (Lsn.compare durable (Log_manager.end_lsn log) <= 0);
    (* Every surviving record must be readable — the scan is the proof
       that no torn frame is left behind. *)
    let records =
      Log_manager.fold log ~from:Lsn.nil ~init:0 (fun n _ _ -> n + 1)
    in
    Alcotest.(check bool) "clean forward scan over survivors" true (records >= 4)
  done

let test_torn_crash_recovery () =
  (* Cluster-level: crash/recover under a disk-faults-only plan; the
     durability oracle must hold even when recovery starts from a torn
     log tail. *)
  let classes = { Fault_plan.no_classes with Fault_plan.disk = true } in
  for seed = 20 to 24 do
    let plan = Fault_plan.generate (Rng.create seed) ~classes in
    let plan = { plan with Fault_plan.disk = { Fault_plan.torn = 1.0; corrupt = 0.5 } } in
    ignore (run_scenario ~plan seed)
  done

(* ---- Duplicated and reordered ships ---- *)

let test_duplicate_ship_idempotent () =
  (* Every duplicable carrier delivered twice, plus reordering delays:
     the receive paths must be idempotent and the oracle still hold. *)
  let plan =
    {
      Fault_plan.none with
      Fault_plan.seed = 31;
      net =
        {
          Fault_plan.drop = 0.;
          max_drops = 0;
          dup = 1.0;
          delay = 0.5;
          max_delay = 0.05;
          rto = 0.01;
          partition = 0.;
          max_partition = 0;
        };
    }
  in
  let cluster, _ = run_scenario ~plan 31 in
  let g = Cluster.global_metrics cluster in
  Alcotest.(check bool) "duplicates were injected" true (g.Metrics.net_msgs_duplicated > 0)

(* ---- Partitions ---- *)

let test_partition_heals_and_converges () =
  (* Aggressive temporary partitions with a bounded probe budget: blocked
     transactions must retry their way through, and the run converges
     with no stuck scripts (asserted inside [run_scenario]). *)
  let plan =
    {
      Fault_plan.none with
      Fault_plan.seed = 41;
      net =
        {
          Fault_plan.drop = 0.;
          max_drops = 0;
          dup = 0.;
          delay = 0.;
          max_delay = 0.;
          rto = 0.01;
          partition = 0.3;
          max_partition = 6;
        };
    }
  in
  let cluster, _ = run_scenario ~plan 41 in
  let g = Cluster.global_metrics cluster in
  Alcotest.(check bool) "partitions actually blocked links" true (g.Metrics.net_link_blocks > 0)

(* ---- Crash-point schedules ---- *)

let test_crashpoint_schedule () =
  (* Fire named protocol crash points (mid-commit-force, mid-ship,
     mid-checkpoint, mid-rollback) with a bounded budget; auto-recovery
     restarts the stranded scripts and the oracle must hold. *)
  for seed = 50 to 54 do
    let plan =
      {
        Fault_plan.none with
        Fault_plan.seed = seed;
        crashpoints =
          {
            Fault_plan.commit_force = 0.05;
            checkpoint = 0.2;
            page_ship = 0.05;
            rollback = 0.05;
            recovery_analysis = 0.;
            recovery_redo = 0.;
            recovery_pre_undo = 0.;
            recovery_undo = 0.;
            recovery_checkpoint = 0.;
            budget = 2;
          };
      }
    in
    let cluster, _ = run_scenario ~plan seed in
    let g = Cluster.global_metrics cluster in
    Alcotest.(check bool) "crash budget respected" true (g.Metrics.injected_crashes <= 2)
  done

(* ---- Regression seeds ---- *)

(* Full randomized stress iterations, mirroring [cblsim stress]'s
   construction, for seeds that exposed real bugs:

   - seed 2:   injected crash between two steps of a script — the next
               step must see a retryable [Node_down], not an unknown-
               transaction error.
   - seed 147: three staggered single-node crashes; recovering one node
               while another is still down must not leave a redo gap
               (all down nodes recover as one batch).
   - seed 175: Page_ship crash point firing inside the eviction chain —
               the self-crash must unwind [make_room], not be parked as
               an unreachable-owner block.  Left a phantom cached lock
               the owner never knew about.
   - seed 70:  two nodes crash together; a recovery-undo crash point
               aborts the batch's recovery after both were already
               marked up but before the second node's losers rolled
               back.  The re-entered recovery covers only the
               currently-down node, so the abort handler must withdraw
               the premature up-publication — otherwise the redone
               loser survives as a live update (seen as a doubled
               cell). *)
let stress_iteration seed =
  let rng = Rng.create seed in
  let plan = Fault_plan.generate (Rng.split rng) ~classes:Fault_plan.all_classes in
  let faults = Injector.create plan in
  let nodes = 2 + Rng.int rng 4 in
  let cluster =
    Cluster.create ~seed ~faults ~nodes ~pool_capacity:(8 + Rng.int rng 24) Config.instant
  in
  let owners = List.init (1 + Rng.int rng (min 3 nodes)) (fun i -> i) in
  let pages_by_owner =
    List.map
      (fun o -> (o, Cluster.allocate_pages cluster ~owner:o ~count:(8 + Rng.int rng 16)))
      owners
  in
  let engine0 = Engine.of_cluster cluster in
  let engine =
    if seed mod 2 = 1 then
      {
        engine0 with
        Engine.recover =
          (fun ~nodes -> Cluster.recover ~strategy:Recovery.Merged_logs cluster ~nodes);
      }
    else engine0
  in
  let scripts =
    Generators.partitioned rng ~pages_by_owner
      ~clients:(List.init nodes (fun i -> i))
      ~txns_per_client:(4 + Rng.int rng 10)
      ~mix:
        {
          Generators.ops_per_txn = 2 + Rng.int rng 8;
          update_fraction = 0.3 +. Rng.float rng 0.6;
          remote_fraction = Rng.float rng 0.8;
          theta = Rng.float rng 1.0;
          savepoint_fraction = Rng.float rng 0.3;
          abort_fraction = Rng.float rng 0.2;
        }
  in
  let events = ref [] in
  let t = ref 10 in
  let crashed = ref [] in
  for _ = 1 to Rng.int rng 4 do
    let victim = Rng.int rng nodes in
    if not (List.mem victim !crashed) then begin
      events := (!t, Driver.Crash victim) :: !events;
      crashed := victim :: !crashed;
      t := !t + 5 + Rng.int rng 20;
      if Rng.chance rng 0.6 || List.length !crashed >= 2 then begin
        events := (!t, Driver.Recover !crashed) :: !events;
        crashed := [];
        t := !t + 5 + Rng.int rng 15
      end
    end
  done;
  if !crashed <> [] then events := (!t + 5, Driver.Recover !crashed) :: !events;
  for _ = 1 to 2 + Rng.int rng 3 do
    events := (5 + Rng.int rng 60, Driver.Checkpoint (Rng.int rng nodes)) :: !events
  done;
  let outcome =
    Driver.run engine
      ~events:(List.sort compare !events)
      ~max_rounds:30_000 ~auto_recover:6 scripts
  in
  (* like cblsim: the cleanup recovery can itself die at a recovery
     crash point; re-enter over the grown down set until converged *)
  let rec recover_all attempts =
    if attempts > 100 then Alcotest.fail (Printf.sprintf "seed %d: recovery did not converge" seed);
    match
      List.filter (fun n -> not (Node.is_up (Cluster.node cluster n))) (List.init nodes Fun.id)
    with
    | [] -> ()
    | down ->
      (try Cluster.recover cluster ~nodes:down
       with Repro_cbl.Block.Would_block _ -> ());
      recover_all (attempts + 1)
  in
  recover_all 0;
  Cluster.check_invariants cluster;
  Alcotest.(check int) (Printf.sprintf "seed %d: no stuck scripts" seed) 0 outcome.Driver.stuck;
  match Driver.verify outcome with
  | Ok () -> ()
  | Error es -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed (String.concat "; " es))

let test_regression_seeds () = List.iter stress_iteration [ 2; 70; 147; 175 ]

(* ---- Group commit under faults ---- *)

(* Every fault class with commit batching on: a crash between a batch's
   appends and its shared force must lose the WHOLE batch (no prefix of
   it may surface as committed), which is exactly what the durability
   oracle inside [run_scenario] checks. *)
let test_faulted_sweep_with_batching () =
  for seed = 60 to 67 do
    let config =
      Config.with_group_commit Config.instant
        ~window_ms:(float_of_int (2 + (seed mod 3) * 8))
        ~max_batch:(2 + (seed mod 4))
    in
    ignore (run_scenario ~config ~plan:(mk_plan seed) seed)
  done

let suite =
  [
    ("fault classes parse", `Quick, test_classes_of_string);
    ("plan JSON round-trip", `Quick, test_plan_json_roundtrip);
    ("plan JSON keeps recovery crash points", `Quick, test_plan_json_recovery_fields);
    ("replay: same plan, identical trace", `Quick, test_replay_identical);
    ("replay: from dumped plan JSON", `Quick, test_replay_from_dumped_plan);
    ("disarmed injector consumes no randomness", `Quick, test_unfaulted_rng_untouched);
    ("torn crash: unit invariants", `Quick, test_torn_crash_unit);
    ("torn crash: recovery oracle", `Quick, test_torn_crash_recovery);
    ("duplicate + delayed ships are idempotent", `Quick, test_duplicate_ship_idempotent);
    ("partitions heal and runs converge", `Quick, test_partition_heals_and_converges);
    ("crash-point schedules stay within budget", `Quick, test_crashpoint_schedule);
    ("regression seeds (2, 147, 175)", `Slow, test_regression_seeds);
    ("faulted sweep with group commit on", `Slow, test_faulted_sweep_with_batching);
  ]
