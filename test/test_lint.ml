(* Tests for cbl-lint: every rule gets a positive (violation caught) and
   a negative (clean idiom passes) fixture, plus the suppression and
   allowlist escape hatches and the cross-file crashpoint registry.

   Fixtures are inline source strings written into a fresh temp tree
   whose layout mimics the repo (lib/..., bin/...), because most rules
   scope on the root-relative path. *)

module Lint = Repro_lint.Lint
module Rules = Repro_lint.Rules
module Json = Repro_obs.Json

(* ---- fixture plumbing ---- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let fresh_root () =
  let base = Filename.temp_file "cbl_lint_test" "" in
  Sys.remove base;
  Sys.mkdir base 0o755;
  base

let write_file root (rel, content) =
  let path = Filename.concat root rel in
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  output_string oc content;
  close_out oc

(* Lint a fixture tree.  [allowlist] is the allowlist file's content;
   omitted = no allowlist. *)
let lint ?allowlist files =
  let root = fresh_root () in
  List.iter (write_file root) files;
  let allowlist_file =
    Option.map
      (fun content ->
        write_file root ("allow.txt", content);
        Filename.concat root "allow.txt")
      allowlist
  in
  Lint.run ?allowlist_file ~root ~paths:[ "lib"; "bin" ] ~rules:Rules.all ()

let findings_for rule result =
  List.filter (fun f -> f.Lint.rule = rule) result.Lint.findings

let count rule result = List.length (findings_for rule result)

let check_count msg rule expected result = Alcotest.(check int) msg expected (count rule result)

(* ---- rule 1: ipc-force-sweep (interprocedural) ---- *)

let test_force_sweep_positive () =
  let r =
    lint [ ("lib/core/foo.ml", "let commit log =\n  Log_manager.force log ~upto:3\n") ]
  in
  check_count "unswept force flagged" "ipc-force-sweep" 1 r;
  let f = List.hd (findings_for "ipc-force-sweep" r) in
  Alcotest.(check string) "file" "lib/core/foo.ml" f.Lint.file;
  Alcotest.(check int) "line" 2 f.Lint.line

let test_force_sweep_negative () =
  let r =
    lint
      [
        ( "lib/core/foo.ml",
          "let commit log gc =\n  Log_manager.force log ~upto:3;\n  Group_commit.on_force gc\n"
        );
      ]
  in
  check_count "paired force passes" "ipc-force-sweep" 0 r

let test_force_sweep_charge_variant () =
  (* The cost-charging entry point counts as a force too. *)
  let r = lint [ ("lib/core/foo.ml", "let commit env = charge_log_force env ~bytes:64\n") ] in
  check_count "charge_log_force flagged" "ipc-force-sweep" 1 r

let test_force_sweep_impl_layer_exempt () =
  (* The force implementation itself cannot call the sweep (cycle). *)
  let r =
    lint [ ("lib/wal/log_manager.ml", "let force_all t =\n  Log_manager.force t ~upto:9\n") ]
  in
  check_count "impl layer exempt" "ipc-force-sweep" 0 r

let test_force_sweep_outside_lib () =
  let r = lint [ ("bin/tool.ml", "let main log = Log_manager.force log ~upto:3\n") ] in
  check_count "bin/ not in scope" "ipc-force-sweep" 0 r

let test_force_sweep_callee_covers () =
  (* Force in one module, sweep in another, paired through a call
     edge: the per-function rule this one replaced would flag it. *)
  let r =
    lint
      [
        ("lib/core/a.ml", "let commit log gc =\n  Log_manager.force log ~upto:3;\n  B.sweep gc\n");
        ("lib/core/b.ml", "let sweep gc = Group_commit.on_force gc\n");
      ]
  in
  check_count "cross-module force/sweep split passes" "ipc-force-sweep" 0 r

let test_force_sweep_split_still_caught () =
  (* The split without the sweep: interprocedural analysis must not
     grant a pass just because the force moved into a helper. *)
  let r =
    lint
      [
        ("lib/core/a.ml", "let commit log =\n  B.force_tail log 3\n");
        ("lib/core/b.ml", "let force_tail log lsn = Log_manager.force log ~upto:lsn\n");
      ]
  in
  check_count "unswept helper force flagged" "ipc-force-sweep" 1 r;
  let f = List.hd (findings_for "ipc-force-sweep" r) in
  Alcotest.(check string) "flagged at the helper's force" "lib/core/b.ml" f.Lint.file

(* The PR 3 bug shape, split across two functions: a helper forces the
   log, checkpoint runs the mid-checkpoint crash hook with the
   group-commit batch still pending.  The caller-side sweep fixes it —
   only the whole-repo analysis can see that pairing. *)
let test_force_sweep_checkpoint_regression () =
  let buggy =
    "let force_tail log lsn = Log_manager.force log ~upto:lsn\n\
     let take log ~on_before_master =\n\
    \  let lsn = Log_manager.append log record in\n\
    \  force_tail log lsn;\n\
    \  on_before_master ();\n\
    \  lsn\n"
  in
  let fixed =
    "let force_tail log lsn = Log_manager.force log ~upto:lsn\n\
     let take log gc ~on_before_master =\n\
    \  let lsn = Log_manager.append log record in\n\
    \  force_tail log lsn;\n\
    \  Option.iter Group_commit.on_force gc;\n\
    \  on_before_master ();\n\
    \  lsn\n"
  in
  let r = lint [ ("lib/aries/checkpoint.ml", buggy) ] in
  check_count "reintroduced checkpoint bug caught" "ipc-force-sweep" 1 r;
  let f = List.hd (findings_for "ipc-force-sweep" r) in
  Alcotest.(check int) "flagged at the force" 1 f.Lint.line;
  let r = lint [ ("lib/aries/checkpoint.ml", fixed) ] in
  check_count "caller-side sweep covers the helper" "ipc-force-sweep" 0 r

(* ---- rule 2: swallowed-control-exn ---- *)

let test_swallowed_positive () =
  let r =
    lint
      [
        ("lib/core/a.ml", "let f g x = try g x with _ -> 0\n");
        ("lib/core/b.ml", "let f g x = match g x with v -> v | exception e -> ignore e; 0\n");
      ]
  in
  check_count "catch-all try and match-exception flagged" "swallowed-control-exn" 2 r

let test_swallowed_negative () =
  let r =
    lint
      [
        ("lib/core/a.ml", "let f g x = try g x with Not_found -> 0\n");
        ("lib/core/b.ml", "let f g x = try g x with e -> cleanup (); raise e\n");
        ("lib/core/c.ml", "let f g x = try g x with e when is_benign e -> 0\n");
        ("bin/tool.ml", "let f g x = try g x with _ -> 0\n");
      ]
  in
  check_count "specific / re-raising / guarded / bin all pass" "swallowed-control-exn" 0 r

(* ---- rule 3: rng-discipline ---- *)

let test_rng_positive () =
  let r =
    lint
      [
        ("lib/sim/gen.ml", "let pick () = Random.int 10\n");
        ("lib/util/rng.ml", "let () = Random.self_init ()\n");
        ("lib/sim/clock.ml", "let now () = Unix.gettimeofday ()\nlet cpu () = Sys.time ()\n");
      ]
  in
  check_count "stray Random, self_init and wall clocks flagged" "rng-discipline" 4 r

let test_rng_negative () =
  let r =
    lint
      [
        ("lib/util/rng.ml", "let pick () = Random.int 10\n");
        ("bin/tool.ml", "let now () = Unix.gettimeofday ()\n");
      ]
  in
  check_count "designated module and bin/ pass" "rng-discipline" 0 r

(* ---- rule 4: crashpoint-registry (cross-file) ---- *)

let injector_decl = "type point = Commit_force | Page_ship\n"

let fault_plan_decl =
  "type crashpoints = { commit_force : float; page_ship : float; budget : int }\n"

let uses_both =
  "let maybe_crashpoint _ _ = ()\n\
   let exercise t =\n\
  \  maybe_crashpoint t Injector.Commit_force;\n\
  \  maybe_crashpoint t Injector.Page_ship\n"

let test_crashpoint_consistent () =
  let r =
    lint
      [
        ("lib/fault/injector.ml", injector_decl);
        ("lib/fault/fault_plan.ml", fault_plan_decl);
        ("lib/core/node.ml", uses_both);
      ]
  in
  check_count "consistent registry passes" "crashpoint-registry" 0 r

let test_crashpoint_undeclared_use () =
  let r =
    lint
      [
        ("lib/fault/injector.ml", injector_decl);
        ("lib/fault/fault_plan.ml", fault_plan_decl);
        ("lib/core/node.ml", uses_both ^ "let extra t = maybe_crashpoint t Injector.Rollback\n");
      ]
  in
  check_count "undeclared point at a call site flagged" "crashpoint-registry" 1 r

let test_crashpoint_declared_unused () =
  let r =
    lint
      [
        ("lib/fault/injector.ml", "type point = Commit_force | Page_ship | Checkpoint\n");
        ( "lib/fault/fault_plan.ml",
          "type crashpoints =\n\
          \  { commit_force : float; page_ship : float; checkpoint : float; budget : int }\n" );
        ("lib/core/node.ml", uses_both);
      ]
  in
  check_count "declared-but-unexercised point flagged" "crashpoint-registry" 1 r

let test_crashpoint_missing_field () =
  let r =
    lint
      [
        ("lib/fault/injector.ml", injector_decl);
        ("lib/fault/fault_plan.ml", "type crashpoints = { commit_force : float; budget : int }\n");
        ("lib/core/node.ml", uses_both);
      ]
  in
  check_count "point without a plan probability field flagged" "crashpoint-registry" 1 r

let test_crashpoint_orphan_field () =
  let r =
    lint
      [
        ("lib/fault/injector.ml", injector_decl);
        ( "lib/fault/fault_plan.ml",
          "type crashpoints =\n\
          \  { commit_force : float; page_ship : float; rollback : float; budget : int }\n" );
        ("lib/core/node.ml", uses_both);
      ]
  in
  check_count "plan field without a constructor flagged" "crashpoint-registry" 1 r

(* The recovery crash points are registry entries like any other: a
   point missing from any ONE of the three sites — the [Injector.point]
   constructor, the plan's probability field, the [maybe_crashpoint]
   call site — must be flagged.  One fixture per missing site, plus the
   consistent baseline. *)

let recovery_injector_decl = "type point = Commit_force | Recovery_redo | Recovery_pre_undo\n"

let recovery_plan_decl =
  "type crashpoints =\n\
  \  { commit_force : float; recovery_redo : float; recovery_pre_undo : float; budget : int }\n"

let recovery_uses_all =
  "let maybe_crashpoint _ _ = ()\n\
   let exercise t =\n\
  \  maybe_crashpoint t Injector.Commit_force;\n\
  \  maybe_crashpoint t Injector.Recovery_redo;\n\
  \  maybe_crashpoint t Injector.Recovery_pre_undo\n"

let test_crashpoint_recovery_consistent () =
  let r =
    lint
      [
        ("lib/fault/injector.ml", recovery_injector_decl);
        ("lib/fault/fault_plan.ml", recovery_plan_decl);
        ("lib/core/recovery.ml", recovery_uses_all);
      ]
  in
  check_count "consistent recovery registry passes" "crashpoint-registry" 0 r

let test_crashpoint_recovery_missing_ctor () =
  let r =
    lint
      [
        ("lib/fault/injector.ml", "type point = Commit_force | Recovery_pre_undo\n");
        ("lib/fault/fault_plan.ml", recovery_plan_decl);
        ("lib/core/recovery.ml", recovery_uses_all);
      ]
  in
  (* both the orphan plan field and the undeclared call site point at
     the dropped constructor *)
  check_count "recovery point without a constructor flagged" "crashpoint-registry" 2 r

let test_crashpoint_recovery_missing_field () =
  let r =
    lint
      [
        ("lib/fault/injector.ml", recovery_injector_decl);
        ( "lib/fault/fault_plan.ml",
          "type crashpoints =\n\
          \  { commit_force : float; recovery_pre_undo : float; budget : int }\n" );
        ("lib/core/recovery.ml", recovery_uses_all);
      ]
  in
  check_count "recovery point without a plan probability flagged" "crashpoint-registry" 1 r

let test_crashpoint_recovery_missing_probe () =
  let r =
    lint
      [
        ("lib/fault/injector.ml", recovery_injector_decl);
        ("lib/fault/fault_plan.ml", recovery_plan_decl);
        ( "lib/core/recovery.ml",
          "let maybe_crashpoint _ _ = ()\n\
           let exercise t =\n\
          \  maybe_crashpoint t Injector.Commit_force;\n\
          \  maybe_crashpoint t Injector.Recovery_pre_undo\n" );
      ]
  in
  check_count "recovery point never probed flagged" "crashpoint-registry" 1 r

let test_crashpoint_skipped_without_registry () =
  (* Registry modules outside the linted set: the rule stays silent
     rather than flagging every use as undeclared. *)
  let r = lint [ ("lib/core/node.ml", uses_both) ] in
  check_count "no registry in scope, no findings" "crashpoint-registry" 0 r

(* ---- rule 5: event-codec-exhaustive ---- *)

let test_event_codec_positive () =
  let r =
    lint
      [ ("lib/obs/event.ml", "let kind_name = function Log_force -> \"log_force\" | _ -> \"?\"\n") ]
  in
  check_count "wildcard in codec flagged" "event-codec-exhaustive" 1 r

let test_event_codec_negative () =
  let r =
    lint
      [
        ( "lib/obs/event.ml",
          "let kind_name = function Log_force -> \"log_force\" | Ckpt_begin -> \"ckpt_begin\"\n\
           let pp_helper = function _ -> ()\n" );
        ("lib/core/other.ml", "let kind_name = function _ -> \"?\"\n");
      ]
  in
  check_count "exhaustive codec, non-codec fns and other files pass" "event-codec-exhaustive" 0 r

(* The analysis consumers are held to the same rule: every Event.kind
   must be handled (or explicitly ignored, case by case) by
   Critical_path's classifier and Audit's dispatcher. *)
let test_event_codec_consumers_positive () =
  let r =
    lint
      [
        ( "lib/obs/critical_path.ml",
          "let classify_kind = function Event.Msg_send -> `Net | _ -> `Other\n" );
        ("lib/obs/audit.ml", "let dispatch st e = match e.kind with Crash -> on_crash st | _ -> ()\n");
      ]
  in
  check_count "wildcard in analysis consumers flagged" "event-codec-exhaustive" 2 r

let test_event_codec_consumers_negative () =
  let r =
    lint
      [
        ( "lib/obs/critical_path.ml",
          "let classify_kind = function Event.Msg_send -> `Net | Event.Crash -> `Other\n\
           let helper = function Some x -> x | None -> 0\n" );
        ("lib/obs/audit.ml", "let pp = function _ -> ()\n");
      ]
  in
  check_count "exhaustive consumers and unlisted fns pass" "event-codec-exhaustive" 0 r

(* ---- rule 6: no-poly-compare ---- *)

let test_poly_compare_positive () =
  let r =
    lint
      [
        ( "lib/buffer/pool.ml",
          "let same frame other = frame = other\nlet order victim x = compare victim x\n" );
      ]
  in
  check_count "polymorphic = and compare on state flagged" "no-poly-compare" 2 r

let test_poly_compare_negative () =
  let r =
    lint
      [
        ( "lib/buffer/pool.ml",
          "let same frame other = Frame.equal frame other\nlet eq a b = a = b\n" );
      ]
  in
  check_count "explicit equal and non-state operands pass" "no-poly-compare" 0 r

(* ---- rule 7: mli-coverage ---- *)

let test_mli_positive () =
  let r = lint [ ("lib/core/solo.ml", "let x = 1\n") ] in
  check_count "lib module without .mli flagged" "mli-coverage" 1 r

let test_mli_negative () =
  let r =
    lint
      [
        ("lib/core/pair.ml", "let x = 1\n");
        ("lib/core/pair.mli", "val x : int\n");
        ("bin/tool.ml", "let x = 1\n");
      ]
  in
  check_count "covered module and bin/ pass" "mli-coverage" 0 r

(* ---- rule 8: no-unsafe-obj ---- *)

let test_unsafe_obj () =
  let r =
    lint
      [
        ("lib/util/hack.ml", "let f x = Obj.magic x\n");
        ("bin/tool.ml", "let f x = Obj.magic x\n");
      ]
  in
  check_count "Obj in lib/ flagged, bin/ exempt" "no-unsafe-obj" 1 r

(* ---- suppression and allowlist ---- *)

let test_inline_suppression () =
  let r =
    lint
      [
        ( "lib/core/foo.ml",
          "let commit log = (Log_manager.force log ~upto:3) [@cbl.lint.allow \"ipc-force-sweep\"]\n"
        );
      ]
  in
  check_count "attributed expression silenced" "ipc-force-sweep" 0 r;
  Alcotest.(check int) "counted as suppressed" 1 r.Lint.suppressed

let test_inline_suppression_wrong_rule () =
  (* Suppression is per rule id: naming another rule silences nothing. *)
  let r =
    lint
      [
        ( "lib/core/foo.ml",
          "let commit log = (Log_manager.force log ~upto:3) [@cbl.lint.allow \"mli-coverage\"]\n"
        );
      ]
  in
  check_count "mismatched rule id does not silence" "ipc-force-sweep" 1 r

let test_floating_suppression () =
  let r =
    lint
      [
        ( "lib/core/foo.ml",
          "[@@@cbl.lint.allow \"mli-coverage\"]\n\nlet commit log = Log_manager.force log ~upto:3\n"
        );
      ]
  in
  check_count "floating attribute silences whole file" "mli-coverage" 0 r;
  check_count "other rules still fire" "ipc-force-sweep" 1 r;
  Alcotest.(check int) "counted as suppressed" 1 r.Lint.suppressed

let test_allowlist () =
  let r =
    lint
      ~allowlist:"# grandfathered\nmli-coverage lib/core/solo.ml\n"
      [ ("lib/core/solo.ml", "let x = 1\n") ]
  in
  check_count "allowlisted finding dropped" "mli-coverage" 0 r;
  Alcotest.(check int) "counted as allowlisted" 1 r.Lint.allowlisted;
  Alcotest.(check bool) "run is ok" true (Lint.ok r)

(* ---- rule 9: ipc-elr-pairing (interprocedural) ---- *)

let test_elr_pairing_positive () =
  let r =
    lint
      [
        ( "lib/core/foo.ml",
          "let early_release t txn =\n  Local_locks.release_txn_early t.locks ~txn\n" );
      ]
  in
  check_count "bare early release flagged" "ipc-elr-pairing" 1 r;
  let f = List.hd (findings_for "ipc-elr-pairing" r) in
  Alcotest.(check string) "file" "lib/core/foo.ml" f.Lint.file;
  Alcotest.(check int) "line" 2 f.Lint.line

let test_elr_pairing_negative () =
  let r =
    lint
      [
        ( "lib/core/foo.ml",
          "let early_release t txn =\n\
          \  let released = Local_locks.release_txn_early t.locks ~txn in\n\
          \  elr_record_release t ~txn released\n" );
      ]
  in
  check_count "recorded release passes" "ipc-elr-pairing" 0 r

let test_elr_pairing_callee_records () =
  (* Release in one module, dependency registration in a helper it
     calls: the pairing now only has to hold somewhere on the path. *)
  let r =
    lint
      [
        ( "lib/core/a.ml",
          "let early t txn =\n\
          \  let released = Local_locks.release_txn_early t.locks ~txn in\n\
          \  B.register t txn released\n" );
        ("lib/core/b.ml", "let register t txn released = elr_record_release t ~txn released\n");
      ]
  in
  check_count "cross-module release/record split passes" "ipc-elr-pairing" 0 r

let test_elr_pairing_impl_layer_exempt () =
  (* the lock manager implements the release; it cannot pair with the
     node-level dependency registration without a cycle *)
  let r =
    lint
      [
        ( "lib/lock/local_locks.ml",
          "let release_all t ~txn = release_txn_early t ~txn\n" );
      ]
  in
  check_count "impl layer exempt" "ipc-elr-pairing" 0 r

let test_elr_pairing_outside_lib () =
  let r = lint [ ("bin/tool.ml", "let go locks = Local_locks.release_txn_early locks ~txn:1\n") ] in
  check_count "bin/ out of scope" "ipc-elr-pairing" 0 r

(* ---- rule 10: exn-flow ---- *)

let test_exn_flow_unreachable_handler () =
  (* A raise no context up the graph can catch. *)
  let r =
    lint
      [ ("lib/core/a.ml", "let probe node =\n  Block.block (Block.Node_down { node })\n") ]
  in
  check_count "uncatchable raise flagged" "exn-flow" 1 r;
  let f = List.hd (findings_for "exn-flow" r) in
  Alcotest.(check string) "file" "lib/core/a.ml" f.Lint.file;
  Alcotest.(check int) "line" 2 f.Lint.line

let test_exn_flow_cross_file_handler () =
  (* Raise in A, handler in B: the per-file view sees neither side. *)
  let r =
    lint
      [
        ("lib/core/a.ml", "let probe node = Block.block (Block.Node_down { node })\n");
        ("lib/core/b.ml", "let run () = try A.probe 1 with Block.Would_block _ -> 0\n");
      ]
  in
  check_count "raise in A handled in B passes" "exn-flow" 0 r

let test_exn_flow_refined_label_mismatch () =
  (* The only handler on the path matches a different refinement, so
     the raise still escapes every context. *)
  let r =
    lint
      [
        ("lib/core/a.ml", "let probe dst = Block.block (Block.Net_unreachable { dst })\n");
        ( "lib/core/b.ml",
          "let run () = try A.probe 1 with Block.Would_block (Block.Node_down _) -> 0\n" );
      ]
  in
  check_count "refined label not covered flagged" "exn-flow" 1 r

let test_exn_flow_same_function_handler () =
  let r =
    lint
      [
        ( "lib/core/a.ml",
          "let probe node =\n\
          \  try Block.block (Block.Node_down { node }) with Block.Would_block _ -> 0\n" );
      ]
  in
  check_count "own handler covers" "exn-flow" 0 r

(* ---- rule 11: dead-handler ---- *)

let test_dead_handler_positive () =
  (* Nothing the guarded body reaches can raise: retry boundary that
     drifted away from the raise it used to cover. *)
  let r =
    lint [ ("lib/core/a.ml", "let f () = try 1 with Block.Would_block _ -> 0\n") ] in
  check_count "unfeedable handler flagged" "dead-handler" 1 r

let test_dead_handler_negative () =
  (* The guarded body calls (cross-module) code whose escaping raises
     match the handler. *)
  let r =
    lint
      [
        ("lib/core/a.ml", "let probe node = Block.block (Block.Node_down { node })\n");
        ("lib/core/b.ml", "let run () = try A.probe 1 with Block.Would_block _ -> 0\n");
      ]
  in
  check_count "fed handler is live" "dead-handler" 0 r

let test_dead_handler_unresolved_conservative () =
  (* A closure parameter we cannot see through: conservatively live. *)
  let r =
    lint [ ("lib/core/a.ml", "let f g = try g () with Block.Would_block _ -> 0\n") ] in
  check_count "unresolvable body stays live" "dead-handler" 0 r

(* ---- rule 12: rng-reachability ---- *)

let test_rng_reachability_positive () =
  let r = lint [ ("lib/sim/gen.ml", "let pick rng =\n  Rng.int rng 10\n") ] in
  check_count "unseeded draw flagged" "rng-reachability" 1 r;
  let f = List.hd (findings_for "rng-reachability" r) in
  Alcotest.(check string) "file" "lib/sim/gen.ml" f.Lint.file;
  Alcotest.(check int) "line" 2 f.Lint.line

let test_rng_reachability_seeded_root () =
  (* The draw sits in a helper; the root that reaches it derives the
     stream from the run's seed — cross-module, so only the graph view
     can connect them. *)
  let r =
    lint
      [
        ("lib/sim/gen.ml", "let pick rng = Rng.int rng 10\n");
        ("lib/sim/driver.ml", "let run seed =\n  let rng = Rng.create seed in\n  Gen.pick rng\n");
      ]
  in
  check_count "seeded root covers the draw" "rng-reachability" 0 r

let test_rng_reachability_impl_exempt () =
  let r = lint [ ("lib/util/rng.ml", "let int t n = Rng.next_int64 t\n") ] in
  check_count "rng module exempt" "rng-reachability" 0 r

(* ---- engine odds and ends ---- *)

let test_parse_error_is_finding () =
  let r = lint [ ("lib/core/bad.ml", "let let = in\n") ] in
  check_count "unparseable file reported, run not aborted" "parse-error" 1 r;
  Alcotest.(check bool) "run not ok" false (Lint.ok r)

let test_json_report_shape () =
  let r = lint [ ("lib/core/solo.ml", "let x = 1\n") ] in
  let json = Lint.result_to_json ~rules:Rules.all r in
  let member name = Json.member name json in
  Alcotest.(check (option string))
    "tool" (Some "cbl-lint")
    (Option.bind (member "tool") Json.to_string_opt);
  Alcotest.(check (option int))
    "files_scanned" (Some 1)
    (Option.bind (member "files_scanned") Json.to_int_opt);
  (match member "rules" with
  | Some (Json.List rules) -> Alcotest.(check int) "twelve rules" 12 (List.length rules)
  | _ -> Alcotest.fail "rules member missing");
  (match member "rule_seconds" with
  | Some (Json.Obj timings) ->
    Alcotest.(check int) "one timing per rule" 12 (List.length timings);
    Alcotest.(check (list string))
      "timings in registry order"
      (List.map (fun rule -> rule.Lint.id) Rules.all)
      (List.map fst timings)
  | _ -> Alcotest.fail "rule_seconds member missing");
  match member "findings" with
  | Some (Json.List (Json.Obj fields :: _)) ->
    Alcotest.(check (option string))
      "finding rule" (Some "mli-coverage")
      (Option.bind (List.assoc_opt "rule" fields) Json.to_string_opt)
  | _ -> Alcotest.fail "findings member missing"

(* ---- analysis phases directly: fixpoint and summary cache ---- *)

module Summary = Repro_lint.Summary
module Callgraph = Repro_lint.Callgraph
module Propagate = Repro_lint.Propagate

(* A deliberately knotty little repo: cross-module calls, a call cycle
   no root enters (pseudo-root path), real violations of all three
   pairing families, and a cross-file handler. *)
let order_fixture =
  [
    ( "lib/core/a.ml",
      "let rec ping x = B.pong (x - 1)\n\
       let commit log gc =\n\
      \  Log_manager.force log ~upto:3;\n\
      \  B.sweep gc\n\
       let entry log gc = commit log gc; C.run (Rng.create 7)\n" );
    ( "lib/core/b.ml",
      "let pong x = A.ping x\n\
       let sweep gc = Group_commit.on_force gc\n\
       let lone t = Local_locks.release_txn_early t ~txn:1\n\
       let probe node = Block.block (Block.Node_down { node })\n" );
    ( "lib/core/c.ml",
      "let draw rng = Rng.int rng 10\n\
       let run rng = try B.probe 1 with Block.Would_block _ -> draw rng\n\
       let stray rng = Rng.float rng\n" );
  ]

let analysis_cfg =
  {
    Propagate.force_impl = [];
    elr_impl = [];
    rng_impl = [];
    raise_impl = [];
    checked = (fun rel -> String.length rel >= 4 && String.sub rel 0 4 = "lib/");
  }

let order_graph =
  lazy
    (let root = fresh_root () in
     List.iter (write_file root) order_fixture;
     let _, sources, _ = Lint.parse_tree ~root ~paths:[ "lib" ] in
     Callgraph.build (Summary.of_sources sources))

(* Everything the rules read off a [Propagate.t], as comparable data. *)
let projection t =
  let cov (c : Propagate.cov_site) =
    Printf.sprintf "%s:%d:%d %s %s" c.Propagate.c_file c.Propagate.c_loc.Summary.line
      c.Propagate.c_loc.Summary.col c.Propagate.c_fn c.Propagate.c_what
  in
  let rs (r : Propagate.raise_site) =
    Printf.sprintf "%s:%d:%d %s %s" r.Propagate.r_file r.Propagate.r_loc.Summary.line
      r.Propagate.r_loc.Summary.col r.Propagate.r_fn
      (Summary.label_name r.Propagate.r_label)
  in
  ( List.sort compare (List.map cov (Propagate.violations_force t)),
    List.sort compare (List.map cov (Propagate.violations_elr t)),
    List.sort compare (List.map cov (Propagate.violations_rng t)),
    List.sort compare (List.map rs (Propagate.unhandled_raises t)),
    Array.to_list t.Propagate.may_sweep,
    Array.to_list t.Propagate.may_elr_record,
    Array.to_list t.Propagate.may_seed,
    List.sort compare t.Propagate.roots )

let test_order_fixture_findings () =
  (* Sanity-check the fixture actually exercises every family before
     the property asserts order-independence over it. *)
  let t = Propagate.run analysis_cfg (Lazy.force order_graph) in
  let f, e, g, u, _, _, _, _ = projection t in
  Alcotest.(check int) "no force violation (paired cross-module)" 0 (List.length f);
  Alcotest.(check int) "one bare release" 1 (List.length e);
  Alcotest.(check int) "one unseeded draw (stray)" 1 (List.length g);
  Alcotest.(check int) "raise handled cross-file" 0 (List.length u)

(* The fixpoint is a join over monotone transfer functions, so the
   sweep order must not matter.  Permute it and compare everything. *)
let prop_fixpoint_order_independent =
  QCheck.Test.make ~count:50 ~name:"propagate: fixpoint independent of sweep order"
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let g = Lazy.force order_graph in
      let n = Array.length g.Callgraph.nodes in
      (* xorshift-driven Fisher-Yates: deterministic per qcheck seed *)
      let s = ref seed in
      let next bound =
        s := !s lxor (!s lsl 13);
        s := !s lxor (!s lsr 7);
        s := !s lxor (!s lsl 17);
        abs !s mod bound
      in
      let perm = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = next (i + 1) in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      done;
      projection (Propagate.run ~order:perm analysis_cfg g)
      = projection (Propagate.run analysis_cfg g))

let test_summary_cache_roundtrip () =
  let root = fresh_root () in
  List.iter (write_file root) order_fixture;
  let cache = Filename.concat root "summaries.json" in
  let _, sources, _ = Lint.parse_tree ~root ~paths:[ "lib" ] in
  let cold = Summary.of_sources ~cache_file:cache sources in
  Alcotest.(check bool) "cache written on miss" true (Sys.file_exists cache);
  let _, sources2, _ = Lint.parse_tree ~root ~paths:[ "lib" ] in
  let warm = Summary.of_sources ~cache_file:cache sources2 in
  Alcotest.(check string) "cached summaries bit-identical"
    (Json.to_string_pretty (Summary.to_json cold))
    (Json.to_string_pretty (Summary.to_json warm))

let test_summary_cache_stale_entry () =
  let root = fresh_root () in
  write_file root ("lib/core/a.ml", "let f () = 1\n");
  let cache = Filename.concat root "summaries.json" in
  let _, sources, _ = Lint.parse_tree ~root ~paths:[ "lib" ] in
  let _ = Summary.of_sources ~cache_file:cache sources in
  (* The file changes: its digest misses, the summary must follow. *)
  write_file root ("lib/core/a.ml", "let g () = 2\nlet h () = 3\n");
  let _, sources2, _ = Lint.parse_tree ~root ~paths:[ "lib" ] in
  let files = Summary.of_sources ~cache_file:cache sources2 in
  let a = List.find (fun f -> f.Summary.rel = "lib/core/a.ml") files in
  Alcotest.(check (list string))
    "stale entry re-extracted" [ "g"; "h" ]
    (List.map (fun (fn : Summary.fn) -> fn.Summary.fn_name) a.Summary.fns)

let test_summary_cache_corrupt_ignored () =
  let root = fresh_root () in
  List.iter (write_file root) order_fixture;
  let cache = Filename.concat root "summaries.json" in
  write_file root ("summaries.json", "{ not json !!\n");
  let _, sources, _ = Lint.parse_tree ~root ~paths:[ "lib" ] in
  let files = Summary.of_sources ~cache_file:cache sources in
  Alcotest.(check int) "corrupt cache only costs re-extraction" 3 (List.length files)

let test_rule_registry () =
  List.iter
    (fun rule ->
      match Rules.find rule.Lint.id with
      | Some found -> Alcotest.(check string) "find resolves id" rule.Lint.id found.Lint.id
      | None -> Alcotest.fail ("rule not findable: " ^ rule.Lint.id))
    Rules.all;
  Alcotest.(check bool) "unknown id rejected" true (Rules.find "no-such-rule" = None)

let test_clean_tree_ok () =
  let r =
    lint
      [
        ("lib/core/pair.ml", "let x = 1\n");
        ("lib/core/pair.mli", "val x : int\n");
      ]
  in
  Alcotest.(check bool) "ok" true (Lint.ok r);
  Alcotest.(check int) "no findings" 0 (List.length r.Lint.findings);
  Alcotest.(check int) "both files scanned" 2 r.Lint.files_scanned

let suite =
  [
    Alcotest.test_case "ipc-force-sweep: unswept force flagged" `Quick test_force_sweep_positive;
    Alcotest.test_case "ipc-force-sweep: paired force passes" `Quick test_force_sweep_negative;
    Alcotest.test_case "ipc-force-sweep: charge variant" `Quick test_force_sweep_charge_variant;
    Alcotest.test_case "ipc-force-sweep: impl layer exempt" `Quick
      test_force_sweep_impl_layer_exempt;
    Alcotest.test_case "ipc-force-sweep: bin/ out of scope" `Quick test_force_sweep_outside_lib;
    Alcotest.test_case "ipc-force-sweep: cross-module pairing passes" `Quick
      test_force_sweep_callee_covers;
    Alcotest.test_case "ipc-force-sweep: split helper still caught" `Quick
      test_force_sweep_split_still_caught;
    Alcotest.test_case "ipc-force-sweep: PR3 bug shape across two functions" `Quick
      test_force_sweep_checkpoint_regression;
    Alcotest.test_case "swallowed-control-exn: catch-alls flagged" `Quick test_swallowed_positive;
    Alcotest.test_case "swallowed-control-exn: clean idioms pass" `Quick test_swallowed_negative;
    Alcotest.test_case "rng-discipline: violations flagged" `Quick test_rng_positive;
    Alcotest.test_case "rng-discipline: clean idioms pass" `Quick test_rng_negative;
    Alcotest.test_case "crashpoint: consistent registry" `Quick test_crashpoint_consistent;
    Alcotest.test_case "crashpoint: undeclared use" `Quick test_crashpoint_undeclared_use;
    Alcotest.test_case "crashpoint: declared unused" `Quick test_crashpoint_declared_unused;
    Alcotest.test_case "crashpoint: missing plan field" `Quick test_crashpoint_missing_field;
    Alcotest.test_case "crashpoint: orphan plan field" `Quick test_crashpoint_orphan_field;
    Alcotest.test_case "crashpoint: recovery registry consistent" `Quick
      test_crashpoint_recovery_consistent;
    Alcotest.test_case "crashpoint: recovery point missing ctor" `Quick
      test_crashpoint_recovery_missing_ctor;
    Alcotest.test_case "crashpoint: recovery point missing plan field" `Quick
      test_crashpoint_recovery_missing_field;
    Alcotest.test_case "crashpoint: recovery point never probed" `Quick
      test_crashpoint_recovery_missing_probe;
    Alcotest.test_case "crashpoint: silent without registry" `Quick
      test_crashpoint_skipped_without_registry;
    Alcotest.test_case "event-codec: wildcard flagged" `Quick test_event_codec_positive;
    Alcotest.test_case "event-codec: exhaustive passes" `Quick test_event_codec_negative;
    Alcotest.test_case "event-codec: consumer wildcard flagged" `Quick
      test_event_codec_consumers_positive;
    Alcotest.test_case "event-codec: exhaustive consumers pass" `Quick
      test_event_codec_consumers_negative;
    Alcotest.test_case "no-poly-compare: state operands flagged" `Quick test_poly_compare_positive;
    Alcotest.test_case "no-poly-compare: clean idioms pass" `Quick test_poly_compare_negative;
    Alcotest.test_case "mli-coverage: missing .mli flagged" `Quick test_mli_positive;
    Alcotest.test_case "mli-coverage: sibling .mli passes" `Quick test_mli_negative;
    Alcotest.test_case "no-unsafe-obj: Obj in lib/ flagged" `Quick test_unsafe_obj;
    Alcotest.test_case "ipc-elr-pairing: bare release flagged" `Quick test_elr_pairing_positive;
    Alcotest.test_case "ipc-elr-pairing: recorded release passes" `Quick
      test_elr_pairing_negative;
    Alcotest.test_case "ipc-elr-pairing: cross-module pairing passes" `Quick
      test_elr_pairing_callee_records;
    Alcotest.test_case "ipc-elr-pairing: impl layer exempt" `Quick
      test_elr_pairing_impl_layer_exempt;
    Alcotest.test_case "ipc-elr-pairing: bin/ out of scope" `Quick test_elr_pairing_outside_lib;
    Alcotest.test_case "exn-flow: uncatchable raise flagged" `Quick
      test_exn_flow_unreachable_handler;
    Alcotest.test_case "exn-flow: raise in A handled in B" `Quick test_exn_flow_cross_file_handler;
    Alcotest.test_case "exn-flow: refined label mismatch flagged" `Quick
      test_exn_flow_refined_label_mismatch;
    Alcotest.test_case "exn-flow: own handler covers" `Quick test_exn_flow_same_function_handler;
    Alcotest.test_case "dead-handler: unfeedable handler flagged" `Quick test_dead_handler_positive;
    Alcotest.test_case "dead-handler: cross-module feed is live" `Quick test_dead_handler_negative;
    Alcotest.test_case "dead-handler: unresolved body conservative" `Quick
      test_dead_handler_unresolved_conservative;
    Alcotest.test_case "rng-reachability: unseeded draw flagged" `Quick
      test_rng_reachability_positive;
    Alcotest.test_case "rng-reachability: seeded root covers" `Quick
      test_rng_reachability_seeded_root;
    Alcotest.test_case "rng-reachability: rng module exempt" `Quick
      test_rng_reachability_impl_exempt;
    Alcotest.test_case "suppression: inline attribute" `Quick test_inline_suppression;
    Alcotest.test_case "suppression: wrong rule id inert" `Quick test_inline_suppression_wrong_rule;
    Alcotest.test_case "suppression: floating attribute" `Quick test_floating_suppression;
    Alcotest.test_case "allowlist: grandfathered entry" `Quick test_allowlist;
    Alcotest.test_case "engine: parse error is a finding" `Quick test_parse_error_is_finding;
    Alcotest.test_case "engine: JSON report shape" `Quick test_json_report_shape;
    Alcotest.test_case "engine: clean tree is ok" `Quick test_clean_tree_ok;
    Alcotest.test_case "engine: rule registry lookup" `Quick test_rule_registry;
    Alcotest.test_case "propagate: order fixture findings" `Quick test_order_fixture_findings;
    QCheck_alcotest.to_alcotest prop_fixpoint_order_independent;
    Alcotest.test_case "summary cache: warm run bit-identical" `Quick
      test_summary_cache_roundtrip;
    Alcotest.test_case "summary cache: stale entry re-extracted" `Quick
      test_summary_cache_stale_entry;
    Alcotest.test_case "summary cache: corrupt cache ignored" `Quick
      test_summary_cache_corrupt_ignored;
  ]
