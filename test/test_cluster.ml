(* Multi-node normal processing: callback locking, page shipping,
   inter-transaction caching, the baseline schemes. *)

module Cluster = Repro_cbl.Cluster
module Node_state = Repro_cbl.Node_state
module Block = Repro_cbl.Block
module Metrics = Repro_sim.Metrics
module Config = Repro_sim.Config

let mk ?scheme ?retain_cached_locks ?(nodes = 4) () =
  let c = Cluster.create ?scheme ?retain_cached_locks ~pool_capacity:16 ~nodes Config.instant in
  let pages = Cluster.allocate_pages c ~owner:0 ~count:8 in
  (c, pages)

let test_remote_update_and_zero_commit_messages () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 9L;
  let before = (Cluster.node_metrics c 1).Metrics.messages_sent in
  Cluster.commit c ~txn:t;
  let m = Cluster.node_metrics c 1 in
  Alcotest.(check int) "no messages during commit" before m.Metrics.messages_sent;
  Alcotest.(check int) "no commit-path messages" 0 m.Metrics.commit_messages;
  Cluster.check_invariants c

let test_callback_x_takes_page_and_lock () =
  let c, pages = mk () in
  let p = List.hd pages in
  (* node 1 updates and commits: retains cached X and the dirty page *)
  let t1 = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t1 ~pid:p ~off:0 5L;
  Cluster.commit c ~txn:t1;
  (* node 2 updates the same page: X callback revokes node 1's lock *)
  let t2 = Cluster.begin_txn c ~node:2 in
  Cluster.update_delta c ~txn:t2 ~pid:p ~off:0 7L;
  Cluster.commit c ~txn:t2;
  let owner = Cluster.node c 0 in
  Alcotest.(check bool) "owner shows one X holder (node 2)" true
    (Repro_lock.Global_locks.x_holder owner.Node_state.glocks ~pid:p = Some 2);
  let n1 = Cluster.node c 1 in
  Alcotest.(check bool) "node 1 lost its cached lock" true
    (Repro_lock.Local_locks.cached_mode n1.Node_state.locks p = None);
  Alcotest.(check bool) "node 1 lost the page" false
    (Repro_buffer.Buffer_pool.contains n1.Node_state.pool p);
  (* the value is cumulative: node 2 saw node 1's update *)
  let t3 = Cluster.begin_txn c ~node:3 in
  Alcotest.(check int64) "cumulative" 12L (Cluster.read_cell c ~txn:t3 ~pid:p ~off:0);
  Cluster.commit c ~txn:t3;
  Cluster.check_invariants c

let test_callback_s_demotes () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t1 = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t1 ~pid:p ~off:0 5L;
  Cluster.commit c ~txn:t1;
  (* a reader elsewhere demotes node 1's X to S; node 1 keeps the page *)
  let t2 = Cluster.begin_txn c ~node:2 in
  Alcotest.(check int64) "read sees update" 5L (Cluster.read_cell c ~txn:t2 ~pid:p ~off:0);
  Cluster.commit c ~txn:t2;
  let n1 = Cluster.node c 1 in
  Alcotest.(check bool) "node 1 demoted to S" true
    (Repro_lock.Local_locks.cached_mode n1.Node_state.locks p = Some Repro_lock.Mode.S);
  Alcotest.(check bool) "node 1 keeps the page" true
    (Repro_buffer.Buffer_pool.contains n1.Node_state.pool p);
  Cluster.check_invariants c

let test_callback_refused_while_txn_active () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t1 = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t1 ~pid:p ~off:0 5L;
  (* t1 still active: node 2's update must block on it *)
  let t2 = Cluster.begin_txn c ~node:2 in
  (match Cluster.update_delta c ~txn:t2 ~pid:p ~off:0 7L with
  | () -> Alcotest.fail "expected a callback refusal"
  | exception Block.Would_block (Block.Lock_conflict { blockers }) ->
    Alcotest.(check (list int)) "blocked by the remote holder" [ t1 ] blockers
  | exception Block.Would_block _ -> Alcotest.fail "wrong reason");
  Cluster.commit c ~txn:t1;
  Cluster.update_delta c ~txn:t2 ~pid:p ~off:0 7L;
  Cluster.commit c ~txn:t2

let test_inter_transaction_caching_saves_messages () =
  let c, pages = mk () in
  let p = List.hd pages in
  let run () =
    let t = Cluster.begin_txn c ~node:1 in
    Cluster.update_delta c ~txn:t ~pid:p ~off:0 1L;
    Cluster.commit c ~txn:t
  in
  run ();
  let m = Cluster.node_metrics c 1 in
  let msgs_first = m.Metrics.messages_sent in
  let local_first = m.Metrics.lock_requests_local in
  run ();
  run ();
  Alcotest.(check int) "repeat txns send nothing" msgs_first m.Metrics.messages_sent;
  Alcotest.(check bool) "repeat txns hit the lock cache" true
    (m.Metrics.lock_requests_local >= local_first + 2)

let test_ablation_releases_locks_at_commit () =
  let c, pages = mk ~retain_cached_locks:false () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 1L;
  Cluster.commit c ~txn:t;
  let n1 = Cluster.node c 1 in
  Alcotest.(check bool) "lock given back" true
    (Repro_lock.Local_locks.cached_mode n1.Node_state.locks p = None);
  let owner = Cluster.node c 0 in
  Alcotest.(check bool) "owner table clean" true
    (Repro_lock.Global_locks.holders owner.Node_state.glocks ~pid:p = []);
  (* durability still holds *)
  let t2 = Cluster.begin_txn c ~node:2 in
  Alcotest.(check int64) "value" 1L (Cluster.read_cell c ~txn:t2 ~pid:p ~off:0);
  Cluster.commit c ~txn:t2

let test_ping_pong_without_disk_forces () =
  let c, pages = mk () in
  let p = List.hd pages in
  for _ = 1 to 5 do
    let t1 = Cluster.begin_txn c ~node:1 in
    Cluster.update_delta c ~txn:t1 ~pid:p ~off:0 1L;
    Cluster.commit c ~txn:t1;
    let t2 = Cluster.begin_txn c ~node:2 in
    Cluster.update_delta c ~txn:t2 ~pid:p ~off:0 1L;
    Cluster.commit c ~txn:t2
  done;
  let g = Cluster.global_metrics c in
  Alcotest.(check bool) "pages shipped" true (g.Metrics.pages_shipped >= 9);
  (* the only writes are the 8 allocation formats: transfers never force *)
  Alcotest.(check int) "never forced to disk at transfer" 8 g.Metrics.page_disk_writes

let test_server_logging_scheme_commit_path () =
  let c, pages = mk ~scheme:(Node_state.Server_logging { server = 0 }) () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 3L;
  Cluster.commit c ~txn:t;
  let m = Cluster.node_metrics c 1 in
  (* batch from the client, acknowledgement from the server *)
  Alcotest.(check int) "commit messages cluster-wide" 2
    (Cluster.global_metrics c).Metrics.commit_messages;
  Alcotest.(check bool) "records shipped" true (m.Metrics.log_records_shipped >= 1);
  (* server forced its log *)
  Alcotest.(check bool) "server forced" true
    ((Cluster.node_metrics c 0).Metrics.log_forces >= 1)

let test_pca_scheme_commit_path () =
  let c, pages = mk ~scheme:Node_state.Pca_double_logging () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 3L;
  Cluster.commit c ~txn:t;
  let m = Cluster.node_metrics c 1 in
  (* page + records to the PCA node *)
  Alcotest.(check int) "commit messages" 2 m.Metrics.commit_messages;
  Alcotest.(check int) "double logging" 1 m.Metrics.log_records_shipped;
  Alcotest.(check bool) "owner log grew" true
    ((Cluster.node_metrics c 0).Metrics.log_appends >= 1)

let test_global_log_scheme () =
  let c, pages = mk ~scheme:(Node_state.Global_log { log_node = 0 }) () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 3L;
  Cluster.commit c ~txn:t;
  let m = Cluster.node_metrics c 1 in
  (* every record travelled to the shared log *)
  Alcotest.(check int) "records shipped per append" 2 m.Metrics.log_records_shipped;
  (* Rdb-style: a page moving to the owner is forced to disk *)
  let t2 = Cluster.begin_txn c ~node:2 in
  Cluster.update_delta c ~txn:t2 ~pid:p ~off:0 1L;
  Cluster.commit c ~txn:t2;
  Alcotest.(check bool) "transfer forced to disk" true
    ((Cluster.node_metrics c 0).Metrics.page_disk_writes >= 2);
  let t3 = Cluster.begin_txn c ~node:3 in
  Alcotest.(check int64) "value" 4L (Cluster.read_cell c ~txn:t3 ~pid:p ~off:0);
  Cluster.commit c ~txn:t3

let test_baselines_reject_recovery () =
  let c, _ = mk ~scheme:Node_state.Pca_double_logging () in
  Cluster.crash c ~node:1;
  Alcotest.(check bool) "unsupported" true
    (try
       Cluster.recover c ~nodes:[ 1 ];
       false
     with Invalid_argument _ -> true)

let test_fairness_reservation_blocks_younger () =
  let c, pages = mk () in
  let p = List.hd pages in
  (* t_old wants X but is blocked by an active holder; its reservation
     then queues a younger requester behind it *)
  let t_holder = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t_holder ~pid:p ~off:0 1L;
  let t_old = Cluster.begin_txn c ~node:2 in
  (try Cluster.update_delta c ~txn:t_old ~pid:p ~off:0 1L with Block.Would_block _ -> ());
  let t_young = Cluster.begin_txn c ~node:3 in
  (match Cluster.read_cell c ~txn:t_young ~pid:p ~off:0 with
  | _ -> Alcotest.fail "younger must queue behind the reservation"
  | exception Block.Would_block (Block.Lock_conflict { blockers }) ->
    Alcotest.(check (list int)) "queued behind t_old" [ t_old ] blockers
  | exception Block.Would_block _ -> Alcotest.fail "wrong reason");
  Cluster.commit c ~txn:t_holder;
  Cluster.update_delta c ~txn:t_old ~pid:p ~off:0 1L;
  Cluster.commit c ~txn:t_old;
  ignore (Cluster.read_cell c ~txn:t_young ~pid:p ~off:0);
  Cluster.commit c ~txn:t_young

(* ---- group commit ---- *)

let mk_gc ~window_ms ~max_batch =
  let config = Config.with_group_commit Config.instant ~window_ms ~max_batch in
  let c = Cluster.create ~pool_capacity:16 ~nodes:1 config in
  let pages = Cluster.allocate_pages c ~owner:0 ~count:8 in
  (c, pages)

let test_group_commit_one_force_per_batch () =
  let c, pages = mk_gc ~window_ms:10. ~max_batch:4 in
  let txns =
    List.mapi
      (fun i p ->
        let t = Cluster.begin_txn c ~node:0 in
        Cluster.update_delta c ~txn:t ~pid:p ~off:0 (Int64.of_int (i + 1));
        t)
      (List.filteri (fun i _ -> i < 4) pages)
  in
  let before = (Cluster.node_metrics c 0).Metrics.log_forces in
  List.iteri
    (fun i t ->
      Cluster.commit c ~txn:t;
      if i < 3 then
        Alcotest.(check bool) "still pending before the batch fills" true
          (Cluster.commit_outcome c ~txn:t = `Pending))
    txns;
  let m = Cluster.node_metrics c 0 in
  Alcotest.(check int) "one force for the whole batch" (before + 1) m.Metrics.log_forces;
  Alcotest.(check int) "one batch" 1 m.Metrics.commit_batches;
  Alcotest.(check int) "four commits shared it" 4 m.Metrics.batched_commits;
  List.iter
    (fun t ->
      Alcotest.(check bool) "durable after the batch force" true
        (Cluster.commit_outcome c ~txn:t = `Durable))
    txns;
  Cluster.check_invariants c

let test_group_commit_window_flushes_partial_batch () =
  let c, pages = mk_gc ~window_ms:5. ~max_batch:8 in
  let p0 = List.nth pages 0 and p1 = List.nth pages 1 in
  let t0 = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t0 ~pid:p0 ~off:0 1L;
  let t1 = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t1 ~pid:p1 ~off:0 2L;
  Cluster.commit c ~txn:t0;
  Cluster.commit c ~txn:t1;
  Alcotest.(check bool) "pending before the window expires" true
    (Cluster.commit_outcome c ~txn:t0 = `Pending);
  (* idle pump: the clock jumps to the batch deadline and flushes *)
  Alcotest.(check bool) "pump makes progress" true (Cluster.pump_group_commit c ~idle:true);
  let m = Cluster.node_metrics c 0 in
  Alcotest.(check int) "partial batch forced once" 1 m.Metrics.commit_batches;
  Alcotest.(check int) "both commits rode it" 2 m.Metrics.batched_commits;
  Alcotest.(check bool) "t0 durable" true (Cluster.commit_outcome c ~txn:t0 = `Durable);
  Alcotest.(check bool) "t1 durable" true (Cluster.commit_outcome c ~txn:t1 = `Durable);
  Cluster.check_invariants c

let test_group_commit_crash_loses_whole_batch () =
  let c, pages = mk_gc ~window_ms:50. ~max_batch:8 in
  let p0 = List.nth pages 0 and p1 = List.nth pages 1 in
  (* seed a durable prefix so recovery has something to preserve *)
  let t = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t ~pid:p0 ~off:0 7L;
  Cluster.commit c ~txn:t;
  ignore (Cluster.pump_group_commit c ~idle:true);
  Alcotest.(check bool) "prefix durable" true (Cluster.commit_outcome c ~txn:t = `Durable);
  (* two commits submit into a batch that never gets forced *)
  let t0 = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t0 ~pid:p0 ~off:8 1L;
  let t1 = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t1 ~pid:p1 ~off:0 2L;
  Cluster.commit c ~txn:t0;
  Cluster.commit c ~txn:t1;
  Cluster.crash c ~node:0;
  Cluster.recover c ~nodes:[ 0 ];
  (* the WHOLE batch is lost — no prefix of it committed *)
  Alcotest.(check bool) "t0 gone" true (Cluster.commit_outcome c ~txn:t0 = `Gone);
  Alcotest.(check bool) "t1 gone" true (Cluster.commit_outcome c ~txn:t1 = `Gone);
  let r = Cluster.begin_txn c ~node:0 in
  Alcotest.(check int64) "durable prefix survives" 7L (Cluster.read_cell c ~txn:r ~pid:p0 ~off:0);
  Alcotest.(check int64) "batched update lost" 0L (Cluster.read_cell c ~txn:r ~pid:p0 ~off:8);
  Alcotest.(check int64) "batched update lost (2)" 0L (Cluster.read_cell c ~txn:r ~pid:p1 ~off:0);
  Cluster.commit c ~txn:r;
  ignore (Cluster.pump_group_commit c ~idle:true);
  Cluster.check_invariants c

let suite =
  [
    ("remote update, zero commit messages", `Quick, test_remote_update_and_zero_commit_messages);
    ("X callback takes page and lock", `Quick, test_callback_x_takes_page_and_lock);
    ("S callback demotes", `Quick, test_callback_s_demotes);
    ("callback refused while txn active", `Quick, test_callback_refused_while_txn_active);
    ("inter-transaction caching saves messages", `Quick, test_inter_transaction_caching_saves_messages);
    ("ablation releases locks at commit", `Quick, test_ablation_releases_locks_at_commit);
    ("ping-pong without disk forces", `Quick, test_ping_pong_without_disk_forces);
    ("server-logging commit path", `Quick, test_server_logging_scheme_commit_path);
    ("pca commit path", `Quick, test_pca_scheme_commit_path);
    ("global-log scheme", `Quick, test_global_log_scheme);
    ("baselines reject recovery", `Quick, test_baselines_reject_recovery);
    ("fairness reservation blocks younger", `Quick, test_fairness_reservation_blocks_younger);
    ("group commit: one force per batch", `Quick, test_group_commit_one_force_per_batch);
    ("group commit: window flushes partial batch", `Quick,
     test_group_commit_window_flushes_partial_batch);
    ("group commit: crash loses the whole batch", `Quick,
     test_group_commit_crash_loses_whole_batch);
  ]
