(* Early lock release (controlled lock violation): the commit-dependency
   graph, release-at-submit behaviour on a cluster, closure loss when a
   batch dies, and the traced==untraced invariant with elr on. *)

module Dep_graph = Repro_tx.Dep_graph
module Cluster = Repro_cbl.Cluster
module Config = Repro_sim.Config
module Metrics = Repro_sim.Metrics
module Block = Repro_cbl.Block
module Engine = Repro_workload.Engine
module Driver = Repro_workload.Driver
module Generators = Repro_workload.Generators
module Rng = Repro_util.Rng
module Event = Repro_obs.Event
module Recorder = Repro_obs.Recorder
module Audit = Repro_obs.Audit

let sorted = List.sort compare

(* ---- dependency graph units ---- *)

let test_dep_chain () =
  let g = Dep_graph.create () in
  (* B observed A's pre-durable state, C observed B's *)
  Alcotest.(check bool) "B->A fresh" true (Dep_graph.add g ~dependent:2 ~antecedent:1);
  Alcotest.(check bool) "C->B fresh" true (Dep_graph.add g ~dependent:3 ~antecedent:2);
  Alcotest.(check (list int)) "B blocked on A" [ 1 ] (Dep_graph.durable_blocked g 2);
  Alcotest.(check (list int)) "C blocked on B" [ 2 ] (Dep_graph.durable_blocked g 3);
  Alcotest.(check (list int)) "A unconstrained" [] (Dep_graph.durable_blocked g 1);
  (* A forces: B frees; C still waits on B; then B forces *)
  Dep_graph.settle_durable g 1;
  Alcotest.(check (list int)) "B freed" [] (Dep_graph.durable_blocked g 2);
  Alcotest.(check (list int)) "C still blocked" [ 2 ] (Dep_graph.durable_blocked g 3);
  Dep_graph.settle_durable g 2;
  Alcotest.(check (list int)) "C freed" [] (Dep_graph.durable_blocked g 3);
  Alcotest.(check int) "no live edges" 0 (Dep_graph.edge_count g);
  Alcotest.(check int) "two edges ever registered" 2 (Dep_graph.registered_count g)

let test_dep_dedup_and_self () =
  let g = Dep_graph.create () in
  Alcotest.(check bool) "first is fresh" true (Dep_graph.add g ~dependent:2 ~antecedent:1);
  Alcotest.(check bool) "repeat is not" false (Dep_graph.add g ~dependent:2 ~antecedent:1);
  Alcotest.(check bool) "self-edge ignored" false (Dep_graph.add g ~dependent:1 ~antecedent:1);
  Alcotest.(check int) "one live edge" 1 (Dep_graph.edge_count g);
  Alcotest.(check int) "one registered" 1 (Dep_graph.registered_count g)

let test_dep_diamond_loss_closure () =
  let g = Dep_graph.create () in
  (* diamond: B and C depend on A; D depends on both B and C *)
  ignore (Dep_graph.add g ~dependent:2 ~antecedent:1);
  ignore (Dep_graph.add g ~dependent:3 ~antecedent:1);
  ignore (Dep_graph.add g ~dependent:4 ~antecedent:2);
  ignore (Dep_graph.add g ~dependent:4 ~antecedent:3);
  (* losing A dooms everything downstream, each member once *)
  let closure = Dep_graph.settle_lost g [ 1 ] in
  Alcotest.(check (list int)) "whole diamond dragged" [ 2; 3; 4 ] (sorted closure);
  Alcotest.(check int) "graph scrubbed" 0 (Dep_graph.edge_count g);
  (* a disjoint chain is untouched by an unrelated loss *)
  ignore (Dep_graph.add g ~dependent:11 ~antecedent:10);
  Alcotest.(check (list int)) "unrelated loss drags nothing" [] (Dep_graph.settle_lost g [ 99 ]);
  Alcotest.(check (list int)) "chain intact" [ 10 ] (Dep_graph.durable_blocked g 11)

(* ---- cluster behaviour ---- *)

let mk_elr ?(early_release = true) ?(trace = false) ~window_ms ~max_batch () =
  let config =
    Config.with_early_release
      (Config.with_group_commit Config.instant ~window_ms ~max_batch)
      early_release
  in
  let c = Cluster.create ~trace ~nodes:1 ~pool_capacity:16 config in
  let pages = Cluster.allocate_pages c ~owner:0 ~count:8 in
  (c, pages)

(* The point of the whole feature: a committing transaction no longer
   blocks the next writer for the duration of the batch window. *)
let test_release_at_submit_unblocks_next_writer () =
  let c, pages = mk_elr ~window_ms:50. ~max_batch:8 () in
  let p = List.hd pages in
  let t0 = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t0 ~pid:p ~off:0 5L;
  Cluster.commit c ~txn:t0;
  Alcotest.(check bool) "t0 pending in its batch" true
    (Cluster.commit_outcome c ~txn:t0 = `Pending);
  (* with strict 2PL this acquire would block on t0's X until the
     batch forces; with elr it proceeds under a commit dependency *)
  let t1 = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t1 ~pid:p ~off:0 2L;
  Alcotest.(check (list int)) "t1 depends on t0" [ t0 ] (Cluster.commit_antecedents c ~txn:t1);
  Alcotest.(check int) "one dependency registered" 1 (Cluster.dep_edges_registered c);
  Cluster.commit c ~txn:t1;
  ignore (Cluster.pump_group_commit c ~idle:true);
  Alcotest.(check bool) "t0 durable" true (Cluster.commit_outcome c ~txn:t0 = `Durable);
  Alcotest.(check bool) "t1 durable" true (Cluster.commit_outcome c ~txn:t1 = `Durable);
  let r = Cluster.begin_txn c ~node:0 in
  Alcotest.(check int64) "both updates applied" 7L (Cluster.read_cell c ~txn:r ~pid:p ~off:0);
  Cluster.commit c ~txn:r;
  ignore (Cluster.pump_group_commit c ~idle:true);
  Cluster.check_invariants c

let test_strict_2pl_still_blocks_without_elr () =
  let c, pages = mk_elr ~early_release:false ~window_ms:50. ~max_batch:8 () in
  let p = List.hd pages in
  let t0 = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t0 ~pid:p ~off:0 5L;
  Cluster.commit c ~txn:t0;
  let t1 = Cluster.begin_txn c ~node:0 in
  (match Cluster.update_delta c ~txn:t1 ~pid:p ~off:0 2L with
  | () -> Alcotest.fail "expected the committing holder to block the acquire"
  | exception Block.Would_block _ -> ());
  Alcotest.(check int) "no dependency recorded" 0 (Cluster.dep_edges_registered c);
  ignore (Cluster.pump_group_commit c ~idle:true);
  Cluster.abort c ~txn:t1;
  Cluster.check_invariants c

(* PR 3's whole-batch-loss invariant generalised: a dependent that rode
   the doomed batch is dragged down with its antecedent. *)
let test_lost_batch_drags_dependents () =
  let c, pages = mk_elr ~window_ms:50. ~max_batch:8 () in
  let p0 = List.nth pages 0 and p1 = List.nth pages 1 in
  (* a durable prefix recovery must preserve *)
  let t = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t ~pid:p0 ~off:0 7L;
  Cluster.commit c ~txn:t;
  ignore (Cluster.pump_group_commit c ~idle:true);
  Alcotest.(check bool) "prefix durable" true (Cluster.commit_outcome c ~txn:t = `Durable);
  (* t0 submits; t1 observes t0's early-released page, then submits too *)
  let t0 = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t0 ~pid:p0 ~off:8 1L;
  Cluster.commit c ~txn:t0;
  let t1 = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t1 ~pid:p0 ~off:8 1L;
  Cluster.update_delta c ~txn:t1 ~pid:p1 ~off:0 2L;
  Alcotest.(check (list int)) "t1 depends on t0" [ t0 ] (Cluster.commit_antecedents c ~txn:t1);
  Cluster.commit c ~txn:t1;
  (* the batch never forces: both the antecedent and its dependent die *)
  Cluster.crash c ~node:0;
  Cluster.recover c ~nodes:[ 0 ];
  Alcotest.(check bool) "t0 gone" true (Cluster.commit_outcome c ~txn:t0 = `Gone);
  Alcotest.(check bool) "t1 gone (dragged)" true (Cluster.commit_outcome c ~txn:t1 = `Gone);
  Alcotest.(check int) "graph drained" 0 (Cluster.dep_edge_count c);
  let r = Cluster.begin_txn c ~node:0 in
  Alcotest.(check int64) "durable prefix survives" 7L (Cluster.read_cell c ~txn:r ~pid:p0 ~off:0);
  Alcotest.(check int64) "antecedent's update lost" 0L (Cluster.read_cell c ~txn:r ~pid:p0 ~off:8);
  Alcotest.(check int64) "dependent's update lost" 0L (Cluster.read_cell c ~txn:r ~pid:p1 ~off:0);
  Cluster.commit c ~txn:r;
  ignore (Cluster.pump_group_commit c ~idle:true);
  Cluster.check_invariants c

(* ---- a contended elr workload: deterministic, traced == untraced ---- *)

let elr_workload ~trace () =
  let config =
    Config.with_early_release
      (Config.with_group_commit Config.default ~window_ms:10. ~max_batch:4)
      true
  in
  let cluster = Cluster.create ~trace ~trace_capacity:(1 lsl 18) ~seed:7 ~nodes:2 config in
  let pages = Cluster.allocate_pages cluster ~owner:0 ~count:8 in
  let engine = Engine.of_cluster cluster in
  let rng = Rng.create 7 in
  let scripts =
    Generators.hotspot rng ~pages ~clients:[ 0; 0; 0; 1 ] ~txns_per_client:8
      ~mix:
        {
          Generators.default_mix with
          update_fraction = 0.6;
          ops_per_txn = 3;
          remote_fraction = 0.;
          theta = 0.6;
        }
  in
  let outcome = Driver.run engine ~mpl:4 scripts in
  Alcotest.(check int) "no stuck scripts" 0 outcome.Driver.stuck;
  (match Driver.verify outcome with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "durability oracle: %s" (String.concat "; " errs));
  (cluster, outcome)

let test_elr_traced_equals_untraced () =
  let traced, ot = elr_workload ~trace:true () in
  let untraced, ou = elr_workload ~trace:false () in
  Alcotest.(check (list (pair string int)))
    "identical counters"
    (Metrics.to_alist (Cluster.global_metrics untraced))
    (Metrics.to_alist (Cluster.global_metrics traced));
  Alcotest.(check bool) "identical simulated time" true
    (Float.equal (Cluster.now untraced) (Cluster.now traced));
  Alcotest.(check int) "identical commits" ou.Driver.committed ot.Driver.committed;
  (* the traced run recorded the new story, and the auditor accepts the
     weakened discipline *)
  let events = Recorder.events (Repro_sim.Env.obs (Cluster.env traced)) in
  let has k = List.exists (fun e -> e.Event.kind = k) events in
  Alcotest.(check bool) "early releases captured" true (has Event.Lock_early_release);
  Alcotest.(check bool) "dependencies captured" true (has Event.Commit_dep);
  let report = Audit.run events in
  if not (Audit.ok report) then
    Alcotest.failf "audit rejected the elr trace: %s" (Format.asprintf "%a" Audit.pp report)

let suite =
  [
    ("dep graph: chain settles in order", `Quick, test_dep_chain);
    ("dep graph: dedup and self-edges", `Quick, test_dep_dedup_and_self);
    ("dep graph: loss drags the diamond", `Quick, test_dep_diamond_loss_closure);
    ("elr: release at submit unblocks next writer", `Quick,
     test_release_at_submit_unblocks_next_writer);
    ("elr off: committing holder still blocks", `Quick, test_strict_2pl_still_blocks_without_elr);
    ("elr: lost batch drags dependents", `Quick, test_lost_batch_drags_dependents);
    ("elr: traced == untraced, audit clean", `Quick, test_elr_traced_equals_untraced);
  ]
