(* Tests for the Scale profile layer (big-cluster workload generation). *)

module Scale = Repro_workload.Scale
module Op = Repro_workload.Op
module Page_id = Repro_storage.Page_id
module Rng = Repro_util.Rng

let qcheck = QCheck_alcotest.to_alcotest

(* Scripts are compared by their rendered form: [Op.script] holds page
   ids, and string equality keeps the comparison structural without
   reaching for polymorphic compare. *)
let render scripts = String.concat "\n" (List.map (Format.asprintf "%a" Op.pp_script) scripts)

let shape ~parts ~pages_per_part =
  List.init parts (fun owner ->
      (owner, List.init pages_per_part (fun slot -> Page_id.make ~owner ~slot)))

let gen ?(parts = 4) ?(pages_per_part = 16) ?(clients = 8) ?(txns = 5) name seed =
  let profile =
    match Scale.find name with
    | Some p -> p
    | None -> Alcotest.failf "unknown profile %s" name
  in
  Scale.scripts (Rng.create seed) profile
    ~pages_by_owner:(shape ~parts ~pages_per_part)
    ~clients ~txns_per_client:txns

(* ---- presets ---- *)

let test_presets_named () =
  let names = Scale.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " is a preset") true (List.mem n names);
      match Scale.find n with
      | Some p -> Alcotest.(check string) "find returns the named profile" n p.Scale.name
      | None -> Alcotest.failf "find %s returned None" n)
    [ "uniform"; "zipf-hot"; "hot-owner"; "read-heavy"; "write-heavy"; "mixed-geometric" ];
  Alcotest.(check bool) "unknown name" true (Scale.find "no-such-profile" = None)

(* ---- seed determinism ---- *)

let test_scripts_deterministic () =
  (* same (profile, seed, shape) triple twice -> identical scripts *)
  List.iter
    (fun name ->
      Alcotest.(check string)
        (name ^ " reproducible")
        (render (gen name 2026))
        (render (gen name 2026)))
    (Scale.names ())

let test_scripts_seed_sensitive () =
  Alcotest.(check bool) "different seeds differ" false
    (String.equal (render (gen "mixed-geometric" 1)) (render (gen "mixed-geometric" 2)))

let test_scripts_shape () =
  let parts = 4 and clients = 8 and txns = 5 in
  let scripts = gen ~parts ~clients ~txns "uniform" 7 in
  Alcotest.(check int) "clients * txns scripts" (clients * txns) (List.length scripts);
  List.iter
    (fun (s : Op.script) ->
      Alcotest.(check bool) "homed at client mod partitions" true (s.Op.node >= 0 && s.Op.node < parts);
      Alcotest.(check int) "fixed 8-op transactions" 8 (List.length s.Op.actions))
    scripts

(* ---- txn-size distributions ---- *)

let test_ops_per_txn_bounds () =
  let rng = Rng.create 31 in
  for _ = 1 to 1_000 do
    Alcotest.(check int) "fixed" 8 (Scale.ops_per_txn rng (Scale.Fixed 8));
    let u = Scale.ops_per_txn rng (Scale.Uniform (4, 12)) in
    Alcotest.(check bool) "uniform in [4,12]" true (u >= 4 && u <= 12);
    let g = Scale.ops_per_txn rng (Scale.Geometric { mean = 8; cap = 32 }) in
    Alcotest.(check bool) "geometric in [1,32]" true (g >= 1 && g <= 32)
  done

let test_geometric_mean_roughly_honoured () =
  let rng = Rng.create 37 in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Scale.ops_per_txn rng (Scale.Geometric { mean = 8; cap = 64 })
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* the cap shaves the tail, so the observed mean sits a little under 8 *)
  Alcotest.(check bool) "mean near 8" true (mean > 6.5 && mean < 9.0)

(* ---- access-shape properties ---- *)

(* Count page accesses per owning partition across all scripts. *)
let accesses_by_owner ~parts scripts =
  let counts = Array.make parts 0 in
  List.iter
    (fun (s : Op.script) ->
      List.iter
        (fun pid ->
          let o = Page_id.owner pid in
          counts.(o) <- counts.(o) + 1)
        (Op.pages_touched s))
    scripts;
  counts

let prop_hot_owner_concentrates =
  QCheck.Test.make ~name:"scale: hot-owner skews remote traffic onto low-rank owners"
    ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let parts = 8 in
      (* clients spread evenly over homes, so any imbalance beyond the
         home traffic comes from the owner-Zipf remote draws *)
      let scripts = gen ~parts ~clients:parts ~txns:20 "hot-owner" seed in
      let counts = accesses_by_owner ~parts scripts in
      (* rank 0 absorbs its home share plus the hot head of the remote
         Zipf(0.9); the last partition gets home share plus the tail *)
      counts.(0) > counts.(parts - 1))

let prop_uniform_stays_balanced =
  QCheck.Test.make ~name:"scale: uniform profile keeps partitions balanced" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let parts = 8 in
      let scripts = gen ~parts ~clients:parts ~txns:20 "uniform" seed in
      let counts = accesses_by_owner ~parts scripts in
      let lo = Array.fold_left min max_int counts in
      let hi = Array.fold_left max 0 counts in
      (* theta = 0 everywhere: no partition should dominate *)
      hi < 2 * lo)

let prop_zipf_hot_pages =
  QCheck.Test.make ~name:"scale: zipf-hot concentrates accesses inside a partition"
    ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let pages_per_part = 16 in
      let scripts = gen ~parts:2 ~pages_per_part ~clients:4 ~txns:25 "zipf-hot" seed in
      (* tally per-page hits for partition 0; rank 0 of the page Zipf is
         slot 0, the coldest rank is the last slot *)
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (s : Op.script) ->
          List.iter
            (fun pid ->
              if Page_id.owner pid = 0 then
                Hashtbl.replace tbl (Page_id.to_string pid)
                  (1 + Option.value ~default:0 (Hashtbl.find_opt tbl (Page_id.to_string pid))))
            (Op.pages_touched s))
        scripts;
      let hits slot =
        Option.value ~default:0
          (Hashtbl.find_opt tbl (Page_id.to_string (Page_id.make ~owner:0 ~slot)))
      in
      hits 0 > hits (pages_per_part - 1))

let suite =
  [
    ("presets named and findable", `Quick, test_presets_named);
    ("scripts seed-deterministic", `Quick, test_scripts_deterministic);
    ("scripts seed-sensitive", `Quick, test_scripts_seed_sensitive);
    ("scripts shape", `Quick, test_scripts_shape);
    ("ops_per_txn bounds", `Quick, test_ops_per_txn_bounds);
    ("geometric mean roughly honoured", `Quick, test_geometric_mean_roughly_honoured);
    qcheck prop_hot_owner_concentrates;
    qcheck prop_uniform_stays_balanced;
    qcheck prop_zipf_hot_pages;
  ]
