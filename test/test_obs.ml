(* Tests for the observability layer: typed events, spans, log-bucketed
   histograms, JSON codec, and the traced==untraced metrics invariant. *)

module Json = Repro_obs.Json
module Event = Repro_obs.Event
module Recorder = Repro_obs.Recorder
module Log_hist = Repro_obs.Log_hist
module Stats = Repro_util.Stats
module Metrics = Repro_sim.Metrics
module Config = Repro_sim.Config
module Cluster = Repro_cbl.Cluster
module Engine = Repro_workload.Engine
module Driver = Repro_workload.Driver
module Generators = Repro_workload.Generators
module Rng = Repro_util.Rng

let feq = Alcotest.(check (float 1e-9))

(* ---- spans ---- *)

let test_span_nesting_and_ordering () =
  let r = Recorder.create ~enabled:true () in
  let outer = Recorder.span_begin r ~time:1.0 ~node:0 "txn.1" in
  Alcotest.(check int) "outer is current" outer (Recorder.current_span r);
  let inner = Recorder.span_begin r ~time:1.5 ~node:0 "force" in
  Alcotest.(check int) "inner is current" inner (Recorder.current_span r);
  (* events emitted while a span is open inherit the innermost span *)
  Recorder.emit r ~time:1.6 ~node:0 Event.Log_force [ ("bytes", Event.Int 512) ];
  Recorder.span_end r ~time:2.0 inner;
  Alcotest.(check int) "outer current again" outer (Recorder.current_span r);
  Recorder.span_end r ~time:3.0 outer;
  Alcotest.(check int) "no open span" (-1) (Recorder.current_span r);
  (match Recorder.spans r with
  | [ o; i ] ->
    Alcotest.(check string) "outer name" "txn.1" o.Recorder.name;
    Alcotest.(check int) "outer is root" (-1) o.Recorder.parent;
    Alcotest.(check string) "inner name" "force" i.Recorder.name;
    Alcotest.(check int) "inner nests in outer" outer i.Recorder.parent;
    (match (Recorder.span_duration o, Recorder.span_duration i) with
    | Some dof, Some dif ->
      feq "outer duration" 2.0 dof;
      feq "inner duration" 0.5 dif
    | _ -> Alcotest.fail "span durations missing")
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans));
  (* the event stream is oldest-first and interleaves begins/ends *)
  let kinds = List.map (fun e -> Event.kind_name e.Event.kind) (Recorder.events r) in
  Alcotest.(check (list string))
    "event order" [ "span.begin"; "span.begin"; "log.force"; "span.end"; "span.end" ] kinds;
  let forced = List.find (fun e -> e.Event.kind = Event.Log_force) (Recorder.events r) in
  Alcotest.(check int) "emit inherits innermost span" inner forced.Event.span

let test_ring_buffer_keeps_newest () =
  let r = Recorder.create ~enabled:true ~capacity:4 () in
  for i = 1 to 10 do
    Recorder.emit r ~time:(float_of_int i) ~node:0 Event.Note [ ("msg", Event.Int i) ]
  done;
  Alcotest.(check int) "dropped oldest" 6 (Recorder.dropped r);
  let times = List.map (fun e -> int_of_float e.Event.time) (Recorder.events r) in
  Alcotest.(check (list int)) "newest survive, oldest-first" [ 7; 8; 9; 10 ] times

let test_disabled_recorder_is_inert () =
  let r = Recorder.create () in
  Recorder.emit r ~time:1.0 ~node:0 Event.Crash [];
  let id = Recorder.span_begin r ~time:1.0 ~node:0 "txn.1" in
  Alcotest.(check int) "span id is -1 when disabled" (-1) id;
  Recorder.span_end r ~time:2.0 id;
  Alcotest.(check int) "no events" 0 (List.length (Recorder.events r));
  Alcotest.(check int) "no spans" 0 (List.length (Recorder.spans r))

(* ---- histograms ---- *)

let test_histogram_percentiles_match_stats () =
  (* a deterministic long-tailed sample: commit latencies in seconds *)
  let rng = Rng.create 99 in
  let samples =
    Array.init 5000 (fun _ ->
        let base = 0.002 +. Rng.float rng 0.01 in
        if Rng.chance rng 0.05 then base *. 30. else base)
  in
  let h = Log_hist.create () in
  Array.iter (Log_hist.record h) samples;
  let s = Stats.summarize samples in
  let close name expect got =
    let rel = abs_float (got -. expect) /. expect in
    if rel > 0.15 then
      Alcotest.failf "%s: histogram %g vs exact %g (rel err %.3f)" name got expect rel
  in
  Alcotest.(check int) "count" (Array.length samples) (Log_hist.count h);
  feq "min is exact" s.Stats.min (Log_hist.min_value h);
  feq "max is exact" s.Stats.max (Log_hist.max_value h);
  close "mean" s.Stats.mean (Log_hist.mean h);
  close "p50" s.Stats.p50 (Log_hist.p50 h);
  close "p95" s.Stats.p95 (Log_hist.p95 h);
  close "p99" s.Stats.p99 (Log_hist.p99 h)

let test_histogram_edge_cases () =
  let h = Log_hist.create () in
  feq "empty quantile" 0. (Log_hist.p50 h);
  Log_hist.record h 3.0;
  feq "single sample p50" 3.0 (Log_hist.p50 h);
  feq "single sample p99" 3.0 (Log_hist.p99 h);
  Log_hist.record h 0.;
  Alcotest.(check int) "zero lands in underflow" 2 (Log_hist.count h);
  feq "min tracks zero" 0. (Log_hist.min_value h)

let test_observe_aggregates_cluster () =
  let r = Recorder.create () in
  Recorder.observe r ~name:"commit_latency" ~node:0 1.0;
  Recorder.observe r ~name:"commit_latency" ~node:1 2.0;
  (match Recorder.find_hist r ~name:"commit_latency" ~node:(-1) with
  | Some h -> Alcotest.(check int) "cluster aggregate has both" 2 (Log_hist.count h)
  | None -> Alcotest.fail "cluster aggregate missing");
  match Recorder.find_hist r ~name:"commit_latency" ~node:1 with
  | Some h -> Alcotest.(check int) "per-node kept apart" 1 (Log_hist.count h)
  | None -> Alcotest.fail "per-node histogram missing"

(* ---- JSON ---- *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "he said \"hi\"\n\ttab");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.1250931);
        ("t", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.5; Json.Str "x" ]);
        ("o", Json.Obj [ ("nested", Json.List []) ]);
      ]
  in
  Alcotest.(check bool) "round trip" true (Json.of_string (Json.to_string v) = v);
  Alcotest.(check bool)
    "pretty round trip" true
    (Json.of_string (Json.to_string_pretty v) = v);
  (match Json.of_string "{\"a\": [1, 2.5e-3, \"\\u0041\"]}" with
  | Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float f; Json.Str "A" ]) ] ->
    feq "exponent" 0.0025 f
  | _ -> Alcotest.fail "parse shape");
  List.iter
    (fun bad -> match Json.of_string bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted invalid JSON %S" bad)
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2" ]

let test_metrics_json_round_trip () =
  let m = Metrics.create ~node:3 () in
  m.Metrics.messages_sent <- 17;
  m.Metrics.log_appends <- 5;
  m.Metrics.txn_committed <- 2;
  m.Metrics.busy_seconds <- 1.625;
  let m' = Metrics.of_json (Json.of_string (Json.to_string (Metrics.to_json m))) in
  Alcotest.(check int) "node survives" 3 m'.Metrics.node;
  feq "float survives" m.Metrics.busy_seconds m'.Metrics.busy_seconds;
  Alcotest.(check (list (pair string int)))
    "all counters survive" (Metrics.to_alist m) (Metrics.to_alist m')

let test_event_json_and_kind_names () =
  List.iter
    (fun k ->
      match Event.kind_of_name (Event.kind_name k) with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.failf "kind name round trip failed for %s" (Event.kind_name k))
    Event.all_kinds;
  let e =
    Event.make ~time:1.25 ~node:2 ~span:7 Event.Page_ship
      [ ("dst", Event.Int 0); ("page", Event.Str "P0.3") ]
  in
  let j = Event.to_json e in
  let str_field k = Option.bind (Json.member k j) Json.to_string_opt in
  let int_field k = Option.bind (Json.member k j) Json.to_int_opt in
  Alcotest.(check (option string)) "kind" (Some "page.ship") (str_field "kind");
  Alcotest.(check (option int)) "node" (Some 2) (int_field "node");
  Alcotest.(check (option string)) "attr" (Some "P0.3") (str_field "page")

(* ---- the invariant: tracing must not change the simulation ---- *)

let run_workload ~trace () =
  let cluster = Cluster.create ~trace ~seed:5 ~nodes:3 Config.default in
  let p0 = Cluster.allocate_pages cluster ~owner:0 ~count:12 in
  let p2 = Cluster.allocate_pages cluster ~owner:2 ~count:12 in
  let engine = Engine.of_cluster cluster in
  let rng = Rng.create 5 in
  let scripts =
    Generators.partitioned rng
      ~pages_by_owner:[ (0, p0); (2, p2) ]
      ~clients:[ 0; 1; 2 ] ~txns_per_client:8
      ~mix:{ Generators.default_mix with remote_fraction = 0.4 }
  in
  let events = [ (12, Driver.Crash 1); (30, Driver.Recover [ 1 ]) ] in
  let outcome = Driver.run engine ~events scripts in
  (cluster, outcome)

let test_traced_equals_untraced () =
  let traced, ot = run_workload ~trace:true () in
  let untraced, ou = run_workload ~trace:false () in
  Alcotest.(check (list (pair string int)))
    "identical counters"
    (Metrics.to_alist (Cluster.global_metrics untraced))
    (Metrics.to_alist (Cluster.global_metrics traced));
  feq "identical simulated time" (Cluster.now untraced) (Cluster.now traced);
  Alcotest.(check int) "identical commits" ou.Driver.committed ot.Driver.committed;
  (* and the traced run actually recorded the story *)
  let obs = Repro_sim.Env.obs (Cluster.env traced) in
  let has k = List.exists (fun e -> e.Event.kind = k) (Recorder.events obs) in
  List.iter
    (fun k ->
      Alcotest.(check bool) (Event.kind_name k ^ " captured") true (has k))
    [ Event.Txn_begin; Event.Txn_commit; Event.Msg_send; Event.Log_force; Event.Crash;
      Event.Recovery_begin; Event.Recovery_phase; Event.Recovery_end ];
  Alcotest.(check bool)
    "untraced recorded nothing" true
    (Recorder.events (Repro_sim.Env.obs (Cluster.env untraced)) = [])

let test_commit_latency_histograms_always_on () =
  let cluster, _ = run_workload ~trace:false () in
  let obs = Repro_sim.Env.obs (Cluster.env cluster) in
  (match Recorder.find_hist obs ~name:"commit_latency" ~node:(-1) with
  | Some h -> Alcotest.(check bool) "commits observed" true (Log_hist.count h > 0)
  | None -> Alcotest.fail "commit_latency cluster histogram missing");
  match Recorder.find_hist obs ~name:"recovery_duration" ~node:1 with
  | Some h -> Alcotest.(check int) "one recovery at node 1" 1 (Log_hist.count h)
  | None -> Alcotest.fail "recovery_duration histogram missing"

(* ---- the invariant under faults, and the trace auditor ---- *)

module Fault_plan = Repro_fault.Fault_plan
module Injector = Repro_fault.Injector
module Audit = Repro_obs.Audit
module Node = Repro_cbl.Node

(* A compact mirror of `cblsim stress`'s randomized run: fault plan,
   group-commit substream, crash/recover/checkpoint schedule, end-of-run
   recovery convergence.  All randomness derives from [seed], so the
   traced and untraced executions see the identical schedule. *)
let faulted_stress_run ~classes ~trace seed =
  let rng = Rng.create seed in
  let plan = Fault_plan.generate (Rng.split rng) ~classes in
  let faults = Injector.create plan in
  let config =
    let gr = Rng.split rng in
    if Rng.chance gr 0.5 then
      Config.with_group_commit Config.instant
        ~window_ms:(0.5 +. Rng.float gr 20.)
        ~max_batch:(2 + Rng.int gr 7)
    else Config.instant
  in
  let nodes = 2 + Rng.int rng 4 in
  let cluster =
    Cluster.create ~trace ~trace_capacity:(1 lsl 18) ~seed ~faults ~nodes
      ~pool_capacity:(8 + Rng.int rng 24) config
  in
  let owners = List.init (1 + Rng.int rng (min 3 nodes)) (fun i -> i) in
  let pages_by_owner =
    List.map
      (fun o -> (o, Cluster.allocate_pages cluster ~owner:o ~count:(8 + Rng.int rng 16)))
      owners
  in
  let engine = Engine.of_cluster cluster in
  let scripts =
    Generators.partitioned rng ~pages_by_owner
      ~clients:(List.init nodes (fun i -> i))
      ~txns_per_client:(3 + Rng.int rng 6)
      ~mix:
        {
          Generators.ops_per_txn = 2 + Rng.int rng 6;
          update_fraction = 0.3 +. Rng.float rng 0.6;
          remote_fraction = Rng.float rng 0.8;
          theta = Rng.float rng 1.0;
          savepoint_fraction = Rng.float rng 0.3;
          abort_fraction = Rng.float rng 0.2;
        }
  in
  let events = ref [] in
  let t = ref 10 in
  let crashed = ref [] in
  for _ = 1 to Rng.int rng 3 do
    let victim = Rng.int rng nodes in
    if not (List.mem victim !crashed) then begin
      events := (!t, Driver.Crash victim) :: !events;
      crashed := victim :: !crashed;
      t := !t + 5 + Rng.int rng 20;
      if Rng.chance rng 0.6 || List.length !crashed >= 2 then begin
        events := (!t, Driver.Recover !crashed) :: !events;
        crashed := [];
        t := !t + 5 + Rng.int rng 15
      end
    end
  done;
  if !crashed <> [] then events := (!t + 5, Driver.Recover !crashed) :: !events;
  for _ = 1 to 1 + Rng.int rng 3 do
    events := (5 + Rng.int rng 60, Driver.Checkpoint (Rng.int rng nodes)) :: !events
  done;
  let outcome =
    Driver.run engine ~events:(List.sort compare !events) ~max_rounds:30_000 ~auto_recover:6
      scripts
  in
  let rec recover_all attempts =
    let down =
      List.filter
        (fun n -> not (Cluster.node cluster n |> Node.is_up))
        (List.init nodes (fun i -> i))
    in
    if down <> [] then
      if attempts > 100 then Alcotest.failf "seed %d: recovery did not converge" seed
      else begin
        (try Cluster.recover cluster ~nodes:down with Repro_cbl.Block.Would_block _ -> ());
        recover_all (attempts + 1)
      end
  in
  recover_all 0;
  Cluster.check_invariants cluster;
  (cluster, outcome)

(* the dropped-events counter only counts when tracing is on; every
   other metric must be bit-identical between the two runs *)
let counters_sans_dropped cluster =
  List.filter
    (fun (name, _) -> name <> "trace_events_dropped")
    (Metrics.to_alist (Cluster.global_metrics cluster))

let seeds = 50

(* One pass per fault class mix: 50 seeds, traced vs untraced must be
   bit-identical, and the traced event stream must replay through the
   protocol auditor with zero violations. *)
let check_faulted_invariance spec =
  let classes =
    match Fault_plan.classes_of_string spec with
    | Ok c -> c
    | Error msg -> Alcotest.failf "--faults %s: %s" spec msg
  in
  for seed = 0 to seeds - 1 do
    let traced, ot = faulted_stress_run ~classes ~trace:true seed in
    let untraced, ou = faulted_stress_run ~classes ~trace:false seed in
    Alcotest.(check (list (pair string int)))
      (Printf.sprintf "seed %d (%s): identical counters" seed spec)
      (counters_sans_dropped untraced) (counters_sans_dropped traced);
    feq
      (Printf.sprintf "seed %d (%s): identical simulated time" seed spec)
      (Cluster.now untraced) (Cluster.now traced);
    Alcotest.(check int)
      (Printf.sprintf "seed %d (%s): identical commits" seed spec)
      ou.Driver.committed ot.Driver.committed;
    let report = Audit.run (Recorder.drain (Repro_sim.Env.obs (Cluster.env traced))) in
    if not (Audit.ok report) then
      Alcotest.failf "seed %d (%s): audit found violations:@.%a" seed spec Audit.pp report
  done

let test_faulted_traced_equals_untraced_all () = check_faulted_invariance "all"
let test_faulted_traced_equals_untraced_recovery () = check_faulted_invariance "recovery"

(* ---- the auditor flags hand-corrupted traces, one per invariant ---- *)

let ev ?(node = 0) ?txn ~t kind attrs = Event.make ~time:t ~node ?txn kind attrs

let audit_flags name events =
  let r = Audit.run events in
  Alcotest.(check bool)
    (name ^ " flagged") true
    (List.exists (fun v -> v.Audit.invariant = name) r.Audit.violations)

let audit_clean events =
  let r = Audit.run events in
  if not (Audit.ok r) then Alcotest.failf "expected clean audit:@.%a" Audit.pp r

let test_audit_force_before_ship () =
  (* durable boundary 10, then a copy leaves carrying lsn 12: WAL hole *)
  let corrupt =
    [
      ev ~t:1. Event.Log_force [ ("durable", Event.Int 10) ];
      ev ~t:2. Event.Page_ship
        [ ("page", Event.Str "P0.1"); ("psn", Event.Int 3); ("lsn", Event.Int 12) ];
    ]
  in
  audit_flags "force-before-ship" corrupt;
  audit_clean
    [
      ev ~t:1. Event.Log_force [ ("durable", Event.Int 10) ];
      ev ~t:2. Event.Page_ship
        [ ("page", Event.Str "P0.1"); ("psn", Event.Int 3); ("lsn", Event.Int 7) ];
    ];
  (* a truncated trace must skip the check instead of fabricating it *)
  let truncated = corrupt @ [ ev ~t:3. Event.Trace_dropped [ ("count", Event.Int 5) ] ] in
  let r = Audit.run truncated in
  Alcotest.(check bool) "truncated trace skips prefix checks" true (Audit.ok r);
  Alcotest.(check bool) "skip recorded" true (List.mem "force-before-ship" r.Audit.skipped)

let test_audit_batch_loss_closure () =
  (* the batch dies with the node, yet T7 still reports committed *)
  audit_flags "batch-loss-closure"
    [
      ev ~t:1. ~txn:7 Event.Commit_submit [ ("txn", Event.Int 7); ("lsn", Event.Int 5) ];
      ev ~t:2. Event.Crash [];
      ev ~t:3. ~txn:7 Event.Txn_commit [ ("txn", Event.Int 7) ];
    ];
  (* commit reported while the record is still pending: no covering force *)
  audit_flags "batch-loss-closure"
    [
      ev ~t:1. ~txn:7 Event.Commit_submit [ ("txn", Event.Int 7); ("lsn", Event.Int 5) ];
      ev ~t:2. ~txn:7 Event.Txn_commit [ ("txn", Event.Int 7) ];
    ];
  audit_clean
    [
      ev ~t:1. ~txn:7 Event.Commit_submit [ ("txn", Event.Int 7); ("lsn", Event.Int 5) ];
      ev ~t:2. ~txn:7 Event.Log_force [ ("durable", Event.Int 6) ];
      ev ~t:3. ~txn:7 Event.Txn_commit [ ("txn", Event.Int 7) ];
    ]

let test_audit_psn_monotonic () =
  (* two divergent histories under the same page: psn goes backwards *)
  audit_flags "psn-monotonic"
    [
      ev ~t:1. Event.Page_ship [ ("page", Event.Str "P0.1"); ("psn", Event.Int 5) ];
      ev ~t:2. ~node:1 Event.Page_ship [ ("page", Event.Str "P0.1"); ("psn", Event.Int 3) ];
    ];
  audit_clean
    [
      ev ~t:1. Event.Page_ship [ ("page", Event.Str "P0.1"); ("psn", Event.Int 5) ];
      ev ~t:2. ~node:1 Event.Page_ship [ ("page", Event.Str "P0.1"); ("psn", Event.Int 5) ];
    ]

let test_audit_deferred_fence () =
  (* a parked page is granted (and shipped) by its owner before the
     deferred redo completed *)
  let parked = ev ~t:1. Event.Recovery_deferred
      [ ("action", Event.Str "parked"); ("page", Event.Str "P0.2"); ("blocker", Event.Int 2) ]
  in
  audit_flags "deferred-fence" [ parked; ev ~t:2. Event.Lock_grant [ ("page", Event.Str "P0.2") ] ];
  audit_flags "deferred-fence"
    [ parked; ev ~t:2. Event.Page_ship [ ("page", Event.Str "P0.2"); ("psn", Event.Int 1) ] ];
  (* completion lifts the fence *)
  audit_clean
    [
      parked;
      ev ~t:2. Event.Recovery_deferred
        [ ("action", Event.Str "completed"); ("page", Event.Str "P0.2") ];
      ev ~t:3. Event.Lock_grant [ ("page", Event.Str "P0.2") ];
    ];
  (* so does the owner's own crash: parked state is volatile *)
  audit_clean [ parked; ev ~t:2. Event.Crash []; ev ~t:3. Event.Lock_grant [ ("page", Event.Str "P0.2") ] ]

let test_audit_release_after_terminal () =
  (* T3's terminal release at its home node, then more lock activity
     under its context: strict 2PL broken *)
  let prefix =
    [
      ev ~t:1. ~node:1 ~txn:3 Event.Txn_begin [ ("txn", Event.Int 3) ];
      ev ~t:2. ~node:1 ~txn:3 Event.Lock_release [ ("page", Event.Str "P0.1") ];
    ]
  in
  audit_flags "release-after-terminal"
    (prefix @ [ ev ~t:3. ~node:1 ~txn:3 Event.Lock_request [ ("page", Event.Str "P0.2") ] ]);
  audit_flags "release-after-terminal"
    (prefix @ [ ev ~t:3. ~node:1 ~txn:3 Event.Log_append [ ("bytes", Event.Int 25) ] ]);
  (* an owner-table release (holder attr) under T3's context at another
     node is the callback path, not T3's terminal release *)
  audit_clean
    [
      ev ~t:1. ~node:1 ~txn:3 Event.Txn_begin [ ("txn", Event.Int 3) ];
      ev ~t:2. ~node:0 ~txn:3 Event.Lock_release
        [ ("page", Event.Str "P0.1"); ("holder", Event.Int 2) ];
      ev ~t:3. ~node:1 ~txn:3 Event.Lock_request [ ("page", Event.Str "P0.2") ];
    ]

let test_recovery_summary_phases () =
  let cluster, _ = run_workload ~trace:false () in
  Cluster.crash cluster ~node:2;
  let s = Cluster.recover_timed cluster ~nodes:[ 2 ] in
  let names = List.map fst s.Repro_cbl.Recovery.phases in
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " timed") true (List.mem phase names))
    [ "analysis"; "lock_reconstruction"; "gather"; "redo"; "undo" ];
  let sum = List.fold_left (fun acc (_, dt) -> acc +. dt) 0. s.Repro_cbl.Recovery.phases in
  Alcotest.(check bool)
    "phases within total" true
    (sum <= s.Repro_cbl.Recovery.total_seconds +. 1e-9)

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting_and_ordering;
    Alcotest.test_case "ring buffer keeps newest" `Quick test_ring_buffer_keeps_newest;
    Alcotest.test_case "disabled recorder is inert" `Quick test_disabled_recorder_is_inert;
    Alcotest.test_case "histogram percentiles vs Stats" `Quick
      test_histogram_percentiles_match_stats;
    Alcotest.test_case "histogram edge cases" `Quick test_histogram_edge_cases;
    Alcotest.test_case "observe aggregates cluster-wide" `Quick test_observe_aggregates_cluster;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "metrics json round trip" `Quick test_metrics_json_round_trip;
    Alcotest.test_case "event json and kind names" `Quick test_event_json_and_kind_names;
    Alcotest.test_case "traced run equals untraced run" `Quick test_traced_equals_untraced;
    Alcotest.test_case "latency histograms always on" `Quick
      test_commit_latency_histograms_always_on;
    Alcotest.test_case "recovery summary phases" `Quick test_recovery_summary_phases;
    Alcotest.test_case "faulted traced == untraced + clean audit (--faults all, 50 seeds)"
      `Slow test_faulted_traced_equals_untraced_all;
    Alcotest.test_case "faulted traced == untraced + clean audit (--faults recovery, 50 seeds)"
      `Slow test_faulted_traced_equals_untraced_recovery;
    Alcotest.test_case "audit flags force-before-ship" `Quick test_audit_force_before_ship;
    Alcotest.test_case "audit flags batch-loss-closure" `Quick test_audit_batch_loss_closure;
    Alcotest.test_case "audit flags psn-monotonic" `Quick test_audit_psn_monotonic;
    Alcotest.test_case "audit flags deferred-fence" `Quick test_audit_deferred_fence;
    Alcotest.test_case "audit flags release-after-terminal" `Quick
      test_audit_release_after_terminal;
  ]
