(* Tests for the ARIES building blocks: master record, fuzzy checkpoints,
   analysis, PSN-exact redo, and the undo engine. *)

module Master = Repro_aries.Master
module Checkpoint = Repro_aries.Checkpoint
module Analysis = Repro_aries.Analysis
module Redo = Repro_aries.Redo
module Undo = Repro_aries.Undo
module Record = Repro_wal.Record
module Lsn = Repro_wal.Lsn
module Log_manager = Repro_wal.Log_manager
module Page = Repro_storage.Page
module Page_id = Repro_storage.Page_id
module Env = Repro_sim.Env
module Metrics = Repro_sim.Metrics
module Config = Repro_sim.Config
module Txn = Repro_tx.Txn
module Txn_table = Repro_tx.Txn_table

let pid slot = Page_id.make ~owner:0 ~slot

let mk () =
  let env = Env.create Config.instant in
  let metrics = Metrics.create () in
  (env, metrics, Log_manager.create env metrics ())

let update ~txn ~prev ~slot ~psn_before ~delta =
  {
    Record.txn;
    prev;
    body = Update { pid = pid slot; psn_before; op = Delta { off = 0; delta } };
  }

(* ---- Txn / Txn_table (small enough to test here) ---- *)

let test_txn_bookkeeping () =
  let t = Txn.make ~id:1 ~node:0 in
  Alcotest.(check bool) "active" true (Txn.is_active t);
  Txn.record_logged t 10;
  Txn.record_logged t 20;
  Alcotest.(check int) "last" 20 t.Txn.last_lsn;
  Alcotest.(check int) "first pinned" 10 t.Txn.first_lsn;
  Txn.add_savepoint t "a" 15;
  Txn.add_savepoint t "b" 25;
  Alcotest.(check (option int)) "sp" (Some 15) (Txn.savepoint_lsn t "a");
  Txn.release_savepoints_after t 20;
  Alcotest.(check (option int)) "b released" None (Txn.savepoint_lsn t "b");
  Alcotest.(check (option int)) "a kept" (Some 15) (Txn.savepoint_lsn t "a")

let test_txn_table () =
  let tbl = Txn_table.create () in
  let t1 = Txn.make ~id:1 ~node:0 in
  let t2 = Txn.make ~id:2 ~node:0 in
  Txn_table.register tbl t1;
  Txn_table.register tbl t2;
  t2.Txn.state <- Txn.Committed;
  Alcotest.(check int) "active count" 1 (List.length (Txn_table.active tbl));
  Alcotest.(check int) "snapshot" 1 (List.length (Txn_table.snapshot_active tbl));
  Txn_table.remove tbl 1;
  Alcotest.(check bool) "removed" true (Txn_table.find tbl 1 = None)

(* ---- Master + Checkpoint ---- *)

let test_checkpoint_updates_master () =
  let env, metrics, log = mk () in
  let master = Master.create () in
  Alcotest.(check bool) "initially nil" true (Lsn.is_nil (Master.get master));
  let begin_lsn = Checkpoint.take log env metrics ~dpt:[] ~active:[] ~master in
  Alcotest.(check int) "master points at begin" begin_lsn (Master.get master);
  Alcotest.(check int) "counted" 1 metrics.Metrics.checkpoints_taken;
  (* the pair is forced *)
  Alcotest.(check int) "durable" (Log_manager.end_lsn log) (Log_manager.durable_lsn log)

(* ---- Analysis ---- *)

let test_analysis_finds_losers_and_dpt () =
  let _env, _metrics, log = mk () in
  let master = Master.create () in
  (* T1 commits, T2 does not *)
  let l1 = Log_manager.append log (update ~txn:1 ~prev:Lsn.nil ~slot:0 ~psn_before:0 ~delta:5L) in
  let _ = Log_manager.append log { Record.txn = 1; prev = l1; body = Commit } in
  let l3 = Log_manager.append log (update ~txn:2 ~prev:Lsn.nil ~slot:1 ~psn_before:3 ~delta:7L) in
  let l4 = Log_manager.append log (update ~txn:2 ~prev:l3 ~slot:1 ~psn_before:4 ~delta:9L) in
  let r = Analysis.run log ~master in
  Alcotest.(check int) "one loser" 1 (List.length r.Analysis.losers);
  let loser = List.hd r.Analysis.losers in
  Alcotest.(check int) "loser is T2" 2 loser.Record.txn;
  Alcotest.(check int) "undo head" l4 loser.Record.last_lsn;
  Alcotest.(check int) "dpt superset has both pages" 2 (List.length r.Analysis.dpt);
  let e1 = List.find (fun (e : Record.dpt_entry) -> Page_id.equal e.pid (pid 1)) r.Analysis.dpt in
  Alcotest.(check int) "psn_first from first record" 3 e1.Record.psn_first;
  Alcotest.(check int) "curr tracks last" 5 e1.Record.curr_psn;
  Alcotest.(check int) "redo lsn" l3 e1.Record.redo_lsn;
  Alcotest.(check bool) "loser pages" true
    (Page_id.Set.mem (pid 1) r.Analysis.loser_pages
    && not (Page_id.Set.mem (pid 0) r.Analysis.loser_pages))

let test_analysis_starts_at_checkpoint () =
  let env, metrics, log = mk () in
  let master = Master.create () in
  ignore (Log_manager.append log (update ~txn:1 ~prev:Lsn.nil ~slot:0 ~psn_before:0 ~delta:5L));
  ignore (Log_manager.append log { Record.txn = 1; prev = 0; body = Commit });
  let dpt_snapshot = [ { Record.pid = pid 9; psn_first = 1; curr_psn = 2; redo_lsn = 0 } ] in
  ignore (Checkpoint.take log env metrics ~dpt:dpt_snapshot ~active:[] ~master);
  let r = Analysis.run log ~master in
  (* the pre-checkpoint activity is invisible; the snapshot's entry is loaded *)
  Alcotest.(check int) "snapshot entry only" 1 (List.length r.Analysis.dpt);
  Alcotest.(check int) "it is page 9" 9 (List.hd r.Analysis.dpt).Record.pid.Page_id.slot;
  Alcotest.(check int) "no losers" 0 (List.length r.Analysis.losers)

let test_analysis_checkpoint_active_txns () =
  let env, metrics, log = mk () in
  let master = Master.create () in
  let l1 = Log_manager.append log (update ~txn:5 ~prev:Lsn.nil ~slot:0 ~psn_before:0 ~delta:1L) in
  ignore
    (Checkpoint.take log env metrics ~dpt:[]
       ~active:[ { Record.txn = 5; last_lsn = l1 } ]
       ~master);
  let r = Analysis.run log ~master in
  Alcotest.(check int) "carried loser" 1 (List.length r.Analysis.losers);
  Alcotest.(check int) "its head" l1 (List.hd r.Analysis.losers).Record.last_lsn

(* ---- Redo ---- *)

let test_redo_psn_exact () =
  let page = Page.create ~id:(pid 0) ~psn:5 ~size:32 in
  let op = Record.Delta { off = 0; delta = 10L } in
  Alcotest.(check bool) "not yet" true (Redo.apply page ~psn_before:7 ~op = Redo.Not_yet);
  Alcotest.(check bool) "already" true (Redo.apply page ~psn_before:3 ~op = Redo.Already_applied);
  Alcotest.(check int64) "untouched" 0L (Page.get_cell page ~off:0);
  Alcotest.(check bool) "applies" true (Redo.apply page ~psn_before:5 ~op = Redo.Applied);
  Alcotest.(check int) "psn advanced" 6 (Page.psn page);
  Alcotest.(check int64) "effect" 10L (Page.get_cell page ~off:0);
  Alcotest.(check bool) "idempotent" true (Redo.apply page ~psn_before:5 ~op = Redo.Already_applied)

(* ---- Undo ---- *)

(* A miniature node: records in a log, a page store, and CLR-writing
   undo callbacks — exactly what the engine expects. *)
let test_undo_total_and_partial () =
  let _, _, log = mk () in
  let page = Page.create ~id:(pid 0) ~psn:0 ~size:32 in
  let txn = Txn.make ~id:1 ~node:0 in
  let do_update delta =
    let psn_before = Page.psn page in
    let lsn =
      Log_manager.append log
        {
          Record.txn = 1;
          prev = txn.Txn.last_lsn;
          body = Update { pid = pid 0; psn_before; op = Delta { off = 0; delta } };
        }
    in
    Txn.record_logged txn lsn;
    Page.add_cell page ~off:0 delta;
    Page.bump_psn page
  in
  let ops =
    {
      Undo.read_record = Log_manager.read log;
      perform_undo =
        (fun ~txn:txn_id ~pid:_ ~op ~undo_next ->
          let psn_before = Page.psn page in
          let lsn =
            Log_manager.append log
              {
                Record.txn = txn_id;
                prev = txn.Txn.last_lsn;
                body = Clr { pid = pid 0; psn_before; op; undo_next };
              }
          in
          Txn.record_logged txn lsn;
          Record.apply_op page op;
          Page.bump_psn page;
          lsn);
    }
  in
  do_update 10L;
  let sp =
    Log_manager.append log { Record.txn = 1; prev = txn.Txn.last_lsn; body = Savepoint "sp" }
  in
  Txn.record_logged txn sp;
  do_update 20L;
  do_update 30L;
  Alcotest.(check int64) "before rollback" 60L (Page.get_cell page ~off:0);
  (* partial rollback to the savepoint undoes 20 and 30 *)
  let last = Undo.rollback ops ~txn:1 ~from:txn.Txn.last_lsn ~upto:sp in
  Alcotest.(check int64) "partial" 10L (Page.get_cell page ~off:0);
  Alcotest.(check bool) "returned last CLR" true (last = txn.Txn.last_lsn);
  (* a later total rollback walks over the CLRs without undoing them *)
  do_update 40L;
  let _ = Undo.rollback ops ~txn:1 ~from:txn.Txn.last_lsn ~upto:Lsn.nil in
  Alcotest.(check int64) "total" 0L (Page.get_cell page ~off:0)

let test_undo_rejects_foreign_chain () =
  let _, _, log = mk () in
  let l = Log_manager.append log (update ~txn:2 ~prev:Lsn.nil ~slot:0 ~psn_before:0 ~delta:1L) in
  let ops =
    { Undo.read_record = Log_manager.read log; perform_undo = (fun ~txn:_ ~pid:_ ~op:_ ~undo_next:_ -> 0) }
  in
  Alcotest.(check bool) "wrong txn rejected" true
    (try
       ignore (Undo.rollback ops ~txn:1 ~from:l ~upto:Lsn.nil);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ("txn bookkeeping", `Quick, test_txn_bookkeeping);
    ("txn table", `Quick, test_txn_table);
    ("checkpoint updates master", `Quick, test_checkpoint_updates_master);
    ("analysis finds losers and dpt", `Quick, test_analysis_finds_losers_and_dpt);
    ("analysis starts at checkpoint", `Quick, test_analysis_starts_at_checkpoint);
    ("analysis carries checkpoint actives", `Quick, test_analysis_checkpoint_active_txns);
    ("redo is PSN-exact", `Quick, test_redo_psn_exact);
    ("undo total and partial", `Quick, test_undo_total_and_partial);
    ("undo rejects foreign chain", `Quick, test_undo_rejects_foreign_chain);
  ]
