test/test_buffer.ml: Alcotest List Option Repro_buffer Repro_storage Repro_wal
