test/test_aries.ml: Alcotest List Repro_aries Repro_sim Repro_storage Repro_tx Repro_wal
