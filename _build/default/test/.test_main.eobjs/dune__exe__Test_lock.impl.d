test/test_lock.ml: Alcotest List Repro_lock Repro_storage
