test/test_sim.ml: Alcotest List Repro_sim
