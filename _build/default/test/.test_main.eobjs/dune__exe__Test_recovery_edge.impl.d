test/test_recovery_edge.ml: Alcotest List Repro_buffer Repro_cbl Repro_sim Repro_storage
