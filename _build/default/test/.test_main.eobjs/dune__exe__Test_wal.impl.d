test/test_wal.ml: Alcotest Format Int64 List Option QCheck QCheck_alcotest Repro_sim Repro_storage Repro_util Repro_wal
