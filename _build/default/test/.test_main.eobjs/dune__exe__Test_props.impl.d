test/test_props.ml: Char List Printf QCheck QCheck_alcotest Repro_cbl Repro_sim Repro_storage Repro_util Repro_wal Repro_workload String
