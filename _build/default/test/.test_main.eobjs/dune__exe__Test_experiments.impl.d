test/test_experiments.ml: Alcotest List Repro_experiments String
