test/test_node.ml: Alcotest Int64 List Repro_cbl Repro_sim Repro_storage
