test/test_recovery.ml: Alcotest Int64 List Repro_cbl Repro_lock Repro_sim Repro_storage Repro_wal
