test/test_util.ml: Alcotest Array Bytes List QCheck QCheck_alcotest Repro_util String
