test/test_cluster.ml: Alcotest List Repro_buffer Repro_cbl Repro_lock Repro_sim
