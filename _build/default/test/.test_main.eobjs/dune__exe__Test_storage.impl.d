test/test_storage.ml: Alcotest QCheck QCheck_alcotest Repro_sim Repro_storage Repro_util
