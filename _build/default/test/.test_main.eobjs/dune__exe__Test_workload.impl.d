test/test_workload.ml: Alcotest List Repro_cbl Repro_sim Repro_storage Repro_util Repro_workload String
