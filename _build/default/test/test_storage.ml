(* Tests for pages, disks, allocation maps and the log device. *)

module Page = Repro_storage.Page
module Page_id = Repro_storage.Page_id
module Disk = Repro_storage.Disk
module Alloc_map = Repro_storage.Alloc_map
module Log_device = Repro_storage.Log_device
module Codec = Repro_util.Codec
module Env = Repro_sim.Env
module Metrics = Repro_sim.Metrics
module Config = Repro_sim.Config

let qcheck = QCheck_alcotest.to_alcotest
let pid ~owner ~slot = Page_id.make ~owner ~slot

(* ---- Page_id ---- *)

let test_page_id_order_and_equality () =
  let a = pid ~owner:0 ~slot:1 and b = pid ~owner:0 ~slot:2 and c = pid ~owner:1 ~slot:0 in
  Alcotest.(check bool) "a < b" true (Page_id.compare a b < 0);
  Alcotest.(check bool) "b < c (owner major)" true (Page_id.compare b c < 0);
  Alcotest.(check bool) "equal" true (Page_id.equal a (pid ~owner:0 ~slot:1));
  Alcotest.(check int) "owner" 1 (Page_id.owner c);
  Alcotest.(check string) "pp" "P1.0" (Page_id.to_string c)

let test_page_id_codec () =
  let e = Codec.encoder () in
  Page_id.encode e (pid ~owner:3 ~slot:77);
  let got = Page_id.decode (Codec.decoder (Codec.to_string e)) in
  Alcotest.(check bool) "roundtrip" true (Page_id.equal got (pid ~owner:3 ~slot:77))

(* ---- Page ---- *)

let test_page_data_ops () =
  let p = Page.create ~id:(pid ~owner:0 ~slot:0) ~psn:5 ~size:128 in
  Alcotest.(check int) "psn" 5 (Page.psn p);
  Alcotest.(check int) "size" 128 (Page.size p);
  Page.write p ~off:10 "hello";
  Alcotest.(check string) "read back" "hello" (Page.read p ~off:10 ~len:5);
  Page.set_cell p ~off:0 42L;
  Alcotest.(check int64) "cell" 42L (Page.get_cell p ~off:0);
  Page.add_cell p ~off:0 (-10L);
  Alcotest.(check int64) "add" 32L (Page.get_cell p ~off:0)

let test_page_psn_ops () =
  let p = Page.create ~id:(pid ~owner:0 ~slot:0) ~psn:0 ~size:32 in
  Page.bump_psn p;
  Page.bump_psn p;
  Alcotest.(check int) "bumped" 2 (Page.psn p);
  Page.set_psn p 10;
  Alcotest.(check int) "set" 10 (Page.psn p)

let test_page_bounds () =
  let p = Page.create ~id:(pid ~owner:0 ~slot:0) ~psn:0 ~size:16 in
  Alcotest.(check bool) "oob write raises" true
    (try
       Page.write p ~off:12 "hello";
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "oob cell raises" true
    (try
       ignore (Page.get_cell p ~off:12);
       false
     with Invalid_argument _ -> true)

let test_page_copy_is_deep () =
  let p = Page.create ~id:(pid ~owner:0 ~slot:0) ~psn:0 ~size:16 in
  let q = Page.copy p in
  Page.write p ~off:0 "x";
  Alcotest.(check string) "copy unaffected" "\x00" (Page.read q ~off:0 ~len:1)

let prop_page_codec_roundtrip =
  QCheck.Test.make ~name:"page: encode/decode roundtrip" ~count:100
    QCheck.(triple small_nat small_nat (string_of_size (QCheck.Gen.return 64)))
    (fun (psn, slot, data) ->
      let p = Page.create ~id:(pid ~owner:1 ~slot) ~psn ~size:64 in
      Page.write p ~off:0 data;
      let e = Codec.encoder () in
      Page.encode e p;
      let q = Page.decode (Codec.decoder (Codec.to_string e)) in
      Page.equal_contents p q)

(* ---- Alloc_map ---- *)

let test_alloc_sequential_slots () =
  let m = Alloc_map.create ~owner:2 in
  let p0 = Alloc_map.allocate m ~page_size:64 in
  let p1 = Alloc_map.allocate m ~page_size:64 in
  Alcotest.(check int) "slot 0" 0 (Page.id p0).Page_id.slot;
  Alcotest.(check int) "slot 1" 1 (Page.id p1).Page_id.slot;
  Alcotest.(check int) "psn seed 0" 0 (Page.psn p0);
  Alcotest.(check bool) "allocated" true (Alloc_map.is_allocated m (Page.id p0))

let test_alloc_psn_seed_never_regresses () =
  (* §2.1 / ARIES-CSA: a reallocated slot starts above the old PSN *)
  let m = Alloc_map.create ~owner:0 in
  let p = Alloc_map.allocate m ~page_size:64 in
  Page.set_psn p 41;
  Alloc_map.deallocate m p;
  Alcotest.(check int) "seed remembered" 42 (Alloc_map.psn_seed m (Page.id p));
  let p' = Alloc_map.allocate m ~page_size:64 in
  Alcotest.(check bool) "slot reused" true (Page_id.equal (Page.id p) (Page.id p'));
  Alcotest.(check int) "psn continues" 42 (Page.psn p')

let test_alloc_double_free_rejected () =
  let m = Alloc_map.create ~owner:0 in
  let p = Alloc_map.allocate m ~page_size:64 in
  Alloc_map.deallocate m p;
  Alcotest.(check bool) "double free raises" true
    (try
       Alloc_map.deallocate m p;
       false
     with Invalid_argument _ -> true)

(* ---- Disk ---- *)

let env () = Env.create Config.instant

let test_disk_read_write () =
  let e = env () in
  let m = Metrics.create () in
  let d = Disk.create e m in
  let p = Page.create ~id:(pid ~owner:0 ~slot:3) ~psn:7 ~size:32 in
  Page.write p ~off:0 "data";
  Disk.write d p;
  (match Disk.read d (Page.id p) with
  | Some q ->
    Alcotest.(check bool) "same contents" true (Page.equal_contents p q);
    (* mutating the read copy must not touch the durable version *)
    Page.write q ~off:0 "XXXX";
    (match Disk.read d (Page.id p) with
    | Some r -> Alcotest.(check string) "durable isolated" "data" (Page.read r ~off:0 ~len:4)
    | None -> Alcotest.fail "lost page")
  | None -> Alcotest.fail "missing page");
  Alcotest.(check (option int)) "psn on disk" (Some 7) (Disk.psn_on_disk d (Page.id p));
  Alcotest.(check int) "reads charged" 3 m.Metrics.page_disk_reads;
  Alcotest.(check int) "writes charged" 1 m.Metrics.page_disk_writes

let test_disk_missing () =
  let e = env () in
  let d = Disk.create e (Metrics.create ()) in
  Alcotest.(check bool) "none" true (Disk.read d (pid ~owner:0 ~slot:9) = None);
  Alcotest.(check bool) "mem" false (Disk.mem d (pid ~owner:0 ~slot:9))

(* ---- Log_device ---- *)

let test_log_device_append_force () =
  let d = Log_device.create () in
  let o1 = Log_device.append d "aaaa" in
  let o2 = Log_device.append d "bb" in
  Alcotest.(check int) "offsets" 0 o1;
  Alcotest.(check int) "offsets" 4 o2;
  Alcotest.(check int) "end" 6 (Log_device.end_offset d);
  Alcotest.(check int) "durable 0" 0 (Log_device.durable_offset d);
  let moved = Log_device.force d ~upto:5 in
  Alcotest.(check int) "moved" 5 moved;
  Alcotest.(check int) "no-op force" 0 (Log_device.force d ~upto:3)

let test_log_device_crash_loses_tail () =
  let d = Log_device.create () in
  ignore (Log_device.append d "aaaa");
  ignore (Log_device.force d ~upto:4);
  ignore (Log_device.append d "bbbb");
  Log_device.crash d;
  Alcotest.(check int) "tail gone" 4 (Log_device.end_offset d);
  Alcotest.(check string) "durable prefix intact" "aaaa" (Log_device.read d ~pos:0 ~len:4)

let test_log_device_capacity () =
  let d = Log_device.create ~capacity:8 () in
  ignore (Log_device.append d "123456");
  Alcotest.(check (option int)) "available" (Some 2) (Log_device.available d);
  Alcotest.check_raises "full" Log_device.Log_full (fun () ->
      ignore (Log_device.append d "xyz"));
  (* overdraft ignores the limit *)
  ignore (Log_device.append ~overdraft:true d "xyz");
  (* truncation frees space *)
  ignore (Log_device.force d ~upto:9);
  Log_device.truncate_to d 6;
  Alcotest.(check int) "low water" 6 (Log_device.low_water d);
  Alcotest.(check int) "used" 3 (Log_device.used d)

let test_log_device_read_below_low_water () =
  let d = Log_device.create () in
  ignore (Log_device.append d "abcdef");
  ignore (Log_device.force d ~upto:6);
  Log_device.truncate_to d 4;
  Alcotest.(check bool) "reclaimed read raises" true
    (try
       ignore (Log_device.read d ~pos:0 ~len:2);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check string) "live region readable" "ef" (Log_device.read d ~pos:4 ~len:2)

let test_log_device_truncate_clamped_to_durable () =
  let d = Log_device.create () in
  ignore (Log_device.append d "abcdef");
  (* nothing durable: truncation cannot advance *)
  Log_device.truncate_to d 6;
  Alcotest.(check int) "clamped" 0 (Log_device.low_water d)

let suite =
  [
    ("page_id order/equality", `Quick, test_page_id_order_and_equality);
    ("page_id codec", `Quick, test_page_id_codec);
    ("page data ops", `Quick, test_page_data_ops);
    ("page psn ops", `Quick, test_page_psn_ops);
    ("page bounds", `Quick, test_page_bounds);
    ("page copy is deep", `Quick, test_page_copy_is_deep);
    qcheck prop_page_codec_roundtrip;
    ("alloc sequential slots", `Quick, test_alloc_sequential_slots);
    ("alloc PSN seed never regresses", `Quick, test_alloc_psn_seed_never_regresses);
    ("alloc double free rejected", `Quick, test_alloc_double_free_rejected);
    ("disk read/write isolation", `Quick, test_disk_read_write);
    ("disk missing page", `Quick, test_disk_missing);
    ("log device append/force", `Quick, test_log_device_append_force);
    ("log device crash loses tail", `Quick, test_log_device_crash_loses_tail);
    ("log device capacity/overdraft", `Quick, test_log_device_capacity);
    ("log device reclaimed reads", `Quick, test_log_device_read_below_low_water);
    ("log device truncate clamps", `Quick, test_log_device_truncate_clamped_to_durable);
  ]
