(* Crash-recovery scenarios for §2.3 (single crash), §2.4 (multiple)
   and the merged-log baseline. *)

module Cluster = Repro_cbl.Cluster
module Node = Repro_cbl.Node
module Recovery = Repro_cbl.Recovery
module Node_psn_list = Repro_cbl.Node_psn_list
module Node_state = Repro_cbl.Node_state
module Metrics = Repro_sim.Metrics
module Config = Repro_sim.Config
module Lsn = Repro_wal.Lsn

let mk ?(nodes = 4) ?(owners = [ 0 ]) () =
  let c = Cluster.create ~pool_capacity:16 ~nodes Config.instant in
  let pages = List.concat_map (fun o -> Cluster.allocate_pages c ~owner:o ~count:6) owners in
  (c, pages)

let read_all c ~node pages =
  let t = Cluster.begin_txn c ~node in
  let vs = List.map (fun p -> Cluster.read_cell c ~txn:t ~pid:p ~off:0) pages in
  Cluster.commit c ~txn:t;
  vs

let test_client_crash_redo_committed () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 11L;
  Cluster.commit c ~txn:t;
  (* the only up-to-date copy is in node 1's cache *)
  Cluster.crash c ~node:1;
  Cluster.recover c ~nodes:[ 1 ];
  Alcotest.(check (list int64)) "committed survives" [ 11L ] (read_all c ~node:2 [ p ]);
  Cluster.check_invariants c

let test_client_crash_undo_loser () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 11L;
  Cluster.commit c ~txn:t;
  let loser = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:loser ~pid:p ~off:0 100L;
  Cluster.crash c ~node:1;
  Cluster.recover c ~nodes:[ 1 ];
  Alcotest.(check (list int64)) "loser rolled back" [ 11L ] (read_all c ~node:2 [ p ]);
  Cluster.check_invariants c

let test_unforced_tail_is_lost_but_consistent () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 5L;
  (* no commit: the records were never forced *)
  Cluster.crash c ~node:1;
  Cluster.recover c ~nodes:[ 1 ];
  Alcotest.(check (list int64)) "uncommitted gone" [ 0L ] (read_all c ~node:2 [ p ])

let test_owner_crash_pages_live_in_peer_caches () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:3 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 21L;
  Cluster.commit c ~txn:t;
  (* the owner crashes; node 3 still caches the latest copy *)
  Cluster.crash c ~node:0;
  Cluster.recover c ~nodes:[ 0 ];
  Alcotest.(check (list int64)) "fetched from peer cache" [ 21L ] (read_all c ~node:0 [ p ]);
  Cluster.check_invariants c

let test_owner_crash_needs_remote_redo () =
  let c, pages = mk () in
  let p = List.hd pages in
  (* node 1 updates, then is called back by node 2 so the dirty copy
     lands at the owner; then the owner crashes with it *)
  let t1 = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t1 ~pid:p ~off:0 7L;
  Cluster.commit c ~txn:t1;
  let t2 = Cluster.begin_txn c ~node:2 in
  Cluster.update_delta c ~txn:t2 ~pid:p ~off:0 9L;
  Cluster.commit c ~txn:t2;
  (* node 2's dirty copy is the latest; kill both it and the owner *)
  Cluster.crash c ~node:0;
  Cluster.crash c ~node:2;
  Cluster.recover c ~nodes:[ 0; 2 ];
  Alcotest.(check (list int64)) "both nodes' redo combined" [ 16L ] (read_all c ~node:1 [ p ]);
  Cluster.check_invariants c

let test_multi_crash_cross_partition () =
  let c, pages = mk ~owners:[ 0; 2 ] () in
  let by_owner o = List.filter (fun p -> Repro_storage.Page_id.owner p = o) pages in
  let p0 = List.hd (by_owner 0) and p2 = List.hd (by_owner 2) in
  let t1 = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t1 ~pid:p0 ~off:0 1L;
  Cluster.update_delta c ~txn:t1 ~pid:p2 ~off:0 2L;
  Cluster.commit c ~txn:t1;
  let loser = Cluster.begin_txn c ~node:3 in
  Cluster.update_delta c ~txn:loser ~pid:p0 ~off:0 50L;
  (* three nodes die at once, including both owners' client and one owner *)
  Cluster.crash c ~node:1;
  Cluster.crash c ~node:3;
  Cluster.crash c ~node:0;
  Cluster.recover c ~nodes:[ 0; 1; 3 ];
  Alcotest.(check (list int64)) "committed kept, loser gone" [ 1L; 2L ]
    (read_all c ~node:2 [ p0; p2 ]);
  Cluster.check_invariants c

let test_recovery_when_nothing_happened () =
  let c, pages = mk () in
  Cluster.crash c ~node:1;
  Cluster.recover c ~nodes:[ 1 ];
  Alcotest.(check (list int64)) "still zero" [ 0L ] (read_all c ~node:1 [ List.hd pages ])

let test_repeated_crash_cycles () =
  let c, pages = mk () in
  let p = List.hd pages in
  for i = 1 to 5 do
    let t = Cluster.begin_txn c ~node:1 in
    Cluster.update_delta c ~txn:t ~pid:p ~off:0 1L;
    Cluster.commit c ~txn:t;
    Cluster.crash c ~node:1;
    Cluster.recover c ~nodes:[ 1 ];
    Alcotest.(check (list int64)) "cumulative" [ Int64.of_int i ] (read_all c ~node:2 [ p ])
  done;
  Cluster.check_invariants c

let test_merged_strategy_same_state () =
  let run strategy =
    let c, pages = mk () in
    let p = List.hd pages in
    List.iter
      (fun node ->
        let t = Cluster.begin_txn c ~node in
        Cluster.update_delta c ~txn:t ~pid:p ~off:0 3L;
        Cluster.commit c ~txn:t)
      [ 1; 2; 3 ];
    Cluster.crash c ~node:3;
    Cluster.recover ~strategy c ~nodes:[ 3 ];
    List.hd (read_all c ~node:1 [ p ])
  in
  Alcotest.(check int64) "strategies agree" (run Recovery.Psn_coordinated)
    (run Recovery.Merged_logs)

let test_merged_strategy_ships_records () =
  let c, pages = mk () in
  let p = List.hd pages in
  (* node 2 commits work so its log has records the merge must ship *)
  let t2 = Cluster.begin_txn c ~node:2 in
  Cluster.update_delta c ~txn:t2 ~pid:(List.nth pages 1) ~off:0 4L;
  Cluster.commit c ~txn:t2;
  let t1 = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t1 ~pid:p ~off:0 5L;
  Cluster.commit c ~txn:t1;
  Cluster.crash c ~node:1;
  let before = Metrics.snapshot (Cluster.global_metrics c) in
  Cluster.recover ~strategy:Recovery.Merged_logs c ~nodes:[ 1 ];
  let d = Metrics.diff ~after:(Cluster.global_metrics c) ~before in
  Alcotest.(check bool) "peer records shipped" true (d.Metrics.log_records_shipped > 0)

let test_psn_strategy_ships_no_records () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t1 = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t1 ~pid:p ~off:0 5L;
  Cluster.commit c ~txn:t1;
  Cluster.crash c ~node:1;
  let before = Metrics.snapshot (Cluster.global_metrics c) in
  Cluster.recover c ~nodes:[ 1 ];
  let d = Metrics.diff ~after:(Cluster.global_metrics c) ~before in
  Alcotest.(check int) "no records ever travel" 0 d.Metrics.log_records_shipped

let test_checkpoint_bounds_analysis () =
  let c, pages = mk () in
  let p = List.hd pages in
  for _ = 1 to 20 do
    let t = Cluster.begin_txn c ~node:1 in
    Cluster.update_delta c ~txn:t ~pid:p ~off:0 1L;
    Cluster.commit c ~txn:t
  done;
  (* make the updates durable at the owner so node 1's DPT entry
     retires: the remaining restart work is the analysis scan only *)
  let reader = Cluster.begin_txn c ~node:2 in
  ignore (Cluster.read_cell c ~txn:reader ~pid:p ~off:0);
  Cluster.commit c ~txn:reader;
  Node.owner_flush_page (Cluster.node c 0) p;
  Cluster.checkpoint c ~node:1;
  Cluster.crash c ~node:1;
  let before = Metrics.snapshot (Cluster.global_metrics c) in
  Cluster.recover c ~nodes:[ 1 ];
  let d = Metrics.diff ~after:(Cluster.global_metrics c) ~before in
  Alcotest.(check bool) "scan bounded by checkpoint" true
    (d.Metrics.recovery_log_records_scanned < 20);
  Alcotest.(check (list int64)) "state intact" [ 20L ] (read_all c ~node:2 [ p ])

let test_lock_reconstruction_shared_released_exclusive_kept () =
  let c, pages = mk () in
  let p = List.hd pages and q = List.nth pages 1 in
  (* node 1 ends up with cached X on p and cached S on q *)
  let t = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 1L;
  ignore (Cluster.read_cell c ~txn:t ~pid:q ~off:0);
  Cluster.commit c ~txn:t;
  Cluster.crash c ~node:1;
  Cluster.recover c ~nodes:[ 1 ];
  let owner = Cluster.node c 0 in
  Alcotest.(check bool) "X retained across the crash" true
    (Repro_lock.Global_locks.x_holder owner.Node_state.glocks ~pid:p = Some 1);
  Alcotest.(check bool) "S released" true
    (Repro_lock.Global_locks.holder_mode owner.Node_state.glocks ~node:1 ~pid:q = None);
  Cluster.check_invariants c

(* ---- NodePSNList unit behaviour ---- *)

let test_node_psn_list_merge_orders_and_collapses () =
  let open Node_psn_list in
  let a = [ { node = 1; psn = 0; lsn = 0 }; { node = 1; psn = 7; lsn = 700 } ] in
  let b = [ { node = 2; psn = 3; lsn = 30 } ] in
  let merged = merge [ a; b ] in
  Alcotest.(check (list int)) "psn order" [ 0; 3; 7 ] (List.map (fun r -> r.psn) merged);
  (* adjacent same-node runs collapse *)
  let c = [ { node = 1; psn = 0; lsn = 0 }; { node = 1; psn = 1; lsn = 10 } ] in
  let merged2 = merge [ c ] in
  Alcotest.(check int) "collapsed" 1 (List.length merged2);
  Alcotest.(check int) "anchored at earlier" 0 (List.hd merged2).psn

let test_node_psn_list_build_runs_per_transaction () =
  (* runs break exactly at transaction boundaries *)
  let env = Repro_sim.Env.create Config.instant in
  let log = Repro_wal.Log_manager.create env (Metrics.create ()) () in
  let pid = Repro_storage.Page_id.make ~owner:0 ~slot:0 in
  let append txn psn_before =
    ignore
      (Repro_wal.Log_manager.append log
         {
           Repro_wal.Record.txn;
           prev = Lsn.nil;
           body = Update { pid; psn_before; op = Delta { off = 0; delta = 1L } };
         })
  in
  append 1 0;
  append 1 1;
  append 2 2;
  append 1 3;
  let map =
    Node_psn_list.build log ~node:9 ~pages:(Repro_storage.Page_id.Set.singleton pid)
      ~start:Lsn.nil
  in
  let listing = Repro_storage.Page_id.Map.find pid map in
  Alcotest.(check (list int)) "three runs: T1, T2, T1"
    [ 0; 2; 3 ]
    (List.map (fun r -> r.Node_psn_list.psn) listing.Node_psn_list.runs);
  Alcotest.(check int) "all records remembered" 4 (List.length listing.Node_psn_list.records)

let suite =
  [
    ("client crash: committed redo", `Quick, test_client_crash_redo_committed);
    ("client crash: loser undo", `Quick, test_client_crash_undo_loser);
    ("unforced tail lost consistently", `Quick, test_unforced_tail_is_lost_but_consistent);
    ("owner crash: peer caches", `Quick, test_owner_crash_pages_live_in_peer_caches);
    ("owner crash: remote redo", `Quick, test_owner_crash_needs_remote_redo);
    ("multi-crash cross partition", `Quick, test_multi_crash_cross_partition);
    ("recovery of an idle node", `Quick, test_recovery_when_nothing_happened);
    ("repeated crash cycles", `Quick, test_repeated_crash_cycles);
    ("merged strategy: same state", `Quick, test_merged_strategy_same_state);
    ("merged strategy ships records", `Quick, test_merged_strategy_ships_records);
    ("psn strategy ships none", `Quick, test_psn_strategy_ships_no_records);
    ("checkpoint bounds analysis", `Quick, test_checkpoint_bounds_analysis);
    ("lock reconstruction 2.3.3", `Quick, test_lock_reconstruction_shared_released_exclusive_kept);
    ("NodePSNList merge", `Quick, test_node_psn_list_merge_orders_and_collapses);
    ("NodePSNList runs per txn", `Quick, test_node_psn_list_build_runs_per_transaction);
  ]
