(* Tests for the buffer pool and the paper's dirty page table. *)

module Buffer_pool = Repro_buffer.Buffer_pool
module Dpt = Repro_buffer.Dpt
module Page = Repro_storage.Page
module Page_id = Repro_storage.Page_id
module Lsn = Repro_wal.Lsn

let pid slot = Page_id.make ~owner:0 ~slot
let page slot = Page.create ~id:(pid slot) ~psn:0 ~size:32

(* ---- Buffer_pool ---- *)

let test_pool_install_find () =
  let pool = Buffer_pool.create ~capacity:2 () in
  let f = Buffer_pool.install pool (page 1) in
  Alcotest.(check bool) "found" true
    (match Buffer_pool.find pool (pid 1) with Some g -> g == f | None -> false);
  Alcotest.(check bool) "absent" true (Buffer_pool.find pool (pid 2) = None);
  Alcotest.(check int) "size" 1 (Buffer_pool.size pool)

let test_pool_double_install_rejected () =
  let pool = Buffer_pool.create ~capacity:2 () in
  ignore (Buffer_pool.install pool (page 1));
  Alcotest.(check bool) "raises" true
    (try
       ignore (Buffer_pool.install pool (page 1));
       false
     with Invalid_argument _ -> true)

let test_pool_full_install_rejected () =
  let pool = Buffer_pool.create ~capacity:1 () in
  ignore (Buffer_pool.install pool (page 1));
  Alcotest.(check bool) "is_full" true (Buffer_pool.is_full pool);
  Alcotest.(check bool) "raises" true
    (try
       ignore (Buffer_pool.install pool (page 2));
       false
     with Invalid_argument _ -> true)

let test_pool_lru_victim () =
  let pool = Buffer_pool.create ~capacity:3 () in
  ignore (Buffer_pool.install pool (page 1));
  ignore (Buffer_pool.install pool (page 2));
  ignore (Buffer_pool.install pool (page 3));
  (* touch 1 and 3: 2 becomes the LRU victim *)
  ignore (Buffer_pool.find pool (pid 1));
  ignore (Buffer_pool.find pool (pid 3));
  (match Buffer_pool.choose_victim pool with
  | Some f -> Alcotest.(check int) "victim is 2" 2 (Page.id f.Buffer_pool.page).Page_id.slot
  | None -> Alcotest.fail "no victim")

let test_pool_pin_protects () =
  let pool = Buffer_pool.create ~capacity:2 () in
  let f1 = Buffer_pool.install pool (page 1) in
  let f2 = Buffer_pool.install pool (page 2) in
  Buffer_pool.pin f1;
  Buffer_pool.pin f2;
  Alcotest.(check bool) "all pinned" true (Buffer_pool.choose_victim pool = None);
  Buffer_pool.unpin f1;
  (match Buffer_pool.choose_victim pool with
  | Some f -> Alcotest.(check int) "unpinned chosen" 1 (Page.id f.Buffer_pool.page).Page_id.slot
  | None -> Alcotest.fail "no victim");
  Alcotest.(check bool) "double unpin raises" true
    (try
       Buffer_pool.unpin f1;
       Buffer_pool.unpin f1;
       false
     with Invalid_argument _ -> true)

let test_pool_mark_dirty_lsns () =
  let pool = Buffer_pool.create ~capacity:2 () in
  let f = Buffer_pool.install pool (page 1) in
  Alcotest.(check bool) "clean" false f.Buffer_pool.dirty;
  Buffer_pool.mark_dirty f ~lsn:100;
  Buffer_pool.mark_dirty f ~lsn:200;
  Alcotest.(check bool) "dirty" true f.Buffer_pool.dirty;
  Alcotest.(check int) "rec_lsn is first" 100 f.Buffer_pool.rec_lsn;
  Alcotest.(check int) "last_lsn is latest" 200 f.Buffer_pool.last_lsn

let test_pool_clock_policy_sweeps () =
  let pool = Buffer_pool.create ~policy:Buffer_pool.Clock ~capacity:2 () in
  ignore (Buffer_pool.install pool (page 1));
  ignore (Buffer_pool.install pool (page 2));
  (* first sweep clears reference bits, second lap evicts the oldest *)
  match Buffer_pool.choose_victim pool with
  | Some _ -> ()
  | None -> Alcotest.fail "clock found no victim"

let test_pool_clear () =
  let pool = Buffer_pool.create ~capacity:2 () in
  ignore (Buffer_pool.install pool (page 1));
  Buffer_pool.clear pool;
  Alcotest.(check int) "empty" 0 (Buffer_pool.size pool)

(* ---- Dpt ---- *)

let test_dpt_entry_lifecycle () =
  let dpt = Dpt.create () in
  Dpt.add_if_absent dpt (pid 1) ~page_psn:5 ~end_of_log:100;
  (match Dpt.find dpt (pid 1) with
  | Some e ->
    Alcotest.(check int) "psn_first" 5 e.Dpt.psn_first;
    Alcotest.(check int) "curr" 5 e.Dpt.curr_psn;
    Alcotest.(check int) "redo" 100 e.Dpt.redo_lsn
  | None -> Alcotest.fail "entry missing");
  (* re-adding keeps the original *)
  Dpt.add_if_absent dpt (pid 1) ~page_psn:9 ~end_of_log:999;
  Alcotest.(check int) "kept" 5 (Option.get (Dpt.find dpt (pid 1))).Dpt.psn_first;
  Dpt.on_update dpt (pid 1) ~new_psn:6;
  Alcotest.(check int) "curr maintained" 6 (Option.get (Dpt.find dpt (pid 1))).Dpt.curr_psn;
  Dpt.drop dpt (pid 1);
  Alcotest.(check bool) "gone" false (Dpt.mem dpt (pid 1))

let test_dpt_flush_ack_drop () =
  let dpt = Dpt.create () in
  Dpt.add_if_absent dpt (pid 1) ~page_psn:5 ~end_of_log:100;
  Dpt.on_update dpt (pid 1) ~new_psn:6;
  Dpt.on_replaced dpt (pid 1) ~end_of_log:180;
  (* owner flushed a covering version: entry retires *)
  Dpt.on_flush_ack dpt (pid 1) ~flushed_psn:6;
  Alcotest.(check bool) "dropped" false (Dpt.mem dpt (pid 1))

let test_dpt_flush_ack_advances_when_updated_again () =
  let dpt = Dpt.create () in
  Dpt.add_if_absent dpt (pid 1) ~page_psn:5 ~end_of_log:100;
  Dpt.on_update dpt (pid 1) ~new_psn:6;
  Dpt.on_replaced dpt (pid 1) ~end_of_log:180;
  (* page re-fetched and re-dirtied after the replacement *)
  Dpt.on_update dpt (pid 1) ~new_psn:7;
  Dpt.on_flush_ack dpt (pid 1) ~flushed_psn:6;
  (match Dpt.find dpt (pid 1) with
  | Some e ->
    Alcotest.(check int) "redo advanced to remembered end-of-log" 180 e.Dpt.redo_lsn;
    Alcotest.(check bool) "replaced_at cleared" true (Lsn.is_nil e.Dpt.replaced_at)
  | None -> Alcotest.fail "entry must survive")

let test_dpt_flush_ack_keeps_uncovered () =
  let dpt = Dpt.create () in
  Dpt.add_if_absent dpt (pid 1) ~page_psn:5 ~end_of_log:100;
  Dpt.on_update dpt (pid 1) ~new_psn:8;
  Dpt.on_replaced dpt (pid 1) ~end_of_log:180;
  (* a stale flush must not retire the entry *)
  Dpt.on_flush_ack dpt (pid 1) ~flushed_psn:6;
  Alcotest.(check bool) "kept" true (Dpt.mem dpt (pid 1))

let test_dpt_min_redo_lsn () =
  let dpt = Dpt.create () in
  Alcotest.(check bool) "empty" true (Dpt.min_redo_lsn dpt = None);
  Dpt.add_if_absent dpt (pid 1) ~page_psn:0 ~end_of_log:300;
  Dpt.add_if_absent dpt (pid 2) ~page_psn:0 ~end_of_log:100;
  Dpt.add_if_absent dpt (pid 3) ~page_psn:0 ~end_of_log:200;
  Alcotest.(check (option int)) "min" (Some 100) (Dpt.min_redo_lsn dpt);
  (match Dpt.entry_with_min_redo_lsn dpt with
  | Some e -> Alcotest.(check int) "victim is pid 2" 2 e.Dpt.pid.Page_id.slot
  | None -> Alcotest.fail "no entry")

let test_dpt_snapshot_roundtrip () =
  let dpt = Dpt.create () in
  Dpt.add_if_absent dpt (pid 1) ~page_psn:3 ~end_of_log:50;
  Dpt.on_update dpt (pid 1) ~new_psn:4;
  let snap = Dpt.snapshot dpt in
  let dpt2 = Dpt.create () in
  Dpt.load_snapshot dpt2 snap;
  (match Dpt.find dpt2 (pid 1) with
  | Some e ->
    Alcotest.(check int) "psn_first" 3 e.Dpt.psn_first;
    Alcotest.(check int) "curr" 4 e.Dpt.curr_psn;
    Alcotest.(check int) "redo" 50 e.Dpt.redo_lsn
  | None -> Alcotest.fail "entry missing after load")

let test_dpt_entries_owned_by () =
  let dpt = Dpt.create () in
  Dpt.add_if_absent dpt (Page_id.make ~owner:1 ~slot:0) ~page_psn:0 ~end_of_log:0;
  Dpt.add_if_absent dpt (Page_id.make ~owner:2 ~slot:0) ~page_psn:0 ~end_of_log:0;
  Alcotest.(check int) "filtered" 1 (List.length (Dpt.entries_owned_by dpt 1))

let suite =
  [
    ("pool install/find", `Quick, test_pool_install_find);
    ("pool double install", `Quick, test_pool_double_install_rejected);
    ("pool full install", `Quick, test_pool_full_install_rejected);
    ("pool LRU victim", `Quick, test_pool_lru_victim);
    ("pool pin protects", `Quick, test_pool_pin_protects);
    ("pool dirty LSNs", `Quick, test_pool_mark_dirty_lsns);
    ("pool clock sweeps", `Quick, test_pool_clock_policy_sweeps);
    ("pool clear", `Quick, test_pool_clear);
    ("dpt entry lifecycle", `Quick, test_dpt_entry_lifecycle);
    ("dpt flush ack drops covered", `Quick, test_dpt_flush_ack_drop);
    ("dpt flush ack advances redo", `Quick, test_dpt_flush_ack_advances_when_updated_again);
    ("dpt flush ack keeps uncovered", `Quick, test_dpt_flush_ack_keeps_uncovered);
    ("dpt min redo lsn", `Quick, test_dpt_min_redo_lsn);
    ("dpt snapshot roundtrip", `Quick, test_dpt_snapshot_roundtrip);
    ("dpt entries by owner", `Quick, test_dpt_entries_owned_by);
  ]
