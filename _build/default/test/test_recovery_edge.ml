(* Edge-case recovery scenarios beyond the §2.3/§2.4 happy paths:
   flush-waiter reconstruction, §2.3.2 dismissal rules, physical
   (byte-image) updates through crashes, allocation across crashes,
   log pressure during and after recovery, and crash of a node that is
   the owner of another node's undo targets. *)

module Cluster = Repro_cbl.Cluster
module Node = Repro_cbl.Node
module Node_state = Repro_cbl.Node_state
module Block = Repro_cbl.Block
module Dpt = Repro_buffer.Dpt
module Metrics = Repro_sim.Metrics
module Config = Repro_sim.Config
module Page_id = Repro_storage.Page_id

let mk ?log_capacity ?(nodes = 4) () =
  let c = Cluster.create ?log_capacity ~pool_capacity:16 ~nodes Config.instant in
  let pages = Cluster.allocate_pages c ~owner:0 ~count:6 in
  (c, pages)

let commit_delta c ~node ~pid delta =
  let t = Cluster.begin_txn c ~node in
  Cluster.update_delta c ~txn:t ~pid ~off:0 delta;
  Cluster.commit c ~txn:t

let read_one c ~node pid =
  let t = Cluster.begin_txn c ~node in
  let v = Cluster.read_cell c ~txn:t ~pid ~off:0 in
  Cluster.commit c ~txn:t;
  v

let test_flush_waiters_survive_owner_crash () =
  (* node 1 replaces a dirty page to the owner; the owner crashes before
     flushing.  After recovery, the reconstructed waiter list must still
     deliver the acknowledgement so node 1's DPT entry retires and its
     log space becomes reclaimable. *)
  let c, pages = mk () in
  let p = List.hd pages in
  commit_delta c ~node:1 ~pid:p 5L;
  (* push the page out of node 1's cache by a competing X elsewhere *)
  commit_delta c ~node:2 ~pid:p 7L;
  (* node 2 now holds it; owner got node 1's copy on the way *)
  Cluster.crash c ~node:0;
  Cluster.recover c ~nodes:[ 0 ];
  let n1 = Cluster.node c 1 in
  (* node 1's entry may persist until the owner flushes; ask for it *)
  (match Dpt.find n1.Node_state.dpt p with
  | None -> () (* already retired: fine *)
  | Some _ ->
    Node.owner_flush_page (Cluster.node c 0) p;
    Alcotest.(check bool) "entry retires after flush" false (Dpt.mem n1.Node_state.dpt p));
  Alcotest.(check int64) "value intact" 12L (read_one c ~node:3 p)

let test_dismissal_keeps_entry_under_lock () =
  (* §2.3.2/§2.3.4: an uninvolved claimant that still holds a lock keeps
     its entry with a refreshed RedoLSN rather than dropping it. *)
  let c, pages = mk () in
  let p = List.hd pages in
  commit_delta c ~node:1 ~pid:p 5L;
  (* replace node 1's dirty copy into the owner and flush it durable *)
  commit_delta c ~node:2 ~pid:p 7L;
  Node.owner_flush_page (Cluster.node c 0) p;
  (* node 2 still holds X; its entry retired on the flush ack *)
  Cluster.crash c ~node:0;
  Cluster.recover c ~nodes:[ 0 ];
  Alcotest.(check int64) "durable state" 12L (read_one c ~node:3 p);
  Cluster.check_invariants c

let test_physical_updates_through_crash () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:1 in
  Cluster.update_bytes c ~txn:t ~pid:p ~off:100 "durable-bytes";
  Cluster.commit c ~txn:t;
  let loser = Cluster.begin_txn c ~node:1 in
  Cluster.update_bytes c ~txn:loser ~pid:p ~off:100 "doomed-bytes!";
  Cluster.crash c ~node:1;
  Cluster.recover c ~nodes:[ 1 ];
  let t2 = Cluster.begin_txn c ~node:2 in
  Alcotest.(check string) "bytes recovered" "durable-bytes"
    (Cluster.read c ~txn:t2 ~pid:p ~off:100 ~len:13);
  Cluster.commit c ~txn:t2

let test_allocation_survives_owner_crash () =
  let c, _ = mk () in
  let owner = Cluster.node c 0 in
  let fresh = Node.allocate_page owner in
  commit_delta c ~node:1 ~pid:fresh 3L;
  Cluster.crash c ~node:0;
  Cluster.recover c ~nodes:[ 0 ];
  (* the allocation map is durable: the slot is still allocated and a
     new allocation takes the next slot *)
  let next = Node.allocate_page owner in
  Alcotest.(check bool) "new slot" false (Page_id.equal fresh next);
  Alcotest.(check int64) "fresh page's data" 3L (read_one c ~node:2 fresh)

let test_log_pressure_after_recovery () =
  (* a recovered node keeps operating under a tiny log: recovery must
     leave the DPT/low-water bookkeeping in a state §2.5 can work with *)
  let c, pages = mk ~log_capacity:6144 () in
  let p = List.hd pages in
  for _ = 1 to 30 do
    commit_delta c ~node:1 ~pid:p 1L
  done;
  Cluster.crash c ~node:1;
  Cluster.recover c ~nodes:[ 1 ];
  for _ = 1 to 30 do
    commit_delta c ~node:1 ~pid:p 1L
  done;
  Alcotest.(check int64) "all 60 updates" 60L (read_one c ~node:2 p);
  Cluster.check_invariants c

let test_undo_fetches_from_recovered_owner () =
  (* node 1 has a loser whose page is owned by node 0; both crash.  The
     undo at node 1 must find the recovered page. *)
  let c, pages = mk () in
  let p = List.hd pages in
  commit_delta c ~node:1 ~pid:p 10L;
  let loser = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:loser ~pid:p ~off:0 99L;
  (* force node 1's log so the loser's update survives as a record *)
  let another = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:another ~pid:(List.nth pages 1) ~off:0 1L;
  Cluster.commit c ~txn:another;
  Cluster.crash c ~node:0;
  Cluster.crash c ~node:1;
  Cluster.recover c ~nodes:[ 0; 1 ];
  Alcotest.(check int64) "loser undone on the recovered page" 10L (read_one c ~node:2 p);
  Alcotest.(check int64) "committed neighbour intact" 1L (read_one c ~node:2 (List.nth pages 1));
  Cluster.check_invariants c

let test_reads_after_owner_recovery_need_no_redo () =
  (* the "pages present in the cache of some node" rule (§2.3.1): after
     the owner recovers by fetching from a peer cache, the peer keeps
     serving its copy without disturbance *)
  let c, pages = mk () in
  let p = List.hd pages in
  commit_delta c ~node:3 ~pid:p 4L;
  Cluster.crash c ~node:0;
  let before = Metrics.snapshot (Cluster.global_metrics c) in
  Cluster.recover c ~nodes:[ 0 ];
  let d = Metrics.diff ~after:(Cluster.global_metrics c) ~before in
  Alcotest.(check int) "no page redone" 0 d.Metrics.recovery_pages_redone;
  Alcotest.(check bool) "but a transfer happened" true (d.Metrics.recovery_page_transfers >= 1);
  Alcotest.(check int64) "node 3 still serves" 4L (read_one c ~node:3 p)

let test_crash_between_savepoint_and_commit () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:1 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 1L;
  Cluster.savepoint c ~txn:t "sp";
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 2L;
  Cluster.rollback_to c ~txn:t "sp";
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 4L;
  (* crash before commit: the whole transaction (including the partially
     rolled back stretch) must disappear *)
  Cluster.crash c ~node:1;
  Cluster.recover c ~nodes:[ 1 ];
  Alcotest.(check int64) "nothing survives" 0L (read_one c ~node:2 p)

let test_double_crash_same_node_during_operation () =
  let c, pages = mk () in
  let p = List.hd pages in
  commit_delta c ~node:1 ~pid:p 1L;
  Cluster.crash c ~node:1;
  Cluster.recover c ~nodes:[ 1 ];
  commit_delta c ~node:1 ~pid:p 2L;
  Cluster.crash c ~node:1;
  Cluster.recover c ~nodes:[ 1 ];
  commit_delta c ~node:1 ~pid:p 4L;
  Alcotest.(check int64) "all three eras" 7L (read_one c ~node:2 p);
  Cluster.check_invariants c

let suite =
  [
    ("flush waiters survive owner crash", `Quick, test_flush_waiters_survive_owner_crash);
    ("dismissal keeps entry under lock", `Quick, test_dismissal_keeps_entry_under_lock);
    ("physical updates through crash", `Quick, test_physical_updates_through_crash);
    ("allocation survives owner crash", `Quick, test_allocation_survives_owner_crash);
    ("log pressure after recovery", `Quick, test_log_pressure_after_recovery);
    ("undo fetches from recovered owner", `Quick, test_undo_fetches_from_recovered_owner);
    ("peer-cache recovery needs no redo", `Quick, test_reads_after_owner_recovery_need_no_redo);
    ("crash between savepoint and commit", `Quick, test_crash_between_savepoint_and_commit);
    ("double crash same node", `Quick, test_double_crash_same_node_during_operation);
  ]
