(* Tests for lock modes, owner/global and client/local lock tables, and
   deadlock detection. *)

module Mode = Repro_lock.Mode
module Global_locks = Repro_lock.Global_locks
module Local_locks = Repro_lock.Local_locks
module Deadlock = Repro_lock.Deadlock
module Page_id = Repro_storage.Page_id

let pid slot = Page_id.make ~owner:0 ~slot

(* ---- Mode ---- *)

let test_mode_tables () =
  Alcotest.(check bool) "S/S compatible" true (Mode.compatible Mode.S Mode.S);
  Alcotest.(check bool) "S/X not" false (Mode.compatible Mode.S Mode.X);
  Alcotest.(check bool) "X/S not" false (Mode.compatible Mode.X Mode.S);
  Alcotest.(check bool) "X covers S" true (Mode.covers Mode.X Mode.S);
  Alcotest.(check bool) "S covers S" true (Mode.covers Mode.S Mode.S);
  Alcotest.(check bool) "S does not cover X" false (Mode.covers Mode.S Mode.X);
  Alcotest.(check bool) "max" true (Mode.equal Mode.X (Mode.max Mode.S Mode.X))

(* ---- Global_locks (owner side) ---- *)

let test_global_grant_and_conflict () =
  let g = Global_locks.create () in
  (match Global_locks.request g ~node:1 ~pid:(pid 0) ~mode:Mode.S with
  | Global_locks.Granted -> ()
  | Needs_callback _ -> Alcotest.fail "fresh grant must succeed");
  Global_locks.grant g ~node:1 ~pid:(pid 0) ~mode:Mode.S;
  Global_locks.grant g ~node:2 ~pid:(pid 0) ~mode:Mode.S;
  (* S/S coexist; X needs callbacks to both *)
  (match Global_locks.request g ~node:3 ~pid:(pid 0) ~mode:Mode.X with
  | Global_locks.Needs_callback { holders } ->
    Alcotest.(check int) "two holders to call back" 2 (List.length holders)
  | Granted -> Alcotest.fail "X must conflict");
  Global_locks.check_invariants g

let test_global_requester_excluded () =
  let g = Global_locks.create () in
  Global_locks.grant g ~node:1 ~pid:(pid 0) ~mode:Mode.S;
  (* the requester's own S does not block its upgrade *)
  match Global_locks.request g ~node:1 ~pid:(pid 0) ~mode:Mode.X with
  | Global_locks.Granted -> ()
  | Needs_callback _ -> Alcotest.fail "own lock must not conflict"

let test_global_covering_grant_is_immediate () =
  let g = Global_locks.create () in
  Global_locks.grant g ~node:1 ~pid:(pid 0) ~mode:Mode.X;
  match Global_locks.request g ~node:1 ~pid:(pid 0) ~mode:Mode.S with
  | Global_locks.Granted -> ()
  | Needs_callback _ -> Alcotest.fail "X covers S"

let test_global_demote_release () =
  let g = Global_locks.create () in
  Global_locks.grant g ~node:1 ~pid:(pid 0) ~mode:Mode.X;
  Global_locks.demote_to_s g ~node:1 ~pid:(pid 0);
  Alcotest.(check bool) "demoted" true
    (Global_locks.holder_mode g ~node:1 ~pid:(pid 0) = Some Mode.S);
  Global_locks.release g ~node:1 ~pid:(pid 0);
  Alcotest.(check bool) "released" true (Global_locks.holders g ~pid:(pid 0) = [])

let test_global_crash_lock_rules () =
  (* §2.3.3: shared locks of a crashed node are released, exclusive retained *)
  let g = Global_locks.create () in
  Global_locks.grant g ~node:9 ~pid:(pid 0) ~mode:Mode.S;
  Global_locks.grant g ~node:9 ~pid:(pid 1) ~mode:Mode.X;
  Global_locks.grant g ~node:9 ~pid:(pid 2) ~mode:Mode.S;
  let released = Global_locks.release_all_shared_of_node g ~node:9 in
  Alcotest.(check int) "two shared released" 2 (List.length released);
  Alcotest.(check (list int)) "exclusive retained" [ 1 ]
    (List.map (fun p -> p.Page_id.slot) (Global_locks.x_pages_of_node g ~node:9));
  Alcotest.(check int) "held-by listing" 1 (List.length (Global_locks.locks_held_by_node g ~node:9))

let test_global_x_holder () =
  let g = Global_locks.create () in
  Global_locks.grant g ~node:4 ~pid:(pid 0) ~mode:Mode.X;
  Alcotest.(check (option int)) "x holder" (Some 4) (Global_locks.x_holder g ~pid:(pid 0))

(* ---- Local_locks (client side) ---- *)

let test_local_cache_and_acquire () =
  let l = Local_locks.create () in
  Alcotest.(check bool) "no cover initially" false (Local_locks.cache_covers l (pid 0) Mode.S);
  Local_locks.set_cached_mode l (pid 0) Mode.X;
  Alcotest.(check bool) "X covers S" true (Local_locks.cache_covers l (pid 0) Mode.S);
  (match Local_locks.acquire l ~txn:1 ~pid:(pid 0) ~mode:Mode.S with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "grant expected");
  (match Local_locks.acquire l ~txn:2 ~pid:(pid 0) ~mode:Mode.X with
  | Error { Local_locks.holders } -> Alcotest.(check (list int)) "conflict names T1" [ 1 ] holders
  | Ok () -> Alcotest.fail "conflict expected");
  (* T1 upgrades its own S to X *)
  (match Local_locks.acquire l ~txn:1 ~pid:(pid 0) ~mode:Mode.X with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "self-upgrade expected");
  Local_locks.check_invariants l

let test_local_release_keeps_cache () =
  let l = Local_locks.create () in
  Local_locks.set_cached_mode l (pid 0) Mode.X;
  ignore (Local_locks.acquire l ~txn:1 ~pid:(pid 0) ~mode:Mode.X);
  Local_locks.release_txn l ~txn:1;
  Alcotest.(check bool) "txn locks gone" false (Local_locks.any_txn_holds l (pid 0));
  (* inter-transaction caching: the node-level lock survives *)
  Alcotest.(check bool) "cached mode retained" true (Local_locks.cache_covers l (pid 0) Mode.X)

let test_local_demote_and_drop () =
  let l = Local_locks.create () in
  Local_locks.set_cached_mode l (pid 0) Mode.X;
  Local_locks.demote_cached_to_s l (pid 0);
  Alcotest.(check bool) "demoted" true (Local_locks.cached_mode l (pid 0) = Some Mode.S);
  Local_locks.drop_cached l (pid 0);
  Alcotest.(check bool) "dropped" true (Local_locks.cached_mode l (pid 0) = None)

let test_local_acquire_requires_cover () =
  let l = Local_locks.create () in
  Local_locks.set_cached_mode l (pid 0) Mode.S;
  Alcotest.(check bool) "raises without cover" true
    (try
       ignore (Local_locks.acquire l ~txn:1 ~pid:(pid 0) ~mode:Mode.X);
       false
     with Invalid_argument _ -> true)

let test_local_revoke_pending () =
  let l = Local_locks.create () in
  Local_locks.set_cached_mode l (pid 0) Mode.X;
  Alcotest.(check bool) "none" true (Local_locks.revoke_pending l (pid 0) = None);
  Local_locks.set_revoke_pending l (pid 0) ~mode:Mode.X ~txn:10 ~node:2;
  (* an older requester takes precedence *)
  Local_locks.set_revoke_pending l (pid 0) ~mode:Mode.S ~txn:5 ~node:3;
  (match Local_locks.revoke_pending l (pid 0) with
  | Some (m, txn, node) ->
    Alcotest.(check int) "oldest kept" 5 txn;
    Alcotest.(check int) "its node" 3 node;
    Alcotest.(check bool) "its mode" true (Mode.equal m Mode.S)
  | None -> Alcotest.fail "mark expected");
  (* a younger one does not displace it *)
  Local_locks.set_revoke_pending l (pid 0) ~mode:Mode.X ~txn:99 ~node:1;
  Alcotest.(check bool) "still oldest" true
    (match Local_locks.revoke_pending l (pid 0) with Some (_, 5, _) -> true | _ -> false);
  Local_locks.clear_revoke_pending l (pid 0);
  Alcotest.(check bool) "cleared" true (Local_locks.revoke_pending l (pid 0) = None)

let test_local_cached_pages_owned_by () =
  let l = Local_locks.create () in
  Local_locks.set_cached_mode l (Page_id.make ~owner:1 ~slot:0) Mode.S;
  Local_locks.set_cached_mode l (Page_id.make ~owner:2 ~slot:0) Mode.X;
  Alcotest.(check int) "owned-by filter" 1 (List.length (Local_locks.cached_pages_owned_by l 2))

(* ---- Deadlock ---- *)

let test_deadlock_simple_cycle () =
  let d = Deadlock.create () in
  Deadlock.set_waits d ~waiter:1 ~blockers:[ 2 ];
  Alcotest.(check bool) "no cycle yet" true (Deadlock.find_cycle d = None);
  Deadlock.set_waits d ~waiter:2 ~blockers:[ 1 ];
  (match Deadlock.find_cycle d with
  | Some cycle ->
    Alcotest.(check (list int)) "members" [ 1; 2 ] (List.sort compare cycle);
    Alcotest.(check int) "youngest victim" 2 (Deadlock.victim cycle)
  | None -> Alcotest.fail "cycle expected")

let test_deadlock_long_cycle_and_removal () =
  let d = Deadlock.create () in
  Deadlock.set_waits d ~waiter:1 ~blockers:[ 2 ];
  Deadlock.set_waits d ~waiter:2 ~blockers:[ 3 ];
  Deadlock.set_waits d ~waiter:3 ~blockers:[ 1 ];
  (match Deadlock.find_cycle d with
  | Some cycle -> Alcotest.(check int) "victim" 3 (Deadlock.victim cycle)
  | None -> Alcotest.fail "cycle expected");
  Deadlock.remove_txn d 3;
  Alcotest.(check bool) "broken" true (Deadlock.find_cycle d = None)

let test_deadlock_self_loop () =
  let d = Deadlock.create () in
  Deadlock.set_waits d ~waiter:7 ~blockers:[ 7 ];
  match Deadlock.find_cycle d with
  | Some cycle -> Alcotest.(check int) "self" 7 (Deadlock.victim cycle)
  | None -> Alcotest.fail "self-loop is a cycle"

let test_deadlock_clear_waits () =
  let d = Deadlock.create () in
  Deadlock.set_waits d ~waiter:1 ~blockers:[ 2 ];
  Deadlock.set_waits d ~waiter:2 ~blockers:[ 1 ];
  Deadlock.clear_waits d 1;
  Alcotest.(check bool) "no cycle" true (Deadlock.find_cycle d = None)

let suite =
  [
    ("mode tables", `Quick, test_mode_tables);
    ("global grant and conflict", `Quick, test_global_grant_and_conflict);
    ("global requester excluded", `Quick, test_global_requester_excluded);
    ("global covering grant", `Quick, test_global_covering_grant_is_immediate);
    ("global demote/release", `Quick, test_global_demote_release);
    ("global crash lock rules (2.3.3)", `Quick, test_global_crash_lock_rules);
    ("global x holder", `Quick, test_global_x_holder);
    ("local cache and acquire", `Quick, test_local_cache_and_acquire);
    ("local release keeps cache", `Quick, test_local_release_keeps_cache);
    ("local demote and drop", `Quick, test_local_demote_and_drop);
    ("local acquire requires cover", `Quick, test_local_acquire_requires_cover);
    ("local revoke pending", `Quick, test_local_revoke_pending);
    ("local owned-by filter", `Quick, test_local_cached_pages_owned_by);
    ("deadlock simple cycle", `Quick, test_deadlock_simple_cycle);
    ("deadlock long cycle + removal", `Quick, test_deadlock_long_cycle_and_removal);
    ("deadlock self loop", `Quick, test_deadlock_self_loop);
    ("deadlock clear waits", `Quick, test_deadlock_clear_waits);
  ]
