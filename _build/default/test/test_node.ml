(* Single-node transaction semantics through the public cluster API. *)

module Cluster = Repro_cbl.Cluster
module Node = Repro_cbl.Node
module Block = Repro_cbl.Block
module Metrics = Repro_sim.Metrics
module Config = Repro_sim.Config

let mk ?log_capacity ?(pool = 8) () =
  let c = Cluster.create ?log_capacity ~pool_capacity:pool ~nodes:1 Config.instant in
  let pages = Cluster.allocate_pages c ~owner:0 ~count:4 in
  (c, pages)

let test_commit_durability_metrics () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 5L;
  Cluster.update_bytes c ~txn:t ~pid:p ~off:16 "abc";
  Cluster.commit c ~txn:t;
  let m = Cluster.node_metrics c 0 in
  Alcotest.(check int) "committed" 1 m.Metrics.txn_committed;
  Alcotest.(check int) "zero commit msgs" 0 m.Metrics.commit_messages;
  Alcotest.(check bool) "log forced at least once" true (m.Metrics.log_forces >= 1);
  let t2 = Cluster.begin_txn c ~node:0 in
  Alcotest.(check int64) "cell" 5L (Cluster.read_cell c ~txn:t2 ~pid:p ~off:0);
  Alcotest.(check string) "bytes" "abc" (Cluster.read c ~txn:t2 ~pid:p ~off:16 ~len:3);
  Cluster.commit c ~txn:t2

let test_abort_restores_everything () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 100L;
  Cluster.commit c ~txn:t;
  let t2 = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t2 ~pid:p ~off:0 50L;
  Cluster.update_bytes c ~txn:t2 ~pid:p ~off:8 "zz";
  Cluster.abort c ~txn:t2;
  let m = Cluster.node_metrics c 0 in
  Alcotest.(check int) "aborted" 1 m.Metrics.txn_aborted;
  let t3 = Cluster.begin_txn c ~node:0 in
  Alcotest.(check int64) "delta undone" 100L (Cluster.read_cell c ~txn:t3 ~pid:p ~off:0);
  Alcotest.(check string) "bytes undone" "\x00\x00" (Cluster.read c ~txn:t3 ~pid:p ~off:8 ~len:2);
  Cluster.commit c ~txn:t3

let test_savepoint_partial_rollback () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 1L;
  Cluster.savepoint c ~txn:t "sp1";
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 2L;
  Cluster.savepoint c ~txn:t "sp2";
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 4L;
  Cluster.rollback_to c ~txn:t "sp2";
  let v = Cluster.read_cell c ~txn:t ~pid:p ~off:0 in
  Alcotest.(check int64) "after sp2 rollback" 3L v;
  Cluster.rollback_to c ~txn:t "sp1";
  Alcotest.(check int64) "after sp1 rollback" 1L (Cluster.read_cell c ~txn:t ~pid:p ~off:0);
  (* keep working after partial rollbacks, then commit *)
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 10L;
  Cluster.commit c ~txn:t;
  let t2 = Cluster.begin_txn c ~node:0 in
  Alcotest.(check int64) "committed state" 11L (Cluster.read_cell c ~txn:t2 ~pid:p ~off:0);
  Cluster.commit c ~txn:t2

let test_rollback_to_unknown_savepoint () =
  let c, _ = mk () in
  let t = Cluster.begin_txn c ~node:0 in
  Alcotest.(check bool) "raises" true
    (try
       Cluster.rollback_to c ~txn:t "nope";
       false
     with Invalid_argument _ -> true)

let test_local_lock_conflict_blocks () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t1 = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t1 ~pid:p ~off:0 1L;
  let t2 = Cluster.begin_txn c ~node:0 in
  (match Cluster.update_delta c ~txn:t2 ~pid:p ~off:0 1L with
  | () -> Alcotest.fail "expected a lock conflict"
  | exception Block.Would_block (Block.Lock_conflict { blockers }) ->
    Alcotest.(check (list int)) "blocked by t1" [ t1 ] blockers
  | exception Block.Would_block _ -> Alcotest.fail "wrong reason");
  Cluster.commit c ~txn:t1;
  (* after t1's end the lock is free *)
  Cluster.update_delta c ~txn:t2 ~pid:p ~off:0 1L;
  Cluster.commit c ~txn:t2

let test_shared_readers_coexist () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t1 = Cluster.begin_txn c ~node:0 in
  let t2 = Cluster.begin_txn c ~node:0 in
  ignore (Cluster.read_cell c ~txn:t1 ~pid:p ~off:0);
  ignore (Cluster.read_cell c ~txn:t2 ~pid:p ~off:0);
  Cluster.commit c ~txn:t1;
  Cluster.commit c ~txn:t2

let test_eviction_write_back () =
  (* pool of 2: updating 4 pages forces write-backs, nothing is lost *)
  let c, pages = mk ~pool:2 () in
  let t = Cluster.begin_txn c ~node:0 in
  List.iteri (fun i p -> Cluster.update_delta c ~txn:t ~pid:p ~off:0 (Int64.of_int i)) pages;
  Cluster.commit c ~txn:t;
  let m = Cluster.node_metrics c 0 in
  Alcotest.(check bool) "wrote back" true (m.Metrics.page_disk_writes > 4);
  let t2 = Cluster.begin_txn c ~node:0 in
  List.iteri
    (fun i p ->
      Alcotest.(check int64) "value" (Int64.of_int i) (Cluster.read_cell c ~txn:t2 ~pid:p ~off:0))
    pages;
  Cluster.commit c ~txn:t2

let test_log_space_management_single_node () =
  let c, pages = mk ~log_capacity:4096 () in
  let p = List.hd pages in
  for _ = 1 to 100 do
    let t = Cluster.begin_txn c ~node:0 in
    Cluster.update_delta c ~txn:t ~pid:p ~off:0 1L;
    Cluster.commit c ~txn:t
  done;
  let m = Cluster.node_metrics c 0 in
  Alcotest.(check bool) "space was managed" true (m.Metrics.log_space_stalls > 0);
  let t = Cluster.begin_txn c ~node:0 in
  Alcotest.(check int64) "all survived" 100L (Cluster.read_cell c ~txn:t ~pid:p ~off:0);
  Cluster.commit c ~txn:t

let test_checkpoint_is_local () =
  let c, pages = mk () in
  let p = List.hd pages in
  let t = Cluster.begin_txn c ~node:0 in
  Cluster.update_delta c ~txn:t ~pid:p ~off:0 1L;
  Cluster.commit c ~txn:t;
  let before = (Cluster.node_metrics c 0).Metrics.messages_sent in
  Cluster.checkpoint c ~node:0;
  let m = Cluster.node_metrics c 0 in
  Alcotest.(check int) "taken" 1 m.Metrics.checkpoints_taken;
  Alcotest.(check int) "no messages" before m.Metrics.messages_sent

let test_deallocate_page () =
  let c, pages = mk () in
  let p = List.hd pages in
  let node = Cluster.node c 0 in
  Node.deallocate_page node p;
  let p' = Node.allocate_page node in
  (* the slot is reused with a non-regressing PSN seed *)
  Alcotest.(check bool) "slot reused" true (Repro_storage.Page_id.equal p p');
  Alcotest.(check bool) "invariants hold" true
    (Cluster.check_invariants c;
     true)

let test_operations_on_down_node_blocked () =
  let c, _pages = mk () in
  Cluster.crash c ~node:0;
  (match Cluster.begin_txn c ~node:0 with
  | _ -> Alcotest.fail "begin on down node must block"
  | exception Block.Would_block (Block.Node_down { node }) ->
    Alcotest.(check int) "node id" 0 node
  | exception Block.Would_block _ -> Alcotest.fail "wrong reason");
  Cluster.recover c ~nodes:[ 0 ];
  let t = Cluster.begin_txn c ~node:0 in
  Cluster.commit c ~txn:t

let suite =
  [
    ("commit durability and metrics", `Quick, test_commit_durability_metrics);
    ("abort restores everything", `Quick, test_abort_restores_everything);
    ("savepoint partial rollback", `Quick, test_savepoint_partial_rollback);
    ("rollback to unknown savepoint", `Quick, test_rollback_to_unknown_savepoint);
    ("local lock conflict blocks", `Quick, test_local_lock_conflict_blocks);
    ("shared readers coexist", `Quick, test_shared_readers_coexist);
    ("eviction write-back", `Quick, test_eviction_write_back);
    ("log space management", `Quick, test_log_space_management_single_node);
    ("checkpoint is local", `Quick, test_checkpoint_is_local);
    ("deallocate page", `Quick, test_deallocate_page);
    ("down node blocks", `Quick, test_operations_on_down_node_blocked);
  ]
