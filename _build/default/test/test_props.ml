(* Property-based tests: the central durability oracle under random
   workloads and random crash schedules, plus structural invariants. *)

module Cluster = Repro_cbl.Cluster
module Node = Repro_cbl.Node
module Recovery = Repro_cbl.Recovery
module Engine = Repro_workload.Engine
module Driver = Repro_workload.Driver
module Generators = Repro_workload.Generators
module Config = Repro_sim.Config
module Page = Repro_storage.Page
module Page_id = Repro_storage.Page_id
module Record = Repro_wal.Record
module Rng = Repro_util.Rng

let qcheck = QCheck_alcotest.to_alcotest

(* One randomized cluster run: random topology, random workload, random
   crash/checkpoint schedule, alternating recovery strategies.  The
   property: the run finishes, invariants hold, and the durability
   oracle verifies. *)
let run_one seed =
  let rng = Rng.create seed in
  let nodes = 2 + Rng.int rng 4 in
  let pool = 8 + Rng.int rng 24 in
  let cluster = Cluster.create ~seed ~nodes ~pool_capacity:pool Config.instant in
  let owners = List.init (1 + Rng.int rng (min 3 nodes)) (fun i -> i) in
  let pages_by_owner =
    List.map
      (fun o -> (o, Cluster.allocate_pages cluster ~owner:o ~count:(8 + Rng.int rng 16)))
      owners
  in
  let engine0 = Engine.of_cluster cluster in
  let engine =
    if seed mod 2 = 1 then
      {
        engine0 with
        Engine.recover =
          (fun ~nodes -> Cluster.recover ~strategy:Recovery.Merged_logs cluster ~nodes);
      }
    else engine0
  in
  let clients = List.init nodes (fun i -> i) in
  let scripts =
    Generators.partitioned rng ~pages_by_owner ~clients
      ~txns_per_client:(3 + Rng.int rng 6)
      ~mix:
        {
          Generators.ops_per_txn = 2 + Rng.int rng 6;
          update_fraction = 0.3 +. Rng.float rng 0.6;
          remote_fraction = Rng.float rng 0.8;
          theta = Rng.float rng 1.0;
          savepoint_fraction = Rng.float rng 0.3;
          abort_fraction = Rng.float rng 0.2;
        }
  in
  let events = ref [] in
  let n_crashes = Rng.int rng 4 in
  let t = ref 10 in
  let crashed = ref [] in
  for _ = 1 to n_crashes do
    let victim = Rng.int rng nodes in
    if not (List.mem victim !crashed) then begin
      events := (!t, Driver.Crash victim) :: !events;
      crashed := victim :: !crashed;
      t := !t + 5 + Rng.int rng 20;
      if Rng.chance rng 0.6 || List.length !crashed >= 2 then begin
        events := (!t, Driver.Recover !crashed) :: !events;
        crashed := [];
        t := !t + 5 + Rng.int rng 15
      end
    end
  done;
  if !crashed <> [] then events := (!t + 5, Driver.Recover !crashed) :: !events;
  for i = 0 to 2 do
    events := ((7 * i) + Rng.int rng 40, Driver.Checkpoint (Rng.int rng nodes)) :: !events
  done;
  let outcome = Driver.run engine ~events:(List.sort compare !events) ~max_rounds:30_000 scripts in
  (* events scheduled after the last commit never fired *)
  let down =
    List.filter_map
      (fun n -> if Cluster.node cluster n |> Node.is_up then None else Some n)
      (List.init nodes (fun i -> i))
  in
  if down <> [] then Cluster.recover cluster ~nodes:down;
  if outcome.Driver.stuck > 0 then Error (Printf.sprintf "%d stuck" outcome.Driver.stuck)
  else begin
    Cluster.check_invariants cluster;
    match Driver.verify outcome with
    | Ok () -> Ok ()
    | Error errs -> Error (String.concat "; " errs)
  end

let prop_durability_under_crashes =
  QCheck.Test.make ~name:"durability oracle under random crash schedules" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match run_one seed with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg)

(* Undo is the exact inverse of apply: op; invert op = identity. *)
let gen_page_and_op =
  QCheck.Gen.(
    let* off = int_bound 6 in
    let off = off * 8 in
    let* kind = bool in
    let* seed = int_bound 10_000 in
    let page = Page.create ~id:(Page_id.make ~owner:0 ~slot:0) ~psn:0 ~size:64 in
    let rng = Rng.create seed in
    for i = 0 to 7 do
      Page.set_cell page ~off:(i * 8) (Rng.next_int64 rng)
    done;
    let op =
      if kind then Record.Delta { off; delta = Rng.next_int64 rng }
      else
        Record.Physical
          { off; before = Page.read page ~off ~len:8; after = String.init 8 (fun i -> Char.chr ((i * 37 + seed) land 0xFF)) }
    in
    return (page, op))

let prop_invert_roundtrip =
  QCheck.Test.make ~name:"apply op then inverse restores the page" ~count:300
    (QCheck.make gen_page_and_op) (fun (page, op) ->
      let before = Page.read page ~off:0 ~len:64 in
      Record.apply_op page op;
      Record.apply_op page (Record.invert op);
      Page.read page ~off:0 ~len:64 = before)

(* NodePSNList merge is sorted by PSN and collapse-free across nodes. *)
let gen_runs =
  QCheck.Gen.(
    let* n_nodes = int_range 1 4 in
    let* psns = list_size (int_range 1 12) (int_bound 100) in
    let psns = List.sort_uniq compare psns in
    let* assignment = list_repeat (List.length psns) (int_bound (n_nodes - 1)) in
    let runs =
      List.map2
        (fun psn node -> { Repro_cbl.Node_psn_list.node; psn; lsn = psn * 10 })
        psns assignment
    in
    (* split per node, as build would produce them *)
    let per_node =
      List.init n_nodes (fun i ->
          List.filter (fun r -> r.Repro_cbl.Node_psn_list.node = i) runs)
    in
    return per_node)

let prop_merge_sorted_and_alternating =
  QCheck.Test.make ~name:"NodePSNList merge is PSN-sorted with no adjacent same-node runs"
    ~count:300 (QCheck.make gen_runs) (fun per_node ->
      let merged = Repro_cbl.Node_psn_list.merge per_node in
      let rec ok = function
        | a :: b :: rest ->
          a.Repro_cbl.Node_psn_list.psn < b.Repro_cbl.Node_psn_list.psn
          && a.Repro_cbl.Node_psn_list.node <> b.Repro_cbl.Node_psn_list.node
          && ok (b :: rest)
        | _ -> true
      in
      ok merged)

(* The two recovery strategies are observationally equivalent: running
   the same seeded workload + crash and reading every allocated cell
   back must give identical values. *)
let strategy_equivalent seed =
  let run strategy =
    let rng = Rng.create seed in
    let cluster = Cluster.create ~seed ~nodes:3 ~pool_capacity:12 Config.instant in
    let pages = Cluster.allocate_pages cluster ~owner:0 ~count:8 in
    let engine =
      {
        (Engine.of_cluster cluster) with
        Engine.recover = (fun ~nodes -> Cluster.recover ~strategy cluster ~nodes);
      }
    in
    let scripts =
      Generators.hotspot rng ~pages ~clients:[ 1; 2 ] ~txns_per_client:6
        ~mix:
          {
            Generators.default_mix with
            update_fraction = 0.8;
            theta = 0.5;
            savepoint_fraction = 0.2;
          }
    in
    let events = [ (8, Driver.Crash 1); (16, Driver.Recover [ 1 ]) ] in
    let outcome = Driver.run engine ~events ~max_rounds:20_000 scripts in
    if outcome.Driver.stuck > 0 then failwith "stuck";
    let t = Cluster.begin_txn cluster ~node:2 in
    let state =
      List.map
        (fun p -> List.init 16 (fun i -> Cluster.read_cell cluster ~txn:t ~pid:p ~off:(i * 8)))
        pages
    in
    Cluster.commit cluster ~txn:t;
    state
  in
  run Recovery.Psn_coordinated = run Recovery.Merged_logs

let prop_strategy_equivalence =
  QCheck.Test.make ~name:"PSN-coordinated and merged-log recovery agree cell-for-cell" ~count:30
    QCheck.(int_range 0 1_000_000)
    strategy_equivalent

let suite =
  [
    qcheck prop_durability_under_crashes;
    qcheck prop_invert_roundtrip;
    qcheck prop_merge_sorted_and_alternating;
    qcheck prop_strategy_equivalence;
  ]
