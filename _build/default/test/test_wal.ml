(* Tests for LSNs, log records and the log manager. *)

module Lsn = Repro_wal.Lsn
module Record = Repro_wal.Record
module Log_manager = Repro_wal.Log_manager
module Page = Repro_storage.Page
module Page_id = Repro_storage.Page_id
module Codec = Repro_util.Codec
module Env = Repro_sim.Env
module Metrics = Repro_sim.Metrics
module Config = Repro_sim.Config

let qcheck = QCheck_alcotest.to_alcotest
let pid slot = Page_id.make ~owner:0 ~slot

(* ---- Lsn ---- *)

let test_lsn_nil () =
  Alcotest.(check bool) "nil is nil" true (Lsn.is_nil Lsn.nil);
  Alcotest.(check bool) "0 is not nil" false (Lsn.is_nil 0);
  Alcotest.(check bool) "nil below all" true (Lsn.compare Lsn.nil 0 < 0);
  Alcotest.(check int) "min" Lsn.nil (Lsn.min Lsn.nil 5);
  Alcotest.(check int) "max" 5 (Lsn.max Lsn.nil 5)

(* ---- Record ---- *)

let sample_records =
  [
    { Record.txn = 1; prev = Lsn.nil; body = Commit };
    { Record.txn = 2; prev = 10; body = Abort };
    { Record.txn = 3; prev = 20; body = Savepoint "sp-1" };
    {
      Record.txn = 4;
      prev = 30;
      body = Update { pid = pid 7; psn_before = 5; op = Delta { off = 16; delta = -9L } };
    };
    {
      Record.txn = 5;
      prev = 40;
      body =
        Update
          { pid = pid 8; psn_before = 0; op = Physical { off = 2; before = "ab"; after = "xy" } };
    };
    {
      Record.txn = 6;
      prev = 50;
      body =
        Clr
          {
            pid = pid 9;
            psn_before = 3;
            op = Delta { off = 0; delta = 4L };
            undo_next = 12;
          };
    };
    {
      Record.txn = Record.system_txn;
      prev = Lsn.nil;
      body =
        Checkpoint_begin
          {
            dpt = [ { Record.pid = pid 1; psn_first = 2; curr_psn = 6; redo_lsn = 99 } ];
            active = [ { Record.txn = 7; last_lsn = 123 } ];
          };
    };
    { Record.txn = Record.system_txn; prev = 60; body = Checkpoint_end };
  ]

let test_record_roundtrips () =
  List.iter
    (fun r ->
      let r' = Record.decode (Record.encode r) in
      Alcotest.(check string) "roundtrip"
        (Format.asprintf "%a" Record.pp r)
        (Format.asprintf "%a" Record.pp r'))
    sample_records

let test_record_accessors () =
  let upd = List.nth sample_records 3 in
  Alcotest.(check bool) "page_of" true (Record.page_of upd = Some (pid 7));
  Alcotest.(check (option int)) "psn_before_of" (Some 5) (Record.psn_before_of upd);
  Alcotest.(check bool) "commit has no page" true (Record.page_of (List.hd sample_records) = None)

let test_op_apply_and_invert () =
  let page = Page.create ~id:(pid 0) ~psn:0 ~size:64 in
  Page.set_cell page ~off:8 100L;
  let op = Record.Delta { off = 8; delta = 23L } in
  Record.apply_op page op;
  Alcotest.(check int64) "applied" 123L (Page.get_cell page ~off:8);
  Record.apply_op page (Record.invert op);
  Alcotest.(check int64) "inverted" 100L (Page.get_cell page ~off:8);
  let phys = Record.Physical { off = 0; before = "\x00\x00"; after = "hi" } in
  Record.apply_op page phys;
  Alcotest.(check string) "physical" "hi" (Page.read page ~off:0 ~len:2);
  Record.apply_op page (Record.invert phys);
  Alcotest.(check string) "physical undone" "\x00\x00" (Page.read page ~off:0 ~len:2)

let test_record_decode_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Record.decode "\xff\xff\xff");
       false
     with Codec.Corrupt _ -> true)

let gen_op =
  QCheck.Gen.(
    oneof
      [
        map2 (fun off d -> Record.Delta { off; delta = Int64.of_int d }) (int_bound 56) int;
        map3
          (fun off b a -> Record.Physical { off; before = b; after = a })
          (int_bound 32) (string_size (return 4)) (string_size (return 4));
      ])

let gen_record =
  QCheck.Gen.(
    map3
      (fun txn prev op ->
        { Record.txn; prev; body = Update { pid = pid (txn mod 8); psn_before = prev + 1; op } })
      (int_bound 1000) (int_bound 10_000) gen_op)

let prop_record_roundtrip =
  QCheck.Test.make ~name:"record: random update roundtrip" ~count:300
    (QCheck.make gen_record) (fun r ->
      Format.asprintf "%a" Record.pp (Record.decode (Record.encode r))
      = Format.asprintf "%a" Record.pp r)

(* ---- Log_manager ---- *)

let mk ?capacity () =
  let env = Env.create Config.instant in
  Log_manager.create env (Metrics.create ()) ?capacity ()

let commit_record txn prev = { Record.txn; prev; body = Record.Commit }

let test_log_manager_append_read () =
  let log = mk () in
  let l1 = Log_manager.append log (commit_record 1 Lsn.nil) in
  let l2 = Log_manager.append log (commit_record 2 l1) in
  Alcotest.(check int) "first at 0" 0 l1;
  Alcotest.(check bool) "ordered" true (l2 > l1);
  let r = Log_manager.read log l2 in
  Alcotest.(check int) "txn" 2 r.Record.txn;
  Alcotest.(check int) "prev chain" l1 r.Record.prev;
  Alcotest.(check int) "next_lsn" l2 (Log_manager.next_lsn log l1)

let test_log_manager_fold_and_upto () =
  let log = mk () in
  let lsns = List.map (fun i -> Log_manager.append log (commit_record i Lsn.nil)) [ 1; 2; 3; 4 ] in
  let all = Log_manager.fold log ~from:Lsn.nil ~init:[] (fun acc _ r -> r.Record.txn :: acc) in
  Alcotest.(check (list int)) "all scanned" [ 4; 3; 2; 1 ] all;
  let upto = List.nth lsns 2 in
  let some = Log_manager.fold log ~upto ~from:Lsn.nil ~init:[] (fun acc _ r -> r.Record.txn :: acc) in
  Alcotest.(check (list int)) "upto exclusive" [ 2; 1 ] some

let test_log_manager_force_and_crash () =
  let log = mk () in
  let l1 = Log_manager.append log (commit_record 1 Lsn.nil) in
  Log_manager.force log ~upto:l1;
  let _l2 = Log_manager.append log (commit_record 2 l1) in
  Log_manager.crash log;
  let survivors =
    Log_manager.fold log ~from:Lsn.nil ~init:[] (fun acc _ r -> r.Record.txn :: acc)
  in
  Alcotest.(check (list int)) "only forced survives" [ 1 ] survivors

let test_log_manager_force_counts_once () =
  let env = Env.create Config.instant in
  let m = Metrics.create () in
  let log = Log_manager.create env m () in
  let l1 = Log_manager.append log (commit_record 1 Lsn.nil) in
  Log_manager.force log ~upto:l1;
  Log_manager.force log ~upto:l1;
  Alcotest.(check int) "idempotent force charges once" 1 m.Metrics.log_forces

let test_log_manager_capacity () =
  let log = mk ~capacity:64 () in
  let l1 = Log_manager.append log (commit_record 1 Lsn.nil) in
  Alcotest.(check bool) "fills" true
    (try
       for i = 2 to 100 do
         ignore (Log_manager.append log (commit_record i Lsn.nil))
       done;
       false
     with Log_manager.Log_full -> true);
  (* overdraft always fits *)
  ignore (Log_manager.append ~overdraft:true log (commit_record 99 Lsn.nil));
  (* truncation frees space *)
  Log_manager.force_all log;
  Log_manager.truncate_to log (Log_manager.next_lsn log l1);
  Alcotest.(check bool) "freed" true (Option.get (Log_manager.available_bytes log) > 0)

let test_log_manager_scan_counts () =
  let env = Env.create Config.instant in
  let m = Metrics.create () in
  let log = Log_manager.create env m () in
  for i = 1 to 5 do
    ignore (Log_manager.append log (commit_record i Lsn.nil))
  done;
  ignore (Log_manager.fold log ~from:Lsn.nil ~init:() (fun () _ _ -> ()));
  Alcotest.(check int) "scan charged per record" 5 m.Metrics.recovery_log_records_scanned

let suite =
  [
    ("lsn nil semantics", `Quick, test_lsn_nil);
    ("record roundtrips", `Quick, test_record_roundtrips);
    ("record accessors", `Quick, test_record_accessors);
    ("op apply/invert", `Quick, test_op_apply_and_invert);
    ("record decode garbage", `Quick, test_record_decode_garbage);
    qcheck prop_record_roundtrip;
    ("log append/read", `Quick, test_log_manager_append_read);
    ("log fold and upto", `Quick, test_log_manager_fold_and_upto);
    ("log force and crash", `Quick, test_log_manager_force_and_crash);
    ("log force idempotent charge", `Quick, test_log_manager_force_counts_once);
    ("log capacity and overdraft", `Quick, test_log_manager_capacity);
    ("log scan charging", `Quick, test_log_manager_scan_counts);
  ]
