(** Small formatting helpers shared by the CLI, examples and benches. *)

val bytes : Format.formatter -> int -> unit
(** Human scale: "512 B", "4.0 KiB", "1.2 MiB". *)

val seconds : Format.formatter -> float -> unit
(** Picks µs / ms / s as appropriate. *)

val ratio : Format.formatter -> float -> unit
(** Formats a speedup / factor as "3.2x". *)

val table : header:string list -> rows:string list list -> Format.formatter -> unit -> unit
(** Renders an aligned plain-text table; used for every experiment's
    output so EXPERIMENTS.md rows can be pasted verbatim. *)
