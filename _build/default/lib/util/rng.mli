(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that every
    run of a scenario is exactly reproducible from its seed.  The generator
    is SplitMix64, which is fast, has a 64-bit state, and can be split into
    independent streams — one per node or per workload — without the
    streams being correlated. *)

type t
(** A mutable generator.  Not thread-safe; the simulator is
    single-threaded by design. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each node / workload its own stream so that adding a
    consumer does not perturb the draws seen by the others. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] draws uniformly from the inclusive range
    [lo, hi].  Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [0,1]). *)

val pick : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
