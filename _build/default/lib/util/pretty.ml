let bytes ppf n =
  let f = float_of_int n in
  if n < 1024 then Format.fprintf ppf "%d B" n
  else if n < 1024 * 1024 then Format.fprintf ppf "%.1f KiB" (f /. 1024.)
  else if n < 1024 * 1024 * 1024 then Format.fprintf ppf "%.1f MiB" (f /. 1024. /. 1024.)
  else Format.fprintf ppf "%.2f GiB" (f /. 1024. /. 1024. /. 1024.)

let seconds ppf s =
  if s < 0.001 then Format.fprintf ppf "%.1f µs" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%.2f ms" (s *. 1e3)
  else Format.fprintf ppf "%.3f s" s

let ratio ppf r = Format.fprintf ppf "%.2fx" r

let table ~header ~rows ppf () =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let print_row row = Format.fprintf ppf "| %s |@." (String.concat " | " (List.mapi pad row)) in
  let rule () =
    let dashes = Array.to_list (Array.map (fun w -> String.make w '-') widths) in
    Format.fprintf ppf "|-%s-|@." (String.concat "-|-" dashes)
  in
  print_row header;
  rule ();
  List.iter print_row rows
