lib/util/pretty.mli: Format
