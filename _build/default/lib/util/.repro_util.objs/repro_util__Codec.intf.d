lib/util/codec.mli:
