lib/util/codec.ml: Buffer Char Format Int64 List String
