lib/util/rng.mli:
