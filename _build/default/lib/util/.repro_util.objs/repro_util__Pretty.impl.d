lib/util/pretty.ml: Array Format List String
