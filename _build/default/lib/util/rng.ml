type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  (* Avoid the all-zero fixed point and decorrelate small seeds. *)
  { state = Int64.add (Int64.of_int seed) 0x5851F42D4C957F2DL }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* OCaml ints are 63-bit: mask after truncation to stay non-negative. *)
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let int_in_range t ~lo ~hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, matching an IEEE double's mantissa. *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1.0 < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
