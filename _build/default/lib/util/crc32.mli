(** CRC-32 (IEEE 802.3 polynomial) over byte buffers.

    Every log record carries a CRC of its payload so that a partially
    written tail — the torn write a crash can leave behind — is detected
    and treated as the end of the log, exactly as a production WAL does. *)

val bytes : Bytes.t -> pos:int -> len:int -> int32
(** [bytes b ~pos ~len] computes the CRC of the slice [b[pos, pos+len)]. *)

val string : string -> int32
(** CRC of a whole string. *)
