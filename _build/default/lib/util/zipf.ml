type t = { cdf : float array }

let create ~n ~theta =
  assert (n > 0);
  assert (theta >= 0.);
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) theta);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { cdf }

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index whose cumulative mass covers [u]. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length t.cdf - 1)

let n t = Array.length t.cdf
