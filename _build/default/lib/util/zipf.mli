(** Zipfian distribution sampler.

    Database workloads are famously skewed: a few hot pages take most of
    the traffic.  The benchmark workloads use a Zipf(θ) distribution over
    the page population to model this (θ = 0 degenerates to uniform). *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over ranks [0, n).  Rank 0 is
    the hottest item.  [n] must be positive and [theta >= 0.].  Setup is
    O(n) (a cumulative table), sampling is O(log n). *)

val sample : t -> Rng.t -> int
(** Draw a rank in [0, n). *)

val n : t -> int
(** Population size the sampler was built for. *)
