let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then
           c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
         else c := Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let update crc b ~pos ~len =
  let t = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) 0xFFl)
    in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let bytes b ~pos ~len = update 0l b ~pos ~len
let string s = bytes (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
