lib/baselines/schemes.ml: List Repro_cbl Repro_storage Repro_workload
