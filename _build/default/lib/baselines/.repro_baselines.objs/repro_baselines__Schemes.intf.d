lib/baselines/schemes.mli: Repro_cbl Repro_sim Repro_storage Repro_workload
