(** Ready-made engines for the paper's §3 comparators.

    Each constructor builds a cluster running one of the baseline
    logging architectures over the {e identical} cache / lock /
    page-transfer substrate as the CBL cluster, so counter differences
    between engines isolate the logging architecture — the whole point
    of experiments E1-E3 and E10.

    Baselines support normal processing only; crash recovery is the
    subject of E4/E8 and is compared against
    {!Repro_cbl.Recovery.Merged_logs} on CBL clusters instead. *)

type built = {
  engine : Repro_workload.Engine.t;
  cluster : Repro_cbl.Cluster.t;
  pages_by_owner : (int * Repro_storage.Page_id.t list) list;
}

val cbl :
  ?seed:int ->
  ?pool_capacity:int ->
  nodes:int ->
  owners:int list ->
  pages_per_owner:int ->
  Repro_sim.Config.t ->
  built
(** The paper's system (for symmetric comparison runs). *)

val server_logging :
  ?seed:int ->
  ?pool_capacity:int ->
  nodes:int ->
  pages:int ->
  Repro_sim.Config.t ->
  built
(** ARIES/CSA-flavoured client-server: node 0 is the server, owns every
    page and the only durable log; clients ship their records at
    commit. *)

val pca :
  ?seed:int ->
  ?pool_capacity:int ->
  nodes:int ->
  owners:int list ->
  pages_per_owner:int ->
  Repro_sim.Config.t ->
  built
(** Primary-copy-authority (Rahm '91): the lock space is partitioned by
    page ownership; commits ship updated remote pages and their records
    to the PCA nodes (double logging). *)

val global_log :
  ?seed:int ->
  ?pool_capacity:int ->
  nodes:int ->
  owners:int list ->
  pages_per_owner:int ->
  Repro_sim.Config.t ->
  built
(** Rdb/VMS-flavoured: one shared log at node 0 appended to over the
    network; pages are forced to disk whenever they move between
    nodes. *)

val all :
  ?seed:int ->
  ?pool_capacity:int ->
  nodes:int ->
  pages_per_owner:int ->
  Repro_sim.Config.t ->
  built list
(** One of each, comparably configured: CBL / PCA / global-log clusters
    with owners [0] and [2 mod nodes]; server-logging with everything at
    node 0.  Used by the E1-E3 sweeps. *)
