lib/experiments/report.ml: Format List Repro_util
