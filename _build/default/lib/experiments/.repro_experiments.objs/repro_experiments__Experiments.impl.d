lib/experiments/experiments.ml: Array Format Int64 List Printf Report Repro_baselines Repro_cbl Repro_sim Repro_storage Repro_util Repro_workload String
