lib/experiments/experiments.mli: Report
