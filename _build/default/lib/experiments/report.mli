(** Experiment reports: one table per claim-derived experiment, rendered
    exactly as recorded in EXPERIMENTS.md. *)

type t = {
  id : string;  (** "E1", "F1", ... *)
  title : string;
  claim : string;  (** the paper claim being checked, with its section *)
  header : string list;
  rows : string list list;
  notes : string list;  (** observations / pass-fail statements *)
}

val render : Format.formatter -> t -> unit

val f : float -> string
(** "%.3g" *)

val f2 : float -> string
(** "%.2f" *)

val per : int -> int -> string
(** [per count n] — count divided by n, 2 decimals ("-" if n = 0). *)

val ms : float -> string
(** seconds rendered as milliseconds, 2 decimals *)
