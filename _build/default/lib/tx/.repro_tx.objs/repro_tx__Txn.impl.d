lib/tx/txn.ml: Format List Repro_storage Repro_wal
