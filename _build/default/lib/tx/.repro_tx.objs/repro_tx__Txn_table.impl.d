lib/tx/txn_table.ml: Hashtbl List Printf Repro_wal Txn
