lib/tx/txn.mli: Format Repro_storage Repro_wal
