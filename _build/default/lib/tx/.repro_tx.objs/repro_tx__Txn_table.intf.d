lib/tx/txn_table.mli: Repro_wal Txn
