lib/buffer/buffer_pool.ml: Format Int List Page Page_id Repro_storage Repro_wal
