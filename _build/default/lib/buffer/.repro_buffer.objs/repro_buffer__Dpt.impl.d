lib/buffer/dpt.ml: Format List Page_id Repro_storage Repro_wal
