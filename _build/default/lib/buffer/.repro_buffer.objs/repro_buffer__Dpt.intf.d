lib/buffer/dpt.mli: Format Page_id Repro_storage Repro_wal
