lib/buffer/buffer_pool.mli: Page Page_id Repro_storage Repro_wal
