(** The dirty page table (DPT) — the paper's central bookkeeping
    structure (§2.2), one per node.

    An entry exists for every page this node has dirtied whose updates
    may not yet be on the owner's disk, whether the page is locally
    cached or has been replaced and shipped to its owner.  Fields follow
    the paper exactly:

    - [psn_first] ("PSN"): the page's PSN the first time it was dirtied;
    - [curr_psn] ("CurrPSN"): PSN after the latest local update;
    - [redo_lsn] ("RedoLSN"): LSN of the earliest local log record that
      must be redone for the page.

    Entry lifecycle (§2.2):
    - added when the node obtains an X lock and no entry exists —
      [redo_lsn] is conservatively the current end of the log;
    - [curr_psn] maintained on every local update;
    - for a locally-owned page, dropped when the page is forced to the
      local disk;
    - for a remote page, dropped when the owner's flush
      acknowledgement arrives {e and} the page was not updated again
      after its last replacement; if it {e was} updated again, the entry
      survives and its [redo_lsn] advances to the end-of-log LSN the
      node remembered when it last replaced the page (§2.5).

    [min_redo_lsn] bounds log truncation (§2.5): the log below it is
    dead. *)

open Repro_storage

type entry = {
  pid : Page_id.t;
  mutable psn_first : int;
  mutable curr_psn : int;
  mutable redo_lsn : Repro_wal.Lsn.t;
  mutable replaced_at : Repro_wal.Lsn.t;
      (** end-of-log remembered when the page was last replaced while
          dirty; [Lsn.nil] when the page has not been replaced *)
  mutable updated_since_replacement : bool;
}

type t

val create : unit -> t
val find : t -> Page_id.t -> entry option
val mem : t -> Page_id.t -> bool

val add_if_absent : t -> Page_id.t -> page_psn:int -> end_of_log:Repro_wal.Lsn.t -> unit
(** §2.2 entry creation on X-lock acquisition. *)

val on_update : t -> Page_id.t -> new_psn:int -> unit
(** Maintain [curr_psn] after a local update; also marks the page
    updated-since-replacement. *)

val on_replaced : t -> Page_id.t -> end_of_log:Repro_wal.Lsn.t -> unit
(** The dirty page was just evicted and shipped to its owner: remember
    the current end of the log (§2.5). *)

val on_flush_ack : t -> Page_id.t -> flushed_psn:int -> unit
(** Owner reports the page durable up to [flushed_psn]: drop or advance
    per the lifecycle above.  An entry whose [curr_psn] exceeds
    [flushed_psn] (its updates are not yet covered by the durable
    version) is kept untouched. *)

val drop : t -> Page_id.t -> unit
val set_redo_lsn : t -> Page_id.t -> Repro_wal.Lsn.t -> unit
val min_redo_lsn : t -> Repro_wal.Lsn.t option
(** [None] when the table is empty (the whole log is reclaimable). *)

val entry_with_min_redo_lsn : t -> entry option
(** The replacement victim the §2.5 space manager flushes first. *)

val entries : t -> entry list
val entries_owned_by : t -> int -> entry list
(** Entries whose page belongs to the given owner node — what a node
    sends a recovering owner in §2.3.1. *)

val size : t -> int
val clear : t -> unit

val snapshot : t -> Repro_wal.Record.dpt_entry list
(** Immutable copy logged in a fuzzy checkpoint. *)

val load_snapshot : t -> Repro_wal.Record.dpt_entry list -> unit
(** Restart analysis: repopulate from a checkpoint image. *)

val pp : Format.formatter -> t -> unit
