open Repro_storage
module Lsn = Repro_wal.Lsn
module Record = Repro_wal.Record

type entry = {
  pid : Page_id.t;
  mutable psn_first : int;
  mutable curr_psn : int;
  mutable redo_lsn : Lsn.t;
  mutable replaced_at : Lsn.t;
  mutable updated_since_replacement : bool;
}

type t = { table : entry Page_id.Tbl.t }

let create () = { table = Page_id.Tbl.create 64 }
let find t pid = Page_id.Tbl.find_opt t.table pid
let mem t pid = Page_id.Tbl.mem t.table pid

let add_if_absent t pid ~page_psn ~end_of_log =
  if not (mem t pid) then
    Page_id.Tbl.replace t.table pid
      {
        pid;
        psn_first = page_psn;
        curr_psn = page_psn;
        redo_lsn = end_of_log;
        replaced_at = Lsn.nil;
        updated_since_replacement = false;
      }

let on_update t pid ~new_psn =
  match find t pid with
  | None -> invalid_arg "Dpt.on_update: page has no entry (X lock should have added one)"
  | Some e ->
    e.curr_psn <- new_psn;
    e.updated_since_replacement <- true

let on_replaced t pid ~end_of_log =
  match find t pid with
  | None -> ()
  | Some e ->
    e.replaced_at <- end_of_log;
    e.updated_since_replacement <- false

let drop t pid = Page_id.Tbl.remove t.table pid

let on_flush_ack t pid ~flushed_psn =
  match find t pid with
  | None -> ()
  | Some e ->
    if e.updated_since_replacement then begin
      (* Page was re-fetched and re-dirtied after the replacement the
         owner just made durable: keep the entry, but all records below
         the remembered end-of-log are now redundant for this page. *)
      if not (Lsn.is_nil e.replaced_at) then e.redo_lsn <- e.replaced_at;
      e.replaced_at <- Lsn.nil
    end
    else if e.curr_psn <= flushed_psn then drop t pid

let set_redo_lsn t pid lsn =
  match find t pid with None -> () | Some e -> e.redo_lsn <- lsn

let fold t init f = Page_id.Tbl.fold (fun _ e acc -> f acc e) t.table init

let min_redo_lsn t =
  fold t None (fun acc e ->
      match acc with
      | None -> Some e.redo_lsn
      | Some m -> Some (Lsn.min m e.redo_lsn))

let entry_with_min_redo_lsn t =
  fold t None (fun acc e ->
      match acc with
      | None -> Some e
      | Some m -> if Lsn.compare e.redo_lsn m.redo_lsn < 0 then Some e else acc)

let entries t = fold t [] (fun acc e -> e :: acc)
let entries_owned_by t owner = List.filter (fun e -> Page_id.owner e.pid = owner) (entries t)
let size t = Page_id.Tbl.length t.table
let clear t = Page_id.Tbl.reset t.table

let snapshot t =
  fold t [] (fun acc e ->
      {
        Record.pid = e.pid;
        psn_first = e.psn_first;
        curr_psn = e.curr_psn;
        redo_lsn = e.redo_lsn;
      }
      :: acc)

let load_snapshot t entries =
  List.iter
    (fun (s : Record.dpt_entry) ->
      Page_id.Tbl.replace t.table s.pid
        {
          pid = s.pid;
          psn_first = s.psn_first;
          curr_psn = s.curr_psn;
          redo_lsn = s.redo_lsn;
          replaced_at = Lsn.nil;
          updated_since_replacement = false;
        })
    entries

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%a psn=%d curr=%d redo=%a@." Page_id.pp e.pid e.psn_first e.curr_psn
        Lsn.pp e.redo_lsn)
    (entries t)
