type t = { edges : (int, int list) Hashtbl.t }

let create () = { edges = Hashtbl.create 16 }

let set_waits t ~waiter ~blockers =
  if blockers = [] then Hashtbl.remove t.edges waiter
  else Hashtbl.replace t.edges waiter (List.sort_uniq Int.compare blockers)

let clear_waits t txn = Hashtbl.remove t.edges txn

let remove_txn t txn =
  Hashtbl.remove t.edges txn;
  Hashtbl.iter
    (fun waiter blockers ->
      if List.mem txn blockers then
        Hashtbl.replace t.edges waiter (List.filter (fun b -> b <> txn) blockers))
    t.edges;
  (* Prune waiters left with no blockers. *)
  let empty = Hashtbl.fold (fun w bs acc -> if bs = [] then w :: acc else acc) t.edges [] in
  List.iter (Hashtbl.remove t.edges) empty

let successors t n = match Hashtbl.find_opt t.edges n with None -> [] | Some l -> l

let find_cycle t =
  (* DFS with colouring; path reconstruction on back edge. *)
  let color = Hashtbl.create 16 in
  (* 0 absent = white, 1 = on stack, 2 = done *)
  let exception Found of int list in
  let rec visit path n =
    match Hashtbl.find_opt color n with
    | Some 1 ->
      (* Back edge: the cycle is [n] plus the path entries pushed since
         visiting [n] ([path] is newest-first). *)
      let rec upto acc = function
        | [] -> acc
        | x :: rest -> if x = n then acc else upto (x :: acc) rest
      in
      raise (Found (n :: upto [] path))
    | Some _ -> ()
    | None ->
      Hashtbl.replace color n 1;
      List.iter (visit (n :: path)) (successors t n);
      Hashtbl.replace color n 2
  in
  match Hashtbl.iter (fun n _ -> visit [] n) t.edges with
  | () -> None
  | exception Found cycle -> Some cycle

let victim cycle = List.fold_left max (List.hd cycle) cycle
let waiters t = Hashtbl.fold (fun w _ acc -> w :: acc) t.edges []
