type t = S | X

let compatible held requested = match (held, requested) with S, S -> true | _, X | X, _ -> false
let covers held needed = match (held, needed) with X, _ -> true | S, S -> true | S, X -> false
let max a b = match (a, b) with X, _ | _, X -> X | S, S -> S
let rank = function S -> 0 | X -> 1
let compare a b = Int.compare (rank a) (rank b)
let equal a b = compare a b = 0
let to_string = function S -> "S" | X -> "X"
let pp ppf t = Format.pp_print_string ppf (to_string t)
