(** Waits-for deadlock detection.

    The driver maintains one global waits-for graph: when a transaction's
    step is refused because other transactions hold conflicting locks, an
    edge is recorded per blocker.  Cycles are resolved by aborting the
    {e youngest} transaction on the cycle (highest id — ids are issued in
    start order).

    This is detector-as-oracle: the paper assumes some deadlock handling
    exists but does not specify one, so we keep it outside the protocol
    proper. *)

type t

val create : unit -> t

val set_waits : t -> waiter:int -> blockers:int list -> unit
(** Replaces the waiter's outgoing edges (its latest refusal). *)

val clear_waits : t -> int -> unit
(** The transaction proceeded, committed or aborted. *)

val remove_txn : t -> int -> unit
(** Drops the transaction as waiter {e and} blocker. *)

val find_cycle : t -> int list option
(** Some cycle (each member waits on the next, last waits on first), or
    [None]. *)

val victim : int list -> int
(** Youngest member (max id). *)

val waiters : t -> int list
