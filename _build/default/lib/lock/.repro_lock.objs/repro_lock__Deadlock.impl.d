lib/lock/deadlock.ml: Hashtbl Int List
