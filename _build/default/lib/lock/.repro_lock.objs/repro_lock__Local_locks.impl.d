lib/lock/local_locks.ml: Format Hashtbl List Mode Option Page_id Repro_storage
