lib/lock/local_locks.mli: Mode Page_id Repro_storage
