lib/lock/global_locks.ml: Format Hashtbl List Mode Page_id Repro_storage
