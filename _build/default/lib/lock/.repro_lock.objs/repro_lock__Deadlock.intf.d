lib/lock/deadlock.mli:
