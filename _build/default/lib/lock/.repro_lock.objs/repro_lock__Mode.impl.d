lib/lock/mode.ml: Format Int
