lib/lock/global_locks.mli: Mode Page_id Repro_storage
