lib/lock/mode.mli: Format
