(** Lock modes.  The paper locks at page granularity with shared and
    exclusive modes under strict two-phase locking (§2.1); the
    fine-granularity extension is the authors' EDBT'96 follow-up and out
    of scope here. *)

type t = S | X

val compatible : t -> t -> bool
(** [compatible held requested] — only [S]/[S] coexists. *)

val covers : t -> t -> bool
(** [covers held needed]: can a holder of [held] proceed as if it held
    [needed]?  [X] covers both; [S] covers only [S]. *)

val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
