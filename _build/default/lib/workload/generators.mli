(** Workload generators for the experiments and examples.

    All generators are deterministic given the {!Repro_util.Rng.t}.
    Pages must have been allocated beforehand (see
    {!Repro_cbl.Cluster.allocate_pages}); generators only pick from the
    given page population. *)

open Repro_storage

type mix = {
  ops_per_txn : int;
  update_fraction : float;  (** probability an access is an update *)
  remote_fraction : float;
      (** probability an access goes to a page owned by another node
          (0 = fully partitioned, 1 = all accesses remote) *)
  theta : float;  (** Zipf skew within the chosen partition; 0 = uniform *)
  savepoint_fraction : float;
      (** probability a transaction brackets its second half in a
          savepoint and rolls back to it (§2.2 partial rollback) *)
  abort_fraction : float;  (** probability a transaction ends in a voluntary abort *)
}

val default_mix : mix
(** 8 ops/txn, 50% updates, 30% remote, uniform, no savepoints/aborts. *)

val partitioned :
  Repro_util.Rng.t ->
  pages_by_owner:(int * Page_id.t list) list ->
  clients:int list ->
  txns_per_client:int ->
  mix:mix ->
  Op.script list
(** The paper's engineering/corporate workload: each client has a home
    partition (the owner list is cycled over the clients) and visits
    other partitions with probability [remote_fraction].  The offsets
    updated are 8-byte cells spread across each page. *)

val hotspot :
  Repro_util.Rng.t ->
  pages:Page_id.t list ->
  clients:int list ->
  txns_per_client:int ->
  mix:mix ->
  Op.script list
(** All clients draw from one shared page population with Zipf skew
    [mix.theta] — the contention workload (E9). *)

val checkout :
  Repro_util.Rng.t ->
  pages:Page_id.t list ->
  client:int ->
  documents:int ->
  revisions:int ->
  Op.script list
(** CAD/CASE check-out: the client claims [documents] pages and then
    runs [revisions] transactions that repeatedly revise them — the
    inter-transaction-caching showcase (§1.2): after the first
    transaction, no lock or page message should leave the client. *)

val ping_pong :
  pages:Page_id.t list -> nodes:int * int -> rounds:int -> Op.script list
(** Two nodes alternately update the same pages — the page transfer
    workload (E10): every hand-over is a callback + page ship, and under
    CBL never a disk force. *)
