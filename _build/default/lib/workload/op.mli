(** The operation DSL: transactions as scripts.

    A workload is a list of {!script}s — each a transaction to run at a
    given node, expressed as a list of actions.  The {!Driver} executes
    them step by step, which is what lets a blocked step simply be
    retried later (the simulator's substitute for a waiting thread). *)

open Repro_storage

type action =
  | Read of { pid : Page_id.t; off : int }
  | Update of { pid : Page_id.t; off : int; delta : int64 }
      (** logical increment of an 8-byte cell *)
  | Write of { pid : Page_id.t; off : int; data : string }
      (** physical byte write *)
  | Savepoint of string
  | Rollback_to of string
  | Abort_self  (** the transaction voluntarily aborts (ends the script) *)

type script = { node : int; actions : action list }

val pp_action : Format.formatter -> action -> unit
val pp_script : Format.formatter -> script -> unit

val pages_touched : script -> Page_id.t list
(** Distinct pages the script reads or writes. *)

val cells_updated : script -> (Page_id.t * int) list
(** Distinct (page, offset) cells the script updates with deltas. *)
