open Repro_storage

type action =
  | Read of { pid : Page_id.t; off : int }
  | Update of { pid : Page_id.t; off : int; delta : int64 }
  | Write of { pid : Page_id.t; off : int; data : string }
  | Savepoint of string
  | Rollback_to of string
  | Abort_self

type script = { node : int; actions : action list }

let pp_action ppf = function
  | Read { pid; off } -> Format.fprintf ppf "read %a@@%d" Page_id.pp pid off
  | Update { pid; off; delta } -> Format.fprintf ppf "update %a@@%d %+Ld" Page_id.pp pid off delta
  | Write { pid; off; data } ->
    Format.fprintf ppf "write %a@@%d %dB" Page_id.pp pid off (String.length data)
  | Savepoint name -> Format.fprintf ppf "savepoint %s" name
  | Rollback_to name -> Format.fprintf ppf "rollback-to %s" name
  | Abort_self -> Format.pp_print_string ppf "abort"

let pp_script ppf s =
  Format.fprintf ppf "@[<v 2>txn@@node%d:@ %a@]" s.node
    (Format.pp_print_list pp_action) s.actions

let pages_touched s =
  List.filter_map
    (function
      | Read { pid; _ } | Update { pid; _ } | Write { pid; _ } -> Some pid
      | Savepoint _ | Rollback_to _ | Abort_self -> None)
    s.actions
  |> List.sort_uniq Page_id.compare

let cells_updated s =
  List.filter_map
    (function
      | Update { pid; off; _ } -> Some (pid, off)
      | Read _ | Write _ | Savepoint _ | Rollback_to _ | Abort_self -> None)
    s.actions
  |> List.sort_uniq compare
