lib/workload/op.mli: Format Page_id Repro_storage
