lib/workload/driver.ml: Array Engine Format Hashtbl Int64 List Op Option Repro_cbl Repro_lock Repro_sim Repro_storage Repro_util
