lib/workload/engine.ml: Page_id Repro_cbl Repro_lock Repro_sim Repro_storage
