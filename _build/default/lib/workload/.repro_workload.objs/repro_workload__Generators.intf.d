lib/workload/generators.mli: Op Page_id Repro_storage Repro_util
