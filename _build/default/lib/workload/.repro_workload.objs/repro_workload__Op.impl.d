lib/workload/op.ml: Format List Page_id Repro_storage String
