lib/workload/driver.mli: Engine Format Op Repro_storage Repro_util
