lib/workload/generators.ml: Array Int64 List Op Repro_util
