(** Restart analysis pass (ARIES, as used in §2.3.1 / §2.4).

    Scans the local log forward from the last complete checkpoint and
    reconstructs (a) a {e superset} of the DPT at crash time and (b) the
    loser transactions with their undo-chain heads.  The DPT is a
    superset because pages may have been flushed after their last logged
    update — harmless, since redo is PSN-guarded.

    The scan charges the recovery counters; its record count is the
    "log records scanned" column of experiments E4/E8. *)

type result = {
  dpt : Repro_wal.Record.dpt_entry list;
  losers : Repro_wal.Record.active_txn list;
      (** transactions with no commit/abort record; [last_lsn] is the
          head of each undo chain *)
  loser_pages : Repro_storage.Page_id.Set.t;
      (** pages updated by loser transactions.  Under strict 2PL the
          node held an X lock on each of these at crash time; restart
          re-establishes those locks before undo (§2.3.3). *)
  checkpoint_lsn : Repro_wal.Lsn.t;  (** where the scan started; [nil] = log start *)
}

val run : Repro_wal.Log_manager.t -> master:Master.t -> result
