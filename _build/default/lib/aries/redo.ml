module Page = Repro_storage.Page
module Record = Repro_wal.Record

type verdict = Applied | Already_applied | Not_yet

let apply page ~psn_before ~op =
  let psn = Page.psn page in
  if psn = psn_before then begin
    Record.apply_op page op;
    Page.set_psn page (psn_before + 1);
    Applied
  end
  else if psn > psn_before then Already_applied
  else Not_yet

let pp_verdict ppf = function
  | Applied -> Format.pp_print_string ppf "applied"
  | Already_applied -> Format.pp_print_string ppf "already-applied"
  | Not_yet -> Format.pp_print_string ppf "not-yet"
