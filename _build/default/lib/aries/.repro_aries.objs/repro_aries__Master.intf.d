lib/aries/master.mli: Repro_wal
