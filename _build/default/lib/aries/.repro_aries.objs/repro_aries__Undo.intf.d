lib/aries/undo.mli: Repro_storage Repro_wal
