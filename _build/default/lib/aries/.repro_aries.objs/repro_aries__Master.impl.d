lib/aries/master.ml: Repro_wal
