lib/aries/redo.ml: Format Repro_storage Repro_wal
