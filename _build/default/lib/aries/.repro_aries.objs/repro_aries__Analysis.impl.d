lib/aries/analysis.ml: Hashtbl Int List Master Option Repro_storage Repro_wal
