lib/aries/checkpoint.mli: Master Repro_sim Repro_wal
