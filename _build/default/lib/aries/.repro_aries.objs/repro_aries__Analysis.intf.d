lib/aries/analysis.mli: Master Repro_storage Repro_wal
