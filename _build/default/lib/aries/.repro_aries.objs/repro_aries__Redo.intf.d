lib/aries/redo.mli: Format Repro_storage Repro_wal
