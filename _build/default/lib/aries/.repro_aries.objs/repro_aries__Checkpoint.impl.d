lib/aries/checkpoint.ml: List Master Repro_sim Repro_wal
