lib/aries/undo.ml: Format Repro_storage Repro_wal
