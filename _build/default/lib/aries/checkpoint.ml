module Record = Repro_wal.Record
module Log_manager = Repro_wal.Log_manager
module Lsn = Repro_wal.Lsn

let take log env metrics ~dpt ~active ~master =
  let begin_lsn =
    Log_manager.append log
      { Record.txn = Record.system_txn; prev = Lsn.nil; body = Checkpoint_begin { dpt; active } }
  in
  let end_lsn =
    Log_manager.append log
      { Record.txn = Record.system_txn; prev = begin_lsn; body = Checkpoint_end }
  in
  Log_manager.force log ~upto:end_lsn;
  Master.set master begin_lsn;
  metrics.Repro_sim.Metrics.checkpoints_taken <- metrics.Repro_sim.Metrics.checkpoints_taken + 1;
  let g = Repro_sim.Env.global_metrics env in
  g.Repro_sim.Metrics.checkpoints_taken <- g.Repro_sim.Metrics.checkpoints_taken + 1;
  Repro_sim.Env.tracef env "checkpoint taken at %a (dpt=%d active=%d)" Lsn.pp begin_lsn
    (List.length dpt) (List.length active);
  begin_lsn
