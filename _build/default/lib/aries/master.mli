(** The master record: a durable, atomically-updated cell holding the
    LSN of the node's last {e complete} checkpoint.  Real systems keep
    it at a fixed location of the log volume; here it is a durable field
    of the node that survives crashes by construction. *)

type t

val create : unit -> t

val set : t -> Repro_wal.Lsn.t -> unit
(** Called only after the checkpoint-end record has been forced. *)

val get : t -> Repro_wal.Lsn.t
(** LSN of the [Checkpoint_begin] of the last complete checkpoint, or
    [Lsn.nil] if the node never completed one. *)
