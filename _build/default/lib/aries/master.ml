type t = { mutable lsn : Repro_wal.Lsn.t }

let create () = { lsn = Repro_wal.Lsn.nil }
let set t lsn = t.lsn <- lsn
let get t = t.lsn
