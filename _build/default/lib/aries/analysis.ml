module Record = Repro_wal.Record
module Log_manager = Repro_wal.Log_manager
module Lsn = Repro_wal.Lsn
module Page_id = Repro_storage.Page_id

type result = {
  dpt : Record.dpt_entry list;
  losers : Record.active_txn list;
  loser_pages : Page_id.Set.t;
  checkpoint_lsn : Lsn.t;
}

let run log ~master =
  let ckpt_lsn = Master.get master in
  let dpt : Record.dpt_entry Page_id.Tbl.t = Page_id.Tbl.create 32 in
  let txns : (int, Lsn.t) Hashtbl.t = Hashtbl.create 16 in
  let txn_pages : (int, Page_id.Set.t) Hashtbl.t = Hashtbl.create 16 in
  let init_from_checkpoint () =
    if not (Lsn.is_nil ckpt_lsn) then
      match (Log_manager.read log ckpt_lsn).Record.body with
      | Checkpoint_begin { dpt = entries; active } ->
        List.iter (fun (e : Record.dpt_entry) -> Page_id.Tbl.replace dpt e.pid e) entries;
        List.iter (fun (a : Record.active_txn) -> Hashtbl.replace txns a.txn a.last_lsn) active
      | _ -> invalid_arg "Analysis.run: master record does not point at a Checkpoint_begin"
  in
  init_from_checkpoint ();
  let on_update lsn (record : Record.t) pid psn_before =
    (match Page_id.Tbl.find_opt dpt pid with
    | None ->
      Page_id.Tbl.replace dpt pid
        { Record.pid; psn_first = psn_before; curr_psn = psn_before + 1; redo_lsn = lsn }
    | Some e ->
      Page_id.Tbl.replace dpt pid { e with curr_psn = max e.curr_psn (psn_before + 1) });
    let txn = record.Record.txn in
    Hashtbl.replace txns txn lsn;
    let pages = Option.value (Hashtbl.find_opt txn_pages txn) ~default:Page_id.Set.empty in
    Hashtbl.replace txn_pages txn (Page_id.Set.add pid pages)
  in
  let scan_from = if Lsn.is_nil ckpt_lsn then Lsn.nil else ckpt_lsn in
  Log_manager.fold log ~from:scan_from ~init:() (fun () lsn record ->
      match record.Record.body with
      | Update { pid; psn_before; _ } | Clr { pid; psn_before; _ } ->
        on_update lsn record pid psn_before
      | Savepoint _ -> Hashtbl.replace txns record.txn lsn
      | Commit | Abort -> Hashtbl.remove txns record.txn
      | Checkpoint_begin _ | Checkpoint_end -> ());
  let losers =
    Hashtbl.fold (fun txn last_lsn acc -> { Record.txn; last_lsn } :: acc) txns []
    |> List.sort (fun (a : Record.active_txn) b -> Int.compare a.txn b.txn)
  in
  let entries = Page_id.Tbl.fold (fun _ e acc -> e :: acc) dpt [] in
  let loser_pages =
    List.fold_left
      (fun acc (l : Record.active_txn) ->
        match Hashtbl.find_opt txn_pages l.txn with
        | Some pages -> Page_id.Set.union acc pages
        | None -> acc)
      Page_id.Set.empty losers
  in
  { dpt = entries; losers; loser_pages; checkpoint_lsn = ckpt_lsn }
