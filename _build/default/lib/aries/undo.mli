(** The undo / rollback engine (total and partial rollback, §2.2; loser
    undo at restart, §2.3).

    The engine walks a transaction's undo chain ([prev] pointers),
    skipping already-compensated stretches via CLR [undo_next] pointers,
    and delegates the actual work to callbacks — because {e where} the
    affected page lives (local cache, owner's cache, owner's disk)
    depends on the caller: normal rollback may have to re-fetch replaced
    pages from their owners (§2.2), while restart undo works on pages
    the recovery pass just reconstructed. *)

type ops = {
  read_record : Repro_wal.Lsn.t -> Repro_wal.Record.t;
  perform_undo :
    txn:int ->
    pid:Repro_storage.Page_id.t ->
    op:Repro_wal.Record.update_op ->
    undo_next:Repro_wal.Lsn.t ->
    Repro_wal.Lsn.t;
      (** Write the CLR (with the {e already inverted} [op] and the given
          [undo_next]), apply it to the page, bump the PSN, maintain the
          DPT, and return the CLR's LSN. *)
}

val rollback : ops -> txn:int -> from:Repro_wal.Lsn.t -> upto:Repro_wal.Lsn.t -> Repro_wal.Lsn.t
(** [rollback ops ~txn ~from ~upto] undoes the transaction's updates
    with LSN > [upto], starting the walk at [from] (the transaction's
    [last_lsn]).  [upto = Lsn.nil] means total rollback.  Returns the
    transaction's new [last_lsn] (the last CLR written, or [from] if
    nothing was undone). *)
