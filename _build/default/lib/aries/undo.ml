module Record = Repro_wal.Record
module Lsn = Repro_wal.Lsn

type ops = {
  read_record : Lsn.t -> Record.t;
  perform_undo :
    txn:int ->
    pid:Repro_storage.Page_id.t ->
    op:Record.update_op ->
    undo_next:Lsn.t ->
    Lsn.t;
}

let rollback ops ~txn ~from ~upto =
  let rec go cur last =
    if Lsn.is_nil cur || Lsn.compare cur upto <= 0 then last
    else
      let record = ops.read_record cur in
      if record.Record.txn <> txn then
        invalid_arg
          (Format.asprintf "Undo.rollback: chain of T%d reached a record of T%d at %a" txn
             record.Record.txn Lsn.pp cur);
      match record.Record.body with
      | Update { pid; op; _ } ->
        let clr_lsn =
          ops.perform_undo ~txn ~pid ~op:(Record.invert op) ~undo_next:record.Record.prev
        in
        go record.Record.prev clr_lsn
      | Clr { undo_next; _ } ->
        (* Already-compensated stretch: jump over it; CLRs are never undone. *)
        go undo_next last
      | Savepoint _ -> go record.Record.prev last
      | Commit | Abort ->
        invalid_arg "Undo.rollback: undo chain contains a termination record"
      | Checkpoint_begin _ | Checkpoint_end ->
        invalid_arg "Undo.rollback: undo chain contains a checkpoint record"
  in
  go from from
