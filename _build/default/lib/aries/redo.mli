(** PSN-exact redo (§2.1, §2.3.4).

    A logged operation applies to a page iff the page's current PSN
    equals the PSN the log record saw just before the update
    ([psn_before]).  After application the PSN becomes
    [psn_before + 1] — precisely the state the updater left behind.
    Any record with [psn_before < psn] is already reflected; a record
    with [psn_before > psn] belongs to a {e later} position in the
    cross-node order and must wait for other nodes' redo rounds. *)

type verdict =
  | Applied  (** PSNs matched; the page advanced by one update *)
  | Already_applied  (** record older than the page state *)
  | Not_yet  (** record ahead of the page state: another node's turn *)

val apply :
  Repro_storage.Page.t -> psn_before:int -> op:Repro_wal.Record.update_op -> verdict
(** Applies the operation and bumps the PSN when the guard matches. *)

val pp_verdict : Format.formatter -> verdict -> unit
