type t = { mutable now : float }

let create () = { now = 0. }
let now t = t.now

let advance t dt =
  assert (dt >= 0.);
  t.now <- t.now +. dt

let reset t = t.now <- 0.
