(** The simulated clock.

    There is one clock per cluster.  Protocol code never reads it — the
    paper's algorithms explicitly require no synchronised time — only the
    cost-charging layer advances it and the measurement harness samples
    it.  Time is a float in simulated seconds. *)

type t

val create : unit -> t
val now : t -> float
val advance : t -> float -> unit
(** [advance t dt] moves time forward by [dt >= 0] simulated seconds. *)

val reset : t -> unit
