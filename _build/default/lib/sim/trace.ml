type t = { mutable enabled : bool; mutable items : string list (* newest first *) }

let create ?(enabled = false) () = { enabled; items = [] }
let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let event t fmt =
  if t.enabled then Format.kasprintf (fun s -> t.items <- s :: t.items) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let events t = List.rev t.items
let clear t = t.items <- []

let contains t needle =
  let has s =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  List.exists has t.items

let dump ppf t = List.iter (fun e -> Format.fprintf ppf "%s@." e) (events t)
