lib/sim/clock.mli:
