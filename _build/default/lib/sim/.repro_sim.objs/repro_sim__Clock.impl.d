lib/sim/clock.ml:
