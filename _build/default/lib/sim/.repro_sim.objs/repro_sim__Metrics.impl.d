lib/sim/metrics.ml: Format List
