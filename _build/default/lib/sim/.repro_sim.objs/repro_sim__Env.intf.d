lib/sim/env.mli: Clock Config Format Metrics Repro_util Trace
