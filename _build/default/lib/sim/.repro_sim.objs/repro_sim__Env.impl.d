lib/sim/env.ml: Clock Config Metrics Repro_util Trace
