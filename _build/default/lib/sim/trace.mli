(** Structured event trace.

    When enabled, protocol code records one line per interesting event
    (lock grant, callback, crash, recovery step).  Tests assert on the
    presence / order of events; the CLI's [--trace] flag prints them.
    Disabled tracing costs a single branch. *)

type t

val create : ?enabled:bool -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val event : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Records a formatted event (no-op when disabled). *)

val events : t -> string list
(** All recorded events, oldest first. *)

val clear : t -> unit

val contains : t -> string -> bool
(** [contains t needle] — substring search over recorded events; the
    test-suite's main assertion primitive. *)

val dump : Format.formatter -> t -> unit
