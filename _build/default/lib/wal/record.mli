(** Log record contents.

    Matches §2.1/§2.2 of the paper: an update record carries the page id
    and {b the PSN the page had just before it was updated}
    ([psn_before]); redo applies a record iff the page's current PSN
    equals the record's [psn_before], making redo exact and making the
    PSN-ordered multi-node recovery of §2.3.4 deterministic.

    Two update operation flavours are supported, because the paper calls
    out (vs. PCA, §3.2) that the scheme handles {e both physical and
    logical} logging:
    - {!Physical}: byte-range before/after images;
    - {!Delta}: a logical increment of an 8-byte cell, undone by the
      negated delta.

    Compensation log records ({!Clr}) store the {e already inverted}
    operation plus the undo-next pointer, as in ARIES: redoing a CLR
    re-performs the undo and CLRs are never undone. *)

open Repro_storage

type update_op =
  | Physical of { off : int; before : string; after : string }
  | Delta of { off : int; delta : int64 }

val apply_op : Page.t -> update_op -> unit
(** Applies the operation's effect (after-image / +delta) to the page
    bytes.  Does {e not} touch the PSN — the caller bumps it. *)

val invert : update_op -> update_op
(** The operation whose application undoes the original. *)

val pp_op : Format.formatter -> update_op -> unit

(** {1 Checkpoint payloads} *)

type dpt_entry = {
  pid : Page_id.t;
  psn_first : int;  (** paper's [PSN]: page's PSN the first time it was dirtied *)
  curr_psn : int;  (** paper's [CurrPSN]: PSN after the page's latest local update *)
  redo_lsn : Lsn.t;  (** paper's [RedoLSN]: earliest local log record to redo *)
}

type active_txn = { txn : int; last_lsn : Lsn.t }

val pp_dpt_entry : Format.formatter -> dpt_entry -> unit

(** {1 Records} *)

type body =
  | Update of { pid : Page_id.t; psn_before : int; op : update_op }
  | Clr of { pid : Page_id.t; psn_before : int; op : update_op; undo_next : Lsn.t }
  | Commit
  | Abort  (** end of a completed rollback *)
  | Savepoint of string
  | Checkpoint_begin of { dpt : dpt_entry list; active : active_txn list }
  | Checkpoint_end

type t = {
  txn : int;  (** owning transaction; {!system_txn} for checkpoints *)
  prev : Lsn.t;  (** previous record of the same transaction (undo chain) *)
  body : body;
}

val system_txn : int
(** Pseudo transaction id used by checkpoint records. *)

val page_of : t -> Page_id.t option
(** The page an [Update]/[Clr] touches. *)

val psn_before_of : t -> int option

val pp : Format.formatter -> t -> unit

val encode : t -> string
val decode : string -> t
(** @raise Repro_util.Codec.Corrupt on malformed input. *)
