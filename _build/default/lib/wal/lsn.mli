(** Log sequence numbers.

    An LSN is the byte address of a log record in one node's local log
    file (paper §2.1).  LSNs from different nodes are never compared —
    cross-node ordering is the PSNs' job — so the type carries no node
    id; the protocol code keeps per-node LSNs in per-node structures. *)

type t = int

val nil : t
(** "No LSN": used for the head of a transaction's undo chain and for
    CLRs whose undo-next falls off the chain.  Compares below every real
    LSN. *)

val is_nil : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val pp : Format.formatter -> t -> unit

val encode : Repro_util.Codec.encoder -> t -> unit
val decode : Repro_util.Codec.decoder -> t
