lib/wal/log_manager.ml: Int32 Lsn Printf Record Repro_sim Repro_storage Repro_util String
