lib/wal/log_manager.mli: Lsn Record Repro_sim
