lib/wal/lsn.ml: Format Int Repro_util Stdlib
