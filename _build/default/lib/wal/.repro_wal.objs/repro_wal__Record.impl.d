lib/wal/record.ml: Format Int64 List Lsn Page Page_id Printf Repro_storage Repro_util String
