lib/wal/record.mli: Format Lsn Page Page_id Repro_storage
