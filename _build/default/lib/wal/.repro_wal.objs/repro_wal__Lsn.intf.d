lib/wal/lsn.mli: Format Repro_util
