type t = int

let nil = -1
let is_nil t = t < 0
let compare = Int.compare
let equal = Int.equal
let min = Stdlib.min
let max = Stdlib.max
let pp ppf t = if is_nil t then Format.pp_print_string ppf "nil" else Format.fprintf ppf "lsn:%d" t
let encode e t = Repro_util.Codec.int_as_i64 e t
let decode d = Repro_util.Codec.read_int_as_i64 d
