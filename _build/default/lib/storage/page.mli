(** Database pages.

    A page is a fixed-size byte array plus a header holding its id and a
    {b page sequence number} (PSN).  Per the paper (§2.1) the PSN is
    incremented by one on every update; it is the sole ordering mechanism
    used during multi-node recovery, replacing synchronised clocks.

    The PSN is only ever changed through {!bump_psn} (normal updates) or
    {!set_psn} (redo installing a recovered state), keeping the
    "incremented by one every time the page is updated" invariant
    auditable. *)

type t

val create : id:Page_id.t -> psn:int -> size:int -> t
(** A zero-filled page.  [psn] comes from the owner's allocation map. *)

val id : t -> Page_id.t
val psn : t -> int
val size : t -> int

val bump_psn : t -> unit
(** PSN := PSN + 1; call exactly once per applied update. *)

val set_psn : t -> int -> unit
(** Used only by redo/undo when installing a logged state. *)

val copy : t -> t
(** Deep copy; shipping a page between nodes or to disk always copies so
    that cached and durable versions cannot alias. *)

(** {1 Data access} *)

val read : t -> off:int -> len:int -> string
val write : t -> off:int -> string -> unit

val get_cell : t -> off:int -> int64
(** Reads the 8-byte little-endian integer cell at [off]. *)

val set_cell : t -> off:int -> int64 -> unit

val add_cell : t -> off:int -> int64 -> unit
(** [add_cell p ~off d] adds [d] to the cell — the "logical" update
    operation whose undo is adding [-d] (§3.2: the scheme supports both
    physical and logical logging). *)

val equal_contents : t -> t -> bool
(** Same id, PSN and bytes; the test oracle's comparison. *)

val pp : Format.formatter -> t -> unit

val encode : Repro_util.Codec.encoder -> t -> unit
val decode : Repro_util.Codec.decoder -> t
