(** Global page identifiers.

    Every database page belongs to exactly one owner node (the node whose
    attached database stores it — Figure 1 of the paper), so a page id is
    the pair of the owner's node id and a slot within that database.
    Ownership never changes; routing a lock or page request is a field
    access. *)

type t = { owner : int; slot : int }

val make : owner:int -> slot:int -> t
val owner : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val encode : Repro_util.Codec.encoder -> t -> unit
val decode : Repro_util.Codec.decoder -> t

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
