(** A node's simulated database disk.

    Holds the durable versions of the pages the node owns.  Contents
    survive {!Node.crash} — losing a disk is outside the paper's fault
    model.  Reads and writes charge the cost model and always deep-copy,
    so a cached page can never alias its durable version. *)

type t

val create : Repro_sim.Env.t -> Repro_sim.Metrics.t -> t
(** [create env metrics] — all I/O is charged to [metrics] (the owning
    node's counters). *)

val read : t -> Page_id.t -> Page.t option
(** Charged read of the durable page, or [None] if never written. *)

val write : t -> Page.t -> unit
(** Charged in-place durable write. *)

val write_at_commit : t -> Page.t -> unit
(** Same as {!write} but counted in the commit-path column — used by the
    forced-write baselines (Rdb/VMS-style), never by CBL. *)

val psn_on_disk : t -> Page_id.t -> int option
(** PSN of the durable version.  Charged as a read: recovery really does
    fetch the page header from disk (§2.3.2 compares DPT PSNs against
    "P's PSN value on disk"). *)

val mem : t -> Page_id.t -> bool
(** Uncharged existence check (metadata, not a page read). *)

val page_ids : t -> Page_id.t list
(** All pages ever written, unordered; used by invariant checks. *)

val peek : t -> Page_id.t -> Page.t option
(** Uncharged, copy-free view for test assertions only.  Never used by
    protocol code. *)
