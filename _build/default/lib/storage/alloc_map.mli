(** Space allocation map with PSN seeding.

    The paper (§2.1) adopts the ARIES/CSA approach to PSN initialisation:
    the PSN stored in the space-allocation map entry for a page is
    assigned to the page's PSN field when the page is (re)allocated.
    This guarantees PSNs never regress across a deallocate/reallocate
    cycle, which the PSN-ordered recovery of §2.3.4 depends on.

    The map is durable metadata of the owner node (it survives crashes —
    in a real system it lives on dedicated disk pages). *)

type t

val create : owner:int -> t

val allocate : t -> page_size:int -> Page.t
(** Allocates the next free slot of the owner's database and returns a
    fresh zeroed page whose PSN is the seed recorded in the map (0 for a
    never-used slot). *)

val deallocate : t -> Page.t -> unit
(** Frees the page's slot, remembering [Page.psn p + 1] as the PSN seed
    a future reallocation must start from. *)

val allocated : t -> Page_id.t list
(** Currently-allocated slots. *)

val is_allocated : t -> Page_id.t -> bool

val psn_seed : t -> Page_id.t -> int
(** Seed that would be used if the slot were allocated now. *)
