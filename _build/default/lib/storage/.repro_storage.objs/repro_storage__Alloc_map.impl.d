lib/storage/alloc_map.ml: Hashtbl Page Page_id
