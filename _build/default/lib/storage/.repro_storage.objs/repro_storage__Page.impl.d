lib/storage/page.ml: Bytes Format Int64 Page_id Repro_util String
