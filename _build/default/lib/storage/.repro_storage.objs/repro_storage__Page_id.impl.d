lib/storage/page_id.ml: Format Hashtbl Int Map Repro_util Set
