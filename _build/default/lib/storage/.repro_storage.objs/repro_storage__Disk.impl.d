lib/storage/disk.ml: Option Page Page_id Repro_sim
