lib/storage/disk.mli: Page Page_id Repro_sim
