lib/storage/log_device.ml: Buffer Printf String
