lib/storage/page.mli: Format Page_id Repro_util
