lib/storage/alloc_map.mli: Page Page_id
