lib/storage/log_device.mli:
