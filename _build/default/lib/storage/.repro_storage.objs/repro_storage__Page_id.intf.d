lib/storage/page_id.mli: Format Hashtbl Map Repro_util Set
