type t = { owner : int; slot : int }

let make ~owner ~slot = { owner; slot }
let owner t = t.owner

let compare a b =
  match Int.compare a.owner b.owner with 0 -> Int.compare a.slot b.slot | c -> c

let equal a b = a.owner = b.owner && a.slot = b.slot
let hash t = (t.owner * 1000003) lxor t.slot
let pp ppf t = Format.fprintf ppf "P%d.%d" t.owner t.slot
let to_string t = Format.asprintf "%a" pp t

let encode e t =
  Repro_util.Codec.u32 e t.owner;
  Repro_util.Codec.u32 e t.slot

let decode d =
  let owner = Repro_util.Codec.read_u32 d in
  let slot = Repro_util.Codec.read_u32 d in
  { owner; slot }

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
