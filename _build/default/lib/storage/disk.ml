type t = {
  env : Repro_sim.Env.t;
  metrics : Repro_sim.Metrics.t;
  pages : Page.t Page_id.Tbl.t;
}

let create env metrics = { env; metrics; pages = Page_id.Tbl.create 64 }

let read t pid =
  Repro_sim.Env.charge_page_read t.env t.metrics;
  Option.map Page.copy (Page_id.Tbl.find_opt t.pages pid)

let write t page =
  Repro_sim.Env.charge_page_write t.env t.metrics ();
  Page_id.Tbl.replace t.pages (Page.id page) (Page.copy page)

let write_at_commit t page =
  Repro_sim.Env.charge_page_write t.env t.metrics ~commit_path:true ();
  Page_id.Tbl.replace t.pages (Page.id page) (Page.copy page)

let psn_on_disk t pid =
  Repro_sim.Env.charge_page_read t.env t.metrics;
  Option.map Page.psn (Page_id.Tbl.find_opt t.pages pid)

let mem t pid = Page_id.Tbl.mem t.pages pid
let page_ids t = Page_id.Tbl.fold (fun pid _ acc -> pid :: acc) t.pages []
let peek t pid = Page_id.Tbl.find_opt t.pages pid
