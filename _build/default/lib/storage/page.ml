type t = { id : Page_id.t; mutable psn : int; data : Bytes.t }

let create ~id ~psn ~size = { id; psn; data = Bytes.make size '\000' }
let id t = t.id
let psn t = t.psn
let size t = Bytes.length t.data
let bump_psn t = t.psn <- t.psn + 1
let set_psn t v = t.psn <- v
let copy t = { t with data = Bytes.copy t.data }

let check t ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length t.data then
    invalid_arg
      (Format.asprintf "Page access out of bounds: %a off=%d len=%d size=%d" Page_id.pp t.id off
         len (Bytes.length t.data))

let read t ~off ~len =
  check t ~off ~len;
  Bytes.sub_string t.data off len

let write t ~off s =
  check t ~off ~len:(String.length s);
  Bytes.blit_string s 0 t.data off (String.length s)

let get_cell t ~off =
  check t ~off ~len:8;
  Bytes.get_int64_le t.data off

let set_cell t ~off v =
  check t ~off ~len:8;
  Bytes.set_int64_le t.data off v

let add_cell t ~off d = set_cell t ~off (Int64.add (get_cell t ~off) d)

let equal_contents a b = Page_id.equal a.id b.id && a.psn = b.psn && Bytes.equal a.data b.data

let pp ppf t = Format.fprintf ppf "%a@@psn=%d" Page_id.pp t.id t.psn

let encode e t =
  Page_id.encode e t.id;
  Repro_util.Codec.int_as_i64 e t.psn;
  Repro_util.Codec.bytes e (Bytes.to_string t.data)

let decode d =
  let id = Page_id.decode d in
  let psn = Repro_util.Codec.read_int_as_i64 d in
  let data = Bytes.of_string (Repro_util.Codec.read_bytes d) in
  { id; psn; data }
