type slot_state = Free of { seed : int } | Allocated

type t = {
  owner : int;
  mutable next_slot : int;
  slots : (int, slot_state) Hashtbl.t; (* slot -> state; absent = never used, seed 0 *)
}

let create ~owner = { owner; next_slot = 0; slots = Hashtbl.create 64 }

let seed_of t slot =
  match Hashtbl.find_opt t.slots slot with
  | None -> 0
  | Some (Free { seed }) -> seed
  | Some Allocated -> invalid_arg "Alloc_map: slot already allocated"

let allocate t ~page_size =
  (* Reuse the lowest free slot, else extend the database. *)
  let rec find_free slot = if slot >= t.next_slot then None else
      match Hashtbl.find_opt t.slots slot with
      | Some (Free _) -> Some slot
      | Some Allocated | None -> find_free (slot + 1)
  in
  let slot =
    match find_free 0 with
    | Some s -> s
    | None ->
      let s = t.next_slot in
      t.next_slot <- s + 1;
      s
  in
  let seed = seed_of t slot in
  Hashtbl.replace t.slots slot Allocated;
  Page.create ~id:(Page_id.make ~owner:t.owner ~slot) ~psn:seed ~size:page_size

let deallocate t page =
  let pid = Page.id page in
  if Page_id.owner pid <> t.owner then invalid_arg "Alloc_map: page has a different owner";
  (match Hashtbl.find_opt t.slots pid.Page_id.slot with
  | Some Allocated -> ()
  | Some (Free _) | None -> invalid_arg "Alloc_map: page not allocated");
  Hashtbl.replace t.slots pid.Page_id.slot (Free { seed = Page.psn page + 1 })

let allocated t =
  Hashtbl.fold
    (fun slot state acc ->
      match state with
      | Allocated -> Page_id.make ~owner:t.owner ~slot :: acc
      | Free _ -> acc)
    t.slots []

let is_allocated t pid =
  Page_id.owner pid = t.owner
  && match Hashtbl.find_opt t.slots pid.Page_id.slot with Some Allocated -> true | _ -> false

let psn_seed t pid = seed_of t pid.Page_id.slot
