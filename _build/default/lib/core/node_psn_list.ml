open Repro_storage
module Lsn = Repro_wal.Lsn
module Record = Repro_wal.Record
module Log_manager = Repro_wal.Log_manager

type run = { node : int; psn : int; lsn : Lsn.t }

let pp_run ppf r = Format.fprintf ppf "{node=%d psn=%d %a}" r.node r.psn Lsn.pp r.lsn

type listing = { runs : run list; records : (Lsn.t * int) list }

let build log ~node ~pages ~start =
  let last_txn : int Page_id.Tbl.t = Page_id.Tbl.create 8 in
  let acc : run list Page_id.Tbl.t = Page_id.Tbl.create 8 in
  let recs : (Lsn.t * int) list Page_id.Tbl.t = Page_id.Tbl.create 8 in
  Log_manager.fold log ~from:start ~init:() (fun () lsn record ->
      match record.Record.body with
      | Update { pid; psn_before; _ } | Clr { pid; psn_before; _ } ->
        if Page_id.Set.mem pid pages then begin
          let txn = record.Record.txn in
          let new_run =
            match Page_id.Tbl.find_opt last_txn pid with
            | Some prev -> prev <> txn
            | None -> true
          in
          if new_run then begin
            Page_id.Tbl.replace last_txn pid txn;
            let runs = Option.value (Page_id.Tbl.find_opt acc pid) ~default:[] in
            Page_id.Tbl.replace acc pid ({ node; psn = psn_before; lsn } :: runs)
          end;
          let cur = Option.value (Page_id.Tbl.find_opt recs pid) ~default:[] in
          Page_id.Tbl.replace recs pid ((lsn, psn_before) :: cur)
        end
      | Commit | Abort | Savepoint _ | Checkpoint_begin _ | Checkpoint_end -> ());
  Page_id.Tbl.fold
    (fun pid runs map ->
      let records =
        List.rev (Option.value (Page_id.Tbl.find_opt recs pid) ~default:[])
      in
      Page_id.Map.add pid { runs = List.rev runs; records } map)
    acc Page_id.Map.empty

let merge per_node =
  let all = List.concat per_node in
  let sorted = List.sort (fun a b -> Int.compare a.psn b.psn) all in
  let rec collapse = function
    | a :: b :: rest when a.node = b.node ->
      (* adjacent same-node runs become one, anchored at the earlier one *)
      collapse (a :: rest)
    | a :: rest -> a :: collapse rest
    | [] -> []
  in
  collapse sorted
