(** NodePSNList construction and merging (§2.3.4).

    For each page that requires recovery, each involved node contributes
    the PSN (and log location) of the {e first} log record of every
    transaction-run it executed against the page: within one run the
    page could not have been touched by any other node (strict 2PL holds
    the X lock for the whole transaction), so runs are the atoms of the
    cross-node redo order, and ordering runs by PSN reconstructs the
    exact global update sequence without any clock. *)

open Repro_storage

type run = {
  node : int;
  psn : int;  (** PSN the page had before the run's first update *)
  lsn : Repro_wal.Lsn.t;  (** where this run's redo scan starts in [node]'s log *)
}

val pp_run : Format.formatter -> run -> unit

type listing = {
  runs : run list;  (** the NodePSNList proper, in log order *)
  records : (Repro_wal.Lsn.t * int) list;
      (** every record of the page in this node's log, (LSN, PSN-before)
          in log order — the "location of this log record is remembered
          and will be used during the recovery" of §2.3.4, so redo
          rounds read exactly their own records instead of rescanning *)
}

val build :
  Repro_wal.Log_manager.t ->
  node:int ->
  pages:Page_id.Set.t ->
  start:Repro_wal.Lsn.t ->
  listing Page_id.Map.t
(** One forward scan of the node's log from [start] (the minimum RedoLSN
    of the node's DPT entries for [pages]); returns, per page, the runs
    and remembered record locations, in log order.  A new run starts
    whenever the transaction differs from the one that produced the
    page's previously inserted run (paper's conditions (a) and (b)).
    The scan is charged as recovery work. *)

val merge : run list list -> run list
(** Merges per-node run lists for one page into the global redo order:
    ascending by PSN, adjacent same-node runs collapsed into one (keeping
    the smaller PSN / earlier LSN — paper's step 1). *)
