let header = 24
let control = header + 16
let page config = header + config.Repro_sim.Config.page_size + 16
let log_record encoded = header + encoded
let listing ~entries = header + (entries * 24)
