(** Message size model.

    Inter-node calls are direct function invocations, but each is
    charged as a network message with a payload size from this table so
    that byte counters and transmission costs are realistic.  Sizes are
    order-of-magnitude: a small fixed header for control messages, the
    page size for page transports, and per-entry costs for recovery
    lists. *)

val control : int
(** Lock requests/grants, callbacks, acks, flush requests/acks. *)

val page : Repro_sim.Config.t -> int
(** A page transport: page bytes + header. *)

val log_record : int -> int
(** Shipping one log record of the given encoded size (baselines). *)

val listing : entries:int -> int
(** A recovery listing (cache/DPT/lock/NodePSNList messages). *)
