lib/core/cluster.ml: Array Format Hashtbl List Node Node_state Printf Recovery Repro_lock Repro_sim Repro_storage Repro_tx
