lib/core/wire.mli: Repro_sim
