lib/core/recovery.ml: Format Hashtbl Int List Node Node_psn_list Node_state Option Repro_aries Repro_buffer Repro_lock Repro_sim Repro_storage Repro_tx Repro_wal String Wire
