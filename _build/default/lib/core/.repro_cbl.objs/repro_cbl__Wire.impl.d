lib/core/wire.ml: Repro_sim
