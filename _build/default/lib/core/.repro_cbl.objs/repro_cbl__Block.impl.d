lib/core/block.ml: Format Repro_storage
