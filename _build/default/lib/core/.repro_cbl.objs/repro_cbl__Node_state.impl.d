lib/core/node_state.ml: Repro_aries Repro_buffer Repro_lock Repro_sim Repro_storage Repro_tx Repro_wal
