lib/core/node_psn_list.ml: Format Int List Option Page_id Repro_storage Repro_wal
