lib/core/block.mli: Format Repro_storage
