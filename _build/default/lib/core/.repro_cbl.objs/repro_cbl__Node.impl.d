lib/core/node.ml: Block Format Fun List Node_state Option Printf Repro_aries Repro_buffer Repro_lock Repro_sim Repro_storage Repro_tx Repro_wal String Wire
