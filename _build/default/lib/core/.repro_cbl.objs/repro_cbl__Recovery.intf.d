lib/core/recovery.mli: Node_state
