lib/core/cluster.mli: Node Node_state Recovery Repro_buffer Repro_lock Repro_sim Repro_storage
