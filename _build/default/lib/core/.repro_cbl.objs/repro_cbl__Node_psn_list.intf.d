lib/core/node_psn_list.mli: Format Page_id Repro_storage Repro_wal
