lib/core/node.mli: Node_state Repro_aries Repro_buffer Repro_sim Repro_storage Repro_tx Repro_wal
