(* Engineering / CAD workload (§1 motivation, §1.2).

   A design server (node 0) owns the drawing database.  Two engineering
   workstations check out a set of drawings and revise them over many
   transactions.  Inter-transaction caching keeps locks and pages at
   the workstation, so after the first revision no lock or page message
   leaves it; commits are local log forces.  A workstation crash in the
   middle of a revision session is recovered from its own log.

   Run with:  dune exec examples/engineering_cad.exe *)

module Cluster = Repro_cbl.Cluster
module Engine = Repro_workload.Engine
module Driver = Repro_workload.Driver
module Generators = Repro_workload.Generators
module Metrics = Repro_sim.Metrics

let () =
  Format.printf "== engineering CAD: check-out / revise / check-in ==@.@.";
  let cluster = Cluster.create ~nodes:3 ~pool_capacity:32 Repro_sim.Config.default in
  let drawings = Cluster.allocate_pages cluster ~owner:0 ~count:16 in
  let engine = Engine.of_cluster cluster in
  let rng = Repro_util.Rng.create 2026 in

  (* Workstation 1 revises drawings 0-3; workstation 2 revises 4-7. *)
  let docs1 = List.filteri (fun i _ -> i < 4) drawings in
  let docs2 = List.filteri (fun i _ -> i >= 4 && i < 8) drawings in
  let scripts =
    Generators.checkout rng ~pages:docs1 ~client:1 ~documents:4 ~revisions:12
    @ Generators.checkout rng ~pages:docs2 ~client:2 ~documents:4 ~revisions:12
  in
  (* Workstation 1 crashes mid-session and comes back. *)
  let events = [ (30, Driver.Crash 1); (40, Driver.Recover [ 1 ]) ] in
  (* one engineer per workstation: revisions run sequentially *)
  let outcome = Driver.run engine ~events ~mpl:1 scripts in
  (match Driver.verify outcome with
  | Ok () -> ()
  | Error errs -> failwith (String.concat "; " errs));
  Format.printf "%a@.@." Driver.pp_outcome outcome;

  List.iter
    (fun node ->
      let m = Cluster.node_metrics cluster node in
      Format.printf
        "workstation %d: %3d commits, %2d commit msgs, %4d local lock hits, %3d remote lock \
         reqs, %3d log forces@."
        node m.Metrics.txn_committed m.Metrics.commit_messages m.Metrics.lock_requests_local
        m.Metrics.lock_requests_remote m.Metrics.log_forces)
    [ 1; 2 ];
  let server = Cluster.node_metrics cluster 0 in
  Format.printf "design server: %d lock callbacks sent, %d pages received back@.@."
    server.Metrics.callbacks_sent server.Metrics.pages_shipped;
  Format.printf
    "note the shape: after the first revision each workstation runs from its cache — commits \
     cost one local force and zero messages (§2.2).@."
