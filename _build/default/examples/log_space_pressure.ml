(* Log space management (§2.5) on a deliberately tiny log file.

   A client hammers updates at pages owned by another node while its
   own log holds only 8 KiB.  When the log fills, the node replaces the
   page with the minimum RedoLSN, asks the owner to force it, receives
   the flush acknowledgement, advances its low-water mark, and keeps
   going.  Every transaction still commits and every committed update
   survives a crash at the end.

   Run with:  dune exec examples/log_space_pressure.exe *)

module Cluster = Repro_cbl.Cluster
module Metrics = Repro_sim.Metrics

let () =
  Format.printf "== §2.5 log space management on an 8 KiB log ==@.@.";
  let config = Repro_sim.Config.with_page_size Repro_sim.Config.default 512 in
  let cluster = Cluster.create ~pool_capacity:8 ~log_capacity:8192 ~nodes:2 config in
  let pages = Cluster.allocate_pages cluster ~owner:0 ~count:8 in
  let txns = 300 in
  for i = 1 to txns do
    let t = Cluster.begin_txn cluster ~node:1 in
    let p = List.nth pages (i mod 8) in
    Cluster.update_delta cluster ~txn:t ~pid:p ~off:0 1L;
    Cluster.update_delta cluster ~txn:t ~pid:p ~off:8 (Int64.of_int i);
    Cluster.commit cluster ~txn:t
  done;
  let m = Cluster.node_metrics cluster 1 in
  Format.printf "%d transactions committed through an 8 KiB log@." txns;
  Format.printf "space reclamation rounds : %d@." m.Metrics.log_space_stalls;
  Format.printf "owner flush requests     : %d@." m.Metrics.flush_requests;
  Format.printf "pages shipped to owner   : %d@.@." m.Metrics.pages_shipped;

  (* The acid test: crash the client, recover, count the updates. *)
  Cluster.crash cluster ~node:1;
  Cluster.recover cluster ~nodes:[ 1 ];
  let t = Cluster.begin_txn cluster ~node:1 in
  let total =
    List.fold_left
      (fun acc p -> Int64.add acc (Cluster.read_cell cluster ~txn:t ~pid:p ~off:0))
      0L pages
  in
  Cluster.commit cluster ~txn:t;
  Format.printf "after crash + recovery the pages hold %Ld committed updates (want %d)@." total
    txns;
  assert (total = Int64.of_int txns);
  Cluster.check_invariants cluster;
  Format.printf "no committed work was lost: the tiny log never blocked durability.@."
