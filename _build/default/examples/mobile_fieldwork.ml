(* The §1.2 repair-technician scenario.

   Customer data lives at the central office (node 0).  A technician's
   notebook (node 1) checks the customer's records out in the morning,
   then records repair progress all day with FULL transactional
   durability — every commit is a force of the notebook's own log,
   with no calls to the office.  The notebook even crashes in the field
   and recovers from its own disk.  Back at the office, the day's work
   is visible to everyone else the moment the office asks for the pages
   (callback), and the office can also flush them durably on request
   (§2.5 flush protocol).

   Run with:  dune exec examples/mobile_fieldwork.exe *)

module Cluster = Repro_cbl.Cluster
module Node = Repro_cbl.Node
module Metrics = Repro_sim.Metrics

let () =
  Format.printf "== mobile fieldwork: a day in the life of a repair notebook ==@.@.";
  let cluster = Cluster.create ~nodes:2 Repro_sim.Config.default in
  let office = 0 and notebook = 1 in
  let customer_pages = Cluster.allocate_pages cluster ~owner:office ~count:4 in
  let worksheet = List.hd customer_pages in

  (* Morning: check the customer's data out into the notebook. *)
  let checkout = Cluster.begin_txn cluster ~node:notebook in
  List.iter
    (fun p -> ignore (Cluster.read_cell cluster ~txn:checkout ~pid:p ~off:0))
    customer_pages;
  Cluster.commit cluster ~txn:checkout;
  Format.printf "morning: customer records checked out to the notebook@.";

  (* In the field: record each repair step as its own durable txn. *)
  let msgs_before = (Cluster.node_metrics cluster notebook).Metrics.messages_sent in
  for step = 1 to 8 do
    let t = Cluster.begin_txn cluster ~node:notebook in
    Cluster.update_delta cluster ~txn:t ~pid:worksheet ~off:0 1L;
    Cluster.update_bytes cluster ~txn:t ~pid:worksheet ~off:(16 + (step * 8))
      (Printf.sprintf "step%03d" step);
    Cluster.commit cluster ~txn:t
  done;
  let msgs_field =
    (Cluster.node_metrics cluster notebook).Metrics.messages_sent - msgs_before
  in
  Format.printf
    "field: 8 repair steps committed durably; messages to the office: %d (after the first \
     check-out, none are needed)@."
    msgs_field;

  (* The notebook is dropped in a puddle (volatile state lost) and
     reboots: its own log recovers every committed step. *)
  let in_flight = Cluster.begin_txn cluster ~node:notebook in
  Cluster.update_delta cluster ~txn:in_flight ~pid:worksheet ~off:0 100L;
  Format.printf "@.the notebook reboots mid-entry...@.";
  Cluster.crash cluster ~node:notebook;
  Cluster.recover cluster ~nodes:[ notebook ];
  let t = Cluster.begin_txn cluster ~node:notebook in
  let steps = Cluster.read_cell cluster ~txn:t ~pid:worksheet ~off:0 in
  Cluster.commit cluster ~txn:t;
  Format.printf "after reboot the worksheet shows %Ld completed steps (want 8)@." steps;
  assert (steps = 8L);

  (* Evening: the office reads the worksheet — the callback pulls the
     notebook's pages back — and forces it to the office disk. *)
  let audit = Cluster.begin_txn cluster ~node:office in
  let audited = Cluster.read_cell cluster ~txn:audit ~pid:worksheet ~off:0 in
  Cluster.commit cluster ~txn:audit;
  Node.owner_flush_page (Cluster.node cluster office) worksheet;
  Format.printf "evening: office audit sees %Ld steps; worksheet flushed to the office disk@."
    audited;
  Cluster.check_invariants cluster;
  Format.printf "@.simulated day length: %a@." Repro_util.Pretty.seconds (Cluster.now cluster)
