(* Quickstart: the Figure 1 architecture in a few dozen lines.

   Four networked nodes; nodes 0 and 2 have databases attached (the
   paper's "owner nodes"), all four have local logs.  A client node
   updates remote data, commits without a single message, survives a
   crash, and recovers with the §2.3 protocol.

   Run with:  dune exec examples/quickstart.exe *)

module Cluster = Repro_cbl.Cluster
module Metrics = Repro_sim.Metrics

let () =
  Format.printf "== client-based logging: quickstart ==@.@.";
  let cluster = Cluster.create ~nodes:4 Repro_sim.Config.default in
  (* Figure 1: two nodes own databases; we give each 8 pages. *)
  let accounts = Cluster.allocate_pages cluster ~owner:0 ~count:8 in
  let orders = Cluster.allocate_pages cluster ~owner:2 ~count:8 in
  let account = List.hd accounts and order = List.hd orders in

  (* A transaction at client node 1 updates pages of BOTH remote
     databases.  All log records go to node 1's own log. *)
  let t1 = Cluster.begin_txn cluster ~node:1 in
  Cluster.update_delta cluster ~txn:t1 ~pid:account ~off:0 (-100L);
  Cluster.update_delta cluster ~txn:t1 ~pid:order ~off:0 100L;
  let msgs_before = (Cluster.node_metrics cluster 1).Metrics.messages_sent in
  Cluster.commit cluster ~txn:t1;
  let msgs_after = (Cluster.node_metrics cluster 1).Metrics.messages_sent in
  Format.printf "T%d committed at node 1; messages sent during commit: %d (the headline!)@." t1
    (msgs_after - msgs_before);

  (* Savepoints and partial rollback (§2.2). *)
  let t2 = Cluster.begin_txn cluster ~node:3 in
  Cluster.update_delta cluster ~txn:t2 ~pid:account ~off:8 5L;
  Cluster.savepoint cluster ~txn:t2 "before-risky-part";
  Cluster.update_delta cluster ~txn:t2 ~pid:account ~off:8 1000L;
  Cluster.rollback_to cluster ~txn:t2 "before-risky-part";
  Cluster.commit cluster ~txn:t2;
  Format.printf "T%d committed after a partial rollback@." t2;

  (* Node 1 crashes with dirty pages that exist nowhere else; the §2.3
     protocol recovers the committed state from node 1's own log. *)
  let loser = Cluster.begin_txn cluster ~node:1 in
  Cluster.update_delta cluster ~txn:loser ~pid:account ~off:0 999L;
  Format.printf "@.crashing node 1 with T%d still in flight...@." loser;
  Cluster.crash cluster ~node:1;
  Cluster.recover cluster ~nodes:[ 1 ];
  Format.printf "node 1 recovered (no log was merged, no clock consulted)@.@.";

  let t3 = Cluster.begin_txn cluster ~node:1 in
  let balance = Cluster.read_cell cluster ~txn:t3 ~pid:account ~off:0 in
  let fee = Cluster.read_cell cluster ~txn:t3 ~pid:account ~off:8 in
  let booked = Cluster.read_cell cluster ~txn:t3 ~pid:order ~off:0 in
  Cluster.commit cluster ~txn:t3;
  Format.printf "account balance : %Ld  (want -100: T1 committed, the loser rolled back)@." balance;
  Format.printf "account fee     : %Ld  (want 5: the partial rollback held)@." fee;
  Format.printf "order booked    : %Ld  (want 100)@." booked;
  Cluster.check_invariants cluster;
  assert (balance = -100L && fee = 5L && booked = 100L);
  Format.printf "@.all invariants hold; simulated time elapsed: %a@." Repro_util.Pretty.seconds
    (Cluster.now cluster)
