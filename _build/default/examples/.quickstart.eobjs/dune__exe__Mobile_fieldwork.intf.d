examples/mobile_fieldwork.mli:
