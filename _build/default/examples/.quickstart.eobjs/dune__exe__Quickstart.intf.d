examples/quickstart.mli:
