examples/log_space_pressure.ml: Format Int64 List Repro_cbl Repro_sim
