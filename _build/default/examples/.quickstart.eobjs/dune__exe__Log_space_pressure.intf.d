examples/log_space_pressure.mli:
