examples/quickstart.ml: Format List Repro_cbl Repro_sim Repro_util
