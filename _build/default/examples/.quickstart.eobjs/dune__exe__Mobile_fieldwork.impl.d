examples/mobile_fieldwork.ml: Format List Printf Repro_cbl Repro_sim Repro_util
