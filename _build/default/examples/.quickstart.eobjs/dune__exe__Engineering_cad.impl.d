examples/engineering_cad.ml: Format List Repro_cbl Repro_sim Repro_util Repro_workload String
