examples/engineering_cad.mli:
