#!/bin/sh
# Local CI: build, formatting check (when ocamlformat is installed),
# tests, and an optional randomized stress sweep.
#
#   STRESS_RUNS=N ./ci.sh    additionally runs N randomized crash/verify
#                            stress iterations, once clean and once with
#                            every fault class injected (--faults all).
#                            0 (the default) skips the sweep.
#   SCALE_SMOKE=1 ./ci.sh    additionally runs the big-cluster scale
#                            smoke (32 nodes x 256 clients ->
#                            BENCH_SCALE.json) and gates its throughput
#                            and simulator-speed columns against
#                            bench/bench_scale_baseline.json.
set -eu
cd "$(dirname "$0")"

STRESS_RUNS="${STRESS_RUNS:-0}"
SCALE_SMOKE="${SCALE_SMOKE:-0}"

echo "== dune build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt (check) =="
  dune build @fmt || {
    echo "formatting drift: run 'dune fmt' to fix" >&2
    exit 1
  }
else
  echo "== ocamlformat not installed; skipping format check =="
fi

echo "== cbl-lint (protocol static analysis, gating) =="
dune exec bin/cbl_lint.exe -- --out LINT_REPORT.json

# The allowlist exists as an escape hatch for incremental adoption, but
# this repo keeps it empty: violations are fixed at the source, never
# grandfathered.  Any real entry fails CI.
if grep -vE '^[[:space:]]*(#|$)' lint_allowlist.txt >/dev/null 2>&1; then
  echo "lint_allowlist.txt has live entries; fix the violations instead:" >&2
  grep -vE '^[[:space:]]*(#|$)' lint_allowlist.txt >&2
  exit 1
fi

echo "== dune runtest =="
dune runtest

if [ "$STRESS_RUNS" -gt 0 ]; then
  echo "== stress: $STRESS_RUNS clean runs =="
  dune exec bin/cblsim.exe -- stress --runs "$STRESS_RUNS"
  echo "== stress: $STRESS_RUNS fault-injected runs (--faults all) =="
  dune exec bin/cblsim.exe -- stress --runs "$STRESS_RUNS" --faults all
  echo "== stress: $STRESS_RUNS fault-injected runs with group commit (--faults all --group-commit) =="
  dune exec bin/cblsim.exe -- stress --runs "$STRESS_RUNS" --faults all --group-commit
  echo "== stress: $STRESS_RUNS fault-injected runs with early lock release (--faults all --group-commit --elr) =="
  dune exec bin/cblsim.exe -- stress --runs "$STRESS_RUNS" --faults all --group-commit --elr
  # recovery-fault leg: crashes at the recovery crash points, network
  # faults during recovery exchanges — at least 200 seeds regardless of
  # the requested sweep size, so the restart/deferral paths always get
  # real coverage.
  RECOVERY_RUNS="$STRESS_RUNS"
  [ "$RECOVERY_RUNS" -lt 200 ] && RECOVERY_RUNS=200
  echo "== stress: $RECOVERY_RUNS recovery-fault runs (--faults recovery) =="
  dune exec bin/cblsim.exe -- stress --runs "$RECOVERY_RUNS" --faults recovery
  # protocol auditor over the same schedules, traced: every stress seed
  # is replayed with causal tracing on and its event stream checked
  # against the PR 1-5 invariants (WAL ordering, batch-loss closure,
  # PSN lineage, deferred fence, 2PL release discipline).
  echo "== audit: $STRESS_RUNS traced fault-injected runs (--faults all) =="
  dune exec bin/cblsim.exe -- audit --stress --runs "$STRESS_RUNS" --faults all \
    --out AUDIT_REPORT.json
  echo "== audit: $STRESS_RUNS traced early-lock-release runs (--faults all --group-commit --elr) =="
  dune exec bin/cblsim.exe -- audit --stress --runs "$STRESS_RUNS" --faults all \
    --group-commit --elr --out AUDIT_REPORT_ELR.json
  echo "== audit: $RECOVERY_RUNS traced recovery-fault runs (--faults recovery) =="
  dune exec bin/cblsim.exe -- audit --stress --runs "$RECOVERY_RUNS" --faults recovery \
    --out AUDIT_REPORT_RECOVERY.json
fi

echo "== bench smoke: quick JSON reports + throughput regression gate =="
dune exec bench/main.exe -- json
dune exec bench/check_regression.exe -- bench/bench_baseline.json

if [ "$SCALE_SMOKE" = "1" ]; then
  # The deterministic txn/s column is held to 5%; the wall-clock
  # events/s column only guards against an order-of-magnitude slowdown
  # of the simulator itself (machines differ, so its budget is 85%).
  echo "== scale smoke: 32 nodes x 256 clients -> BENCH_SCALE.json + gate =="
  dune exec bin/cblsim.exe -- scale --nodes 32 --out BENCH_SCALE.json
  dune exec bench/check_regression.exe -- bench/bench_scale_baseline.json BENCH_SCALE_DIFF.txt
fi

echo "CI OK"
