#!/bin/sh
# Local CI: build, formatting check (when ocamlformat is installed), tests.
set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt (check) =="
  dune build @fmt || {
    echo "formatting drift: run 'dune fmt' to fix" >&2
    exit 1
  }
else
  echo "== ocamlformat not installed; skipping format check =="
fi

echo "== dune runtest =="
dune runtest

echo "CI OK"
